// Customdata: vocalize your own CSV. This example writes a small sales
// table and a region hierarchy definition to a temp directory, loads them
// through the ingest API, and asks a question — exactly what
// `voicequery -table … -schema … -dim …` does for files you already have.
//
// Run with:
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

const salesCSV = `store,revenue
Boston Downtown,120000
Boston Airport,95000
Chicago Loop,160000
Chicago North,88000
Seattle Center,145000
Portland East,72000
`

const regionsCSV = `region,city,store
East,Boston,Boston Downtown
East,Boston,Boston Airport
Midwest,Chicago,Chicago Loop
Midwest,Chicago,Chicago North
West,Seattle,Seattle Center
West,Portland,Portland East
`

func main() {
	dir, err := os.MkdirTemp("", "voiceolap-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	dataPath := filepath.Join(dir, "sales.csv")
	defPath := filepath.Join(dir, "regions.csv")
	if err := os.WriteFile(dataPath, []byte(salesCSV), 0o644); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(defPath, []byte(regionsCSV), 0o644); err != nil {
		log.Fatal(err)
	}

	// 1. Declare the table schema and the dimension.
	schema, err := ingest.ParseSchema("store:string,revenue:float")
	if err != nil {
		log.Fatal(err)
	}
	dim, err := ingest.ParseDimSpec(
		"name=location;column=store;context=stores in;root=any location;def=" + defPath)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load and bind.
	dataset, err := ingest.Load("sales", dataPath, schema, []ingest.DimSpec{dim})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Explore with the keyword interface.
	session, err := nlq.NewSession(dataset, olap.Avg, "revenue", "average revenue")
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Format:               speech.ThousandsFormat,
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 1500,
	}
	for _, input := range []string{
		"break down by region",
		"drill down into the location",
	} {
		fmt.Printf("\n> %s\n", input)
		resp, err := session.Parse(input)
		if err != nil {
			fmt.Println(" ", err)
			continue
		}
		if !resp.IsQuery {
			fmt.Println(" ", resp.Message)
			continue
		}
		out, err := core.NewHolistic(dataset, session.Query(), cfg).Vocalize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", out.Text())
	}
}
