// Flights: compare the three vocalization approaches on the large flight-
// cancellation dataset — the scenario behind Figure 3. Optimal scans and
// scores everything before speaking; holistic answers immediately and
// refines while "speaking"; unmerged plans within a fixed 500 ms budget.
//
// Run with:
//
//	go run ./examples/flights [-rows 200000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
)

func main() {
	rows := flag.Int("rows", 200000, "dataset rows (paper: 5300000)")
	flag.Parse()

	fmt.Printf("generating %d flights...\n", *rows)
	dataset, err := datagen.Flights(datagen.FlightsConfig{Rows: *rows, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	query := olap.Query{
		Fct:            olap.Avg,
		Col:            "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: dataset.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: dataset.HierarchyByName("flight date"), Level: 1},
		},
	}

	// Real clock: latencies below are honest wall-clock measurements.
	cfg := core.Config{
		Format:               speech.PercentFormat,
		Seed:                 1,
		MaxRoundsPerSentence: 4000,
		MinRounds:            256,
	}
	ucfg := cfg
	ucfg.MaxRoundsPerSentence = 0 // the unmerged budget is wall-clock time

	for _, v := range []core.Vocalizer{
		core.NewHolistic(dataset, query, cfg),
		core.NewOptimal(dataset, query, cfg),
		core.NewUnmerged(dataset, query, ucfg),
	} {
		out, err := v.Vocalize()
		if err != nil {
			log.Fatal(err)
		}
		quality, err := core.ExactQuality(dataset, query, out, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-8s latency %12v quality %.3f\n", v.Name(),
			out.Latency.Round(time.Microsecond), quality)
		fmt.Println(" ", out.Speech.MainText())
	}
	fmt.Printf("\ninteractivity threshold: %v — only the holistic approach stays under it as data grows.\n",
		core.InteractivityThreshold)
}
