// Quickstart: vocalize one OLAP query over the college-salary dataset.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

func main() {
	// 1. Load a dataset: a table plus dimension hierarchies.
	dataset, err := datagen.Salaries(datagen.SalariesConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	location := dataset.HierarchyByName("college location")
	start := dataset.HierarchyByName("start salary")

	// 2. Pose the paper's running example: average mid-career salary,
	// broken down by graduation region and rough start salary.
	query := olap.Query{
		Fct:            olap.Avg,
		Col:            "midCareerSalary",
		ColDescription: "average mid-career salary",
		GroupBy: []olap.GroupBy{
			{Hierarchy: location, Level: 1},
			{Hierarchy: start, Level: 1},
		},
	}

	// 3. Vocalize it with the holistic approach. The simulated clock makes
	// the run instant; a real application would play each sentence as it
	// is committed.
	cfg := core.Config{
		Format:               speech.ThousandsFormat,
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
	}
	out, err := core.NewHolistic(dataset, query, cfg).Vocalize()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Spoken answer:")
	fmt.Println(" ", out.Text())
	fmt.Printf("\nlatency to first output: %v\n", out.Latency.Round(time.Microsecond))
	fmt.Printf("rows sampled: %d, tree samples: %d\n", out.RowsRead, out.TreeSamples)

	// 4. Score the speech against the exact result (Definition 2.2).
	quality, err := core.ExactQuality(dataset, query, out, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact speech quality: %.3f\n", quality)
}
