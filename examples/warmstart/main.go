// Warmstart: materialized sample views (the Section 4.3 extension). A view
// is built once with a full scan for an anticipated query; afterwards every
// vocalization of that query reads zero rows and still refines rare
// subpopulations immediately.
//
// Run with:
//
//	go run ./examples/warmstart
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
	"repro/internal/voice"
)

func main() {
	rows := flag.Int("rows", 300000, "dataset rows")
	flag.Parse()
	dataset, err := datagen.Flights(datagen.FlightsConfig{Rows: *rows, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	query := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: dataset.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: dataset.HierarchyByName("flight date"), Level: 1},
		},
	}

	// Build the view once (this is the expensive full scan).
	space, err := olap.NewSpace(dataset, query)
	if err != nil {
		log.Fatal(err)
	}
	buildStart := time.Now()
	view, err := sampling.BuildView(space, 256, rand.New(rand.NewSource(1)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view built in %v: %d aggregates, exact counts, 256-value reservoirs\n",
		time.Since(buildStart).Round(time.Millisecond), view.Space().Size())

	// Vocalize from the view: no rows are read at query time.
	cfg := core.Config{
		Format:               speech.PercentFormat,
		Seed:                 2,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
	}
	out, err := core.NewWarm(dataset, view, cfg).Vocalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwarm-start answer (zero rows read at query time):")
	fmt.Println(" ", out.Text())

	quality, err := core.ExactQuality(dataset, query, out, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexact speech quality: %.3f\n", quality)
	fmt.Printf("tree samples: %d, rows read at query time: %d\n", out.TreeSamples, out.RowsRead)
}
