// Exploration: a scripted interactive session driving the keyword-based
// query interface of the paper's user study — declarative breakdowns,
// drill-down, filters, and help — with every result vocalized.
//
// Run with:
//
//	go run ./examples/exploration
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

func main() {
	rows := flag.Int("rows", 100000, "dataset rows")
	flag.Parse()
	dataset, err := datagen.Flights(datagen.FlightsConfig{Rows: *rows, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	session, err := nlq.NewSession(dataset, olap.Avg, "cancelled", "average cancellation probability")
	if err != nil {
		log.Fatal(err)
	}

	script := []string{
		"help",
		"how does cancellation depend on region and season",
		"drill down into the start airport",
		"only flights in Winter",
		"roll up the start airport",
		"clear filters",
		"only flights operated by Alaska Airlines Inc.",
	}

	cfg := core.Config{
		Format:               speech.PercentFormat,
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 1500,
		MaxTreeNodes:         50000,
	}

	for _, input := range script {
		fmt.Printf("\n> %s\n", input)
		resp, err := session.Parse(input)
		if err != nil {
			fmt.Println(" ", err)
			continue
		}
		if resp.Message != "" {
			fmt.Println(" ", resp.Message)
		}
		if !resp.IsQuery {
			continue
		}
		out, err := core.NewHolistic(dataset, session.Query(), cfg).Vocalize()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", out.Text())
	}
}
