// Uncertainty: the Section 4.4 extensions. The same query is vocalized
// three times — plain, with a low-confidence warning when sampling was
// starved, and with spoken confidence bounds before each sentence.
//
// Run with:
//
//	go run ./examples/uncertainty
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

func main() {
	rows := flag.Int("rows", 100000, "dataset rows")
	flag.Parse()
	dataset, err := datagen.Flights(datagen.FlightsConfig{Rows: *rows, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	query := olap.Query{
		Fct:            olap.Avg,
		Col:            "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: dataset.HierarchyByName("flight date"), Level: 1},
		},
	}

	base := core.Config{
		Format:               speech.PercentFormat,
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
	}

	// Plain output.
	out, err := core.NewHolistic(dataset, query, base).Vocalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plain:")
	fmt.Println(" ", out.Text())

	// Warning mode with starved sampling: the system admits uncertainty.
	warn := base
	warn.Uncertainty = core.UncertaintyWarn
	warn.InitialRows = 8
	warn.RowsPerRound = 1
	warn.MinRounds = 1
	warn.MaxRoundsPerSentence = 2
	warn.WarnRelativeWidth = 0.05
	out, err = core.NewHolistic(dataset, query, warn).Vocalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwarning mode (starved sampling):")
	fmt.Println(" ", out.Text())
	if out.Warning != "" {
		fmt.Println(" ", out.Warning)
	}

	// Bounds mode: confidence intervals spoken before each sentence.
	bounds := base
	bounds.Uncertainty = core.UncertaintyBounds
	out, err = core.NewHolistic(dataset, query, bounds).Vocalize()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbounds mode transcript:")
	for _, u := range out.Transcript {
		fmt.Printf("  [%5.1fs] %s\n", u.End.Sub(out.Transcript[0].Start).Seconds(), u.Text)
	}
}
