package stats

import "math"

// Interval is a closed confidence interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Center returns the interval midpoint.
func (iv Interval) Center() float64 { return (iv.Lo + iv.Hi) / 2 }

// Contains reports whether x lies in [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// zScore returns the two-sided standard-normal critical value for the given
// confidence level in (0, 1), e.g. 1.96 for 0.95.
func zScore(confidence float64) float64 {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence level out of (0,1)")
	}
	std := Normal{Mu: 0, Sigma: 1}
	return std.Quantile(1 - (1-confidence)/2)
}

// MeanConfidenceInterval returns a CLT-based confidence interval for the
// population mean given the sample mean, sample standard deviation, and
// sample size n. For n == 0 it returns a degenerate interval at the mean.
func MeanConfidenceInterval(mean, stddev float64, n int64, confidence float64) Interval {
	if n <= 0 {
		return Interval{Lo: mean, Hi: mean}
	}
	half := zScore(confidence) * stddev / math.Sqrt(float64(n))
	return Interval{Lo: mean - half, Hi: mean + half}
}

// ProportionConfidenceInterval returns a Wald interval for a proportion
// estimated as successes/trials, clamped to [0, 1]. For trials == 0 it
// returns the full [0, 1] interval.
func ProportionConfidenceInterval(successes, trials int64, confidence float64) Interval {
	if trials <= 0 {
		return Interval{Lo: 0, Hi: 1}
	}
	p := float64(successes) / float64(trials)
	half := zScore(confidence) * math.Sqrt(p*(1-p)/float64(trials))
	lo, hi := p-half, p+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi}
}
