package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("zero accumulator should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Count() != 8 {
		t.Errorf("count = %d, want 8", a.Count())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if math.Abs(a.Sum()-40) > 1e-12 {
		t.Errorf("sum = %v, want 40", a.Sum())
	}
}

func TestAccumulatorSingleValue(t *testing.T) {
	var a Accumulator
	a.Add(3.5)
	if a.Variance() != 0 {
		t.Errorf("variance of single value = %v, want 0", a.Variance())
	}
	if a.Mean() != 3.5 {
		t.Errorf("mean = %v, want 3.5", a.Mean())
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a, b Accumulator
	a.AddN(2, 3)
	for i := 0; i < 3; i++ {
		b.Add(2)
	}
	if a.Count() != b.Count() || a.Mean() != b.Mean() {
		t.Error("AddN should match repeated Add")
	}
}

func TestAccumulatorMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, left, right Accumulator
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 1
		whole.Add(x)
		if i < 400 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", left.Count(), whole.Count())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-9 {
		t.Errorf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
}

func TestAccumulatorMergeEmptyCases(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(&b) // merging empty changes nothing
	if a != before {
		t.Error("merging an empty accumulator should be a no-op")
	}
	b.Merge(&a) // merging into empty copies
	if b.Mean() != a.Mean() || b.Count() != a.Count() {
		t.Error("merging into empty should copy the source")
	}
}

func TestAccumulatorReset(t *testing.T) {
	var a Accumulator
	a.Add(5)
	a.Reset()
	if a.Count() != 0 || a.Mean() != 0 || a.Sum() != 0 {
		t.Error("reset should clear all state")
	}
}

func TestMeanVarianceHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of one element should be 0")
	}
	xs := []float64{1, 2, 3, 4}
	if got := Mean(xs); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(xs); math.Abs(got-5.0/3) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 5.0/3)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{27.2, 1.16, 1.16, 1.16, 5.9, 1.2, 1.6, 50}, 1.4},
	}
	for _, c := range cases {
		if got := Median(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Median must not modify its input")
	}
}

// Property: accumulator mean always lies within [min, max] of inputs.
func TestAccumulatorMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var a Accumulator
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range clean {
			a.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return a.Mean() >= lo-1e-6 && a.Mean() <= hi+1e-6 && a.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
