package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalValidation(t *testing.T) {
	if _, err := NewNormal(0, 0); err == nil {
		t.Fatal("expected error for sigma=0")
	}
	if _, err := NewNormal(0, -1); err == nil {
		t.Fatal("expected error for negative sigma")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Fatal("expected error for NaN mean")
	}
	n, err := NewNormal(3, 2)
	if err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if n.Mu != 3 || n.Sigma != 2 {
		t.Fatalf("got %v, want N(3, 2)", n)
	}
}

func TestNormalPDFPeak(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 1}
	want := 1 / math.Sqrt(2*math.Pi)
	if got := n.PDF(5); math.Abs(got-want) > 1e-12 {
		t.Errorf("PDF at mean = %v, want %v", got, want)
	}
	if n.PDF(4) != n.PDF(6) {
		t.Error("PDF should be symmetric around the mean")
	}
	if n.PDF(5) <= n.PDF(6) {
		t.Error("PDF should peak at the mean")
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	std := Normal{Mu: 0, Sigma: 1}
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
	}
	for _, c := range cases {
		if got := std.CDF(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalProb(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if got := n.Prob(-1, 1); math.Abs(got-0.6826894921370859) > 1e-9 {
		t.Errorf("Prob(-1,1) = %v, want ~0.6827", got)
	}
	if got := n.Prob(1, -1); got != 0 {
		t.Errorf("Prob with hi<=lo = %v, want 0", got)
	}
	if got := n.Prob(2, 2); got != 0 {
		t.Errorf("Prob of empty interval = %v, want 0", got)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 10, Sigma: 3}
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := n.Quantile(p)
		if got := n.CDF(x); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	Normal{Mu: 0, Sigma: 1}.Quantile(0)
}

func TestNormalSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := Normal{Mu: 7, Sigma: 2}
	var acc Accumulator
	for i := 0; i < 50000; i++ {
		acc.Add(n.Sample(rng))
	}
	if math.Abs(acc.Mean()-7) > 0.05 {
		t.Errorf("sample mean = %v, want ~7", acc.Mean())
	}
	if math.Abs(acc.StdDev()-2) > 0.05 {
		t.Errorf("sample stddev = %v, want ~2", acc.StdDev())
	}
}

// Property: CDF is monotone non-decreasing and bounded in [0,1].
func TestNormalCDFMonotoneProperty(t *testing.T) {
	f := func(mu float64, sigmaSeed float64, a, b float64) bool {
		if math.Abs(mu) > 1e9 || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 || math.Abs(sigmaSeed) > 1e9 {
			return true
		}
		sigma := math.Abs(sigmaSeed) + 0.01
		n := Normal{Mu: mu, Sigma: sigma}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cl, ch := n.CDF(lo), n.CDF(hi)
		return cl <= ch+1e-12 && cl >= 0 && ch <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Prob(lo,hi) equals CDF(hi)-CDF(lo) and is within [0,1].
func TestNormalProbConsistencyProperty(t *testing.T) {
	f := func(mu, sigmaSeed, a, b float64) bool {
		if math.Abs(mu) > 1e9 || math.Abs(a) > 1e9 || math.Abs(b) > 1e9 || math.Abs(sigmaSeed) > 1e9 {
			return true
		}
		sigma := math.Abs(sigmaSeed) + 0.01
		n := Normal{Mu: mu, Sigma: sigma}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		p := n.Prob(lo, hi)
		return p >= 0 && p <= 1 && math.Abs(p-(n.CDF(hi)-n.CDF(lo))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
