package stats

import "math"

// Accumulator computes streaming count, mean, and variance using Welford's
// algorithm. The zero value is an empty accumulator ready for use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	sum  float64
}

// Add incorporates x into the accumulator.
func (a *Accumulator) Add(x float64) {
	a.n++
	a.sum += x
	delta := x - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (x - a.mean)
}

// AddN incorporates x with integer weight w >= 0.
func (a *Accumulator) AddN(x float64, w int64) {
	for i := int64(0); i < w; i++ {
		a.Add(x)
	}
}

// Count returns the number of observations.
func (a *Accumulator) Count() int64 { return a.n }

// Sum returns the running sum of observations.
func (a *Accumulator) Sum() float64 { return a.sum }

// Mean returns the sample mean, or 0 if no observations were added.
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Merge combines another accumulator into this one (parallel Welford merge).
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	delta := b.mean - a.mean
	mean := a.mean + delta*float64(b.n)/float64(n)
	m2 := a.m2 + b.m2 + delta*delta*float64(a.n)*float64(b.n)/float64(n)
	a.n, a.mean, a.m2, a.sum = n, mean, m2, a.sum+b.sum
}

// Reset returns the accumulator to its empty state.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 with fewer than
// two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// Median returns the median of xs without modifying the input. It returns 0
// for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	// Insertion sort: inputs here are small (user-study result slices).
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}
