package stats

import "math"

// RoundSig rounds x to the given number of significant decimal digits.
// RoundSig(0.0182, 1) == 0.02, RoundSig(5342, 2) == 5300. Zero, NaN and
// infinities are returned unchanged; digits < 1 is treated as 1.
func RoundSig(x float64, digits int) float64 {
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	if digits < 1 {
		digits = 1
	}
	mag := math.Floor(math.Log10(math.Abs(x)))
	scale := math.Pow(10, float64(digits-1)-mag)
	return math.Round(x*scale) / scale
}

// SigBucket returns the half-open interval [lo, hi) of values that round to
// the same digits-significant-digit representative as x. It is the rounding
// bucket used by the sampling reward: the reward for a speech is the belief
// probability of the bucket containing the sample estimate.
func SigBucket(x float64, digits int) Interval {
	if x == 0 {
		return Interval{Lo: 0, Hi: 0}
	}
	if digits < 1 {
		digits = 1
	}
	r := RoundSig(x, digits)
	mag := math.Floor(math.Log10(math.Abs(r)))
	step := math.Pow(10, mag-float64(digits-1))
	return Interval{Lo: r - step/2, Hi: r + step/2}
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
