// Package stats provides the small numerical toolkit the rest of the
// system builds on: normal distributions, streaming moment accumulators,
// entropy measures, and confidence intervals. The Go standard library has
// no statistics package, so the pieces needed by the user belief model and
// the sampling estimators are implemented here from scratch.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Normal is a normal (Gaussian) distribution with mean Mu and standard
// deviation Sigma. Sigma must be positive for the density functions to be
// well defined; constructors validate this.
type Normal struct {
	Mu    float64
	Sigma float64
}

// ErrBadSigma reports a non-positive standard deviation.
var ErrBadSigma = errors.New("stats: standard deviation must be positive")

// NewNormal returns a normal distribution with the given mean and standard
// deviation. It returns ErrBadSigma if sigma <= 0 or either argument is NaN.
func NewNormal(mu, sigma float64) (Normal, error) {
	if math.IsNaN(mu) || math.IsNaN(sigma) || sigma <= 0 {
		return Normal{}, fmt.Errorf("%w: sigma=%v", ErrBadSigma, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Prob returns P(lo <= X < hi). It returns 0 when hi <= lo.
func (n Normal) Prob(lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	p := n.CDF(hi) - n.CDF(lo)
	if p < 0 {
		return 0
	}
	return p
}

// Quantile returns the x such that CDF(x) = p for p in (0, 1).
// It panics for p outside (0, 1).
func (n Normal) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile probability %v out of (0,1)", p))
	}
	return n.Mu - n.Sigma*math.Sqrt2*math.Erfinv(1-2*p)
}

// Sample draws one value from the distribution using rng.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// String implements fmt.Stringer.
func (n Normal) String() string {
	return fmt.Sprintf("N(%g, %g)", n.Mu, n.Sigma)
}
