package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundSig(t *testing.T) {
	cases := []struct {
		x      float64
		digits int
		want   float64
	}{
		{0.0182, 1, 0.02},
		{0.0182, 2, 0.018},
		{5342, 2, 5300},
		{5342, 1, 5000},
		{0.055, 1, 0.06},
		{-0.0182, 1, -0.02},
		{90000, 1, 90000},
		{94999, 1, 90000},
		{95001, 1, 100000},
		{0, 3, 0},
		{1.5, 2, 1.5},
	}
	for _, c := range cases {
		if got := RoundSig(c.x, c.digits); math.Abs(got-c.want) > math.Abs(c.want)*1e-9+1e-15 {
			t.Errorf("RoundSig(%v, %d) = %v, want %v", c.x, c.digits, got, c.want)
		}
	}
}

func TestRoundSigSpecials(t *testing.T) {
	if !math.IsNaN(RoundSig(math.NaN(), 1)) {
		t.Error("NaN should pass through")
	}
	if !math.IsInf(RoundSig(math.Inf(1), 1), 1) {
		t.Error("Inf should pass through")
	}
	if got := RoundSig(123, 0); got != 100 {
		t.Errorf("digits<1 should clamp to 1, got %v", got)
	}
}

func TestSigBucket(t *testing.T) {
	// 90 K at one significant digit buckets [85 K, 95 K) — the paper's
	// Example 4.3 reward bucket.
	iv := SigBucket(90000, 1)
	if math.Abs(iv.Lo-85000) > 1e-6 || math.Abs(iv.Hi-95000) > 1e-6 {
		t.Errorf("SigBucket(90000,1) = %+v, want [85000, 95000)", iv)
	}
	iv = SigBucket(0.02, 1)
	if math.Abs(iv.Lo-0.015) > 1e-12 || math.Abs(iv.Hi-0.025) > 1e-12 {
		t.Errorf("SigBucket(0.02,1) = %+v, want [0.015, 0.025)", iv)
	}
	iv = SigBucket(0, 1)
	if iv.Lo != 0 || iv.Hi != 0 {
		t.Errorf("SigBucket(0,1) = %+v, want degenerate", iv)
	}
}

// Property: x always lies within its own significant-digit bucket
// (up to the half-open boundary) and the bucket contains the rounded value.
func TestSigBucketContainsProperty(t *testing.T) {
	f := func(seed float64) bool {
		x := seed
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 || math.Abs(x) > 1e15 || math.Abs(x) < 1e-15 {
			return true
		}
		iv := SigBucket(x, 1)
		r := RoundSig(x, 1)
		return x >= iv.Lo-math.Abs(x)*1e-9 && x <= iv.Hi+math.Abs(x)*1e-9 && iv.Contains(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Error("Clamp misbehaves")
	}
}
