package stats

import (
	"math"
	"testing"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{Lo: 2, Hi: 6}
	if iv.Width() != 4 {
		t.Errorf("width = %v, want 4", iv.Width())
	}
	if iv.Center() != 4 {
		t.Errorf("center = %v, want 4", iv.Center())
	}
	if !iv.Contains(2) || !iv.Contains(6) || !iv.Contains(4) {
		t.Error("closed interval should contain endpoints and center")
	}
	if iv.Contains(1.999) || iv.Contains(6.001) {
		t.Error("interval should not contain outside points")
	}
}

func TestMeanConfidenceInterval(t *testing.T) {
	iv := MeanConfidenceInterval(10, 2, 100, 0.95)
	wantHalf := 1.959963984540054 * 2 / 10
	if math.Abs(iv.Center()-10) > 1e-9 {
		t.Errorf("center = %v, want 10", iv.Center())
	}
	if math.Abs(iv.Width()/2-wantHalf) > 1e-6 {
		t.Errorf("half width = %v, want %v", iv.Width()/2, wantHalf)
	}
}

func TestMeanConfidenceIntervalZeroN(t *testing.T) {
	iv := MeanConfidenceInterval(5, 3, 0, 0.95)
	if iv.Lo != 5 || iv.Hi != 5 {
		t.Errorf("expected degenerate interval at mean, got %+v", iv)
	}
}

func TestMeanConfidenceIntervalShrinksWithN(t *testing.T) {
	small := MeanConfidenceInterval(0, 1, 10, 0.95)
	large := MeanConfidenceInterval(0, 1, 1000, 0.95)
	if large.Width() >= small.Width() {
		t.Error("interval should shrink as n grows")
	}
}

func TestProportionConfidenceInterval(t *testing.T) {
	iv := ProportionConfidenceInterval(0, 0, 0.95)
	if iv.Lo != 0 || iv.Hi != 1 {
		t.Errorf("zero trials should give [0,1], got %+v", iv)
	}
	iv = ProportionConfidenceInterval(50, 100, 0.95)
	if !iv.Contains(0.5) {
		t.Errorf("interval %+v should contain 0.5", iv)
	}
	if iv.Lo < 0 || iv.Hi > 1 {
		t.Errorf("interval %+v should be clamped to [0,1]", iv)
	}
	// Extreme proportions clamp.
	iv = ProportionConfidenceInterval(100, 100, 0.95)
	if iv.Hi != 1 {
		t.Errorf("hi = %v, want clamp at 1", iv.Hi)
	}
}

func TestZScorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for confidence=1")
		}
	}()
	zScore(1)
}
