package stats

import "math"

// Entropy returns the Shannon entropy (in nats) of the probability vector p.
// Entries that are zero contribute nothing; negative entries are treated as
// zero. The vector need not be normalized: it is normalized internally, and
// an all-zero vector yields entropy 0.
func Entropy(p []float64) float64 {
	var total float64
	for _, v := range p {
		if v > 0 {
			total += v
		}
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, v := range p {
		if v <= 0 {
			continue
		}
		q := v / total
		h -= q * math.Log(q)
	}
	return h
}

// NormalizedEntropy returns Entropy(p) scaled to [0, 1] by the maximum
// possible entropy log(len(p)). A uniform vector yields 1. Vectors of length
// zero or one yield 0.
func NormalizedEntropy(p []float64) float64 {
	if len(p) < 2 {
		return 0
	}
	return Entropy(p) / math.Log(float64(len(p)))
}

// ValueEntropy measures the "uniformity" of a set of non-negative values by
// normalizing them into a distribution and computing normalized entropy.
// It is the uniformity measure referenced by the maximum-entropy-principle
// hypothesis of the user model.
func ValueEntropy(values []float64) float64 {
	return NormalizedEntropy(values)
}
