package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEntropyUniformIsMax(t *testing.T) {
	uniform := []float64{0.25, 0.25, 0.25, 0.25}
	if got, want := Entropy(uniform), math.Log(4); math.Abs(got-want) > 1e-12 {
		t.Errorf("Entropy(uniform) = %v, want %v", got, want)
	}
	if got := NormalizedEntropy(uniform); math.Abs(got-1) > 1e-12 {
		t.Errorf("NormalizedEntropy(uniform) = %v, want 1", got)
	}
}

func TestEntropyDegenerate(t *testing.T) {
	if Entropy([]float64{1, 0, 0}) != 0 {
		t.Error("point mass should have zero entropy")
	}
	if Entropy(nil) != 0 {
		t.Error("empty distribution should have zero entropy")
	}
	if Entropy([]float64{0, 0}) != 0 {
		t.Error("all-zero vector should have zero entropy")
	}
	if NormalizedEntropy([]float64{5}) != 0 {
		t.Error("length-1 vector should have zero normalized entropy")
	}
}

func TestEntropyUnnormalizedInput(t *testing.T) {
	a := Entropy([]float64{1, 1, 2})
	b := Entropy([]float64{0.25, 0.25, 0.5})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("entropy should be scale-invariant: %v vs %v", a, b)
	}
}

func TestEntropyIgnoresNegatives(t *testing.T) {
	a := Entropy([]float64{1, -5, 1})
	b := Entropy([]float64{1, 0, 1})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("negative entries should be ignored: %v vs %v", a, b)
	}
}

// Property: normalized entropy is within [0,1] and maximized by uniformity.
func TestNormalizedEntropyBoundsProperty(t *testing.T) {
	f := func(seed []uint8) bool {
		if len(seed) < 2 {
			return true
		}
		p := make([]float64, len(seed))
		for i, s := range seed {
			p[i] = float64(s)
		}
		h := NormalizedEntropy(p)
		uniform := make([]float64, len(seed))
		for i := range uniform {
			uniform[i] = 1
		}
		return h >= 0 && h <= 1+1e-12 && h <= NormalizedEntropy(uniform)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
