// Package datagen generates the two synthetic benchmark datasets standing
// in for the paper's Kaggle data: a flight-cancellation fact table with
// three dimensions (start airport, flight date, airline) and a small
// college-salary table with two dimensions (college location, start
// salary). The region-by-season cancellation probabilities are planted to
// match Table 12 of the paper, so exact query evaluation reproduces the
// published full result; airline and airport multipliers add the finer
// structure exercised by drill-down queries.
package datagen

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/table"
)

// FlightsConfig parameterizes the flight dataset.
type FlightsConfig struct {
	// Rows is the number of flight rows; the paper's dataset has 5.3
	// million. Defaults to 200 000 when zero.
	Rows int
	// Seed drives the deterministic generator.
	Seed int64
	// Workers splits row generation across that many goroutines writing
	// disjoint row ranges. <= 1 keeps the sequential generator, whose
	// output for a fixed Seed is unchanged from earlier versions. Parallel
	// output is deterministic for a fixed (Seed, Workers) pair — each
	// worker derives its own seed from Seed and its range index — but is a
	// different, statistically equivalent, sample than the sequential
	// stream.
	Workers int
}

// DefaultFlightRows is the row count used when FlightsConfig.Rows is zero,
// chosen to keep test runtimes moderate while remaining large enough that
// full scans are visibly slower than sampling.
const DefaultFlightRows = 200000

// PaperFlightRows is the row count of the paper's dataset.
const PaperFlightRows = 5300000

// airportSpec is one airport with its location path.
type airportSpec struct {
	region, state, city, code string
	// factor multiplies the base cancellation probability; mean ~1 within
	// each region so Table 12's region marginals are preserved.
	factor float64
}

var airportCatalog = []airportSpec{
	{"the North East", "New York", "New York City", "JFK", 1.15},
	{"the North East", "New York", "New York City", "LGA", 1.25},
	{"the North East", "New York", "Buffalo", "BUF", 0.9},
	{"the North East", "Massachusetts", "Boston", "BOS", 1.35},
	{"the North East", "Pennsylvania", "Philadelphia", "PHL", 0.75},
	{"the North East", "New Jersey", "Newark", "EWR", 0.6},

	{"the Midwest", "Illinois", "Chicago", "ORD", 1.3},
	{"the Midwest", "Illinois", "Chicago", "MDW", 1.1},
	{"the Midwest", "Michigan", "Detroit", "DTW", 0.9},
	{"the Midwest", "Minnesota", "Minneapolis", "MSP", 0.7},
	{"the Midwest", "Ohio", "Columbus", "CMH", 0.8},
	{"the Midwest", "Iowa", "Des Moines", "DSM", 1.2},

	{"the South", "Georgia", "Atlanta", "ATL", 1.0},
	{"the South", "Texas", "Dallas", "DFW", 1.1},
	{"the South", "Texas", "Houston", "IAH", 0.9},
	{"the South", "Florida", "Orlando", "MCO", 1.35},
	{"the South", "Florida", "Miami", "MIA", 0.65},
	{"the South", "Arkansas", "Little Rock", "LIT", 1.25},
	{"the South", "Tennessee", "Nashville", "BNA", 0.75},

	{"the West", "California", "Los Angeles", "LAX", 1.05},
	{"the West", "California", "San Francisco", "SFO", 1.25},
	{"the West", "Washington", "Seattle", "SEA", 0.85},
	{"the West", "Colorado", "Denver", "DEN", 1.1},
	{"the West", "Nevada", "Las Vegas", "LAS", 0.75},

	{"the United States territories", "Puerto Rico", "San Juan", "SJU", 1.1},
	{"the United States territories", "Guam", "Hagatna", "GUM", 0.9},
}

// airlineSpec is one airline with its cancellation multiplier.
type airlineSpec struct {
	name   string
	factor float64
}

var airlineCatalog = []airlineSpec{
	{"American Airlines Inc.", 1.0},
	{"Delta Air Lines Inc.", 0.7},
	{"United Air Lines Inc.", 0.9},
	{"Southwest Airlines Co.", 0.85},
	{"Alaska Airlines Inc.", 1.3},
	{"American Eagle Airlines Inc.", 1.6},
	{"JetBlue Airways", 1.1},
	{"Spirit Air Lines", 1.4},
	{"Frontier Airlines Inc.", 1.15},
	{"Hawaiian Airlines Inc.", 0.5},
	{"Skywest Airlines Inc.", 1.2},
	{"US Airways Inc.", 0.95},
	{"Virgin America", 0.65},
	{"Atlantic Southeast Airlines", 1.25},
}

// seasonMonths maps each season to its months. Month effects within a
// season are mild and mean-one.
var seasonMonths = map[string][]struct {
	month  string
	factor float64
}{
	"Winter": {{"December", 0.9}, {"January", 1.0}, {"February", 1.1}},
	"Spring": {{"March", 1.05}, {"April", 1.0}, {"May", 0.95}},
	"Summer": {{"June", 1.15}, {"July", 0.95}, {"August", 0.9}},
	"Fall":   {{"September", 0.95}, {"October", 0.95}, {"November", 1.1}},
}

var seasonOrder = []string{"Winter", "Spring", "Summer", "Fall"}

// TableTwelve is the planted region-by-season average cancellation
// probability, copied from Table 12 of the paper.
var TableTwelve = map[string]map[string]float64{
	"the North East": {
		"Winter": 0.0555, "Spring": 0.02296, "Summer": 0.01662, "Fall": 0.00794,
	},
	"the Midwest": {
		"Winter": 0.03944, "Spring": 0.01576, "Summer": 0.018, "Fall": 0.01313,
	},
	"the South": {
		"Winter": 0.02851, "Spring": 0.01656, "Summer": 0.01097, "Fall": 0.00537,
	},
	"the West": {
		"Winter": 0.01562, "Spring": 0.00725, "Summer": 0.00927, "Fall": 0.0056,
	},
	"the United States territories": {
		"Winter": 0.01424, "Spring": 0.0065, "Summer": 0.00741, "Fall": 0.00183,
	},
}

// FlightHierarchies constructs the three flight dimensions (unbound).
func FlightHierarchies() (airport, date, airline *dimension.Hierarchy) {
	airport = dimension.MustNewHierarchy(
		"start airport", "airport", "flights starting from", "any airport",
		[]string{"region", "state", "city", "airport"})
	for _, a := range airportCatalog {
		airport.MustAddPath(a.region, a.state, a.city, a.code)
	}
	date = dimension.MustNewHierarchy(
		"flight date", "month", "flights scheduled in", "any date",
		[]string{"season", "month"})
	for _, season := range seasonOrder {
		for _, m := range seasonMonths[season] {
			date.MustAddPath(season, m.month)
		}
	}
	airline = dimension.MustNewHierarchy(
		"airline", "airline", "flights operated by", "any airline",
		[]string{"airline"})
	for _, a := range airlineCatalog {
		airline.MustAddPath(a.name)
	}
	return airport, date, airline
}

// normalizeFactors rescales per-row multiplicative factors so the expected
// multiplier is exactly one under uniform selection.
func normalizeFactors(fs []float64) []float64 {
	var sum float64
	for _, f := range fs {
		sum += f
	}
	mean := sum / float64(len(fs))
	out := make([]float64, len(fs))
	for i, f := range fs {
		out[i] = f / mean
	}
	return out
}

// monthEntry is one month with its season and normalized factor.
type monthEntry struct {
	season, month string
	factor        float64
}

// flightModel holds the normalized per-row factors of the flight generator:
// airport factors within each region, airline factors globally, and month
// factors within each season, so the Table 12 marginals are preserved in
// expectation.
type flightModel struct {
	airportFactor []float64
	airlineFactor []float64
	months        []monthEntry
}

// newFlightModel normalizes the catalog factors.
func newFlightModel() *flightModel {
	regionAirports := make(map[string][]int)
	for i, a := range airportCatalog {
		regionAirports[a.region] = append(regionAirports[a.region], i)
	}
	airportFactor := make([]float64, len(airportCatalog))
	for _, idxs := range regionAirports {
		raw := make([]float64, len(idxs))
		for j, i := range idxs {
			raw[j] = airportCatalog[i].factor
		}
		norm := normalizeFactors(raw)
		for j, i := range idxs {
			airportFactor[i] = norm[j]
		}
	}
	rawAirline := make([]float64, len(airlineCatalog))
	for i, a := range airlineCatalog {
		rawAirline[i] = a.factor
	}
	airlineFactor := normalizeFactors(rawAirline)

	var months []monthEntry
	for _, season := range seasonOrder {
		raw := make([]float64, len(seasonMonths[season]))
		for i, m := range seasonMonths[season] {
			raw[i] = m.factor
		}
		norm := normalizeFactors(raw)
		for i, m := range seasonMonths[season] {
			months = append(months, monthEntry{season, m.month, norm[i]})
		}
	}
	return &flightModel{airportFactor: airportFactor, airlineFactor: airlineFactor, months: months}
}

// genRow draws one flight row: catalog indices for airport, month, and
// airline plus the cancellation flag. The rng call order is the generator's
// wire format — changing it changes every seeded dataset.
func (fm *flightModel) genRow(rng *rand.Rand) (a, m, l int, cancelled float64) {
	a = rng.Intn(len(airportCatalog))
	m = rng.Intn(len(fm.months))
	l = rng.Intn(len(airlineCatalog))
	base := TableTwelve[airportCatalog[a].region][fm.months[m].season]
	p := base * fm.airportFactor[a] * fm.airlineFactor[l] * fm.months[m].factor
	if p > 0.95 {
		p = 0.95
	}
	if rng.Float64() < p {
		cancelled = 1.0
	}
	return a, m, l, cancelled
}

// splitSeed derives the seed of worker w from the base seed; the golden
// gamma decorrelates the derived streams (splitmix-style).
func splitSeed(seed int64, w int) int64 {
	const gamma = uint64(0x9E3779B97F4A7C15)
	return seed ^ int64(uint64(w+1)*gamma)
}

// Flights generates the synthetic flight-cancellation dataset.
func Flights(cfg FlightsConfig) (*olap.Dataset, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultFlightRows
	}
	model := newFlightModel()
	airportH, dateH, airlineH := FlightHierarchies()

	var tab *table.Table
	var err error
	if cfg.Workers > 1 {
		tab, err = flightsParallel(cfg.Seed, rows, cfg.Workers, model)
	} else {
		tab, err = flightsSequential(cfg.Seed, rows, model)
	}
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	d, err := olap.NewDataset(tab, airportH, dateH, airlineH)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	return d, nil
}

// flightsSequential is the original single-stream generator; its output for
// a fixed seed is frozen (tests pin exact aggregate values against it).
func flightsSequential(seed int64, rows int, model *flightModel) (*table.Table, error) {
	rng := rand.New(rand.NewSource(seed))
	airportCol := table.NewStringColumn("airport")
	monthCol := table.NewStringColumn("month")
	airlineCol := table.NewStringColumn("airline")
	cancelledCol := table.NewFloat64Column("cancelled")
	for i := 0; i < rows; i++ {
		a, m, l, cancelled := model.genRow(rng)
		airportCol.Append(airportCatalog[a].code)
		monthCol.Append(model.months[m].month)
		airlineCol.Append(airlineCatalog[l].name)
		cancelledCol.Append(cancelled)
	}
	return table.New("flights", airportCol, monthCol, airlineCol, cancelledCol)
}

// flightsParallel generates rows with the given number of workers, each
// filling a disjoint contiguous row range of shared code and measure slices
// from its own derived seed. Dictionaries are laid out in catalog order so
// the drawn catalog indices are the dictionary codes — no string interning
// on the hot path and no cross-worker coordination at all.
func flightsParallel(seed int64, rows, workers int, model *flightModel) (*table.Table, error) {
	if workers > rows {
		workers = rows
	}
	airportCodes := make([]int32, rows)
	monthCodes := make([]int32, rows)
	airlineCodes := make([]int32, rows)
	cancelled := make([]float64, rows)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rows / workers
		hi := (w + 1) * rows / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(splitSeed(seed, w)))
			for i := lo; i < hi; i++ {
				a, m, l, c := model.genRow(rng)
				airportCodes[i] = int32(a)
				monthCodes[i] = int32(m)
				airlineCodes[i] = int32(l)
				cancelled[i] = c
			}
		}(w, lo, hi)
	}
	wg.Wait()

	airportDict := make([]string, len(airportCatalog))
	for i, a := range airportCatalog {
		airportDict[i] = a.code
	}
	monthDict := make([]string, len(model.months))
	for i, m := range model.months {
		monthDict[i] = m.month
	}
	airlineDict := make([]string, len(airlineCatalog))
	for i, a := range airlineCatalog {
		airlineDict[i] = a.name
	}
	airportCol, err := table.NewStringColumnFromCodes("airport", airportDict, airportCodes)
	if err != nil {
		return nil, err
	}
	monthCol, err := table.NewStringColumnFromCodes("month", monthDict, monthCodes)
	if err != nil {
		return nil, err
	}
	airlineCol, err := table.NewStringColumnFromCodes("airline", airlineDict, airlineCodes)
	if err != nil {
		return nil, err
	}
	return table.New("flights", airportCol, monthCol, airlineCol,
		table.NewFloat64ColumnFromValues("cancelled", cancelled))
}
