package datagen

import "math/rand"

// FlightRow is one schema-valid flights fact row in wire form, ready to
// ship to the web layer's /api/ingest endpoint.
type FlightRow struct {
	Airport   string  `json:"airport"`
	Month     string  `json:"month"`
	Airline   string  `json:"airline"`
	Cancelled float64 `json:"cancelled"`
}

// FlightRows draws n rows from the same statistical model the Flights
// generator uses, with every dimension value taken from the generator's
// catalogs — so the rows always pass the streaming append's dictionary
// check against any Flights-built table. Deterministic in seed.
func FlightRows(seed int64, n int) []FlightRow {
	model := newFlightModel()
	rng := rand.New(rand.NewSource(seed))
	rows := make([]FlightRow, n)
	for i := range rows {
		a, m, l, cancelled := model.genRow(rng)
		rows[i] = FlightRow{
			Airport:   airportCatalog[a].code,
			Month:     model.months[m].month,
			Airline:   airlineCatalog[l].name,
			Cancelled: cancelled,
		}
	}
	return rows
}
