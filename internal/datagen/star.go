package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/olap"
	"repro/internal/table"
)

// StarFlights generates the flight dataset as a star schema: a fact table
// holding integer foreign keys plus the cancelled measure, with separate
// airport, month, and airline dimension tables joined in through virtual
// columns. The bound dataset behaves identically to the denormalized
// Flights dataset (the paper: "our system can handle queries on star
// schemata as well"), exercising the fact-to-dimension join path during
// every scan.
func StarFlights(cfg FlightsConfig) (*olap.Dataset, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultFlightRows
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	airportH, dateH, airlineH := FlightHierarchies()

	// Dimension tables: one row per leaf member.
	airportAttr := table.NewStringColumn("airport")
	for _, a := range airportCatalog {
		airportAttr.Append(a.code)
	}
	type monthEntry struct {
		season, month string
		factor        float64
	}
	var months []monthEntry
	for _, season := range seasonOrder {
		raw := make([]float64, len(seasonMonths[season]))
		for i, m := range seasonMonths[season] {
			raw[i] = m.factor
		}
		norm := normalizeFactors(raw)
		for i, m := range seasonMonths[season] {
			months = append(months, monthEntry{season, m.month, norm[i]})
		}
	}
	monthAttr := table.NewStringColumn("month")
	for _, m := range months {
		monthAttr.Append(m.month)
	}
	airlineAttr := table.NewStringColumn("airline")
	for _, a := range airlineCatalog {
		airlineAttr.Append(a.name)
	}

	// Factor normalization identical to the denormalized generator.
	regionAirports := make(map[string][]int)
	for i, a := range airportCatalog {
		regionAirports[a.region] = append(regionAirports[a.region], i)
	}
	airportFactor := make([]float64, len(airportCatalog))
	for _, idxs := range regionAirports {
		raw := make([]float64, len(idxs))
		for j, i := range idxs {
			raw[j] = airportCatalog[i].factor
		}
		norm := normalizeFactors(raw)
		for j, i := range idxs {
			airportFactor[i] = norm[j]
		}
	}
	rawAirline := make([]float64, len(airlineCatalog))
	for i, a := range airlineCatalog {
		rawAirline[i] = a.factor
	}
	airlineFactor := normalizeFactors(rawAirline)

	// Fact table: foreign keys plus the measure.
	airportFK := table.NewInt64Column("airportID")
	monthFK := table.NewInt64Column("monthID")
	airlineFK := table.NewInt64Column("airlineID")
	cancelledCol := table.NewFloat64Column("cancelled")
	for i := 0; i < rows; i++ {
		a := rng.Intn(len(airportCatalog))
		m := rng.Intn(len(months))
		l := rng.Intn(len(airlineCatalog))
		base := TableTwelve[airportCatalog[a].region][months[m].season]
		p := base * airportFactor[a] * airlineFactor[l] * months[m].factor
		if p > 0.95 {
			p = 0.95
		}
		cancelled := 0.0
		if rng.Float64() < p {
			cancelled = 1.0
		}
		airportFK.Append(int64(a))
		monthFK.Append(int64(m))
		airlineFK.Append(int64(l))
		cancelledCol.Append(cancelled)
	}

	fact, err := table.New("flightsFact", airportFK, monthFK, airlineFK, cancelledCol)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	// Join views give the fact table the dimension source columns the
	// hierarchies bind against.
	for _, join := range []struct {
		name string
		fk   *table.Int64Column
		attr *table.StringColumn
	}{
		{"airport", airportFK, airportAttr},
		{"month", monthFK, monthAttr},
		{"airline", airlineFK, airlineAttr},
	} {
		jc, err := table.NewJoinColumn(join.name, join.fk, join.attr)
		if err != nil {
			return nil, fmt.Errorf("datagen: %w", err)
		}
		if err := fact.AddVirtual(jc); err != nil {
			return nil, fmt.Errorf("datagen: %w", err)
		}
	}
	d, err := olap.NewDataset(fact, airportH, dateH, airlineH)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	return d, nil
}
