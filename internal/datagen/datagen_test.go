package datagen

import (
	"math"
	"testing"

	"repro/internal/dimension"
	"repro/internal/olap"
)

func TestFlightsGeneration(t *testing.T) {
	d, err := Flights(FlightsConfig{Rows: 50000, Seed: 1})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	if d.Table().NumRows() != 50000 {
		t.Fatalf("rows = %d", d.Table().NumRows())
	}
	if len(d.Hierarchies()) != 3 {
		t.Fatalf("hierarchies = %d, want 3", len(d.Hierarchies()))
	}
	airport := d.HierarchyByName("start airport")
	if airport == nil || airport.Depth() != 4 {
		t.Fatal("start airport hierarchy missing or wrong depth")
	}
	if len(airport.MembersAt(1)) != 5 {
		t.Errorf("regions = %d, want 5", len(airport.MembersAt(1)))
	}
	date := d.HierarchyByName("flight date")
	if len(date.MembersAt(1)) != 4 || len(date.MembersAt(2)) != 12 {
		t.Error("date hierarchy should have 4 seasons and 12 months")
	}
	airline := d.HierarchyByName("airline")
	if len(airline.MembersAt(1)) != 14 {
		t.Errorf("airlines = %d, want 14", len(airline.MembersAt(1)))
	}
}

func TestFlightsDefaultRows(t *testing.T) {
	if testing.Short() {
		t.Skip("default-size generation in short mode")
	}
	d, err := Flights(FlightsConfig{Seed: 1})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	if d.Table().NumRows() != DefaultFlightRows {
		t.Errorf("rows = %d, want %d", d.Table().NumRows(), DefaultFlightRows)
	}
}

func TestFlightsDeterministic(t *testing.T) {
	a, _ := Flights(FlightsConfig{Rows: 1000, Seed: 7})
	b, _ := Flights(FlightsConfig{Rows: 1000, Seed: 7})
	ca, _ := a.Measure("cancelled")
	cb, _ := b.Measure("cancelled")
	for i := 0; i < 1000; i++ {
		if ca.Float(i) != cb.Float(i) {
			t.Fatal("same seed should generate identical data")
		}
	}
	c, _ := Flights(FlightsConfig{Rows: 1000, Seed: 8})
	cc, _ := c.Measure("cancelled")
	same := true
	for i := 0; i < 1000; i++ {
		if ca.Float(i) != cc.Float(i) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

// TestFlightsPlantedEffects checks that exact evaluation of the synthetic
// data approximates the Table 12 region-by-season probabilities.
func TestFlightsPlantedEffects(t *testing.T) {
	d, err := Flights(FlightsConfig{Rows: 120000, Seed: 3})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	date := d.HierarchyByName("flight date")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{
			{Hierarchy: airport, Level: 1},
			{Hierarchy: date, Level: 1},
		},
	}
	r, err := olap.Evaluate(d, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s := r.Space()
	for i := 0; i < s.Size(); i++ {
		coords := s.Coordinates(i)
		want := TableTwelve[coords[0].Name][coords[1].Name]
		got := r.Value(i)
		// With ~6000 rows per cell, allow a generous tolerance but require
		// the same order of magnitude and rank structure.
		if math.Abs(got-want) > want*0.5+0.004 {
			t.Errorf("%s: got %.5f, planted %.5f", s.AggregateName(i), got, want)
		}
	}
	// Winter in the NE must dominate everything else, as in Table 12.
	ne := airport.FindMember("the North East")
	winter := date.FindMember("Winter")
	neWinter := s.IndexOf([]*dimension.Member{ne, winter})
	if neWinter < 0 {
		t.Fatal("NE/Winter aggregate not found")
	}
	top := r.Value(neWinter)
	for i := 0; i < s.Size(); i++ {
		if i != neWinter && r.Value(i) >= top {
			t.Errorf("%s (%.5f) should be below NE/Winter (%.5f)",
				s.AggregateName(i), r.Value(i), top)
		}
	}
}

func TestSalariesGeneration(t *testing.T) {
	d, err := Salaries(SalariesConfig{Seed: 2})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	if d.Table().NumRows() != DefaultSalaryRows {
		t.Fatalf("rows = %d, want %d", d.Table().NumRows(), DefaultSalaryRows)
	}
	loc := d.HierarchyByName("college location")
	if loc == nil || loc.Depth() != 3 {
		t.Fatal("college location hierarchy wrong")
	}
	if len(loc.MembersAt(1)) != 4 {
		t.Errorf("regions = %d, want 4", len(loc.MembersAt(1)))
	}
	start := d.HierarchyByName("start salary")
	if len(start.MembersAt(1)) != 2 || len(start.MembersAt(2)) != 5 {
		t.Error("start salary hierarchy wrong")
	}
}

// TestSalariesPlantedEffects verifies the Northeast premium and the
// start-salary gradient used by the paper's example speeches.
func TestSalariesPlantedEffects(t *testing.T) {
	d, err := Salaries(SalariesConfig{Rows: 3200, Seed: 5})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	loc := d.HierarchyByName("college location")
	q := olap.Query{
		Fct: olap.Avg, Col: "midCareerSalary",
		GroupBy: []olap.GroupBy{{Hierarchy: loc, Level: 1}},
	}
	r, err := olap.Evaluate(d, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s := r.Space()
	byName := map[string]float64{}
	for i := 0; i < s.Size(); i++ {
		byName[s.AggregateName(i)] = r.Value(i)
	}
	if byName["the Northeast"] <= byName["the South"] {
		t.Errorf("Northeast (%v) should out-earn the South (%v)",
			byName["the Northeast"], byName["the South"])
	}

	start := d.HierarchyByName("start salary")
	q2 := olap.Query{
		Fct: olap.Avg, Col: "midCareerSalary",
		GroupBy: []olap.GroupBy{{Hierarchy: start, Level: 1}},
	}
	r2, err := olap.Evaluate(d, q2)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s2 := r2.Space()
	by2 := map[string]float64{}
	for i := 0; i < s2.Size(); i++ {
		by2[s2.AggregateName(i)] = r2.Value(i)
	}
	if by2["at least 50 K"] <= by2["less than 50 K"] {
		t.Error("higher start salary should imply higher mid-career salary")
	}
}

func TestSalariesRowOverride(t *testing.T) {
	d, err := Salaries(SalariesConfig{Rows: 64, Seed: 1})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	if d.Table().NumRows() != 64 {
		t.Errorf("rows = %d, want 64", d.Table().NumRows())
	}
}
