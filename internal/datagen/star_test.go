package datagen

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

func TestStarFlightsMatchesDenormalized(t *testing.T) {
	// Same seed and rows: the star-schema dataset must produce the exact
	// same cancellation structure as the denormalized one, since the
	// generators share factor normalization and random stream consumption
	// order.
	star, err := StarFlights(FlightsConfig{Rows: 30000, Seed: 9})
	if err != nil {
		t.Fatalf("StarFlights: %v", err)
	}
	flat, err := Flights(FlightsConfig{Rows: 30000, Seed: 9})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := func(d *olap.Dataset) olap.Query {
		return olap.Query{
			Fct: olap.Avg, Col: "cancelled",
			GroupBy: []olap.GroupBy{
				{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
				{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
			},
		}
	}
	starRes, err := olap.Evaluate(star, q(star))
	if err != nil {
		t.Fatalf("Evaluate star: %v", err)
	}
	flatRes, err := olap.Evaluate(flat, q(flat))
	if err != nil {
		t.Fatalf("Evaluate flat: %v", err)
	}
	if starRes.Space().Size() != flatRes.Space().Size() {
		t.Fatalf("space sizes differ: %d vs %d", starRes.Space().Size(), flatRes.Space().Size())
	}
	// Match cells by name: member enumeration order may differ.
	flatByName := map[string]float64{}
	for i := 0; i < flatRes.Space().Size(); i++ {
		flatByName[flatRes.Space().AggregateName(i)] = flatRes.Value(i)
	}
	for i := 0; i < starRes.Space().Size(); i++ {
		name := starRes.Space().AggregateName(i)
		got := starRes.Value(i)
		want, ok := flatByName[name]
		if !ok {
			t.Fatalf("aggregate %q missing from flat result", name)
		}
		if math.IsNaN(got) != math.IsNaN(want) || (!math.IsNaN(got) && math.Abs(got-want) > 1e-12) {
			t.Errorf("%s: star %v, flat %v", name, got, want)
		}
	}
}

func TestStarFlightsVocalizes(t *testing.T) {
	star, err := StarFlights(FlightsConfig{Rows: 20000, Seed: 10})
	if err != nil {
		t.Fatalf("StarFlights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: star.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: star.HierarchyByName("flight date"), Level: 1},
		},
	}
	cfg := core.Config{
		Format:               speech.PercentFormat,
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 1000,
		Percents:             []int{50, 100},
	}
	out, err := core.NewHolistic(star, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic over star schema: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Fatal("no baseline produced")
	}
	quality, err := core.ExactQuality(star, q, out, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if quality <= 0 {
		t.Errorf("quality = %v, want positive", quality)
	}
}

func TestStarFlightsFactSchema(t *testing.T) {
	star, err := StarFlights(FlightsConfig{Rows: 100, Seed: 2})
	if err != nil {
		t.Fatalf("StarFlights: %v", err)
	}
	tab := star.Table()
	// The fact table stores only FKs and the measure; dimension values
	// come in through virtuals.
	if tab.NumColumns() != 4 {
		t.Errorf("fact columns = %d, want 4", tab.NumColumns())
	}
	for _, v := range []string{"airport", "month", "airline"} {
		if _, err := tab.Accessor(v); err != nil {
			t.Errorf("virtual %q missing: %v", v, err)
		}
	}
}
