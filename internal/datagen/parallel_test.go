package datagen

import (
	"math"
	"testing"

	"repro/internal/olap"
	"repro/internal/table"
)

// grandCancelRate evaluates the overall cancellation average exactly.
func grandCancelRate(t *testing.T, d *olap.Dataset) float64 {
	t.Helper()
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: d.HierarchyByName("start airport"), Level: 1}},
	}
	r, err := olap.Evaluate(d, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	return r.GrandValue()
}

// TestFlightsParallelDeterministic regenerates with the same seed and
// worker count and requires identical rows.
func TestFlightsParallelDeterministic(t *testing.T) {
	cfg := FlightsConfig{Rows: 30000, Seed: 7, Workers: 4}
	d1, err := Flights(cfg)
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	d2, err := Flights(cfg)
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	t1, t2 := d1.Table(), d2.Table()
	if t1.NumRows() != cfg.Rows || t2.NumRows() != cfg.Rows {
		t.Fatalf("row counts %d, %d, want %d", t1.NumRows(), t2.NumRows(), cfg.Rows)
	}
	for _, name := range []string{"airport", "month", "airline"} {
		c1 := t1.Column(name).(*table.StringColumn)
		c2 := t2.Column(name).(*table.StringColumn)
		for row := 0; row < cfg.Rows; row++ {
			if c1.StringAt(row) != c2.StringAt(row) {
				t.Fatalf("column %s row %d: %q != %q", name, row, c1.StringAt(row), c2.StringAt(row))
			}
		}
	}
	m1 := t1.Column("cancelled").(*table.Float64Column)
	m2 := t2.Column("cancelled").(*table.Float64Column)
	for row := 0; row < cfg.Rows; row++ {
		if m1.Float(row) != m2.Float(row) {
			t.Fatalf("cancelled row %d: %v != %v", row, m1.Float(row), m2.Float(row))
		}
	}
}

// TestFlightsParallelWorkerCountChangesSample documents that the worker
// count is part of the stream identity: different counts give different
// (equally valid) samples.
func TestFlightsParallelWorkerCountChangesSample(t *testing.T) {
	d2, err := Flights(FlightsConfig{Rows: 30000, Seed: 7, Workers: 2})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	d4, err := Flights(FlightsConfig{Rows: 30000, Seed: 7, Workers: 4})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	a2 := d2.Table().Column("airport").(*table.StringColumn)
	a4 := d4.Table().Column("airport").(*table.StringColumn)
	same := true
	for row := 0; row < 30000 && same; row++ {
		same = a2.StringAt(row) == a4.StringAt(row)
	}
	if same {
		t.Error("2-worker and 4-worker streams should differ")
	}
}

// TestFlightsParallelStatsMatchSequential checks the parallel sample is
// statistically equivalent to the sequential one: the exact grand
// cancellation rates of independently drawn 100k-row datasets must agree
// within a few standard errors.
func TestFlightsParallelStatsMatchSequential(t *testing.T) {
	const rows = 100000
	seq, err := Flights(FlightsConfig{Rows: rows, Seed: 11})
	if err != nil {
		t.Fatalf("sequential Flights: %v", err)
	}
	par, err := Flights(FlightsConfig{Rows: rows, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatalf("parallel Flights: %v", err)
	}
	rs, rp := grandCancelRate(t, seq), grandCancelRate(t, par)
	// Rate ~0.016 ⇒ stderr ~0.0004 at 100k rows; 0.002 is five combined
	// standard errors.
	if math.Abs(rs-rp) > 0.002 {
		t.Errorf("grand cancellation rate: sequential %v, parallel %v", rs, rp)
	}
	// The dictionaries must cover the same catalogs.
	for _, name := range []string{"airport", "month", "airline"} {
		cs := seq.Table().Column(name).(*table.StringColumn)
		cp := par.Table().Column(name).(*table.StringColumn)
		if len(cs.Dict()) != len(cp.Dict()) {
			t.Errorf("column %s: dict size %d sequential, %d parallel", name, len(cs.Dict()), len(cp.Dict()))
		}
	}
}
