package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/table"
)

// SalariesConfig parameterizes the college-salary dataset.
type SalariesConfig struct {
	// Rows is the number of colleges; the paper's dataset has 320.
	// Defaults to 320 when zero.
	Rows int
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultSalaryRows matches the paper's dataset size.
const DefaultSalaryRows = 320

// salaryRegion describes one region with its states and mid-career salary
// multiplier (the paper's running example: the North East pays about 5%
// above average).
type salaryRegion struct {
	name   string
	states []string
	factor float64
}

var salaryRegions = []salaryRegion{
	{"the Northeast", []string{"New York", "Massachusetts", "Pennsylvania", "Connecticut"}, 1.05},
	{"the Midwest", []string{"Illinois", "Michigan", "Ohio", "Minnesota"}, 0.97},
	{"the South", []string{"Texas", "Georgia", "Florida", "Virginia"}, 0.95},
	{"the West", []string{"California", "Washington", "Colorado", "Oregon"}, 1.03},
}

// salaryBuckets are the precise start-salary buckets with their rough
// grouping and the mid-career multiplier (higher start salary correlates
// with higher mid-career salary: +20% for at-least-50 K in the paper's
// example speech).
type salaryBucket struct {
	rough  string
	name   string
	factor float64
}

var salaryBuckets = []salaryBucket{
	{"less than 50 K", "30 K", 0.82},
	{"less than 50 K", "40 K", 0.92},
	{"at least 50 K", "50 K", 1.05},
	{"at least 50 K", "60 K", 1.12},
	{"at least 50 K", "70 K", 1.22},
}

// salaryBase is the grand-average mid-career salary the multipliers
// modulate; the paper's example speeches quote "90 K" and "80 K".
const salaryBase = 85000.0

// SalaryHierarchies constructs the two salary dimensions (unbound).
// College names are generated as "<State> College <n>" so leaves stay
// unique across states.
func SalaryHierarchies(rows int) (location, start *dimension.Hierarchy, colleges []string, regionsOf map[string]int, statesOf map[string]string) {
	if rows <= 0 {
		rows = DefaultSalaryRows
	}
	location = dimension.MustNewHierarchy(
		"college location", "college", "graduates from", "any college",
		[]string{"region", "state", "college"})
	start = dimension.MustNewHierarchy(
		"start salary", "startSalary", "a start salary of", "any amount",
		[]string{"rough start salary", "start salary"})
	for _, b := range salaryBuckets {
		start.MustAddPath(b.rough, b.name)
	}
	regionsOf = make(map[string]int)
	statesOf = make(map[string]string)
	for i := 0; i < rows; i++ {
		r := i % len(salaryRegions)
		region := salaryRegions[r]
		state := region.states[(i/len(salaryRegions))%len(region.states)]
		college := fmt.Sprintf("%s College %d", state, i/(len(salaryRegions)*len(region.states))+1)
		location.MustAddPath(region.name, state, college)
		colleges = append(colleges, college)
		regionsOf[college] = r
		statesOf[college] = state
	}
	return location, start, colleges, regionsOf, statesOf
}

// Salaries generates the synthetic college-salary dataset: one row per
// college with its start-salary bucket and mid-career salary.
func Salaries(cfg SalariesConfig) (*olap.Dataset, error) {
	rows := cfg.Rows
	if rows <= 0 {
		rows = DefaultSalaryRows
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	location, start, colleges, regionsOf, _ := SalaryHierarchies(rows)

	collegeCol := table.NewStringColumn("college")
	startCol := table.NewStringColumn("startSalary")
	midCol := table.NewFloat64Column("midCareerSalary")

	for _, college := range colleges {
		b := rng.Intn(len(salaryBuckets))
		bucket := salaryBuckets[b]
		region := salaryRegions[regionsOf[college]]
		noise := 1 + 0.08*rng.NormFloat64()
		if noise < 0.6 {
			noise = 0.6
		}
		mid := salaryBase * region.factor * bucket.factor * noise
		collegeCol.Append(college)
		startCol.Append(bucket.name)
		midCol.Append(mid)
	}

	tab, err := table.New("salaries", collegeCol, startCol, midCol)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	d, err := olap.NewDataset(tab, location, start)
	if err != nil {
		return nil, fmt.Errorf("datagen: %w", err)
	}
	return d, nil
}
