package nlq

import (
	"strings"
	"testing"

	"repro/internal/olap"
)

func TestBackUndoesDrill(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("drill down start airport"); err != nil {
		t.Fatalf("drill: %v", err)
	}
	if got := s.Query().GroupBy[0].Level; got != 2 {
		t.Fatalf("level = %d, want 2", got)
	}
	r, err := s.Parse("go back")
	if err != nil {
		t.Fatalf("back: %v", err)
	}
	if r.Action != "back" {
		t.Errorf("action = %q", r.Action)
	}
	if got := s.Query().GroupBy[0].Level; got != 1 {
		t.Errorf("level after back = %d, want 1", got)
	}
}

func TestBackUndoesFilter(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("only flights in Winter"); err != nil {
		t.Fatalf("filter: %v", err)
	}
	if len(s.Query().Filters) != 1 {
		t.Fatal("expected a filter")
	}
	if _, err := s.Parse("undo that"); err != nil {
		t.Fatalf("undo: %v", err)
	}
	if len(s.Query().Filters) != 0 {
		t.Error("filter should be undone")
	}
}

func TestBackWithEmptyHistory(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("back"); err == nil {
		t.Error("back on fresh session should fail")
	}
}

func TestBackChain(t *testing.T) {
	s := newFlightsSession(t)
	inputs := []string{
		"break down by season",
		"drill down flight date",
		"only Winter flights",
	}
	for _, in := range inputs {
		if _, err := s.Parse(in); err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
	}
	for range inputs {
		if _, err := s.Parse("back"); err != nil {
			t.Fatalf("back: %v", err)
		}
	}
	q := s.Query()
	if len(q.GroupBy) != 1 || q.GroupBy[0].Level != 1 || len(q.Filters) != 0 {
		t.Errorf("state after full undo = %+v", q)
	}
}

func TestAggregationSwitch(t *testing.T) {
	s := newFlightsSession(t)
	r, err := s.Parse("how many flights are there")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !r.IsQuery {
		t.Error("function switch should re-query")
	}
	if got := s.Query().Fct; got != olap.Count {
		t.Errorf("fct = %v, want count", got)
	}
	if _, err := s.Parse("back to the average please"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// "back" wins over "average" since it is checked first; the state
	// reverts to the pre-count snapshot.
	if got := s.Query().Fct; got != olap.Avg {
		t.Errorf("fct after back = %v, want average", got)
	}
	if _, err := s.Parse("give me the total instead"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := s.Query().Fct; got != olap.Sum {
		t.Errorf("fct = %v, want sum", got)
	}
}

func TestAggregationSwitchWithDimensions(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("count of flights by region and season"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q := s.Query()
	if q.Fct != olap.Count {
		t.Errorf("fct = %v", q.Fct)
	}
	if len(q.GroupBy) != 2 {
		t.Errorf("groupBy = %d dims", len(q.GroupBy))
	}
	// One back undoes the whole combined utterance.
	if _, err := s.Parse("back"); err != nil {
		t.Fatalf("back: %v", err)
	}
	q = s.Query()
	if q.Fct != olap.Avg || len(q.GroupBy) != 1 {
		t.Errorf("state after back = fct %v, %d dims", q.Fct, len(q.GroupBy))
	}
}

func TestSummaryMentionsFunction(t *testing.T) {
	s := newFlightsSession(t)
	if !strings.Contains(s.Summary(), "average") {
		t.Errorf("summary = %q", s.Summary())
	}
	if _, err := s.Parse("switch to count"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !strings.Contains(s.Summary(), "count") {
		t.Errorf("summary = %q", s.Summary())
	}
}

func TestMatchAggFunc(t *testing.T) {
	cases := []struct {
		text string
		fct  olap.AggFunc
		ok   bool
	}{
		{"how many flights", olap.Count, true},
		{"the number of flights", olap.Count, true},
		{"total cancellations", olap.Sum, true},
		{"the sum please", olap.Sum, true},
		{"typical value", olap.Avg, true},
		{"the mean", olap.Avg, true},
		{"drill down", 0, false},
		{"demeanor counts for nothing", olap.Count, true}, // "counts"?? no: "count" word-bound
	}
	for _, c := range cases[:len(cases)-1] {
		fct, ok := matchAggFunc(c.text)
		if ok != c.ok || (ok && fct != c.fct) {
			t.Errorf("matchAggFunc(%q) = %v,%v", c.text, fct, ok)
		}
	}
	// Word boundaries: "demeanor" and "counts" must not match.
	if _, ok := matchAggFunc("demeanor accounts for nothing"); ok {
		t.Error("substrings inside words should not match")
	}
}

func TestHelpMentionsNewKeywords(t *testing.T) {
	s := newFlightsSession(t)
	help := s.HelpText()
	for _, kw := range []string{"back", "count", "total", "average"} {
		if !strings.Contains(help, kw) {
			t.Errorf("help missing %q", kw)
		}
	}
}
