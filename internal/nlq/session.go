// Package nlq implements the deliberately simple keyword-based input
// interpreter of the paper's study interface: users drill down, roll up,
// and add or remove dimensions in the OLAP result by mentioning related
// keywords, and can ask for help to hear all available keywords. A Session
// holds one user's exploration state and turns each utterance into the
// next OLAP query.
package nlq

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/dimension"
	"repro/internal/olap"
)

// Session is one user's exploration state over a dataset.
type Session struct {
	dataset *olap.Dataset
	fct     olap.AggFunc
	col     string
	colDesc string

	levels  map[*dimension.Hierarchy]int
	order   []*dimension.Hierarchy
	filters map[*dimension.Hierarchy]*dimension.Member
	// window restricts queries to rows ingested in the trailing stream-time
	// window ("in the last hour"); zero means the whole table.
	window time.Duration

	// history holds snapshots for the "back" command, most recent last.
	history []snapshot
}

// snapshot captures the mutable exploration state.
type snapshot struct {
	fct     olap.AggFunc
	levels  map[*dimension.Hierarchy]int
	order   []*dimension.Hierarchy
	filters map[*dimension.Hierarchy]*dimension.Member
	window  time.Duration
}

// maxHistory bounds the undo stack.
const maxHistory = 64

// capture snapshots the current state.
func (s *Session) capture() snapshot {
	snap := snapshot{
		fct:     s.fct,
		levels:  make(map[*dimension.Hierarchy]int, len(s.levels)),
		order:   append([]*dimension.Hierarchy{}, s.order...),
		filters: make(map[*dimension.Hierarchy]*dimension.Member, len(s.filters)),
		window:  s.window,
	}
	for h, l := range s.levels {
		snap.levels[h] = l
	}
	for h, m := range s.filters {
		snap.filters[h] = m
	}
	return snap
}

// pushHistory records the current state before a mutation.
func (s *Session) pushHistory() {
	s.history = append(s.history, s.capture())
	if len(s.history) > maxHistory {
		s.history = s.history[len(s.history)-maxHistory:]
	}
}

// popHistory restores the most recent snapshot; false if none exists.
func (s *Session) popHistory() bool {
	if len(s.history) == 0 {
		return false
	}
	snap := s.history[len(s.history)-1]
	s.history = s.history[:len(s.history)-1]
	s.fct = snap.fct
	s.levels = snap.levels
	s.order = snap.order
	s.filters = snap.filters
	s.window = snap.window
	return true
}

// clone deep-copies a snapshot's mutable maps and slices.
func (s snapshot) clone() snapshot {
	c := snapshot{
		fct:     s.fct,
		levels:  make(map[*dimension.Hierarchy]int, len(s.levels)),
		order:   append([]*dimension.Hierarchy{}, s.order...),
		filters: make(map[*dimension.Hierarchy]*dimension.Member, len(s.filters)),
		window:  s.window,
	}
	for h, l := range s.levels {
		c.levels[h] = l
	}
	for h, m := range s.filters {
		c.filters[h] = m
	}
	return c
}

// Clone returns an independent deep copy of the session's exploration
// state, including the undo history (the immutable dataset is shared).
// The web layer stages Parse on a clone so a request shed by admission
// control afterwards leaves the live session untouched — a client retry
// must not double-apply the keyword command.
func (s *Session) Clone() *Session {
	c := &Session{
		dataset: s.dataset,
		fct:     s.fct,
		col:     s.col,
		colDesc: s.colDesc,
		window:  s.window,
		history: make([]snapshot, len(s.history)),
	}
	cur := s.capture()
	c.levels, c.order, c.filters = cur.levels, cur.order, cur.filters
	// History snapshots must be copied too: popHistory installs a
	// snapshot's maps as the live state, which later mutates them.
	for i, snap := range s.history {
		c.history[i] = snap.clone()
	}
	return c
}

// NewSession starts a session for the dataset's given measure. The initial
// state groups by the first level of the first hierarchy, so the first
// query is always valid.
func NewSession(d *olap.Dataset, fct olap.AggFunc, col, colDesc string) (*Session, error) {
	if len(d.Hierarchies()) == 0 {
		return nil, errors.New("nlq: dataset has no dimensions")
	}
	s := &Session{
		dataset: d,
		fct:     fct,
		col:     col,
		colDesc: colDesc,
		levels:  make(map[*dimension.Hierarchy]int),
		filters: make(map[*dimension.Hierarchy]*dimension.Member),
	}
	first := d.Hierarchies()[0]
	s.levels[first] = 1
	s.order = []*dimension.Hierarchy{first}
	return s, nil
}

// Query assembles the current OLAP query, reconciling filter and group
// levels (a filter finer than the grouping level raises the level).
func (s *Session) Query() olap.Query {
	q := olap.Query{Fct: s.fct, Col: s.col, ColDescription: s.colDesc}
	for _, h := range s.order {
		level := s.levels[h]
		if f, ok := s.filters[h]; ok && f.Level > level {
			level = f.Level
		}
		q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: h, Level: level})
	}
	for _, h := range s.dataset.Hierarchies() {
		if f, ok := s.filters[h]; ok && !f.IsRoot() {
			q.Filters = append(q.Filters, f)
		}
	}
	if s.window > 0 {
		q.Window = olap.Window{Last: s.window}
	}
	return q
}

// Window returns the active trailing stream-time window (zero = whole table).
func (s *Session) Window() time.Duration { return s.window }

// Response reports how an utterance changed the session.
type Response struct {
	// Action names what happened ("drill down", "filter", "help", …).
	Action string
	// Message is spoken feedback (the help text, or a state summary).
	Message string
	// IsQuery is true when the new state should be vocalized.
	IsQuery bool
}

// ErrNotUnderstood reports input without any recognized keyword.
var ErrNotUnderstood = errors.New("nlq: input not understood; say help for available keywords")

// Parse interprets one utterance and updates the session state.
func (s *Session) Parse(input string) (Response, error) {
	text := strings.ToLower(strings.TrimSpace(input))
	if text == "" {
		return Response{}, ErrNotUnderstood
	}
	if strings.Contains(text, "help") {
		return Response{Action: "help", Message: s.HelpText()}, nil
	}
	if containsWord(text, "back") || containsWord(text, "undo") {
		if !s.popHistory() {
			return Response{}, errors.New("nlq: nothing to go back to")
		}
		return Response{Action: "back", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil
	}
	if strings.Contains(text, "reset") {
		s.pushHistory()
		first := s.dataset.Hierarchies()[0]
		s.levels = map[*dimension.Hierarchy]int{first: 1}
		s.order = []*dimension.Hierarchy{first}
		s.filters = make(map[*dimension.Hierarchy]*dimension.Member)
		s.window = 0
		return Response{Action: "reset", Message: "Starting over. " + s.Summary(), IsQuery: true}, nil
	}
	// Aggregation-function switches: "how many"/"count" -> count,
	// "total"/"sum" -> sum, "average"/"typical" -> average.
	fctChanged := false
	if fct, ok := matchAggFunc(text); ok && fct != s.fct {
		s.pushHistory()
		s.fct = fct
		fctChanged = true
	}
	// Time-window switches: "in the last hour" scopes the session to the
	// trailing stream-time window, "all time" widens it back out.
	windowChanged := false
	if d, set, clear := matchWindow(text); (set && d != s.window) || (clear && s.window > 0) {
		if !fctChanged {
			s.pushHistory()
		}
		s.window = d
		windowChanged = true
	}
	statePushed := fctChanged || windowChanged

	switch {
	case strings.Contains(text, "drill"):
		h := s.matchHierarchy(text)
		if h == nil {
			h = s.lastGrouped()
		}
		if h == nil {
			return Response{}, fmt.Errorf("nlq: no dimension to drill into")
		}
		if !statePushed {
			s.pushHistory()
		}
		if s.levels[h] == 0 {
			s.addDimension(h, 1)
		} else if s.levels[h] < h.Depth() {
			s.levels[h]++
		}
		return Response{Action: "drill down", Message: s.Summary(), IsQuery: true}, nil

	case strings.Contains(text, "roll"):
		h := s.matchHierarchy(text)
		if h == nil {
			h = s.lastGrouped()
		}
		if h == nil || s.levels[h] == 0 {
			return Response{}, fmt.Errorf("nlq: no dimension to roll up")
		}
		if !statePushed {
			s.pushHistory()
		}
		if s.levels[h] > 1 {
			s.levels[h]--
		} else {
			s.removeDimension(h)
		}
		return Response{Action: "roll up", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil

	case strings.Contains(text, "remove") || strings.Contains(text, "drop"):
		h := s.matchHierarchy(text)
		if h == nil || s.levels[h] == 0 {
			return Response{}, fmt.Errorf("nlq: no matching dimension to remove")
		}
		if !statePushed {
			s.pushHistory()
		}
		s.removeDimension(h)
		return Response{Action: "remove", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil

	case strings.Contains(text, "clear"):
		if !statePushed {
			s.pushHistory()
		}
		s.filters = make(map[*dimension.Hierarchy]*dimension.Member)
		return Response{Action: "clear filters", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil
	}

	// Declarative: collect mentioned level names and member names.
	type dimAdd struct {
		h     *dimension.Hierarchy
		level int
	}
	var addDims []dimAdd
	for _, h := range s.dataset.Hierarchies() {
		for level := 1; level <= h.Depth(); level++ {
			if containsWord(text, strings.ToLower(h.LevelName(level))) {
				addDims = append(addDims, dimAdd{h, level})
			}
		}
		if containsWord(text, strings.ToLower(h.Name)) && s.levels[h] == 0 {
			addDims = append(addDims, dimAdd{h, 1})
		}
	}
	// Synonyms only when the dataset's own vocabulary did not already name
	// the hierarchy ("same but by carrier" adds the airline dimension).
	if h := s.synonymHierarchy(text); h != nil && s.levels[h] == 0 {
		mentioned := false
		for _, ad := range addDims {
			if ad.h == h {
				mentioned = true
				break
			}
		}
		if !mentioned {
			addDims = append(addDims, dimAdd{h, 1})
		}
	}
	members := s.matchMembers(text)
	if len(addDims) == 0 && len(members) == 0 {
		// Tolerate speech-recognition typos before giving up.
		members = s.fuzzyMatchMembers(text)
	}
	if len(addDims) == 0 && len(members) == 0 {
		if windowChanged {
			return Response{Action: "window", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil
		}
		if fctChanged {
			return Response{Action: "function", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil
		}
		return Response{}, ErrNotUnderstood
	}
	if !statePushed {
		s.pushHistory()
	}
	for _, ad := range addDims {
		s.addDimension(ad.h, ad.level)
	}
	for _, m := range members {
		s.filters[m.Hierarchy()] = m
	}
	return Response{Action: "query", Message: s.Summary(), IsQuery: s.anyGrouped()}, nil
}

// matchAggFunc detects a requested aggregation function.
func matchAggFunc(text string) (olap.AggFunc, bool) {
	switch {
	case strings.Contains(text, "how many") || containsWord(text, "count") || containsWord(text, "number"):
		return olap.Count, true
	case containsWord(text, "total") || containsWord(text, "sum"):
		return olap.Sum, true
	case containsWord(text, "average") || containsWord(text, "typical") || containsWord(text, "mean"):
		return olap.Avg, true
	default:
		return 0, false
	}
}

// windowUnits maps spoken time units to durations.
var windowUnits = map[string]time.Duration{
	"second": time.Second, "seconds": time.Second,
	"minute": time.Minute, "minutes": time.Minute,
	"hour": time.Hour, "hours": time.Hour,
	"day": 24 * time.Hour, "days": 24 * time.Hour,
}

// matchWindow detects a trailing time-window phrase: "in the last hour",
// "past 30 minutes", "last 2 days". It returns set=true with the width, or
// clear=true for "all time" / "entire history", which widens the scope
// back to the whole table.
func matchWindow(text string) (d time.Duration, set, clear bool) {
	if strings.Contains(text, "all time") || strings.Contains(text, "entire history") ||
		strings.Contains(text, "whole history") {
		return 0, false, true
	}
	words := splitWords(text)
	for i, w := range words {
		if w != "last" && w != "past" {
			continue
		}
		n, j := 1, i+1
		if j < len(words) {
			if v, err := strconv.Atoi(words[j]); err == nil {
				n, j = v, j+1
			}
		}
		if j >= len(words) || n <= 0 {
			continue
		}
		if unit, ok := windowUnits[words[j]]; ok {
			return time.Duration(n) * unit, true, false
		}
	}
	return 0, false, false
}

// windowPhrase renders a window width as spoken English.
func windowPhrase(d time.Duration) string {
	switch {
	case d == 24*time.Hour:
		return "the last day"
	case d == time.Hour:
		return "the last hour"
	case d == time.Minute:
		return "the last minute"
	case d >= 24*time.Hour && d%(24*time.Hour) == 0:
		return fmt.Sprintf("the last %d days", d/(24*time.Hour))
	case d%time.Hour == 0:
		return fmt.Sprintf("the last %d hours", d/time.Hour)
	case d%time.Minute == 0:
		return fmt.Sprintf("the last %d minutes", d/time.Minute)
	default:
		return fmt.Sprintf("the last %d seconds", d/time.Second)
	}
}

// addDimension groups by h at the given level (idempotent on order).
func (s *Session) addDimension(h *dimension.Hierarchy, level int) {
	if s.levels[h] == 0 {
		s.order = append(s.order, h)
	}
	if level > h.Depth() {
		level = h.Depth()
	}
	s.levels[h] = level
}

// removeDimension stops grouping by h.
func (s *Session) removeDimension(h *dimension.Hierarchy) {
	delete(s.levels, h)
	for i, o := range s.order {
		if o == h {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// lastGrouped returns the most recently added grouped hierarchy.
func (s *Session) lastGrouped() *dimension.Hierarchy {
	if len(s.order) == 0 {
		return nil
	}
	return s.order[len(s.order)-1]
}

// anyGrouped reports whether at least one dimension is grouped.
func (s *Session) anyGrouped() bool { return len(s.order) > 0 }

// matchHierarchy finds a hierarchy mentioned by name or level name; spoken
// synonyms ("carrier" for the airline dimension) are a fallback so the
// dataset's own vocabulary always wins.
func (s *Session) matchHierarchy(text string) *dimension.Hierarchy {
	for _, h := range s.dataset.Hierarchies() {
		if containsWord(text, strings.ToLower(h.Name)) {
			return h
		}
		for level := 1; level <= h.Depth(); level++ {
			if containsWord(text, strings.ToLower(h.LevelName(level))) {
				return h
			}
		}
	}
	return s.synonymHierarchy(text)
}

// hierarchySynonyms maps lowercase spoken aliases to canonical hierarchy
// names. Voice users reach for everyday words the schema does not use
// ("carrier" instead of "airline"); ASR output never sees the schema at
// all. Aliases resolve only against hierarchies the bound dataset actually
// has, so datasets owning an identically named dimension are unaffected
// (exact matches are tried first everywhere). The map is shared with the
// semantic-cache canonicalizer via CanonicalName, so the parser and the
// cache key can never disagree about what an alias means.
var hierarchySynonyms = map[string]string{
	"carrier":    "airline",
	"carriers":   "airline",
	"operator":   "airline",
	"operators":  "airline",
	"school":     "college location",
	"schools":    "college location",
	"university": "college location",
}

// CanonicalName resolves a spoken dimension phrase to its canonical
// lowercase hierarchy name: aliases map through the synonym table, every
// other name just lowercases. Cache canonicalization uses this so a key
// built from "carrier" and one built from "airline" collide on purpose.
func CanonicalName(name string) string {
	lower := strings.ToLower(strings.TrimSpace(name))
	if canonical, ok := hierarchySynonyms[lower]; ok {
		return canonical
	}
	return lower
}

// synonymHierarchy resolves the first alias mentioned in text (in text
// order) to a bound hierarchy, or nil. Each word is one map probe instead
// of a scan over every alias.
func (s *Session) synonymHierarchy(text string) *dimension.Hierarchy {
	for _, word := range splitWords(text) {
		canonical, ok := hierarchySynonyms[word]
		if !ok {
			continue
		}
		for _, h := range s.dataset.Hierarchies() {
			if strings.EqualFold(h.Name, canonical) {
				return h
			}
		}
	}
	return nil
}

// splitWords breaks text into lowercase words on the same boundaries
// containsWord uses, so map-based alias lookup matches scan semantics.
func splitWords(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		return !(r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9')
	})
}

// matchMembers finds all members whose names appear in the text, keeping
// only the most specific match per hierarchy.
func (s *Session) matchMembers(text string) []*dimension.Member {
	best := make(map[*dimension.Hierarchy]*dimension.Member)
	for _, h := range s.dataset.Hierarchies() {
		for level := 1; level <= h.Depth(); level++ {
			for _, m := range h.MembersAt(level) {
				if containsWord(text, strings.ToLower(m.Name)) {
					if cur, ok := best[h]; !ok || m.Level > cur.Level {
						best[h] = m
					}
				}
			}
		}
	}
	var out []*dimension.Member
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Hierarchy().Name < out[j].Hierarchy().Name
	})
	return out
}

// Summary describes the current state in one spoken sentence.
func (s *Session) Summary() string {
	if !s.anyGrouped() {
		return "No dimensions selected."
	}
	var groups []string
	for _, h := range s.order {
		groups = append(groups, fmt.Sprintf("%s by %s", h.Name, h.LevelName(s.levels[h])))
	}
	msg := fmt.Sprintf("Reporting the %s. Breaking down %s.", s.fct, strings.Join(groups, " and "))
	var filters []string
	for _, h := range s.dataset.Hierarchies() {
		if f, ok := s.filters[h]; ok {
			filters = append(filters, h.Phrase(f))
		}
	}
	if len(filters) > 0 {
		msg += " Considering " + strings.Join(filters, " and ") + "."
	}
	if s.window > 0 {
		msg += " Limited to " + windowPhrase(s.window) + "."
	}
	return msg
}

// HelpText lists the available keywords, dimensions, and levels.
func (s *Session) HelpText() string {
	var b strings.Builder
	b.WriteString("You can say: drill down, roll up, remove, clear, back, reset, or help. ")
	b.WriteString("Say count, total, or average to change the aggregation. ")
	b.WriteString("Say in the last hour or the last 30 minutes to focus on ")
	b.WriteString("recently ingested data, and all time to widen back out. ")
	b.WriteString("You can mention dimension levels to break results down, ")
	b.WriteString("or member names to filter. Available dimensions: ")
	var dims []string
	for _, h := range s.dataset.Hierarchies() {
		var levels []string
		for level := 1; level <= h.Depth(); level++ {
			levels = append(levels, h.LevelName(level))
		}
		dims = append(dims, fmt.Sprintf("%s with levels %s", h.Name, strings.Join(levels, ", ")))
	}
	b.WriteString(strings.Join(dims, "; "))
	b.WriteString(".")
	return b.String()
}

// containsWord reports whether needle occurs in haystack on rough word
// boundaries, preventing "state" from matching "estate".
func containsWord(haystack, needle string) bool {
	if needle == "" {
		return false
	}
	idx := 0
	for {
		i := strings.Index(haystack[idx:], needle)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(needle)
		beforeOK := start == 0 || !isWordChar(haystack[start-1])
		afterOK := end == len(haystack) || !isWordChar(haystack[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
