package nlq

import (
	"math/rand"
	"strings"
)

// ASR-noise corpus generation. Speech recognizers mangle utterances in two
// characteristic ways: whole-word homophone confusions ("for" → "four",
// "winter" → "winner") and phoneme-level misspellings (vowel drift,
// confusable consonants, dropped or doubled letters). A Corrupter replays
// clean utterances through a seeded model of both, producing deterministic
// noisy corpora for conformance scenarios and for pinning the recovery
// rate of the fuzzy member matcher.

// CorruptConfig tunes a Corrupter.
type CorruptConfig struct {
	// Seed fixes the corruption stream: equal seeds over equal inputs
	// produce identical corpora.
	Seed int64
	// Rate is the per-word corruption probability in (0,1]; zero selects 1
	// (every eligible word is corrupted).
	Rate float64
	// Homophones enables whole-word homophone substitution before edit
	// noise is considered.
	Homophones bool
	// Protect lists extra words that are never corrupted, in addition to
	// the interpreter's command keywords (corrupting "drill" would change
	// the scripted intent, not simulate recognizer noise on content words).
	Protect []string
}

// Corrupter injects deterministic ASR-style noise into utterances.
type Corrupter struct {
	rng        *rand.Rand
	rate       float64
	homophones bool
	protect    map[string]bool
}

// minEditLen is the shortest word edit noise applies to. It mirrors
// maxEditDistance in fuzzy.go: names under five characters must match
// exactly, so corrupting them tests nothing but guaranteed failure.
const minEditLen = 5

// protectedKeywords is the interpreter's command vocabulary; corrupting
// these changes what the utterance asks for rather than how it sounds.
var protectedKeywords = []string{
	"drill", "down", "roll", "up", "remove", "drop", "clear", "back",
	"undo", "reset", "help", "count", "total", "sum", "average",
	"typical", "mean", "number", "how", "many", "break", "by", "only",
	"same", "but",
}

// homophoneTable maps words to recognizer-confusable spellings. Entries
// for content words stay within the fuzzy matcher's edit bounds; entries
// for stopwords are harmless to the interpreter either way.
var homophoneTable = map[string]string{
	"for":     "four",
	"to":      "two",
	"in":      "inn",
	"and":     "an",
	"winter":  "winner",
	"weather": "whether",
	"fair":    "fare",
	"plane":   "plain",
	"flight":  "flite",
}

// NewCorrupter returns a deterministic corrupter for cfg.
func NewCorrupter(cfg CorruptConfig) *Corrupter {
	rate := cfg.Rate
	if rate <= 0 || rate > 1 {
		rate = 1
	}
	c := &Corrupter{
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		rate:       rate,
		homophones: cfg.Homophones,
		protect:    make(map[string]bool, len(protectedKeywords)+len(cfg.Protect)),
	}
	for _, w := range protectedKeywords {
		c.protect[w] = true
	}
	for _, w := range cfg.Protect {
		c.protect[strings.ToLower(w)] = true
	}
	return c
}

// Corrupt returns utterance with seeded ASR noise applied word by word.
// Protected keywords pass through verbatim; words shorter than five
// characters are only ever replaced by homophones.
func (c *Corrupter) Corrupt(utterance string) string {
	words := strings.Fields(utterance)
	for i, w := range words {
		words[i] = c.corruptWord(w)
	}
	return strings.Join(words, " ")
}

// corruptWord draws the per-word corruption decision and applies one
// homophone substitution or one-to-two phoneme-level edits.
func (c *Corrupter) corruptWord(w string) string {
	lw := strings.ToLower(w)
	if c.protect[lw] {
		return w
	}
	if c.rng.Float64() >= c.rate {
		return w
	}
	if c.homophones {
		if h, ok := homophoneTable[lw]; ok {
			return h
		}
	}
	if len(lw) < minEditLen {
		return w
	}
	edits := 1
	if len(lw) >= 9 {
		// Long names tolerate (and attract) a second recognition slip.
		edits += c.rng.Intn(2)
	}
	b := []byte(lw)
	for i := 0; i < edits; i++ {
		b = c.edit(b)
	}
	return string(b)
}

// isVowel reports whether ch is an ASCII vowel.
func isVowel(ch byte) bool {
	return ch == 'a' || ch == 'e' || ch == 'i' || ch == 'o' || ch == 'u'
}

// consonantConfusions lists acoustically adjacent consonants.
var consonantConfusions = map[byte][]byte{
	'c': {'k', 's'}, 'k': {'c'}, 's': {'z', 'c'}, 'z': {'s'},
	'b': {'p'}, 'p': {'b'}, 'd': {'t'}, 't': {'d'},
	'g': {'k'}, 'v': {'f'}, 'f': {'v'},
	'm': {'n'}, 'n': {'m'}, 'l': {'r'}, 'r': {'l'},
}

// pickIndex returns a random index of w satisfying ok, or -1.
func pickIndex(rng *rand.Rand, w []byte, ok func(byte) bool) int {
	var idxs []int
	for i, ch := range w {
		if ok(ch) {
			idxs = append(idxs, i)
		}
	}
	if len(idxs) == 0 {
		return -1
	}
	return idxs[rng.Intn(len(idxs))]
}

// edit applies one phoneme-flavored edit to w: vowel drift, consonant
// confusion, adjacent transposition, or a dropped letter. The drawn op is
// tried first and the rest serve as fallbacks, so every call mutates any
// word long enough to carry an edit.
func (c *Corrupter) edit(w []byte) []byte {
	if len(w) < 2 {
		return w
	}
	op := c.rng.Intn(4)
	for try := 0; try < 4; try++ {
		switch (op + try) % 4 {
		case 0: // vowel drift: "chicago" → "chigago"-style slips
			if i := pickIndex(c.rng, w, isVowel); i >= 0 {
				const vowels = "aeiou"
				repl := vowels[c.rng.Intn(len(vowels))]
				if repl == w[i] {
					repl = vowels[(indexOfVowel(w[i])+1)%len(vowels)]
				}
				w[i] = repl
				return w
			}
		case 1: // consonant confusion
			if i := pickIndex(c.rng, w, func(ch byte) bool { _, ok := consonantConfusions[ch]; return ok }); i >= 0 {
				alts := consonantConfusions[w[i]]
				w[i] = alts[c.rng.Intn(len(alts))]
				return w
			}
		case 2: // adjacent transposition, interior only
			if len(w) >= 4 {
				i := 1 + c.rng.Intn(len(w)-2)
				if w[i] != w[i+1] {
					w[i], w[i+1] = w[i+1], w[i]
					return w
				}
			}
		case 3: // dropped letter, interior only
			if len(w) >= minEditLen {
				i := 1 + c.rng.Intn(len(w)-2)
				return append(w[:i], w[i+1:]...)
			}
		}
	}
	return w
}

// indexOfVowel maps a vowel to its position in "aeiou".
func indexOfVowel(ch byte) int {
	switch ch {
	case 'a':
		return 0
	case 'e':
		return 1
	case 'i':
		return 2
	case 'o':
		return 3
	default:
		return 4
	}
}
