package nlq

import (
	"strings"
	"testing"
	"time"
)

func TestParseWindowPhrases(t *testing.T) {
	cases := []struct {
		text string
		want time.Duration
	}{
		{"show me delays in the last hour", time.Hour},
		{"past 30 minutes", 30 * time.Minute},
		{"what about the last 2 hours", 2 * time.Hour},
		{"over the last day", 24 * time.Hour},
		{"in the past 45 seconds", 45 * time.Second},
	}
	for _, c := range cases {
		s := newFlightsSession(t)
		r, err := s.Parse(c.text)
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if s.Window() != c.want {
			t.Fatalf("%q: window = %v, want %v", c.text, s.Window(), c.want)
		}
		if !r.IsQuery {
			t.Fatalf("%q: window change should re-vocalize the query", c.text)
		}
		if q := s.Query(); q.Window.Last != c.want {
			t.Fatalf("%q: query window = %v", c.text, q.Window.Last)
		}
	}
}

func TestParseWindowClearAndUndo(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("in the last hour"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != time.Hour {
		t.Fatalf("window = %v", s.Window())
	}
	// "all time" widens back out.
	if _, err := s.Parse("show all time again"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != 0 {
		t.Fatalf("window after all time = %v", s.Window())
	}
	if !s.Query().Window.IsZero() {
		t.Fatal("cleared window still reaches the query")
	}
	// "back" restores the windowed state, then the unwindowed one.
	if _, err := s.Parse("go back"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != time.Hour {
		t.Fatalf("window after undo = %v", s.Window())
	}
	if _, err := s.Parse("go back"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != 0 {
		t.Fatalf("window after second undo = %v", s.Window())
	}
}

func TestParseWindowWithDimensionAndFunction(t *testing.T) {
	s := newFlightsSession(t)
	// One utterance changing function, window, and grouping pushes a single
	// undo frame.
	r, err := s.Parse("count by region in the last 10 minutes")
	if err != nil {
		t.Fatal(err)
	}
	if !r.IsQuery {
		t.Fatal("combined utterance should query")
	}
	if s.Window() != 10*time.Minute {
		t.Fatalf("window = %v", s.Window())
	}
	if len(s.history) != 1 {
		t.Fatalf("history depth = %d, want 1", len(s.history))
	}
	if _, err := s.Parse("go back"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != 0 {
		t.Fatalf("window after undo = %v", s.Window())
	}
	// A repeated identical window is not a state change on its own.
	if _, err := s.Parse("in the last hour"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Parse("in the last hour"); err == nil {
		t.Fatal("repeating the same window should not be understood as new")
	}
}

func TestWindowInSummaryAndClone(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("in the last 15 minutes"); err != nil {
		t.Fatal(err)
	}
	if got := s.Summary(); !strings.Contains(got, "the last 15 minutes") {
		t.Fatalf("summary missing window: %q", got)
	}
	c := s.Clone()
	if c.Window() != 15*time.Minute {
		t.Fatalf("clone window = %v", c.Window())
	}
	if _, err := c.Parse("all time"); err != nil {
		t.Fatal(err)
	}
	if s.Window() != 15*time.Minute {
		t.Fatal("mutating the clone changed the original")
	}
}
