package nlq

import (
	"testing"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"boston", "boston", 2, 0},
		{"bostn", "boston", 2, 1},
		{"chigago", "chicago", 2, 1},
		{"kitten", "sitting", 3, 3},
		{"abc", "xyz", 2, 3}, // exceeds bound -> bound+1
		{"a", "abcdef", 2, 3},
	}
	for _, c := range cases {
		if got := levenshtein(c.a, c.b, c.bound); got != c.want {
			t.Errorf("levenshtein(%q,%q,%d) = %d, want %d", c.a, c.b, c.bound, got, c.want)
		}
	}
}

func TestMaxEditDistance(t *testing.T) {
	if maxEditDistance(3) != 0 || maxEditDistance(6) != 1 || maxEditDistance(12) != 2 {
		t.Error("distance tiers wrong")
	}
}

func TestFuzzyMatchSingleTypo(t *testing.T) {
	s := newFlightsSession(t)
	// "Bostn" is one edit from "Boston".
	r, err := s.Parse("what about bostn")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !r.IsQuery {
		t.Error("fuzzy match should trigger a query")
	}
	q := s.Query()
	if len(q.Filters) != 1 || q.Filters[0].Name != "Boston" {
		t.Errorf("filters = %v, want Boston", q.Filters)
	}
}

func TestFuzzyMatchMultiWord(t *testing.T) {
	s := newFlightsSession(t)
	// "los angelos" is two edits from "los angeles".
	if _, err := s.Parse("flights from los angelos"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q := s.Query()
	if len(q.Filters) != 1 || q.Filters[0].Name != "Los Angeles" {
		t.Errorf("filters = %v, want Los Angeles", q.Filters)
	}
}

func TestFuzzyPrefersExactMatch(t *testing.T) {
	s := newFlightsSession(t)
	// Exact "Chicago" must not be displaced by fuzzy candidates.
	if _, err := s.Parse("show me Chicago"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q := s.Query()
	if len(q.Filters) != 1 || q.Filters[0].Name != "Chicago" {
		t.Errorf("filters = %v, want Chicago", q.Filters)
	}
}

func TestFuzzyShortNamesRequireExactness(t *testing.T) {
	s := newFlightsSession(t)
	// "BWS" is one edit from the airport code "BOS", but short names are
	// exempt from fuzzy matching; gibberish must still be rejected.
	if _, err := s.Parse("xq zz"); err == nil {
		t.Error("short gibberish should not fuzzy-match anything")
	}
}

func TestFuzzyGibberishStillFails(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("wonderful weather today"); err == nil {
		q := s.Query()
		t.Errorf("unrelated text matched something: %v", q.Filters)
	}
}
