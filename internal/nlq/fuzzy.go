package nlq

import (
	"strings"

	"repro/internal/dimension"
)

// Fuzzy member matching tolerates the small transcription errors speech
// recognition introduces ("bostn", "chigago"): when no member name occurs
// verbatim in an utterance, tokens are compared against member names by
// bounded edit distance.

// maxEditDistance allows one typo for short names and two for longer ones.
func maxEditDistance(nameLen int) int {
	switch {
	case nameLen < 5:
		return 0 // short names must match exactly — too many false hits
	case nameLen < 9:
		return 1
	default:
		return 2
	}
}

// levenshtein returns the edit distance between a and b, early-exiting
// once the distance provably exceeds bound (returns bound+1 then).
func levenshtein(a, b string, bound int) int {
	if a == b {
		return 0
	}
	la, lb := len(a), len(b)
	if la-lb > bound || lb-la > bound {
		return bound + 1
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if cur[j-1]+1 < m {
				m = cur[j-1] + 1
			}
			if prev[j-1]+cost < m {
				m = prev[j-1] + cost
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > bound {
		return bound + 1
	}
	return prev[lb]
}

// fuzzyMatchMembers finds members whose lowercase names approximately
// occur in the text: for multi-word names, a window of the same word count
// is compared. The best (lowest-distance) match per hierarchy wins; exact
// matching is always preferred by the caller.
func (s *Session) fuzzyMatchMembers(text string) []*dimension.Member {
	words := strings.Fields(text)
	type hit struct {
		member *dimension.Member
		dist   int
	}
	best := make(map[*dimension.Hierarchy]hit)
	consider := func(m *dimension.Member) {
		name := strings.ToLower(m.Name)
		bound := maxEditDistance(len(name))
		if bound == 0 {
			return
		}
		nWords := len(strings.Fields(name))
		for i := 0; i+nWords <= len(words); i++ {
			window := strings.Join(words[i:i+nWords], " ")
			d := levenshtein(window, name, bound)
			if d > bound {
				continue
			}
			cur, ok := best[m.Hierarchy()]
			if !ok || d < cur.dist || (d == cur.dist && m.Level > cur.member.Level) {
				best[m.Hierarchy()] = hit{member: m, dist: d}
			}
		}
	}
	for _, h := range s.dataset.Hierarchies() {
		for level := 1; level <= h.Depth(); level++ {
			for _, m := range h.MembersAt(level) {
				consider(m)
			}
		}
	}
	var out []*dimension.Member
	for _, h := range best {
		out = append(out, h.member)
	}
	sortMembers(out)
	return out
}

// sortMembers orders members deterministically by hierarchy name.
func sortMembers(ms []*dimension.Member) {
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0 && ms[j-1].Hierarchy().Name > ms[j].Hierarchy().Name; j-- {
			ms[j-1], ms[j] = ms[j], ms[j-1]
		}
	}
}
