package nlq

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/olap"
)

func newFlightsSession(t *testing.T) *Session {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 91})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	s, err := NewSession(d, olap.Avg, "cancelled", "average cancellation probability")
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	return s
}

func TestNewSessionInitialQuery(t *testing.T) {
	s := newFlightsSession(t)
	q := s.Query()
	if len(q.GroupBy) != 1 {
		t.Fatalf("initial query should group one dimension, got %d", len(q.GroupBy))
	}
	if q.GroupBy[0].Level != 1 {
		t.Error("initial grouping should be at level 1")
	}
	if err := q.Validate(); err != nil {
		t.Errorf("initial query invalid: %v", err)
	}
}

func TestParseHelp(t *testing.T) {
	s := newFlightsSession(t)
	r, err := s.Parse("please give me some help")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if r.Action != "help" || r.IsQuery {
		t.Error("help should not trigger a query")
	}
	for _, frag := range []string{"drill down", "roll up", "start airport", "region", "season"} {
		if !strings.Contains(r.Message, frag) {
			t.Errorf("help text missing %q", frag)
		}
	}
}

func TestParseDeclarativeLevels(t *testing.T) {
	s := newFlightsSession(t)
	r, err := s.Parse("how does cancellation depend on region and season")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !r.IsQuery {
		t.Error("level mention should trigger a query")
	}
	q := s.Query()
	if len(q.GroupBy) != 2 {
		t.Fatalf("group-by dims = %d, want 2", len(q.GroupBy))
	}
	names := map[string]bool{}
	for _, g := range q.GroupBy {
		names[g.Hierarchy.Name] = true
	}
	if !names["start airport"] || !names["flight date"] {
		t.Errorf("grouped dims = %v", names)
	}
}

func TestParseMemberFilter(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("break down by season"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	r, err := s.Parse("only flights starting from the North East")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !r.IsQuery {
		t.Error("member mention should trigger a query")
	}
	q := s.Query()
	found := false
	for _, f := range q.Filters {
		if f.Name == "the North East" {
			found = true
		}
	}
	if !found {
		t.Errorf("filter missing; filters = %v", q.Filters)
	}
}

func TestParseMostSpecificMemberWins(t *testing.T) {
	s := newFlightsSession(t)
	// Mentioning a city should filter at city level even though its
	// region's name is absent.
	_, err := s.Parse("what about Boston")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	q := s.Query()
	if len(q.Filters) != 1 || q.Filters[0].Name != "Boston" {
		t.Errorf("filters = %v, want Boston", q.Filters)
	}
	// Filter below group level must raise the level.
	for _, g := range q.GroupBy {
		if g.Hierarchy.Name == "start airport" && g.Level < q.Filters[0].Level {
			t.Error("group level must be at least the filter level")
		}
	}
	if err := q.Validate(); err != nil {
		t.Errorf("query invalid: %v", err)
	}
}

func TestDrillDownAndRollUp(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("drill down into the start airport"); err != nil {
		t.Fatalf("drill: %v", err)
	}
	q := s.Query()
	if q.GroupBy[0].Level != 2 {
		t.Errorf("level after drill = %d, want 2", q.GroupBy[0].Level)
	}
	if _, err := s.Parse("roll up the start airport"); err != nil {
		t.Fatalf("roll: %v", err)
	}
	if got := s.Query().GroupBy[0].Level; got != 1 {
		t.Errorf("level after roll = %d, want 1", got)
	}
	// Rolling up past level 1 removes the dimension.
	r, err := s.Parse("roll up the start airport")
	if err != nil {
		t.Fatalf("roll: %v", err)
	}
	if r.IsQuery {
		t.Error("no grouped dimensions left: should not query")
	}
	if len(s.Query().GroupBy) != 0 {
		t.Error("dimension should be removed")
	}
}

func TestDrillDownCapsAtDepth(t *testing.T) {
	s := newFlightsSession(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Parse("drill down start airport"); err != nil {
			t.Fatalf("drill: %v", err)
		}
	}
	if got := s.Query().GroupBy[0].Level; got != 4 {
		t.Errorf("level = %d, want cap at 4", got)
	}
}

func TestDrillDownDefaultsToLastDimension(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("also break down by season"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := s.Parse("drill down"); err != nil {
		t.Fatalf("drill: %v", err)
	}
	q := s.Query()
	for _, g := range q.GroupBy {
		if g.Hierarchy.Name == "flight date" && g.Level != 2 {
			t.Errorf("date level = %d, want 2", g.Level)
		}
	}
}

func TestRemoveDimension(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("break down by region and season"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if _, err := s.Parse("remove the flight date"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	q := s.Query()
	if len(q.GroupBy) != 1 || q.GroupBy[0].Hierarchy.Name != "start airport" {
		t.Errorf("groupBy after remove = %v", q.GroupBy)
	}
	if _, err := s.Parse("remove the kitchen sink"); err == nil {
		t.Error("removing an unknown dimension should fail")
	}
}

func TestClearFiltersAndReset(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("flights in Winter"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Query().Filters) == 0 {
		t.Fatal("expected a winter filter")
	}
	if _, err := s.Parse("clear everything"); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if len(s.Query().Filters) != 0 {
		t.Error("filters should be cleared")
	}
	if _, err := s.Parse("drill down start airport"); err != nil {
		t.Fatalf("drill: %v", err)
	}
	r, err := s.Parse("reset please")
	if err != nil {
		t.Fatalf("reset: %v", err)
	}
	if !r.IsQuery {
		t.Error("reset should re-query the initial state")
	}
	if got := s.Query().GroupBy[0].Level; got != 1 {
		t.Errorf("level after reset = %d, want 1", got)
	}
}

func TestParseNotUnderstood(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("lorem ipsum dolor"); !errors.Is(err, ErrNotUnderstood) {
		t.Errorf("expected ErrNotUnderstood, got %v", err)
	}
	if _, err := s.Parse(""); !errors.Is(err, ErrNotUnderstood) {
		t.Errorf("expected ErrNotUnderstood for empty input, got %v", err)
	}
}

func TestSummary(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("break down by region, only Winter flights"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	sum := s.Summary()
	if !strings.Contains(sum, "region") || !strings.Contains(sum, "Winter") {
		t.Errorf("summary = %q", sum)
	}
}

func TestQueriesValidateAgainstDataset(t *testing.T) {
	s := newFlightsSession(t)
	inputs := []string{
		"break down by region and season",
		"drill down start airport",
		"only flights operated by Alaska Airlines Inc.",
		"drill down flight date",
		"roll up start airport",
	}
	for _, in := range inputs {
		if _, err := s.Parse(in); err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		q := s.Query()
		if len(q.GroupBy) == 0 {
			continue
		}
		if _, err := olap.NewSpace(s.dataset, q); err != nil {
			t.Errorf("after %q: query does not build a space: %v", in, err)
		}
	}
}

func TestContainsWord(t *testing.T) {
	if !containsWord("show the region please", "region") {
		t.Error("plain word should match")
	}
	if containsWord("interregional flights", "region") {
		t.Error("substring inside a word should not match")
	}
	if !containsWord("region", "region") {
		t.Error("exact match should work")
	}
	if containsWord("anything", "") {
		t.Error("empty needle should not match")
	}
	if !containsWord("the north east, in winter", "the north east") {
		t.Error("multi-word phrase followed by punctuation should match")
	}
}

func TestNewSessionNoDimensions(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 100, Seed: 1})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	_ = d
	// Build a dataset with no hierarchies.
	empty, err := olap.NewDataset(d.Table())
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	if _, err := NewSession(empty, olap.Avg, "cancelled", "x"); err == nil {
		t.Error("session over dimensionless dataset should fail")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	s := newFlightsSession(t)
	if _, err := s.Parse("break down by season"); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	before := s.Summary()

	// Mutating the clone — including via its own undo history — must not
	// leak into the original.
	c := s.Clone()
	if c.Summary() != before {
		t.Fatalf("clone summary = %q, want %q", c.Summary(), before)
	}
	if _, err := c.Parse("also by region"); err != nil {
		t.Fatalf("clone Parse: %v", err)
	}
	if _, err := c.Parse("back"); err != nil {
		t.Fatalf("clone back: %v", err)
	}
	if _, err := c.Parse("drill down into the season"); err != nil {
		t.Fatalf("clone drill: %v", err)
	}
	if got := s.Summary(); got != before {
		t.Errorf("original mutated by clone activity: %q, want %q", got, before)
	}

	// And the other direction: the original keeps evolving freely.
	if _, err := s.Parse("reset"); err != nil {
		t.Fatalf("Parse reset: %v", err)
	}
	if c.Summary() == s.Summary() {
		t.Error("clone should not follow the original after Clone")
	}

	// The clone carries the undo history: backing out twice returns it to
	// the pre-clone state.
	if _, err := c.Parse("back"); err != nil {
		t.Fatalf("clone second back: %v", err)
	}
	if c.Summary() != before {
		t.Errorf("clone after undo = %q, want %q", c.Summary(), before)
	}
}
