package nlq

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/olap"
)

// parse fails the test on error and returns the response.
func parse(t *testing.T, s *Session, input string) Response {
	t.Helper()
	r, err := s.Parse(input)
	if err != nil {
		t.Fatalf("Parse(%q): %v", input, err)
	}
	return r
}

// groupedNames lists the grouped hierarchy names in order.
func groupedNames(s *Session) []string {
	var out []string
	for _, gb := range s.Query().GroupBy {
		out = append(out, gb.Hierarchy.Name)
	}
	return out
}

// TestMultiTurnAnaphoraWinter drives the "and for winter?" follow-up: a
// filter mention on an established breakdown must keep the breakdown and
// narrow the scope, and a second season must replace — not stack — the
// first (one filter per hierarchy).
func TestMultiTurnAnaphoraWinter(t *testing.T) {
	s := newFlightsSession(t)
	parse(t, s, "how does cancellation depend on region and season")
	if got := groupedNames(s); len(got) != 2 {
		t.Fatalf("expected 2 grouped dims, got %v", got)
	}

	r := parse(t, s, "and for winter")
	if !r.IsQuery {
		t.Error("follow-up filter should still vocalize")
	}
	if got := groupedNames(s); len(got) != 2 {
		t.Errorf("follow-up dropped the breakdown: %v", got)
	}
	date := s.dataset.HierarchyByName("flight date")
	if f := s.Query().FilterOn(date); f == nil || f.Name != "Winter" {
		t.Fatalf("winter filter missing, got %v", f)
	}

	r = parse(t, s, "and for summer")
	if f := s.Query().FilterOn(date); f == nil || f.Name != "Summer" {
		t.Fatalf("summer should replace winter, got %v", f)
	}
	if !r.IsQuery {
		t.Error("second follow-up should vocalize")
	}
}

// TestMultiTurnSameButByCarrier exercises hierarchy synonyms in a
// follow-up: "same but by carrier" must add the airline dimension while
// keeping prior state, and "drop the carrier" must remove it again.
func TestMultiTurnSameButByCarrier(t *testing.T) {
	s := newFlightsSession(t)
	parse(t, s, "break down by region")

	r := parse(t, s, "same but by carrier")
	if !r.IsQuery {
		t.Error("synonym follow-up should vocalize")
	}
	got := groupedNames(s)
	if len(got) != 2 || got[1] != "airline" {
		t.Fatalf("carrier should add the airline dimension, got %v", got)
	}

	parse(t, s, "drop the carrier")
	got = groupedNames(s)
	if len(got) != 1 || got[0] != "start airport" {
		t.Fatalf("dropping the carrier should remove airline, got %v", got)
	}
}

// TestSynonymNeverShadowsDatasetVocabulary pins the priority rule: a
// dataset that really owns a dimension named like a synonym alias must
// resolve the alias to its own dimension, not through the synonym table.
func TestSynonymNeverShadowsDatasetVocabulary(t *testing.T) {
	s := newFlightsSession(t)
	// "airline" is the real name; the synonym table also routes there, but
	// the direct match must win (same result, different code path).
	if h := s.matchHierarchy("break down by airline"); h == nil || h.Name != "airline" {
		t.Fatalf("direct name match broken: %v", h)
	}
	if h := s.matchHierarchy("break down by carrier"); h == nil || h.Name != "airline" {
		t.Fatalf("synonym match broken: %v", h)
	}
	if h := s.matchHierarchy("break down by nonsense"); h != nil {
		t.Fatalf("unknown word matched %v", h)
	}
}

// TestSynonymOnSalaries checks the college-location aliases on the second
// dataset: a synonym can name the dimension for removal and re-add it
// later, and an alias mention of an already grouped hierarchy is not a
// duplicate add.
func TestSynonymOnSalaries(t *testing.T) {
	d, err := datagen.Salaries(datagen.SalariesConfig{Seed: 4})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	s, err := NewSession(d, olap.Avg, "midCareerSalary", "average mid-career salary")
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	// The session starts grouped by college location; the alias resolves it
	// for removal even though no schema word appears in the utterance.
	parse(t, s, "drop the school")
	if got := groupedNames(s); len(got) != 0 {
		t.Fatalf("dropping the school should clear the breakdown, got %v", got)
	}
	parse(t, s, "break down by university")
	got := groupedNames(s)
	if len(got) != 1 || got[0] != "college location" {
		t.Fatalf("university should re-add college location, got %v", got)
	}
	// Mentioning another alias again must not duplicate the dimension.
	if r, err := s.Parse("same by schools"); err == nil {
		if got := groupedNames(s); len(got) != 1 {
			t.Fatalf("alias re-mention duplicated the dimension: %v (resp %+v)", got, r)
		}
	}
}

// TestCloneIsolationUnderStagedParses mirrors the web layer's
// stage-then-commit pattern across a multi-turn script: every utterance is
// first parsed on a clone (the dry run admission control may throw away)
// and then on the live session. The dry run must never leak state into the
// live session, and both parses must agree on what the command does.
func TestCloneIsolationUnderStagedParses(t *testing.T) {
	s := newFlightsSession(t)
	script := []string{
		"how does cancellation depend on region and season",
		"and for winter",
		"same but by carrier",
		"drill down",
		"back",
		"only flights in summer",
		"reset",
	}
	for _, input := range script {
		before := s.Summary()
		staged := s.Clone()
		sr, serr := staged.Parse(input)
		if after := s.Summary(); after != before {
			t.Fatalf("staged parse of %q mutated the live session:\n before %q\n after  %q", input, before, after)
		}
		lr, lerr := s.Parse(input)
		if (serr == nil) != (lerr == nil) {
			t.Fatalf("staged/live divergence on %q: %v vs %v", input, serr, lerr)
		}
		if serr != nil {
			continue
		}
		if sr.Action != lr.Action || sr.IsQuery != lr.IsQuery || sr.Message != lr.Message {
			t.Fatalf("staged/live response mismatch on %q:\n staged %+v\n live   %+v", input, sr, lr)
		}
	}
}

// TestCloneIsolationOfHistory pins the deep copy of the undo stack: undoing
// on a clone after further live mutations must restore the clone's own
// snapshot, untouched by the live session's history edits.
func TestCloneIsolationOfHistory(t *testing.T) {
	s := newFlightsSession(t)
	parse(t, s, "break down by region")
	parse(t, s, "drill down")

	c := s.Clone()
	parse(t, s, "drill down")
	parse(t, s, "back")
	parse(t, s, "back")

	// The clone still sits two drills deep and can undo independently.
	r := parse(t, c, "back")
	if r.Action != "back" {
		t.Fatalf("clone undo action %q", r.Action)
	}
	if sum := c.Summary(); !strings.Contains(sum, "region") && !strings.Contains(sum, "state") {
		t.Errorf("clone summary after undo looks wrong: %q", sum)
	}
	if sum := s.Summary(); !strings.Contains(sum, "region") {
		t.Errorf("live summary after double undo looks wrong: %q", sum)
	}
}

// TestAggFuncFollowUp covers the "how many" anaphora: switching the
// aggregation function mid-exploration keeps breakdown and filters.
func TestAggFuncFollowUp(t *testing.T) {
	s := newFlightsSession(t)
	parse(t, s, "break down by region")
	parse(t, s, "only flights in winter")
	parse(t, s, "how many flights")
	q := s.Query()
	if q.Fct != olap.Count {
		t.Errorf("how many should switch to count, got %v", q.Fct)
	}
	if len(q.GroupBy) != 1 || q.FilterOn(s.dataset.HierarchyByName("flight date")) == nil {
		t.Error("function switch dropped breakdown or filter")
	}
}
