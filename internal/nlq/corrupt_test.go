package nlq

import (
	"strings"
	"testing"

	"repro/internal/dimension"
	"repro/internal/olap"
)

func TestCorrupterDeterministic(t *testing.T) {
	in := "how does cancellation depend on region and season"
	a := NewCorrupter(CorruptConfig{Seed: 7}).Corrupt(in)
	b := NewCorrupter(CorruptConfig{Seed: 7}).Corrupt(in)
	if a != b {
		t.Errorf("same seed diverged: %q vs %q", a, b)
	}
	c := NewCorrupter(CorruptConfig{Seed: 8}).Corrupt(in)
	if a == c {
		t.Errorf("different seeds should (almost surely) differ: %q", a)
	}
}

func TestCorrupterProtectsKeywords(t *testing.T) {
	in := "drill down into the start airport"
	out := NewCorrupter(CorruptConfig{Seed: 3, Homophones: true}).Corrupt(in)
	for _, kw := range []string{"drill", "down"} {
		if !containsWord(out, kw) {
			t.Errorf("keyword %q corrupted away: %q", kw, out)
		}
	}
	// Content words long enough to carry edits must actually change.
	if out == in {
		t.Errorf("no corruption applied at rate 1: %q", out)
	}
}

func TestCorrupterHomophones(t *testing.T) {
	out := NewCorrupter(CorruptConfig{Seed: 1, Homophones: true}).Corrupt("and for winter")
	if !strings.Contains(out, "winner") {
		t.Errorf("winter should homophone to winner: %q", out)
	}
	if !strings.Contains(out, "four") {
		t.Errorf("for should homophone to four: %q", out)
	}
}

func TestCorrupterSkipsShortWords(t *testing.T) {
	// Without homophones, words under five characters pass through: the
	// fuzzy matcher cannot recover them, so corrupting them is pure loss.
	out := NewCorrupter(CorruptConfig{Seed: 5}).Corrupt("may in fall")
	if out != "may in fall" {
		t.Errorf("short words corrupted: %q", out)
	}
}

// corruptibleMembers lists the flight members the fuzzy matcher could in
// principle recover: every word of the name at least minEditLen long.
func corruptibleMembers(s *Session) []*dimension.Member {
	var out []*dimension.Member
	for _, h := range s.dataset.Hierarchies() {
		for level := 1; level <= h.Depth(); level++ {
			for _, m := range h.MembersAt(level) {
				eligible := true
				for _, w := range strings.Fields(m.Name) {
					if len(w) < minEditLen {
						eligible = false
						break
					}
				}
				if eligible {
					out = append(out, m)
				}
			}
		}
	}
	return out
}

// TestCorruptedMemberRecoveryRate pins the end-to-end ASR-noise story: a
// corrupted member mention must still resolve — via fuzzy.go — to the
// member the speaker meant, for the bulk of the corpus. The corpus is
// seeded, so the measured rate is exact and regressions in either the
// corrupter or the fuzzy matcher move it.
func TestCorruptedMemberRecoveryRate(t *testing.T) {
	s := newFlightsSession(t)
	members := corruptibleMembers(s)
	if len(members) < 20 {
		t.Fatalf("only %d corruptible members; corpus too small", len(members))
	}
	c := NewCorrupter(CorruptConfig{Seed: 17})
	recovered, total := 0, 0
	for _, m := range members {
		noisy := c.Corrupt(strings.ToLower(m.Name))
		// Fresh session over the same dataset: member identity must survive.
		sess, err := NewSession(s.dataset, olap.Avg, "cancelled", "average cancellation probability")
		if err != nil {
			t.Fatalf("NewSession: %v", err)
		}
		r, err := sess.Parse("only " + noisy)
		total++
		if err != nil {
			continue
		}
		if !r.IsQuery && r.Action != "query" {
			continue
		}
		if f := sess.Query().FilterOn(m.Hierarchy()); f == m {
			recovered++
		}
	}
	rate := float64(recovered) / float64(total)
	t.Logf("recovery: %d/%d = %.3f", recovered, total, rate)
	if rate < 0.70 {
		t.Errorf("fuzzy recovery rate %.3f below the 0.70 floor", rate)
	}
	if rate == 1 {
		t.Errorf("recovery rate 1.0: the corrupter is not producing real noise")
	}
}
