package speech

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/stats"
)

// Direction is the sense of a refinement's change descriptor.
type Direction int

// Refinement change directions.
const (
	Increase Direction = iota
	Decrease
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == Increase {
		return "increase"
	}
	return "decrease"
}

// Preamble summarizes the input query: the considered scope (one phrase per
// dimension, using the filter member or the dimension root) and the
// breakdown levels.
type Preamble struct {
	// ScopePhrases are the rendered per-dimension scope descriptions,
	// e.g. "flights starting from any airport".
	ScopePhrases []string
	// LevelNames are the group-by level names, e.g. ["region", "season"].
	LevelNames []string
}

// Text renders the preamble sentence(s).
func (p *Preamble) Text() string {
	var b strings.Builder
	b.WriteString("Considering ")
	b.WriteString(joinPhrases(p.ScopePhrases))
	b.WriteString(".")
	if len(p.LevelNames) > 0 {
		b.WriteString(" Results are broken down by ")
		b.WriteString(joinPhrases(p.LevelNames))
		b.WriteString(".")
	}
	return b.String()
}

// Baseline is the single absolute statement of a speech: a typical value
// for the whole query result.
type Baseline struct {
	// Value is the rounded value the sentence commits to.
	Value float64
	// AggName is the spoken aggregate name ("average cancellation
	// probability").
	AggName string
	// Format selects value rendering.
	Format ValueFormat

	text string // memoized rendering
}

// Text renders the baseline sentence, e.g.
// "Around two percent is the average cancellation probability.".
// The rendering is memoized: fragments are shared across many candidate
// speeches during tree search, and length checks are on the hot path.
func (b *Baseline) Text() string {
	if b.text == "" {
		b.text = fmt.Sprintf("Around %s is the %s.", FormatValue(b.Value, b.Format), b.AggName)
	}
	return b.text
}

// Refinement is a relative statement about a subset of aggregates.
type Refinement struct {
	// Preds scope the refinement; each is a member of a distinct
	// dimension hierarchy.
	Preds []*dimension.Member
	// Dir is the change direction.
	Dir Direction
	// Percent is the change quantifier ("by 50 percent").
	Percent int
	// ScopeSize is the number of result aggregates within scope (m in the
	// paper's semantics), precomputed at candidate generation time.
	ScopeSize int
	// Scope is the precomputed membership bitset of Preds over the query's
	// aggregate space, set at candidate generation time. Scorers use it to
	// sweep a refinement's scope in one bitset pass; nil (hand-built
	// refinements) falls back to Space.InScope.
	Scope *olap.ScopeSet

	text string // memoized rendering
}

// Text renders the refinement sentence, e.g.
// "Values increase by 50 percent for flights starting from the North East.".
// Memoized: candidate refinements are shared by many speeches.
func (r *Refinement) Text() string {
	if r.text == "" {
		phrases := make([]string, len(r.Preds))
		for i, p := range r.Preds {
			phrases[i] = p.Hierarchy().Phrase(p)
		}
		r.text = fmt.Sprintf("Values %s by %d percent for %s.", r.Dir, r.Percent, joinPhrases(phrases))
	}
	return r.text
}

// SameScope reports whether two refinements address the identical predicate
// set (same members, order-insensitive).
func (r *Refinement) SameScope(o *Refinement) bool {
	if len(r.Preds) != len(o.Preds) {
		return false
	}
	for _, p := range r.Preds {
		found := false
		for _, q := range o.Preds {
			if p == q {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Subsumes reports whether r's scope is a superset of o's scope: every
// predicate of r must be matched by a predicate of o on the same hierarchy
// that is a descendant (or equal). Refinements on disjoint hierarchies do
// not subsume one another.
func (r *Refinement) Subsumes(o *Refinement) bool {
	for _, p := range r.Preds {
		matched := false
		for _, q := range o.Preds {
			if q.Hierarchy() == p.Hierarchy() && q.IsDescendantOf(p) {
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	return true
}

// Speech is a full vocalization: preamble, baseline, refinements.
type Speech struct {
	Preamble    *Preamble
	Baseline    *Baseline
	Refinements []*Refinement

	// deltas memoizes Deltas(). Clone and Extend return fresh structs, so a
	// memo can never describe a stale refinement list; the atomic pointer
	// makes the lazy fill safe when parallel planner workers share a node's
	// speech. Duplicate computation under contention is benign — the value
	// is deterministic.
	deltas atomic.Pointer[[]float64]
}

// Clone returns a copy sharing the immutable fragments but with an
// independent refinement slice, so appending to the copy never mutates the
// original. Tree search extends speeches one fragment at a time.
func (s *Speech) Clone() *Speech {
	cp := &Speech{Preamble: s.Preamble, Baseline: s.Baseline}
	cp.Refinements = make([]*Refinement, len(s.Refinements), len(s.Refinements)+1)
	copy(cp.Refinements, s.Refinements)
	return cp
}

// Extend returns a copy of s with r appended.
func (s *Speech) Extend(r *Refinement) *Speech {
	cp := s.Clone()
	cp.Refinements = append(cp.Refinements, r)
	return cp
}

// MainText renders the baseline and refinements (the part subject to the
// character limit; the paper excludes the preamble from it).
func (s *Speech) MainText() string {
	var parts []string
	if s.Baseline != nil {
		parts = append(parts, s.Baseline.Text())
	}
	for _, r := range s.Refinements {
		parts = append(parts, r.Text())
	}
	return strings.Join(parts, " ")
}

// Text renders the complete speech including the preamble.
func (s *Speech) Text() string {
	if s.Preamble == nil {
		return s.MainText()
	}
	main := s.MainText()
	if main == "" {
		return s.Preamble.Text()
	}
	return s.Preamble.Text() + " " + main
}

// LastSentence returns the most recently added fragment's text: the latest
// refinement, else the baseline, else the preamble. It is what the
// pipelined reader speaks after each planning round.
func (s *Speech) LastSentence() string {
	if n := len(s.Refinements); n > 0 {
		return s.Refinements[n-1].Text()
	}
	if s.Baseline != nil {
		return s.Baseline.Text()
	}
	if s.Preamble != nil {
		return s.Preamble.Text()
	}
	return ""
}

// NumFragments counts the sentences subject to the fragment limit
// (baseline plus refinements).
func (s *Speech) NumFragments() int {
	n := len(s.Refinements)
	if s.Baseline != nil {
		n++
	}
	return n
}

// Deltas returns the additive change of each refinement under the paper's
// semantics: refinement percentages are relative to the baseline value
// adjusted by every preceding refinement whose scope subsumes this one.
// The result is independent of any particular aggregate. It is memoized —
// scoring walks every aggregate of every sampled estimate through the same
// deltas — so callers must not mutate the returned slice.
func (s *Speech) Deltas() []float64 {
	if p := s.deltas.Load(); p != nil {
		return *p
	}
	deltas := s.computeDeltas()
	s.deltas.Store(&deltas)
	return deltas
}

func (s *Speech) computeDeltas() []float64 {
	deltas := make([]float64, len(s.Refinements))
	if s.Baseline == nil {
		return deltas
	}
	for i, r := range s.Refinements {
		ref := s.Baseline.Value
		for j := 0; j < i; j++ {
			if s.Refinements[j].Subsumes(r) {
				ref += deltas[j]
			}
		}
		d := ref * float64(r.Percent) / 100
		if r.Dir == Decrease {
			d = -d
		}
		deltas[i] = d
	}
	return deltas
}

// Prefs are the user preference constraints on speech output.
type Prefs struct {
	// MaxChars bounds the length of the main speech (without preamble);
	// the paper follows voice-interface guidance of 300 characters.
	MaxChars int
	// MaxFragments bounds the number of refinements.
	MaxFragments int
	// SigDigits is the precision of spoken values (paper: 1).
	SigDigits int
	// MaxSeconds bounds the main speech's playback time at CharsPerSecond
	// — the paper's alternative formulation of the length constraint.
	// Zero disables the time bound.
	MaxSeconds float64
	// CharsPerSecond converts text length to speaking time for
	// MaxSeconds; zero selects 15 (conversational TTS speed).
	CharsPerSecond float64
}

// SpeakingSeconds returns the playback time of n characters under p.
func (p Prefs) SpeakingSeconds(n int) float64 {
	rate := p.CharsPerSecond
	if rate <= 0 {
		rate = 15
	}
	return float64(n) / rate
}

// MaxCharsEffective folds the time bound into a character bound: the
// tighter of MaxChars and MaxSeconds·CharsPerSecond (either may be
// disabled by zero).
func (p Prefs) MaxCharsEffective() int {
	chars := p.MaxChars
	if p.MaxSeconds > 0 {
		rate := p.CharsPerSecond
		if rate <= 0 {
			rate = 15
		}
		timeChars := int(p.MaxSeconds * rate)
		if chars == 0 || timeChars < chars {
			chars = timeChars
		}
	}
	return chars
}

// DefaultPrefs mirrors the paper's experimental configuration.
func DefaultPrefs() Prefs {
	return Prefs{MaxChars: 300, MaxFragments: 2, SigDigits: 1}
}

// MainLen returns the character length of MainText without building the
// string; validity checks run once per candidate node during expansion.
func (s *Speech) MainLen() int {
	n := 0
	if s.Baseline != nil {
		n = len(s.Baseline.Text())
	}
	for _, r := range s.Refinements {
		if n > 0 {
			n++ // joining space
		}
		n += len(r.Text())
	}
	return n
}

// Valid reports whether the speech respects the preference constraints and
// contains no duplicate refinement scopes (a repeated scope would either
// contradict or restate an earlier sentence).
func (s *Speech) Valid(p Prefs) bool {
	if max := p.MaxCharsEffective(); max > 0 && s.MainLen() > max {
		return false
	}
	if p.MaxFragments > 0 && len(s.Refinements) > p.MaxFragments {
		return false
	}
	for i, r := range s.Refinements {
		for j := i + 1; j < len(s.Refinements); j++ {
			if r.SameScope(s.Refinements[j]) {
				return false
			}
		}
	}
	return true
}

// RoundForSpeech rounds v to the spoken precision of p.
func (p Prefs) RoundForSpeech(v float64) float64 {
	d := p.SigDigits
	if d < 1 {
		d = 1
	}
	return stats.RoundSig(v, d)
}
