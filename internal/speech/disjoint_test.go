package speech

import (
	"testing"

	"repro/internal/dimension"
)

func TestDisjointScopesFiltering(t *testing.T) {
	g := flightsGenerator(t)
	g.DisjointScopes = true
	all := g.Refinements(nil)
	if len(all) == 0 {
		t.Fatal("no candidates")
	}
	// Take a refinement on a region; every remaining candidate must be
	// scope-disjoint from it. A season predicate always overlaps a region
	// predicate (their cross product is non-empty), so only other regions
	// survive.
	var regionRef *Refinement
	for _, r := range all {
		if r.Preds[0].Hierarchy().Name == "start airport" {
			regionRef = r
			break
		}
	}
	if regionRef == nil {
		t.Fatal("no region refinement")
	}
	rest := g.Refinements([]*Refinement{regionRef})
	for _, r := range rest {
		if r.Preds[0].Hierarchy().Name != "start airport" {
			t.Fatalf("candidate %q overlaps the region scope", r.Text())
		}
		if r.Preds[0] == regionRef.Preds[0] {
			t.Fatalf("candidate %q repeats the used scope", r.Text())
		}
	}
	if len(rest) == 0 {
		t.Error("sibling regions should remain available")
	}
}

func TestDisjointScopesOffAllowsOverlap(t *testing.T) {
	g := flightsGenerator(t)
	all := g.Refinements(nil)
	var regionRef *Refinement
	for _, r := range all {
		if r.Preds[0].Hierarchy().Name == "start airport" {
			regionRef = r
			break
		}
	}
	rest := g.Refinements([]*Refinement{regionRef})
	sawSeason := false
	for _, r := range rest {
		if r.Preds[0].Hierarchy().Name == "flight date" {
			sawSeason = true
		}
	}
	if !sawSeason {
		t.Error("relative grammar should allow overlapping season refinements")
	}
}

func TestOverlapsHelper(t *testing.T) {
	g := flightsGenerator(t)
	airport := g.Space.Dataset().HierarchyByName("start airport")
	date := g.Space.Dataset().HierarchyByName("flight date")
	ne := airport.FindMember("the North East")
	mw := airport.FindMember("the Midwest")
	winter := date.FindMember("Winter")
	a := &Refinement{Preds: []*dimension.Member{ne}}
	b := &Refinement{Preds: []*dimension.Member{mw}}
	c := &Refinement{Preds: []*dimension.Member{winter}}
	if g.overlaps(a, b) {
		t.Error("sibling regions should be disjoint")
	}
	if !g.overlaps(a, c) {
		t.Error("region and season scopes should overlap")
	}
	if !g.overlaps(a, a) {
		t.Error("a scope overlaps itself")
	}
}
