package speech

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/dimension"
)

// ParsedSpeech is the structural decomposition of a rendered speech,
// recovered by Parse. It proves grammar conformance (Figure 1) and powers
// round-trip tests: every speech the system renders must parse back into
// an equivalent structure.
type ParsedSpeech struct {
	// ScopePhrases are the preamble's per-dimension phrases.
	ScopePhrases []string
	// LevelNames are the preamble's breakdown level names.
	LevelNames []string
	// BaselineValue is the spoken baseline value phrase ("one percent").
	BaselineValue string
	// AggName is the spoken aggregate name.
	AggName string
	// Refinements are the parsed refinement statements.
	Refinements []ParsedRefinement
}

// ParsedRefinement is one parsed refinement sentence.
type ParsedRefinement struct {
	// Dir is the change direction.
	Dir Direction
	// Percent is the quantifier.
	Percent int
	// PredPhrases are the rendered predicate phrases
	// ("flights starting from the North East").
	PredPhrases []string
}

// Parser validates speech text against the grammar of Figure 1.
type Parser struct {
	// Strict requires the full structure (preamble and baseline); relaxed
	// mode accepts main speeches without a preamble.
	Strict bool
}

var (
	// ErrNoPreamble reports a missing "Considering …" opener.
	ErrNoPreamble = errors.New("speech: missing preamble")
	// ErrNoBaseline reports a missing "<value> is the <aggregate>." claim.
	ErrNoBaseline = errors.New("speech: missing baseline statement")
	// ErrBadRefinement reports a malformed refinement sentence.
	ErrBadRefinement = errors.New("speech: malformed refinement")
)

var (
	preambleRe   = regexp.MustCompile(`^Considering (.+?)\.(?: Results are broken down by (.+?)\.)?$`)
	baselineRe   = regexp.MustCompile(`^Around (.+?) is the (.+?)\.$`)
	refinementRe = regexp.MustCompile(`^Values (increase|decrease) by (\d+) percent for (.+?)\.$`)
)

// Parse decomposes text into its grammar constituents. It accepts exactly
// the language produced by Speech.Text (and MainText when Strict is
// false), rejecting anything else.
func (p Parser) Parse(text string) (*ParsedSpeech, error) {
	sentences := splitSentences(text)
	if len(sentences) == 0 {
		return nil, fmt.Errorf("%w: empty text", ErrNoPreamble)
	}
	out := &ParsedSpeech{}
	i := 0

	// Preamble: one regex over the first one or two sentences, since the
	// optional breakdown clause is its own sentence.
	if strings.HasPrefix(sentences[0], "Considering ") {
		pre := sentences[0]
		if len(sentences) > 1 && strings.HasPrefix(sentences[1], "Results are broken down by ") {
			pre += " " + sentences[1]
			i = 2
		} else {
			i = 1
		}
		m := preambleRe.FindStringSubmatch(pre)
		if m == nil {
			return nil, fmt.Errorf("%w: %q", ErrNoPreamble, pre)
		}
		out.ScopePhrases = splitConjunction(m[1])
		if m[2] != "" {
			out.LevelNames = splitConjunction(m[2])
		}
	} else if p.Strict {
		return nil, fmt.Errorf("%w: text starts with %q", ErrNoPreamble, sentences[0])
	}

	// Baseline.
	if i >= len(sentences) {
		if p.Strict {
			return nil, ErrNoBaseline
		}
		return out, nil
	}
	if m := baselineRe.FindStringSubmatch(sentences[i]); m != nil {
		out.BaselineValue = m[1]
		out.AggName = m[2]
		i++
	} else if p.Strict {
		return nil, fmt.Errorf("%w: %q", ErrNoBaseline, sentences[i])
	}

	// Refinements.
	for ; i < len(sentences); i++ {
		m := refinementRe.FindStringSubmatch(sentences[i])
		if m == nil {
			return nil, fmt.Errorf("%w: %q", ErrBadRefinement, sentences[i])
		}
		dir := Increase
		if m[1] == "decrease" {
			dir = Decrease
		}
		pct, err := strconv.Atoi(m[2])
		if err != nil {
			return nil, fmt.Errorf("%w: quantifier %q", ErrBadRefinement, m[2])
		}
		out.Refinements = append(out.Refinements, ParsedRefinement{
			Dir:         dir,
			Percent:     pct,
			PredPhrases: splitConjunction(m[3]),
		})
	}
	return out, nil
}

// Conforms reports whether text is a sentence-for-sentence member of the
// speech grammar.
func (p Parser) Conforms(text string) bool {
	_, err := p.Parse(text)
	return err == nil
}

// splitSentences splits on sentence boundaries (". " with the final
// period retained per sentence).
func splitSentences(text string) []string {
	text = strings.TrimSpace(text)
	if text == "" {
		return nil
	}
	parts := strings.SplitAfter(text, ". ")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		s := strings.TrimSpace(part)
		if s != "" {
			out = append(out, s)
		}
	}
	return out
}

// splitConjunction splits "a, b and c" into its items. Phrases themselves
// never contain ", " or " and " in the grammar's vocabulary templates.
func splitConjunction(s string) []string {
	var out []string
	for _, chunk := range strings.Split(s, ", ") {
		for _, item := range strings.Split(chunk, " and ") {
			item = strings.TrimSpace(item)
			if item != "" {
				out = append(out, item)
			}
		}
	}
	return out
}

// MatchRefinement resolves a parsed refinement's predicate phrases back to
// dimension members using the hierarchies' phrase templates. It returns an
// error if any phrase is not producible by the given hierarchies.
func MatchRefinement(pr ParsedRefinement, hierarchies []*dimension.Hierarchy) (*Refinement, error) {
	r := &Refinement{Dir: pr.Dir, Percent: pr.Percent}
	for _, phrase := range pr.PredPhrases {
		m, err := matchPhrase(phrase, hierarchies)
		if err != nil {
			return nil, err
		}
		r.Preds = append(r.Preds, m)
	}
	return r, nil
}

// matchPhrase finds the member whose rendered phrase equals the input.
func matchPhrase(phrase string, hierarchies []*dimension.Hierarchy) (*dimension.Member, error) {
	for _, h := range hierarchies {
		name := phrase
		if h.Context != "" {
			if !strings.HasPrefix(phrase, h.Context+" ") {
				continue
			}
			name = strings.TrimPrefix(phrase, h.Context+" ")
		}
		if m := h.FindMember(name); m != nil {
			return m, nil
		}
	}
	return nil, fmt.Errorf("speech: phrase %q matches no dimension member", phrase)
}
