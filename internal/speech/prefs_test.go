package speech

import (
	"math"
	"testing"

	"repro/internal/dimension"
)

func TestSpeakingSeconds(t *testing.T) {
	p := Prefs{CharsPerSecond: 10}
	if got := p.SpeakingSeconds(50); got != 5 {
		t.Errorf("SpeakingSeconds = %v, want 5", got)
	}
	// Default rate.
	p = Prefs{}
	if got := p.SpeakingSeconds(30); math.Abs(got-2) > 1e-12 {
		t.Errorf("default rate SpeakingSeconds = %v, want 2", got)
	}
}

func TestMaxCharsEffective(t *testing.T) {
	cases := []struct {
		prefs Prefs
		want  int
	}{
		{Prefs{MaxChars: 300}, 300},
		{Prefs{MaxChars: 300, MaxSeconds: 10, CharsPerSecond: 15}, 150},
		{Prefs{MaxChars: 100, MaxSeconds: 20, CharsPerSecond: 15}, 100},
		{Prefs{MaxSeconds: 4, CharsPerSecond: 25}, 100},
		{Prefs{MaxSeconds: 2}, 30}, // default 15 cps
		{Prefs{}, 0},
	}
	for _, c := range cases {
		if got := c.prefs.MaxCharsEffective(); got != c.want {
			t.Errorf("MaxCharsEffective(%+v) = %d, want %d", c.prefs, got, c.want)
		}
	}
}

func TestTimeConstraintShortensSpeeches(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	winter := date.FindMember("Winter")
	sp := &Speech{
		Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat},
		Refinements: []*Refinement{
			{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50},
			{Preds: []*dimension.Member{winter}, Dir: Increase, Percent: 100},
		},
	}
	loose := Prefs{MaxSeconds: 60, CharsPerSecond: 15, MaxFragments: 5}
	if !sp.Valid(loose) {
		t.Error("60 seconds should admit the speech")
	}
	tight := Prefs{MaxSeconds: 5, CharsPerSecond: 15, MaxFragments: 5}
	if sp.Valid(tight) {
		t.Errorf("5 seconds (75 chars) should reject a %d-char speech", sp.MainLen())
	}
}
