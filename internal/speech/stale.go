package speech

// StaleNote is the spoken freshness caveat attached to an answer when new
// rows were ingested after its data snapshot was taken. It rides beside
// the grammar speech (like an uncertainty warning) rather than inside it,
// so replayed and degraded answers stay grammar-valid verbatim; sharing
// the exact sentence between the server and its checkers keeps conformance
// tests byte-stable.
const StaleNote = "Newer data has arrived since this answer was computed; ask again to include it."
