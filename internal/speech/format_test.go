package speech

import (
	"testing"
)

func TestSpokenInt(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{0, "zero"}, {1, "one"}, {13, "thirteen"}, {20, "twenty"},
		{21, "twenty one"}, {50, "fifty"}, {99, "ninety nine"},
		{100, "one hundred"}, {205, "two hundred five"},
		{1000, "1000"}, {-5, "-5"},
	}
	for _, c := range cases {
		if got := spokenInt(c.n); got != c.want {
			t.Errorf("spokenInt(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestSpokenDecimal(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{2, "two"}, {1.5, "one point five"}, {0.5, "zero point five"},
		{10, "ten"}, {2.0000001, "two"},
	}
	for _, c := range cases {
		if got := spokenDecimal(c.v); got != c.want {
			t.Errorf("spokenDecimal(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatValuePercent(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0.02, "two percent"},
		{0.015, "one point five percent"},
		{0.1, "ten percent"},
		{0.5, "fifty percent"},
		{0.001, "zero point one percent"},
		{-0.02, "minus two percent"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v, PercentFormat); got != c.want {
			t.Errorf("FormatValue(%v, percent) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatValueThousands(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{90000, "90 K"},
		{85000, "85 K"},
		{120000, "120 K"},
		{66667, "67 K"},
	}
	for _, c := range cases {
		if got := FormatValue(c.v, ThousandsFormat); got != c.want {
			t.Errorf("FormatValue(%v, thousands) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestFormatValuePlainAndSpecials(t *testing.T) {
	if got := FormatValue(5342, PlainFormat); got != "5000" {
		t.Errorf("plain = %q, want 5000", got)
	}
	if got := FormatValue(nan(), PercentFormat); got != "unknown" {
		t.Errorf("NaN = %q, want unknown", got)
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestJoinPhrases(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"a"}, "a"},
		{[]string{"a", "b"}, "a and b"},
		{[]string{"a", "b", "c"}, "a, b and c"},
	}
	for _, c := range cases {
		if got := joinPhrases(c.in); got != c.want {
			t.Errorf("joinPhrases(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFormatValueCount(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{5342, "five point three thousand"},
		{5000, "five thousand"},
		{1500000, "one point five million"},
		{2000000000, "two billion"},
		{42, "forty two"},
		{0, "zero"},
		{-5000, "minus five thousand"},
		{999, "one thousand"}, // rounds to 1000 at two significant digits
	}
	for _, c := range cases {
		if got := FormatValue(c.v, CountFormat); got != c.want {
			t.Errorf("FormatValue(%v, count) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestValueFormatString(t *testing.T) {
	if PercentFormat.String() != "percent" || ThousandsFormat.String() != "thousands" || PlainFormat.String() != "plain" {
		t.Error("ValueFormat strings wrong")
	}
	if ValueFormat(9).String() == "" {
		t.Error("unknown format should render")
	}
}
