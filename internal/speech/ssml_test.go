package speech

import (
	"strings"
	"testing"

	"repro/internal/dimension"
)

func ssmlSpeech(t *testing.T) *Speech {
	t.Helper()
	airport, _ := testDims(t)
	ne := airport.FindMember("the North East")
	return &Speech{
		Preamble: &Preamble{
			ScopePhrases: []string{"flights starting from any airport"},
			LevelNames:   []string{"region"},
		},
		Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat},
		Refinements: []*Refinement{
			{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50},
		},
	}
}

func TestSSMLStructure(t *testing.T) {
	sp := ssmlSpeech(t)
	out := sp.SSML(DefaultSSMLOptions())
	if !strings.HasPrefix(out, "<speak>") || !strings.HasSuffix(out, "</speak>") {
		t.Errorf("missing speak envelope: %s", out)
	}
	// Preamble renders as two sentences, plus baseline and one refinement.
	if got := strings.Count(out, "<s>"); got != 4 {
		t.Errorf("sentence elements = %d, want 4:\n%s", got, out)
	}
	// Breaks between consecutive sentences only.
	if got := strings.Count(out, "<break"); got != 3 {
		t.Errorf("breaks = %d, want 3:\n%s", got, out)
	}
	if !strings.Contains(out, `time="300ms"`) {
		t.Error("default break duration missing")
	}
}

func TestSSMLEmphasis(t *testing.T) {
	sp := ssmlSpeech(t)
	out := sp.SSML(DefaultSSMLOptions())
	if !strings.Contains(out, "<emphasis>two percent</emphasis>") {
		t.Errorf("baseline value should be emphasized:\n%s", out)
	}
	if !strings.Contains(out, "<emphasis>50 percent</emphasis>") {
		t.Errorf("quantifier should be emphasized:\n%s", out)
	}
	plain := sp.SSML(SSMLOptions{SentenceBreakMS: 100})
	if strings.Contains(plain, "<emphasis>") {
		t.Error("emphasis disabled should emit none")
	}
	if !strings.Contains(plain, `time="100ms"`) {
		t.Error("custom break duration missing")
	}
}

func TestSSMLEmptySpeech(t *testing.T) {
	empty := &Speech{}
	if got := empty.SSML(DefaultSSMLOptions()); got != "<speak></speak>" {
		t.Errorf("empty speech SSML = %q", got)
	}
}

func TestSSMLEscaping(t *testing.T) {
	sp := &Speech{
		Baseline: &Baseline{Value: 5, AggName: `average of "X & Y" <scores>`, Format: PlainFormat},
	}
	out := sp.SSML(SSMLOptions{})
	if strings.Contains(out, `"X & Y" <scores>`) {
		t.Errorf("special characters must be escaped:\n%s", out)
	}
	for _, frag := range []string{"&quot;", "&amp;", "&lt;scores&gt;"} {
		if !strings.Contains(out, frag) {
			t.Errorf("escaped form %q missing:\n%s", frag, out)
		}
	}
}

func TestEscapeSSML(t *testing.T) {
	if got := escapeSSML(`a<b>&"c"'d'`); got != "a&lt;b&gt;&amp;&quot;c&quot;&apos;d&apos;" {
		t.Errorf("escape = %q", got)
	}
}
