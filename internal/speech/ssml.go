package speech

import (
	"fmt"
	"strings"
)

// SSMLOptions tune speech-markup rendering.
type SSMLOptions struct {
	// SentenceBreak is the pause between sentences in milliseconds;
	// conversational agents pace OLAP summaries slower than prose.
	// Zero selects 300 ms.
	SentenceBreakMS int
	// EmphasizeQuantifiers wraps change quantifiers ("50 percent") and
	// baseline values in <emphasis>, the cue listeners anchor on.
	EmphasizeQuantifiers bool
}

// DefaultSSMLOptions match the pacing used in the study interface.
func DefaultSSMLOptions() SSMLOptions {
	return SSMLOptions{SentenceBreakMS: 300, EmphasizeQuantifiers: true}
}

// SSML renders the speech as Speech Synthesis Markup Language for real
// TTS engines: one <s> element per sentence with explicit breaks, and
// optional emphasis on the quantitative payload of each sentence.
func (s *Speech) SSML(opts SSMLOptions) string {
	if opts.SentenceBreakMS <= 0 {
		opts.SentenceBreakMS = 300
	}
	var b strings.Builder
	b.WriteString("<speak>")
	first := true
	emit := func(sentence string) {
		if sentence == "" {
			return
		}
		if !first {
			fmt.Fprintf(&b, `<break time="%dms"/>`, opts.SentenceBreakMS)
		}
		first = false
		b.WriteString("<s>")
		b.WriteString(escapeSSML(sentence))
		b.WriteString("</s>")
	}
	if s.Preamble != nil {
		for _, sentence := range splitSentences(s.Preamble.Text()) {
			emit(sentence)
		}
	}
	if s.Baseline != nil {
		sentence := escapeSSML(s.Baseline.Text())
		if opts.EmphasizeQuantifiers {
			value := escapeSSML(FormatValue(s.Baseline.Value, s.Baseline.Format))
			sentence = strings.Replace(sentence, value,
				"<emphasis>"+value+"</emphasis>", 1)
		}
		if !first {
			fmt.Fprintf(&b, `<break time="%dms"/>`, opts.SentenceBreakMS)
		}
		first = false
		b.WriteString("<s>")
		b.WriteString(sentence)
		b.WriteString("</s>")
	}
	for _, r := range s.Refinements {
		sentence := escapeSSML(r.Text())
		if opts.EmphasizeQuantifiers {
			q := fmt.Sprintf("%d percent", r.Percent)
			sentence = strings.Replace(sentence, q,
				"<emphasis>"+q+"</emphasis>", 1)
		}
		if !first {
			fmt.Fprintf(&b, `<break time="%dms"/>`, opts.SentenceBreakMS)
		}
		first = false
		b.WriteString("<s>")
		b.WriteString(sentence)
		b.WriteString("</s>")
	}
	b.WriteString("</speak>")
	return b.String()
}

// escapeSSML escapes XML-special characters in spoken text.
func escapeSSML(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;",
		"<", "&lt;",
		">", "&gt;",
		`"`, "&quot;",
		"'", "&apos;",
	)
	return r.Replace(s)
}
