package speech

import (
	"math"
	"sort"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/stats"
)

// DefaultPercents is the change-quantifier menu used for refinement
// candidates; the paper's speeches quote 5, 50, 100 and 200 percent.
var DefaultPercents = []int{5, 10, 20, 50, 100, 200}

// DefaultBaselineMultipliers span the ladder of baseline value candidates
// around a scale estimate.
var DefaultBaselineMultipliers = []float64{0.25, 0.5, 0.75, 1, 1.25, 1.5, 2, 3}

// Generator enumerates candidate speech fragments for a query (the SG.*
// functions of the paper). Its output spans the planner's search space.
type Generator struct {
	// Space is the aggregate space of the query.
	Space *olap.Space
	// Prefs constrain candidate speeches.
	Prefs Prefs
	// Format selects value rendering for this query's measure.
	Format ValueFormat
	// Percents is the change-quantifier menu (DefaultPercents if nil).
	Percents []int
	// BaselineMultipliers scale the grand estimate into baseline value
	// candidates (DefaultBaselineMultipliers if nil).
	BaselineMultipliers []float64
	// MaxPredsPerRefinement allows multi-predicate refinements when > 1.
	// The default 1 keeps the branching factor (and thus the O(m^k) tree)
	// small, as the paper's simplicity principle demands.
	MaxPredsPerRefinement int
	// MaxPredicates caps the number of predicate members considered for
	// refinements. Dimensions with hundreds of leaf members (e.g. 320
	// colleges) would otherwise blow up the branching factor m; keeping
	// the coarsest members serves the grammar's abstraction goal. Zero
	// means DefaultMaxPredicates.
	MaxPredicates int
	// DisjointScopes forbids refinements whose scopes overlap an earlier
	// refinement's scope. This emulates a grammar with *absolute* instead
	// of relative refinements (Example 3.2: after an absolute claim about
	// the North East, no overlapping claim about salary ranges can follow
	// without contradiction) and exists for the ablation benchmarks.
	DisjointScopes bool

	// menu caches the full candidate set; tree expansion filters it per
	// node, sharing the (immutable) refinement structs across the tree.
	menu []*Refinement
}

// NewGenerator returns a generator with the paper's default configuration.
func NewGenerator(space *olap.Space, prefs Prefs, format ValueFormat) *Generator {
	return &Generator{
		Space:                 space,
		Prefs:                 prefs,
		Format:                format,
		Percents:              DefaultPercents,
		BaselineMultipliers:   DefaultBaselineMultipliers,
		MaxPredsPerRefinement: 1,
	}
}

// NewPreamble builds the preamble for the query (SG.preamble): the filter
// scope per dimension of the dataset and the group-by level names.
func (g *Generator) NewPreamble() *Preamble {
	q := g.Space.Query()
	d := g.Space.Dataset()
	p := &Preamble{}
	for _, h := range d.Hierarchies() {
		m := q.FilterOn(h)
		if m == nil {
			m = h.Root()
		}
		p.ScopePhrases = append(p.ScopePhrases, h.Phrase(m))
	}
	for _, gb := range q.GroupBy {
		p.LevelNames = append(p.LevelNames, gb.Hierarchy.LevelName(gb.Level))
	}
	return p
}

// BaselineCandidates returns baseline statements whose values ladder around
// the scale estimate (typically a grand estimate from early samples, or the
// exact grand value for the optimal baseline). Values are rounded to the
// speech precision and deduplicated. A non-positive or NaN scale yields a
// single zero-valued baseline.
func (g *Generator) BaselineCandidates(scale float64) []*Baseline {
	q := g.Space.Query()
	name := q.ColDescription
	if name == "" {
		name = q.Fct.String() + " " + q.Col
	}
	mults := g.BaselineMultipliers
	if mults == nil {
		mults = DefaultBaselineMultipliers
	}
	if math.IsNaN(scale) || scale <= 0 {
		return []*Baseline{{Value: 0, AggName: name, Format: g.Format}}
	}
	seen := make(map[float64]bool)
	var values []float64
	for _, m := range mults {
		v := g.Prefs.RoundForSpeech(scale * m)
		if !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	sort.Float64s(values)
	out := make([]*Baseline, len(values))
	for i, v := range values {
		out[i] = &Baseline{Value: v, AggName: name, Format: g.Format}
	}
	return out
}

// DefaultMaxPredicates bounds the predicate menu; see MaxPredicates.
const DefaultMaxPredicates = 48

// predicates enumerates the admissible refinement predicates: members of
// the group-by hierarchies at every level from 1 down to the group level,
// restricted to the query's filter scope, excluding roots (a root predicate
// would cover the whole result and carry no information) and excluding
// members whose scope covers all aggregates. When the menu exceeds
// MaxPredicates, coarse members win: levels are consumed round-robin
// across dimensions from coarse to fine until the budget is spent.
func (g *Generator) predicates() []*dimension.Member {
	budget := g.MaxPredicates
	if budget <= 0 {
		budget = DefaultMaxPredicates
	}
	n := g.Space.Size()
	q := g.Space.Query()
	// byLevel[level-relative-depth][dim] keeps enumeration coarse-first.
	type dimScope struct {
		scope    *dimension.Member
		maxLevel int
	}
	var scopes []dimScope
	for _, gb := range q.GroupBy {
		scope := gb.Hierarchy.Root()
		if f := q.FilterOn(gb.Hierarchy); f != nil {
			scope = f
		}
		scopes = append(scopes, dimScope{scope: scope, maxLevel: gb.Level})
	}
	var out []*dimension.Member
	for depth := 1; ; depth++ {
		progressed := false
		for _, ds := range scopes {
			level := ds.scope.Level + depth
			if level > ds.maxLevel {
				continue
			}
			progressed = true
			for _, m := range ds.scope.DescendantsAt(level) {
				sz := g.Space.ScopeSize([]*dimension.Member{m})
				if sz > 0 && sz < n {
					out = append(out, m)
					if len(out) >= budget {
						return out
					}
				}
			}
		}
		if !progressed {
			return out
		}
	}
}

// fullMenu builds (once) every admissible refinement candidate: predicate
// combinations crossed with the change menu. The structs are shared across
// all speeches derived from this generator, so their rendered text is
// memoized exactly once.
func (g *Generator) fullMenu() []*Refinement {
	if g.menu != nil {
		return g.menu
	}
	preds := g.predicates()
	percents := g.Percents
	if percents == nil {
		percents = DefaultPercents
	}
	var out []*Refinement
	emit := func(ps []*dimension.Member) {
		ss := g.Space.ScopeSet(ps)
		m := ss.Size()
		if m == 0 || m >= g.Space.Size() {
			return
		}
		for _, pct := range percents {
			out = append(out, &Refinement{Preds: ps, Dir: Increase, Percent: pct, ScopeSize: m, Scope: ss})
			// "Values decrease by 100 percent" would claim zero (and
			// beyond 100, negative) values; natural speech caps decreases
			// below that.
			if pct < 100 {
				out = append(out, &Refinement{Preds: ps, Dir: Decrease, Percent: pct, ScopeSize: m, Scope: ss})
			}
		}
	}
	for _, p := range preds {
		emit([]*dimension.Member{p})
	}
	if g.MaxPredsPerRefinement > 1 {
		for i, p := range preds {
			for _, q := range preds[i+1:] {
				if p.Hierarchy() == q.Hierarchy() {
					continue
				}
				emit([]*dimension.Member{p, q})
			}
		}
	}
	g.menu = out
	return out
}

// Refinements returns the candidate next refinements for a speech with the
// given existing refinements (SG.Refinements): the full candidate menu
// minus scopes already used. Validity against length constraints is
// checked separately by the caller via Speech.Valid (ST.IsValid in the
// paper's pseudo-code). The returned refinements are shared; callers must
// not mutate them.
func (g *Generator) Refinements(prev []*Refinement) []*Refinement {
	menu := g.fullMenu()
	if len(prev) == 0 {
		return menu
	}
	out := make([]*Refinement, 0, len(menu))
	for _, c := range menu {
		used := false
		for _, r := range prev {
			if r.SameScope(c) {
				used = true
				break
			}
			if g.DisjointScopes && g.overlaps(r, c) {
				used = true
				break
			}
		}
		if !used {
			out = append(out, c)
		}
	}
	return out
}

// overlaps reports whether two refinement scopes share any aggregate.
func (g *Generator) overlaps(a, b *Refinement) bool {
	union := make([]*dimension.Member, 0, len(a.Preds)+len(b.Preds))
	union = append(union, a.Preds...)
	union = append(union, b.Preds...)
	return g.Space.ScopeSize(union) > 0
}

// BranchingFactor returns the maximum number of children any search node
// can have (the constant m of the complexity analysis): the number of
// distinct refinement candidates from an empty prefix.
func (g *Generator) BranchingFactor() int {
	return len(g.Refinements(nil))
}

// SpeechScale derives a robust positive scale from a grand estimate,
// guarding against zero and NaN so baseline ladders stay well formed.
func SpeechScale(grand float64) float64 {
	if math.IsNaN(grand) || grand <= 0 {
		return 0
	}
	return stats.RoundSig(grand, 2)
}
