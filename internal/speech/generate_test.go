package speech

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/dimension"
	"repro/internal/olap"
)

func flightsGenerator(t *testing.T, filters ...*dimension.Member) *Generator {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 21})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		Filters:        filters,
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return NewGenerator(s, DefaultPrefs(), PercentFormat)
}

// perScopeCandidates is the number of candidates per predicate scope under
// the default menu: one increase per percent, decreases only below 100%.
func perScopeCandidates() int {
	n := 0
	for _, pct := range DefaultPercents {
		n++
		if pct < 100 {
			n++
		}
	}
	return n
}

func TestGeneratorPreamble(t *testing.T) {
	g := flightsGenerator(t)
	p := g.NewPreamble()
	txt := p.Text()
	for _, frag := range []string{
		"Considering",
		"flights starting from any airport",
		"flights scheduled in any date",
		"flights operated by any airline",
		"broken down by region and season",
	} {
		if !strings.Contains(txt, frag) {
			t.Errorf("preamble missing %q:\n%s", frag, txt)
		}
	}
}

func TestGeneratorPreambleWithFilter(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 21})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	ne := airport.FindMember("the North East")
	g := flightsGeneratorWithDataset(t, d, ne)
	txt := g.NewPreamble().Text()
	if !strings.Contains(txt, "flights starting from the North East") {
		t.Errorf("preamble should mention the filter:\n%s", txt)
	}
}

func flightsGeneratorWithDataset(t *testing.T, d *olap.Dataset, filters ...*dimension.Member) *Generator {
	t.Helper()
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		Filters:        filters,
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
			{Hierarchy: d.HierarchyByName("airline"), Level: 1},
		},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return NewGenerator(s, DefaultPrefs(), PercentFormat)
}

func TestBaselineCandidates(t *testing.T) {
	g := flightsGenerator(t)
	cands := g.BaselineCandidates(0.018)
	if len(cands) == 0 {
		t.Fatal("no baseline candidates")
	}
	seen := make(map[float64]bool)
	for _, b := range cands {
		if seen[b.Value] {
			t.Errorf("duplicate baseline value %v", b.Value)
		}
		seen[b.Value] = true
		if b.AggName != "average cancellation probability" {
			t.Errorf("agg name = %q", b.AggName)
		}
	}
	// Values should be ascending and bracket the scale.
	for i := 1; i < len(cands); i++ {
		if cands[i].Value <= cands[i-1].Value {
			t.Error("baseline values should be strictly ascending")
		}
	}
	if cands[0].Value >= 0.018 || cands[len(cands)-1].Value <= 0.018 {
		t.Error("ladder should bracket the scale estimate")
	}
}

func TestBaselineCandidatesDegenerateScale(t *testing.T) {
	g := flightsGenerator(t)
	for _, scale := range []float64{0, -1, math.NaN()} {
		cands := g.BaselineCandidates(scale)
		if len(cands) != 1 || cands[0].Value != 0 {
			t.Errorf("scale %v: expected single zero baseline, got %v", scale, cands)
		}
	}
}

func TestBaselineCandidatesDefaultAggName(t *testing.T) {
	g := flightsGenerator(t)
	q := g.Space.Query()
	q.ColDescription = ""
	// Rebuild space with blank description.
	s2, err := olap.NewSpace(g.Space.Dataset(), q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	g2 := NewGenerator(s2, DefaultPrefs(), PercentFormat)
	cands := g2.BaselineCandidates(0.02)
	if !strings.Contains(cands[0].AggName, "average") || !strings.Contains(cands[0].AggName, "cancelled") {
		t.Errorf("default agg name = %q", cands[0].AggName)
	}
}

func TestRefinementCandidates(t *testing.T) {
	g := flightsGenerator(t)
	cands := g.Refinements(nil)
	if len(cands) == 0 {
		t.Fatal("no refinement candidates")
	}
	// 5 regions + 4 seasons = 9 predicates; per predicate 6 increases and
	// 4 decreases (decreases of 100% or more are excluded).
	want := 9 * perScopeCandidates()
	if len(cands) != want {
		t.Errorf("candidates = %d, want %d", len(cands), want)
	}
	for _, r := range cands {
		if r.ScopeSize <= 0 || r.ScopeSize >= g.Space.Size() {
			t.Errorf("refinement %q has scope size %d of %d", r.Text(), r.ScopeSize, g.Space.Size())
		}
		if len(r.Preds) != 1 {
			t.Errorf("default generator should emit single-predicate refinements")
		}
		if r.Preds[0].IsRoot() {
			t.Error("root predicates should be excluded")
		}
	}
}

func TestRefinementCandidatesExcludeUsedScopes(t *testing.T) {
	g := flightsGenerator(t)
	all := g.Refinements(nil)
	first := all[0]
	rest := g.Refinements([]*Refinement{first})
	for _, r := range rest {
		if r.SameScope(first) {
			t.Fatalf("candidate %q repeats a used scope", r.Text())
		}
	}
	// Exactly one predicate's worth of candidates is removed.
	if len(all)-len(rest) != perScopeCandidates() {
		t.Errorf("removed %d candidates, want %d", len(all)-len(rest), perScopeCandidates())
	}
}

func TestRefinementCandidatesMultiLevel(t *testing.T) {
	// Grouping by state (level 2) admits both region and state predicates.
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 3})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: airport, Level: 2}},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	g := NewGenerator(s, DefaultPrefs(), PercentFormat)
	var sawRegion, sawState bool
	for _, r := range g.Refinements(nil) {
		switch r.Preds[0].Level {
		case 1:
			sawRegion = true
		case 2:
			sawState = true
		}
	}
	if !sawRegion || !sawState {
		t.Error("expected predicates at both region and state level")
	}
}

func TestRefinementCandidatesPairs(t *testing.T) {
	g := flightsGenerator(t)
	g.MaxPredsPerRefinement = 2
	cands := g.Refinements(nil)
	sawPair := false
	for _, r := range cands {
		if len(r.Preds) == 2 {
			sawPair = true
			if r.Preds[0].Hierarchy() == r.Preds[1].Hierarchy() {
				t.Error("pair predicates must be on distinct hierarchies")
			}
		}
	}
	if !sawPair {
		t.Error("pair mode should emit two-predicate refinements")
	}
	// 9 singles + 5*4 pairs = 29 scopes.
	want := (9 + 20) * perScopeCandidates()
	if len(cands) != want {
		t.Errorf("candidates = %d, want %d", len(cands), want)
	}
}

func TestBranchingFactor(t *testing.T) {
	g := flightsGenerator(t)
	if got := g.BranchingFactor(); got != len(g.Refinements(nil)) {
		t.Error("BranchingFactor should match candidate count")
	}
}

func TestRefinementCandidatesWithFilterScope(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 5})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	ne := airport.FindMember("the North East")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		Filters: []*dimension.Member{ne},
		GroupBy: []olap.GroupBy{
			{Hierarchy: airport, Level: 2},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	g := NewGenerator(s, DefaultPrefs(), PercentFormat)
	for _, r := range g.Refinements(nil) {
		p := r.Preds[0]
		if p.Hierarchy() == airport && !p.IsDescendantOf(ne) {
			t.Errorf("predicate %v outside the filter scope", p)
		}
	}
}

func TestSpeechScale(t *testing.T) {
	if SpeechScale(math.NaN()) != 0 || SpeechScale(-1) != 0 || SpeechScale(0) != 0 {
		t.Error("degenerate scales should be 0")
	}
	if got := SpeechScale(0.0182); got != 0.018 {
		t.Errorf("scale = %v, want 0.018", got)
	}
}
