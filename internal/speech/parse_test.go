package speech

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dimension"
)

const sampleSpeech = "Considering flights starting from any airport and flights scheduled in any date. " +
	"Results are broken down by region and season. " +
	"Around two percent is the average cancellation probability. " +
	"Values increase by 50 percent for flights starting from the North East. " +
	"Values increase by 100 percent for flights scheduled in Winter."

func TestParseFullSpeech(t *testing.T) {
	p := Parser{Strict: true}
	ps, err := p.Parse(sampleSpeech)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ps.ScopePhrases) != 2 {
		t.Errorf("scope phrases = %v", ps.ScopePhrases)
	}
	if len(ps.LevelNames) != 2 || ps.LevelNames[0] != "region" || ps.LevelNames[1] != "season" {
		t.Errorf("level names = %v", ps.LevelNames)
	}
	if ps.BaselineValue != "two percent" {
		t.Errorf("baseline value = %q", ps.BaselineValue)
	}
	if ps.AggName != "average cancellation probability" {
		t.Errorf("agg name = %q", ps.AggName)
	}
	if len(ps.Refinements) != 2 {
		t.Fatalf("refinements = %d", len(ps.Refinements))
	}
	r := ps.Refinements[0]
	if r.Dir != Increase || r.Percent != 50 {
		t.Errorf("refinement 0 = %+v", r)
	}
	if len(r.PredPhrases) != 1 || r.PredPhrases[0] != "flights starting from the North East" {
		t.Errorf("pred phrases = %v", r.PredPhrases)
	}
}

func TestParseMultiPredicateRefinement(t *testing.T) {
	text := "Around one percent is the average cancellation probability. " +
		"Values decrease by 20 percent for flights starting from Boston and flights scheduled in Summer."
	ps, err := Parser{}.Parse(text)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(ps.Refinements) != 1 {
		t.Fatalf("refinements = %d", len(ps.Refinements))
	}
	r := ps.Refinements[0]
	if r.Dir != Decrease || r.Percent != 20 || len(r.PredPhrases) != 2 {
		t.Errorf("refinement = %+v", r)
	}
}

func TestParseErrors(t *testing.T) {
	strict := Parser{Strict: true}
	if _, err := strict.Parse(""); !errors.Is(err, ErrNoPreamble) {
		t.Errorf("empty text: %v", err)
	}
	if _, err := strict.Parse("Hello world."); !errors.Is(err, ErrNoPreamble) {
		t.Errorf("non-grammar opener: %v", err)
	}
	if _, err := strict.Parse("Considering flights."); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("preamble only in strict mode: %v", err)
	}
	if _, err := strict.Parse("Considering flights. Something odd happens here."); !errors.Is(err, ErrNoBaseline) {
		t.Errorf("bad baseline: %v", err)
	}
	relaxed := Parser{}
	if _, err := relaxed.Parse("Around one percent is the rate. Values explode for everything."); !errors.Is(err, ErrBadRefinement) {
		t.Errorf("bad refinement: %v", err)
	}
	if _, err := relaxed.Parse("Considering x."); err != nil {
		t.Errorf("preamble-only should pass relaxed: %v", err)
	}
}

func TestConforms(t *testing.T) {
	if !(Parser{Strict: true}).Conforms(sampleSpeech) {
		t.Error("sample speech should conform")
	}
	if (Parser{Strict: true}).Conforms("The weather is nice.") {
		t.Error("non-grammar text should not conform")
	}
}

// TestRenderedSpeechesConform round-trips generated speeches through the
// parser: everything the system renders must be in the grammar.
func TestRenderedSpeechesConform(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	boston := airport.Leaf("Boston")
	winter := date.FindMember("Winter")
	base := &Speech{
		Preamble: &Preamble{
			ScopePhrases: []string{"flights starting from any airport", "flights scheduled in any date"},
			LevelNames:   []string{"region", "season"},
		},
		Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat},
	}
	speeches := []*Speech{
		base,
		base.Extend(&Refinement{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50}),
		base.Extend(&Refinement{Preds: []*dimension.Member{boston, winter}, Dir: Decrease, Percent: 10}),
	}
	strict := Parser{Strict: true}
	for _, sp := range speeches {
		text := sp.Text()
		ps, err := strict.Parse(text)
		if err != nil {
			t.Errorf("rendered speech does not parse: %v\n%s", err, text)
			continue
		}
		if len(ps.Refinements) != len(sp.Refinements) {
			t.Errorf("refinement count mismatch: parsed %d, built %d",
				len(ps.Refinements), len(sp.Refinements))
		}
		for i, pr := range ps.Refinements {
			if pr.Percent != sp.Refinements[i].Percent || pr.Dir != sp.Refinements[i].Dir {
				t.Errorf("refinement %d mismatch: %+v vs %+v", i, pr, sp.Refinements[i])
			}
		}
	}
}

// TestRandomSpeechesRoundTripProperty: speeches assembled from random
// grammar fragments always parse back with matching structure.
func TestRandomSpeechesRoundTripProperty(t *testing.T) {
	airport, date := testDims(t)
	preds := []*dimension.Member{
		airport.FindMember("the North East"),
		airport.FindMember("the Midwest"),
		airport.Leaf("Boston"),
		date.FindMember("Winter"),
		date.FindMember("Summer"),
	}
	percents := []int{5, 10, 20, 50, 100, 200}
	strict := Parser{Strict: true}
	f := func(seed int64, nRefs uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sp := &Speech{
			Preamble: &Preamble{ScopePhrases: []string{"flights starting from any airport"}},
			Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat},
		}
		n := int(nRefs) % 4
		for i := 0; i < n; i++ {
			dir := Increase
			if rng.Intn(2) == 1 {
				dir = Decrease
			}
			sp = sp.Extend(&Refinement{
				Preds:   []*dimension.Member{preds[rng.Intn(len(preds))]},
				Dir:     dir,
				Percent: percents[rng.Intn(len(percents))],
			})
		}
		ps, err := strict.Parse(sp.Text())
		if err != nil {
			return false
		}
		if len(ps.Refinements) != n {
			return false
		}
		for i, pr := range ps.Refinements {
			if pr.Percent != sp.Refinements[i].Percent || pr.Dir != sp.Refinements[i].Dir {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMatchRefinement(t *testing.T) {
	airport, date := testDims(t)
	hs := []*dimension.Hierarchy{airport, date}
	pr := ParsedRefinement{
		Dir: Increase, Percent: 50,
		PredPhrases: []string{"flights starting from the North East", "flights scheduled in Winter"},
	}
	r, err := MatchRefinement(pr, hs)
	if err != nil {
		t.Fatalf("MatchRefinement: %v", err)
	}
	if len(r.Preds) != 2 || r.Preds[0].Name != "the North East" || r.Preds[1].Name != "Winter" {
		t.Errorf("preds = %v", r.Preds)
	}
	// Unknown phrase.
	pr.PredPhrases = []string{"flights starting from Atlantis"}
	if _, err := MatchRefinement(pr, hs); err == nil {
		t.Error("unknown phrase should fail")
	}
	// Wrong context template.
	pr.PredPhrases = []string{"trains departing from Boston"}
	if _, err := MatchRefinement(pr, hs); err == nil {
		t.Error("foreign context should fail")
	}
}

func TestSplitHelpers(t *testing.T) {
	if got := splitConjunction("a, b and c"); len(got) != 3 {
		t.Errorf("splitConjunction = %v", got)
	}
	if got := splitConjunction("only"); len(got) != 1 || got[0] != "only" {
		t.Errorf("splitConjunction single = %v", got)
	}
	if got := splitSentences("One. Two. "); len(got) != 2 || got[0] != "One." {
		t.Errorf("splitSentences = %v", got)
	}
	if splitSentences("  ") != nil {
		t.Error("blank input should split to nil")
	}
}
