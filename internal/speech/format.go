// Package speech implements the vocalization grammar of the paper
// (Figure 1): a preamble summarizing the query, a baseline statement fixing
// a typical aggregate value, and relative refinement statements scoped by
// dimension predicates. It renders speeches to text, enforces the user
// preference constraints (character and fragment limits), and enumerates
// the candidate fragments that span the planner's search space.
package speech

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// ValueFormat selects how aggregate values are rendered in speech.
type ValueFormat int

// Supported value formats.
const (
	// PercentFormat renders fractions as spoken percentages:
	// 0.02 -> "two percent", 0.015 -> "one point five percent".
	PercentFormat ValueFormat = iota
	// ThousandsFormat renders large amounts in thousands: 90000 -> "90 K".
	ThousandsFormat
	// PlainFormat renders the rounded number in digits.
	PlainFormat
	// CountFormat renders counts in words: 5342 -> "five thousand",
	// 1500000 -> "one point five million".
	CountFormat
)

// String implements fmt.Stringer.
func (f ValueFormat) String() string {
	switch f {
	case PercentFormat:
		return "percent"
	case ThousandsFormat:
		return "thousands"
	case PlainFormat:
		return "plain"
	case CountFormat:
		return "count"
	default:
		return fmt.Sprintf("ValueFormat(%d)", int(f))
	}
}

var onesWords = []string{
	"zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
	"nine", "ten", "eleven", "twelve", "thirteen", "fourteen", "fifteen",
	"sixteen", "seventeen", "eighteen", "nineteen",
}

var tensWords = []string{
	"", "", "twenty", "thirty", "forty", "fifty", "sixty", "seventy",
	"eighty", "ninety",
}

// spokenInt renders a non-negative integer below 1000 in words; larger
// values fall back to digits.
func spokenInt(n int) string {
	switch {
	case n < 0 || n >= 1000:
		return strconv.Itoa(n)
	case n < 20:
		return onesWords[n]
	case n < 100:
		if n%10 == 0 {
			return tensWords[n/10]
		}
		return tensWords[n/10] + " " + onesWords[n%10]
	default:
		s := onesWords[n/100] + " hundred"
		if n%100 != 0 {
			s += " " + spokenInt(n%100)
		}
		return s
	}
}

// spokenDecimal renders a one-significant-digit decimal in words:
// 1.5 -> "one point five", 0.5 -> "zero point five", 2 -> "two".
func spokenDecimal(v float64) string {
	rounded := stats.RoundSig(v, 2)
	intPart := int(rounded)
	frac := rounded - float64(intPart)
	if frac < 1e-9 {
		return spokenInt(intPart)
	}
	tenth := int(math.Round(frac * 10))
	if tenth == 10 {
		return spokenInt(intPart + 1)
	}
	return spokenInt(intPart) + " point " + spokenInt(tenth)
}

// FormatValue renders an aggregate value for speech at one significant
// digit (two when the leading digit alone would hide the magnitude of a
// small percentage, matching phrases like "one point five percent").
func FormatValue(v float64, f ValueFormat) string {
	if math.IsNaN(v) {
		return "unknown"
	}
	switch f {
	case PercentFormat:
		pct := v * 100
		r := stats.RoundSig(pct, 1)
		// "one point five percent" style for small percentages whose
		// second digit matters.
		if pct < 10 {
			r2 := stats.RoundSig(pct, 2)
			if math.Abs(r2-r) > 1e-12 {
				r = r2
			}
		}
		if r < 0 {
			return "minus " + spokenDecimal(-r) + " percent"
		}
		return spokenDecimal(r) + " percent"
	case ThousandsFormat:
		r := stats.RoundSig(v/1000, 2)
		return strconv.FormatFloat(r, 'f', -1, 64) + " K"
	case PlainFormat:
		r := stats.RoundSig(v, 1)
		return strconv.FormatFloat(r, 'f', -1, 64)
	case CountFormat:
		return spokenCount(v)
	default:
		return strconv.FormatFloat(v, 'g', 3, 64)
	}
}

// magnitudeNames scale large spoken counts.
var magnitudeNames = []struct {
	value float64
	name  string
}{
	{1e9, "billion"},
	{1e6, "million"},
	{1e3, "thousand"},
}

// spokenCount renders a count in words at up to two significant digits:
// 5342 -> "five thousand", 1500000 -> "one point five million".
func spokenCount(v float64) string {
	if v < 0 {
		return "minus " + spokenCount(-v)
	}
	r := stats.RoundSig(v, 2)
	for _, m := range magnitudeNames {
		if r >= m.value {
			return spokenDecimal(r/m.value) + " " + m.name
		}
	}
	return spokenInt(int(math.Round(r)))
}

// joinPhrases joins predicate phrases per the grammar:
// one -> "a", two -> "a and b", more -> "a, b and c".
func joinPhrases(parts []string) string {
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	case 2:
		return parts[0] + " and " + parts[1]
	default:
		return strings.Join(parts[:len(parts)-1], ", ") + " and " + parts[len(parts)-1]
	}
}
