package speech

import (
	"strings"
	"testing"

	"repro/internal/dimension"
)

// testDims builds a pair of small hierarchies for grammar tests.
func testDims(t *testing.T) (airport, date *dimension.Hierarchy) {
	t.Helper()
	airport = dimension.MustNewHierarchy("start airport", "city", "flights starting from", "any airport",
		[]string{"region", "city"})
	airport.MustAddPath("the North East", "Boston")
	airport.MustAddPath("the North East", "New York City")
	airport.MustAddPath("the Midwest", "Chicago")
	date = dimension.MustNewHierarchy("flight date", "month", "flights scheduled in", "any date",
		[]string{"season"})
	date.MustAddPath("Winter")
	date.MustAddPath("Summer")
	return airport, date
}

func TestPreambleText(t *testing.T) {
	p := &Preamble{
		ScopePhrases: []string{"flights starting from any airport", "flights scheduled in any date"},
		LevelNames:   []string{"region", "season"},
	}
	want := "Considering flights starting from any airport and flights scheduled in any date. " +
		"Results are broken down by region and season."
	if got := p.Text(); got != want {
		t.Errorf("preamble = %q, want %q", got, want)
	}
	bare := &Preamble{ScopePhrases: []string{"x"}}
	if got := bare.Text(); got != "Considering x." {
		t.Errorf("bare preamble = %q", got)
	}
}

func TestBaselineText(t *testing.T) {
	b := &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat}
	want := "Around two percent is the average cancellation probability."
	if got := b.Text(); got != want {
		t.Errorf("baseline = %q, want %q", got, want)
	}
}

func TestRefinementText(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	winter := date.FindMember("Winter")
	r := &Refinement{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50}
	want := "Values increase by 50 percent for flights starting from the North East."
	if got := r.Text(); got != want {
		t.Errorf("refinement = %q, want %q", got, want)
	}
	r2 := &Refinement{Preds: []*dimension.Member{ne, winter}, Dir: Decrease, Percent: 20}
	want2 := "Values decrease by 20 percent for flights starting from the North East and flights scheduled in Winter."
	if got := r2.Text(); got != want2 {
		t.Errorf("two-pred refinement = %q, want %q", got, want2)
	}
}

func TestSameScope(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	mw := airport.FindMember("the Midwest")
	winter := date.FindMember("Winter")
	a := &Refinement{Preds: []*dimension.Member{ne, winter}}
	b := &Refinement{Preds: []*dimension.Member{winter, ne}}
	c := &Refinement{Preds: []*dimension.Member{mw, winter}}
	d := &Refinement{Preds: []*dimension.Member{ne}}
	if !a.SameScope(b) {
		t.Error("scope should be order-insensitive")
	}
	if a.SameScope(c) || a.SameScope(d) {
		t.Error("different scopes should not match")
	}
}

func TestSubsumes(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	boston := airport.Leaf("Boston")
	winter := date.FindMember("Winter")

	region := &Refinement{Preds: []*dimension.Member{ne}}
	city := &Refinement{Preds: []*dimension.Member{boston}}
	cityWinter := &Refinement{Preds: []*dimension.Member{boston, winter}}
	winterOnly := &Refinement{Preds: []*dimension.Member{winter}}

	if !region.Subsumes(city) {
		t.Error("region should subsume its city")
	}
	if city.Subsumes(region) {
		t.Error("city should not subsume its region")
	}
	if !region.Subsumes(cityWinter) {
		t.Error("region should subsume city+winter")
	}
	if !winterOnly.Subsumes(cityWinter) {
		t.Error("winter should subsume city+winter")
	}
	if region.Subsumes(winterOnly) || winterOnly.Subsumes(region) {
		t.Error("disjoint hierarchies should not subsume")
	}
	if !region.Subsumes(region) {
		t.Error("a scope subsumes itself")
	}
}

func TestSpeechTextAssembly(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	winter := date.FindMember("Winter")
	s := &Speech{
		Preamble: &Preamble{ScopePhrases: []string{"flights starting from any airport"}},
		Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat},
		Refinements: []*Refinement{
			{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50},
			{Preds: []*dimension.Member{winter}, Dir: Increase, Percent: 100},
		},
	}
	txt := s.Text()
	for _, frag := range []string{
		"Considering flights starting from any airport.",
		"Around two percent is the average cancellation probability.",
		"Values increase by 50 percent for flights starting from the North East.",
		"Values increase by 100 percent for flights scheduled in Winter.",
	} {
		if !strings.Contains(txt, frag) {
			t.Errorf("speech missing %q:\n%s", frag, txt)
		}
	}
	if s.NumFragments() != 3 {
		t.Errorf("fragments = %d, want 3", s.NumFragments())
	}
	if got := s.LastSentence(); !strings.Contains(got, "Winter") {
		t.Errorf("last sentence = %q", got)
	}
	// MainText must not include the preamble.
	if strings.Contains(s.MainText(), "Considering") {
		t.Error("MainText should exclude the preamble")
	}
}

func TestSpeechLastSentenceFallbacks(t *testing.T) {
	empty := &Speech{}
	if empty.LastSentence() != "" {
		t.Error("empty speech should have empty last sentence")
	}
	p := &Speech{Preamble: &Preamble{ScopePhrases: []string{"x"}}}
	if p.LastSentence() != "Considering x." {
		t.Error("preamble-only speech should speak the preamble")
	}
	b := &Speech{Baseline: &Baseline{Value: 1, AggName: "count", Format: PlainFormat}}
	if !strings.Contains(b.LastSentence(), "count") {
		t.Error("baseline-only speech should speak the baseline")
	}
	if b.Text() != b.MainText() {
		t.Error("speech without preamble: Text == MainText")
	}
}

func TestSpeechCloneIndependence(t *testing.T) {
	airport, _ := testDims(t)
	ne := airport.FindMember("the North East")
	mw := airport.FindMember("the Midwest")
	base := &Speech{Baseline: &Baseline{Value: 1, AggName: "x", Format: PlainFormat}}
	a := base.Extend(&Refinement{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 5})
	b := a.Extend(&Refinement{Preds: []*dimension.Member{mw}, Dir: Decrease, Percent: 10})
	c := a.Extend(&Refinement{Preds: []*dimension.Member{mw}, Dir: Increase, Percent: 20})
	if len(a.Refinements) != 1 || len(b.Refinements) != 2 || len(c.Refinements) != 2 {
		t.Fatal("Extend should not share refinement slices")
	}
	if b.Refinements[1].Percent == c.Refinements[1].Percent {
		t.Error("sibling extensions should not clobber each other")
	}
}

func TestDeltasSemantics(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	boston := airport.Leaf("Boston")
	winter := date.FindMember("Winter")

	s := &Speech{Baseline: &Baseline{Value: 100, AggName: "x", Format: PlainFormat}}
	s = s.Extend(&Refinement{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50, ScopeSize: 2})
	s = s.Extend(&Refinement{Preds: []*dimension.Member{boston}, Dir: Increase, Percent: 10, ScopeSize: 1})
	s = s.Extend(&Refinement{Preds: []*dimension.Member{winter}, Dir: Decrease, Percent: 20, ScopeSize: 3})

	d := s.Deltas()
	// First: 50% of baseline 100 = +50.
	if d[0] != 50 {
		t.Errorf("delta[0] = %v, want 50", d[0])
	}
	// Second: Boston is subsumed by NE, so reference is 100+50; +10% = +15.
	if d[1] != 15 {
		t.Errorf("delta[1] = %v, want 15", d[1])
	}
	// Third: Winter is not subsumed by either, reference is baseline; -20.
	if d[2] != -20 {
		t.Errorf("delta[2] = %v, want -20", d[2])
	}
}

func TestDeltasWithoutBaseline(t *testing.T) {
	airport, _ := testDims(t)
	ne := airport.FindMember("the North East")
	s := &Speech{Refinements: []*Refinement{{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50}}}
	if d := s.Deltas(); d[0] != 0 {
		t.Error("no baseline: deltas are zero")
	}
}

func TestSpeechValidity(t *testing.T) {
	airport, date := testDims(t)
	ne := airport.FindMember("the North East")
	winter := date.FindMember("Winter")
	prefs := Prefs{MaxChars: 300, MaxFragments: 2, SigDigits: 1}

	s := &Speech{Baseline: &Baseline{Value: 0.02, AggName: "average cancellation probability", Format: PercentFormat}}
	if !s.Valid(prefs) {
		t.Error("baseline-only speech should be valid")
	}
	s = s.Extend(&Refinement{Preds: []*dimension.Member{ne}, Dir: Increase, Percent: 50})
	s = s.Extend(&Refinement{Preds: []*dimension.Member{winter}, Dir: Increase, Percent: 100})
	if !s.Valid(prefs) {
		t.Errorf("two-refinement speech should be valid (len=%d)", len(s.MainText()))
	}
	over := s.Extend(&Refinement{Preds: []*dimension.Member{airport.FindMember("the Midwest")}, Dir: Decrease, Percent: 5})
	if over.Valid(prefs) {
		t.Error("three refinements should exceed the fragment limit")
	}
	// Duplicate scope.
	dup := s.Clone()
	dup.Refinements = append(dup.Refinements[:1:1], dup.Refinements[0])
	if dup.Valid(prefs) {
		t.Error("duplicate scope should be invalid")
	}
	// Character limit.
	tight := Prefs{MaxChars: 40, MaxFragments: 5}
	if s.Valid(tight) {
		t.Error("long speech should violate a 40-char limit")
	}
}

func TestPrefsRoundForSpeech(t *testing.T) {
	p := Prefs{SigDigits: 1}
	if got := p.RoundForSpeech(0.0182); got != 0.02 {
		t.Errorf("round = %v, want 0.02", got)
	}
	p.SigDigits = 0
	if got := p.RoundForSpeech(0.0182); got != 0.02 {
		t.Errorf("round with digits=0 = %v, want 0.02", got)
	}
	if DefaultPrefs().MaxChars != 300 {
		t.Error("default prefs should follow the paper's 300-char limit")
	}
}

func TestDirectionString(t *testing.T) {
	if Increase.String() != "increase" || Decrease.String() != "decrease" {
		t.Error("direction strings wrong")
	}
}
