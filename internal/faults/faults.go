// Package faults provides fault-injection wrappers for the serving stack:
// table scanners that die, crawl, or hang mid-stream, and a clock with
// bounded jitter. Tests wrap the planner's row stream (via
// core.Config.Scanner) and clock with these to prove the vocalizers still
// emit grammar-valid speech — possibly degraded, never a hang or panic —
// under storage and timing failures.
package faults

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/table"
	"repro/internal/voice"
)

// FailingScanner passes rows through until Limit rows have been emitted,
// then reports exhaustion forever, simulating a scan whose backend died
// mid-stream. The consumer sees a short table; Failed reports whether the
// injected failure actually triggered.
type FailingScanner struct {
	// Inner is the wrapped stream.
	Inner table.Scanner
	// Limit is the number of rows delivered before the failure (0 fails
	// immediately).
	Limit int

	emitted int
	failed  bool
}

// Next implements table.Scanner.
func (f *FailingScanner) Next() (int, bool) {
	if f.emitted >= f.Limit {
		f.failed = true
		return 0, false
	}
	r, ok := f.Inner.Next()
	if !ok {
		return 0, false
	}
	f.emitted++
	return r, true
}

// Reset implements table.Scanner, rearming the failure.
func (f *FailingScanner) Reset() {
	f.Inner.Reset()
	f.emitted = 0
	f.failed = false
}

// Failed reports whether the injected failure triggered.
func (f *FailingScanner) Failed() bool { return f.failed }

// SlowScanner delays every row by Delay, simulating a saturated or
// throttled storage backend.
type SlowScanner struct {
	// Inner is the wrapped stream.
	Inner table.Scanner
	// Delay is the per-row latency.
	Delay time.Duration
}

// Next implements table.Scanner.
func (s *SlowScanner) Next() (int, bool) {
	time.Sleep(s.Delay)
	return s.Inner.Next()
}

// Reset implements table.Scanner.
func (s *SlowScanner) Reset() { s.Inner.Reset() }

// StallingScanner delivers After rows normally, then blocks every Next
// until Release is called — a hung storage backend. Consumers that read
// synchronously will hang with it (that is the point); the async sampler
// tolerates it via its bounded StopWithin teardown.
type StallingScanner struct {
	// Inner is the wrapped stream.
	Inner table.Scanner
	// After is the number of rows delivered before the stall.
	After int

	emitted int
	release chan struct{}
	once    sync.Once
}

// NewStallingScanner wraps inner, stalling after the given row count.
func NewStallingScanner(inner table.Scanner, after int) *StallingScanner {
	return &StallingScanner{Inner: inner, After: after, release: make(chan struct{})}
}

// Next implements table.Scanner, blocking once the stall point is reached.
func (s *StallingScanner) Next() (int, bool) {
	if s.emitted >= s.After {
		<-s.release
		return 0, false
	}
	r, ok := s.Inner.Next()
	if !ok {
		return 0, false
	}
	s.emitted++
	return r, true
}

// Reset implements table.Scanner. The stall point is rearmed but a
// released stall stays released.
func (s *StallingScanner) Reset() {
	s.Inner.Reset()
	s.emitted = 0
}

// Release unblocks all present and future stalled Next calls, which then
// report exhaustion. Safe to call multiple times.
func (s *StallingScanner) Release() {
	s.once.Do(func() { close(s.release) })
}

// JitterClock wraps a clock and adds bounded pseudo-random jitter to every
// reading while keeping it monotonic — readings never run backwards, so
// playback deadlines still resolve. It simulates scheduling noise between
// the planner's clock reads.
type JitterClock struct {
	mu   sync.Mutex
	base voice.Clock
	max  time.Duration
	rng  *rand.Rand
	last time.Time
}

// Compile-time check: the jitter clock is a voice.Clock.
var _ voice.Clock = (*JitterClock)(nil)

// NewJitterClock wraps base, adding up to max jitter per reading, seeded
// deterministically.
func NewJitterClock(base voice.Clock, max time.Duration, seed int64) *JitterClock {
	return &JitterClock{base: base, max: max, rng: rand.New(rand.NewSource(seed))}
}

// Now implements voice.Clock.
func (c *JitterClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.base.Now()
	if c.max > 0 {
		t = t.Add(time.Duration(c.rng.Int63n(int64(c.max) + 1)))
	}
	if t.Before(c.last) {
		return c.last
	}
	c.last = t
	return t
}
