package faults

import (
	"testing"
	"time"

	"repro/internal/table"
	"repro/internal/voice"
)

func testScanner(n int) table.Scanner {
	col := table.NewFloat64Column("v")
	for i := 0; i < n; i++ {
		col.Append(float64(i))
	}
	return table.NewSequentialScanner(table.MustNew("t", col))
}

func TestFailingScannerCutsStream(t *testing.T) {
	f := &FailingScanner{Inner: testScanner(10), Limit: 3}
	var rows []int
	for {
		r, ok := f.Next()
		if !ok {
			break
		}
		rows = append(rows, r)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if !f.Failed() {
		t.Error("failure should have triggered")
	}
	// Exhaustion is sticky.
	if _, ok := f.Next(); ok {
		t.Error("failed scanner should stay exhausted")
	}
	f.Reset()
	if f.Failed() {
		t.Error("Reset should rearm the failure")
	}
	if _, ok := f.Next(); !ok {
		t.Error("reset scanner should deliver rows again")
	}
}

func TestFailingScannerImmediate(t *testing.T) {
	f := &FailingScanner{Inner: testScanner(10), Limit: 0}
	if _, ok := f.Next(); ok {
		t.Fatal("limit 0 should fail immediately")
	}
	if !f.Failed() {
		t.Error("failure should have triggered")
	}
}

func TestStallingScannerBlocksUntilRelease(t *testing.T) {
	s := NewStallingScanner(testScanner(10), 2)
	for i := 0; i < 2; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("row %d should pass through", i)
		}
	}
	got := make(chan bool, 1)
	go func() {
		_, ok := s.Next()
		got <- ok
	}()
	select {
	case <-got:
		t.Fatal("Next should stall after the configured row count")
	case <-time.After(20 * time.Millisecond):
	}
	s.Release()
	s.Release() // idempotent
	select {
	case ok := <-got:
		if ok {
			t.Error("released stall should report exhaustion")
		}
	case <-time.After(time.Second):
		t.Fatal("Release did not unblock Next")
	}
}

func TestSlowScannerDelivers(t *testing.T) {
	s := &SlowScanner{Inner: testScanner(3), Delay: time.Millisecond}
	n := 0
	for {
		if _, ok := s.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("got %d rows, want 3", n)
	}
}

func TestJitterClockMonotonic(t *testing.T) {
	sim := voice.NewSimClock()
	c := NewJitterClock(sim, 50*time.Millisecond, 7)
	last := c.Now()
	for i := 0; i < 1000; i++ {
		if i%10 == 0 {
			sim.Advance(time.Millisecond)
		}
		now := c.Now()
		if now.Before(last) {
			t.Fatalf("clock ran backwards: %v after %v", now, last)
		}
		last = now
	}
	// Jitter keeps readings within the bound of the base clock.
	base := sim.Now()
	if d := last.Sub(base); d < 0 || d > 50*time.Millisecond {
		t.Errorf("reading drifted %v from base, want within [0, 50ms]", d)
	}
}
