package faults

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/table"
)

// newTestTable builds a tiny table for scanner construction.
func newTestTable(t *testing.T) *table.Table {
	t.Helper()
	col := make([]float64, 100)
	for i := range col {
		col[i] = float64(i)
	}
	return table.MustNew("t", table.NewFloat64ColumnFromValues("v", col))
}

func TestInjectorWrapsEveryNthScan(t *testing.T) {
	tb := newTestTable(t)
	in := NewInjector(InjectorOptions{SlowEvery: 3, SlowDelay: time.Microsecond})
	rng := rand.New(rand.NewSource(1))
	slow := 0
	for i := 0; i < 9; i++ {
		if _, ok := in.Scanner(tb, rng).(*SlowScanner); ok {
			slow++
		}
	}
	if slow != 3 {
		t.Errorf("slow scans = %d of 9, want 3 (every 3rd)", slow)
	}
	st := in.Stats()
	if st.Scans != 9 || st.Slowed != 3 {
		t.Errorf("stats = %+v, want scans:9 slowed:3", st)
	}
}

func TestInjectorStallAutoReleases(t *testing.T) {
	tb := newTestTable(t)
	in := NewInjector(InjectorOptions{
		StallEvery: 1, StallAfter: 2, StallRelease: 20 * time.Millisecond,
	})
	s := in.Scanner(tb, rand.New(rand.NewSource(1)))
	for i := 0; i < 2; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("row %d: scan ended before the stall point", i)
		}
	}
	// The third Next stalls, then the auto-release turns it into
	// exhaustion: delayed, never wedged.
	start := time.Now()
	done := make(chan bool, 1)
	go func() {
		_, ok := s.Next()
		done <- ok
	}()
	select {
	case ok := <-done:
		if ok {
			t.Error("released stall must report exhaustion")
		}
		if time.Since(start) < 10*time.Millisecond {
			t.Error("stall released too early to have blocked at all")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stall never auto-released")
	}
}

func TestInjectorDisabledPassesScansThrough(t *testing.T) {
	tb := newTestTable(t)
	opts := InjectorOptions{}
	if opts.Enabled() {
		t.Fatal("zero options must report disabled")
	}
	in := NewInjector(opts)
	s := in.Scanner(tb, rand.New(rand.NewSource(1)))
	if _, ok := s.(*table.RandomScanner); !ok {
		t.Errorf("disabled injector built %T, want *table.RandomScanner", s)
	}
}

func TestInjectorConcurrentConstruction(t *testing.T) {
	tb := newTestTable(t)
	in := NewInjector(InjectorOptions{SlowEvery: 2, FailEvery: 5})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				s := in.Scanner(tb, rng)
				s.Next()
			}
		}(int64(w))
	}
	wg.Wait()
	st := in.Stats()
	if st.Scans != 400 {
		t.Fatalf("scans = %d, want 400", st.Scans)
	}
	if st.Slowed != 200 || st.Failed != 80 {
		t.Errorf("stats = %+v, want slowed:200 failed:80", st)
	}
}
