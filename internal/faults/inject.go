package faults

import (
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/table"
)

// InjectorOptions configures periodic scanner-fault injection for a live
// server: every Nth constructed scan is wrapped with the selected fault,
// so a chaos load run continuously mixes healthy and faulty queries.
type InjectorOptions struct {
	// SlowEvery wraps every Nth scan in a SlowScanner (0 disables).
	SlowEvery int
	// SlowDelay is the injected per-row latency (default 1ms).
	SlowDelay time.Duration
	// StallEvery wraps every Nth scan in a StallingScanner (0 disables).
	// Slow and stall injections count scans independently.
	StallEvery int
	// StallAfter is the row count delivered before the stall (default 32).
	StallAfter int
	// StallRelease auto-releases the stall after this delay so a
	// synchronous consumer is delayed, not wedged forever (default 1s;
	// the released scan reports exhaustion and the planner degrades).
	StallRelease time.Duration
	// FailEvery truncates every Nth scan with a FailingScanner (0
	// disables): the backend "dies" mid-stream and the planner sees a
	// short table.
	FailEvery int
	// FailAfter is the row count delivered before the failure (default
	// 128).
	FailAfter int
}

// normalize fills defaults.
func (o InjectorOptions) normalize() InjectorOptions {
	if o.SlowDelay <= 0 {
		o.SlowDelay = time.Millisecond
	}
	if o.StallAfter <= 0 {
		o.StallAfter = 32
	}
	if o.StallRelease <= 0 {
		o.StallRelease = time.Second
	}
	if o.FailAfter <= 0 {
		o.FailAfter = 128
	}
	return o
}

// Enabled reports whether any fault is configured.
func (o InjectorOptions) Enabled() bool {
	return o.SlowEvery > 0 || o.StallEvery > 0 || o.FailEvery > 0
}

// Injector counts scanner constructions and periodically injects faults.
// It is safe for concurrent use: a live server builds scanners from many
// request goroutines at once.
type Injector struct {
	opts   InjectorOptions
	scans  atomic.Int64
	slowed atomic.Int64
	staled atomic.Int64
	failed atomic.Int64
}

// NewInjector returns an injector for opts.
func NewInjector(opts InjectorOptions) *Injector {
	return &Injector{opts: opts.normalize()}
}

// Scanner is a core.Config.Scanner-compatible factory: the default
// pseudo-random full-table scan, periodically wrapped with the configured
// faults.
func (in *Injector) Scanner(t *table.Table, rng *rand.Rand) table.Scanner {
	var s table.Scanner = table.NewRandomScanner(t, rng)
	n := in.scans.Add(1)
	if e := int64(in.opts.FailEvery); e > 0 && n%e == 0 {
		in.failed.Add(1)
		s = &FailingScanner{Inner: s, Limit: in.opts.FailAfter}
	}
	if e := int64(in.opts.StallEvery); e > 0 && n%e == 0 {
		in.staled.Add(1)
		st := NewStallingScanner(s, in.opts.StallAfter)
		// A synchronous consumer blocks inside Next until the release —
		// a storage hang that heals — then sees exhaustion and degrades.
		time.AfterFunc(in.opts.StallRelease, st.Release)
		s = st
	}
	if e := int64(in.opts.SlowEvery); e > 0 && n%e == 0 {
		in.slowed.Add(1)
		s = &SlowScanner{Inner: s, Delay: in.opts.SlowDelay}
	}
	return s
}

// InjectorStats counts constructed and faulted scans.
type InjectorStats struct {
	Scans   int64 `json:"scans"`
	Slowed  int64 `json:"slowed"`
	Stalled int64 `json:"stalled"`
	Failed  int64 `json:"failed"`
}

// Stats reports how many scans were built and how many got each fault.
func (in *Injector) Stats() InjectorStats {
	return InjectorStats{
		Scans:   in.scans.Load(),
		Slowed:  in.slowed.Load(),
		Stalled: in.staled.Load(),
		Failed:  in.failed.Load(),
	}
}
