package olap

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/table"
)

// windowFixtureStream builds a live copy of the fixture table and appends
// nBatches timed batches of deterministic pseudo-random rows, one minute
// apart. It returns the live table.
func windowFixtureStream(t *testing.T, f *fixture, seed int64, nBatches, rowsPerBatch int) *table.Table {
	t.Helper()
	t0 := time.Date(2026, 2, 1, 9, 0, 0, 0, time.UTC)
	live, err := f.dataset.Table().AppendableCopy(t0)
	if err != nil {
		t.Fatal(err)
	}
	cities := []string{"Boston", "New York City", "Chicago", "Detroit", "Los Angeles"}
	months := []string{"January", "February", "July", "August"}
	rng := rand.New(rand.NewSource(seed))
	for bi := 0; bi < nBatches; bi++ {
		var cs, ms []string
		var vals []float64
		for r := 0; r < rowsPerBatch; r++ {
			cs = append(cs, cities[rng.Intn(len(cities))])
			ms = append(ms, months[rng.Intn(len(months))])
			vals = append(vals, rng.Float64())
		}
		b := table.NewRowBatch().Strings("city", cs...).Strings("month", ms...).Float64s("cancelled", vals...)
		if _, err := live.AppendBatch(b, t0.Add(time.Duration(bi+1)*time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	return live
}

// staticSuffix materializes rows [lo, n) of snap as a plain frozen table —
// the batch-recompute reference a windowed query must match bit for bit.
func staticSuffix(t *testing.T, snap *table.Table, lo int) *table.Table {
	t.Helper()
	city := table.NewStringColumn("city")
	month := table.NewStringColumn("month")
	cancelled := table.NewFloat64Column("cancelled")
	cityCol, err := snap.StringColumn("city")
	if err != nil {
		t.Fatal(err)
	}
	monthCol, err := snap.StringColumn("month")
	if err != nil {
		t.Fatal(err)
	}
	measure, err := snap.Float64Column("cancelled")
	if err != nil {
		t.Fatal(err)
	}
	for row := lo; row < snap.NumRows(); row++ {
		city.Append(cityCol.StringAt(row))
		month.Append(monthCol.StringAt(row))
		cancelled.Append(measure.Float(row))
	}
	return table.MustNew("flights", city, month, cancelled)
}

// TestWindowedQueryMatchesStaticRecompute is the streaming-correctness
// property test: for every window width, evaluating a time-windowed query
// over a frozen stream snapshot must be bit-identical — exact counts and
// exact float sums — to the unwindowed batch recompute over a static
// table holding exactly the window's rows.
func TestWindowedQueryMatchesStaticRecompute(t *testing.T) {
	f := newFixture(t)
	for seed := int64(1); seed <= 3; seed++ {
		live := windowFixtureStream(t, f, seed, 6, 97)
		snap := live.Snapshot()
		streamDS, err := NewDataset(snap, f.airport, f.date)
		if err != nil {
			t.Fatal(err)
		}
		windows := []time.Duration{
			30 * time.Second, // newest batch only
			90 * time.Second,
			3*time.Minute + 30*time.Second,
			5 * time.Minute, // all batches, base rows excluded
			time.Hour,       // everything
			0,               // unwindowed
		}
		for _, fct := range []AggFunc{Avg, Count, Sum} {
			for _, w := range windows {
				q := f.regionSeasonQuery()
				q.Fct = fct
				if fct == Count {
					q.Col = ""
				}
				q.Window = Window{Last: w}
				space, err := NewSpace(streamDS, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := EvaluateSpaceSequential(space)
				if err != nil {
					t.Fatal(err)
				}

				lo, hi := space.RowBounds()
				if hi != snap.NumRows() {
					t.Fatalf("row bounds hi = %d, want %d", hi, snap.NumRows())
				}
				refDS, err := NewDataset(staticSuffix(t, snap, lo), f.airport, f.date)
				if err != nil {
					t.Fatal(err)
				}
				refQ := q
				refQ.Window = Window{}
				refSpace, err := NewSpace(refDS, refQ)
				if err != nil {
					t.Fatal(err)
				}
				want, err := EvaluateSpaceSequential(refSpace)
				if err != nil {
					t.Fatal(err)
				}

				if space.Size() != refSpace.Size() {
					t.Fatalf("space sizes diverge: %d vs %d", space.Size(), refSpace.Size())
				}
				for idx := 0; idx < space.Size(); idx++ {
					if got.Count(idx) != want.Count(idx) {
						t.Fatalf("seed %d fct %v window %v agg %d: count %d, want %d",
							seed, fct, w, idx, got.Count(idx), want.Count(idx))
					}
					if got.Sum(idx) != want.Sum(idx) {
						t.Fatalf("seed %d fct %v window %v agg %d: sum %v, want %v (not bit-identical)",
							seed, fct, w, idx, got.Sum(idx), want.Sum(idx))
					}
				}

				// The batch classifiers must agree with the row-at-a-time
				// path on window bounds (ClassifyRows/ClassifyRange drive
				// sampling and the parallel scan).
				rows := make([]int, snap.NumRows())
				for i := range rows {
					rows[i] = i
				}
				batch := make([]int32, len(rows))
				space.ClassifyRows(rows, batch)
				ranged := make([]int32, len(rows))
				space.ClassifyRange(0, snap.NumRows(), ranged)
				for i := range rows {
					idx, ok := space.ClassifyRow(i)
					wantIdx := int32(-1)
					if ok {
						wantIdx = int32(idx)
					}
					if batch[i] != wantIdx || ranged[i] != wantIdx {
						t.Fatalf("window %v row %d: ClassifyRow=%d ClassifyRows=%d ClassifyRange=%d",
							w, i, wantIdx, batch[i], ranged[i])
					}
				}
			}
		}
	}
}
