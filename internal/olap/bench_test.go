package olap

import (
	"runtime"
	"testing"
)

const benchRows = 8 * evalChunkRows

// BenchmarkEvaluateSpaceSequential is the single-threaded reference scan.
func BenchmarkEvaluateSpaceSequential(b *testing.B) {
	f := bigFixture(b, benchRows)
	space, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateSpaceSequential(space); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(benchRows))
}

// BenchmarkEvaluateSpaceWorkers runs the chunked parallel scan with as many
// workers as the -cpu value grants; rows/s (SetBytes counts rows) rising
// with -cpu is the scaling evidence for the slab-grid layout.
func BenchmarkEvaluateSpaceWorkers(b *testing.B) {
	f := bigFixture(b, benchRows)
	space, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EvaluateSpaceWorkers(space, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(benchRows))
}
