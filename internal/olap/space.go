package olap

import (
	"fmt"
	"strings"

	"repro/internal/dimension"
)

// Space is the enumerated aggregate space of a query: the cross product of
// members at the group-by levels, restricted to the query's filter scope.
// Aggregates are addressed by a dense index in [0, Size()); coordinates are
// one member per group-by dimension.
type Space struct {
	query    Query
	dataset  *Dataset
	bindings []*dimension.Binding
	levels   []int
	// members[d] lists the admissible members of group-by dimension d.
	members [][]*dimension.Member
	// memberPos[d] maps a member to its position within members[d].
	memberPos []map[*dimension.Member]int
	// extraFilters are filters on dimensions that are not grouped; rows
	// must additionally match these to be in scope.
	extraFilters []filterCheck
	size         int
	strides      []int
}

type filterCheck struct {
	binding *dimension.Binding
	member  *dimension.Member
}

// NewSpace enumerates the aggregate space for q over d.
func NewSpace(d *Dataset, q Query) (*Space, error) {
	if err := d.ValidateQuery(q); err != nil {
		return nil, err
	}
	s := &Space{query: q, dataset: d}
	for _, g := range q.GroupBy {
		b := d.Binding(g.Hierarchy)
		scope := g.Hierarchy.Root()
		if f := q.FilterOn(g.Hierarchy); f != nil {
			scope = f
		}
		if scope.Level > g.Level {
			return nil, fmt.Errorf(
				"olap: filter on %q fixes level %d below group-by level %d",
				g.Hierarchy.Name, scope.Level, g.Level)
		}
		ms := scope.DescendantsAt(g.Level)
		if len(ms) == 0 {
			return nil, fmt.Errorf("olap: dimension %q has no members at level %d in scope",
				g.Hierarchy.Name, g.Level)
		}
		pos := make(map[*dimension.Member]int, len(ms))
		for i, m := range ms {
			pos[m] = i
		}
		s.bindings = append(s.bindings, b)
		s.levels = append(s.levels, g.Level)
		s.members = append(s.members, ms)
		s.memberPos = append(s.memberPos, pos)
	}
	for _, f := range q.Filters {
		grouped := false
		for _, g := range q.GroupBy {
			if g.Hierarchy == f.Hierarchy() {
				grouped = true
				break
			}
		}
		if !grouped {
			s.extraFilters = append(s.extraFilters, filterCheck{d.Binding(f.Hierarchy()), f})
		}
	}
	s.size = 1
	s.strides = make([]int, len(s.members))
	for d := len(s.members) - 1; d >= 0; d-- {
		s.strides[d] = s.size
		s.size *= len(s.members[d])
	}
	return s, nil
}

// Query returns the query that spans this space.
func (s *Space) Query() Query { return s.query }

// Dataset returns the dataset the space is defined over.
func (s *Space) Dataset() *Dataset { return s.dataset }

// Size returns the number of aggregates in the query result.
func (s *Space) Size() int { return s.size }

// NumDims returns the number of group-by dimensions.
func (s *Space) NumDims() int { return len(s.members) }

// Members returns the admissible members of group-by dimension d.
func (s *Space) Members(d int) []*dimension.Member { return s.members[d] }

// Coordinates returns the member per dimension for aggregate index idx.
func (s *Space) Coordinates(idx int) []*dimension.Member {
	coords := make([]*dimension.Member, len(s.members))
	for d := range s.members {
		coords[d] = s.members[d][(idx/s.strides[d])%len(s.members[d])]
	}
	return coords
}

// IndexOf returns the aggregate index for the given coordinates, or -1 if
// any coordinate is not an admissible member of its dimension.
func (s *Space) IndexOf(coords []*dimension.Member) int {
	if len(coords) != len(s.members) {
		return -1
	}
	idx := 0
	for d, m := range coords {
		p, ok := s.memberPos[d][m]
		if !ok {
			return -1
		}
		idx += p * s.strides[d]
	}
	return idx
}

// ClassifyRow maps a table row to its aggregate index, or returns ok=false
// when the row is outside the query scope.
func (s *Space) ClassifyRow(row int) (idx int, ok bool) {
	for _, f := range s.extraFilters {
		if !f.binding.RowMatches(row, f.member) {
			return 0, false
		}
	}
	for d, b := range s.bindings {
		m := b.MemberOfRow(row, s.levels[d])
		p, within := s.memberPos[d][m]
		if !within {
			return 0, false
		}
		idx += p * s.strides[d]
	}
	return idx, true
}

// InScope reports whether aggregate idx matches all the given predicate
// members (each predicate is a member of one of the group-by hierarchies;
// the aggregate's coordinate in that hierarchy must be a descendant).
// Predicates on hierarchies that are not grouped match everything (the
// query filter already restricted them).
func (s *Space) InScope(idx int, preds []*dimension.Member) bool {
	for _, p := range preds {
		matched := false
		found := false
		for d := range s.members {
			if s.bindings[d].Hierarchy() == p.Hierarchy() {
				found = true
				coord := s.members[d][(idx/s.strides[d])%len(s.members[d])]
				matched = coord.IsDescendantOf(p)
				break
			}
		}
		if found && !matched {
			return false
		}
	}
	return true
}

// ScopeSize returns the number of aggregates matching all predicates:
// per group-by dimension, the count of admissible members lying in the
// subtree of every predicate on that hierarchy (multiple predicates on
// one hierarchy intersect — distinct siblings have an empty scope).
// Computed in O(dims x members) without enumerating the aggregate space.
func (s *Space) ScopeSize(preds []*dimension.Member) int {
	n := 1
	for d := range s.members {
		h := s.bindings[d].Hierarchy()
		var dimPreds []*dimension.Member
		for _, p := range preds {
			if p.Hierarchy() == h {
				dimPreds = append(dimPreds, p)
			}
		}
		if len(dimPreds) == 0 {
			n *= len(s.members[d])
			continue
		}
		count := 0
		for _, m := range s.members[d] {
			all := true
			for _, p := range dimPreds {
				if !m.IsDescendantOf(p) {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		n *= count
	}
	return n
}

// AggregateName renders the coordinates of aggregate idx for diagnostics,
// e.g. "the North East / Winter".
func (s *Space) AggregateName(idx int) string {
	coords := s.Coordinates(idx)
	parts := make([]string, len(coords))
	for i, m := range coords {
		parts[i] = m.Name
	}
	return strings.Join(parts, " / ")
}
