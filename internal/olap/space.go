package olap

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/dimension"
	"repro/internal/table"
)

// Space is the enumerated aggregate space of a query: the cross product of
// members at the group-by levels, restricted to the query's filter scope.
// Aggregates are addressed by a dense index in [0, Size()); coordinates are
// one member per group-by dimension.
type Space struct {
	query    Query
	dataset  *Dataset
	bindings []*dimension.Binding
	levels   []int
	// members[d] lists the admissible members of group-by dimension d.
	members [][]*dimension.Member
	// memberPos[d] maps a member to its position within members[d].
	memberPos []map[*dimension.Member]int
	// extraFilters are filters on dimensions that are not grouped; rows
	// must additionally match these to be in scope.
	extraFilters []filterCheck
	size         int
	strides      []int
	// denseDims and denseFilters are the compiled classification tables:
	// per-dimension code-indexed arrays that turn ClassifyRow into a
	// handful of array loads with no map lookups or member pointers.
	denseDims    []denseDim
	denseFilters []denseFilter
	// scopeCache memoizes refinement-scope bitsets (scopeKey -> *ScopeSet)
	// so InScope/ScopeSize are word-indexed loads after the first request
	// for a scope. A sync.Map because the parallel planner resolves scopes
	// from many sampling workers at once.
	scopeCache sync.Map
	// rowLo/rowHi bound the rows in scope when the query carries a
	// trailing time window; rows outside [rowLo, rowHi) classify as out of
	// scope in every classification path, so exact evaluation and sampling
	// both window automatically. windowed gates the bounds checks off the
	// unwindowed hot path.
	rowLo, rowHi int
	windowed     bool
}

type filterCheck struct {
	binding *dimension.Binding
	member  *dimension.Member
}

// denseDim classifies one group-by dimension by dictionary code.
type denseDim struct {
	col table.StringAccessor
	// codes is the raw code slice when the accessor is a stored column
	// (nil for join views, which fall back to one Code call per row).
	codes []int32
	// posStride[code] is the member position times the dimension stride,
	// ready to add into the aggregate index, or -1 when the code's member
	// is outside the query scope.
	posStride []int32
}

// denseFilter answers "does this code match the filter member" per code.
type denseFilter struct {
	col   table.StringAccessor
	codes []int32
	ok    []bool
}

// rawCodes returns the backing code slice of an accessor when it has one.
func rawCodes(col table.StringAccessor) []int32 {
	if sc, ok := col.(interface{ Codes() []int32 }); ok {
		return sc.Codes()
	}
	return nil
}

// NewSpace enumerates the aggregate space for q over d.
func NewSpace(d *Dataset, q Query) (*Space, error) {
	if err := d.ValidateQuery(q); err != nil {
		return nil, err
	}
	s := &Space{query: q, dataset: d}
	for _, g := range q.GroupBy {
		b := d.Binding(g.Hierarchy)
		scope := g.Hierarchy.Root()
		if f := q.FilterOn(g.Hierarchy); f != nil {
			scope = f
		}
		if scope.Level > g.Level {
			return nil, fmt.Errorf(
				"olap: filter on %q fixes level %d below group-by level %d",
				g.Hierarchy.Name, scope.Level, g.Level)
		}
		ms := scope.DescendantsAt(g.Level)
		if len(ms) == 0 {
			return nil, fmt.Errorf("olap: dimension %q has no members at level %d in scope",
				g.Hierarchy.Name, g.Level)
		}
		pos := make(map[*dimension.Member]int, len(ms))
		for i, m := range ms {
			pos[m] = i
		}
		s.bindings = append(s.bindings, b)
		s.levels = append(s.levels, g.Level)
		s.members = append(s.members, ms)
		s.memberPos = append(s.memberPos, pos)
	}
	for _, f := range q.Filters {
		grouped := false
		for _, g := range q.GroupBy {
			if g.Hierarchy == f.Hierarchy() {
				grouped = true
				break
			}
		}
		if !grouped {
			s.extraFilters = append(s.extraFilters, filterCheck{d.Binding(f.Hierarchy()), f})
		}
	}
	s.size = 1
	s.strides = make([]int, len(s.members))
	for d := len(s.members) - 1; d >= 0; d-- {
		s.strides[d] = s.size
		s.size *= len(s.members[d])
	}
	s.rowLo, s.rowHi = 0, d.tab.NumRows()
	if !q.Window.IsZero() {
		s.rowLo = d.tab.RowsInLast(q.Window.Last)
		s.windowed = s.rowLo > 0
	}
	s.compileDense()
	return s, nil
}

// compileDense precomputes the per-code classification tables: for each
// group-by dimension, a code-indexed position-times-stride value (-1 for
// codes outside the scope); for each extra filter, a code-indexed match
// bitset. Table dictionaries are fixed once a dataset is bound, so one
// O(dict) pass here removes every map lookup from the per-row hot path.
func (s *Space) compileDense() {
	s.denseDims = make([]denseDim, len(s.bindings))
	for d, b := range s.bindings {
		col := b.Accessor()
		dd := denseDim{
			col:       col,
			codes:     rawCodes(col),
			posStride: make([]int32, b.DictSize()),
		}
		for code := range dd.posStride {
			m := b.MemberOfCode(int32(code), s.levels[d])
			if p, within := s.memberPos[d][m]; within {
				dd.posStride[code] = int32(p * s.strides[d])
			} else {
				dd.posStride[code] = -1
			}
		}
		s.denseDims[d] = dd
	}
	s.denseFilters = make([]denseFilter, len(s.extraFilters))
	for i, f := range s.extraFilters {
		col := f.binding.Accessor()
		df := denseFilter{
			col:   col,
			codes: rawCodes(col),
			ok:    make([]bool, f.binding.DictSize()),
		}
		for code := range df.ok {
			df.ok[code] = f.binding.MemberOfCode(int32(code), f.member.Level) == f.member
		}
		s.denseFilters[i] = df
	}
}

// Query returns the query that spans this space.
func (s *Space) Query() Query { return s.query }

// Dataset returns the dataset the space is defined over.
func (s *Space) Dataset() *Dataset { return s.dataset }

// Size returns the number of aggregates in the query result.
func (s *Space) Size() int { return s.size }

// NumDims returns the number of group-by dimensions.
func (s *Space) NumDims() int { return len(s.members) }

// Members returns the admissible members of group-by dimension d.
func (s *Space) Members(d int) []*dimension.Member { return s.members[d] }

// Coordinates returns the member per dimension for aggregate index idx.
func (s *Space) Coordinates(idx int) []*dimension.Member {
	coords := make([]*dimension.Member, len(s.members))
	for d := range s.members {
		coords[d] = s.members[d][(idx/s.strides[d])%len(s.members[d])]
	}
	return coords
}

// IndexOf returns the aggregate index for the given coordinates, or -1 if
// any coordinate is not an admissible member of its dimension.
func (s *Space) IndexOf(coords []*dimension.Member) int {
	if len(coords) != len(s.members) {
		return -1
	}
	idx := 0
	for d, m := range coords {
		p, ok := s.memberPos[d][m]
		if !ok {
			return -1
		}
		idx += p * s.strides[d]
	}
	return idx
}

// RowBounds returns the half-open row range [lo, hi) the space's query
// covers: the whole table for unwindowed queries, the trailing-window rows
// otherwise.
func (s *Space) RowBounds() (lo, hi int) { return s.rowLo, s.rowHi }

// ClassifyRow maps a table row to its aggregate index, or returns ok=false
// when the row is outside the query scope. The compiled per-code tables
// make this a few array loads per dimension.
func (s *Space) ClassifyRow(row int) (idx int, ok bool) {
	if s.windowed && (row < s.rowLo || row >= s.rowHi) {
		return 0, false
	}
	for i := range s.denseFilters {
		f := &s.denseFilters[i]
		var code int32
		if f.codes != nil {
			code = f.codes[row]
		} else {
			code = f.col.Code(row)
		}
		if !f.ok[code] {
			return 0, false
		}
	}
	for d := range s.denseDims {
		dd := &s.denseDims[d]
		var code int32
		if dd.codes != nil {
			code = dd.codes[row]
		} else {
			code = dd.col.Code(row)
		}
		v := dd.posStride[code]
		if v < 0 {
			return 0, false
		}
		idx += int(v)
	}
	return idx, true
}

// ClassifyRows classifies a batch of row indices into out (len(out) must be
// at least len(rows)): out[i] is the aggregate index of rows[i], or -1 when
// that row is outside the query scope. Processing is dimension-major so
// each per-code table stays hot in cache across the whole batch.
func (s *Space) ClassifyRows(rows []int, out []int32) {
	if s.windowed {
		for i, r := range rows {
			if r < s.rowLo || r >= s.rowHi {
				out[i] = -1
			} else {
				out[i] = 0
			}
		}
	} else {
		for i := range rows {
			out[i] = 0
		}
	}
	for fi := range s.denseFilters {
		f := &s.denseFilters[fi]
		if f.codes != nil {
			for i, r := range rows {
				if out[i] >= 0 && !f.ok[f.codes[r]] {
					out[i] = -1
				}
			}
		} else {
			for i, r := range rows {
				if out[i] >= 0 && !f.ok[f.col.Code(r)] {
					out[i] = -1
				}
			}
		}
	}
	for d := range s.denseDims {
		dd := &s.denseDims[d]
		if dd.codes != nil {
			for i, r := range rows {
				if out[i] < 0 {
					continue
				}
				if v := dd.posStride[dd.codes[r]]; v < 0 {
					out[i] = -1
				} else {
					out[i] += v
				}
			}
		} else {
			for i, r := range rows {
				if out[i] < 0 {
					continue
				}
				if v := dd.posStride[dd.col.Code(r)]; v < 0 {
					out[i] = -1
				} else {
					out[i] += v
				}
			}
		}
	}
}

// ClassifyRange classifies the contiguous rows [lo, hi) into out (length at
// least hi-lo), writing the aggregate index or -1 per row. For stored
// columns the inner loop slices the raw code array directly, which is what
// the multicore exact scan runs per chunk.
func (s *Space) ClassifyRange(lo, hi int, out []int32) {
	n := hi - lo
	if s.windowed {
		for i := 0; i < n; i++ {
			if r := lo + i; r < s.rowLo || r >= s.rowHi {
				out[i] = -1
			} else {
				out[i] = 0
			}
		}
	} else {
		for i := 0; i < n; i++ {
			out[i] = 0
		}
	}
	for fi := range s.denseFilters {
		f := &s.denseFilters[fi]
		if f.codes != nil {
			codes := f.codes[lo:hi]
			for i, code := range codes {
				if out[i] >= 0 && !f.ok[code] {
					out[i] = -1
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if out[i] >= 0 && !f.ok[f.col.Code(lo+i)] {
					out[i] = -1
				}
			}
		}
	}
	for d := range s.denseDims {
		dd := &s.denseDims[d]
		if dd.codes != nil {
			codes := dd.codes[lo:hi]
			for i, code := range codes {
				if out[i] < 0 {
					continue
				}
				if v := dd.posStride[code]; v < 0 {
					out[i] = -1
				} else {
					out[i] += v
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if out[i] < 0 {
					continue
				}
				if v := dd.posStride[dd.col.Code(lo+i)]; v < 0 {
					out[i] = -1
				} else {
					out[i] += v
				}
			}
		}
	}
}

// InScope reports whether aggregate idx matches all the given predicate
// members (each predicate is a member of one of the group-by hierarchies;
// the aggregate's coordinate in that hierarchy must be a descendant).
// Predicates on hierarchies that are not grouped match everything (the
// query filter already restricted them). The check is one bitset load
// against the cached ScopeSet of preds; inScopeRef is the member-walking
// reference implementation the bitsets are verified against.
func (s *Space) InScope(idx int, preds []*dimension.Member) bool {
	if len(preds) == 0 {
		return true
	}
	return s.ScopeSet(preds).Contains(idx)
}

// inScopeRef is the pre-bitset reference implementation of InScope.
func (s *Space) inScopeRef(idx int, preds []*dimension.Member) bool {
	for _, p := range preds {
		matched := false
		found := false
		for d := range s.members {
			if s.bindings[d].Hierarchy() == p.Hierarchy() {
				found = true
				coord := s.members[d][(idx/s.strides[d])%len(s.members[d])]
				matched = coord.IsDescendantOf(p)
				break
			}
		}
		if found && !matched {
			return false
		}
	}
	return true
}

// ScopeSize returns the number of aggregates matching all predicates
// (multiple predicates on one hierarchy intersect — distinct siblings
// have an empty scope). It is the cached popcount of the scope's bitset;
// scopeSizeRef is the counting reference implementation.
func (s *Space) ScopeSize(preds []*dimension.Member) int {
	if len(preds) == 0 {
		return s.size
	}
	return s.ScopeSet(preds).Size()
}

// scopeSizeRef is the pre-bitset reference implementation of ScopeSize:
// per group-by dimension, the count of admissible members lying in the
// subtree of every predicate on that hierarchy, multiplied across
// dimensions without enumerating the aggregate space.
func (s *Space) scopeSizeRef(preds []*dimension.Member) int {
	n := 1
	for d := range s.members {
		h := s.bindings[d].Hierarchy()
		var dimPreds []*dimension.Member
		for _, p := range preds {
			if p.Hierarchy() == h {
				dimPreds = append(dimPreds, p)
			}
		}
		if len(dimPreds) == 0 {
			n *= len(s.members[d])
			continue
		}
		count := 0
		for _, m := range s.members[d] {
			all := true
			for _, p := range dimPreds {
				if !m.IsDescendantOf(p) {
					all = false
					break
				}
			}
			if all {
				count++
			}
		}
		n *= count
	}
	return n
}

// AggregateName renders the coordinates of aggregate idx for diagnostics,
// e.g. "the North East / Winter".
func (s *Space) AggregateName(idx int) string {
	coords := s.Coordinates(idx)
	parts := make([]string, len(coords))
	for i, m := range coords {
		parts[i] = m.Name
	}
	return strings.Join(parts, " / ")
}
