package olap

import (
	"math/bits"

	"repro/internal/dimension"
)

// ScopeSet is the precomputed membership bitset of a predicate set over a
// space's aggregates. It turns the planner's hottest operations — "is
// aggregate a in this refinement's scope" and "how many aggregates does
// this scope cover" — into a word-indexed load and a cached popcount,
// replacing per-call member comparisons and hierarchy walks. ScopeSets are
// immutable once built and are shared freely across goroutines.
type ScopeSet struct {
	words []uint64
	size  int
}

// Contains reports whether aggregate idx is in scope.
func (ss *ScopeSet) Contains(idx int) bool {
	return ss.words[uint(idx)>>6]&(1<<(uint(idx)&63)) != 0
}

// Size returns the number of aggregates in scope (the popcount of the
// bitset, i.e. the m of the paper's refinement semantics).
func (ss *ScopeSet) Size() int { return ss.size }

// Words exposes the backing bitset for vectorized sweeps (one uint64 per
// 64 aggregates, LSB first). Callers must not mutate it.
func (ss *ScopeSet) Words() []uint64 { return ss.words }

// scopeKeyMax bounds the predicate count for which scope sets are cached;
// longer predicate lists (never produced by the generator, whose menu caps
// at MaxPredsPerRefinement) are built on demand without caching.
const scopeKeyMax = 4

// scopeKey is the comparable cache key of a predicate list. Predicate
// order is part of the key: the generator emits each scope with a stable
// ordering, so at worst a reordered alias costs one duplicate (identical)
// bitset.
type scopeKey struct {
	n     int
	preds [scopeKeyMax]*dimension.Member
}

// ScopeSet returns the (cached) membership bitset of preds over this
// space. The first request for a scope builds the bitset in one pass over
// the per-dimension member lists; all later requests — and every
// InScope/ScopeSize call — are lookups.
func (s *Space) ScopeSet(preds []*dimension.Member) *ScopeSet {
	if len(preds) > scopeKeyMax {
		return s.buildScopeSet(preds)
	}
	key := scopeKey{n: len(preds)}
	copy(key.preds[:], preds)
	if v, ok := s.scopeCache.Load(key); ok {
		return v.(*ScopeSet)
	}
	ss := s.buildScopeSet(preds)
	v, _ := s.scopeCache.LoadOrStore(key, ss)
	return v.(*ScopeSet)
}

// buildScopeSet materializes the bitset for preds. The scope is
// decomposable per group-by dimension: an aggregate is in scope iff its
// coordinate in each dimension is a descendant of every predicate on that
// dimension's hierarchy (predicates on ungrouped hierarchies match
// everything — the query filter already restricted them). Like InScope,
// each predicate binds to the first group-by dimension of its hierarchy.
func (s *Space) buildScopeSet(preds []*dimension.Member) *ScopeSet {
	ss := &ScopeSet{words: make([]uint64, (s.size+63)/64)}
	allowed := make([][]bool, len(s.members))
	constrained := false
	for _, p := range preds {
		for d := range s.members {
			if s.bindings[d].Hierarchy() != p.Hierarchy() {
				continue
			}
			if allowed[d] == nil {
				allowed[d] = make([]bool, len(s.members[d]))
				for i := range allowed[d] {
					allowed[d][i] = true
				}
				constrained = true
			}
			for i, m := range s.members[d] {
				if allowed[d][i] && !m.IsDescendantOf(p) {
					allowed[d][i] = false
				}
			}
			break
		}
	}
	if !constrained {
		for idx := 0; idx < s.size; idx++ {
			ss.words[uint(idx)>>6] |= 1 << (uint(idx) & 63)
		}
		ss.size = s.size
		return ss
	}
	for idx := 0; idx < s.size; idx++ {
		in := true
		for d, dimAllowed := range allowed {
			if dimAllowed == nil {
				continue
			}
			if !dimAllowed[(idx/s.strides[d])%len(s.members[d])] {
				in = false
				break
			}
		}
		if in {
			ss.words[uint(idx)>>6] |= 1 << (uint(idx) & 63)
		}
	}
	for _, w := range ss.words {
		ss.size += bits.OnesCount64(w)
	}
	return ss
}
