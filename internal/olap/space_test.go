package olap

import (
	"testing"

	"repro/internal/dimension"
)

func TestSpaceEnumeration(t *testing.T) {
	f := newFixture(t)
	s, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	// 3 regions x 2 seasons.
	if s.Size() != 6 {
		t.Fatalf("size = %d, want 6", s.Size())
	}
	if s.NumDims() != 2 {
		t.Fatalf("dims = %d, want 2", s.NumDims())
	}
	if len(s.Members(0)) != 3 || len(s.Members(1)) != 2 {
		t.Error("member lists wrong")
	}
	// Index <-> coordinates round trip.
	seen := make(map[string]bool)
	for i := 0; i < s.Size(); i++ {
		coords := s.Coordinates(i)
		if got := s.IndexOf(coords); got != i {
			t.Errorf("IndexOf(Coordinates(%d)) = %d", i, got)
		}
		name := s.AggregateName(i)
		if seen[name] {
			t.Errorf("duplicate aggregate %q", name)
		}
		seen[name] = true
	}
}

func TestSpaceIndexOfErrors(t *testing.T) {
	f := newFixture(t)
	s, _ := NewSpace(f.dataset, f.regionSeasonQuery())
	if s.IndexOf(nil) != -1 {
		t.Error("wrong arity should be -1")
	}
	// A member of the wrong level is not admissible.
	boston := f.airport.Leaf("Boston")
	winter := f.date.FindMember("Winter")
	if s.IndexOf([]*dimension.Member{boston, winter}) != -1 {
		t.Error("city-level member in region-level space should be -1")
	}
}

func TestSpaceWithFilterOnGroupedDim(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	ne := f.airport.FindMember("the North East")
	q.Filters = []*dimension.Member{ne}
	// Break down NE by city and season: 2 cities x 2 seasons.
	q.GroupBy[0].Level = 2
	s, err := NewSpace(f.dataset, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if s.Size() != 4 {
		t.Fatalf("size = %d, want 4", s.Size())
	}
	for _, m := range s.Members(0) {
		if !m.IsDescendantOf(ne) {
			t.Errorf("member %v outside filter scope", m)
		}
	}
}

func TestSpaceFilterBelowGroupLevel(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	q.Filters = []*dimension.Member{f.airport.Leaf("Boston")}
	// Group level 1 < filter level 2: rejected.
	if _, err := NewSpace(f.dataset, q); err == nil {
		t.Error("filter finer than group level should fail")
	}
}

func TestClassifyRow(t *testing.T) {
	f := newFixture(t)
	s, _ := NewSpace(f.dataset, f.regionSeasonQuery())
	// Row 0 is Boston/January -> NE/Winter.
	idx, ok := s.ClassifyRow(0)
	if !ok {
		t.Fatal("row 0 should be in scope")
	}
	coords := s.Coordinates(idx)
	if coords[0].Name != "the North East" || coords[1].Name != "Winter" {
		t.Errorf("row 0 classified as %v", s.AggregateName(idx))
	}
}

func TestClassifyRowWithExtraFilter(t *testing.T) {
	f := newFixture(t)
	// Filter on date=Winter, group only by region.
	q := Query{
		Fct: Avg, Col: "cancelled",
		Filters: []*dimension.Member{f.date.FindMember("Winter")},
		GroupBy: []GroupBy{{Hierarchy: f.airport, Level: 1}},
	}
	s, err := NewSpace(f.dataset, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	if s.Size() != 3 {
		t.Fatalf("size = %d, want 3", s.Size())
	}
	// Row 3 is Boston/July: out of scope.
	if _, ok := s.ClassifyRow(3); ok {
		t.Error("summer row should be filtered out")
	}
	// Row 0 is Boston/January: in scope.
	if _, ok := s.ClassifyRow(0); !ok {
		t.Error("winter row should be in scope")
	}
}

func TestInScopeAndScopeSize(t *testing.T) {
	f := newFixture(t)
	s, _ := NewSpace(f.dataset, f.regionSeasonQuery())
	ne := f.airport.FindMember("the North East")
	winter := f.date.FindMember("Winter")

	if got := s.ScopeSize(nil); got != 6 {
		t.Errorf("empty predicate scope = %d, want 6", got)
	}
	if got := s.ScopeSize([]*dimension.Member{ne}); got != 2 {
		t.Errorf("NE scope = %d, want 2 (2 seasons)", got)
	}
	if got := s.ScopeSize([]*dimension.Member{ne, winter}); got != 1 {
		t.Errorf("NE+Winter scope = %d, want 1", got)
	}
	// Root predicate matches all aggregates in that dimension.
	if got := s.ScopeSize([]*dimension.Member{f.airport.Root()}); got != 6 {
		t.Errorf("root scope = %d, want 6", got)
	}

	// Verify InScope against brute force counting.
	count := 0
	for i := 0; i < s.Size(); i++ {
		if s.InScope(i, []*dimension.Member{ne}) {
			count++
		}
	}
	if count != 2 {
		t.Errorf("InScope count = %d, want 2", count)
	}
}

func TestScopeSizeIntersectsSameHierarchyPredicates(t *testing.T) {
	f := newFixture(t)
	s, _ := NewSpace(f.dataset, f.regionSeasonQuery())
	ne := f.airport.FindMember("the North East")
	mw := f.airport.FindMember("the Midwest")
	// Distinct siblings intersect to nothing.
	if got := s.ScopeSize([]*dimension.Member{ne, mw}); got != 0 {
		t.Errorf("NE ∩ MW scope = %d, want 0", got)
	}
	// Nested predicates intersect to the finer one. Group by city so the
	// leaf predicate is admissible.
	q := f.regionSeasonQuery()
	q.GroupBy[0].Level = 2
	s2, err := NewSpace(f.dataset, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	boston := f.airport.Leaf("Boston")
	if got := s2.ScopeSize([]*dimension.Member{ne, boston}); got != s2.ScopeSize([]*dimension.Member{boston}) {
		t.Errorf("NE ∩ Boston = %d, want Boston's own scope %d",
			got, s2.ScopeSize([]*dimension.Member{boston}))
	}
}

func TestScopeSizeMatchesInScope(t *testing.T) {
	f := newFixture(t)
	s, _ := NewSpace(f.dataset, f.regionSeasonQuery())
	preds := [][]*dimension.Member{
		nil,
		{f.airport.FindMember("the Midwest")},
		{f.date.FindMember("Summer")},
		{f.airport.FindMember("the West"), f.date.FindMember("Winter")},
	}
	for _, ps := range preds {
		brute := 0
		for i := 0; i < s.Size(); i++ {
			if s.InScope(i, ps) {
				brute++
			}
		}
		if got := s.ScopeSize(ps); got != brute {
			t.Errorf("ScopeSize(%v) = %d, brute force = %d", ps, got, brute)
		}
	}
}
