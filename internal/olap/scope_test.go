package olap

import (
	"sync"
	"testing"

	"repro/internal/dimension"
)

// scopePredSets enumerates a representative predicate menu over the
// fixture: every region, season, city and month, plus mixed pairs and a
// contradictory same-hierarchy pair.
func scopePredSets(f *fixture) [][]*dimension.Member {
	ne := f.airport.FindMember("the North East")
	mw := f.airport.FindMember("the Midwest")
	west := f.airport.FindMember("the West")
	winter := f.date.FindMember("Winter")
	summer := f.date.FindMember("Summer")
	boston := f.airport.Leaf("Boston")
	january := f.date.Leaf("January")
	return [][]*dimension.Member{
		nil,
		{ne}, {mw}, {west}, {winter}, {summer}, {boston}, {january},
		{ne, winter}, {mw, summer}, {west, january},
		{boston, summer},
		{ne, mw},         // contradictory: empty scope
		{boston, ne},     // same hierarchy, nested: Boston
		{winter, summer}, // contradictory on the date hierarchy
	}
}

// TestScopeSetMatchesReference pins the bitset path to the member-walking
// reference implementations of InScope and ScopeSize for every predicate
// set and aggregate, on both the plain and the filtered/city-level space.
func TestScopeSetMatchesReference(t *testing.T) {
	f := newFixture(t)
	spaces := []*Space{}
	s1, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	spaces = append(spaces, s1)
	q := f.regionSeasonQuery()
	q.GroupBy[0].Level = 2 // city x season
	s2, err := NewSpace(f.dataset, q)
	if err != nil {
		t.Fatalf("NewSpace city: %v", err)
	}
	spaces = append(spaces, s2)

	for si, s := range spaces {
		for _, preds := range scopePredSets(f) {
			ss := s.ScopeSet(preds)
			wantSize := 0
			for idx := 0; idx < s.Size(); idx++ {
				want := s.inScopeRef(idx, preds)
				if want {
					wantSize++
				}
				if got := ss.Contains(idx); got != want {
					t.Fatalf("space %d: ScopeSet.Contains(%d, %v) = %v, want %v",
						si, idx, preds, got, want)
				}
				if got := s.InScope(idx, preds); got != want {
					t.Fatalf("space %d: InScope(%d, %v) = %v, want %v",
						si, idx, preds, got, want)
				}
			}
			if ss.Size() != wantSize {
				t.Errorf("space %d: ScopeSet.Size(%v) = %d, want %d",
					si, preds, ss.Size(), wantSize)
			}
			if got, want := s.ScopeSize(preds), s.scopeSizeRef(preds); got != want {
				t.Errorf("space %d: ScopeSize(%v) = %d, want %d (reference)",
					si, preds, got, want)
			}
		}
	}
}

// TestScopeSetCached verifies that repeated requests for the same
// predicate list return the identical cached bitset.
func TestScopeSetCached(t *testing.T) {
	f := newFixture(t)
	s, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	ne := f.airport.FindMember("the North East")
	preds := []*dimension.Member{ne}
	a := s.ScopeSet(preds)
	b := s.ScopeSet(preds)
	if a != b {
		t.Error("same predicate list should return the cached ScopeSet")
	}
	// A fresh (equal) slice hits the same cache entry too.
	c := s.ScopeSet([]*dimension.Member{ne})
	if a != c {
		t.Error("equal predicate list should hit the cache")
	}
}

// TestScopeSetConcurrent exercises concurrent first-touch resolution of
// overlapping scopes — the parallel planner's access pattern — under the
// race detector.
func TestScopeSetConcurrent(t *testing.T) {
	f := newFixture(t)
	s, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	sets := scopePredSets(f)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				preds := sets[(w+i)%len(sets)]
				ss := s.ScopeSet(preds)
				total := 0
				for idx := 0; idx < s.Size(); idx++ {
					if ss.Contains(idx) {
						total++
					}
				}
				if total != ss.Size() {
					t.Errorf("popcount %d != Size %d", total, ss.Size())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
