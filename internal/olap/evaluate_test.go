package olap

import (
	"math"
	"testing"

	"repro/internal/dimension"
)

func TestEvaluateAverages(t *testing.T) {
	f := newFixture(t)
	r, err := Evaluate(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s := r.Space()
	want := map[string]float64{
		"the North East / Winter": 2.0 / 3,
		"the North East / Summer": 0.5,
		"the Midwest / Winter":    0.5,
		"the Midwest / Summer":    0,
		"the West / Winter":       1,
		"the West / Summer":       0,
	}
	for i := 0; i < s.Size(); i++ {
		name := s.AggregateName(i)
		w, ok := want[name]
		if !ok {
			t.Fatalf("unexpected aggregate %q", name)
		}
		if got := r.Value(i); math.Abs(got-w) > 1e-12 {
			t.Errorf("%s = %v, want %v", name, got, w)
		}
	}
}

func TestEvaluateCountAndSum(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	q.Fct = Count
	r, err := Evaluate(f.dataset, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var total float64
	for i := 0; i < r.Space().Size(); i++ {
		total += r.Value(i)
	}
	if total != float64(len(fixtureRows)) {
		t.Errorf("counts sum to %v, want %d", total, len(fixtureRows))
	}
	if r.GrandValue() != float64(len(fixtureRows)) {
		t.Errorf("grand count = %v", r.GrandValue())
	}

	q.Fct = Sum
	r, err = Evaluate(f.dataset, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	var cancelled float64
	for _, row := range fixtureRows {
		cancelled += row.cancelled
	}
	if r.GrandValue() != cancelled {
		t.Errorf("grand sum = %v, want %v", r.GrandValue(), cancelled)
	}
}

func TestEvaluateWithFilter(t *testing.T) {
	f := newFixture(t)
	q := Query{
		Fct: Avg, Col: "cancelled",
		Filters: []*dimension.Member{f.airport.FindMember("the North East")},
		GroupBy: []GroupBy{{Hierarchy: f.date, Level: 1}},
	}
	r, err := Evaluate(f.dataset, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s := r.Space()
	if s.Size() != 2 {
		t.Fatalf("size = %d, want 2", s.Size())
	}
	for i := 0; i < 2; i++ {
		name := s.AggregateName(i)
		got := r.Value(i)
		switch name {
		case "Winter":
			if math.Abs(got-2.0/3) > 1e-12 {
				t.Errorf("NE Winter = %v, want 2/3", got)
			}
		case "Summer":
			if math.Abs(got-0.5) > 1e-12 {
				t.Errorf("NE Summer = %v, want 0.5", got)
			}
		default:
			t.Errorf("unexpected aggregate %q", name)
		}
	}
}

func TestEmptyAggregateIsNaN(t *testing.T) {
	f := newFixture(t)
	// Group by city x season: Los Angeles has no Summer=August rows but
	// has July; pick New York City / Winter? NYC has January only.
	// Construct a finer query where some cells are empty:
	q := Query{
		Fct: Avg, Col: "cancelled",
		GroupBy: []GroupBy{
			{Hierarchy: f.airport, Level: 2},
			{Hierarchy: f.date, Level: 2},
		},
	}
	r, err := Evaluate(f.dataset, q)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	sawNaN := false
	for i := 0; i < r.Space().Size(); i++ {
		if math.IsNaN(r.Value(i)) {
			sawNaN = true
			if r.Count(i) != 0 {
				t.Error("NaN value with nonzero count")
			}
		}
	}
	if !sawNaN {
		t.Error("expected at least one empty aggregate in 5x4 city/month grid")
	}
	if math.IsNaN(r.DefinedMean()) {
		t.Error("DefinedMean should ignore NaN cells")
	}
}

func TestValuesAndGrandValueAvg(t *testing.T) {
	f := newFixture(t)
	r, _ := Evaluate(f.dataset, f.regionSeasonQuery())
	vals := r.Values()
	if len(vals) != 6 {
		t.Fatalf("len(values) = %d", len(vals))
	}
	var cancelled float64
	for _, row := range fixtureRows {
		cancelled += row.cancelled
	}
	want := cancelled / float64(len(fixtureRows))
	if math.Abs(r.GrandValue()-want) > 1e-12 {
		t.Errorf("grand average = %v, want %v", r.GrandValue(), want)
	}
}
