package olap

import (
	"math"
	"runtime"
	"testing"
)

// TestEvalWorkersFallback pins the sequential-fallback policy that fixed
// the 0.985x "speedup" BENCH_pipeline.json recorded on a one-CPU machine:
// small tables and single-worker requests must resolve to exactly one
// worker, and larger requests are capped by GOMAXPROCS and chunk count.
func TestEvalWorkersFallback(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	big := 10 * evalChunkRows
	cases := []struct {
		name       string
		n, workers int
		want       int
	}{
		{"one worker requested", big, 1, 1},
		{"zero workers requested", big, 0, 1},
		{"small table", evalParallelMinRows - 1, 8, 1},
		{"threshold table", evalParallelMinRows, 2, 2},
		{"capped by GOMAXPROCS", big, 64, 4},
		{"capped by chunk count", 4*evalChunkRows + 1, 3, 3},
		{"chunk cap binds", evalParallelMinRows + 1, 64, 4},
	}
	for _, c := range cases {
		if got := evalWorkers(c.n, c.workers); got != c.want {
			t.Errorf("%s: evalWorkers(%d, %d) = %d, want %d",
				c.name, c.n, c.workers, got, c.want)
		}
	}
}

// TestEvaluateSmallTableFallsBackToSequential verifies that a small table
// evaluated "in parallel" produces a result bit-identical to the
// sequential scan — because it IS the sequential scan.
func TestEvaluateSmallTableFallsBackToSequential(t *testing.T) {
	f := newFixture(t)
	space, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	seq, err := EvaluateSpaceSequential(space)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := EvaluateSpaceWorkers(space, 8)
	if err != nil {
		t.Fatalf("workers 8: %v", err)
	}
	for a := 0; a < space.Size(); a++ {
		if par.Count(a) != seq.Count(a) || par.Sum(a) != seq.Sum(a) {
			t.Errorf("agg %d: parallel (%v,%d) differs bitwise from sequential (%v,%d)",
				a, par.Sum(a), par.Count(a), seq.Sum(a), seq.Count(a))
		}
		pv, sv := par.Value(a), seq.Value(a)
		if pv != sv && !(math.IsNaN(pv) && math.IsNaN(sv)) {
			t.Errorf("agg %d: value %v != %v", a, pv, sv)
		}
	}
}
