package olap

import (
	"testing"

	"repro/internal/dimension"
	"repro/internal/table"
)

// testRow is one flight observation of the miniature fixture dataset.
type testRow struct {
	city      string
	month     string
	cancelled float64
}

// fixtureRows is a hand-checkable dataset: 12 rows across two regions and
// two seasons. Cancellation averages:
//
//	NE/Winter: (1+1+0)/3 = 2/3   NE/Summer: (0+1)/2 = 1/2
//	MW/Winter: (0+1)/2   = 1/2   MW/Summer: (0+0+0)/3 = 0
//	plus 2 rows in the West used by filter tests.
var fixtureRows = []testRow{
	{"Boston", "January", 1},
	{"Boston", "February", 1},
	{"New York City", "January", 0},
	{"Boston", "July", 0},
	{"New York City", "August", 1},
	{"Chicago", "January", 0},
	{"Chicago", "February", 1},
	{"Chicago", "July", 0},
	{"Detroit", "August", 0},
	{"Detroit", "July", 0},
	{"Los Angeles", "January", 1},
	{"Los Angeles", "July", 0},
}

type fixture struct {
	dataset *Dataset
	airport *dimension.Hierarchy
	date    *dimension.Hierarchy
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	airport := dimension.MustNewHierarchy("start airport", "city", "flights starting from", "any airport",
		[]string{"region", "city"})
	airport.MustAddPath("the North East", "Boston")
	airport.MustAddPath("the North East", "New York City")
	airport.MustAddPath("the Midwest", "Chicago")
	airport.MustAddPath("the Midwest", "Detroit")
	airport.MustAddPath("the West", "Los Angeles")

	date := dimension.MustNewHierarchy("flight date", "month", "flights scheduled in", "any date",
		[]string{"season", "month"})
	date.MustAddPath("Winter", "January")
	date.MustAddPath("Winter", "February")
	date.MustAddPath("Summer", "July")
	date.MustAddPath("Summer", "August")

	city := table.NewStringColumn("city")
	month := table.NewStringColumn("month")
	cancelled := table.NewFloat64Column("cancelled")
	for _, r := range fixtureRows {
		city.Append(r.city)
		month.Append(r.month)
		cancelled.Append(r.cancelled)
	}
	tab := table.MustNew("flights", city, month, cancelled)
	d, err := NewDataset(tab, airport, date)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return &fixture{dataset: d, airport: airport, date: date}
}

// regionSeasonQuery is AVG(cancelled) GROUP BY region, season.
func (f *fixture) regionSeasonQuery() Query {
	return Query{
		Fct:            Avg,
		Col:            "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []GroupBy{
			{Hierarchy: f.airport, Level: 1},
			{Hierarchy: f.date, Level: 1},
		},
	}
}
