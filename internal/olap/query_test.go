package olap

import (
	"testing"
)

func TestAggFuncString(t *testing.T) {
	if Count.String() != "count" || Sum.String() != "sum" || Avg.String() != "average" {
		t.Error("AggFunc strings wrong")
	}
	if AggFunc(9).String() == "" {
		t.Error("unknown AggFunc should still render")
	}
}

func TestQueryValidate(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	if err := q.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	bad := q
	bad.Col = ""
	if err := bad.Validate(); err == nil {
		t.Error("average without measure column should fail")
	}

	bad = q
	bad.GroupBy = nil
	if err := bad.Validate(); err == nil {
		t.Error("query without group-by should fail")
	}

	bad = q
	bad.GroupBy = []GroupBy{{Hierarchy: f.airport, Level: 0}}
	if err := bad.Validate(); err == nil {
		t.Error("level 0 group-by should fail")
	}

	bad = q
	bad.GroupBy = []GroupBy{{Hierarchy: f.airport, Level: 5}}
	if err := bad.Validate(); err == nil {
		t.Error("too-deep level should fail")
	}

	bad = q
	bad.GroupBy = append([]GroupBy{}, q.GroupBy...)
	bad.GroupBy = append(bad.GroupBy, GroupBy{Hierarchy: f.airport, Level: 2})
	if err := bad.Validate(); err == nil {
		t.Error("duplicate group-by dimension should fail")
	}

	bad = q
	bad.GroupBy = []GroupBy{{Hierarchy: nil, Level: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("nil group-by hierarchy should fail")
	}
}

func TestQueryValidateFilters(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	ne := f.airport.FindMember("the North East")
	q.Filters = append(q.Filters, ne, ne)
	if err := q.Validate(); err == nil {
		t.Error("duplicate filter dimension should fail")
	}
	q.Filters = nil
	q.Filters = append(q.Filters, nil)
	if err := q.Validate(); err == nil {
		t.Error("nil filter should fail")
	}
}

func TestQueryFilterOn(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	ne := f.airport.FindMember("the North East")
	q.Filters = append(q.Filters, ne)
	if q.FilterOn(f.airport) != ne {
		t.Error("FilterOn should find the airport filter")
	}
	if q.FilterOn(f.date) != nil {
		t.Error("FilterOn should be nil for unfiltered dimension")
	}
}

func TestDatasetAccessors(t *testing.T) {
	f := newFixture(t)
	d := f.dataset
	if d.Table().NumRows() != len(fixtureRows) {
		t.Error("table row mismatch")
	}
	if len(d.Hierarchies()) != 2 {
		t.Error("expected two hierarchies")
	}
	if d.HierarchyByName("flight date") != f.date {
		t.Error("HierarchyByName failed")
	}
	if d.HierarchyByName("nope") != nil {
		t.Error("unknown hierarchy should be nil")
	}
	if d.Binding(f.airport) == nil {
		t.Error("binding should exist")
	}
	if _, err := d.Measure("cancelled"); err != nil {
		t.Errorf("Measure: %v", err)
	}
	if _, err := d.Measure("city"); err == nil {
		t.Error("string column should not be a measure")
	}
}

func TestValidateQueryAgainstDataset(t *testing.T) {
	f := newFixture(t)
	q := f.regionSeasonQuery()
	if err := f.dataset.ValidateQuery(q); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}
	// Foreign hierarchy.
	foreign := f.regionSeasonQuery()
	other := newFixture(t)
	foreign.GroupBy[0].Hierarchy = other.airport
	if err := f.dataset.ValidateQuery(foreign); err == nil {
		t.Error("foreign group-by hierarchy should fail")
	}
	foreign = f.regionSeasonQuery()
	foreign.Filters = append(foreign.Filters, other.airport.FindMember("the West"))
	if err := f.dataset.ValidateQuery(foreign); err == nil {
		t.Error("foreign filter hierarchy should fail")
	}
	// Missing measure.
	bad := f.regionSeasonQuery()
	bad.Col = "ghost"
	if err := f.dataset.ValidateQuery(bad); err == nil {
		t.Error("missing measure should fail")
	}
}
