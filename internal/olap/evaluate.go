package olap

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/table"
)

// Result holds the exact evaluation of a query: per-aggregate counts and
// sums from which any of the supported aggregation functions derive.
type Result struct {
	space  *Space
	counts []int64
	sums   []float64
}

// Evaluate computes the exact query result with a full scan of the base
// table. It is the ground truth used to score speech quality and the data
// source of the "Optimal" baseline.
func Evaluate(d *Dataset, q Query) (*Result, error) {
	space, err := NewSpace(d, q)
	if err != nil {
		return nil, err
	}
	return EvaluateSpace(space)
}

// EvaluateSpace evaluates the query of an already constructed space,
// sharding the scan across runtime.GOMAXPROCS(0) workers.
func EvaluateSpace(space *Space) (*Result, error) {
	return EvaluateSpaceWorkers(space, runtime.GOMAXPROCS(0))
}

// EvaluateSpaceSequential evaluates the query with a single-threaded
// row-at-a-time scan: the reference the parallel path is checked (and
// benchmarked) against.
func EvaluateSpaceSequential(space *Space) (*Result, error) {
	measure, err := evalMeasure(space)
	if err != nil {
		return nil, err
	}
	r := &Result{
		space:  space,
		counts: make([]int64, space.Size()),
		sums:   make([]float64, space.Size()),
	}
	n := space.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		idx, ok := space.ClassifyRow(row)
		if !ok {
			continue
		}
		r.counts[idx]++
		if measure != nil {
			r.sums[idx] += measure.Float(row)
		}
	}
	return r, nil
}

// evalChunkRows is the fixed work grain of the parallel scan. Chunk
// boundaries depend only on the table size — never on the worker count —
// so per-chunk partial sums always merge in the same order and the result
// is bit-for-bit identical for any number of workers. Counts are integer
// and match the sequential scan exactly; sums are reassociated only at
// chunk boundaries.
const evalChunkRows = 8192

// evalParallelMinRows is the smallest table for which the parallel scan
// pays for its goroutine fan-out and grid merge. Below it (or with a
// single usable CPU) the "parallel" path was measurably slower than the
// sequential scan — BENCH_pipeline.json recorded a 0.985x speedup on a
// one-CPU machine — so EvaluateSpaceWorkers falls back to the sequential
// scan instead.
const evalParallelMinRows = 4 * evalChunkRows

// evalWorkers returns the effective worker count for an n-row scan: 1
// (the sequential path) when the caller asked for one worker, when the
// table is below evalParallelMinRows, or when only one CPU can run; the
// requested count capped by GOMAXPROCS and the chunk count otherwise.
func evalWorkers(n, workers int) int {
	if workers <= 1 || n < evalParallelMinRows {
		return 1
	}
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if chunks := (n + evalChunkRows - 1) / evalChunkRows; workers > chunks {
		workers = chunks
	}
	return workers
}

// EvaluateSpaceWorkers evaluates the query with the given number of scan
// workers. Workers classify fixed-size row chunks into private
// accumulator grids through the dense batch classifier; the grids merge
// in chunk order at the end. Requests that cannot win from parallelism
// (one worker, one CPU, or a small table — see evalWorkers) take the
// sequential path; the result is bit-for-bit identical either way.
func EvaluateSpaceWorkers(space *Space, workers int) (*Result, error) {
	n := space.Dataset().Table().NumRows()
	workers = evalWorkers(n, workers)
	if workers <= 1 {
		return EvaluateSpaceSequential(space)
	}
	measure, err := evalMeasure(space)
	if err != nil {
		return nil, err
	}
	var vals []float64
	if measure != nil {
		vals = measure.Values()
	}
	chunks := (n + evalChunkRows - 1) / evalChunkRows
	if workers > chunks {
		workers = chunks
	}
	size := space.Size()
	// Per-chunk grids live in two shared slabs (one allocation each instead
	// of two per chunk), with the per-chunk stride rounded up to a whole
	// number of 64-byte cache lines: adjacent chunks are usually processed
	// by different workers, and an unpadded boundary would false-share the
	// last aggregates of chunk c with the first aggregates of chunk c+1.
	// Merge order stays chunk order, so the result remains bit-identical to
	// the sequential scan for any worker count.
	stride := (size + 7) &^ 7
	countSlab := make([]int64, chunks*stride)
	var sumSlab []float64
	if vals != nil {
		sumSlab = make([]float64, chunks*stride)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			idxs := make([]int32, evalChunkRows)
			for {
				c := int(next.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * evalChunkRows
				hi := lo + evalChunkRows
				if hi > n {
					hi = n
				}
				counts := countSlab[c*stride : c*stride+size]
				space.ClassifyRange(lo, hi, idxs)
				if vals != nil {
					sums := sumSlab[c*stride : c*stride+size]
					chunkVals := vals[lo:hi]
					for i, idx := range idxs[:hi-lo] {
						if idx >= 0 {
							counts[idx]++
							sums[idx] += chunkVals[i]
						}
					}
				} else {
					for _, idx := range idxs[:hi-lo] {
						if idx >= 0 {
							counts[idx]++
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	r := &Result{
		space:  space,
		counts: make([]int64, size),
		sums:   make([]float64, size),
	}
	for c := 0; c < chunks; c++ {
		counts := countSlab[c*stride : c*stride+size]
		for a := 0; a < size; a++ {
			r.counts[a] += counts[a]
		}
		if sumSlab != nil {
			sums := sumSlab[c*stride : c*stride+size]
			for a := 0; a < size; a++ {
				r.sums[a] += sums[a]
			}
		}
	}
	return r, nil
}

// evalMeasure resolves the measure column of a space's query (nil for
// count queries).
func evalMeasure(space *Space) (*table.Float64Column, error) {
	q := space.Query()
	if q.Fct == Count {
		return nil, nil
	}
	return space.Dataset().Measure(q.Col)
}

// Space returns the aggregate space of the result.
func (r *Result) Space() *Space { return r.space }

// Count returns the row count of aggregate idx.
func (r *Result) Count(idx int) int64 { return r.counts[idx] }

// Sum returns the measure sum of aggregate idx.
func (r *Result) Sum(idx int) float64 { return r.sums[idx] }

// Value returns the aggregate value of idx under the query's aggregation
// function. Average over an empty aggregate returns NaN.
func (r *Result) Value(idx int) float64 {
	switch r.space.Query().Fct {
	case Count:
		return float64(r.counts[idx])
	case Sum:
		return r.sums[idx]
	case Avg:
		if r.counts[idx] == 0 {
			return math.NaN()
		}
		return r.sums[idx] / float64(r.counts[idx])
	default:
		panic(fmt.Sprintf("olap: unknown aggregation function %v", r.space.Query().Fct))
	}
}

// Values returns all aggregate values in index order.
func (r *Result) Values() []float64 {
	out := make([]float64, r.space.Size())
	for i := range out {
		out[i] = r.Value(i)
	}
	return out
}

// GrandValue returns the aggregate value over the entire query scope
// (all aggregates combined): total count, total sum, or overall average.
func (r *Result) GrandValue() float64 {
	var count int64
	var sum float64
	for i := range r.counts {
		count += r.counts[i]
		sum += r.sums[i]
	}
	switch r.space.Query().Fct {
	case Count:
		return float64(count)
	case Sum:
		return sum
	case Avg:
		if count == 0 {
			return math.NaN()
		}
		return sum / float64(count)
	default:
		panic(fmt.Sprintf("olap: unknown aggregation function %v", r.space.Query().Fct))
	}
}

// DefinedMean returns the mean over aggregates with at least one row,
// which for sparse averages is the natural "typical value" baseline.
func (r *Result) DefinedMean() float64 {
	var sum float64
	var n int
	for i := range r.counts {
		v := r.Value(i)
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
