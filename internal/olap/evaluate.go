package olap

import (
	"fmt"
	"math"

	"repro/internal/table"
)

// Result holds the exact evaluation of a query: per-aggregate counts and
// sums from which any of the supported aggregation functions derive.
type Result struct {
	space  *Space
	counts []int64
	sums   []float64
}

// Evaluate computes the exact query result with a full scan of the base
// table. It is the ground truth used to score speech quality and the data
// source of the "Optimal" baseline.
func Evaluate(d *Dataset, q Query) (*Result, error) {
	space, err := NewSpace(d, q)
	if err != nil {
		return nil, err
	}
	return EvaluateSpace(space)
}

// EvaluateSpace evaluates the query of an already constructed space.
func EvaluateSpace(space *Space) (*Result, error) {
	q := space.Query()
	var measure *table.Float64Column
	if q.Fct != Count {
		var err error
		measure, err = space.Dataset().Measure(q.Col)
		if err != nil {
			return nil, err
		}
	}
	r := &Result{
		space:  space,
		counts: make([]int64, space.Size()),
		sums:   make([]float64, space.Size()),
	}
	n := space.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		idx, ok := space.ClassifyRow(row)
		if !ok {
			continue
		}
		r.counts[idx]++
		if measure != nil {
			r.sums[idx] += measure.Float(row)
		}
	}
	return r, nil
}

// Space returns the aggregate space of the result.
func (r *Result) Space() *Space { return r.space }

// Count returns the row count of aggregate idx.
func (r *Result) Count(idx int) int64 { return r.counts[idx] }

// Sum returns the measure sum of aggregate idx.
func (r *Result) Sum(idx int) float64 { return r.sums[idx] }

// Value returns the aggregate value of idx under the query's aggregation
// function. Average over an empty aggregate returns NaN.
func (r *Result) Value(idx int) float64 {
	switch r.space.Query().Fct {
	case Count:
		return float64(r.counts[idx])
	case Sum:
		return r.sums[idx]
	case Avg:
		if r.counts[idx] == 0 {
			return math.NaN()
		}
		return r.sums[idx] / float64(r.counts[idx])
	default:
		panic(fmt.Sprintf("olap: unknown aggregation function %v", r.space.Query().Fct))
	}
}

// Values returns all aggregate values in index order.
func (r *Result) Values() []float64 {
	out := make([]float64, r.space.Size())
	for i := range out {
		out[i] = r.Value(i)
	}
	return out
}

// GrandValue returns the aggregate value over the entire query scope
// (all aggregates combined): total count, total sum, or overall average.
func (r *Result) GrandValue() float64 {
	var count int64
	var sum float64
	for i := range r.counts {
		count += r.counts[i]
		sum += r.sums[i]
	}
	switch r.space.Query().Fct {
	case Count:
		return float64(count)
	case Sum:
		return sum
	case Avg:
		if count == 0 {
			return math.NaN()
		}
		return sum / float64(count)
	default:
		panic(fmt.Sprintf("olap: unknown aggregation function %v", r.space.Query().Fct))
	}
}

// DefinedMean returns the mean over aggregates with at least one row,
// which for sparse averages is the natural "typical value" baseline.
func (r *Result) DefinedMean() float64 {
	var sum float64
	var n int
	for i := range r.counts {
		v := r.Value(i)
		if !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
