package olap

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/dimension"
	"repro/internal/table"
)

// bigFixture builds a dataset large enough (several evalChunkRows) that
// EvaluateSpaceWorkers actually shards the scan.
func bigFixture(t testing.TB, rows int) *fixture {
	t.Helper()
	airport := dimension.MustNewHierarchy("start airport", "city", "flights starting from", "any airport",
		[]string{"region", "city"})
	airport.MustAddPath("the North East", "Boston")
	airport.MustAddPath("the North East", "New York City")
	airport.MustAddPath("the Midwest", "Chicago")
	airport.MustAddPath("the Midwest", "Detroit")
	airport.MustAddPath("the West", "Los Angeles")
	date := dimension.MustNewHierarchy("flight date", "month", "flights scheduled in", "any date",
		[]string{"season", "month"})
	date.MustAddPath("Winter", "January")
	date.MustAddPath("Winter", "February")
	date.MustAddPath("Summer", "July")
	date.MustAddPath("Summer", "August")

	cities := []string{"Boston", "New York City", "Chicago", "Detroit", "Los Angeles"}
	months := []string{"January", "February", "July", "August"}
	rng := rand.New(rand.NewSource(17))
	city := table.NewStringColumn("city")
	month := table.NewStringColumn("month")
	cancelled := table.NewFloat64Column("cancelled")
	for i := 0; i < rows; i++ {
		city.Append(cities[rng.Intn(len(cities))])
		month.Append(months[rng.Intn(len(months))])
		// A non-dyadic measure so sum reassociation is actually visible
		// in floating point, not masked by exactly representable values.
		cancelled.Append(rng.Float64() / 3)
	}
	tab := table.MustNew("flights", city, month, cancelled)
	d, err := NewDataset(tab, airport, date)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return &fixture{dataset: d, airport: airport, date: date}
}

func TestEvaluateWorkersEquivalence(t *testing.T) {
	f := bigFixture(t, 3*evalChunkRows+1234)
	queries := []Query{
		f.regionSeasonQuery(),
		{Fct: Count, GroupBy: []GroupBy{{Hierarchy: f.airport, Level: 2}}},
		{Fct: Sum, Col: "cancelled", ColDescription: "total",
			Filters: []*dimension.Member{f.airport.FindMember("the North East")},
			GroupBy: []GroupBy{{Hierarchy: f.date, Level: 1}}},
	}
	workerCounts := []int{1, 2, runtime.NumCPU()}
	for qi, q := range queries {
		space, err := NewSpace(f.dataset, q)
		if err != nil {
			t.Fatalf("query %d: NewSpace: %v", qi, err)
		}
		seq, err := EvaluateSpaceSequential(space)
		if err != nil {
			t.Fatalf("query %d: sequential: %v", qi, err)
		}
		for _, w := range workerCounts {
			par, err := EvaluateSpaceWorkers(space, w)
			if err != nil {
				t.Fatalf("query %d workers %d: %v", qi, w, err)
			}
			for a := 0; a < space.Size(); a++ {
				if par.Count(a) != seq.Count(a) {
					t.Errorf("query %d workers %d agg %d: count %d, sequential %d",
						qi, w, a, par.Count(a), seq.Count(a))
				}
				ps, ss := par.Sum(a), seq.Sum(a)
				if math.Abs(ps-ss) > math.Abs(ss)*1e-9+1e-12 {
					t.Errorf("query %d workers %d agg %d: sum %v, sequential %v",
						qi, w, a, ps, ss)
				}
			}
		}
	}
}

// TestEvaluateWorkersDeterministic proves the chunk-grain design: the
// parallel result is bit-identical across worker counts, sums included,
// because partial grids always merge in chunk order.
func TestEvaluateWorkersDeterministic(t *testing.T) {
	f := bigFixture(t, 4*evalChunkRows+99)
	space, err := NewSpace(f.dataset, f.regionSeasonQuery())
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	ref, err := EvaluateSpaceWorkers(space, 2)
	if err != nil {
		t.Fatalf("workers 2: %v", err)
	}
	for _, w := range []int{2, 3, 4, 8} {
		got, err := EvaluateSpaceWorkers(space, w)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		for a := 0; a < space.Size(); a++ {
			if got.Sum(a) != ref.Sum(a) || got.Count(a) != ref.Count(a) {
				t.Errorf("workers %d agg %d: (%v,%d) differs from workers 2 (%v,%d)",
					w, a, got.Sum(a), got.Count(a), ref.Sum(a), ref.Count(a))
			}
		}
	}
}
