package olap

import (
	"testing"

	"repro/internal/dimension"
	"repro/internal/table"
)

// referenceClassify is the pre-dense classification logic, kept as the
// oracle: per-row member lookup through the binding plus a map lookup into
// the member position table.
func referenceClassify(s *Space, row int) (int, bool) {
	for _, f := range s.extraFilters {
		if !f.binding.RowMatches(row, f.member) {
			return 0, false
		}
	}
	idx := 0
	for d, b := range s.bindings {
		m := b.MemberOfRow(row, s.levels[d])
		p, within := s.memberPos[d][m]
		if !within {
			return 0, false
		}
		idx += p * s.strides[d]
	}
	return idx, true
}

// classifyQueries builds query shapes that exercise every dense-table path:
// plain group-by, group-by with a narrowing filter, and an extra filter on
// a non-grouped dimension.
func classifyQueries(f *fixture) []Query {
	return []Query{
		f.regionSeasonQuery(),
		{
			Fct: Avg, Col: "cancelled",
			Filters: []*dimension.Member{f.airport.FindMember("the North East")},
			GroupBy: []GroupBy{{Hierarchy: f.date, Level: 2}},
		},
		{
			Fct: Count,
			Filters: []*dimension.Member{
				f.airport.FindMember("the Midwest"),
				f.date.FindMember("Winter"),
			},
			GroupBy: []GroupBy{{Hierarchy: f.date, Level: 2}},
		},
	}
}

func TestClassifyRowMatchesReference(t *testing.T) {
	f := newFixture(t)
	for qi, q := range classifyQueries(f) {
		s, err := NewSpace(f.dataset, q)
		if err != nil {
			t.Fatalf("query %d: NewSpace: %v", qi, err)
		}
		n := f.dataset.Table().NumRows()
		for row := 0; row < n; row++ {
			wantIdx, wantOK := referenceClassify(s, row)
			gotIdx, gotOK := s.ClassifyRow(row)
			if wantOK != gotOK || (wantOK && wantIdx != gotIdx) {
				t.Errorf("query %d row %d: ClassifyRow = (%d,%v), reference (%d,%v)",
					qi, row, gotIdx, gotOK, wantIdx, wantOK)
			}
		}
	}
}

func TestClassifyBatchesMatchClassifyRow(t *testing.T) {
	f := newFixture(t)
	for qi, q := range classifyQueries(f) {
		s, err := NewSpace(f.dataset, q)
		if err != nil {
			t.Fatalf("query %d: NewSpace: %v", qi, err)
		}
		n := f.dataset.Table().NumRows()
		rows := make([]int, n)
		for i := range rows {
			rows[i] = n - 1 - i // scattered (reversed) gather order
		}
		byRows := make([]int32, n)
		s.ClassifyRows(rows, byRows)
		byRange := make([]int32, n)
		s.ClassifyRange(0, n, byRange)
		for i := 0; i < n; i++ {
			idx, ok := s.ClassifyRow(i)
			want := int32(idx)
			if !ok {
				want = -1
			}
			if byRange[i] != want {
				t.Errorf("query %d row %d: ClassifyRange = %d, want %d", qi, i, byRange[i], want)
			}
			if byRows[n-1-i] != want {
				t.Errorf("query %d row %d: ClassifyRows = %d, want %d", qi, i, byRows[n-1-i], want)
			}
		}
	}
}

// TestClassifyThroughJoinView covers the accessor fallback: a star-schema
// join view has no raw code slice, so classification goes through Code
// calls but must agree with direct evaluation on a denormalized copy.
func TestClassifyThroughJoinView(t *testing.T) {
	cities := []string{"Boston", "Chicago", "Los Angeles"}
	attr := table.NewStringColumn("city")
	for _, c := range cities {
		attr.Append(c)
	}
	fk := table.NewInt64Column("cityID")
	flat := table.NewStringColumn("cityFlat")
	cancelled := table.NewFloat64Column("cancelled")
	for i := 0; i < 60; i++ {
		k := i % 3
		fk.Append(int64(k))
		flat.Append(cities[k])
		cancelled.Append(float64(i % 2))
	}
	tab := table.MustNew("facts", fk, flat, cancelled)
	join, err := table.NewJoinColumn("city", fk, attr)
	if err != nil {
		t.Fatalf("NewJoinColumn: %v", err)
	}
	if err := tab.AddVirtual(join); err != nil {
		t.Fatalf("AddVirtual: %v", err)
	}

	mkHierarchy := func(col string) *dimension.Hierarchy {
		h := dimension.MustNewHierarchy("city", col, "flights from", "any city", []string{"city"})
		for _, c := range cities {
			h.MustAddPath(c)
		}
		return h
	}
	viaJoin := mkHierarchy("city")
	viaFlat := mkHierarchy("cityFlat")
	d, err := NewDataset(tab, viaJoin, viaFlat)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	mkSpace := func(h *dimension.Hierarchy) *Space {
		s, err := NewSpace(d, Query{
			Fct: Avg, Col: "cancelled",
			GroupBy: []GroupBy{{Hierarchy: h, Level: 1}},
		})
		if err != nil {
			t.Fatalf("NewSpace: %v", err)
		}
		return s
	}
	sJoin, sFlat := mkSpace(viaJoin), mkSpace(viaFlat)
	idxs := make([]int32, 60)
	sJoin.ClassifyRange(0, 60, idxs)
	for row := 0; row < 60; row++ {
		jIdx, jOK := sJoin.ClassifyRow(row)
		fIdx, fOK := sFlat.ClassifyRow(row)
		if jOK != fOK || jIdx != fIdx {
			t.Errorf("row %d: join view (%d,%v) != flat column (%d,%v)", row, jIdx, jOK, fIdx, fOK)
		}
		if idxs[row] != int32(jIdx) {
			t.Errorf("row %d: join-view ClassifyRange %d, want %d", row, idxs[row], jIdx)
		}
	}
}
