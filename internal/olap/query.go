// Package olap defines the OLAP query model of the paper (aggregation
// function, aggregation column, and a set of mutually exclusive aggregates
// spanned by dimension members at chosen hierarchy levels) together with an
// exact group-by evaluation engine. The exact engine provides ground truth
// for speech-quality measurement and powers the "Optimal" baseline; the
// holistic algorithm instead samples from the same row stream.
package olap

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/dimension"
	"repro/internal/table"
)

// AggFunc is an aggregation function. The paper supports the three
// functions that sampling approximates well: count, sum, and average.
type AggFunc int

// Supported aggregation functions.
const (
	Count AggFunc = iota
	Sum
	Avg
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Avg:
		return "average"
	default:
		return fmt.Sprintf("AggFunc(%d)", int(f))
	}
}

// GroupBy selects the breakdown granularity for one dimension: all members
// of Hierarchy at depth Level (within the query's filter scope).
type GroupBy struct {
	Hierarchy *dimension.Hierarchy
	Level     int
}

// Window restricts a query to a trailing stream-time window: only rows that
// arrived within Last of the table's newest append are in scope ("delays in
// the last hour"). The zero Window means no restriction. Window resolution
// is stream time, not wall time — the table's append marks are the clock
// (see table.RowsInLast) — so the same query over a frozen snapshot always
// covers the same rows, and a windowed query over a static table (no append
// history) covers the whole table.
type Window struct {
	Last time.Duration
}

// IsZero reports whether the window places no restriction.
func (w Window) IsZero() bool { return w.Last <= 0 }

// Query is an OLAP aggregation query. Filters fix a member per dimension
// (rows outside the member's subtree are out of scope); GroupBy dimensions
// break the result down into one aggregate per member combination.
type Query struct {
	// Fct is the aggregation function.
	Fct AggFunc
	// Col names the measure column; ignored for Count.
	Col string
	// ColDescription is the spoken name of the aggregate, e.g.
	// "average cancellation probability".
	ColDescription string
	// Filters fix one member per filtered dimension.
	Filters []*dimension.Member
	// GroupBy lists breakdown dimensions with their levels.
	GroupBy []GroupBy
	// Window optionally restricts the query to a trailing stream-time
	// window of the table's append history.
	Window Window
}

// Validate performs structural checks that do not need a dataset.
func (q Query) Validate() error {
	if q.Fct != Count && q.Col == "" {
		return errors.New("olap: sum/average query needs a measure column")
	}
	if len(q.GroupBy) == 0 {
		return errors.New("olap: query needs at least one group-by dimension")
	}
	seen := make(map[*dimension.Hierarchy]bool)
	for _, g := range q.GroupBy {
		if g.Hierarchy == nil {
			return errors.New("olap: nil group-by hierarchy")
		}
		if g.Level < 1 || g.Level > g.Hierarchy.Depth() {
			return fmt.Errorf("olap: level %d out of range for dimension %q (depth %d)",
				g.Level, g.Hierarchy.Name, g.Hierarchy.Depth())
		}
		if seen[g.Hierarchy] {
			return fmt.Errorf("olap: dimension %q grouped twice", g.Hierarchy.Name)
		}
		seen[g.Hierarchy] = true
	}
	seenFilter := make(map[*dimension.Hierarchy]bool)
	for _, m := range q.Filters {
		if m == nil {
			return errors.New("olap: nil filter member")
		}
		h := m.Hierarchy()
		if seenFilter[h] {
			return fmt.Errorf("olap: dimension %q filtered twice", h.Name)
		}
		seenFilter[h] = true
	}
	return nil
}

// FilterOn returns the filter member for hierarchy h, or nil.
func (q Query) FilterOn(h *dimension.Hierarchy) *dimension.Member {
	for _, m := range q.Filters {
		if m.Hierarchy() == h {
			return m
		}
	}
	return nil
}

// Dataset couples a base table with the dimension hierarchies defined over
// it and caches the per-column bindings needed for row classification.
type Dataset struct {
	tab         *table.Table
	hierarchies []*dimension.Hierarchy
	bindings    map[*dimension.Hierarchy]*dimension.Binding
	measures    map[string]*table.Float64Column
}

// NewDataset binds each hierarchy against the table and indexes the
// available float64 measure columns.
func NewDataset(t *table.Table, hierarchies ...*dimension.Hierarchy) (*Dataset, error) {
	d := &Dataset{
		tab:         t,
		hierarchies: hierarchies,
		bindings:    make(map[*dimension.Hierarchy]*dimension.Binding, len(hierarchies)),
		measures:    make(map[string]*table.Float64Column),
	}
	for _, h := range hierarchies {
		b, err := h.Bind(t)
		if err != nil {
			return nil, fmt.Errorf("olap: %w", err)
		}
		d.bindings[h] = b
	}
	for _, c := range t.Columns() {
		if fc, ok := c.(*table.Float64Column); ok {
			d.measures[c.Name()] = fc
		}
	}
	return d, nil
}

// Table returns the base table.
func (d *Dataset) Table() *table.Table { return d.tab }

// Hierarchies returns the dimension hierarchies.
func (d *Dataset) Hierarchies() []*dimension.Hierarchy { return d.hierarchies }

// HierarchyByName returns the hierarchy with the given name, or nil.
func (d *Dataset) HierarchyByName(name string) *dimension.Hierarchy {
	for _, h := range d.hierarchies {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// Binding returns the row-classification binding for h, or nil if h is not
// part of this dataset.
func (d *Dataset) Binding(h *dimension.Hierarchy) *dimension.Binding {
	return d.bindings[h]
}

// Measure returns the named float64 measure column.
func (d *Dataset) Measure(name string) (*table.Float64Column, error) {
	if c, ok := d.measures[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("olap: no float64 measure column %q", name)
}

// ValidateQuery checks q against this dataset: hierarchies must belong to
// the dataset and the measure column must exist for sum/average.
func (d *Dataset) ValidateQuery(q Query) error {
	if err := q.Validate(); err != nil {
		return err
	}
	for _, g := range q.GroupBy {
		if d.bindings[g.Hierarchy] == nil {
			return fmt.Errorf("olap: dimension %q not part of dataset", g.Hierarchy.Name)
		}
	}
	for _, m := range q.Filters {
		if d.bindings[m.Hierarchy()] == nil {
			return fmt.Errorf("olap: filter dimension %q not part of dataset", m.Hierarchy().Name)
		}
	}
	if q.Fct != Count {
		if _, err := d.Measure(q.Col); err != nil {
			return err
		}
	}
	return nil
}
