package admission

import "time"

// bucket is a continuous-refill token bucket. It is not self-locking; the
// Controller serializes access under its mutex.
type bucket struct {
	tokens float64
	last   time.Time
}

// take refills by the elapsed time and consumes one token; false when the
// bucket is empty. A fresh bucket starts full so new tenants get their
// burst immediately.
func (b *bucket) take(now time.Time, rate, burst float64) bool {
	if b.last.IsZero() {
		b.tokens = burst
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * rate
		if b.tokens > burst {
			b.tokens = burst
		}
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
