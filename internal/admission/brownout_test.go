package admission

import (
	"testing"
	"time"
)

// newTestBrownout builds a controller with a 100ms p99 target, an 8-sample
// window, and a 1s hold, on a manual clock.
func newTestBrownout() (*Brownout, *fakeClock) {
	clk := newFakeClock()
	b := NewBrownout(BrownoutConfig{
		Target:     100 * time.Millisecond,
		Window:     8,
		MinSamples: 4,
		Hold:       time.Second,
		Now:        clk.Now,
	})
	return b, clk
}

// driveTo observes lat repeatedly (advancing the clock past the hold
// window as it goes) until the ladder reaches want. It stops on the
// transition observation, so the sample window is freshly reset when it
// returns.
func driveTo(t *testing.T, b *Brownout, clk *fakeClock, lat time.Duration, want Step) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if b.Step() == want {
			return
		}
		b.Observe(lat)
		clk.Advance(250 * time.Millisecond)
	}
	t.Fatalf("ladder never reached %v (stuck at %v)", want, b.Step())
}

func TestBrownoutClimbsLadderUnderSustainedOverload(t *testing.T) {
	b, clk := newTestBrownout()
	if b.Step() != StepFull {
		t.Fatalf("initial step = %v, want full", b.Step())
	}
	driveTo(t, b, clk, 300*time.Millisecond, StepReduced)
	driveTo(t, b, clk, 300*time.Millisecond, StepPrior)
	driveTo(t, b, clk, 300*time.Millisecond, StepShed)
	// The ladder tops out at shed.
	for i := 0; i < 20; i++ {
		b.Observe(300 * time.Millisecond)
		clk.Advance(250 * time.Millisecond)
	}
	if b.Step() != StepShed {
		t.Fatalf("step beyond shed: %v", b.Step())
	}
}

func TestBrownoutHoldGatesConsecutiveSteps(t *testing.T) {
	b, _ := newTestBrownout()
	// A full window of slow samples with no clock movement: exactly one
	// step — the hold window blocks the second.
	for i := 0; i < 16; i++ {
		b.Observe(300 * time.Millisecond)
	}
	if b.Step() != StepReduced {
		t.Fatalf("step = %v, want reduced (one step per hold window)", b.Step())
	}
}

func TestBrownoutRecoversStepByStep(t *testing.T) {
	b, clk := newTestBrownout()
	driveTo(t, b, clk, 300*time.Millisecond, StepPrior)
	// The cheaper rung delivers: latency falls well under the 50ms
	// descend threshold, and the ladder walks back down one rung at a
	// time.
	driveTo(t, b, clk, 10*time.Millisecond, StepReduced)
	driveTo(t, b, clk, 10*time.Millisecond, StepFull)
	snap := b.Snapshot()
	if snap.Transitions["reduced"] != 2 || snap.Transitions["prior"] != 1 || snap.Transitions["full"] != 1 {
		t.Errorf("transitions = %v, want reduced:2 prior:1 full:1", snap.Transitions)
	}
	if snap.StepName != "full" {
		t.Errorf("snapshot step = %q, want full", snap.StepName)
	}
}

func TestBrownoutHysteresisHoldsAtModerateLatency(t *testing.T) {
	b, clk := newTestBrownout()
	driveTo(t, b, clk, 300*time.Millisecond, StepReduced)
	// 80ms is under the 100ms climb threshold but over the 50ms descend
	// threshold: the ladder must hold its rung, not oscillate.
	for i := 0; i < 40; i++ {
		b.Observe(80 * time.Millisecond)
		clk.Advance(250 * time.Millisecond)
	}
	if b.Step() != StepReduced {
		t.Errorf("step under moderate latency = %v, want reduced (hysteresis)", b.Step())
	}
}

func TestBrownoutMinSamplesGateDecisions(t *testing.T) {
	b, _ := newTestBrownout()
	for i := 0; i < 3; i++ { // below MinSamples=4
		b.Observe(time.Second)
	}
	if b.Step() != StepFull {
		t.Errorf("step after 3 samples = %v, want full (gated)", b.Step())
	}
}

func TestBrownoutDisabledWithoutTarget(t *testing.T) {
	b := NewBrownout(BrownoutConfig{})
	if b.Enabled() {
		t.Fatal("zero target must disable the controller")
	}
	for i := 0; i < 100; i++ {
		b.Observe(time.Hour)
	}
	if b.Step() != StepFull {
		t.Errorf("disabled controller step = %v, want full", b.Step())
	}
}

func TestStepStrings(t *testing.T) {
	want := map[Step]string{StepFull: "full", StepReduced: "reduced", StepPrior: "prior", StepShed: "shed"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
}
