package admission

import (
	"sync"
	"time"
)

// BreakerState is the circuit state.
type BreakerState int

const (
	// BreakerClosed passes requests to the protected (holistic) path.
	BreakerClosed BreakerState = iota
	// BreakerOpen routes everything to the fallback until the cooldown
	// elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe through to test recovery.
	BreakerHalfOpen
)

// String names the state for metrics.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker.
type BreakerConfig struct {
	// Threshold is the number of consecutive deadline blowouts that trips
	// the breaker; <= 0 disables it (Allow always true).
	Threshold int
	// Cooldown is how long the breaker stays open before a half-open
	// probe, and how long a lost probe is waited for (default 10s).
	Cooldown time.Duration
	// Now is the clock, stubbed in tests (default time.Now).
	Now func() time.Time
}

// normalize fills defaults.
func (c BreakerConfig) normalize() BreakerConfig {
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker trips an expensive path to its fallback after consecutive
// deadline blowouts. One breaker guards one dataset: a dataset whose scans
// stall must not condemn every other dataset to the fallback.
type Breaker struct {
	cfg BreakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecutive int
	openedAt    time.Time
	probeOut    bool
	probeAt     time.Time
	trips       int64
}

// NewBreaker returns a breaker for cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.normalize()}
}

// Enabled reports whether a trip threshold is set.
func (b *Breaker) Enabled() bool { return b.cfg.Threshold > 0 }

// Allow reports whether the protected path may run now. While open it
// returns false until the cooldown elapses, then admits exactly one
// half-open probe (re-armed if the probe's outcome never arrives).
func (b *Breaker) Allow() bool {
	if !b.Enabled() {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probeOut, b.probeAt = true, now
		return true
	default: // BreakerHalfOpen
		if b.probeOut && now.Sub(b.probeAt) < b.cfg.Cooldown {
			return false
		}
		// The previous probe was lost (canceled client, crashed worker);
		// send another rather than staying half-open forever.
		b.probeOut, b.probeAt = true, now
		return true
	}
}

// Record reports one protected-path outcome: blowout is true when the
// request blew its deadline. Consecutive blowouts trip the breaker; any
// success resets the count (or closes a half-open breaker).
func (b *Breaker) Record(blowout bool) {
	if !b.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.cfg.Now()
	switch b.state {
	case BreakerHalfOpen:
		b.probeOut = false
		if blowout {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
		} else {
			b.state = BreakerClosed
			b.consecutive = 0
		}
	case BreakerClosed:
		if !blowout {
			b.consecutive = 0
			return
		}
		b.consecutive++
		if b.consecutive >= b.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = now
			b.trips++
		}
	default: // BreakerOpen: late outcomes from before the trip are noise.
	}
}

// State returns the current circuit state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// CooldownRemaining reports how long an open breaker stays closed to the
// protected path (zero when not open) — shed responses fold it into their
// Retry-After hint.
func (b *Breaker) CooldownRemaining() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.cfg.Now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Trips counts transitions into the open state.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
