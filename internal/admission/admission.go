// Package admission is the overload-resilience layer between the HTTP
// handlers and the vocalizers. Voice OLAP is only usable if speech starts
// within an interactive deadline, so under overload the serving tier must
// choose *which* work to do and *how well* to do it rather than letting
// every request crawl past its deadline together:
//
//   - Controller — per-tenant token buckets in front of a weighted-fair
//     bounded queue over a fixed number of execution slots. One chatty
//     tenant can saturate only its own fair share; requests whose
//     predicted queue wait already exceeds their remaining deadline are
//     shed immediately (better a fast 503 than a slow one), and the
//     load-derived RetryAfter tells clients when capacity is expected.
//   - Brownout — a sliding-p99 latency watcher that steps through an
//     explicit degradation ladder (full holistic planning → reduced
//     planner budget → prior-baseline fallback → shed) and climbs back
//     down as latency recovers.
//   - Breaker — a per-dataset circuit breaker that trips the holistic
//     vocalizer to the cheap prior baseline after consecutive deadline
//     blowouts, with half-open probing to detect recovery.
//
// All three are clock-injectable and free of HTTP types, so they unit
// test deterministically and could front any bounded-latency service.
package admission

import (
	"context"
	"sync"
	"time"
)

// ShedReason explains why Acquire refused a request.
type ShedReason int

const (
	// ShedNone means the request was admitted.
	ShedNone ShedReason = iota
	// ShedRate means the tenant's token bucket was empty (per-tenant rate
	// limit; maps to 429).
	ShedRate
	// ShedQueueFull means the fair queue was at capacity.
	ShedQueueFull
	// ShedDeadline means the predicted queue wait exceeded the request's
	// remaining deadline, so waiting could only produce a late answer.
	ShedDeadline
	// ShedDraining means the server is shutting down; queued waiters are
	// released unserved so the drain window goes to in-flight work.
	ShedDraining
	// ShedCanceled means the caller's context ended while queued (the
	// client went away).
	ShedCanceled
)

// String names the reason for counters and logs.
func (r ShedReason) String() string {
	switch r {
	case ShedNone:
		return "none"
	case ShedRate:
		return "rate"
	case ShedQueueFull:
		return "queue-full"
	case ShedDeadline:
		return "deadline"
	case ShedDraining:
		return "draining"
	case ShedCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// Config tunes a Controller. The zero value admits 32 concurrent requests
// with no queue and no rate limit.
type Config struct {
	// Slots bounds concurrently admitted requests (default 32).
	Slots int
	// QueueDepth bounds waiters beyond the slots; 0 sheds immediately
	// once every slot is busy.
	QueueDepth int
	// Rate is the per-tenant token refill rate in requests per second;
	// <= 0 disables per-tenant rate limiting.
	Rate float64
	// Burst is the per-tenant bucket capacity (default: one second of
	// Rate, at least 1).
	Burst float64
	// Weights gives named tenants a larger fair share of queue grants
	// (default weight 1). A weight-3 tenant drains three queued requests
	// for every one of a weight-1 tenant under contention.
	Weights map[string]int
	// Now is the clock, stubbed in tests (default time.Now).
	Now func() time.Time
}

// normalize fills defaults.
func (c Config) normalize() Config {
	if c.Slots <= 0 {
		c.Slots = 32
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.Rate > 0 && c.Burst < 1 {
		c.Burst = c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// waiter is one queued request. granted is written under the controller
// mutex before ch is closed, so the woken goroutine reads it race-free.
type waiter struct {
	ch      chan struct{}
	granted bool
}

// tenantState is the per-tenant queue and rate state.
type tenantState struct {
	bucket  bucket
	waiters []*waiter
	// pass is the stride-scheduler virtual time: the waiting tenant with
	// the lowest pass receives the next freed slot, and each grant
	// advances pass by stride = 1/weight — so a weight-w tenant is
	// granted w slots for every one of a weight-1 tenant.
	pass     float64
	stride   float64
	lastSeen time.Time
}

// Controller is the tenant-aware admission gate. See the package comment.
type Controller struct {
	cfg Config

	mu       sync.Mutex
	inFlight int
	queued   int
	draining bool
	tenants  map[string]*tenantState
	// ewma tracks recent service time for queue-wait prediction.
	ewma     time.Duration
	acquires uint64
}

// NewController returns a controller for cfg.
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.normalize(), tenants: make(map[string]*tenantState)}
}

// Ticket is one admitted slot; Release it when the work completes.
type Ticket struct {
	c     *Controller
	start time.Time
	once  sync.Once
}

// Release frees the slot and feeds the held duration into the service-time
// estimate. Safe to call more than once.
func (t *Ticket) Release() {
	t.once.Do(func() {
		c := t.c
		c.mu.Lock()
		c.observeLocked(c.cfg.Now().Sub(t.start))
		c.releaseLocked()
		c.mu.Unlock()
	})
}

// Result reports an admission decision.
type Result struct {
	// Ticket is non-nil when the request was admitted.
	Ticket *Ticket
	// Shed explains a refusal when Ticket is nil.
	Shed ShedReason
	// Waited is the time spent queued before the decision.
	Waited time.Duration
}

// Acquire admits the tenant's request or sheds it. It blocks in the fair
// queue until a slot frees, the context ends, or the controller drains.
func (c *Controller) Acquire(ctx context.Context, tenant string) Result {
	c.mu.Lock()
	now := c.cfg.Now()
	if c.draining {
		c.mu.Unlock()
		return Result{Shed: ShedDraining}
	}
	t := c.tenantLocked(tenant, now)
	if c.cfg.Rate > 0 && !t.bucket.take(now, c.cfg.Rate, c.cfg.Burst) {
		c.mu.Unlock()
		return Result{Shed: ShedRate}
	}
	// Fast path: a free slot and nobody queued ahead.
	if c.inFlight < c.cfg.Slots && c.queued == 0 {
		c.inFlight++
		c.mu.Unlock()
		return Result{Ticket: &Ticket{c: c, start: now}}
	}
	if c.queued >= c.cfg.QueueDepth {
		c.mu.Unlock()
		return Result{Shed: ShedQueueFull}
	}
	// Deadline-aware shed: if the predicted wait already exceeds the
	// remaining deadline, a queued answer could only arrive late.
	if dl, ok := ctx.Deadline(); ok {
		if est := c.estWaitLocked(); est > dl.Sub(now) {
			c.mu.Unlock()
			return Result{Shed: ShedDeadline}
		}
	}
	w := &waiter{ch: make(chan struct{})}
	if len(t.waiters) == 0 {
		// Stride join rule: a tenant entering the queue starts at the
		// current minimum pass, so idling never banks credit.
		if min, ok := c.minActivePassLocked(); ok && min > t.pass {
			t.pass = min
		}
	}
	t.waiters = append(t.waiters, w)
	c.queued++
	c.mu.Unlock()

	select {
	case <-w.ch:
		waited := c.cfg.Now().Sub(now)
		c.mu.Lock()
		granted := w.granted
		c.mu.Unlock()
		if !granted {
			return Result{Shed: ShedDraining, Waited: waited}
		}
		return Result{Ticket: &Ticket{c: c, start: c.cfg.Now()}, Waited: waited}
	case <-ctx.Done():
		c.mu.Lock()
		if w.granted {
			// The grant raced the cancellation; give the slot onward.
			c.releaseLocked()
		} else {
			c.removeWaiterLocked(tenant, w)
		}
		c.mu.Unlock()
		return Result{Shed: ShedCanceled, Waited: c.cfg.Now().Sub(now)}
	}
}

// tenantLocked returns the tenant state, creating it on first use and
// occasionally sweeping long-idle tenants so the map stays bounded.
func (c *Controller) tenantLocked(name string, now time.Time) *tenantState {
	c.acquires++
	if c.acquires%256 == 0 {
		for k, t := range c.tenants {
			if len(t.waiters) == 0 && now.Sub(t.lastSeen) > 10*time.Minute {
				delete(c.tenants, k)
			}
		}
	}
	t := c.tenants[name]
	if t == nil {
		weight := 1
		if w, ok := c.cfg.Weights[name]; ok && w > 0 {
			weight = w
		}
		t = &tenantState{stride: 1 / float64(weight)}
		c.tenants[name] = t
	}
	t.lastSeen = now
	return t
}

// minActivePassLocked returns the lowest pass among tenants with waiters.
func (c *Controller) minActivePassLocked() (float64, bool) {
	min, ok := 0.0, false
	for _, t := range c.tenants {
		if len(t.waiters) == 0 {
			continue
		}
		if !ok || t.pass < min {
			min, ok = t.pass, true
		}
	}
	return min, ok
}

// releaseLocked hands the freed slot to the fairest waiter, or frees it.
func (c *Controller) releaseLocked() {
	if c.grantLocked() {
		return
	}
	c.inFlight--
}

// grantLocked wakes the head waiter of the waiting tenant with the lowest
// stride pass; false when nobody is queued. The slot count is unchanged —
// the grant transfers the releasing request's slot.
func (c *Controller) grantLocked() bool {
	var best *tenantState
	for _, t := range c.tenants {
		if len(t.waiters) == 0 {
			continue
		}
		if best == nil || t.pass < best.pass {
			best = t
		}
	}
	if best == nil {
		return false
	}
	w := best.waiters[0]
	best.waiters = best.waiters[1:]
	c.queued--
	best.pass += best.stride
	w.granted = true
	close(w.ch)
	return true
}

// removeWaiterLocked drops an abandoned waiter from its tenant queue.
func (c *Controller) removeWaiterLocked(tenant string, w *waiter) {
	t := c.tenants[tenant]
	if t == nil {
		return
	}
	for i, q := range t.waiters {
		if q == w {
			t.waiters = append(t.waiters[:i], t.waiters[i+1:]...)
			c.queued--
			return
		}
	}
}

// observeLocked folds one service time into the EWMA wait predictor.
func (c *Controller) observeLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if c.ewma == 0 {
		c.ewma = d
		return
	}
	c.ewma = (3*c.ewma + d) / 4
}

// estWaitLocked predicts the queue wait for a newly queued request: the
// requests ahead of it, pipelined across the slots, at the recent average
// service time.
func (c *Controller) estWaitLocked() time.Duration {
	if c.ewma == 0 {
		return 0
	}
	return time.Duration(float64(c.ewma) * float64(c.queued+1) / float64(c.cfg.Slots))
}

// RetryAfter derives the hint attached to shed responses from current
// load: the predicted time until a new arrival would reach a slot,
// clamped to [1s, 60s] so clients neither hammer nor give up.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	est := c.estWaitLocked()
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// Drain sheds every queued waiter and refuses all future admissions, so a
// graceful shutdown spends its grace window on in-flight work only.
// In-flight tickets are unaffected.
func (c *Controller) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.draining = true
	for _, t := range c.tenants {
		for _, w := range t.waiters {
			close(w.ch) // granted stays false: the waiter sheds
		}
		t.waiters = nil
	}
	c.queued = 0
}

// InFlight reports currently admitted (unreleased) requests.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inFlight
}

// QueueLen reports currently queued waiters.
func (c *Controller) QueueLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}
