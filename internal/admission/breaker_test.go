package admission

import (
	"testing"
	"time"
)

// newTestBreaker builds a 3-blowout breaker with a 10s cooldown on a
// manual clock.
func newTestBreaker() (*Breaker, *fakeClock) {
	clk := newFakeClock()
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: 10 * time.Second, Now: clk.Now})
	return b, clk
}

func TestBreakerTripsOnConsecutiveBlowoutsOnly(t *testing.T) {
	b, _ := newTestBreaker()
	b.Record(true)
	b.Record(true)
	b.Record(false) // a success resets the streak
	b.Record(true)
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed (streak broken by a success)", b.State())
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 consecutive blowouts = %v, want open", b.State())
	}
	if b.Allow() {
		t.Error("open breaker must refuse the protected path")
	}
	if b.Trips() != 1 {
		t.Errorf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenProbeClosesOnSuccess(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	if b.Allow() {
		t.Fatal("breaker must stay open inside the cooldown")
	}
	if rem := b.CooldownRemaining(); rem != 10*time.Second {
		t.Errorf("CooldownRemaining = %v, want 10s", rem)
	}
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: one half-open probe must be admitted")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("only one probe may be outstanding")
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Error("closed breaker must admit")
	}
}

func TestBreakerHalfOpenProbeReopensOnBlowout(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", b.State())
	}
	if b.Allow() {
		t.Error("reopened breaker must refuse until the next cooldown")
	}
	if b.Trips() != 2 {
		t.Errorf("trips = %d, want 2", b.Trips())
	}
}

func TestBreakerLostProbeIsRearmed(t *testing.T) {
	b, clk := newTestBreaker()
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	// The probe's outcome never arrives (client hung up). After another
	// cooldown the breaker sends a fresh probe instead of wedging.
	clk.Advance(11 * time.Second)
	if !b.Allow() {
		t.Error("lost probe must be re-armed after a cooldown")
	}
}

func TestBreakerDisabledWithoutThreshold(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.Enabled() {
		t.Fatal("zero threshold must disable the breaker")
	}
	for i := 0; i < 100; i++ {
		b.Record(true)
	}
	if !b.Allow() || b.State() != BreakerClosed {
		t.Error("disabled breaker must always admit")
	}
}

func TestBreakerStateStrings(t *testing.T) {
	want := map[BreakerState]string{BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open"}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
}
