package admission

import (
	"sort"
	"sync"
	"time"
)

// Step is one rung of the brownout degradation ladder. Higher steps trade
// answer quality for latency headroom; the top rung sheds.
type Step int

const (
	// StepFull plans with the configured holistic budget.
	StepFull Step = iota
	// StepReduced plans with a cut-down budget (fewer MCTS rounds, a
	// smaller tree): cheaper speech, still holistic.
	StepReduced
	// StepPrior answers with the prior baseline: exact evaluation, no
	// planning — the degrade-not-error second path.
	StepPrior
	// StepShed refuses new queries until latency recovers.
	StepShed
)

// NumSteps is the ladder length.
const NumSteps = 4

// String names the step for counters and logs.
func (s Step) String() string {
	switch s {
	case StepFull:
		return "full"
	case StepReduced:
		return "reduced"
	case StepPrior:
		return "prior"
	case StepShed:
		return "shed"
	default:
		return "unknown"
	}
}

// BrownoutConfig tunes a Brownout controller.
type BrownoutConfig struct {
	// Target is the p99 service-latency goal; 0 disables the controller
	// (Step stays StepFull).
	Target time.Duration
	// Window is the sliding sample count the p99 is computed over
	// (default 64).
	Window int
	// MinSamples gates step decisions until the window has this many
	// fresh samples (default Window/4), so one slow request after a step
	// change cannot whipsaw the ladder.
	MinSamples int
	// Hold is the minimum dwell time between step changes (default 2s).
	Hold time.Duration
	// Recover scales Target for stepping back down: the ladder descends
	// when p99 < Recover*Target (default 0.5). The gap is the hysteresis
	// band that prevents oscillation at the threshold.
	Recover float64
	// Now is the clock, stubbed in tests (default time.Now).
	Now func() time.Time
}

// normalize fills defaults.
func (c BrownoutConfig) normalize() BrownoutConfig {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 4
		if c.MinSamples < 4 {
			c.MinSamples = 4
		}
	}
	if c.Hold <= 0 {
		c.Hold = 2 * time.Second
	}
	if c.Recover <= 0 || c.Recover >= 1 {
		c.Recover = 0.5
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Brownout watches a sliding p99 of service latencies and walks the
// degradation ladder: up a step while the p99 overshoots the target, down
// a step once it has clearly recovered. Samples are cleared on every step
// change so each rung is judged by its own latencies, not its
// predecessor's backlog.
type Brownout struct {
	cfg BrownoutConfig

	mu          sync.Mutex
	samples     []time.Duration
	next        int
	count       int
	step        Step
	lastChange  time.Time
	lastP99     time.Duration
	transitions [NumSteps]int64
}

// NewBrownout returns a controller for cfg.
func NewBrownout(cfg BrownoutConfig) *Brownout {
	cfg = cfg.normalize()
	return &Brownout{cfg: cfg, samples: make([]time.Duration, cfg.Window)}
}

// Enabled reports whether a latency target is set.
func (b *Brownout) Enabled() bool { return b.cfg.Target > 0 }

// Step returns the current ladder rung.
func (b *Brownout) Step() Step {
	if !b.Enabled() {
		return StepFull
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.step
}

// Observe records one service latency and re-evaluates the ladder.
func (b *Brownout) Observe(d time.Duration) {
	if !b.Enabled() {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.samples[b.next] = d
	b.next = (b.next + 1) % len(b.samples)
	if b.count < len(b.samples) {
		b.count++
	}
	if b.count < b.cfg.MinSamples {
		return
	}
	b.lastP99 = percentile(b.samples[:b.count], 0.99)
	now := b.cfg.Now()
	if !b.lastChange.IsZero() && now.Sub(b.lastChange) < b.cfg.Hold {
		return
	}
	switch {
	case b.lastP99 > b.cfg.Target && b.step < StepShed:
		b.setStepLocked(b.step+1, now)
	case float64(b.lastP99) < b.cfg.Recover*float64(b.cfg.Target) && b.step > StepFull:
		b.setStepLocked(b.step-1, now)
	}
}

// setStepLocked moves to step and resets the window so the new rung is
// judged on fresh samples.
func (b *Brownout) setStepLocked(step Step, now time.Time) {
	b.step = step
	b.lastChange = now
	b.transitions[step]++
	b.next, b.count = 0, 0
}

// BrownoutSnapshot reports the controller state for metrics.
type BrownoutSnapshot struct {
	// Step is the current rung.
	Step Step `json:"-"`
	// StepName is its spoken name.
	StepName string `json:"step"`
	// P99MS is the last computed sliding p99 in milliseconds.
	P99MS float64 `json:"p99Ms"`
	// Transitions counts entries into each rung by name (the ladder
	// engaging and recovering).
	Transitions map[string]int64 `json:"transitions"`
}

// Snapshot returns the current state.
func (b *Brownout) Snapshot() BrownoutSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	tr := make(map[string]int64, NumSteps)
	for i, n := range b.transitions {
		if n > 0 {
			tr[Step(i).String()] = n
		}
	}
	return BrownoutSnapshot{
		Step:        b.step,
		StepName:    b.step.String(),
		P99MS:       float64(b.lastP99) / float64(time.Millisecond),
		Transitions: tr,
	}
}

// percentile returns the p-quantile of samples (copied, then sorted).
func percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
