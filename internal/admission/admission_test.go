package admission

import (
	"context"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock for deterministic tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// The base is the real present so context deadlines derived from fake
// readings are not already expired in real time (ctx timers run on the
// real clock even when the controller runs on this one).
func newFakeClock() *fakeClock { return &fakeClock{t: time.Now()} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// grant is one waiter's outcome, tagged with its tenant.
type grant struct {
	tenant string
	res    Result
}

// fillQueue admits one blocking ticket, then enqueues one waiter per
// listed tenant in order. Each waiter reports its outcome on the shared
// channel; since slots hand over one at a time (the test releases each
// granted ticket before reading the next grant), the channel order is the
// grant order.
func fillQueue(t *testing.T, c *Controller, tenants []string) (*Ticket, chan grant) {
	t.Helper()
	hold := c.Acquire(context.Background(), "holder")
	if hold.Ticket == nil {
		t.Fatalf("holder not admitted: %v", hold.Shed)
	}
	grants := make(chan grant, len(tenants))
	for i, tenant := range tenants {
		tenant := tenant
		go func() { grants <- grant{tenant, c.Acquire(context.Background(), tenant)} }()
		waitFor(t, func() bool { return c.QueueLen() == i+1 })
	}
	return hold.Ticket, grants
}

// nextGrant reads one granted waiter, failing on shed or timeout.
func nextGrant(t *testing.T, grants chan grant) grant {
	t.Helper()
	select {
	case g := <-grants:
		if g.res.Ticket == nil {
			t.Fatalf("waiter for %s shed with %v, want grant", g.tenant, g.res.Shed)
		}
		return g
	case <-time.After(5 * time.Second):
		t.Fatal("no grant arrived")
		return grant{}
	}
}

func TestAcquireFastPathAndRelease(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 2, Now: clk.Now})
	r1 := c.Acquire(context.Background(), "a")
	r2 := c.Acquire(context.Background(), "a")
	if r1.Ticket == nil || r2.Ticket == nil {
		t.Fatalf("free slots must admit: %v %v", r1.Shed, r2.Shed)
	}
	if got := c.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	// No queue configured: the third request sheds immediately.
	r3 := c.Acquire(context.Background(), "a")
	if r3.Ticket != nil || r3.Shed != ShedQueueFull {
		t.Fatalf("saturated zero-queue controller: got %v, want ShedQueueFull", r3.Shed)
	}
	r1.Ticket.Release()
	r1.Ticket.Release() // double release must be harmless
	if got := c.InFlight(); got != 1 {
		t.Fatalf("InFlight after release = %d, want 1", got)
	}
	r2.Ticket.Release()
}

func TestFairQueueAlternatesTenants(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 16, Now: clk.Now})
	// Tenant a floods the queue with 4 requests before b's single one.
	hold, grants := fillQueue(t, c, []string{"a", "a", "a", "a", "b"})

	hold.Release()
	g1 := nextGrant(t, grants)
	g1.res.Ticket.Release()
	g2 := nextGrant(t, grants)
	g2.res.Ticket.Release()
	// Fair sharing: the first two grants cover both tenants even though a
	// queued four requests before b's one.
	if g1.tenant == g2.tenant {
		t.Errorf("first two grants both went to %s; want one per tenant", g1.tenant)
	}
	for i := 0; i < 3; i++ {
		nextGrant(t, grants).res.Ticket.Release()
	}
}

func TestWeightedFairSharing(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{
		Slots: 1, QueueDepth: 16,
		Weights: map[string]int{"big": 2},
		Now:     clk.Now,
	})
	hold, grants := fillQueue(t, c, []string{"big", "big", "big", "big", "small", "small"})

	counts := map[string]int{}
	firstFour := map[string]int{}
	hold.Release()
	for i := 0; i < 6; i++ {
		g := nextGrant(t, grants)
		counts[g.tenant]++
		if i < 4 {
			firstFour[g.tenant]++
		}
		g.res.Ticket.Release()
	}
	if counts["big"] != 4 || counts["small"] != 2 {
		t.Fatalf("grants = %v, want big:4 small:2", counts)
	}
	// Weight 2 means big drains two requests for every one of small's
	// within the contended window, not just eventually.
	if firstFour["big"] < 2 || firstFour["small"] < 1 {
		t.Errorf("first four grants = %v; want big >= 2 and small >= 1", firstFour)
	}
}

func TestQueueFullSheds(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 1, Now: clk.Now})
	hold, grants := fillQueue(t, c, []string{"a"})
	r := c.Acquire(context.Background(), "b")
	if r.Shed != ShedQueueFull {
		t.Errorf("over-capacity request shed = %v, want ShedQueueFull", r.Shed)
	}
	hold.Release()
	nextGrant(t, grants).res.Ticket.Release()
}

func TestDeadlineAwareShed(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 8, Now: clk.Now})
	// Teach the EWMA a 1s service time.
	tk := c.Acquire(context.Background(), "warm")
	clk.Advance(time.Second)
	tk.Ticket.Release()

	hold, grants := fillQueue(t, c, []string{"a"})

	// Predicted wait is ~2s (two ahead at 1s each on one slot); a request
	// with only 100ms of deadline left must shed immediately.
	ctx, cancel := context.WithDeadline(context.Background(), clk.Now().Add(100*time.Millisecond))
	defer cancel()
	if r := c.Acquire(ctx, "late"); r.Shed != ShedDeadline {
		t.Errorf("doomed request shed = %v, want ShedDeadline", r.Shed)
	}
	// A patient request still queues.
	ctx2, cancel2 := context.WithDeadline(context.Background(), clk.Now().Add(time.Hour))
	defer cancel2()
	done := make(chan Result, 1)
	go func() { done <- c.Acquire(ctx2, "patient") }()
	waitFor(t, func() bool { return c.QueueLen() == 2 })

	// Drain both waiters; the tied stride passes make their order
	// nondeterministic, so accept grants from either.
	hold.Release()
	for i := 0; i < 2; i++ {
		select {
		case g := <-grants:
			if g.res.Ticket == nil {
				t.Fatalf("waiter %s shed with %v", g.tenant, g.res.Shed)
			}
			g.res.Ticket.Release()
		case r := <-done:
			if r.Ticket == nil {
				t.Fatalf("patient waiter shed with %v", r.Shed)
			}
			r.Ticket.Release()
		case <-time.After(5 * time.Second):
			t.Fatal("waiter never granted")
		}
	}
}

func TestRateLimitSheds(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 4, Rate: 1, Burst: 1, Now: clk.Now})
	r1 := c.Acquire(context.Background(), "a")
	if r1.Ticket == nil {
		t.Fatalf("burst request shed: %v", r1.Shed)
	}
	r1.Ticket.Release()
	if r2 := c.Acquire(context.Background(), "a"); r2.Shed != ShedRate {
		t.Errorf("drained bucket shed = %v, want ShedRate", r2.Shed)
	}
	// Another tenant has its own bucket.
	if r3 := c.Acquire(context.Background(), "b"); r3.Ticket == nil {
		t.Errorf("tenant b shed with %v despite fresh bucket", r3.Shed)
	} else {
		r3.Ticket.Release()
	}
	clk.Advance(time.Second)
	if r4 := c.Acquire(context.Background(), "a"); r4.Ticket == nil {
		t.Errorf("refilled bucket shed with %v", r4.Shed)
	} else {
		r4.Ticket.Release()
	}
}

func TestCanceledWaiterLeavesQueue(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 4, Now: clk.Now})
	hold := c.Acquire(context.Background(), "holder")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- c.Acquire(ctx, "gone") }()
	waitFor(t, func() bool { return c.QueueLen() == 1 })
	cancel()
	if r := <-done; r.Shed != ShedCanceled {
		t.Errorf("canceled waiter shed = %v, want ShedCanceled", r.Shed)
	}
	if got := c.QueueLen(); got != 0 {
		t.Errorf("QueueLen after cancel = %d, want 0", got)
	}
	// The slot still hands over cleanly afterwards.
	hold.Ticket.Release()
	if r := c.Acquire(context.Background(), "next"); r.Ticket == nil {
		t.Errorf("post-cancel acquire shed with %v", r.Shed)
	} else {
		r.Ticket.Release()
	}
}

func TestDrainShedsQueueAndRefusesNewWork(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 8, Now: clk.Now})
	hold, grants := fillQueue(t, c, []string{"a", "b"})
	c.Drain()
	for i := 0; i < 2; i++ {
		if g := <-grants; g.res.Shed != ShedDraining {
			t.Errorf("waiter %s shed = %v, want ShedDraining", g.tenant, g.res.Shed)
		}
	}
	if r := c.Acquire(context.Background(), "late"); r.Shed != ShedDraining {
		t.Errorf("post-drain acquire shed = %v, want ShedDraining", r.Shed)
	}
	// The in-flight ticket is unaffected and still releases.
	if got := c.InFlight(); got != 1 {
		t.Errorf("InFlight during drain = %d, want 1", got)
	}
	hold.Release()
	if got := c.InFlight(); got != 0 {
		t.Errorf("InFlight after drain release = %d, want 0", got)
	}
}

func TestRetryAfterGrowsWithLoad(t *testing.T) {
	clk := newFakeClock()
	c := NewController(Config{Slots: 1, QueueDepth: 16, Now: clk.Now})
	if got := c.RetryAfter(); got != time.Second {
		t.Errorf("idle RetryAfter = %v, want the 1s floor", got)
	}
	// Teach a 4s service time, then queue three waiters: the predicted
	// wait — and so the hint — should be far above the floor.
	tk := c.Acquire(context.Background(), "warm")
	clk.Advance(4 * time.Second)
	tk.Ticket.Release()
	hold, grants := fillQueue(t, c, []string{"a", "b", "c"})
	if got := c.RetryAfter(); got < 10*time.Second {
		t.Errorf("loaded RetryAfter = %v, want >= 10s (4s ewma x 4 ahead)", got)
	}
	hold.Release()
	for i := 0; i < 3; i++ {
		nextGrant(t, grants).res.Ticket.Release()
	}
}

func TestShedReasonStrings(t *testing.T) {
	want := map[ShedReason]string{
		ShedNone: "none", ShedRate: "rate", ShedQueueFull: "queue-full",
		ShedDeadline: "deadline", ShedDraining: "draining", ShedCanceled: "canceled",
	}
	for r, name := range want {
		if r.String() != name {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), name)
		}
	}
}
