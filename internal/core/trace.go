package core

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Trace records the holistic planner's decisions for observability: how
// many rows and tree samples each sentence's planning window saw, which
// candidates were leading when the sentence was committed, and the
// playback overlap achieved. Attach one via Config.Trace.
type Trace struct {
	// Sentences holds one record per committed sentence, in order.
	Sentences []SentenceTrace
	// TreeNodes is the search tree size after construction.
	TreeNodes int
	// ScaleEstimate is the grand estimate that seeded the baselines.
	ScaleEstimate float64
}

// SentenceTrace describes the planning window behind one sentence.
type SentenceTrace struct {
	// Sentence is the committed text.
	Sentence string
	// Rounds is the number of planning rounds in the window.
	Rounds int
	// RowsRead is the number of table rows consumed in the window.
	RowsRead int64
	// TreeSamples is the number of successful MCTS rounds in the window.
	TreeSamples int64
	// BestMeanReward is the committed child's mean sampled reward.
	BestMeanReward float64
	// BestVisits is the committed child's visit count.
	BestVisits int64
	// RunnerUp is the second-best candidate's last sentence (empty when
	// there was no competition).
	RunnerUp string
	// RunnerUpReward is the runner-up's mean reward.
	RunnerUpReward float64
	// PlanningTime is the simulated/wall time the window spanned.
	PlanningTime time.Duration
}

// Summary renders the trace as a human-readable report.
func (t *Trace) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "search tree: %d nodes, scale estimate %g\n", t.TreeNodes, t.ScaleEstimate)
	for i, s := range t.Sentences {
		fmt.Fprintf(&b, "sentence %d: %q\n", i+1, s.Sentence)
		fmt.Fprintf(&b, "  window: %d rounds, %d rows, %d tree samples, %v\n",
			s.Rounds, s.RowsRead, s.TreeSamples, s.PlanningTime)
		fmt.Fprintf(&b, "  committed at reward %.3f over %d visits", s.BestMeanReward, s.BestVisits)
		if s.RunnerUp != "" {
			fmt.Fprintf(&b, " (runner-up %.3f: %q)", s.RunnerUpReward, s.RunnerUp)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// WriteTo writes the summary to w, implementing io.WriterTo.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, t.Summary())
	return int64(n), err
}
