package core

import (
	"testing"
)

// TestResampleEstimatesKnob verifies the ablation wiring: the resample
// mode must run and, on a 0/1 measure, generally hurt quality relative to
// the running-mean default.
func TestResampleEstimatesKnob(t *testing.T) {
	d, q := flightsQuery(t, 20000, 95)
	var defSum, resSum float64
	for seed := int64(0); seed < 3; seed++ {
		cfg := testConfig(seed)
		out, err := NewHolistic(d, q, cfg).Vocalize()
		if err != nil {
			t.Fatalf("default: %v", err)
		}
		quality, _ := ExactQuality(d, q, out, cfg)
		defSum += quality

		rcfg := cfg
		rcfg.ResampleEstimates = true
		rcfg.ResampleSize = 10
		out, err = NewHolistic(d, q, rcfg).Vocalize()
		if err != nil {
			t.Fatalf("resample: %v", err)
		}
		quality, _ = ExactQuality(d, q, out, rcfg)
		resSum += quality
	}
	if resSum > defSum {
		t.Errorf("10-sample resample total quality %v should not beat running mean %v",
			resSum, defSum)
	}
}

// TestUniformPolicyKnob verifies the UCT-off wiring runs end to end.
func TestUniformPolicyKnob(t *testing.T) {
	d, q := flightsQuery(t, 20000, 96)
	cfg := testConfig(40)
	cfg.UniformTreePolicy = true
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("uniform policy: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Error("uniform policy should still produce a speech")
	}
}

// TestDisjointScopesKnob verifies the absolute-refinement emulation: no
// speech may contain overlapping refinement scopes.
func TestDisjointScopesKnob(t *testing.T) {
	d, q := flightsQuery(t, 20000, 97)
	cfg := testConfig(41)
	cfg.DisjointScopes = true
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("disjoint scopes: %v", err)
	}
	refs := out.Speech.Refinements
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			// Same-hierarchy siblings are fine; cross-hierarchy pairs
			// always overlap and must not appear.
			if refs[i].Preds[0].Hierarchy() != refs[j].Preds[0].Hierarchy() {
				t.Errorf("overlapping scopes in disjoint mode: %q / %q",
					refs[i].Text(), refs[j].Text())
			}
		}
	}
}
