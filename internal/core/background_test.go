package core

import (
	"strings"
	"testing"
	"time"
)

// backgroundConfig runs on the real clock with a fast speaking rate so
// playback windows are short but real.
func backgroundConfig(seed int64) Config {
	return Config{
		Percents:             []int{50, 100},
		Seed:                 seed,
		SpeakingRate:         4000, // ~50 ms per sentence
		MaxRoundsPerSentence: 3000,
		MinRounds:            64,
		BackgroundSampling:   true,
	}
}

func TestBackgroundSamplingProducesSpeech(t *testing.T) {
	d, q := flightsQuery(t, 50000, 101)
	out, err := NewHolistic(d, q, backgroundConfig(1)).Vocalize()
	if err != nil {
		t.Fatalf("background holistic: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Fatal("no baseline")
	}
	if out.RowsRead == 0 {
		t.Error("background scan should have read rows")
	}
	if out.TreeSamples == 0 {
		t.Error("planner should have sampled the tree")
	}
	quality, err := ExactQuality(d, q, out, backgroundConfig(1))
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if quality <= 0 {
		t.Errorf("quality = %v", quality)
	}
}

func TestBackgroundSamplingLatencyIsImmediate(t *testing.T) {
	d, q := flightsQuery(t, 100000, 102)
	out, err := NewHolistic(d, q, backgroundConfig(2)).Vocalize()
	if err != nil {
		t.Fatalf("background holistic: %v", err)
	}
	if out.Latency > 100*time.Millisecond {
		t.Errorf("latency %v should be immediate", out.Latency)
	}
	if !strings.HasPrefix(out.Transcript[0].Text, "Considering") {
		t.Error("preamble should speak first")
	}
}

func TestBackgroundSamplingWithUncertaintyWarn(t *testing.T) {
	d, q := flightsQuery(t, 50000, 103)
	cfg := backgroundConfig(3)
	cfg.Uncertainty = UncertaintyWarn
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("background holistic: %v", err)
	}
	// With 50k rows scanned in the background, confidence is high.
	if out.Warning != "" {
		t.Errorf("unexpected warning %q", out.Warning)
	}
}

func TestBackgroundSamplingWithBounds(t *testing.T) {
	d, q := flightsQuery(t, 50000, 104)
	cfg := backgroundConfig(4)
	cfg.Uncertainty = UncertaintyBounds
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("background holistic: %v", err)
	}
	if len(out.BoundsSpoken) == 0 {
		t.Error("bounds mode should speak intervals from the async cache")
	}
}

func TestBackgroundSamplingSharded(t *testing.T) {
	d, q := flightsQuery(t, 50000, 105)
	cfg := backgroundConfig(5)
	cfg.SamplerShards = 4
	cfg.Uncertainty = UncertaintyBounds
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("sharded holistic: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Fatal("no baseline")
	}
	if out.RowsRead == 0 {
		t.Error("sharded scan should have read rows")
	}
	if len(out.BoundsSpoken) == 0 {
		t.Error("bounds mode should speak intervals from the sharded caches")
	}
	quality, err := ExactQuality(d, q, out, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if quality <= 0 {
		t.Errorf("quality = %v", quality)
	}
}
