package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRecordsPlannerDecisions(t *testing.T) {
	d, q := flightsQuery(t, 20000, 91)
	cfg := testConfig(30)
	trace := &Trace{}
	cfg.Trace = trace
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if trace.TreeNodes == 0 {
		t.Error("tree size not recorded")
	}
	if trace.ScaleEstimate <= 0 {
		t.Error("scale estimate not recorded")
	}
	if len(trace.Sentences) != out.Speech.NumFragments() {
		t.Fatalf("trace sentences = %d, fragments = %d",
			len(trace.Sentences), out.Speech.NumFragments())
	}
	var totalRows, totalSamples int64
	for i, st := range trace.Sentences {
		if st.Sentence == "" {
			t.Errorf("sentence %d has no text", i)
		}
		if st.Rounds == 0 {
			t.Errorf("sentence %d has no planning rounds", i)
		}
		if st.BestVisits == 0 {
			t.Errorf("sentence %d committed without visits", i)
		}
		totalRows += st.RowsRead
		totalSamples += st.TreeSamples
	}
	// Attributed windows cover everything except the initial batch and
	// the final window that plays out the last sentence (Algorithm 1
	// keeps sampling until playback ends, with no commit to attribute
	// the work to).
	if totalRows > out.RowsRead {
		t.Errorf("window rows %d exceed total %d", totalRows, out.RowsRead)
	}
	if totalSamples == 0 || totalSamples > out.TreeSamples {
		t.Errorf("window samples %d vs total %d", totalSamples, out.TreeSamples)
	}
}

func TestTraceRunnerUp(t *testing.T) {
	d, q := flightsQuery(t, 20000, 92)
	cfg := testConfig(31)
	trace := &Trace{}
	cfg.Trace = trace
	if _, err := NewHolistic(d, q, cfg).Vocalize(); err != nil {
		t.Fatalf("holistic: %v", err)
	}
	// The first commit (baseline) has several visited competitors.
	first := trace.Sentences[0]
	if first.RunnerUp == "" {
		t.Error("baseline commit should have a runner-up")
	}
	if first.RunnerUpReward > first.BestMeanReward {
		t.Error("runner-up cannot out-score the committed sentence")
	}
}

func TestTraceSummary(t *testing.T) {
	d, q := flightsQuery(t, 20000, 93)
	cfg := testConfig(32)
	trace := &Trace{}
	cfg.Trace = trace
	if _, err := NewHolistic(d, q, cfg).Vocalize(); err != nil {
		t.Fatalf("holistic: %v", err)
	}
	sum := trace.Summary()
	for _, frag := range []string{"search tree:", "sentence 1:", "window:", "committed at reward"} {
		if !strings.Contains(sum, frag) {
			t.Errorf("summary missing %q:\n%s", frag, sum)
		}
	}
	var buf bytes.Buffer
	n, err := trace.WriteTo(&buf)
	if err != nil || n == 0 {
		t.Errorf("WriteTo = %d, %v", n, err)
	}
	if buf.String() != sum {
		t.Error("WriteTo should emit the summary")
	}
}

func TestNoTraceByDefault(t *testing.T) {
	d, q := flightsQuery(t, 10000, 94)
	out, err := NewHolistic(d, q, testConfig(33)).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Error("vocalization without trace should still work")
	}
}
