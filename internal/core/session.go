package core

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/belief"
	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
	"repro/internal/table"
	"repro/internal/voice"
)

// session bundles the per-query machinery shared by the vocalizers:
// aggregate space, fragment generator, sampler+cache, belief model, and
// speaker. Vocalizers differ only in how they schedule these pieces.
type session struct {
	cfg     Config
	space   *olap.Space
	gen     *speech.Generator
	sampler *sampling.Sampler
	// async replaces the synchronous sampler when background sampling is
	// enabled — a single AsyncSampler or a ShardedSampler depending on
	// Config.SamplerShards; confidence queries then go through its locks.
	async   sampling.BackgroundSource
	model   *belief.Model
	speaker *voice.Speaker
	rng     *rand.Rand
}

// newSession validates the query and assembles the shared machinery.
// The belief model is created lazily (its σ depends on a scale estimate).
func newSession(d *olap.Dataset, q olap.Query, cfg Config) (*session, error) {
	cfg = cfg.Normalize()
	space, err := olap.NewSpace(d, q)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	gen := speech.NewGenerator(space, cfg.Prefs, cfg.Format)
	if cfg.Percents != nil {
		gen.Percents = cfg.Percents
	}
	if cfg.BaselineMultipliers != nil {
		gen.BaselineMultipliers = cfg.BaselineMultipliers
	}
	if cfg.MaxPredsPerRefinement > 1 {
		gen.MaxPredsPerRefinement = cfg.MaxPredsPerRefinement
	}
	gen.DisjointScopes = cfg.DisjointScopes
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler, err := sampling.NewSamplerWithScanner(space, newScanner(cfg, space, rng))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.ResampleEstimates {
		sampler.Cache().UseResample = true
		if cfg.ResampleSize > 0 {
			sampler.Cache().ResampleSize = cfg.ResampleSize
		}
	}
	return &session{
		cfg:     cfg,
		space:   space,
		gen:     gen,
		sampler: sampler,
		speaker: voice.NewSpeaker(cfg.Clock, cfg.SpeakingRate),
		rng:     rng,
	}, nil
}

// newScanner builds the row stream for a sampler: the configured override
// when set (fault injection, alternative orders), else the pseudo-random
// full-table scan.
func newScanner(cfg Config, space *olap.Space, rng *rand.Rand) table.Scanner {
	if cfg.Scanner != nil {
		return cfg.Scanner(space.Dataset().Table(), rng)
	}
	return table.NewRandomScanner(space.Dataset().Table(), rng)
}

// sigmaFor derives the belief σ from the configured value or a scale
// estimate, guarding against degenerate scales.
func (s *session) sigmaFor(scale float64) float64 {
	if s.cfg.Sigma > 0 {
		return s.cfg.Sigma
	}
	sigma := belief.SigmaFromScale(scale)
	if sigma <= 0 {
		sigma = 1
	}
	return sigma
}

// buildModel instantiates the belief model for the given scale.
func (s *session) buildModel(scale float64) error {
	m, err := belief.NewModel(s.space, s.sigmaFor(scale))
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.model = m
	return nil
}

// evalFunc is SpeechDBeval (Algorithm 3): pick a random eligible aggregate,
// estimate its value from the given source, and reward the speech by the
// belief probability of that estimate. The source is the on-line cache for
// normal runs or a materialized sample view for warm starts.
func (s *session) evalFunc(est sampling.Estimator) mcts.EvalFunc {
	return func(sp *speech.Speech) (float64, bool) {
		a, ok := est.PickAggregate(s.rng)
		if !ok {
			return 0, false
		}
		e, ok := est.Estimate(a, s.rng)
		if !ok {
			return 0, false
		}
		return s.model.Reward(sp, a, e), true
	}
}

// seededEvalFunc is evalFunc for parallel tree sampling: randomness comes
// from the worker's private RNG instead of the session RNG, so workers
// never contend on (or race over) shared generator state. The estimator
// itself is safe to share: the synchronous cache is read-only during a
// sampling batch (rows are inserted between batches), and the background
// sources are internally locked.
func (s *session) seededEvalFunc(est sampling.Estimator) mcts.SeededEvalFunc {
	return func(sp *speech.Speech, rng *rand.Rand) (float64, bool) {
		a, ok := est.PickAggregate(rng)
		if !ok {
			return 0, false
		}
		e, ok := est.Estimate(a, rng)
		if !ok {
			return 0, false
		}
		return s.model.Reward(sp, a, e), true
	}
}

// seededEvalFactory builds a fresh seeded evaluator per planner worker,
// each backed by a private belief.RewardKernel: the kernel memoizes
// per-speech mean terms and hoists the CDF constants without any
// cross-worker sharing, and its rewards are bit-identical to Model.Reward
// (so switching a tree from SeededEval to SeededEvalFactory changes no
// sampled statistic, only the cost of producing them).
func (s *session) seededEvalFactory(est sampling.Estimator) func() mcts.SeededEvalFunc {
	return func() mcts.SeededEvalFunc {
		k := s.model.NewRewardKernel()
		return func(sp *speech.Speech, rng *rand.Rand) (float64, bool) {
			a, ok := est.PickAggregate(rng)
			if !ok {
				return 0, false
			}
			e, ok := est.Estimate(a, rng)
			if !ok {
				return 0, false
			}
			return k.Reward(sp, a, e), true
		}
	}
}

// simAdvance moves a simulated clock forward by the per-round cost;
// on a real clock time passes by itself.
func (s *session) simAdvance() {
	if sim, ok := s.cfg.Clock.(*voice.SimClock); ok {
		sim.Advance(s.cfg.SimRoundCost)
	}
}

// simCharge advances a simulated clock by the cost of building n tree
// nodes (no-op on the real clock or with SimNodeCost zero).
func (s *session) simCharge(nodes int) {
	if s.cfg.SimNodeCost <= 0 {
		return
	}
	if sim, ok := s.cfg.Clock.(*voice.SimClock); ok {
		sim.Advance(time.Duration(nodes) * s.cfg.SimNodeCost)
	}
}
