package core

import (
	"context"
	"testing"

	"repro/internal/olap"
	"repro/internal/speech"
)

// TestPlannerWorkersOneIsSequential pins the knob's backward
// compatibility: leaving PlannerWorkers unset and setting it to 1
// explicitly must produce identical runs (same speech, same rows read,
// same tree samples) — the single-worker path delegates to the
// sequential sampler before consuming any RNG state.
func TestPlannerWorkersOneIsSequential(t *testing.T) {
	d, q := flightsQuery(t, 20000, 98)
	run := func(workers int) *Output {
		cfg := testConfig(7)
		cfg.PlannerWorkers = workers
		out, err := NewHolistic(d, q, cfg).Vocalize()
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return out
	}
	def := run(0) // Normalize maps to 1
	one := run(1)
	if def.Text() != one.Text() {
		t.Errorf("speech differs:\n  default: %q\n  workers=1: %q", def.Text(), one.Text())
	}
	if def.RowsRead != one.RowsRead || def.TreeSamples != one.TreeSamples {
		t.Errorf("run statistics differ: rows %d/%d samples %d/%d",
			def.RowsRead, one.RowsRead, def.TreeSamples, one.TreeSamples)
	}
}

// TestPlannerWorkersParallelProducesValidSpeech runs holistic and
// unmerged with 4 planner workers end to end.
func TestPlannerWorkersParallelProducesValidSpeech(t *testing.T) {
	d, q := flightsQuery(t, 20000, 99)
	cfg := testConfig(8)
	cfg.PlannerWorkers = 4
	cfg.SamplesPerRound = 16

	hout, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if hout.Speech.Baseline == nil || !hout.Speech.Valid(speech.DefaultPrefs()) {
		t.Errorf("holistic parallel speech invalid: %q", hout.Speech.MainText())
	}
	if hout.TreeSamples == 0 {
		t.Error("holistic parallel run should sample the tree")
	}

	uout, err := NewUnmerged(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("unmerged: %v", err)
	}
	if uout.Speech.Baseline == nil || !uout.Speech.Valid(speech.DefaultPrefs()) {
		t.Errorf("unmerged parallel speech invalid: %q", uout.Speech.MainText())
	}
}

// TestOptimalMatchesScalarSearch re-runs the optimal plan-space search
// with the pre-scorer scalar implementation (Model.Quality per candidate)
// and requires the incremental-scorer search to choose the identical
// speech with the identical candidate count — the acceptance bar for
// swapping in the kernel ("unchanged math, only evaluation order").
func TestOptimalMatchesScalarSearch(t *testing.T) {
	d, q := flightsQuery(t, 20000, 100)
	cfg := testConfig(9)
	o := NewOptimal(d, q, cfg)
	s, err := newSession(d, q, cfg)
	if err != nil {
		t.Fatalf("newSession: %v", err)
	}
	result, err := olap.EvaluateSpace(s.space)
	if err != nil {
		t.Fatalf("EvaluateSpace: %v", err)
	}
	scale := result.GrandValue()
	if err := s.buildModel(scale); err != nil {
		t.Fatalf("buildModel: %v", err)
	}
	preamble := s.gen.NewPreamble()

	got, gotScored := o.searchBest(context.Background(), s, result, scale, preamble)

	// Reference: the scalar search exactly as it was before the scorer.
	var want *speech.Speech
	wantQ := -1.0
	var wantScored int64
	var extend func(sp *speech.Speech)
	extend = func(sp *speech.Speech) {
		qual := s.model.Quality(sp, result)
		wantScored++
		if qual > wantQ {
			wantQ = qual
			want = sp
		}
		if len(sp.Refinements) >= s.cfg.Prefs.MaxFragments {
			return
		}
		for _, r := range s.gen.Refinements(sp.Refinements) {
			ext := sp.Extend(r)
			if ext.Valid(s.cfg.Prefs) {
				extend(ext)
			}
		}
	}
	for _, b := range s.gen.BaselineCandidates(speech.SpeechScale(scale)) {
		extend(&speech.Speech{Preamble: preamble, Baseline: b})
	}

	if gotScored != wantScored {
		t.Errorf("scored %d candidates, scalar search scored %d", gotScored, wantScored)
	}
	if want == nil || got == nil {
		t.Fatal("both searches should find a speech")
	}
	if got.Text() != want.Text() {
		t.Errorf("chosen speech differs:\n  scorer: %q\n  scalar: %q", got.Text(), want.Text())
	}
}
