package core

import (
	"context"
	"fmt"

	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/speech"
)

// Unmerged is the no-pipelining ablation: it samples the database and the
// speech tree exactly like Holistic, but only for a fixed interactivity
// budget (500 ms) before playback starts, and then commits to the entire
// speech at once. Without overlapping planning and voice output it sees
// far fewer samples per sentence, which is why its quality collapses in
// Figure 3.
type Unmerged struct {
	dataset *olap.Dataset
	query   olap.Query
	cfg     Config
}

// NewUnmerged returns an unmerged vocalizer for the query.
func NewUnmerged(d *olap.Dataset, q olap.Query, cfg Config) *Unmerged {
	return &Unmerged{dataset: d, query: q, cfg: cfg.Normalize()}
}

// Name identifies the approach in experiment output.
func (u *Unmerged) Name() string { return "unmerged" }

// Vocalize samples within the budget, then greedily descends the tree by
// mean reward and speaks the resulting complete speech.
func (u *Unmerged) Vocalize() (*Output, error) {
	return u.VocalizeContext(context.Background())
}

// VocalizeContext is Vocalize bound to ctx. Cancellation shortens the
// sampling budget and commits whatever the tree learned in time; an
// already-expired context degrades to a preamble-only speech rather than
// erroring.
func (u *Unmerged) VocalizeContext(ctx context.Context) (*Output, error) {
	s, err := newSession(u.dataset, u.query, u.cfg)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	start := cfg.Clock.Now()

	if ctx.Err() != nil {
		sp := &speech.Speech{Preamble: s.gen.NewPreamble()}
		s.speaker.Start(sp.Text())
		return markDegraded(&Output{
			Speech:     sp,
			Latency:    cfg.Clock.Now().Sub(start),
			Transcript: s.speaker.Transcript(),
		}, ctx, u.dataset), nil
	}

	rowsRead := int64(s.sampler.ReadRowsContext(ctx, cfg.InitialRows))
	scale, ok := s.sampler.Cache().GrandEstimate()
	if !ok {
		scale = 0
	}
	if err := s.buildModel(scale); err != nil {
		return nil, err
	}
	tree, err := mcts.NewTreeWithCap(s.gen, speech.SpeechScale(scale), s.evalFunc(s.sampler.Cache()), s.rng, cfg.MaxTreeNodes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tree.UniformPolicy = cfg.UniformTreePolicy
	tree.SeededEval = s.seededEvalFunc(s.sampler.Cache())
	tree.SeededEvalFactory = s.seededEvalFactory(s.sampler.Cache())
	// Without pipelining there is nothing to overlap tree construction
	// with: its cost comes straight out of the interactivity budget.
	s.simCharge(tree.NodeCount())

	// Sample within the fixed budget; on a simulated clock each round
	// costs SimRoundCost, mirroring the holistic loop's accounting.
	var treeSamples int64
	deadline := start.Add(cfg.Budget)
	rounds := 0
	for cfg.Clock.Now().Before(deadline) {
		if ctx.Err() != nil {
			break
		}
		if cfg.MaxRoundsPerSentence > 0 && rounds >= cfg.MaxRoundsPerSentence {
			break
		}
		rowsRead += int64(s.sampler.ReadRowsContext(ctx, cfg.RowsPerRound))
		done, sampleErr := tree.SampleParallelBatch(ctx, cfg.SamplesPerRound, cfg.PlannerWorkers)
		treeSamples += int64(done)
		if sampleErr != nil {
			break
		}
		rounds++
		s.simAdvance()
	}

	// Commit to the whole speech at once: greedy best-mean-reward descent.
	for {
		best := tree.BestChild()
		if best == nil || best.Visits == 0 {
			break
		}
		tree.Advance(best)
	}
	final := tree.Speech(tree.Root())
	if final.Baseline == nil {
		// Nothing was sampled in time; fall back to the first baseline so
		// some answer is spoken (quality will reflect the guess).
		if cands := s.gen.BaselineCandidates(speech.SpeechScale(scale)); len(cands) > 0 {
			final = final.Clone()
			final.Baseline = cands[0]
		}
	}
	s.speaker.Start(final.Text())
	latency := cfg.Clock.Now().Sub(start)

	return markDegraded(&Output{
		Speech:       final,
		Latency:      latency,
		PlanningTime: latency,
		RowsRead:     rowsRead,
		TreeSamples:  treeSamples,
		Transcript:   s.speaker.Transcript(),
	}, ctx, u.dataset), nil
}
