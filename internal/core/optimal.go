package core

import (
	"context"
	"fmt"

	"repro/internal/olap"
	"repro/internal/speech"
)

// Optimal is the quality-ceiling baseline: it evaluates the query exactly
// with a full table scan, then scores every candidate speech in the search
// space with the exact quality metric (Definition 2.2) before any voice
// output starts. Neither the data nor the plan space is sampled, so its
// latency grows with both — far past the interactivity threshold on large
// data, which is precisely the paper's Figure 3 finding.
type Optimal struct {
	dataset *olap.Dataset
	query   olap.Query
	cfg     Config
}

// NewOptimal returns an optimal vocalizer for the query.
func NewOptimal(d *olap.Dataset, q olap.Query, cfg Config) *Optimal {
	return &Optimal{dataset: d, query: q, cfg: cfg.Normalize()}
}

// Name identifies the approach in experiment output.
func (o *Optimal) Name() string { return "optimal" }

// Vocalize exhaustively searches the speech space against the exact query
// result and then speaks the best speech in one piece.
func (o *Optimal) Vocalize() (*Output, error) {
	return o.VocalizeContext(context.Background())
}

// VocalizeContext is Vocalize bound to ctx. Cancellation mid-search
// returns the best speech scored so far, flagged degraded; an
// already-expired context degrades to a preamble-only speech. The exact
// scan itself is not interruptible — only the (much larger) plan-space
// enumeration checks the context.
func (o *Optimal) VocalizeContext(ctx context.Context) (*Output, error) {
	s, err := newSession(o.dataset, o.query, o.cfg)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	start := cfg.Clock.Now()

	preamble := s.gen.NewPreamble()
	if ctx.Err() != nil {
		sp := &speech.Speech{Preamble: preamble}
		s.speaker.Start(sp.Text())
		return markDegraded(&Output{
			Speech:     sp,
			Latency:    cfg.Clock.Now().Sub(start),
			Transcript: s.speaker.Transcript(),
		}, ctx, o.dataset), nil
	}

	// Exact query evaluation: the full scan the holistic approach avoids.
	result, err := olap.EvaluateSpace(s.space)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	scale := result.GrandValue()
	if err := s.buildModel(scale); err != nil {
		return nil, err
	}

	best, scored := o.searchBest(ctx, s, result, scale, preamble)

	s.speaker.Start(best.Text())
	latency := cfg.Clock.Now().Sub(start)

	return markDegraded(&Output{
		Speech:         best,
		Latency:        latency,
		PlanningTime:   latency,
		SpeechesScored: scored,
		Transcript:     s.speaker.Transcript(),
	}, ctx, o.dataset), nil
}

// searchBest exhaustively enumerates every valid speech (all baselines,
// all refinement chains up to the limits — including shorter prefixes,
// since an extra refinement can hurt quality) and returns the maximizer of
// exact quality. Cancellation is checked every few hundred scored speeches
// and cuts the enumeration short, returning the best so far.
//
// Scoring goes through belief.Scorer's incremental apply/undo API: the DFS
// pushes each candidate refinement as one bitset sweep off its parent's
// means vector instead of rebuilding every mean per candidate. The scorer
// reproduces Model.Quality bit for bit (same additions, same order), and
// the enumeration order and the strict ">" comparison are unchanged, so
// the chosen speech is identical to the scalar search's — only faster.
func (o *Optimal) searchBest(ctx context.Context, s *session, result *olap.Result, scale float64, preamble *speech.Preamble) (*speech.Speech, int64) {
	const checkEvery = 256
	sc := s.model.NewScorer(result)
	var best *speech.Speech
	bestQ := -1.0
	var scored int64
	cancelled := false

	var extend func(sp *speech.Speech)
	extend = func(sp *speech.Speech) {
		if cancelled {
			return
		}
		if scored%checkEvery == 0 && ctx.Err() != nil {
			cancelled = true
			return
		}
		q := sc.Quality()
		scored++
		if q > bestQ {
			bestQ = q
			best = sp
		}
		if len(sp.Refinements) >= s.cfg.Prefs.MaxFragments {
			return
		}
		for _, r := range s.gen.Refinements(sp.Refinements) {
			ext := sp.Extend(r)
			if ext.Valid(s.cfg.Prefs) {
				sc.Push(r)
				extend(ext)
				sc.Pop()
			}
		}
	}
	for _, b := range s.gen.BaselineCandidates(speech.SpeechScale(scale)) {
		if cancelled {
			break
		}
		sp := &speech.Speech{Preamble: preamble, Baseline: b}
		sc.Reset(sp)
		extend(sp)
	}
	if best == nil {
		best = &speech.Speech{Preamble: preamble}
	}
	return best, scored
}
