package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
)

// Warm is the holistic vocalizer backed by a materialized sample view
// instead of on-line scanning — the Section 4.3 extension for estimating
// particularly small data subsets. The view is built once (a full scan)
// for an anticipated query; every later vocalization of that query starts
// with complete per-aggregate estimates and exact counts, so even rare
// subpopulations can be refined in the very first sentence.
type Warm struct {
	dataset *olap.Dataset
	view    *sampling.View
	cfg     Config
}

// NewWarm returns a warm-start vocalizer over a prebuilt view. The view's
// space determines the query.
func NewWarm(d *olap.Dataset, view *sampling.View, cfg Config) *Warm {
	return &Warm{dataset: d, view: view, cfg: cfg.Normalize()}
}

// Name identifies the approach in experiment output.
func (w *Warm) Name() string { return "warm" }

// Query returns the query the view was materialized for.
func (w *Warm) Query() olap.Query { return w.view.Space().Query() }

// Vocalize runs the pipelined loop of Algorithm 1 with the view as the
// sample source: no rows are read at query time. Uncertainty modes are not
// supported (bounds come from the on-line cache) and are rejected.
func (w *Warm) Vocalize() (*Output, error) {
	return w.VocalizeContext(context.Background())
}

// VocalizeContext is Vocalize bound to ctx. Like the other vocalizers,
// cancellation and deadline expiry degrade instead of erroring: the
// committed sentence prefix (at minimum the preamble) is returned with
// Degraded set, so the web layer's tier-B cache path keeps the same
// degrade-not-error contract as the cold path.
func (w *Warm) VocalizeContext(ctx context.Context) (*Output, error) {
	if w.view == nil {
		return nil, errors.New("core: warm vocalizer needs a view")
	}
	if w.cfg.Uncertainty != UncertaintyOff {
		return nil, errors.New("core: uncertainty modes need on-line sampling; use Holistic")
	}
	if w.view.Space().Dataset() != w.dataset {
		return nil, errors.New("core: view belongs to a different dataset")
	}
	s, err := newSession(w.dataset, w.Query(), w.cfg)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	start := cfg.Clock.Now()

	preamble := s.gen.NewPreamble()
	s.speaker.Start(preamble.Text())
	latency := cfg.Clock.Now().Sub(start)

	if ctx.Err() != nil {
		return markDegraded(&Output{
			Speech:     &speech.Speech{Preamble: preamble},
			Latency:    latency,
			Transcript: s.speaker.Transcript(),
		}, ctx, w.dataset), nil
	}

	scale, ok := w.view.GrandEstimate()
	if !ok {
		scale = 0
	}
	if err := s.buildModel(scale); err != nil {
		return nil, err
	}
	tree, err := mcts.NewTreeWithCap(s.gen, speech.SpeechScale(scale), s.evalFunc(w.view), s.rng, cfg.MaxTreeNodes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tree.UniformPolicy = cfg.UniformTreePolicy
	s.simCharge(tree.NodeCount())

	var treeSamples int64
	cancelled := false
	for !cancelled {
		rounds := 0
		for s.speaker.IsPlaying() || rounds < cfg.MinRounds {
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			if cfg.MaxRoundsPerSentence > 0 && rounds >= cfg.MaxRoundsPerSentence {
				break
			}
			for i := 0; i < cfg.SamplesPerRound; i++ {
				if tree.Sample() {
					treeSamples++
				}
			}
			rounds++
			s.simAdvance()
		}
		if cancelled {
			// Never commit a sentence the deadline left no time to
			// evaluate: the committed prefix is the degraded answer.
			break
		}
		best := tree.BestChild()
		if best == nil {
			break
		}
		tree.Advance(best)
		s.speaker.Start(tree.Speech(best).LastSentence())
	}

	return markDegraded(&Output{
		Speech:       tree.Speech(tree.Root()),
		Latency:      latency,
		PlanningTime: cfg.Clock.Now().Sub(start),
		TreeSamples:  treeSamples,
		Transcript:   s.speaker.Transcript(),
	}, ctx, w.dataset), nil
}

// Compile-time interface check.
var _ ContextVocalizer = (*Warm)(nil)
