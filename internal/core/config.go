// Package core implements the paper's primary contribution: combined query
// evaluation and result vocalization (Section 4). Three vocalizers share
// one grammar, user model, and sampling substrate:
//
//   - Holistic — Algorithm 1: speaks the preamble immediately, then keeps
//     sampling the database and the UCT speech tree while each sentence
//     plays, committing to the best follow-up sentence when playback ends.
//   - Optimal — evaluates the query exactly and scores every candidate
//     speech with the exact quality metric before speaking; the quality
//     ceiling, at interactive-latency cost.
//   - Unmerged — the ablation without pipelining: it samples and plans
//     under a fixed interactivity budget (500 ms), then speaks the chosen
//     speech in one piece.
package core

import (
	"math/rand"
	"time"

	"repro/internal/speech"
	"repro/internal/table"
	"repro/internal/voice"
)

// InteractivityThreshold is the latency below which interactive data
// analysis feels immediate; the paper's budget for the unmerged baseline.
const InteractivityThreshold = 500 * time.Millisecond

// Config tunes a vocalizer. The zero value plus Normalize yields the
// paper's configuration.
type Config struct {
	// Prefs constrain speech output (300 chars, 2 refinements by default).
	Prefs speech.Prefs
	// Format renders values (percent for probabilities, thousands for
	// salaries).
	Format speech.ValueFormat
	// Percents overrides the refinement change menu (optional).
	Percents []int
	// BaselineMultipliers overrides the baseline ladder (optional).
	BaselineMultipliers []float64
	// MaxPredsPerRefinement > 1 enables multi-predicate refinements.
	MaxPredsPerRefinement int
	// Sigma fixes the belief-model standard deviation; zero derives it as
	// half the estimated grand average (the paper's choice).
	Sigma float64
	// Seed drives all randomized components.
	Seed int64

	// SpeakingRate is the simulated TTS speed in characters per second.
	SpeakingRate float64
	// Clock drives playback timing; nil means the real clock.
	Clock voice.Clock

	// InitialRows are read before the search tree is built, providing the
	// scale estimate that seeds baseline candidates.
	InitialRows int
	// RowsPerRound are read from the table in each planning round.
	RowsPerRound int
	// SamplesPerRound is the number of tree samples per planning round.
	SamplesPerRound int
	// PlannerWorkers is the number of goroutines sampling the speech tree
	// per planning round. 1 (the default) keeps the sequential sampler and
	// reproduces its behavior exactly; higher values use virtual-loss
	// parallel UCT (mcts.SampleParallelBatch) to raise sampling throughput
	// during sentence playback on multicore machines.
	PlannerWorkers int
	// MinRounds is the minimum number of planning rounds before a sentence
	// is committed, guarding quality when playback outpaces planning.
	MinRounds int
	// MaxTreeNodes caps eager search-tree expansion; zero keeps the mcts
	// package default. Lower values bound planning memory on fine-grained
	// queries (deeper nodes expand lazily during sampling).
	MaxTreeNodes int
	// MaxRoundsPerSentence caps rounds per sentence so simulated-clock
	// runs terminate even with very slow speech; zero means no cap beyond
	// playback.
	MaxRoundsPerSentence int
	// SimRoundCost advances a simulated clock by this much per planning
	// round; ignored on the real clock.
	SimRoundCost time.Duration
	// SimNodeCost advances a simulated clock by this much per search-tree
	// node built, modeling the O(m^k) pre-processing cost of the paper's
	// substrate. The holistic approach overlaps tree construction with
	// preamble playback; the unmerged baseline pays it out of its fixed
	// budget — which is exactly why its quality collapses in Figure 3.
	SimNodeCost time.Duration
	// Budget is the planning budget of the unmerged baseline.
	Budget time.Duration

	// DisjointScopes forbids overlapping refinement scopes, emulating a
	// grammar of absolute refinements (ablation).
	DisjointScopes bool
	// UniformTreePolicy replaces UCT child selection with uniform random
	// sampling (ablation).
	UniformTreePolicy bool
	// ResampleEstimates derives cache estimates from a fixed-size
	// subsample as in the paper's literal Algorithm 3 instead of the
	// running mean (ablation); ResampleSize sets the subsample size.
	ResampleEstimates bool
	// ResampleSize is the fixed subsample size for ResampleEstimates.
	ResampleSize int

	// BackgroundSampling scans the table from a dedicated goroutine so
	// data access truly overlaps planning and playback on a real clock
	// (simulated clocks keep the deterministic synchronous loop).
	BackgroundSampling bool

	// SamplerShards > 1 splits the background scan across that many
	// goroutines over disjoint row partitions (multicore row pipeline).
	// It only applies with BackgroundSampling set and no Scanner override:
	// fault-injected scanners wrap a single stream and keep the single
	// background sampler. Zero or one keeps one scan goroutine.
	SamplerShards int

	// Scanner overrides how table rows are streamed into the samplers;
	// nil selects the pseudo-random full-table scan. Fault-injection
	// tests wrap the scan with failing, slow, or stalling variants here.
	Scanner func(t *table.Table, rng *rand.Rand) table.Scanner

	// AsyncStopGrace bounds how long a cancelled vocalization waits for
	// the background scan goroutine to exit before abandoning it (a hung
	// scanner must not hang the answer); zero selects one second.
	AsyncStopGrace time.Duration

	// Trace, when non-nil, records the planner's per-sentence decisions
	// for observability.
	Trace *Trace

	// Uncertainty selects the Section 4.4 confidence extension.
	Uncertainty UncertaintyMode
	// Confidence is the level for spoken bounds and warnings.
	Confidence float64
	// WarnRelativeWidth triggers the warning mode when the grand-scope
	// confidence interval's width exceeds this fraction of its center.
	WarnRelativeWidth float64
}

// Normalize fills unset fields with the paper's defaults and returns the
// completed configuration.
func (c Config) Normalize() Config {
	if c.Prefs == (speech.Prefs{}) {
		c.Prefs = speech.DefaultPrefs()
	}
	if c.SpeakingRate <= 0 {
		c.SpeakingRate = voice.DefaultCharsPerSecond
	}
	if c.Clock == nil {
		c.Clock = voice.RealClock{}
	}
	if c.InitialRows <= 0 {
		c.InitialRows = 256
	}
	if c.RowsPerRound <= 0 {
		c.RowsPerRound = 64
	}
	if c.SamplesPerRound <= 0 {
		c.SamplesPerRound = 4
	}
	if c.PlannerWorkers < 1 {
		c.PlannerWorkers = 1
	}
	if c.MinRounds <= 0 {
		c.MinRounds = 64
	}
	if c.MaxRoundsPerSentence < 0 {
		c.MaxRoundsPerSentence = 0
	}
	if c.SimRoundCost <= 0 {
		c.SimRoundCost = time.Millisecond
	}
	if c.Budget <= 0 {
		c.Budget = InteractivityThreshold
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		c.Confidence = 0.95
	}
	if c.WarnRelativeWidth <= 0 {
		c.WarnRelativeWidth = 0.5
	}
	if c.AsyncStopGrace <= 0 {
		c.AsyncStopGrace = time.Second
	}
	return c
}

// Output reports a vocalization run.
type Output struct {
	// Speech is the final spoken speech (including the preamble).
	Speech *speech.Speech
	// Latency is the time from invocation until voice output started.
	Latency time.Duration
	// PlanningTime is the total compute time of the run.
	PlanningTime time.Duration
	// RowsRead counts table rows consumed by sampling (0 for exact scans).
	RowsRead int64
	// TreeSamples counts MCTS rounds performed.
	TreeSamples int64
	// SpeechesScored counts exact quality evaluations (optimal only).
	SpeechesScored int64
	// Transcript lists the utterances with their playback intervals.
	Transcript []voice.Utterance
	// BoundsSpoken lists the confidence-bound sentences emitted in
	// UncertaintyBounds mode, in speaking order.
	BoundsSpoken []string
	// Warning is the low-confidence warning spoken in UncertaintyWarn
	// mode, empty otherwise.
	Warning string
	// TableRows is the committed row count of the data snapshot the
	// answer was computed over. Streaming clients compare it against
	// ingest acknowledgements to audit answer freshness.
	TableRows int64
	// Degraded reports that the run hit its context deadline or was
	// cancelled before planning finished: the speech contains only what
	// was committed in time (at minimum the preamble) and is still
	// grammar-valid.
	Degraded bool
	// DegradeReason explains a degraded run ("context deadline exceeded"
	// or "context canceled"); empty when Degraded is false.
	DegradeReason string
}

// Text returns the full spoken text.
func (o *Output) Text() string { return o.Speech.Text() }
