package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/speech"
	"repro/internal/table"
	"repro/internal/voice"
)

// requireValidSpeech asserts a run produced a grammar-conforming speech
// (degraded or not) — the graceful-degradation contract under faults.
func requireValidSpeech(t *testing.T, out *Output, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("Vocalize under fault: %v (faults must degrade, not error)", err)
	}
	if out.Speech == nil || out.Speech.Preamble == nil {
		t.Fatal("faulted run must still produce a speech with a preamble")
	}
	if !out.Speech.Valid(speech.DefaultPrefs()) {
		t.Errorf("speech violates prefs: %q", out.Speech.MainText())
	}
	if !(speech.Parser{}).Conforms(out.Speech.Text()) {
		t.Errorf("speech violates the grammar: %q", out.Speech.Text())
	}
}

func TestHolisticSurvivesFailingScanner(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	for _, limit := range []int{0, 10, 500} {
		cfg := testConfig(1)
		cfg.Scanner = func(tab *table.Table, rng *rand.Rand) table.Scanner {
			return &faults.FailingScanner{Inner: table.NewRandomScanner(tab, rng), Limit: limit}
		}
		out, err := NewHolistic(d, q, cfg).Vocalize()
		requireValidSpeech(t, out, err)
		if out.RowsRead > int64(limit) {
			t.Errorf("limit %d: planner claims %d rows read", limit, out.RowsRead)
		}
	}
}

func TestUnmergedSurvivesFailingScanner(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	cfg := testConfig(1)
	cfg.Scanner = func(tab *table.Table, rng *rand.Rand) table.Scanner {
		return &faults.FailingScanner{Inner: table.NewRandomScanner(tab, rng), Limit: 50}
	}
	out, err := NewUnmerged(d, q, cfg).Vocalize()
	requireValidSpeech(t, out, err)
}

func TestHolisticSurvivesStallingScanner(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	var stall *faults.StallingScanner
	cfg := testConfig(1)
	cfg.BackgroundSampling = true
	cfg.AsyncStopGrace = 50 * time.Millisecond
	cfg.Scanner = func(tab *table.Table, rng *rand.Rand) table.Scanner {
		stall = faults.NewStallingScanner(table.NewRandomScanner(tab, rng), 64)
		return stall
	}
	out, err := NewHolistic(d, q, cfg).Vocalize()
	// Unblock the abandoned scan goroutine before the test ends.
	if stall != nil {
		defer stall.Release()
	}
	requireValidSpeech(t, out, err)
}

func TestHolisticSurvivesSlowScannerUnderDeadline(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	cfg := testConfig(1)
	cfg.Scanner = func(tab *table.Table, rng *rand.Rand) table.Scanner {
		return &faults.SlowScanner{Inner: table.NewRandomScanner(tab, rng), Delay: time.Millisecond}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	out, err := NewHolistic(d, q, cfg).VocalizeContext(ctx)
	requireValidSpeech(t, out, err)
	if !out.Degraded {
		t.Error("a 30ms deadline against a 1ms/row scanner should degrade")
	}
}

func TestHolisticSurvivesJitteryClock(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	cfg := testConfig(1)
	// The jitter wrapper hides the simulated clock from simAdvance, so
	// playback must be effectively instant for rounds to progress past
	// MinRounds instead of spinning on IsPlaying.
	cfg.Clock = faults.NewJitterClock(voice.NewSimClock(), 50*time.Millisecond, 7)
	cfg.SpeakingRate = 1e9
	out, err := NewHolistic(d, q, cfg).Vocalize()
	requireValidSpeech(t, out, err)
}
