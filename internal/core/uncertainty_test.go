package core

import (
	"strings"
	"testing"
)

func TestUncertaintyBoundsMode(t *testing.T) {
	d, q := flightsQuery(t, 20000, 71)
	cfg := testConfig(11)
	cfg.Uncertainty = UncertaintyBounds
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if len(out.BoundsSpoken) == 0 {
		t.Fatal("bounds mode should speak confidence bounds")
	}
	// One bounds sentence per committed result sentence.
	if len(out.BoundsSpoken) != out.Speech.NumFragments() {
		t.Errorf("bounds sentences = %d, fragments = %d",
			len(out.BoundsSpoken), out.Speech.NumFragments())
	}
	for _, b := range out.BoundsSpoken {
		if !strings.HasPrefix(b, "Between ") || !strings.Contains(b, "confidence") {
			t.Errorf("malformed bounds sentence %q", b)
		}
	}
	// The transcript interleaves bounds before each sentence.
	if len(out.Transcript) != 1+out.Speech.NumFragments()+len(out.BoundsSpoken) {
		t.Errorf("transcript = %d utterances", len(out.Transcript))
	}
}

func TestUncertaintyWarnModeQuietWhenConfident(t *testing.T) {
	d, q := flightsQuery(t, 50000, 72)
	cfg := testConfig(12)
	cfg.Uncertainty = UncertaintyWarn
	// Generous sampling: tight intervals, no warning expected.
	cfg.MaxRoundsPerSentence = 3000
	cfg.RowsPerRound = 256
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if out.Warning != "" {
		t.Errorf("well-sampled run should not warn, got %q", out.Warning)
	}
}

func TestUncertaintyWarnModeTriggersWhenStarved(t *testing.T) {
	d, q := flightsQuery(t, 50000, 73)
	cfg := testConfig(13)
	cfg.Uncertainty = UncertaintyWarn
	// Starve sampling and demand extreme precision.
	cfg.InitialRows = 8
	cfg.RowsPerRound = 1
	cfg.MinRounds = 1
	cfg.MaxRoundsPerSentence = 2
	cfg.WarnRelativeWidth = 0.0001
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	if out.Warning == "" {
		t.Error("starved run with strict threshold should warn")
	}
	last := out.Transcript[len(out.Transcript)-1]
	if last.Text != out.Warning {
		t.Error("warning should be the final utterance")
	}
}

func TestUncertaintyModeString(t *testing.T) {
	if UncertaintyOff.String() != "off" || UncertaintyWarn.String() != "warn" || UncertaintyBounds.String() != "bounds" {
		t.Error("mode strings wrong")
	}
	if UncertaintyMode(9).String() == "" {
		t.Error("unknown mode should render")
	}
}
