package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// expiredContext returns a context that is already cancelled.
func expiredContext() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// requireDegradedValid asserts the degraded-output contract: no error, a
// grammar-valid speech with at least the preamble, and the Degraded flag.
func requireDegradedValid(t *testing.T, out *Output, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("VocalizeContext: %v (expired context must degrade, not error)", err)
	}
	if out == nil || out.Speech == nil {
		t.Fatal("degraded output must still carry a speech")
	}
	if out.Speech.Preamble == nil {
		t.Fatal("degraded speech must contain at least the preamble")
	}
	if !out.Degraded {
		t.Error("Degraded flag should be set")
	}
	if out.DegradeReason == "" {
		t.Error("DegradeReason should name the context error")
	}
	if !out.Speech.Valid(speech.DefaultPrefs()) {
		t.Errorf("degraded speech violates prefs: %q", out.Speech.MainText())
	}
	if !(speech.Parser{}).Conforms(out.Speech.Text()) {
		t.Errorf("degraded speech violates the grammar: %q", out.Speech.Text())
	}
}

func TestHolisticExpiredContextDegrades(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	out, err := NewHolistic(d, q, testConfig(1)).VocalizeContext(expiredContext())
	requireDegradedValid(t, out, err)
}

func TestUnmergedExpiredContextDegrades(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	out, err := NewUnmerged(d, q, testConfig(1)).VocalizeContext(expiredContext())
	requireDegradedValid(t, out, err)
}

func TestOptimalExpiredContextDegrades(t *testing.T) {
	d, q := flightsQuery(t, 5000, 51)
	out, err := NewOptimal(d, q, testConfig(1)).VocalizeContext(expiredContext())
	requireDegradedValid(t, out, err)
}

func TestBackgroundVocalizeExpiredContextDegrades(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	cfg := testConfig(1)
	cfg.BackgroundSampling = true
	cfg.AsyncStopGrace = 100 * time.Millisecond
	out, err := NewHolistic(d, q, cfg).VocalizeContext(expiredContext())
	requireDegradedValid(t, out, err)
}

func TestVocalizeContextWithoutDeadlineIsUndegraded(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	out, err := NewHolistic(d, q, testConfig(1)).VocalizeContext(context.Background())
	if err != nil {
		t.Fatalf("VocalizeContext: %v", err)
	}
	if out.Degraded || out.DegradeReason != "" {
		t.Errorf("unconstrained run flagged degraded: %q", out.DegradeReason)
	}
	if len(out.Speech.Refinements) == 0 {
		t.Error("unconstrained run should add refinements")
	}
}

// cancelAfterClock cancels a context after a fixed number of clock reads,
// injecting a deterministic mid-planning cancellation: the planner reads
// the clock every round, so the cutoff lands inside the sampling loop.
type cancelAfterClock struct {
	inner  voice.Clock
	after  int
	calls  int
	cancel context.CancelFunc
}

func (c *cancelAfterClock) Now() time.Time {
	c.calls++
	if c.calls == c.after {
		c.cancel()
	}
	return c.inner.Now()
}

func TestHolisticCancelMidSpeechKeepsCommittedPrefix(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)

	// Reference run: no cancellation.
	full, err := NewHolistic(d, q, testConfig(1)).Vocalize()
	if err != nil {
		t.Fatalf("reference Vocalize: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := testConfig(1)
	cfg.Clock = &cancelAfterClock{inner: voice.NewSimClock(), after: 400, cancel: cancel}
	out, err := NewHolistic(d, q, cfg).VocalizeContext(ctx)
	requireDegradedValid(t, out, err)
	if got, want := len(out.Speech.Refinements), len(full.Speech.Refinements); got > want {
		t.Errorf("cancelled run spoke %d refinements, reference only %d", got, want)
	}
}

func TestOptimalCancelledSearchReturnsFallback(t *testing.T) {
	d, q := flightsQuery(t, 5000, 51)
	o := NewOptimal(d, q, testConfig(1))
	s, err := newSession(d, q, o.cfg)
	if err != nil {
		t.Fatalf("newSession: %v", err)
	}
	result, err := olap.EvaluateSpace(s.space)
	if err != nil {
		t.Fatalf("EvaluateSpace: %v", err)
	}
	scale := result.GrandValue()
	if err := s.buildModel(scale); err != nil {
		t.Fatalf("buildModel: %v", err)
	}
	preamble := s.gen.NewPreamble()

	fullBest, fullScored := o.searchBest(context.Background(), s, result, scale, preamble)
	if fullBest == nil || fullScored == 0 {
		t.Fatal("reference search scored nothing")
	}
	best, scored := o.searchBest(expiredContext(), s, result, scale, preamble)
	if best == nil {
		t.Fatal("cancelled search must still return a speech")
	}
	if scored >= fullScored {
		t.Errorf("cancelled search scored %d speeches, full search %d", scored, fullScored)
	}
	if !(speech.Parser{}).Conforms(best.Text()) {
		t.Errorf("fallback speech violates the grammar: %q", best.Text())
	}
}
