package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/olap"
	"repro/internal/sampling"
)

func buildView(t *testing.T, d *olap.Dataset, q olap.Query, reservoir int) *sampling.View {
	t.Helper()
	space, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	view, err := sampling.BuildView(space, reservoir, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	return view
}

func TestWarmVocalizeFromView(t *testing.T) {
	d, q := flightsQuery(t, 20000, 81)
	view := buildView(t, d, q, 128)
	cfg := testConfig(20)
	out, err := NewWarm(d, view, cfg).Vocalize()
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Fatal("warm vocalizer should commit a baseline")
	}
	if out.RowsRead != 0 {
		t.Errorf("warm start should read no rows, got %d", out.RowsRead)
	}
	if out.TreeSamples == 0 {
		t.Error("warm start should sample the tree")
	}
	quality, err := ExactQuality(d, q, out, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if quality <= 0 {
		t.Errorf("quality = %v", quality)
	}
}

func TestWarmQualityComparableToHolistic(t *testing.T) {
	d, q := flightsQuery(t, 20000, 82)
	view := buildView(t, d, q, 256)
	cfg := testConfig(21)
	warmOut, err := NewWarm(d, view, cfg).Vocalize()
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	holOut, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	warmQ, _ := ExactQuality(d, q, warmOut, cfg)
	holQ, _ := ExactQuality(d, q, holOut, cfg)
	if warmQ < 0.5*holQ {
		t.Errorf("warm quality %v too far below holistic %v", warmQ, holQ)
	}
}

func TestWarmRejectsBadConfigurations(t *testing.T) {
	d, q := flightsQuery(t, 5000, 83)
	view := buildView(t, d, q, 16)

	w := NewWarm(d, nil, testConfig(22))
	if _, err := w.Vocalize(); err == nil {
		t.Error("nil view should fail")
	}

	cfg := testConfig(23)
	cfg.Uncertainty = UncertaintyBounds
	if _, err := NewWarm(d, view, cfg).Vocalize(); err == nil {
		t.Error("uncertainty modes should be rejected")
	}

	other, _ := flightsQuery(t, 5000, 84)
	if _, err := NewWarm(other, view, testConfig(24)).Vocalize(); err == nil {
		t.Error("foreign dataset should be rejected")
	}
}

// TestWarmVocalizeContextDegrades pins the degrade-not-error contract: an
// expired context yields a valid (preamble-only) speech with Degraded set,
// and an open context matches plain Vocalize bit for bit.
func TestWarmVocalizeContextDegrades(t *testing.T) {
	d, q := flightsQuery(t, 5000, 86)
	view := buildView(t, d, q, 64)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := NewWarm(d, view, testConfig(26)).VocalizeContext(ctx)
	if err != nil {
		t.Fatalf("expired context must degrade, not error: %v", err)
	}
	if !out.Degraded || out.DegradeReason == "" {
		t.Errorf("degraded = %v reason = %q, want flagged", out.Degraded, out.DegradeReason)
	}
	if out.Speech == nil || out.Speech.Preamble == nil {
		t.Fatal("degraded warm answer must still carry the preamble")
	}

	plain, err := NewWarm(d, view, testConfig(27)).Vocalize()
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	viaCtx, err := NewWarm(d, view, testConfig(27)).VocalizeContext(context.Background())
	if err != nil {
		t.Fatalf("warm ctx: %v", err)
	}
	if plain.Text() != viaCtx.Text() {
		t.Errorf("open-context speech differs from Vocalize:\n  %q\n  %q", plain.Text(), viaCtx.Text())
	}
}

func TestWarmQueryAccessor(t *testing.T) {
	d, q := flightsQuery(t, 5000, 85)
	view := buildView(t, d, q, 16)
	w := NewWarm(d, view, testConfig(25))
	if got := w.Query(); len(got.GroupBy) != len(q.GroupBy) {
		t.Error("Query should mirror the view's query")
	}
	if w.Name() != "warm" {
		t.Error("name wrong")
	}
}
