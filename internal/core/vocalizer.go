package core

import (
	"context"
	"fmt"

	"repro/internal/belief"
	"repro/internal/olap"
	"repro/internal/speech"
)

// Vocalizer answers a query with voice output. Holistic, Optimal and
// Unmerged implement it.
type Vocalizer interface {
	// Name identifies the approach in experiment output.
	Name() string
	// Vocalize runs the approach and returns the spoken speech with
	// timing statistics.
	Vocalize() (*Output, error)
}

// ContextVocalizer is a Vocalizer that honors context cancellation and
// deadlines. Implementations degrade instead of erroring when the context
// expires mid-run: the returned Output carries a grammar-valid speech (at
// minimum the preamble) with Degraded set.
type ContextVocalizer interface {
	Vocalizer
	// VocalizeContext runs the approach under ctx.
	VocalizeContext(ctx context.Context) (*Output, error)
}

// Compile-time interface checks.
var (
	_ ContextVocalizer = (*Holistic)(nil)
	_ ContextVocalizer = (*Optimal)(nil)
	_ ContextVocalizer = (*Unmerged)(nil)
)

// ExactQuality scores an output's speech against the exact query result
// using the paper's quality metric (Definition 2.2), with σ derived from
// the exact grand value unless cfg fixes it. It is how the experiments
// compare approaches on equal footing.
func ExactQuality(d *olap.Dataset, q olap.Query, out *Output, cfg Config) (float64, error) {
	cfg = cfg.Normalize()
	space, err := olap.NewSpace(d, q)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = belief.SigmaFromScale(result.GrandValue())
		if sigma <= 0 {
			sigma = 1
		}
	}
	model, err := belief.NewModel(space, sigma)
	if err != nil {
		return 0, fmt.Errorf("core: %w", err)
	}
	// The output's speech references members of the same hierarchies, so
	// rebinding it to the fresh space is sound: scopes are member sets.
	return model.Quality(rebind(out.Speech, space), result), nil
}

// rebind refreshes refinement scope sizes against a space (scope sizes are
// already correct when the same space produced the speech; this guards
// speeches deserialized or built elsewhere).
func rebind(s *speech.Speech, space *olap.Space) *speech.Speech {
	cp := s.Clone()
	for i, r := range cp.Refinements {
		sz := space.ScopeSize(r.Preds)
		if sz != r.ScopeSize {
			rr := *r
			rr.ScopeSize = sz
			cp.Refinements[i] = &rr
		}
	}
	return cp
}
