package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// testConfig keeps runs fast and deterministic: simulated clock, reduced
// percent menu, bounded planning rounds.
func testConfig(seed int64) Config {
	return Config{
		Percents:             []int{50, 100},
		Seed:                 seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 2000,
	}
}

func flightsQuery(t *testing.T, rows int, seed int64) (*olap.Dataset, olap.Query) {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: seed})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	return d, q
}

func TestHolisticProducesValidSpeech(t *testing.T) {
	d, q := flightsQuery(t, 20000, 51)
	out, err := NewHolistic(d, q, testConfig(1)).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	sp := out.Speech
	if sp.Preamble == nil || sp.Baseline == nil {
		t.Fatal("speech should have preamble and baseline")
	}
	if !sp.Valid(speech.DefaultPrefs()) {
		t.Errorf("invalid speech: %q", sp.MainText())
	}
	if len(sp.Refinements) == 0 {
		t.Error("holistic should add refinements within the budget")
	}
	if out.RowsRead == 0 || out.TreeSamples == 0 {
		t.Error("holistic should sample rows and the tree")
	}
	// Transcript: preamble + baseline + refinements, in order.
	if len(out.Transcript) != 1+sp.NumFragments() {
		t.Errorf("transcript = %d utterances, want %d", len(out.Transcript), 1+sp.NumFragments())
	}
	if !strings.HasPrefix(out.Transcript[0].Text, "Considering") {
		t.Errorf("first utterance should be the preamble, got %q", out.Transcript[0].Text)
	}
}

func TestHolisticDeterministicWithSeed(t *testing.T) {
	d, q := flightsQuery(t, 20000, 52)
	a, err := NewHolistic(d, q, testConfig(7)).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	b, err := NewHolistic(d, q, testConfig(7)).Vocalize()
	if err != nil {
		t.Fatalf("Vocalize: %v", err)
	}
	if a.Text() != b.Text() {
		t.Errorf("same seed should reproduce the speech:\n%s\nvs\n%s", a.Text(), b.Text())
	}
}

func TestHolisticLatencyBeatsOptimal(t *testing.T) {
	d, q := flightsQuery(t, 100000, 53)
	cfg := testConfig(2)
	// Real clocks for latency comparison: the holistic approach speaks
	// before reading the table; optimal scans and scores everything first.
	cfg.Clock = voice.RealClock{}
	cfg.MaxRoundsPerSentence = 50
	cfg.MinRounds = 10
	hOut, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	oOut, err := NewOptimal(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	if hOut.Latency >= oOut.Latency {
		t.Errorf("holistic latency %v should beat optimal %v", hOut.Latency, oOut.Latency)
	}
}

func TestOptimalMaximizesQuality(t *testing.T) {
	d, q := flightsQuery(t, 20000, 54)
	cfg := testConfig(3)
	oOut, err := NewOptimal(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	if oOut.SpeechesScored == 0 {
		t.Error("optimal should score the plan space")
	}
	oQ, err := ExactQuality(d, q, oOut, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	// No other vocalizer may beat the optimal quality.
	hOut, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	hQ, err := ExactQuality(d, q, hOut, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if hQ > oQ+1e-9 {
		t.Errorf("holistic quality %v exceeds optimal %v", hQ, oQ)
	}
	if oQ <= 0 {
		t.Errorf("optimal quality = %v, want positive", oQ)
	}
}

func TestHolisticQualityNearOptimal(t *testing.T) {
	d, q := flightsQuery(t, 20000, 55)
	cfg := testConfig(4)
	oOut, err := NewOptimal(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	oQ, _ := ExactQuality(d, q, oOut, cfg)
	hOut, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	hQ, _ := ExactQuality(d, q, hOut, cfg)
	if hQ < 0.5*oQ {
		t.Errorf("holistic quality %v too far below optimal %v", hQ, oQ)
	}
}

func TestUnmergedUnderperformsHolistic(t *testing.T) {
	d, q := flightsQuery(t, 20000, 56)
	cfg := testConfig(5)
	// The unmerged budget admits 500 rounds at 1 ms; holistic gets that
	// per sentence. Use several seeds and compare average quality.
	var hSum, uSum float64
	for seed := int64(0); seed < 3; seed++ {
		c := cfg
		c.Seed = seed
		hOut, err := NewHolistic(d, q, c).Vocalize()
		if err != nil {
			t.Fatalf("holistic: %v", err)
		}
		hQ, _ := ExactQuality(d, q, hOut, c)
		hSum += hQ

		// Starve the unmerged baseline the way the paper does: the fixed
		// budget is a fraction of what pipelining provides.
		c.Budget = 20 * time.Millisecond
		uOut, err := NewUnmerged(d, q, c).Vocalize()
		if err != nil {
			t.Fatalf("unmerged: %v", err)
		}
		uQ, _ := ExactQuality(d, q, uOut, c)
		uSum += uQ
	}
	if uSum >= hSum {
		t.Errorf("unmerged total quality %v should trail holistic %v", uSum, hSum)
	}
}

func TestUnmergedSpeaksOnce(t *testing.T) {
	d, q := flightsQuery(t, 20000, 57)
	out, err := NewUnmerged(d, q, testConfig(6)).Vocalize()
	if err != nil {
		t.Fatalf("unmerged: %v", err)
	}
	if len(out.Transcript) != 1 {
		t.Errorf("unmerged should speak the whole answer at once, got %d utterances", len(out.Transcript))
	}
	if out.Speech.Baseline == nil {
		t.Error("unmerged should commit to a baseline")
	}
	if out.Latency < 0 {
		t.Error("negative latency")
	}
}

func TestUnmergedFallbackWithoutSamples(t *testing.T) {
	d, q := flightsQuery(t, 20000, 58)
	cfg := testConfig(7)
	cfg.Budget = time.Nanosecond // no planning rounds fit
	cfg.InitialRows = 1
	out, err := NewUnmerged(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("unmerged: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Error("fallback should still speak a baseline")
	}
}

func TestHolisticWithFilterQuery(t *testing.T) {
	d, _ := flightsQuery(t, 20000, 59)
	airport := d.HierarchyByName("start airport")
	ne := airport.FindMember("the North East")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		Filters:        []*dimension.Member{ne},
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
			{Hierarchy: d.HierarchyByName("airline"), Level: 1},
		},
	}
	out, err := NewHolistic(d, q, testConfig(10)).Vocalize()
	if err != nil {
		t.Fatalf("holistic with filter: %v", err)
	}
	if !strings.Contains(out.Text(), "flights starting from the North East") {
		t.Errorf("preamble should mention the filter:\n%s", out.Text())
	}
	// No refinement may reference an airport outside the filter.
	for _, r := range out.Speech.Refinements {
		for _, p := range r.Preds {
			if p.Hierarchy() == airport && !p.IsDescendantOf(ne) {
				t.Errorf("refinement predicate %v escapes the filter scope", p)
			}
		}
	}
}

func TestHolisticCountQuery(t *testing.T) {
	d, _ := flightsQuery(t, 20000, 60)
	q := olap.Query{
		Fct:            olap.Count,
		ColDescription: "number of flights",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
		},
	}
	cfg := testConfig(8)
	cfg.Format = speech.PlainFormat
	out, err := NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic count: %v", err)
	}
	if out.Speech.Baseline == nil {
		t.Fatal("count query should produce a baseline")
	}
	if out.Speech.Baseline.Value <= 0 {
		t.Errorf("count baseline = %v, want positive", out.Speech.Baseline.Value)
	}
}

func TestExactQualityOfTruthfulSpeechBeatsWrong(t *testing.T) {
	d, q := flightsQuery(t, 20000, 61)
	cfg := testConfig(9)
	out, err := NewOptimal(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("optimal: %v", err)
	}
	qual, err := ExactQuality(d, q, out, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	// Replace the baseline with a wildly wrong value.
	wrong := out.Speech.Clone()
	wrongBaseline := *out.Speech.Baseline
	wrongBaseline.Value *= 100
	wrong.Baseline = &wrongBaseline
	wrongOut := &Output{Speech: wrong}
	wrongQ, err := ExactQuality(d, q, wrongOut, cfg)
	if err != nil {
		t.Fatalf("ExactQuality: %v", err)
	}
	if wrongQ >= qual {
		t.Errorf("wrong baseline quality %v should trail optimal %v", wrongQ, qual)
	}
}

func TestConfigNormalize(t *testing.T) {
	cfg := Config{}.Normalize()
	if cfg.Prefs.MaxChars != 300 || cfg.SpeakingRate != voice.DefaultCharsPerSecond {
		t.Error("defaults not applied")
	}
	if cfg.Budget != InteractivityThreshold {
		t.Error("default budget should be the interactivity threshold")
	}
	if cfg.Confidence != 0.95 || cfg.WarnRelativeWidth != 0.5 {
		t.Error("uncertainty defaults not applied")
	}
	if _, ok := cfg.Clock.(voice.RealClock); !ok {
		t.Error("default clock should be real")
	}
	if math.Abs(float64(cfg.SimRoundCost)-float64(time.Millisecond)) > 0 {
		t.Error("default sim round cost wrong")
	}
}
