package core

import (
	"fmt"

	"repro/internal/speech"
	"repro/internal/stats"
)

// UncertaintyMode selects the Section 4.4 extension for transmitting
// confidence information.
type UncertaintyMode int

// Uncertainty modes.
const (
	// UncertaintyOff speaks values without confidence information.
	UncertaintyOff UncertaintyMode = iota
	// UncertaintyWarn appends a general warning when confidence in the
	// spoken values is below a threshold.
	UncertaintyWarn
	// UncertaintyBounds speaks the confidence bounds where voice rendering
	// for the corresponding sentence starts.
	UncertaintyBounds
)

// String implements fmt.Stringer.
func (m UncertaintyMode) String() string {
	switch m {
	case UncertaintyOff:
		return "off"
	case UncertaintyWarn:
		return "warn"
	case UncertaintyBounds:
		return "bounds"
	default:
		return fmt.Sprintf("UncertaintyMode(%d)", int(m))
	}
}

// uncertaintyWarning is the general low-confidence warning sentence.
const uncertaintyWarning = "Please note that confidence in the spoken values is still low."

// scopeAggs lists the aggregate indices a sentence speaks about: all
// aggregates for the baseline (nil refinement), the refinement's scope
// otherwise.
func (s *session) scopeAggs(r *speech.Refinement) []int {
	var out []int
	for a := 0; a < s.space.Size(); a++ {
		if r == nil || s.space.InScope(a, r.Preds) {
			out = append(out, a)
		}
	}
	return out
}

// pooledInterval returns the pooled confidence bound from whichever sample
// source the session runs on.
func (s *session) pooledInterval(aggs []int, confidence float64) (stats.Interval, bool) {
	if s.async != nil {
		return s.async.PooledConfidenceInterval(aggs, confidence)
	}
	return s.sampler.Cache().PooledConfidenceInterval(aggs, confidence)
}

// inScopeRows returns the cached in-scope row count of the active source.
func (s *session) inScopeRows() int64 {
	if s.async != nil {
		return s.async.NrInScope()
	}
	return s.sampler.Cache().NrInScope()
}

// boundsSentence renders the confidence bounds for the scope of a sentence,
// e.g. "Between one percent and three percent with 95 percent confidence.".
func (s *session) boundsSentence(r *speech.Refinement) (string, bool) {
	iv, ok := s.pooledInterval(s.scopeAggs(r), s.cfg.Confidence)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("Between %s and %s with %d percent confidence.",
		speech.FormatValue(iv.Lo, s.cfg.Format),
		speech.FormatValue(iv.Hi, s.cfg.Format),
		int(s.cfg.Confidence*100+0.5)), true
}

// minConfidentSample is the minimum in-scope sample size below which the
// warning always fires: a handful of rows can produce a degenerate
// zero-width interval (e.g. all-zero cancellation flags) that a CLT bound
// mistakes for certainty.
const minConfidentSample = 30

// lowConfidence reports whether the grand-scope confidence interval is
// wide relative to its center, triggering the warning mode.
func (s *session) lowConfidence() bool {
	if s.inScopeRows() < minConfidentSample {
		return true
	}
	iv, ok := s.pooledInterval(s.scopeAggs(nil), s.cfg.Confidence)
	if !ok {
		return true
	}
	center := iv.Center()
	if center == 0 {
		return iv.Width() > 0
	}
	rel := iv.Width() / center
	if rel < 0 {
		rel = -rel
	}
	return rel > s.cfg.WarnRelativeWidth
}
