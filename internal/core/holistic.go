package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mcts"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/speech"
)

// Holistic is the paper's combined query evaluation and vocalization
// algorithm (Algorithm 1). It starts speaking the preamble immediately,
// builds the speech search tree while the preamble plays, and then
// alternates: sample database rows and the UCT tree while the current
// sentence plays; when playback ends, commit to the child with the best
// mean reward and start speaking it.
type Holistic struct {
	dataset *olap.Dataset
	query   olap.Query
	cfg     Config
}

// NewHolistic returns a holistic vocalizer for the query.
func NewHolistic(d *olap.Dataset, q olap.Query, cfg Config) *Holistic {
	return &Holistic{dataset: d, query: q, cfg: cfg.Normalize()}
}

// runnerUp returns the visited root child with the second-best mean
// reward, or nil if best has no competition.
func runnerUp(tree *mcts.Tree, best *mcts.Node) *mcts.Node {
	var second *mcts.Node
	for _, c := range tree.Root().Children {
		if c == best || c.Visits == 0 {
			continue
		}
		if second == nil || c.MeanReward() > second.MeanReward() {
			second = c
		}
	}
	return second
}

// markDegraded stamps the context's failure reason on the output and
// records the size of the data snapshot the answer was computed over.
func markDegraded(out *Output, ctx context.Context, d *olap.Dataset) *Output {
	out.TableRows = int64(d.Table().NumRows())
	if err := ctx.Err(); err != nil {
		out.Degraded = true
		out.DegradeReason = err.Error()
	}
	return out
}

// Name identifies the approach in experiment output.
func (h *Holistic) Name() string { return "holistic" }

// Vocalize runs Algorithm 1 (EVALVOCAL) and returns the spoken speech with
// its timing statistics.
func (h *Holistic) Vocalize() (*Output, error) {
	return h.VocalizeContext(context.Background())
}

// VocalizeContext is Vocalize bound to ctx. Cancellation and deadline
// expiry degrade instead of erroring: the planner stops committing new
// sentences and returns the preamble plus whatever sentences were
// committed in time, flagged with Output.Degraded — a late partial answer
// beats no answer for a voice interface that already started speaking.
func (h *Holistic) VocalizeContext(ctx context.Context) (*Output, error) {
	s, err := newSession(h.dataset, h.query, h.cfg)
	if err != nil {
		return nil, err
	}
	cfg := s.cfg
	start := cfg.Clock.Now()

	// Start voice output of the preamble immediately; everything else
	// overlaps with its playback.
	preamble := s.gen.NewPreamble()
	s.speaker.Start(preamble.Text())
	latency := cfg.Clock.Now().Sub(start)

	// A deadline that expired before planning even started still yields a
	// valid (if minimal) spoken answer: the preamble alone.
	if ctx.Err() != nil {
		return markDegraded(&Output{
			Speech:     &speech.Speech{Preamble: preamble},
			Latency:    latency,
			Transcript: s.speaker.Transcript(),
		}, ctx, h.dataset), nil
	}

	// Sample source: synchronous batches interleaved with planning by
	// default, or a background goroutine when BackgroundSampling is set.
	var est sampling.Estimator = s.sampler.Cache()
	readBatch := func(n int) int64 { return int64(s.sampler.ReadRowsContext(ctx, n)) }
	grand := s.sampler.Cache().GrandEstimate
	totalRead := func(fallback int64) int64 { return fallback }
	if cfg.BackgroundSampling {
		// Sharded scanning only applies to the default pseudo-random scan:
		// a Scanner override supplies a single stream (fault wrappers), so
		// it keeps the single background goroutine. Multi-shard scans use
		// the epoch sampler: per-worker epoch-local accumulators merged at
		// batch boundaries, with wait-free estimator reads — the planner's
		// workers never serialize behind the scan.
		var async sampling.BackgroundSource
		var err error
		if cfg.SamplerShards > 1 && cfg.Scanner == nil {
			async, err = sampling.NewEpochSampler(s.space, s.rng, cfg.SamplerShards, cfg.RowsPerRound*4)
		} else {
			async, err = sampling.NewAsyncSamplerWithScanner(s.space, newScanner(cfg, s.space, s.rng), cfg.RowsPerRound*4)
		}
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		s.async = async
		async.StartContext(ctx)
		// A bounded wait at teardown: a scan stuck inside a hung scanner
		// must not hang the answer with it.
		defer async.StopWithin(cfg.AsyncStopGrace)
		est = async
		readBatch = func(int) int64 { return 0 }
		grand = async.GrandEstimate
		totalRead = func(int64) int64 { return async.NrRead() }
		// Give the scan a moment to cover the initial batch the scale
		// estimate needs; the preamble is playing meanwhile.
		waitUntil := time.Now().Add(100 * time.Millisecond)
		for async.NrRead() < int64(cfg.InitialRows) && time.Now().Before(waitUntil) {
			if ctx.Err() != nil {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Initial sample batch: enough rows to estimate the value scale that
	// seeds baseline candidates and the belief σ.
	rowsRead := readBatch(cfg.InitialRows)
	scale, ok := grand()
	if !ok {
		scale = 0
	}
	if err := s.buildModel(scale); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return markDegraded(&Output{
			Speech:     &speech.Speech{Preamble: preamble},
			Latency:    latency,
			RowsRead:   totalRead(rowsRead),
			Transcript: s.speaker.Transcript(),
		}, ctx, h.dataset), nil
	}

	// Initialize the search tree for speech output (ST.NEWNODE/ST.EXPAND).
	tree, err := mcts.NewTreeWithCap(s.gen, speech.SpeechScale(scale), s.evalFunc(est), s.rng, cfg.MaxTreeNodes)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tree.UniformPolicy = cfg.UniformTreePolicy
	tree.SeededEval = s.seededEvalFunc(est)
	tree.SeededEvalFactory = s.seededEvalFactory(est)
	// Tree construction overlaps preamble playback: on a simulated
	// substrate its cost consumes playback time, never answer latency.
	s.simCharge(tree.NodeCount())
	if cfg.Trace != nil {
		cfg.Trace.TreeNodes = tree.NodeCount()
		cfg.Trace.ScaleEstimate = scale
	}

	var treeSamples int64
	var boundsSpoken []string
	cancelled := false
	for !cancelled {
		// Refine quality estimates while the current sentence plays.
		rounds := 0
		windowStart := cfg.Clock.Now()
		windowRows := int64(0)
		windowSamples := int64(0)
		for s.speaker.IsPlaying() || rounds < cfg.MinRounds {
			if ctx.Err() != nil {
				cancelled = true
				break
			}
			if cfg.MaxRoundsPerSentence > 0 && rounds >= cfg.MaxRoundsPerSentence {
				break
			}
			n := readBatch(cfg.RowsPerRound)
			rowsRead += n
			windowRows += n
			done, sampleErr := tree.SampleParallelBatch(ctx, cfg.SamplesPerRound, cfg.PlannerWorkers)
			treeSamples += int64(done)
			windowSamples += int64(done)
			if sampleErr != nil {
				cancelled = true
				break
			}
			rounds++
			s.simAdvance()
		}
		if cancelled {
			// Never commit a sentence the deadline left no time to
			// evaluate: the committed prefix is the degraded answer.
			break
		}
		// Is the speech finished?
		best := tree.BestChild()
		if best == nil {
			break
		}
		if cfg.Trace != nil {
			st := SentenceTrace{
				Sentence:       tree.Speech(best).LastSentence(),
				Rounds:         rounds,
				RowsRead:       windowRows,
				TreeSamples:    windowSamples,
				BestMeanReward: best.MeanReward(),
				BestVisits:     best.Visits,
				PlanningTime:   cfg.Clock.Now().Sub(windowStart),
			}
			if second := runnerUp(tree, best); second != nil {
				st.RunnerUp = tree.Speech(second).LastSentence()
				st.RunnerUpReward = second.MeanReward()
			}
			cfg.Trace.Sentences = append(cfg.Trace.Sentences, st)
		}
		// Choose the next sentence (exploitation only) and start playing.
		tree.Advance(best)
		if cfg.Uncertainty == UncertaintyBounds {
			if bounds, ok := s.boundsSentence(best.Refinement()); ok {
				s.speaker.Start(bounds)
				boundsSpoken = append(boundsSpoken, bounds)
			}
		}
		s.speaker.Start(tree.Speech(best).LastSentence())
	}

	var warning string
	if !cancelled && cfg.Uncertainty == UncertaintyWarn && s.lowConfidence() {
		warning = uncertaintyWarning
		s.speaker.Start(warning)
	}

	return markDegraded(&Output{
		Speech:       tree.Speech(tree.Root()),
		Latency:      latency,
		PlanningTime: cfg.Clock.Now().Sub(start),
		RowsRead:     totalRead(rowsRead),
		TreeSamples:  treeSamples,
		Transcript:   s.speaker.Transcript(),
		BoundsSpoken: boundsSpoken,
		Warning:      warning,
	}, ctx, h.dataset), nil
}
