package scenario

import (
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// The seed registry. Scenario scripts speak the study interface's keyword
// language (see internal/nlq); expectations encode the paper's claims the
// scattered unit tests used to prove one-off. Dataset specs are shared
// wherever possible so runs amortize generation through the cache.

// flights5k is the default scenario dataset.
var flights5k = DatasetSpec{Name: "flights", Rows: 5000, Seed: 1}

// salariesStd is the salaries scenario dataset (size is fixed by family).
var salariesStd = DatasetSpec{Name: "salaries", Seed: 2}

func init() {
	// --- nominal: the examples/ workloads as conformance specs ---------

	Register(&Spec{
		Name:    "nominal/flights-region-season",
		Desc:    "The paper's flagship query speaks a grammar-valid answer whose refinement tendencies match the exact result (examples/quickstart, examples/flights).",
		Attrs:   []string{AttrNominal},
		Dataset: flights5k,
		Script: []Step{{
			Input: "how does cancellation depend on region and season",
			Expect: Expect{
				Action: "query", Speech: true, MaxChars: 600,
				MinRefinements: 1, Tendency: true,
			},
		}},
	})

	Register(&Spec{
		Name:    "nominal/salaries-exploration",
		Desc:    "Drill-down and roll-up over the college-salary dataset keep every answer in-grammar (examples/exploration).",
		Attrs:   []string{AttrNominal},
		Dataset: salariesStd,
		Script: []Step{
			{Input: "drill down", Expect: Expect{Action: "drill down", Speech: true, Tendency: true}},
			{Input: "break down by rough start salary", Expect: Expect{Action: "query", Speech: true}},
			{Input: "roll up the location", Expect: Expect{Action: "roll up", Speech: true}},
		},
	})

	Register(&Spec{
		Name:    "nominal/prior-baseline",
		Desc:    "The prior enumeration baseline answers the flagship query with well-formed sentences (the study's second arm).",
		Attrs:   []string{AttrNominal},
		Dataset: flights5k,
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Method: "prior",
			Expect: Expect{Action: "query", Speech: true},
		}},
	})

	Register(&Spec{
		Name:    "nominal/navigation-and-help",
		Desc:    "Navigation commands behave: undo with no history is a clean rejection, help lists the vocabulary, reset restores the initial breakdown.",
		Attrs:   []string{AttrNominal},
		Dataset: flights5k,
		Script: []Step{
			{Input: "back", Expect: Expect{ParseError: true}},
			{Input: "help", Expect: Expect{Action: "help"}},
			{Input: "break down by season", Expect: Expect{Action: "query", Speech: true}},
			{Input: "reset", Expect: Expect{Action: "reset", Speech: true}},
		},
	})

	// --- uncertainty: the Section 4.4 confidence extension -------------

	Register(&Spec{
		Name:    "uncertainty/bounds-sane",
		Desc:    "Bounds mode speaks at least one confidence interval and every bound sentence is well-formed.",
		Attrs:   []string{AttrUncertainty},
		Dataset: flights5k,
		Planner: PlannerSpec{Uncertainty: core.UncertaintyBounds},
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Expect: Expect{Action: "query", Speech: true, BoundsSane: true},
		}},
	})

	Register(&Spec{
		Name:    "uncertainty/warn-when-starved",
		Desc:    "Warn mode raises the low-confidence warning when sampling is starved against a strict width threshold.",
		Attrs:   []string{AttrUncertainty},
		Dataset: flights5k,
		Planner: PlannerSpec{
			Uncertainty: core.UncertaintyWarn,
			InitialRows: 8, RowsPerRound: 1, MinRounds: 1,
			MaxRoundsPerSentence: 2, WarnRelativeWidth: 0.0001,
		},
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Expect: Expect{Action: "query", Speech: true, Warning: true},
		}},
	})

	// --- asr: speech-recognition noise on the input path ----------------

	Register(&Spec{
		Name:    "asr/edit-noise-member-recovers",
		Desc:    "A member mention with phoneme-level typos still resolves through fuzzy matching and vocalizes (Speech-to-SQL's graceful-recovery workload).",
		Attrs:   []string{AttrASR},
		Dataset: flights5k,
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query"}},
			{
				Input:   "only flights in december",
				Corrupt: &CorruptSpec{Seed: 11},
				Expect:  Expect{Action: "query", Speech: true},
			},
		},
	})

	Register(&Spec{
		Name:    "asr/homophone-followup",
		Desc:    "A homophone-mangled follow-up (\"an four winner\") still narrows the established breakdown to winter.",
		Attrs:   []string{AttrASR},
		Dataset: flights5k,
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query"}},
			{
				Input:   "and for winter",
				Corrupt: &CorruptSpec{Seed: 3, Homophones: true},
				Expect:  Expect{Action: "query", Speech: true},
			},
		},
	})

	Register(&Spec{
		Name:    "asr/garbled-rejected",
		Desc:    "Input beyond fuzzy repair is rejected cleanly (HTTP 422 live), never answered with a made-up query.",
		Attrs:   []string{AttrASR},
		Dataset: flights5k,
		Script: []Step{
			{Input: "xyzzy plugh qwrt", Expect: Expect{ParseError: true}},
			{Input: "break down by season", Expect: Expect{Action: "query", Speech: true}},
		},
	})

	// --- multiturn: anaphora over session state -------------------------

	Register(&Spec{
		Name:    "multiturn/anaphora-winter",
		Desc:    "\"And for winter?\" keeps the established region-season breakdown and narrows the scope; a second season replaces the first.",
		Attrs:   []string{AttrMultiTurn},
		Dataset: flights5k,
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, Tendency: true}},
			{Input: "and for winter", Expect: Expect{Action: "query", Speech: true}},
			{Input: "and for summer", Expect: Expect{Action: "query", Speech: true}},
		},
	})

	Register(&Spec{
		Name:    "multiturn/same-but-carrier",
		Desc:    "\"Same but by carrier\" adds the airline dimension through the spoken-synonym table; \"drop the carrier\" removes it again.",
		Attrs:   []string{AttrMultiTurn},
		Dataset: flights5k,
		Script: []Step{
			{Input: "break down by region", Expect: Expect{Action: "query", Speech: true}},
			{Input: "same but by carrier", Expect: Expect{Action: "query", Speech: true}},
			{Input: "drop the carrier", Expect: Expect{Action: "remove", Speech: true}},
		},
	})

	Register(&Spec{
		Name:    "multiturn/undo-reset",
		Desc:    "The undo stack and reset restore earlier exploration states mid-conversation.",
		Attrs:   []string{AttrMultiTurn},
		Dataset: flights5k,
		Script: []Step{
			{Input: "break down by season", Expect: Expect{Action: "query"}},
			{Input: "drill down", Expect: Expect{Action: "drill down", Speech: true}},
			{Input: "back", Expect: Expect{Action: "back", Speech: true}},
			{Input: "reset", Expect: Expect{Action: "reset", Speech: true}},
		},
	})

	Register(&Spec{
		Name:    "multiturn/aggregate-switch",
		Desc:    "\"How many flights\" switches the aggregate mid-exploration without dropping the breakdown, and the count answer stays in-grammar.",
		Attrs:   []string{AttrMultiTurn},
		Dataset: flights5k,
		Script: []Step{
			{Input: "break down by region", Expect: Expect{Action: "query", Speech: true}},
			{Input: "how many flights", Expect: Expect{Action: "function", Speech: true}},
			{Input: "average again", Expect: Expect{Action: "function", Speech: true}},
		},
	})

	// --- fault: storage faults on the scan path (live-tuned) -----------

	Register(&Spec{
		Name:    "fault/failing-scan-valid-speech",
		Desc:    "A backend that dies mid-stream on every scan still yields a grammar-valid answer — faults degrade, never error.",
		Attrs:   []string{AttrFault, AttrLiveTuned},
		Dataset: flights5k,
		Faults:  faults.InjectorOptions{FailEvery: 1, FailAfter: 128},
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Expect: Expect{Action: "query", Speech: true},
		}},
	})

	Register(&Spec{
		Name:        "fault/slow-scan-deadline-degrades",
		Desc:        "A 1 ms/row scan against a 40 ms deadline must mark the answer degraded while keeping it in-grammar (the breaker's blowout signal).",
		Attrs:       []string{AttrFault, AttrLiveTuned},
		Dataset:     flights5k,
		Faults:      faults.InjectorOptions{SlowEvery: 1, SlowDelay: time.Millisecond},
		StepTimeout: 40 * time.Millisecond,
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Expect: Expect{Action: "query", Speech: true, Degraded: pbool(true)},
		}},
	})

	Register(&Spec{
		Name:    "fault/stalling-scan-recovers",
		Desc:    "A scan that hangs and heals (storage hiccup) delays the answer but never wedges or breaks the grammar.",
		Attrs:   []string{AttrFault, AttrLiveTuned},
		Dataset: flights5k,
		Faults:  faults.InjectorOptions{StallEvery: 1, StallAfter: 32, StallRelease: 100 * time.Millisecond},
		Script: []Step{{
			Input:  "how does cancellation depend on region and season",
			Expect: Expect{Action: "query", Speech: true},
		}},
	})

	// --- cache: the semantic answer cache's serving contract -------------

	Register(&Spec{
		Name:    "cache/semantic-hit",
		Desc:    "An equivalent rephrase of an answered query — dimensions reordered, \"carrier\" for \"airline\" — replays the finished speech from the semantic cache instead of re-running the planner.",
		Attrs:   []string{AttrCache, AttrLiveTuned},
		Dataset: flights5k,
		Live:    LiveSpec{SemCacheEntries: 64, SemCacheViews: 16, PoolSize: 2},
		Script: []Step{
			{Input: "how does cancellation depend on region and carrier", Expect: Expect{Action: "query", Speech: true, ServedBy: "this"}},
			{Input: "how does cancellation depend on airline and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "cache"}},
			{Input: "how does cancellation depend on carrier and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "cache"}},
		},
	})

	Register(&Spec{
		Name:    "cache/epoch-invalidation",
		Desc:    "Reloading a dataset bumps its cache epoch: the question that replayed from the cache a step earlier must be recomputed against the new data, never served stale.",
		Attrs:   []string{AttrCache, AttrLiveTuned},
		Dataset: flights5k,
		Live:    LiveSpec{SemCacheEntries: 128, SemCacheViews: 16, PoolSize: 2},
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, ServedBy: "this"}},
			{Input: "how does cancellation depend on season and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "cache"}},
			{Reload: &DatasetSpec{Name: "flights", Rows: 4000, Seed: 99}},
			{Input: "how does cancellation depend on season and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "this"}},
		},
	})

	Register(&Spec{
		Name:        "cache/degraded-never-cached",
		Desc:        "Deadline-degraded answers are never stored: equivalent rephrases after a degraded answer run the vocalizer again (and degrade again) instead of replaying the cut speech.",
		Attrs:       []string{AttrCache, AttrLiveTuned},
		Dataset:     flights5k,
		Faults:      faults.InjectorOptions{SlowEvery: 1, SlowDelay: time.Millisecond},
		StepTimeout: 40 * time.Millisecond,
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, Degraded: pbool(true), ServedBy: "this"}},
			{Input: "how does cancellation depend on season and region", Expect: Expect{Action: "query", Speech: true, Degraded: pbool(true), ServedBy: "this"}},
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, Degraded: pbool(true), ServedBy: "this"}},
		},
	})

	// --- stream: appends mid-conversation and the freshness contract ----

	Register(&Spec{
		Name:    "stream/windowed-last-hour",
		Desc:    "Time-windowed phrasings parse, vocalize in-grammar, and widen back out with \"all time\" — the query scope layer for freshly ingested rows.",
		Attrs:   []string{AttrStream},
		Dataset: flights5k,
		Script: []Step{
			{Input: "how does cancellation depend on region in the last hour", Expect: Expect{Action: "query", Speech: true}},
			{Input: "in the last 30 minutes", Expect: Expect{Action: "window", Speech: true}},
			{Input: "all time", Expect: Expect{Action: "window", Speech: true}},
		},
	})

	Register(&Spec{
		Name:    "stream/ingest-invalidates-cache",
		Desc:    "A streaming append between two identical questions makes the cached answer unreachable: the post-ingest ask recomputes at the bumped epoch (never replays stale), and the recomputed answer caches again at the new epoch.",
		Attrs:   []string{AttrStream, AttrLiveTuned},
		Dataset: flights5k,
		Live:    LiveSpec{SemCacheEntries: 64, SemCacheViews: 16, PoolSize: 2},
		Script: []Step{
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, ServedBy: "this"}},
			{Input: "how does cancellation depend on season and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "cache"}},
			{Ingest: &IngestSpec{Rows: 50, Seed: 77}},
			{Input: "how does cancellation depend on season and region", Expect: Expect{Action: "query", Speech: true, ServedBy: "this", MinEpoch: 1}},
			{Input: "how does cancellation depend on region and season", Expect: Expect{Action: "query", Speech: true, ServedBy: "cache", MinEpoch: 1}},
		},
	})

	Register(&Spec{
		Name:    "stream/ingest-under-faults",
		Desc:    "Appends keep landing while a stalling backend delays every scan: the post-ingest answer is computed at the new epoch and stays in-grammar — streaming degrades with the storage, never errors.",
		Attrs:   []string{AttrStream, AttrFault, AttrLiveTuned},
		Dataset: flights5k,
		Faults:  faults.InjectorOptions{StallEvery: 1, StallAfter: 32, StallRelease: 100 * time.Millisecond},
		Live:    LiveSpec{SemCacheEntries: 64, SemCacheViews: 16, PoolSize: 2},
		Script: []Step{
			{Input: "how does cancellation depend on region", Expect: Expect{Action: "query", Speech: true}},
			{Ingest: &IngestSpec{Rows: 40, Seed: 41}},
			{Input: "break down by season", Expect: Expect{Action: "query", Speech: true, MinEpoch: 1}},
		},
	})

	// --- overload: concurrent sessions against tight admission ----------

	Register(&Spec{
		Name:     "overload/parallel-sessions-shed-clean",
		Desc:     "Eight concurrent sessions against two vocalization slots: answers stay in-grammar, refusals are clean 429/503 with Retry-After, and nothing 500s (in-process, the same script races the planner under -race).",
		Attrs:    []string{AttrOverload, AttrLiveTuned},
		Dataset:  flights5k,
		Parallel: 8,
		Live:     LiveSpec{MaxConcurrent: 2, QueueDepth: 2, AllowShed: true},
		Script: []Step{
			{Input: "break down by season", Expect: Expect{Action: "query", Speech: true}},
			{Input: "drill down", Expect: Expect{Action: "drill down", Speech: true}},
			{Input: "break down by airline", Expect: Expect{Action: "query", Speech: true}},
		},
	})
}
