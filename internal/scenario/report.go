package scenario

import (
	"runtime"
	"sort"
	"time"
)

// ScenarioReport is one scenario's row in the pass/fail matrix.
type ScenarioReport struct {
	Name  string   `json:"name"`
	Class string   `json:"class"`
	Attrs []string `json:"attrs"`
	Pass  bool     `json:"pass"`
	// Skipped marks scenarios the runner could not execute against the
	// chosen target (live-tuned specs against an external server).
	Skipped bool `json:"skipped,omitempty"`
	// Steps counts executed steps over all parallel sessions.
	Steps int `json:"steps"`
	// SpeechAnswers, Degraded, Fallbacks and Shed count step outcomes.
	SpeechAnswers int `json:"speechAnswers"`
	Degraded      int `json:"degraded"`
	Fallbacks     int `json:"fallbacks"`
	Shed          int `json:"shed"`
	// LatencyMS summarizes per-answer wall latency.
	LatencyMS map[string]float64 `json:"latencyMs,omitempty"`
	// WallMS is the scenario's total wall time.
	WallMS float64 `json:"wallMs"`
	// Violations lists the failed expectations (empty when Pass).
	Violations []Violation `json:"violations,omitempty"`
}

// Report is the BENCH_scenarios.json artifact.
type Report struct {
	Bench string `json:"bench"`
	// Mode is "in-process" or "live".
	Mode string `json:"mode"`
	// NumCPU and Gomaxprocs pin the machine the latencies were taken on.
	NumCPU     int              `json:"num_cpu"`
	Gomaxprocs int              `json:"gomaxprocs"`
	WallMS     float64          `json:"wallMs"`
	Scenarios  []ScenarioReport `json:"scenarios"`
	Pass       int              `json:"pass"`
	Fail       int              `json:"fail"`
	Skip       int              `json:"skip"`
	// Config echoes the runner configuration for trend comparability.
	Config map[string]any `json:"config,omitempty"`
	// Faults sums injected-fault counts over all booted servers.
	Faults any `json:"faults,omitempty"`
}

// Summarize builds a scenario's report row from its result.
func Summarize(res *Result) ScenarioReport {
	sr := ScenarioReport{
		Name:   res.Spec.Name,
		Class:  res.Spec.Class(),
		Attrs:  res.Spec.Attrs,
		Pass:   res.Passed(),
		Steps:  len(res.Steps),
		WallMS: float64(res.Wall) / float64(time.Millisecond),
	}
	var latencies []time.Duration
	for _, st := range res.Steps {
		if st.Spoke {
			sr.SpeechAnswers++
			latencies = append(latencies, st.Latency)
		}
		if st.Degraded {
			sr.Degraded++
		}
		if st.Fallback != "" {
			sr.Fallbacks++
		}
		if st.Shed {
			sr.Shed++
		}
	}
	if len(latencies) > 0 {
		sr.LatencyMS = map[string]float64{
			"p50": quantileMS(latencies, 0.50),
			"max": quantileMS(latencies, 1.0),
		}
	}
	sr.Violations = res.Violations
	return sr
}

// SkippedReport builds the row for a spec the runner could not execute.
func SkippedReport(s *Spec) ScenarioReport {
	return ScenarioReport{Name: s.Name, Class: s.Class(), Attrs: s.Attrs, Pass: true, Skipped: true}
}

// NewReport assembles the matrix.
func NewReport(mode string, wall time.Duration, rows []ScenarioReport) *Report {
	r := &Report{
		Bench:      "scenarios",
		Mode:       mode,
		NumCPU:     runtime.NumCPU(),
		Gomaxprocs: runtime.GOMAXPROCS(0),
		WallMS:     float64(wall) / float64(time.Millisecond),
		Scenarios:  rows,
	}
	for _, row := range r.Scenarios {
		switch {
		case row.Skipped:
			r.Skip++
		case row.Pass:
			r.Pass++
		default:
			r.Fail++
		}
	}
	return r
}

// quantileMS returns the q-quantile of latencies in milliseconds.
func quantileMS(latencies []time.Duration, q float64) float64 {
	if len(latencies) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}
