package scenario

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// datasetProfile carries the spoken measure a dataset family vocalizes.
type datasetProfile struct {
	col, desc string
	format    speech.ValueFormat
}

// profiles mirrors the live server's dataset registrations.
var profiles = map[string]datasetProfile{
	"flights":  {col: "cancelled", desc: "average cancellation probability", format: speech.PercentFormat},
	"salaries": {col: "midCareerSalary", desc: "average mid-career salary", format: speech.ThousandsFormat},
}

// datasetCache shares generated datasets across scenarios: generation is
// the dominant setup cost and datasets are immutable after binding.
var datasetCache sync.Map // DatasetSpec -> *olap.Dataset

// dataset builds (or reuses) the dataset for the spec.
func dataset(ds DatasetSpec) (*olap.Dataset, error) {
	if d, ok := datasetCache.Load(ds); ok {
		return d.(*olap.Dataset), nil
	}
	var d *olap.Dataset
	var err error
	switch ds.Name {
	case "flights":
		rows := ds.Rows
		if rows <= 0 {
			rows = 5000
		}
		d, err = datagen.Flights(datagen.FlightsConfig{Rows: rows, Seed: ds.Seed})
	case "salaries":
		d, err = datagen.Salaries(datagen.SalariesConfig{Seed: ds.Seed})
	default:
		err = fmt.Errorf("scenario: unknown dataset %q", ds.Name)
	}
	if err != nil {
		return nil, err
	}
	actual, _ := datasetCache.LoadOrStore(ds, d)
	return actual.(*olap.Dataset), nil
}

// plannerConfig assembles the in-process core configuration for a spec: a
// simulated clock (responses are immediate, as on the server), the live
// server's budget caps, the spec's planner overrides, and its injector.
func plannerConfig(s *Spec, inj *faults.Injector) core.Config {
	pl := s.Planner
	cfg := core.Config{
		Seed:                 pl.Seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 500,
		MaxTreeNodes:         50000,
		InitialRows:          pl.InitialRows,
		RowsPerRound:         pl.RowsPerRound,
		SamplesPerRound:      pl.SamplesPerRound,
		MinRounds:            pl.MinRounds,
		Uncertainty:          pl.Uncertainty,
		Confidence:           pl.Confidence,
		WarnRelativeWidth:    pl.WarnRelativeWidth,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if pl.MaxRoundsPerSentence > 0 {
		cfg.MaxRoundsPerSentence = pl.MaxRoundsPerSentence
	}
	if inj != nil {
		cfg.Scanner = inj.Scanner
	}
	return cfg
}

// StepResult records one executed step.
type StepResult struct {
	// Step is the script index; Session distinguishes Parallel workers.
	Step    int `json:"step"`
	Session int `json:"session"`
	// Input is the utterance actually parsed (after corruption).
	Input string `json:"input"`
	// Action is the interpreter's classification ("" on parse errors).
	Action string `json:"action,omitempty"`
	// Spoke reports a vocalized answer; Degraded its deadline flag.
	Spoke    bool `json:"spoke,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// ServedBy is the vocalizer that answered; Fallback the admission
	// layer's reason when it differs from the requested method (live
	// runner only).
	ServedBy string `json:"servedBy,omitempty"`
	Fallback string `json:"fallback,omitempty"`
	// Shed marks a clean live-runner refusal (429/503).
	Shed bool `json:"shed,omitempty"`
	// Latency is the answer's wall time.
	Latency time.Duration `json:"-"`
}

// Result is one scenario run.
type Result struct {
	Spec       *Spec
	Steps      []StepResult
	Violations []Violation
	Wall       time.Duration
}

// Passed reports a clean run.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// Run executes a spec in-process: real nlq sessions and vocalizers, no
// HTTP. Parallel > 1 runs that many independent sessions concurrently over
// the shared dataset (the race detector then covers the planner and scan
// paths under contention). Checks that need structured output — tendency,
// bounds, warnings — run here and only here.
func Run(ctx context.Context, s *Spec) (*Result, error) {
	d, err := dataset(s.Dataset)
	if err != nil {
		return nil, err
	}
	prof := profiles[s.Dataset.Name]
	var inj *faults.Injector
	if s.Faults.Enabled() {
		inj = faults.NewInjector(s.Faults)
	}
	cfg := plannerConfig(s, inj)

	workers := s.Parallel
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	results := make([]*sessionRun, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runSession(ctx, s, d, prof, cfg, w)
		}(w)
	}
	wg.Wait()

	res := &Result{Spec: s, Wall: time.Since(start)}
	for _, sr := range results {
		res.Steps = append(res.Steps, sr.steps...)
		res.Violations = append(res.Violations, sr.violations.list...)
	}
	return res, nil
}

// sessionRun is one worker's outcome.
type sessionRun struct {
	steps      []StepResult
	violations violations
}

// runSession walks one session through the script. Every step replays the
// web layer's stage-then-commit discipline — parse on a clone first, then
// on the live session — so Clone isolation is exercised by every scenario,
// not just dedicated tests.
func runSession(ctx context.Context, s *Spec, d *olap.Dataset, prof datasetProfile, cfg core.Config, worker int) *sessionRun {
	sr := &sessionRun{}
	sess, err := nlq.NewSession(d, olap.Avg, prof.col, prof.desc)
	if err != nil {
		sr.violations.step = -1
		sr.violations.addf("setup", "session: %v", err)
		return sr
	}
	for i, step := range s.Script {
		sr.violations.step = i
		if step.Reload != nil || step.Ingest != nil {
			// Epoch bumps are a serving-layer concern: the in-process
			// runner has no cache to invalidate, so a reload or ingest is
			// a no-op and the script keeps speaking against the original
			// data.
			input := "(reload)"
			if step.Ingest != nil {
				input = "(ingest)"
			}
			sr.steps = append(sr.steps, StepResult{Step: i, Session: worker, Input: input})
			continue
		}
		input := step.Input
		if c := step.Corrupt; c != nil {
			input = nlq.NewCorrupter(nlq.CorruptConfig{
				Seed: c.Seed + int64(worker), Rate: c.Rate, Homophones: c.Homophones,
			}).Corrupt(input)
		}
		rec := StepResult{Step: i, Session: worker, Input: input}

		before := sess.Summary()
		staged := sess.Clone()
		stagedResp, stagedErr := staged.Parse(input)
		if after := sess.Summary(); after != before {
			sr.violations.addf("isolation", "staged parse of %q mutated the live session", input)
		}
		resp, err := sess.Parse(input)
		if (stagedErr == nil) != (err == nil) {
			sr.violations.addf("isolation", "staged/live parse divergence on %q: %v vs %v", input, stagedErr, err)
		}

		if step.Expect.ParseError {
			if err == nil {
				sr.violations.addf("parse", "expected %q to be rejected, got action %q", input, resp.Action)
			}
			sr.steps = append(sr.steps, rec)
			continue
		}
		if err != nil {
			sr.violations.addf("parse", "parse %q: %v", input, err)
			sr.steps = append(sr.steps, rec)
			continue
		}
		if stagedErr == nil && (stagedResp.Action != resp.Action || stagedResp.IsQuery != resp.IsQuery) {
			sr.violations.addf("isolation", "staged/live response mismatch on %q: %q vs %q",
				input, stagedResp.Action, resp.Action)
		}
		rec.Action = resp.Action
		if e := step.Expect; e.Action != "" && resp.Action != e.Action {
			sr.violations.addf("action", "input %q: action %q, want %q", input, resp.Action, e.Action)
		}

		if resp.IsQuery && step.Expect.Speech {
			vocalizeStep(ctx, s, d, prof, cfg, sess.Query(), step, &rec, &sr.violations)
		} else if step.Expect.Speech {
			sr.violations.addf("speech", "input %q expected to vocalize but produced action %q", input, resp.Action)
		}
		sr.steps = append(sr.steps, rec)
	}
	return sr
}

// vocalizeStep runs the step's vocalizer under the spec's deadline and
// applies the speech expectations.
func vocalizeStep(ctx context.Context, s *Spec, d *olap.Dataset, prof datasetProfile, cfg core.Config, q olap.Query, step Step, rec *StepResult, vs *violations) {
	if s.StepTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.StepTimeout)
		defer cancel()
	}
	method := step.Method
	if method == "" {
		method = "this"
	}
	rec.ServedBy = method
	start := time.Now()
	switch method {
	case "prior":
		out, err := baseline.NewPrior(d, q, baseline.Config{
			Format:      prof.format,
			MergeValues: true,
		}).VocalizeContext(ctx)
		rec.Latency = time.Since(start)
		if err != nil {
			vs.addf("vocalize", "prior: %v (faults must degrade, not error)", err)
			return
		}
		rec.Spoke, rec.Degraded = true, out.Truncated
		vs.checkSpeechText(out.Text, "prior", step.Expect)
		vs.checkDegraded(out.Truncated, step.Expect)
	default:
		c := cfg
		c.Format = prof.format
		out, err := core.NewHolistic(d, q, c).VocalizeContext(ctx)
		rec.Latency = time.Since(start)
		if err != nil {
			vs.addf("vocalize", "holistic: %v (faults must degrade, not error)", err)
			return
		}
		rec.Spoke, rec.Degraded = true, out.Degraded
		vs.checkSpeechText(out.Text(), "this", step.Expect)
		vs.checkDegraded(out.Degraded, step.Expect)
		vs.checkHolisticShape(out, step.Expect)
		vs.checkUncertainty(out, step.Expect)
		if step.Expect.Tendency && !out.Degraded {
			vs.checkTendency(d, q, out.Speech)
		}
	}
}
