// Package scenario is a declarative end-to-end conformance registry for
// the voice-OLAP system, in the style of tast test bundles: one scenario
// is a named spec — dataset, planner knobs, fault profile, and a script of
// utterances with expected speech properties — and two runners execute the
// same spec. The in-process runner (see Run) drives nlq sessions and the
// core vocalizers directly and is what `go test ./internal/scenario/...`
// executes, race-detector clean and in parallel. The live runner (see
// RunLive and cmd/scenarios) drives the identical specs over HTTP against
// a voiceolapd-style server and additionally checks the admission layer's
// servedBy/fallback/status-code contracts.
//
// The registry converts the paper's implicit correctness knowledge —
// grammar-valid speech, truthful refinement tendencies, confidence-
// interval sanity, graceful degradation under storage faults and overload
// — into an executable, extensible conformance surface: adding a workload
// is writing one Spec literal.
package scenario

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// Well-known Attrs tags. Every spec carries exactly one class tag plus any
// number of free-form tags; runners and CI filter on them.
const (
	// AttrNominal marks clean-path workloads ported from examples/.
	AttrNominal = "nominal"
	// AttrASR marks scripts with injected speech-recognition noise.
	AttrASR = "asr"
	// AttrMultiTurn marks anaphora-heavy multi-turn scripts.
	AttrMultiTurn = "multiturn"
	// AttrFault marks scripts run against injected storage faults.
	AttrFault = "fault"
	// AttrOverload marks concurrent scripts that probe admission control.
	AttrOverload = "overload"
	// AttrUncertainty marks scripts checking the Section 4.4 extension.
	AttrUncertainty = "uncertainty"
	// AttrCache marks scripts that probe the semantic answer cache's
	// serving contract (replays, epoch invalidation, degraded exclusion).
	AttrCache = "cache"
	// AttrStream marks scripts that append rows mid-conversation and
	// check the freshness contract (epoch bumps, windowed scopes, zero
	// stale cache replays).
	AttrStream = "stream"
	// AttrLiveTuned marks specs whose expectations depend on the live
	// server profile (timeouts, queue depths, injected faults). The live
	// runner skips them in -target mode, where it cannot control the
	// server's configuration.
	AttrLiveTuned = "live-tuned"
)

// DatasetSpec selects and sizes the generated dataset a scenario runs on.
type DatasetSpec struct {
	// Name is the dataset family: "flights" or "salaries".
	Name string
	// Rows sizes the generated table (flights only; zero selects 5000).
	Rows int
	// Seed drives generation; equal specs share one cached dataset.
	Seed int64
}

// PlannerSpec overrides core.Config knobs for the in-process runner; zero
// fields keep the runner's defaults (which mirror the live server's).
type PlannerSpec struct {
	// Seed drives the planner's randomized components (default 1).
	Seed int64
	// InitialRows, RowsPerRound, SamplesPerRound, MinRounds and
	// MaxRoundsPerSentence override the sampling budget.
	InitialRows          int
	RowsPerRound         int
	SamplesPerRound      int
	MinRounds            int
	MaxRoundsPerSentence int
	// Uncertainty selects the confidence extension for holistic answers.
	Uncertainty core.UncertaintyMode
	// Confidence is the level for bounds and warnings (default 0.95).
	Confidence float64
	// WarnRelativeWidth is the warning trigger width (default 0.5).
	WarnRelativeWidth float64
}

// LiveSpec tunes the live server profile a scenario needs. Specs with a
// non-zero LiveSpec must also carry AttrLiveTuned: the live runner boots a
// dedicated server with these options, and skips the spec when pointed at
// an externally managed server.
type LiveSpec struct {
	// MaxConcurrent bounds vocalization slots (zero keeps the default).
	MaxConcurrent int
	// QueueDepth bounds the admission queue (meaningful with
	// MaxConcurrent; zero sheds at saturation).
	QueueDepth int
	// AllowShed accepts clean 429/503 sheds as step outcomes instead of
	// violations — the overload contract is "refuse cleanly", not "never
	// refuse".
	AllowShed bool
	// SemCacheEntries, SemCacheViews and PoolSize tune the server's
	// semantic answer cache, warmed-view cache and session pools (zero
	// keeps the server defaults, negative disables — the same contract as
	// web.Options).
	SemCacheEntries int
	SemCacheViews   int
	PoolSize        int
}

// IngestSpec appends generated rows to the scenario's dataset mid-script
// through the serving side's streaming path, bumping its cache epoch.
// Rows are drawn from the flights generator's statistical model, so they
// always pass the streaming append's dictionary check.
type IngestSpec struct {
	// Rows is the batch size (zero selects 50).
	Rows int
	// Seed drives row generation.
	Seed int64
}

// CorruptSpec applies seeded ASR noise to a step's input before parsing.
type CorruptSpec struct {
	// Seed fixes the corruption stream.
	Seed int64
	// Rate is the per-word corruption probability (zero selects 1).
	Rate float64
	// Homophones enables whole-word homophone confusions.
	Homophones bool
}

// Expect declares the properties a step's outcome must satisfy. The zero
// value only checks that the step parses.
type Expect struct {
	// Action, when non-empty, pins the interpreter's Response.Action.
	Action string
	// ParseError expects the utterance to be rejected by the interpreter
	// (HTTP 422 in the live runner).
	ParseError bool
	// Speech expects a vocalized answer whose text conforms to the
	// grammar of whichever vocalizer served it.
	Speech bool
	// MaxChars bounds the spoken main text (zero: the grammar's own 300-
	// char preference is still enforced via conformance).
	MaxChars int
	// MinRefinements requires at least this many refinement sentences
	// (holistic, non-degraded answers only).
	MinRefinements int
	// Tendency verifies every refinement's spoken direction against the
	// exact query result (in-process only; skipped on degraded answers).
	Tendency bool
	// BoundsSane requires at least one spoken confidence bound, each
	// matching the bounds sentence form (in-process only).
	BoundsSane bool
	// Warning requires the low-confidence warning to be spoken
	// (in-process only).
	Warning bool
	// Degraded, when non-nil, pins the answer's degraded flag.
	Degraded *bool
	// ServedBy, when non-empty, pins the serving path: "this", "prior",
	// or "cache" for a semantic-cache replay (live runner only — the
	// in-process runner has no cache and ignores it). Requires Speech.
	ServedBy string
	// MinEpoch, when positive, requires the answer's dataEpoch to be at
	// least this value — the freshness proof that earlier Ingest steps
	// are visible (live runner only; requires Speech).
	MinEpoch int64
}

// Step is one utterance of a scenario script.
type Step struct {
	// Input is the clean utterance.
	Input string
	// Corrupt, when non-nil, replaces Input with its seeded ASR-noise
	// corruption before parsing.
	Corrupt *CorruptSpec
	// Method selects the vocalizer: "this" (default) or "prior".
	Method string
	// Reload, when non-nil, replaces the utterance with a serving-side
	// dataset swap: the live runner regenerates the named dataset from
	// this spec and reloads it into the server, bumping its cache epoch.
	// The in-process runner (no cache, no server) treats it as a no-op.
	// Reload steps carry no Input and no Expect.
	Reload *DatasetSpec
	// Ingest, when non-nil, replaces the utterance with a serving-side
	// streaming append: the live runner ships a generated batch to the
	// server's ingest endpoint, bumping the dataset's cache epoch. The
	// in-process runner (no cache, no server) treats it as a no-op.
	// Ingest steps carry no Input and no Expect.
	Ingest *IngestSpec
	// Expect declares the required outcome.
	Expect Expect
}

// Spec is one declarative scenario.
type Spec struct {
	// Name uniquely identifies the scenario ("nominal/regions-seasons").
	Name string
	// Desc says what the scenario proves, for humans and reports.
	Desc string
	// Attrs tag the scenario for filtering; the first entry is the class.
	Attrs []string
	// Dataset selects the generated dataset.
	Dataset DatasetSpec
	// Planner overrides in-process planner knobs.
	Planner PlannerSpec
	// Faults injects storage faults into every matching scan.
	Faults faults.InjectorOptions
	// StepTimeout bounds each vocalization (in-process: the context
	// deadline; live: the profile's RequestTimeout). Zero means generous.
	StepTimeout time.Duration
	// Live tunes the dedicated live-server profile.
	Live LiveSpec
	// Parallel runs the script in this many concurrent sessions (default
	// 1); each session gets an independent nlq state over the shared
	// dataset.
	Parallel int
	// Script is the utterance sequence every session walks through.
	Script []Step
}

// Class returns the scenario's class tag (the first attribute).
func (s *Spec) Class() string {
	if len(s.Attrs) == 0 {
		return ""
	}
	return s.Attrs[0]
}

// HasAttr reports whether the spec carries the tag.
func (s *Spec) HasAttr(tag string) bool {
	for _, a := range s.Attrs {
		if a == tag {
			return true
		}
	}
	return false
}

// LiveTuned reports whether the spec depends on a controlled server
// profile and must be skipped against external targets.
func (s *Spec) LiveTuned() bool {
	return s.HasAttr(AttrLiveTuned) || s.Faults.Enabled() ||
		s.Live != (LiveSpec{}) || s.StepTimeout != 0 || s.mutatesServer()
}

// mutatesServer reports whether any step swaps or appends to a dataset
// mid-script — either way the server is dirty for later specs.
func (s *Spec) mutatesServer() bool {
	for _, st := range s.Script {
		if st.Reload != nil || st.Ingest != nil {
			return true
		}
	}
	return false
}

// registry state; Register runs from init and tests read concurrently.
var (
	regMu   sync.Mutex
	regList []*Spec
	regByNm = map[string]*Spec{}
)

// Register adds a spec to the registry; it panics on invalid or duplicate
// specs so a bad registration fails the build's tests immediately.
func Register(s *Spec) {
	if err := s.validate(); err != nil {
		panic(fmt.Sprintf("scenario: register %q: %v", s.Name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regByNm[s.Name]; dup {
		panic(fmt.Sprintf("scenario: duplicate scenario %q", s.Name))
	}
	regByNm[s.Name] = s
	regList = append(regList, s)
}

// validate rejects malformed specs.
func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("name required")
	}
	if s.Desc == "" {
		return fmt.Errorf("desc required")
	}
	if len(s.Attrs) == 0 {
		return fmt.Errorf("at least one attr (the class) required")
	}
	switch s.Dataset.Name {
	case "flights", "salaries":
	default:
		return fmt.Errorf("unknown dataset %q", s.Dataset.Name)
	}
	if len(s.Script) == 0 {
		return fmt.Errorf("empty script")
	}
	for i, st := range s.Script {
		switch st.Method {
		case "", "this", "prior":
		default:
			return fmt.Errorf("step %d: unknown method %q", i, st.Method)
		}
		if st.Expect.ParseError && st.Expect.Speech {
			return fmt.Errorf("step %d: ParseError and Speech are exclusive", i)
		}
		switch st.Expect.ServedBy {
		case "", "this", "prior", "cache":
		default:
			return fmt.Errorf("step %d: unknown ServedBy %q", i, st.Expect.ServedBy)
		}
		if st.Expect.ServedBy != "" && !st.Expect.Speech {
			return fmt.Errorf("step %d: ServedBy requires Speech", i)
		}
		if st.Expect.MinEpoch < 0 {
			return fmt.Errorf("step %d: negative MinEpoch", i)
		}
		if st.Expect.MinEpoch > 0 && !st.Expect.Speech {
			return fmt.Errorf("step %d: MinEpoch requires Speech", i)
		}
		if st.Reload != nil && st.Ingest != nil {
			return fmt.Errorf("step %d: Reload and Ingest are exclusive", i)
		}
		if st.Reload != nil || st.Ingest != nil {
			kind := "Reload"
			if st.Ingest != nil {
				kind = "Ingest"
			}
			if st.Input != "" || st.Corrupt != nil || st.Method != "" || st.Expect != (Expect{}) {
				return fmt.Errorf("step %d: an %s step carries no input, method, or expectations", i, kind)
			}
		}
		if st.Reload != nil {
			switch st.Reload.Name {
			case "flights", "salaries":
			default:
				return fmt.Errorf("step %d: reload of unknown dataset %q", i, st.Reload.Name)
			}
		}
		if st.Ingest != nil && s.Dataset.Name != "flights" {
			// Generated ingest batches come from the flights row model.
			return fmt.Errorf("step %d: Ingest is only supported on the flights dataset", i)
		}
	}
	if s.mutatesServer() {
		if s.Parallel > 1 {
			return fmt.Errorf("reload/ingest steps require a single session (Parallel <= 1)")
		}
		if s.Live == (LiveSpec{}) {
			// A reload or ingest mutates its server for the rest of the
			// run; sharing the clean default profile would corrupt every
			// later spec.
			return fmt.Errorf("reload/ingest steps require a dedicated live profile (non-zero Live)")
		}
	}
	if s.LiveTuned() && !s.HasAttr(AttrLiveTuned) {
		return fmt.Errorf("faults/live/timeout profile requires the %q attr", AttrLiveTuned)
	}
	return nil
}

// All returns the registered specs sorted by name.
func All() []*Spec {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]*Spec, len(regList))
	copy(out, regList)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName returns a registered spec, or nil.
func ByName(name string) *Spec {
	regMu.Lock()
	defer regMu.Unlock()
	return regByNm[name]
}

// pbool makes Expect.Degraded literals readable.
func pbool(b bool) *bool { return &b }
