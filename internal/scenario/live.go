package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/nlq"
	"repro/internal/speech"
	"repro/internal/web"
)

// statusClientClosedRequest is nginx's 499, which the server uses for
// requests whose client hung up while queued.
const statusClientClosedRequest = 499

// PoolConfig sizes the in-process live servers the pool boots.
type PoolConfig struct {
	// FlightRows sizes the flights dataset (zero selects 5000).
	FlightRows int
	// Seed drives dataset generation and the planner.
	Seed int64
	// RequestTimeout is the default per-request deadline for specs that
	// do not pin a StepTimeout (zero selects 10s).
	RequestTimeout time.Duration
}

// profileKey identifies a live-server configuration. Specs sharing a key
// share one server; the zero key is the clean default profile.
type profileKey struct {
	faults  faults.InjectorOptions
	timeout time.Duration
	live    LiveSpec
}

// poolServer is one booted server. The web.Server handle stays retained
// for Reload steps, which swap datasets (and bump cache epochs) without
// going through HTTP.
type poolServer struct {
	base     string
	injector *faults.Injector
	web      *web.Server
	hs       *http.Server
	ln       net.Listener
}

// ServerPool boots one in-process voice-OLAP server per distinct scenario
// profile — fault injection and admission tuning are server-wide, so specs
// that need them cannot share a server with clean specs — and reuses
// servers across specs with equal profiles. Datasets are shared through
// the package cache.
type ServerPool struct {
	cfg     PoolConfig
	mu      sync.Mutex
	servers map[profileKey]*poolServer
}

// NewServerPool returns an empty pool.
func NewServerPool(cfg PoolConfig) *ServerPool {
	if cfg.FlightRows <= 0 {
		cfg.FlightRows = 5000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	return &ServerPool{cfg: cfg, servers: make(map[profileKey]*poolServer)}
}

// Server returns the base URL of a server matching the spec's profile,
// booting it on first use.
func (p *ServerPool) Server(s *Spec) (string, error) {
	key := profileKey{faults: s.Faults, timeout: s.StepTimeout, live: s.Live}
	p.mu.Lock()
	defer p.mu.Unlock()
	if srv, ok := p.servers[key]; ok {
		return srv.base, nil
	}
	srv, err := p.boot(key)
	if err != nil {
		return "", err
	}
	p.servers[key] = srv
	return srv.base, nil
}

// boot builds the datasets and serves the web API on a loopback listener.
func (p *ServerPool) boot(key profileKey) (*poolServer, error) {
	flights, err := dataset(DatasetSpec{Name: "flights", Rows: p.cfg.FlightRows, Seed: p.cfg.Seed})
	if err != nil {
		return nil, err
	}
	salaries, err := dataset(DatasetSpec{Name: "salaries", Seed: p.cfg.Seed + 1})
	if err != nil {
		return nil, err
	}
	// Clock stays nil: the server gives every request its own simulated
	// clock, so concurrent vocalizations never share timing state.
	cfg := core.Config{Seed: p.cfg.Seed}
	ps := &poolServer{}
	if key.faults.Enabled() {
		ps.injector = faults.NewInjector(key.faults)
		cfg.Scanner = ps.injector.Scanner
	}
	opts := web.Options{
		RequestTimeout:  key.timeout,
		MaxConcurrent:   key.live.MaxConcurrent,
		QueueDepth:      key.live.QueueDepth,
		SemCacheEntries: key.live.SemCacheEntries,
		SemCacheViews:   key.live.SemCacheViews,
		PoolSize:        key.live.PoolSize,
		Logf:            func(string, ...any) {}, // scenario noise stays out of reports
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = p.cfg.RequestTimeout
	}
	srv, err := web.NewServerWith(cfg, opts,
		web.DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		web.DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ps.web = srv
	ps.ln = ln
	ps.hs = &http.Server{Handler: srv.Handler()}
	go ps.hs.Serve(ln)
	ps.base = "http://" + ln.Addr().String()
	return ps, nil
}

// Reloader swaps a dataset on the serving side mid-scenario, bumping the
// server's cache epoch. The pool implements it for in-process servers;
// external targets cannot be reloaded, which is one reason reload specs
// are live-tuned and skipped in -target mode.
type Reloader interface {
	Reload(s *Spec, ds DatasetSpec) error
}

// Ingester appends a generated batch to the spec's dataset through the
// serving side's streaming path. The pool implements it; runners discover
// it on their Reloader via type assertion, so external targets (which
// support neither) keep working unchanged.
type Ingester interface {
	Ingest(s *Spec, ing IngestSpec) error
}

// Reload regenerates ds (through the shared dataset cache) and swaps it
// into the pooled server serving the spec's profile.
func (p *ServerPool) Reload(s *Spec, ds DatasetSpec) error {
	key := profileKey{faults: s.Faults, timeout: s.StepTimeout, live: s.Live}
	p.mu.Lock()
	srv, ok := p.servers[key]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("no pooled server for %q's profile", s.Name)
	}
	d, err := dataset(ds)
	if err != nil {
		return err
	}
	return srv.web.ReloadDataset(ds.Name, d)
}

// Ingest ships a generated flights batch to the pooled server serving the
// spec's profile via its streaming ingest endpoint — the same HTTP path a
// real feed uses, so epoch bumps and cache purges are exercised for real.
func (p *ServerPool) Ingest(s *Spec, ing IngestSpec) error {
	key := profileKey{faults: s.Faults, timeout: s.StepTimeout, live: s.Live}
	p.mu.Lock()
	srv, ok := p.servers[key]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("no pooled server for %q's profile", s.Name)
	}
	n := ing.Rows
	if n <= 0 {
		n = 50
	}
	body, err := json.Marshal(map[string]any{
		"dataset": s.Dataset.Name,
		"rows":    datagen.FlightRows(ing.Seed, n),
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(srv.base+"/api/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("ingest status %d: %s", resp.StatusCode, b)
	}
	return nil
}

// InjectorStats sums fault counts over all booted servers.
func (p *ServerPool) InjectorStats() faults.InjectorStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total faults.InjectorStats
	for _, srv := range p.servers {
		if srv.injector == nil {
			continue
		}
		st := srv.injector.Stats()
		total.Scans += st.Scans
		total.Slowed += st.Slowed
		total.Stalled += st.Stalled
		total.Failed += st.Failed
	}
	return total
}

// Close shuts every booted server down.
func (p *ServerPool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, srv := range p.servers {
		srv.hs.Close()
	}
	p.servers = make(map[profileKey]*poolServer)
}

// queryPayload mirrors the server's /api/query response fields the
// conformance checks read.
type queryPayload struct {
	Action    string `json:"action"`
	Speech    string `json:"speech"`
	Degraded  bool   `json:"degraded"`
	ServedBy  string `json:"servedBy"`
	Origin    string `json:"origin"`
	Cache     string `json:"cache"`
	Fallback  string `json:"fallback"`
	DataEpoch int64  `json:"dataEpoch"`
	Stale     bool   `json:"stale"`
	Error     string `json:"error"`
}

// RunLive executes a spec over HTTP against base. The spec's in-process-
// only expectations (tendency, bounds, warnings) are skipped — they need
// the structured planner output — while the admission-layer contracts the
// in-process runner cannot see (status codes, servedBy, fallback,
// Retry-After on sheds, semantic-cache replays) are enforced here. runID
// namespaces sessions so repeated runs against one server never share
// exploration state. rel executes Reload steps; it may be nil when the
// spec has none (external targets skip reload specs as live-tuned).
func RunLive(ctx context.Context, client *http.Client, base string, s *Spec, runID string, rel Reloader) (*Result, error) {
	workers := s.Parallel
	if workers < 1 {
		workers = 1
	}
	start := time.Now()
	results := make([]*sessionRun, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runLiveSession(ctx, client, base, s, runID, rel, w)
		}(w)
	}
	wg.Wait()
	res := &Result{Spec: s, Wall: time.Since(start)}
	for _, sr := range results {
		res.Steps = append(res.Steps, sr.steps...)
		res.Violations = append(res.Violations, sr.violations.list...)
	}
	return res, nil
}

// runLiveSession walks one HTTP session through the script.
func runLiveSession(ctx context.Context, client *http.Client, base string, s *Spec, runID string, rel Reloader, worker int) *sessionRun {
	sr := &sessionRun{}
	session := fmt.Sprintf("scn-%s-%s-%d", runID, s.Name, worker)
	for i, step := range s.Script {
		sr.violations.step = i
		if step.Reload != nil {
			rec := StepResult{Step: i, Session: worker, Input: "(reload " + step.Reload.Name + ")"}
			if rel == nil {
				sr.violations.addf("reload", "scenario swaps a dataset but the runner has no reload control over this server")
			} else if err := rel.Reload(s, *step.Reload); err != nil {
				sr.violations.addf("reload", "reload %s: %v", step.Reload.Name, err)
			}
			sr.steps = append(sr.steps, rec)
			continue
		}
		if step.Ingest != nil {
			rec := StepResult{Step: i, Session: worker, Input: "(ingest " + s.Dataset.Name + ")"}
			if ing, ok := rel.(Ingester); !ok {
				sr.violations.addf("ingest", "scenario appends rows but the runner has no ingest control over this server")
			} else if err := ing.Ingest(s, *step.Ingest); err != nil {
				sr.violations.addf("ingest", "ingest %s: %v", s.Dataset.Name, err)
			}
			sr.steps = append(sr.steps, rec)
			continue
		}
		input := step.Input
		if c := step.Corrupt; c != nil {
			input = nlq.NewCorrupter(nlq.CorruptConfig{
				Seed: c.Seed + int64(worker), Rate: c.Rate, Homophones: c.Homophones,
			}).Corrupt(input)
		}
		method := step.Method
		if method == "" {
			method = "this"
		}
		rec := StepResult{Step: i, Session: worker, Input: input}
		callStart := time.Now()
		code, hdr, payload, err := postQuery(ctx, client, base, session, s.Dataset.Name, input, method)
		rec.Latency = time.Since(callStart)
		if err != nil {
			sr.violations.addf("transport", "step %q: %v", input, err)
			sr.steps = append(sr.steps, rec)
			continue
		}
		sr.checkLiveStep(s, step, method, code, hdr, payload, &rec)
		sr.steps = append(sr.steps, rec)
	}
	return sr
}

// checkLiveStep applies the live-transport expectations to one response.
func (sr *sessionRun) checkLiveStep(s *Spec, step Step, method string, code int, hdr http.Header, payload queryPayload, rec *StepResult) {
	vs := &sr.violations
	e := step.Expect

	if e.ParseError {
		if code != http.StatusUnprocessableEntity {
			vs.addf("status", "input %q: status %d, want 422 for a parse error", rec.Input, code)
		}
		return
	}
	switch code {
	case http.StatusOK:
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		// A clean shed: acceptable only in overload scenarios, and only
		// with the Retry-After hint the admission layer promises.
		rec.Shed = true
		if !s.Live.AllowShed {
			vs.addf("status", "input %q: shed with %d but the scenario does not allow sheds", rec.Input, code)
		}
		if hdr.Get("Retry-After") == "" {
			vs.addf("status", "input %q: shed with %d but no Retry-After header", rec.Input, code)
		}
		return
	case statusClientClosedRequest, http.StatusRequestTimeout:
		vs.addf("status", "input %q: status %d (client gave up) — raise the client timeout", rec.Input, code)
		return
	default:
		vs.addf("status", "input %q: unexpected status %d (%s)", rec.Input, code, payload.Error)
		return
	}

	rec.Action = payload.Action
	if e.Action != "" && payload.Action != e.Action {
		vs.addf("action", "input %q: action %q, want %q", rec.Input, payload.Action, e.Action)
	}
	if !e.Speech {
		return
	}
	rec.Spoke = payload.Speech != ""
	rec.Degraded = payload.Degraded
	rec.ServedBy = payload.ServedBy
	rec.Fallback = payload.Fallback

	if e.ServedBy != "" && payload.ServedBy != e.ServedBy {
		vs.addf("servedBy", "input %q: served by %q, want %q", rec.Input, payload.ServedBy, e.ServedBy)
	}
	// Freshness: the answer must have been computed at (or after) the
	// epoch the script's earlier Ingest/Reload steps established — a lower
	// dataEpoch is precisely a stale replay. A truthfully flagged stale
	// answer (epoch moved mid-answer) is not a replay and stays legal.
	if e.MinEpoch > 0 && payload.DataEpoch < e.MinEpoch && !payload.Stale {
		vs.addf("freshness", "input %q: answer computed at data epoch %d, want >= %d",
			rec.Input, payload.DataEpoch, e.MinEpoch)
	}

	// Admission-layer contracts: servedBy names a real vocalizer or the
	// semantic cache, and a fallback always means a holistic request
	// answered by the prior. A cache replay is validated against the
	// vocalizer that originally produced the entry (the origin field) and
	// must uphold the cache's own guarantees: only full-quality answers
	// are stored, so a replay is never degraded and never a fallback.
	vocalizer := payload.ServedBy
	switch payload.ServedBy {
	case "this", "prior":
		if payload.Cache != "" && payload.Cache != "warm" {
			vs.addf("cache", "input %q: servedBy %q with cache tag %q", rec.Input, payload.ServedBy, payload.Cache)
		}
		if payload.Fallback != "" && !(method == "this" && payload.ServedBy == "prior") {
			vs.addf("fallback", "input %q: fallback %q with method %q served by %q",
				rec.Input, payload.Fallback, method, payload.ServedBy)
		}
		if payload.Fallback == "" && payload.ServedBy != method {
			vs.addf("fallback", "input %q: served by %q without a fallback reason", rec.Input, payload.ServedBy)
		}
	case "cache":
		vocalizer = payload.Origin
		if payload.Origin != "this" && payload.Origin != "prior" {
			vs.addf("cache", "input %q: cache replay with origin %q", rec.Input, payload.Origin)
		}
		if payload.Cache != "hit" && payload.Cache != "coalesced" {
			vs.addf("cache", "input %q: cache replay with cache tag %q", rec.Input, payload.Cache)
		}
		if payload.Degraded {
			vs.addf("cache", "input %q: a degraded answer was served from the cache", rec.Input)
		}
		if payload.Fallback != "" {
			vs.addf("cache", "input %q: cache replay carries fallback %q", rec.Input, payload.Fallback)
		}
	default:
		vs.addf("servedBy", "input %q: servedBy %q", rec.Input, payload.ServedBy)
	}
	switch payload.Fallback {
	case "", "brownout", "breaker":
	default:
		vs.addf("fallback", "input %q: unknown fallback %q", rec.Input, payload.Fallback)
	}
	vs.checkSpeechText(payload.Speech, vocalizer, e)
	vs.checkDegraded(payload.Degraded, e)
}

// postQuery issues one /api/query call.
func postQuery(ctx context.Context, client *http.Client, base, session, dataset, input, method string) (int, http.Header, queryPayload, error) {
	body, err := json.Marshal(map[string]string{
		"session": session, "dataset": dataset, "input": input, "method": method,
	})
	if err != nil {
		return 0, nil, queryPayload{}, err
	}
	req, err := http.NewRequestWithContext(ctx, "POST", base+"/api/query", bytes.NewReader(body))
	if err != nil {
		return 0, nil, queryPayload{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", session)
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, queryPayload{}, err
	}
	defer resp.Body.Close()
	var payload queryPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil && err != io.EOF {
		return resp.StatusCode, resp.Header, payload, fmt.Errorf("decode: %w", err)
	}
	return resp.StatusCode, resp.Header, payload, nil
}
