package scenario_test

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestRegistryCoverage pins the conformance surface: at least twelve
// scenarios spanning the four required workload classes, every spec
// well-formed enough to have survived Register.
func TestRegistryCoverage(t *testing.T) {
	specs := scenario.All()
	if len(specs) < 12 {
		t.Fatalf("registry holds %d scenarios, want at least 12", len(specs))
	}
	classes := map[string]int{}
	for _, s := range specs {
		classes[s.Class()]++
	}
	for _, class := range []string{
		scenario.AttrNominal, scenario.AttrASR, scenario.AttrMultiTurn, scenario.AttrFault,
		scenario.AttrCache,
	} {
		if classes[class] == 0 {
			t.Errorf("no scenario in required class %q (have %v)", class, classes)
		}
	}
	if scenario.ByName(specs[0].Name) != specs[0] {
		t.Error("ByName does not resolve a registered spec")
	}
}

// TestScenariosInProcess executes every registered scenario through the
// in-process runner, in parallel — the registry-driven conformance bundle
// CI runs under -race.
func TestScenariosInProcess(t *testing.T) {
	for _, spec := range scenario.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			res, err := scenario.Run(context.Background(), spec)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, v := range res.Violations {
				t.Error(v.String())
			}
			rep := scenario.Summarize(res)
			if rep.Pass != res.Passed() {
				t.Error("report pass flag disagrees with the result")
			}
		})
	}
}

// TestScenariosLive executes every registered scenario through the live
// runner against pooled in-process servers — the same specs, now checking
// the HTTP admission contracts. Skipped in -short mode: the fault profiles
// sleep real milliseconds per row.
func TestScenariosLive(t *testing.T) {
	if testing.Short() {
		t.Skip("live scenario pool skipped in -short mode")
	}
	pool := scenario.NewServerPool(scenario.PoolConfig{FlightRows: 5000, Seed: 1})
	defer pool.Close()
	client := &http.Client{Timeout: 30 * time.Second}
	for _, spec := range scenario.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			base, err := pool.Server(spec)
			if err != nil {
				t.Fatalf("pool: %v", err)
			}
			res, err := scenario.RunLive(context.Background(), client, base, spec, "test", pool)
			if err != nil {
				t.Fatalf("run live: %v", err)
			}
			for _, v := range res.Violations {
				t.Error(v.String())
			}
		})
	}
}
