package scenario

import (
	"fmt"
	"math"
	"regexp"
	"strings"

	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/speech"
)

// Violation is one failed expectation, attributable to a script step.
type Violation struct {
	// Step is the zero-based script index (-1 for scenario-level checks).
	Step int `json:"step"`
	// Check names the violated property ("grammar", "tendency", ...).
	Check string `json:"check"`
	// Detail explains the failure.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("step %d [%s]: %s", v.Step, v.Check, v.Detail)
}

// violations accumulates step-scoped findings.
type violations struct {
	step int
	list []Violation
}

func (vs *violations) addf(check, format string, args ...any) {
	vs.list = append(vs.list, Violation{Step: vs.step, Check: check, Detail: fmt.Sprintf(format, args...)})
}

// validSpeechText checks an answer's text against the grammar of the
// vocalizer that served it: holistic answers must parse under the speech
// grammar; the prior baseline's enumeration just needs well-formed
// sentences (the same contract cmd/loadgen asserts under chaos).
func validSpeechText(text, servedBy string) bool {
	if servedBy == "prior" {
		t := strings.TrimSpace(text)
		return t != "" && strings.HasSuffix(t, ".")
	}
	return (speech.Parser{}).Conforms(text)
}

// checkSpeechText applies the transport-independent text expectations:
// grammar conformance and the explicit length cap.
func (vs *violations) checkSpeechText(text, servedBy string, e Expect) {
	if text == "" {
		vs.addf("speech", "expected a spoken answer, got none")
		return
	}
	if !validSpeechText(text, servedBy) {
		vs.addf("grammar", "answer served by %q violates its grammar: %q", servedBy, text)
	}
	if e.MaxChars > 0 && len(text) > e.MaxChars {
		vs.addf("length", "answer is %d chars, cap %d: %q", len(text), e.MaxChars, text)
	}
}

// boundsRe is the spoken confidence-bound sentence form of Section 4.4.
var boundsRe = regexp.MustCompile(`^Between .+ and .+ with \d+ percent confidence\.$`)

// checkUncertainty applies the BoundsSane and Warning expectations against
// a holistic output (in-process only: bounds and warnings ride on the
// structured Output, not the flat HTTP speech text).
func (vs *violations) checkUncertainty(out *core.Output, e Expect) {
	if e.BoundsSane {
		if len(out.BoundsSpoken) == 0 {
			vs.addf("bounds", "expected spoken confidence bounds, got none")
		}
		for _, b := range out.BoundsSpoken {
			if !boundsRe.MatchString(b) {
				vs.addf("bounds", "malformed bound sentence %q", b)
			}
		}
	}
	if e.Warning && out.Warning == "" {
		vs.addf("warning", "expected a low-confidence warning, none spoken")
	}
}

// tendencyTolerance is the relative slack granted to refinement
// directions: spoken tendencies come from sampled estimates, so a change
// smaller than this fraction of the involved values is direction-ambiguous
// and not a violation.
const tendencyTolerance = 0.10

// checkTendency verifies each refinement's spoken direction against the
// exact query evaluation, under the paper's relative-refinement semantics:
// refinement i claims the values in its scope sit at reference + delta_i,
// where the reference folds in every preceding subsuming refinement. The
// check demands the claimed movement point the same way as the true
// count-weighted scope mean's movement. Average queries only — for sums
// and counts the scope mean is not what the sentences describe.
func (vs *violations) checkTendency(d *olap.Dataset, q olap.Query, sp *speech.Speech) {
	if q.Fct != olap.Avg || sp == nil || sp.Baseline == nil {
		return
	}
	res, err := olap.Evaluate(d, q)
	if err != nil {
		vs.addf("tendency", "exact evaluation failed: %v", err)
		return
	}
	space := res.Space()
	deltas := sp.Deltas()
	// The spoken baseline is rounded to one significant digit, so every
	// reference inherits that rounding error; a true move inside the slack
	// is invisible to the listener and must not count as a wrong direction.
	roundSlack := math.Abs(sp.Baseline.Value - res.GrandValue())
	for i, r := range sp.Refinements {
		var sum float64
		var cnt int64
		for idx := 0; idx < space.Size(); idx++ {
			if space.InScope(idx, r.Preds) {
				sum += res.Sum(idx)
				cnt += res.Count(idx)
			}
		}
		if cnt == 0 {
			continue // empty scope: nothing the sentence could misstate
		}
		actual := sum / float64(cnt)
		ref := sp.Baseline.Value
		for j := 0; j < i; j++ {
			if sp.Refinements[j].Subsumes(r) {
				ref += deltas[j]
			}
		}
		move := actual - ref
		tol := math.Max(tendencyTolerance*math.Max(math.Abs(ref), math.Abs(actual)), roundSlack)
		if math.Abs(move) <= tol {
			continue // too small a true change to pin a direction on
		}
		up := move > 0
		claimUp := r.Dir == speech.Increase
		if up != claimUp {
			vs.addf("tendency",
				"refinement %d (%s) claims values %s but true scope mean moves %+.4g from reference %.4g",
				i, r.Text(), r.Dir, move, ref)
		}
	}
}

// checkHolisticShape applies structure expectations that need the parsed
// speech: refinement count floors (skipped when the answer degraded — a
// deadline-cut speech legitimately stops at the preamble).
func (vs *violations) checkHolisticShape(out *core.Output, e Expect) {
	if e.MinRefinements > 0 && !out.Degraded {
		if n := len(out.Speech.Refinements); n < e.MinRefinements {
			vs.addf("shape", "expected at least %d refinements, got %d", e.MinRefinements, n)
		}
	}
}

// checkDegraded pins the degraded flag when the expectation sets it.
func (vs *violations) checkDegraded(got bool, e Expect) {
	if e.Degraded != nil && got != *e.Degraded {
		vs.addf("degraded", "degraded = %v, want %v", got, *e.Degraded)
	}
}
