package table

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Table is a named collection of equally sized columns, plus optional
// virtual string accessors (star-schema join views) that behave like
// dictionary-encoded columns for row classification but are not stored.
//
// Tables come in two flavors. A table built by New is frozen: its contents
// never change and every method is safe for concurrent use. AppendableCopy
// returns a live table that accepts AppendBatch while concurrent readers
// keep working against immutable Snapshot views; on a live table only
// AppendBatch, Snapshot, NumRows, CommittedRows, Epoch, Live, Marks, and
// RowsInLast are safe to call concurrently — everything else must go
// through a Snapshot.
type Table struct {
	name     string
	columns  []Column
	byName   map[string]int
	virtuals map[string]StringAccessor

	// Streaming state. wm is the committed row watermark: rows at indices
	// < wm are immutable and visible; appends write only indices >= wm, so
	// snapshot readers and writers never touch the same memory. epoch
	// counts committed append batches (and is copied onto snapshots, so
	// cache keys derived from it stay comparable). All structural updates
	// happen under mu; wm/epoch are additionally atomic so the cheap
	// accessors need no lock.
	mu       sync.Mutex
	live     atomic.Bool
	wm       atomic.Int64
	epoch    atomic.Int64
	marks    []AppendMark // guarded by mu
	loadedAt time.Time    // stream-time stamp of the pre-append base rows
}

// ErrRaggedColumns reports columns of unequal length.
var ErrRaggedColumns = errors.New("table: columns have unequal lengths")

// New returns a table with the given name and columns. All columns must have
// distinct names and equal lengths.
func New(name string, cols ...Column) (*Table, error) {
	t := &Table{name: name, byName: make(map[string]int, len(cols))}
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// MustNew is like New but panics on error; intended for tests and
// programmatically constructed schemas that cannot collide.
func MustNew(name string, cols ...Column) *Table {
	t, err := New(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// AddColumn appends a column to the table. The column must be as long as the
// existing columns and its name must be unused. Live tables reject schema
// changes: snapshots share the column set.
func (t *Table) AddColumn(c Column) error {
	if t.live.Load() {
		return fmt.Errorf("table %q: cannot add a column to a live table", t.name)
	}
	if _, dup := t.byName[c.Name()]; dup {
		return fmt.Errorf("table %q: duplicate column %q", t.name, c.Name())
	}
	if len(t.columns) > 0 && c.Len() != t.columns[0].Len() {
		return fmt.Errorf("%w: table %q column %q has %d rows, want %d",
			ErrRaggedColumns, t.name, c.Name(), c.Len(), t.columns[0].Len())
	}
	t.byName[c.Name()] = len(t.columns)
	t.columns = append(t.columns, c)
	return nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// NumRows returns the number of rows. On a live table this is the committed
// watermark — rows an in-flight AppendBatch has written but not yet
// committed are invisible.
func (t *Table) NumRows() int {
	if t.live.Load() {
		return int(t.wm.Load())
	}
	if len(t.columns) == 0 {
		return 0
	}
	return t.columns[0].Len()
}

// NumColumns returns the number of columns.
func (t *Table) NumColumns() int { return len(t.columns) }

// Columns returns the columns in declaration order.
func (t *Table) Columns() []Column { return t.columns }

// Column returns the column with the given name, or nil if absent.
func (t *Table) Column(name string) Column {
	if i, ok := t.byName[name]; ok {
		return t.columns[i]
	}
	return nil
}

// Float64Column returns the named column as *Float64Column.
func (t *Table) Float64Column(name string) (*Float64Column, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("table %q: no column %q", t.name, name)
	}
	fc, ok := c.(*Float64Column)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %v, want float64", t.name, name, c.Type())
	}
	return fc, nil
}

// AddVirtual registers a virtual string accessor (e.g. a star-schema
// JoinColumn) under its name. The accessor must be as long as the table
// and must not collide with an existing column or virtual.
func (t *Table) AddVirtual(acc StringAccessor) error {
	if acc.Len() != t.NumRows() {
		return fmt.Errorf("%w: table %q virtual %q has %d rows, want %d",
			ErrRaggedColumns, t.name, acc.Name(), acc.Len(), t.NumRows())
	}
	if _, dup := t.byName[acc.Name()]; dup {
		return fmt.Errorf("table %q: virtual %q collides with a column", t.name, acc.Name())
	}
	if _, dup := t.virtuals[acc.Name()]; dup {
		return fmt.Errorf("table %q: duplicate virtual %q", t.name, acc.Name())
	}
	if t.virtuals == nil {
		t.virtuals = make(map[string]StringAccessor)
	}
	t.virtuals[acc.Name()] = acc
	return nil
}

// Accessor returns the string accessor with the given name: a stored
// string column if one exists, else a registered virtual.
func (t *Table) Accessor(name string) (StringAccessor, error) {
	if c := t.Column(name); c != nil {
		if sc, ok := c.(*StringColumn); ok {
			return sc, nil
		}
		return nil, fmt.Errorf("table %q: column %q is %v, want string", t.name, name, c.Type())
	}
	if acc, ok := t.virtuals[name]; ok {
		return acc, nil
	}
	return nil, fmt.Errorf("table %q: no string column or virtual %q", t.name, name)
}

// StringColumn returns the named column as *StringColumn.
func (t *Table) StringColumn(name string) (*StringColumn, error) {
	c := t.Column(name)
	if c == nil {
		return nil, fmt.Errorf("table %q: no column %q", t.name, name)
	}
	sc, ok := c.(*StringColumn)
	if !ok {
		return nil, fmt.Errorf("table %q: column %q is %v, want string", t.name, name, c.Type())
	}
	return sc, nil
}

// Validate checks that all columns have equal lengths.
func (t *Table) Validate() error {
	if len(t.columns) == 0 {
		return nil
	}
	n := t.columns[0].Len()
	for _, c := range t.columns[1:] {
		if c.Len() != n {
			return fmt.Errorf("%w: table %q column %q has %d rows, want %d",
				ErrRaggedColumns, t.name, c.Name(), c.Len(), n)
		}
	}
	return nil
}

// ApproxBytes estimates the in-memory footprint of the table payload,
// used to report dataset sizes (Table 11 of the paper).
func (t *Table) ApproxBytes() int64 {
	var total int64
	for _, c := range t.columns {
		switch col := c.(type) {
		case *Float64Column:
			total += int64(col.Len()) * 8
		case *Int64Column:
			total += int64(col.Len()) * 8
		case *StringColumn:
			total += int64(col.Len()) * 4
			for _, s := range col.Dict() {
				total += int64(len(s))
			}
		}
	}
	return total
}
