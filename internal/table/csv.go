package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// Schema describes the expected columns when reading CSV data.
type Schema struct {
	Names []string
	Types []ColumnType
}

// ReadCSV parses CSV data with a header row into a table. The header must
// match schema.Names exactly (same order). Every data row must parse
// according to schema.Types.
func ReadCSV(name string, r io.Reader, schema Schema) (*Table, error) {
	if len(schema.Names) != len(schema.Types) {
		return nil, fmt.Errorf("table: schema has %d names but %d types", len(schema.Names), len(schema.Types))
	}
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	if len(header) != len(schema.Names) {
		return nil, fmt.Errorf("table: CSV has %d columns, schema expects %d", len(header), len(schema.Names))
	}
	for i, want := range schema.Names {
		if header[i] != want {
			return nil, fmt.Errorf("table: CSV column %d is %q, schema expects %q", i, header[i], want)
		}
	}
	cols := make([]Column, len(schema.Names))
	for i := range cols {
		switch schema.Types[i] {
		case Float64Type:
			cols[i] = NewFloat64Column(schema.Names[i])
		case Int64Type:
			cols[i] = NewInt64Column(schema.Names[i])
		case StringType:
			cols[i] = NewStringColumn(schema.Names[i])
		default:
			return nil, fmt.Errorf("table: unknown column type %v", schema.Types[i])
		}
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line+1, err)
		}
		line++
		for i, raw := range rec {
			if err := cols[i].appendParsed(raw); err != nil {
				return nil, fmt.Errorf("table: CSV line %d: %w", line, err)
			}
		}
	}
	return New(name, cols...)
}

// ReadCSVFile opens path and calls ReadCSV.
func ReadCSVFile(name, path string, schema Schema) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("table: %w", err)
	}
	defer f.Close()
	return ReadCSV(name, f, schema)
}

// WriteCSV writes the table with a header row to w.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, len(t.columns))
	for i, c := range t.columns {
		header[i] = c.Name()
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: writing CSV header: %w", err)
	}
	rec := make([]string, len(t.columns))
	for row := 0; row < t.NumRows(); row++ {
		for i, c := range t.columns {
			rec[i] = c.StringAt(row)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: writing CSV row %d: %w", row, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile creates path and writes the table to it.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("table: %w", err)
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
