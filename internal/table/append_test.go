package table

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// streamBase builds a small frozen fact table for append tests.
func streamBase(t *testing.T) *Table {
	t.Helper()
	dims, err := NewStringColumnFromCodes("dim", []string{"a", "b", "c"}, []int32{0, 1, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := New("facts", dims, NewFloat64ColumnFromValues("m", []float64{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func streamTime(s int) time.Time {
	return time.Date(2026, 1, 1, 0, 0, s, 0, time.UTC)
}

func TestAppendBatchSnapshotIsolation(t *testing.T) {
	base := streamBase(t)
	live, err := base.AppendableCopy(streamTime(0))
	if err != nil {
		t.Fatal(err)
	}
	if !live.Live() || base.Live() {
		t.Fatalf("live flags: copy=%v base=%v", live.Live(), base.Live())
	}
	old := live.Snapshot()
	if old.NumRows() != 4 || old.Epoch() != 0 {
		t.Fatalf("pre-append snapshot: rows=%d epoch=%d", old.NumRows(), old.Epoch())
	}

	mark, err := live.AppendBatch(NewRowBatch().
		Strings("dim", "b", "c").
		Float64s("m", 10, 20), streamTime(1))
	if err != nil {
		t.Fatal(err)
	}
	if mark.Epoch != 1 || mark.Start != 4 || mark.End != 6 {
		t.Fatalf("mark = %+v", mark)
	}
	if live.NumRows() != 6 || live.Epoch() != 1 {
		t.Fatalf("live: rows=%d epoch=%d", live.NumRows(), live.Epoch())
	}
	// The pre-append snapshot must be unaffected.
	if old.NumRows() != 4 {
		t.Fatalf("old snapshot grew to %d rows", old.NumRows())
	}
	fresh := live.Snapshot()
	if fresh.NumRows() != 6 || fresh.Epoch() != 1 {
		t.Fatalf("fresh snapshot: rows=%d epoch=%d", fresh.NumRows(), fresh.Epoch())
	}
	sc, err := fresh.StringColumn("dim")
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.StringAt(5); got != "c" {
		t.Fatalf("appended row decoded as %q", got)
	}
	if got := fresh.Column("m").Float(4); got != 10 {
		t.Fatalf("appended measure = %g", got)
	}
	// Base table never sees the append.
	if base.NumRows() != 4 {
		t.Fatalf("base table grew to %d rows", base.NumRows())
	}
}

func TestAppendBatchValidation(t *testing.T) {
	base := streamBase(t)
	if _, err := base.AppendBatch(NewRowBatch().Strings("dim", "a").Float64s("m", 1), streamTime(1)); err == nil {
		t.Fatal("append to a frozen table succeeded")
	}
	live, err := base.AppendableCopy(streamTime(0))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    *RowBatch
		want string
	}{
		{"missing column", NewRowBatch().Strings("dim", "a"), "batch has 1 columns"},
		{"unknown column", NewRowBatch().Strings("dim", "a").Float64s("bogus", 1), "not in the schema"},
		{"ragged", NewRowBatch().Strings("dim", "a", "b").Float64s("m", 1), "want 2"},
		{"type mismatch", NewRowBatch().Float64s("dim", 1).Float64s("m", 1), "must be string"},
		{"new dict value", NewRowBatch().Strings("dim", "zzz").Float64s("m", 1), "not in the dictionary"},
		{"duplicate", NewRowBatch().Strings("dim", "a").Strings("dim", "a"), "staged twice"},
	}
	for _, tc := range cases {
		if _, err := live.AppendBatch(tc.b, streamTime(1)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	// Rejected batches leave the table untouched.
	if live.NumRows() != 4 || live.Epoch() != 0 {
		t.Fatalf("table mutated by rejected batches: rows=%d epoch=%d", live.NumRows(), live.Epoch())
	}
}

func TestAppendableCopyRejectsVirtuals(t *testing.T) {
	fk := NewInt64Column("fk")
	fk.Append(0)
	tab := MustNew("star", fk)
	attr, err := NewStringColumnFromCodes("attr", []string{"x"}, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	jc, err := NewJoinColumn("joined", fk, attr)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.AddVirtual(jc); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.AppendableCopy(streamTime(0)); err == nil {
		t.Fatal("AppendableCopy accepted a table with virtual join columns")
	}
}

// TestScannerPinnedUnderAppend is the regression test for the stale-read
// bug: scanners used to capture NumRows at construction and then read
// column data live, so a scan over a growing table could mix an old row
// bound with new data. Scanners are now pinned to the committed watermark
// and epoch at construction.
func TestScannerPinnedUnderAppend(t *testing.T) {
	live, err := streamBase(t).AppendableCopy(streamTime(0))
	if err != nil {
		t.Fatal(err)
	}
	seq := NewSequentialScanner(live)
	rnd := NewRandomScanner(live, rand.New(rand.NewSource(7)))
	if _, err := live.AppendBatch(NewRowBatch().Strings("dim", "a", "a", "a").Float64s("m", 9, 9, 9), streamTime(1)); err != nil {
		t.Fatal(err)
	}
	for name, sc := range map[string]Scanner{"sequential": seq, "random": rnd} {
		n := 0
		for {
			row, ok := sc.Next()
			if !ok {
				break
			}
			if row >= 4 {
				t.Fatalf("%s scanner emitted row %d appended after construction", name, row)
			}
			n++
		}
		if n != 4 {
			t.Fatalf("%s scanner emitted %d rows, want 4", name, n)
		}
	}
	if seq.Epoch() != 0 || rnd.Epoch() != 0 {
		t.Fatalf("scanner epochs moved: seq=%d rnd=%d", seq.Epoch(), rnd.Epoch())
	}
	if NewSequentialScanner(live).Epoch() != 1 {
		t.Fatal("new scanner not pinned to the bumped epoch")
	}
}

func TestRowsInLast(t *testing.T) {
	live, err := streamBase(t).AppendableCopy(streamTime(0))
	if err != nil {
		t.Fatal(err)
	}
	// No history: the whole table is current.
	if got := live.RowsInLast(time.Minute); got != 0 {
		t.Fatalf("no-history window starts at %d", got)
	}
	appendOne := func(sec int) {
		t.Helper()
		if _, err := live.AppendBatch(NewRowBatch().Strings("dim", "a").Float64s("m", 1), streamTime(sec)); err != nil {
			t.Fatal(err)
		}
	}
	appendOne(10)  // rows [4,5) @ t=10s
	appendOne(70)  // rows [5,6) @ t=70s
	appendOne(130) // rows [6,7) @ t=130s

	cases := []struct {
		window time.Duration
		want   int
	}{
		{time.Second, 6},       // only the newest batch
		{65 * time.Second, 5},  // newest two
		{121 * time.Second, 4}, // all batches, base rows excluded (loaded at t=0 < cutoff t=9s)
		{131 * time.Second, 0}, // cutoff before load time: everything
		{0, 0},                 // no window: everything
		{-time.Second, 0},      // degenerate: everything
	}
	for _, tc := range cases {
		if got := live.RowsInLast(tc.window); got != tc.want {
			t.Errorf("RowsInLast(%v) = %d, want %d", tc.window, got, tc.want)
		}
	}
	// Snapshots resolve the same windows forever, even after more appends.
	snap := live.Snapshot()
	appendOne(500)
	if got := snap.RowsInLast(65 * time.Second); got != 5 {
		t.Errorf("snapshot RowsInLast = %d, want 5", got)
	}
	if got := live.RowsInLast(time.Second); got != 7 {
		t.Errorf("live RowsInLast after new batch = %d, want 7", got)
	}
}

// TestConcurrentAppendAndScan races appenders against snapshot readers:
// under -race this proves the watermark discipline keeps readers and
// writers on disjoint memory, and each snapshot's sums must reflect a
// whole number of committed batches (no torn appends).
func TestConcurrentAppendAndScan(t *testing.T) {
	live, err := streamBase(t).AppendableCopy(streamTime(0))
	if err != nil {
		t.Fatal(err)
	}
	const batches = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < batches; i++ {
			if _, err := live.AppendBatch(NewRowBatch().
				Strings("dim", "a", "b").
				Float64s("m", 1, 1), streamTime(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 50; i++ {
				snap := live.Snapshot()
				col, err := snap.Float64Column("m")
				if err != nil {
					t.Error(err)
					return
				}
				var sum float64
				sc := NewRandomScanner(snap, rng)
				for {
					row, ok := sc.Next()
					if !ok {
						break
					}
					sum += col.Float(row)
				}
				// Base sum is 1+2+3+4=10; every committed batch adds 2.
				extra := sum - 10
				if extra < 0 || extra != float64(int(extra)) || int(extra)%2 != 0 {
					t.Errorf("torn read: snapshot sum %g implies a partial batch", sum)
					return
				}
				if snap.NumRows() != 4+int(extra) {
					t.Errorf("snapshot rows %d disagree with sum %g", snap.NumRows(), sum)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	if live.NumRows() != 4+2*batches || live.Epoch() != batches {
		t.Fatalf("final state: rows=%d epoch=%d", live.NumRows(), live.Epoch())
	}
}
