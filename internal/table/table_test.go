package table

import (
	"errors"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	f := NewFloat64Column("salary")
	s := NewStringColumn("region")
	i := NewInt64Column("year")
	for idx, row := range []struct {
		sal    float64
		region string
		year   int64
	}{
		{80000, "Northeast", 2014},
		{60000, "Midwest", 2015},
		{90000, "Northeast", 2015},
		{70000, "West", 2014},
	} {
		_ = idx
		f.Append(row.sal)
		s.Append(row.region)
		i.Append(row.year)
	}
	tab, err := New("salaries", f, s, i)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return tab
}

func TestTableBasics(t *testing.T) {
	tab := sampleTable(t)
	if tab.Name() != "salaries" {
		t.Errorf("name = %q", tab.Name())
	}
	if tab.NumRows() != 4 {
		t.Errorf("rows = %d, want 4", tab.NumRows())
	}
	if tab.NumColumns() != 3 {
		t.Errorf("cols = %d, want 3", tab.NumColumns())
	}
	if tab.Column("salary") == nil || tab.Column("missing") != nil {
		t.Error("Column lookup misbehaves")
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestTableDuplicateColumn(t *testing.T) {
	a := NewFloat64Column("x")
	b := NewFloat64Column("x")
	if _, err := New("t", a, b); err == nil {
		t.Fatal("expected duplicate column error")
	}
}

func TestTableRaggedColumns(t *testing.T) {
	a := NewFloat64Column("x")
	a.Append(1)
	b := NewFloat64Column("y")
	if _, err := New("t", a, b); !errors.Is(err, ErrRaggedColumns) {
		t.Fatalf("expected ErrRaggedColumns, got %v", err)
	}
}

func TestTypedColumnAccessors(t *testing.T) {
	tab := sampleTable(t)
	fc, err := tab.Float64Column("salary")
	if err != nil {
		t.Fatalf("Float64Column: %v", err)
	}
	if fc.Float(0) != 80000 {
		t.Errorf("salary[0] = %v", fc.Float(0))
	}
	if _, err := tab.Float64Column("region"); err == nil {
		t.Error("expected type mismatch error")
	}
	if _, err := tab.Float64Column("nope"); err == nil {
		t.Error("expected missing column error")
	}
	sc, err := tab.StringColumn("region")
	if err != nil {
		t.Fatalf("StringColumn: %v", err)
	}
	if sc.StringAt(1) != "Midwest" {
		t.Errorf("region[1] = %q", sc.StringAt(1))
	}
	if _, err := tab.StringColumn("salary"); err == nil {
		t.Error("expected type mismatch error")
	}
}

func TestStringColumnDictEncoding(t *testing.T) {
	c := NewStringColumn("s")
	for _, v := range []string{"a", "b", "a", "c", "b"} {
		c.Append(v)
	}
	if len(c.Dict()) != 3 {
		t.Errorf("dict size = %d, want 3", len(c.Dict()))
	}
	if c.Code(0) != c.Code(2) {
		t.Error("equal strings should share a code")
	}
	if c.CodeOf("b") != c.Code(1) {
		t.Error("CodeOf should match stored code")
	}
	if c.CodeOf("zzz") != -1 {
		t.Error("CodeOf unknown should be -1")
	}
}

func TestInt64Column(t *testing.T) {
	c := NewInt64Column("n")
	c.Append(42)
	if c.Int(0) != 42 || c.Float(0) != 42 || c.StringAt(0) != "42" {
		t.Error("int column accessors misbehave")
	}
	if c.Type() != Int64Type {
		t.Error("wrong type")
	}
}

func TestColumnTypeString(t *testing.T) {
	if Float64Type.String() != "float64" || Int64Type.String() != "int64" || StringType.String() != "string" {
		t.Error("ColumnType.String misbehaves")
	}
	if !strings.Contains(ColumnType(99).String(), "99") {
		t.Error("unknown type should include code")
	}
}

func TestApproxBytes(t *testing.T) {
	tab := sampleTable(t)
	if tab.ApproxBytes() <= 0 {
		t.Error("ApproxBytes should be positive for non-empty table")
	}
	empty := MustNew("e")
	if empty.ApproxBytes() != 0 {
		t.Error("empty table should have zero bytes")
	}
}

func TestAddColumnAfterConstruction(t *testing.T) {
	tab := sampleTable(t)
	extra := NewFloat64Column("bonus")
	for i := 0; i < 4; i++ {
		extra.Append(float64(i))
	}
	if err := tab.AddColumn(extra); err != nil {
		t.Fatalf("AddColumn: %v", err)
	}
	short := NewFloat64Column("short")
	if err := tab.AddColumn(short); err == nil {
		t.Error("expected ragged column error")
	}
}
