package table

import (
	"testing"
)

// starFixture builds a tiny star schema: a fact table with a foreign key
// into an airport dimension table.
func starFixture(t *testing.T) (fact *Table, fk *Int64Column, city *StringColumn) {
	t.Helper()
	// Dimension table rows: 0=BOS/Boston, 1=JFK/New York, 2=ORD/Chicago.
	city = NewStringColumn("city")
	for _, c := range []string{"Boston", "New York", "Chicago"} {
		city.Append(c)
	}
	fk = NewInt64Column("airportID")
	measure := NewFloat64Column("cancelled")
	for _, row := range []struct {
		id        int64
		cancelled float64
	}{
		{0, 1}, {2, 0}, {1, 0}, {0, 0}, {2, 1},
	} {
		fk.Append(row.id)
		measure.Append(row.cancelled)
	}
	fact = MustNew("flights", fk, measure)
	return fact, fk, city
}

func TestJoinColumnBasics(t *testing.T) {
	fact, fk, city := starFixture(t)
	j, err := NewJoinColumn("city", fk, city)
	if err != nil {
		t.Fatalf("NewJoinColumn: %v", err)
	}
	if j.Name() != "city" {
		t.Errorf("name = %q", j.Name())
	}
	if j.Len() != fact.NumRows() {
		t.Errorf("len = %d, want %d", j.Len(), fact.NumRows())
	}
	want := []string{"Boston", "Chicago", "New York", "Boston", "Chicago"}
	for i, w := range want {
		if got := j.StringAt(i); got != w {
			t.Errorf("row %d = %q, want %q", i, got, w)
		}
	}
	// Codes follow the dimension attribute's dictionary.
	if j.Code(0) != j.Code(3) {
		t.Error("equal values should share codes")
	}
	if len(j.Dict()) != 3 {
		t.Errorf("dict = %d entries", len(j.Dict()))
	}
}

func TestJoinColumnValidation(t *testing.T) {
	_, fk, city := starFixture(t)
	if _, err := NewJoinColumn("x", nil, city); err == nil {
		t.Error("nil fact column should fail")
	}
	if _, err := NewJoinColumn("x", fk, nil); err == nil {
		t.Error("nil dimension column should fail")
	}
	// Out-of-range foreign key.
	bad := NewInt64Column("airportID")
	bad.Append(99)
	if _, err := NewJoinColumn("x", bad, city); err == nil {
		t.Error("out-of-range FK should fail")
	}
	neg := NewInt64Column("airportID")
	neg.Append(-1)
	if _, err := NewJoinColumn("x", neg, city); err == nil {
		t.Error("negative FK should fail")
	}
}

func TestTableVirtualAccessors(t *testing.T) {
	fact, fk, city := starFixture(t)
	j, err := NewJoinColumn("city", fk, city)
	if err != nil {
		t.Fatalf("NewJoinColumn: %v", err)
	}
	if err := fact.AddVirtual(j); err != nil {
		t.Fatalf("AddVirtual: %v", err)
	}
	acc, err := fact.Accessor("city")
	if err != nil {
		t.Fatalf("Accessor: %v", err)
	}
	if acc.StringAt(0) != "Boston" {
		t.Errorf("virtual access = %q", acc.StringAt(0))
	}
	// Duplicates and collisions rejected.
	if err := fact.AddVirtual(j); err == nil {
		t.Error("duplicate virtual should fail")
	}
	collide, _ := NewJoinColumn("airportID", fk, city)
	if err := fact.AddVirtual(collide); err == nil {
		t.Error("virtual colliding with a column should fail")
	}
	// Wrong length.
	shortFK := NewInt64Column("f")
	shortFK.Append(0)
	shortJoin, _ := NewJoinColumn("short", shortFK, city)
	if err := fact.AddVirtual(shortJoin); err == nil {
		t.Error("ragged virtual should fail")
	}
}

func TestAccessorResolution(t *testing.T) {
	fact, _, _ := starFixture(t)
	// Unknown name.
	if _, err := fact.Accessor("ghost"); err == nil {
		t.Error("unknown accessor should fail")
	}
	// Non-string stored column.
	if _, err := fact.Accessor("cancelled"); err == nil {
		t.Error("float column should not resolve as string accessor")
	}
}
