package table

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var testSchema = Schema{
	Names: []string{"region", "salary", "year"},
	Types: []ColumnType{StringType, Float64Type, Int64Type},
}

const testCSV = `region,salary,year
Northeast,80000,2014
Midwest,60000,2015
West,70500.5,2014
`

func TestReadCSV(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(testCSV), testSchema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tab.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", tab.NumRows())
	}
	sc, _ := tab.StringColumn("region")
	if sc.StringAt(2) != "West" {
		t.Errorf("region[2] = %q", sc.StringAt(2))
	}
	fc, _ := tab.Float64Column("salary")
	if fc.Float(2) != 70500.5 {
		t.Errorf("salary[2] = %v", fc.Float(2))
	}
}

func TestReadCSVErrors(t *testing.T) {
	// Schema mismatch: wrong header name.
	bad := "wrong,salary,year\na,1,2\n"
	if _, err := ReadCSV("t", strings.NewReader(bad), testSchema); err == nil {
		t.Error("expected header mismatch error")
	}
	// Wrong column count.
	bad = "region,salary\na,1\n"
	if _, err := ReadCSV("t", strings.NewReader(bad), testSchema); err == nil {
		t.Error("expected column count error")
	}
	// Unparseable float.
	bad = "region,salary,year\na,notanumber,2\n"
	if _, err := ReadCSV("t", strings.NewReader(bad), testSchema); err == nil {
		t.Error("expected parse error")
	}
	// Ragged schema.
	rag := Schema{Names: []string{"a"}, Types: nil}
	if _, err := ReadCSV("t", strings.NewReader("a\n"), rag); err == nil {
		t.Error("expected schema arity error")
	}
	// Empty input (no header).
	if _, err := ReadCSV("t", strings.NewReader(""), testSchema); err == nil {
		t.Error("expected header read error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV("t", strings.NewReader(testCSV), testSchema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV("t2", strings.NewReader(buf.String()), testSchema)
	if err != nil {
		t.Fatalf("ReadCSV round trip: %v", err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Fatalf("round trip rows = %d, want %d", back.NumRows(), tab.NumRows())
	}
	for r := 0; r < tab.NumRows(); r++ {
		for _, name := range testSchema.Names {
			a := tab.Column(name).StringAt(r)
			b := back.Column(name).StringAt(r)
			if a != b {
				t.Errorf("row %d column %s: %q != %q", r, name, a, b)
			}
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	tab, err := ReadCSV("t", strings.NewReader(testCSV), testSchema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatalf("WriteCSVFile: %v", err)
	}
	back, err := ReadCSVFile("t2", path, testSchema)
	if err != nil {
		t.Fatalf("ReadCSVFile: %v", err)
	}
	if back.NumRows() != 3 {
		t.Errorf("rows = %d, want 3", back.NumRows())
	}
	if _, err := ReadCSVFile("t3", filepath.Join(dir, "missing.csv"), testSchema); !os.IsNotExist(underlying(err)) {
		// Opening a missing file should surface the os error.
		if err == nil {
			t.Error("expected error for missing file")
		}
	}
}

// underlying unwraps one level of wrapping for os error checks.
func underlying(err error) error {
	type unwrapper interface{ Unwrap() error }
	if u, ok := err.(unwrapper); ok {
		return u.Unwrap()
	}
	return err
}
