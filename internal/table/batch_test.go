package table

import (
	"math/rand"
	"testing"
)

// drainBatched consumes a scanner through FillBatch with an awkward batch
// size (not a divisor of typical row counts) to exercise partial batches.
func drainBatched(s Scanner, batch int) []int {
	buf := make([]int, batch)
	var out []int
	for {
		n := FillBatch(s, buf)
		if n == 0 {
			return out
		}
		out = append(out, buf[:n]...)
	}
}

func TestSequentialNextBatch(t *testing.T) {
	tab := MustNew("t", makeFloatColumn("v", 100))
	s := NewSequentialScanner(tab)
	rows := drainBatched(s, 7)
	if len(rows) != 100 {
		t.Fatalf("emitted %d rows, want 100", len(rows))
	}
	for i, r := range rows {
		if r != i {
			t.Fatalf("row %d = %d, want %d", i, r, i)
		}
	}
	if n := FillBatch(s, make([]int, 4)); n != 0 {
		t.Errorf("exhausted scanner returned %d rows", n)
	}
}

func TestRandomNextBatchMatchesNext(t *testing.T) {
	tab := MustNew("t", makeFloatColumn("v", 251))
	a := NewRandomScanner(tab, rand.New(rand.NewSource(9)))
	b := NewRandomScanner(tab, rand.New(rand.NewSource(9)))
	var viaNext []int
	for {
		r, ok := a.Next()
		if !ok {
			break
		}
		viaNext = append(viaNext, r)
	}
	viaBatch := drainBatched(b, 17)
	if len(viaNext) != len(viaBatch) {
		t.Fatalf("Next emitted %d rows, NextBatch %d", len(viaNext), len(viaBatch))
	}
	for i := range viaNext {
		if viaNext[i] != viaBatch[i] {
			t.Fatalf("row %d: Next %d, NextBatch %d", i, viaNext[i], viaBatch[i])
		}
	}
}

func TestFillBatchFallsBackToNext(t *testing.T) {
	// A bare Scanner without the BatchScanner extension still works.
	s := &nextOnlyScanner{n: 10}
	rows := drainBatched(s, 3)
	if len(rows) != 10 {
		t.Fatalf("emitted %d rows, want 10", len(rows))
	}
}

type nextOnlyScanner struct{ n, pos int }

func (s *nextOnlyScanner) Next() (int, bool) {
	if s.pos >= s.n {
		return 0, false
	}
	r := s.pos
	s.pos++
	return r, true
}

func (s *nextOnlyScanner) Reset() { s.pos = 0 }

func TestRandomRangeScannerCoversPartition(t *testing.T) {
	for _, tc := range []struct{ lo, hi int }{{0, 1}, {5, 6}, {10, 137}, {0, 64}} {
		s := NewRandomRangeScanner(tc.lo, tc.hi, rand.New(rand.NewSource(3)))
		seen := make(map[int]bool)
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r < tc.lo || r >= tc.hi {
				t.Fatalf("[%d,%d): row %d out of range", tc.lo, tc.hi, r)
			}
			if seen[r] {
				t.Fatalf("[%d,%d): row %d emitted twice", tc.lo, tc.hi, r)
			}
			seen[r] = true
		}
		if len(seen) != tc.hi-tc.lo {
			t.Fatalf("[%d,%d): covered %d rows, want %d", tc.lo, tc.hi, len(seen), tc.hi-tc.lo)
		}
	}
}

func TestRandomRangeScannerEmpty(t *testing.T) {
	s := NewRandomRangeScanner(4, 4, rand.New(rand.NewSource(1)))
	if _, ok := s.Next(); ok {
		t.Error("empty range should be exhausted")
	}
	if n := s.NextBatch(make([]int, 8)); n != 0 {
		t.Errorf("empty range NextBatch = %d", n)
	}
}

func TestStringColumnFromCodes(t *testing.T) {
	dict := []string{"a", "b", "c"}
	codes := []int32{2, 0, 1, 1}
	c, err := NewStringColumnFromCodes("s", dict, codes)
	if err != nil {
		t.Fatalf("NewStringColumnFromCodes: %v", err)
	}
	if c.Len() != 4 || c.StringAt(0) != "c" || c.CodeOf("b") != 1 {
		t.Errorf("column misbuilt: len %d, row0 %q, codeOf(b) %d", c.Len(), c.StringAt(0), c.CodeOf("b"))
	}
	if _, err := NewStringColumnFromCodes("s", []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate dictionary value should be rejected")
	}
	if _, err := NewStringColumnFromCodes("s", dict, []int32{3}); err == nil {
		t.Error("out-of-range code should be rejected")
	}
}

// makeFloatColumn builds an n-row float column for scanner fixtures.
func makeFloatColumn(name string, n int) *Float64Column {
	c := NewFloat64Column(name)
	for i := 0; i < n; i++ {
		c.Append(float64(i))
	}
	return c
}
