package table

import (
	"fmt"
	"time"
)

// AppendMark records one committed append batch: the epoch it created, the
// half-open row range [Start, End) it covers, and its stream-time arrival
// stamp. Stamps are supplied by the caller (never read from the wall
// clock), so a replayed ingest stream produces bit-identical window
// resolutions.
type AppendMark struct {
	Epoch int64
	Start int
	End   int
	At    time.Time
}

// batchCol is one column of a RowBatch; exactly one payload slice is set.
type batchCol struct {
	name string
	f    []float64
	i    []int64
	s    []string
}

func (c *batchCol) len() int {
	switch {
	case c.f != nil:
		return len(c.f)
	case c.i != nil:
		return len(c.i)
	default:
		return len(c.s)
	}
}

// RowBatch is a columnar batch of rows staged for AppendBatch. Setters
// chain; AppendBatch validates that the batch covers the table schema
// exactly and that all columns carry the same number of rows.
type RowBatch struct {
	cols []batchCol
}

// NewRowBatch returns an empty batch.
func NewRowBatch() *RowBatch { return &RowBatch{} }

// Float64s stages vals for the named float64 column.
func (b *RowBatch) Float64s(name string, vals ...float64) *RowBatch {
	b.cols = append(b.cols, batchCol{name: name, f: vals})
	return b
}

// Int64s stages vals for the named int64 column.
func (b *RowBatch) Int64s(name string, vals ...int64) *RowBatch {
	b.cols = append(b.cols, batchCol{name: name, i: vals})
	return b
}

// Strings stages vals for the named string column. Every value must
// already be in the column's dictionary — streaming appends add facts,
// never dimension members (see AppendBatch).
func (b *RowBatch) Strings(name string, vals ...string) *RowBatch {
	b.cols = append(b.cols, batchCol{name: name, s: vals})
	return b
}

// Len returns the number of rows in the batch (the length of the first
// staged column).
func (b *RowBatch) Len() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].len()
}

// AppendableCopy returns a live deep copy of t: column payloads move into
// fresh backing arrays so appends never mutate memory reachable from t or
// from snapshots of other copies, the watermark starts at t's current row
// count, and loadedAt stamps the base rows for trailing-window resolution
// (see RowsInLast). Tables with virtual accessors cannot stream: a join
// view reads the fact foreign-key column at access time, which would race
// with appends, so star schemas stay frozen.
func (t *Table) AppendableCopy(loadedAt time.Time) (*Table, error) {
	if len(t.virtuals) > 0 {
		return nil, fmt.Errorf("table %q: tables with virtual join columns cannot accept appends", t.name)
	}
	src := t.Snapshot()
	nt := &Table{name: src.name, byName: make(map[string]int, len(src.columns))}
	for _, c := range src.columns {
		var cp Column
		switch col := c.(type) {
		case *Float64Column:
			cp = &Float64Column{name: col.name, values: append([]float64(nil), col.values...)}
		case *Int64Column:
			cp = &Int64Column{name: col.name, values: append([]int64(nil), col.values...)}
		case *StringColumn:
			// The dictionary is copied once and then frozen: AppendBatch
			// rejects values outside it, so snapshots can share dict and
			// index with the live column without synchronization.
			dict := append([]string(nil), col.dict...)
			index := make(map[string]int32, len(dict))
			for i, v := range dict {
				index[v] = int32(i)
			}
			cp = &StringColumn{name: col.name, codes: append([]int32(nil), col.codes...), dict: dict, index: index}
		default:
			return nil, fmt.Errorf("table %q: column %q has unsupported type %v for appends", src.name, c.Name(), c.Type())
		}
		if err := nt.AddColumn(cp); err != nil {
			return nil, err
		}
	}
	nt.loadedAt = loadedAt
	nt.wm.Store(int64(src.NumRows()))
	nt.live.Store(true)
	return nt, nil
}

// Snapshot returns an immutable view of the committed rows: a frozen Table
// whose column views are clipped to the watermark but share backing arrays
// with the live table (appends only ever write beyond the watermark, so
// the shared prefix never changes). The snapshot carries the epoch and
// append marks it was cut at. Snapshotting a frozen table returns the
// table itself.
func (t *Table) Snapshot() *Table {
	if !t.live.Load() {
		return t
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	wm := int(t.wm.Load())
	nt := &Table{
		name:     t.name,
		byName:   make(map[string]int, len(t.columns)),
		marks:    t.marks[:len(t.marks):len(t.marks)],
		loadedAt: t.loadedAt,
	}
	nt.epoch.Store(t.epoch.Load())
	for _, c := range t.columns {
		var cp Column
		switch col := c.(type) {
		case *Float64Column:
			cp = &Float64Column{name: col.name, values: col.values[:wm:wm]}
		case *Int64Column:
			cp = &Int64Column{name: col.name, values: col.values[:wm:wm]}
		case *StringColumn:
			cp = &StringColumn{name: col.name, codes: col.codes[:wm:wm], dict: col.dict, index: col.index}
		default:
			// AppendableCopy is the only way to go live and it rejects
			// other column types.
			panic(fmt.Sprintf("table %q: live table holds unsupported column type %v", t.name, c.Type()))
		}
		nt.byName[cp.Name()] = len(nt.columns)
		nt.columns = append(nt.columns, cp)
	}
	return nt
}

// AppendBatch appends the batch to a live table and commits it as one
// epoch: the watermark and epoch advance together after all column data is
// in place, so no reader can observe a torn append. The batch must cover
// every table column exactly once with equal row counts, and string values
// must already be in their column dictionaries (dimension catalogs are
// fixed; facts stream in). at is the batch's stream-time stamp; stamps
// that run backwards are clamped to the newest mark so the mark sequence
// stays monotone.
func (t *Table) AppendBatch(b *RowBatch, at time.Time) (AppendMark, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.live.Load() {
		return AppendMark{}, fmt.Errorf("table %q: append to a frozen table (use AppendableCopy)", t.name)
	}
	n := b.Len()
	start := int(t.wm.Load())
	if n == 0 {
		return AppendMark{Epoch: t.epoch.Load(), Start: start, End: start, At: at}, nil
	}
	if len(b.cols) != len(t.columns) {
		return AppendMark{}, fmt.Errorf("table %q: batch has %d columns, want %d", t.name, len(b.cols), len(t.columns))
	}
	// Validate everything — names, lengths, types, dictionary membership —
	// before mutating any column, so a rejected batch leaves the table
	// untouched.
	type plannedCol struct {
		dst   Column
		src   batchCol
		codes []int32
	}
	plan := make([]plannedCol, 0, len(b.cols))
	seen := make(map[string]bool, len(b.cols))
	for _, src := range b.cols {
		if seen[src.name] {
			return AppendMark{}, fmt.Errorf("table %q: batch column %q staged twice", t.name, src.name)
		}
		seen[src.name] = true
		idx, ok := t.byName[src.name]
		if !ok {
			return AppendMark{}, fmt.Errorf("table %q: batch column %q is not in the schema", t.name, src.name)
		}
		if src.len() != n {
			return AppendMark{}, fmt.Errorf("%w: batch column %q has %d rows, want %d",
				ErrRaggedColumns, src.name, src.len(), n)
		}
		p := plannedCol{dst: t.columns[idx], src: src}
		switch dst := t.columns[idx].(type) {
		case *Float64Column:
			if src.f == nil {
				return AppendMark{}, fmt.Errorf("table %q: batch column %q must be float64", t.name, src.name)
			}
		case *Int64Column:
			if src.i == nil {
				return AppendMark{}, fmt.Errorf("table %q: batch column %q must be int64", t.name, src.name)
			}
		case *StringColumn:
			if src.s == nil {
				return AppendMark{}, fmt.Errorf("table %q: batch column %q must be string", t.name, src.name)
			}
			p.codes = make([]int32, n)
			for j, v := range src.s {
				code, known := dst.index[v]
				if !known {
					return AppendMark{}, fmt.Errorf("table %q: column %q: value %q is not in the dictionary (streaming appends cannot add dimension members)",
						t.name, src.name, v)
				}
				p.codes[j] = code
			}
		}
		plan = append(plan, p)
	}
	// Write the payload past the watermark. Readers only ever touch
	// indices below it, so even when an append lands in the shared backing
	// array (no reallocation) it writes memory no snapshot can see.
	for _, p := range plan {
		switch dst := p.dst.(type) {
		case *Float64Column:
			dst.values = append(dst.values, p.src.f...)
		case *Int64Column:
			dst.values = append(dst.values, p.src.i...)
		case *StringColumn:
			dst.codes = append(dst.codes, p.codes...)
		}
	}
	if len(t.marks) > 0 && at.Before(t.marks[len(t.marks)-1].At) {
		at = t.marks[len(t.marks)-1].At
	}
	epoch := t.epoch.Add(1)
	mark := AppendMark{Epoch: epoch, Start: start, End: start + n, At: at}
	t.marks = append(t.marks, mark)
	t.wm.Store(int64(start + n))
	return mark, nil
}

// CommittedRows returns the number of rows visible to new readers: the
// watermark on a live table, the plain row count on a frozen one.
func (t *Table) CommittedRows() int { return t.NumRows() }

// Epoch returns the number of committed append batches. Snapshots carry
// the epoch they were cut at; frozen tables that never streamed report 0.
func (t *Table) Epoch() int64 { return t.epoch.Load() }

// Live reports whether the table accepts appends.
func (t *Table) Live() bool { return t.live.Load() }

// Marks returns a copy of the committed append marks in commit order.
func (t *Table) Marks() []AppendMark {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]AppendMark(nil), t.marks...)
}

// RowsInLast resolves a trailing stream-time window of width d to a row
// bound: it returns the index of the first row whose arrival stamp falls
// within d of the newest append mark. Time here is stream time — the
// clock is the newest mark, never the wall — so a frozen snapshot
// resolves the same window forever and window evaluation is bit-identical
// across replays. A table with no append history (or d <= 0) returns 0:
// every row of a static table is current. Base rows loaded before the
// first append are inside the window iff the load stamp is.
func (t *Table) RowsInLast(d time.Duration) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.marks) == 0 || d <= 0 {
		return 0
	}
	cutoff := t.marks[len(t.marks)-1].At.Add(-d)
	for i, m := range t.marks {
		if m.At.Before(cutoff) {
			continue
		}
		if i == 0 && !t.loadedAt.Before(cutoff) {
			return 0
		}
		return m.Start
	}
	// Unreachable: the newest mark is never before its own cutoff.
	return int(t.wm.Load())
}
