// Package table implements the in-memory columnar storage substrate that
// query evaluation and sampling run against. Tables hold typed columns
// (float64, int64, and dictionary-encoded strings), load and store CSV, and
// expose both sequential and pseudo-random row scan streams. The random
// stream is what feeds the sample cache: the holistic algorithm only assumes
// that rows "can be produced without significant startup overheads and at a
// sufficiently high frequency".
package table

import (
	"fmt"
	"strconv"
)

// ColumnType identifies the storage type of a column.
type ColumnType int

// Column types supported by the store.
const (
	Float64Type ColumnType = iota
	Int64Type
	StringType
)

// String implements fmt.Stringer.
func (t ColumnType) String() string {
	switch t {
	case Float64Type:
		return "float64"
	case Int64Type:
		return "int64"
	case StringType:
		return "string"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// Column is a typed column of values. Implementations are append-only.
type Column interface {
	// Name returns the column name.
	Name() string
	// Type returns the storage type.
	Type() ColumnType
	// Len returns the number of stored values.
	Len() int
	// Float returns the value at row i coerced to float64.
	Float(i int) float64
	// StringAt returns the value at row i rendered as a string.
	StringAt(i int) string
	// appendParsed parses raw and appends it (CSV ingestion).
	appendParsed(raw string) error
}

// Float64Column stores float64 values.
type Float64Column struct {
	name   string
	values []float64
}

// NewFloat64Column returns an empty float64 column with the given name.
func NewFloat64Column(name string) *Float64Column {
	return &Float64Column{name: name}
}

// NewFloat64ColumnFromValues wraps an existing value slice as a column
// without copying. Parallel generators fill disjoint regions of one slice
// and hand it over in a single call; the caller must not modify values
// afterwards.
func NewFloat64ColumnFromValues(name string, values []float64) *Float64Column {
	return &Float64Column{name: name, values: values}
}

// Name returns the column name.
func (c *Float64Column) Name() string { return c.name }

// Type returns Float64Type.
func (c *Float64Column) Type() ColumnType { return Float64Type }

// Len returns the number of values.
func (c *Float64Column) Len() int { return len(c.values) }

// Float returns the value at row i.
func (c *Float64Column) Float(i int) float64 { return c.values[i] }

// StringAt formats the value at row i.
func (c *Float64Column) StringAt(i int) string {
	return strconv.FormatFloat(c.values[i], 'g', -1, 64)
}

// Append adds v to the column.
func (c *Float64Column) Append(v float64) { c.values = append(c.values, v) }

// Values returns the backing slice (callers must not modify it).
func (c *Float64Column) Values() []float64 { return c.values }

func (c *Float64Column) appendParsed(raw string) error {
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return fmt.Errorf("table: column %q: %w", c.name, err)
	}
	c.Append(v)
	return nil
}

// Int64Column stores int64 values.
type Int64Column struct {
	name   string
	values []int64
}

// NewInt64Column returns an empty int64 column with the given name.
func NewInt64Column(name string) *Int64Column {
	return &Int64Column{name: name}
}

// Name returns the column name.
func (c *Int64Column) Name() string { return c.name }

// Type returns Int64Type.
func (c *Int64Column) Type() ColumnType { return Int64Type }

// Len returns the number of values.
func (c *Int64Column) Len() int { return len(c.values) }

// Float returns the value at row i as float64.
func (c *Int64Column) Float(i int) float64 { return float64(c.values[i]) }

// Int returns the value at row i.
func (c *Int64Column) Int(i int) int64 { return c.values[i] }

// StringAt formats the value at row i.
func (c *Int64Column) StringAt(i int) string {
	return strconv.FormatInt(c.values[i], 10)
}

// Append adds v to the column.
func (c *Int64Column) Append(v int64) { c.values = append(c.values, v) }

func (c *Int64Column) appendParsed(raw string) error {
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return fmt.Errorf("table: column %q: %w", c.name, err)
	}
	c.Append(v)
	return nil
}

// StringColumn stores strings dictionary-encoded: each row holds a compact
// int32 code into a shared dictionary. Dimension lookup tables exploit the
// codes for O(1) row-to-member classification.
type StringColumn struct {
	name  string
	codes []int32
	dict  []string
	index map[string]int32
}

// NewStringColumn returns an empty dictionary-encoded string column.
func NewStringColumn(name string) *StringColumn {
	return &StringColumn{name: name, index: make(map[string]int32)}
}

// NewStringColumnFromCodes builds a column from a pre-built dictionary and
// code slice without re-hashing every row. The dictionary must list
// distinct values and every code must index into it; parallel generators
// use this to assemble columns from per-worker code regions. The column
// takes ownership of both slices.
func NewStringColumnFromCodes(name string, dict []string, codes []int32) (*StringColumn, error) {
	index := make(map[string]int32, len(dict))
	for i, v := range dict {
		if _, dup := index[v]; dup {
			return nil, fmt.Errorf("table: column %q: duplicate dictionary value %q", name, v)
		}
		index[v] = int32(i)
	}
	for i, code := range codes {
		if code < 0 || int(code) >= len(dict) {
			return nil, fmt.Errorf("table: column %q: row %d code %d outside dictionary of %d",
				name, i, code, len(dict))
		}
	}
	return &StringColumn{name: name, codes: codes, dict: dict, index: index}, nil
}

// Name returns the column name.
func (c *StringColumn) Name() string { return c.name }

// Type returns StringType.
func (c *StringColumn) Type() ColumnType { return StringType }

// Len returns the number of values.
func (c *StringColumn) Len() int { return len(c.codes) }

// Float returns the dictionary code at row i as a float64. Using codes as
// numeric values is rarely meaningful; it exists to satisfy Column.
func (c *StringColumn) Float(i int) float64 { return float64(c.codes[i]) }

// StringAt returns the decoded string at row i.
func (c *StringColumn) StringAt(i int) string { return c.dict[c.codes[i]] }

// Code returns the dictionary code at row i.
func (c *StringColumn) Code(i int) int32 { return c.codes[i] }

// Codes returns the backing code slice (callers must not modify it). Scan
// loops use it to classify rows with direct array loads instead of a
// Code call per row.
func (c *StringColumn) Codes() []int32 { return c.codes }

// Append adds v to the column, extending the dictionary if needed.
func (c *StringColumn) Append(v string) {
	code, ok := c.index[v]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, v)
		c.index[v] = code
	}
	c.codes = append(c.codes, code)
}

// Dict returns the dictionary (callers must not modify it).
func (c *StringColumn) Dict() []string { return c.dict }

// CodeOf returns the dictionary code for v, or -1 if v never occurred.
func (c *StringColumn) CodeOf(v string) int32 {
	if code, ok := c.index[v]; ok {
		return code
	}
	return -1
}

func (c *StringColumn) appendParsed(raw string) error {
	c.Append(raw)
	return nil
}
