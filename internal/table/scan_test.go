package table

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func tableWithNRows(n int) *Table {
	c := NewFloat64Column("v")
	for i := 0; i < n; i++ {
		c.Append(float64(i))
	}
	return MustNew("t", c)
}

func TestSequentialScanner(t *testing.T) {
	s := NewSequentialScanner(tableWithNRows(3))
	var got []int
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("sequential scan = %v", got)
	}
	if _, ok := s.Next(); ok {
		t.Error("exhausted scanner should stay exhausted")
	}
	s.Reset()
	if r, ok := s.Next(); !ok || r != 0 {
		t.Error("reset should restart the stream")
	}
}

func TestSequentialScannerEmpty(t *testing.T) {
	s := NewSequentialScanner(tableWithNRows(0))
	if _, ok := s.Next(); ok {
		t.Error("empty table scan should be exhausted immediately")
	}
}

func TestRandomScannerCoversAllRows(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 100, 1000} {
		rng := rand.New(rand.NewSource(int64(n)))
		s := NewRandomScanner(tableWithNRows(n), rng)
		seen := make([]bool, n)
		count := 0
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if r < 0 || r >= n {
				t.Fatalf("n=%d: row %d out of range", n, r)
			}
			if seen[r] {
				t.Fatalf("n=%d: row %d emitted twice", n, r)
			}
			seen[r] = true
			count++
		}
		if count != n {
			t.Errorf("n=%d: emitted %d rows", n, count)
		}
	}
}

func TestRandomScannerEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewRandomScanner(tableWithNRows(0), rng)
	if _, ok := s.Next(); ok {
		t.Error("empty random scan should be exhausted")
	}
}

func TestRandomScannerResetReplaysOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewRandomScanner(tableWithNRows(20), rng)
	var first []int
	for {
		r, ok := s.Next()
		if !ok {
			break
		}
		first = append(first, r)
	}
	s.Reset()
	for i := range first {
		r, ok := s.Next()
		if !ok || r != first[i] {
			t.Fatal("reset should replay the same order")
		}
	}
}

func TestRandomScannerRemaining(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewRandomScanner(tableWithNRows(5), rng)
	if s.Remaining() != 5 {
		t.Errorf("remaining = %d, want 5", s.Remaining())
	}
	s.Next()
	s.Next()
	if s.Remaining() != 3 {
		t.Errorf("remaining = %d, want 3", s.Remaining())
	}
}

func TestRandomScannerNotSequentialForLargeN(t *testing.T) {
	// With 1000 rows, the probability that a random affine order equals the
	// sequential order is negligible unless stride==1 and offset==0; detect
	// obviously broken shuffling.
	rng := rand.New(rand.NewSource(99))
	s := NewRandomScanner(tableWithNRows(1000), rng)
	inOrder := true
	prev := -1
	for i := 0; i < 10; i++ {
		r, _ := s.Next()
		if r != prev+1 {
			inOrder = false
		}
		prev = r
	}
	if inOrder {
		t.Error("random scan looks sequential")
	}
}

// Property: the random scanner is a permutation for any n >= 1.
func TestRandomScannerPermutationProperty(t *testing.T) {
	f := func(seed int64, nSeed uint16) bool {
		n := int(nSeed)%500 + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewRandomScanner(tableWithNRows(n), rng)
		seen := make(map[int]bool, n)
		for {
			r, ok := s.Next()
			if !ok {
				break
			}
			if seen[r] {
				return false
			}
			seen[r] = true
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{12, 8, 4}, {7, 13, 1}, {10, 5, 5}, {1, 1, 1},
	}
	for _, c := range cases {
		if got := gcd(c.a, c.b); got != c.want {
			t.Errorf("gcd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
