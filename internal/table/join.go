package table

import (
	"errors"
	"fmt"
)

// StringAccessor is the read interface over dictionary-encoded string data
// that dimension bindings classify rows through. StringColumn implements
// it directly; JoinColumn implements it for star schemas by resolving a
// fact-table foreign key into a dimension-table attribute at access time —
// the paper's "joining fact table entries with indexed dimension tables".
type StringAccessor interface {
	// Name returns the accessor name.
	Name() string
	// Len returns the number of rows.
	Len() int
	// Code returns the dictionary code for row i.
	Code(i int) int32
	// Dict returns the dictionary of distinct values.
	Dict() []string
	// StringAt returns the decoded value at row i.
	StringAt(i int) string
}

// Compile-time check: the plain column satisfies the interface.
var _ StringAccessor = (*StringColumn)(nil)

// JoinColumn exposes a dimension-table attribute as if it were a column of
// the fact table: row i's value is attr[fk[i]]. The join is precomputed
// into a code lookup, so per-row access stays O(1) with no hashing — an
// indexed foreign-key join.
type JoinColumn struct {
	name string
	fk   *Int64Column
	attr *StringColumn
	// codeOf[k] is the attribute's dictionary code for dimension row k.
	codeOf []int32
}

// NewJoinColumn joins fact.fk (0-based row ids into the dimension table)
// with the dimension attribute column. Foreign keys out of range are an
// error, reported with the first offending fact row.
func NewJoinColumn(name string, fk *Int64Column, attr *StringColumn) (*JoinColumn, error) {
	if fk == nil || attr == nil {
		return nil, errors.New("table: join needs fact and dimension columns")
	}
	codeOf := make([]int32, attr.Len())
	for k := 0; k < attr.Len(); k++ {
		codeOf[k] = attr.Code(k)
	}
	for i := 0; i < fk.Len(); i++ {
		key := fk.Int(i)
		if key < 0 || key >= int64(len(codeOf)) {
			return nil, fmt.Errorf("table: join %q: fact row %d references dimension row %d of %d",
				name, i, key, len(codeOf))
		}
	}
	return &JoinColumn{name: name, fk: fk, attr: attr, codeOf: codeOf}, nil
}

// Name implements StringAccessor.
func (j *JoinColumn) Name() string { return j.name }

// Len implements StringAccessor (the fact table's row count).
func (j *JoinColumn) Len() int { return j.fk.Len() }

// Code implements StringAccessor.
func (j *JoinColumn) Code(i int) int32 { return j.codeOf[j.fk.Int(i)] }

// Dict implements StringAccessor (the dimension attribute's dictionary).
func (j *JoinColumn) Dict() []string { return j.attr.Dict() }

// StringAt implements StringAccessor.
func (j *JoinColumn) StringAt(i int) string { return j.attr.Dict()[j.Code(i)] }
