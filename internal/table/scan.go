package table

import (
	"math/rand"
)

// Scanner produces a stream of row indices from a table. Next returns the
// next row index and true, or 0 and false when the stream is exhausted.
type Scanner interface {
	Next() (row int, ok bool)
	// Reset restarts the stream from the beginning.
	Reset()
}

// SequentialScanner yields rows 0..n-1 in order.
type SequentialScanner struct {
	n, pos int
}

// NewSequentialScanner scans the table front to back.
func NewSequentialScanner(t *Table) *SequentialScanner {
	return &SequentialScanner{n: t.NumRows()}
}

// Next implements Scanner.
func (s *SequentialScanner) Next() (int, bool) {
	if s.pos >= s.n {
		return 0, false
	}
	r := s.pos
	s.pos++
	return r, true
}

// Reset implements Scanner.
func (s *SequentialScanner) Reset() { s.pos = 0 }

// RandomScanner yields every row exactly once in a pseudo-random order using
// O(1) memory: it walks a full-cycle affine sequence i -> (i*stride + offset)
// mod n where gcd(stride, n) == 1. That gives the sample cache an unbiased
// row stream over arbitrarily large tables without materializing a
// permutation.
type RandomScanner struct {
	n       int
	stride  int
	offset  int
	emitted int
	cur     int
}

// NewRandomScanner returns a scanner over all rows of t in pseudo-random
// order derived from rng. An empty table yields an exhausted scanner.
func NewRandomScanner(t *Table, rng *rand.Rand) *RandomScanner {
	n := t.NumRows()
	s := &RandomScanner{n: n}
	if n == 0 {
		return s
	}
	s.offset = rng.Intn(n)
	s.stride = coprimeStride(n, rng)
	s.cur = s.offset
	return s
}

// coprimeStride picks a stride in [1, n) coprime with n so the affine walk
// visits every row exactly once.
func coprimeStride(n int, rng *rand.Rand) int {
	if n == 1 {
		return 1
	}
	for {
		c := 1 + rng.Intn(n-1)
		if gcd(c, n) == 1 {
			return c
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Next implements Scanner.
func (s *RandomScanner) Next() (int, bool) {
	if s.emitted >= s.n {
		return 0, false
	}
	r := s.cur
	s.cur = (s.cur + s.stride) % s.n
	s.emitted++
	return r, true
}

// Reset implements Scanner. The same pseudo-random order is replayed.
func (s *RandomScanner) Reset() {
	s.emitted = 0
	s.cur = s.offset
}

// Remaining returns how many rows are left in the stream.
func (s *RandomScanner) Remaining() int { return s.n - s.emitted }
