package table

import (
	"math/rand"
)

// Scanner produces a stream of row indices from a table. Next returns the
// next row index and true, or 0 and false when the stream is exhausted.
type Scanner interface {
	Next() (row int, ok bool)
	// Reset restarts the stream from the beginning.
	Reset()
}

// BatchScanner is an optional Scanner extension: NextBatch fills buf with
// the next row indices and returns how many were written (0 when the
// stream is exhausted). Native implementations amortize the per-row
// interface dispatch of Next into one call per batch.
type BatchScanner interface {
	NextBatch(buf []int) int
}

// FillBatch pulls up to len(buf) rows from s into buf, using the native
// batch implementation when the scanner provides one and falling back to
// repeated Next calls otherwise. It returns the number of rows written.
func FillBatch(s Scanner, buf []int) int {
	if bs, ok := s.(BatchScanner); ok {
		return bs.NextBatch(buf)
	}
	n := 0
	for n < len(buf) {
		r, ok := s.Next()
		if !ok {
			break
		}
		buf[n] = r
		n++
	}
	return n
}

// SequentialScanner yields rows 0..n-1 in order.
type SequentialScanner struct {
	n, pos int
	epoch  int64
}

// NewSequentialScanner scans the table front to back. The scanner is
// pinned at construction to the table's committed watermark and epoch:
// rows appended after construction are never emitted, so an in-flight
// scan over a growing table cannot mix an old row bound with new data.
func NewSequentialScanner(t *Table) *SequentialScanner {
	return &SequentialScanner{n: t.CommittedRows(), epoch: t.Epoch()}
}

// Epoch returns the table epoch the scanner was pinned to at construction.
func (s *SequentialScanner) Epoch() int64 { return s.epoch }

// Next implements Scanner.
func (s *SequentialScanner) Next() (int, bool) {
	if s.pos >= s.n {
		return 0, false
	}
	r := s.pos
	s.pos++
	return r, true
}

// Reset implements Scanner.
func (s *SequentialScanner) Reset() { s.pos = 0 }

// NextBatch implements BatchScanner.
func (s *SequentialScanner) NextBatch(buf []int) int {
	n := 0
	for n < len(buf) && s.pos < s.n {
		buf[n] = s.pos
		s.pos++
		n++
	}
	return n
}

// RandomScanner yields every row exactly once in a pseudo-random order using
// O(1) memory: it walks a full-cycle affine sequence i -> (i*stride + offset)
// mod n where gcd(stride, n) == 1. That gives the sample cache an unbiased
// row stream over arbitrarily large tables without materializing a
// permutation.
type RandomScanner struct {
	n       int
	base    int
	stride  int
	offset  int
	emitted int
	cur     int
	epoch   int64
}

// NewRandomScanner returns a scanner over all rows of t in pseudo-random
// order derived from rng. An empty table yields an exhausted scanner. Like
// NewSequentialScanner, the scanner is pinned to the table's committed
// watermark and epoch at construction: rows appended later are never
// emitted.
func NewRandomScanner(t *Table, rng *rand.Rand) *RandomScanner {
	s := NewRandomRangeScanner(0, t.CommittedRows(), rng)
	s.epoch = t.Epoch()
	return s
}

// Epoch returns the table epoch the scanner was pinned to at construction
// (0 for range scanners built without a table).
func (s *RandomScanner) Epoch() int64 { return s.epoch }

// NewRandomRangeScanner returns a scanner over rows [lo, hi) in
// pseudo-random order derived from rng: the same full-cycle affine walk as
// NewRandomScanner restricted to a contiguous partition. Sharded samplers
// give each worker one partition, so every shard remains a uniform stream
// over its rows. An empty range yields an exhausted scanner.
func NewRandomRangeScanner(lo, hi int, rng *rand.Rand) *RandomScanner {
	n := hi - lo
	if n < 0 {
		n = 0
	}
	s := &RandomScanner{n: n, base: lo}
	if n == 0 {
		return s
	}
	s.offset = rng.Intn(n)
	s.stride = coprimeStride(n, rng)
	s.cur = s.offset
	return s
}

// coprimeStride picks a stride in [1, n) coprime with n so the affine walk
// visits every row exactly once.
func coprimeStride(n int, rng *rand.Rand) int {
	if n == 1 {
		return 1
	}
	for {
		c := 1 + rng.Intn(n-1)
		if gcd(c, n) == 1 {
			return c
		}
	}
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Next implements Scanner.
func (s *RandomScanner) Next() (int, bool) {
	if s.emitted >= s.n {
		return 0, false
	}
	r := s.base + s.cur
	s.cur = (s.cur + s.stride) % s.n
	s.emitted++
	return r, true
}

// NextBatch implements BatchScanner with one bounds check per row and no
// interface dispatch: the affine walk runs in a tight local-variable loop.
func (s *RandomScanner) NextBatch(buf []int) int {
	want := s.n - s.emitted
	if want > len(buf) {
		want = len(buf)
	}
	if want <= 0 {
		return 0
	}
	cur, stride, n, base := s.cur, s.stride, s.n, s.base
	for i := 0; i < want; i++ {
		buf[i] = base + cur
		cur += stride
		if cur >= n {
			cur -= n
		}
	}
	s.cur = cur
	s.emitted += want
	return want
}

// Reset implements Scanner. The same pseudo-random order is replayed.
func (s *RandomScanner) Reset() {
	s.emitted = 0
	s.cur = s.offset
}

// Remaining returns how many rows are left in the stream.
func (s *RandomScanner) Remaining() int { return s.n - s.emitted }
