package semcache

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/dimension"
	"repro/internal/olap"
)

// testHierarchies builds a small schema with different depths so level
// handling is exercised: airport(region,state,city), date(season,month),
// airline(airline).
func testHierarchies() (airport, date, airline *dimension.Hierarchy) {
	airport = dimension.MustNewHierarchy("start airport", "ap", "airports", "all airports",
		[]string{"region", "state", "city"})
	airport.MustAddPath("West", "California", "San Francisco")
	airport.MustAddPath("West", "Washington", "Seattle")
	airport.MustAddPath("East", "New York", "New York City")
	date = dimension.MustNewHierarchy("flight date", "dt", "dates", "the whole year",
		[]string{"season", "month"})
	date.MustAddPath("Winter", "January")
	date.MustAddPath("Summer", "July")
	airline = dimension.MustNewHierarchy("airline", "al", "airlines", "all airlines",
		[]string{"airline"})
	airline.MustAddPath("Oceanic")
	airline.MustAddPath("Ajira")
	return airport, date, airline
}

// signature is an implementation-independent canonical description of a
// query, built with nothing but sorted strings: the ground truth the Key
// must be a bijection of.
func signature(q olap.Query) string {
	var groups, filters []string
	for _, g := range q.GroupBy {
		groups = append(groups, fmt.Sprintf("%s@%d", strings.ToLower(g.Hierarchy.Name), g.Level))
	}
	sort.Strings(groups)
	for _, f := range q.Filters {
		var path []string
		for l := 1; l <= f.Level; l++ {
			path = append(path, f.AncestorAt(l).Name)
		}
		filters = append(filters, strings.ToLower(f.Hierarchy().Name)+"="+strings.Join(path, "/"))
	}
	sort.Strings(filters)
	col := q.Col
	if q.Fct == olap.Count {
		col = ""
	}
	return fmt.Sprintf("%v|%s|%s|%v|%v", q.Fct, col, q.ColDescription, groups, filters)
}

// permutations returns every ordering of idxs (n <= 3 here, so at most 6).
func permutations(n int) [][]int {
	if n == 0 {
		return [][]int{{}}
	}
	var out [][]int
	for _, rest := range permutations(n - 1) {
		for pos := 0; pos <= len(rest); pos++ {
			p := append([]int{}, rest[:pos]...)
			p = append(p, n-1)
			p = append(p, rest[pos:]...)
			out = append(out, p)
		}
	}
	return out
}

// corpus generates every query over the test schema: all aggregate
// functions, all non-empty scope subsets with all level choices, and all
// per-hierarchy filter choices (none or one of two members).
func corpus(t *testing.T) []olap.Query {
	t.Helper()
	airport, date, airline := testHierarchies()
	hs := []*dimension.Hierarchy{airport, date, airline}
	filterChoices := [][]*dimension.Member{
		{nil, airport.FindMember("West"), airport.FindMember("San Francisco")},
		{nil, date.FindMember("Winter"), date.FindMember("July")},
		{nil, airline.FindMember("Oceanic")},
	}
	var queries []olap.Query
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		for mask := 1; mask < 1<<len(hs); mask++ {
			var scoped []*dimension.Hierarchy
			for i, h := range hs {
				if mask&(1<<i) != 0 {
					scoped = append(scoped, h)
				}
			}
			// Enumerate level assignments for the scoped hierarchies.
			levels := make([]int, len(scoped))
			for i := range levels {
				levels[i] = 1
			}
			for {
				var gb []olap.GroupBy
				for i, h := range scoped {
					gb = append(gb, olap.GroupBy{Hierarchy: h, Level: levels[i]})
				}
				for fmask := 0; fmask < 27; fmask++ {
					var filters []*dimension.Member
					fm := fmask
					for i := 0; i < 3; i++ {
						choice := fm % 3
						fm /= 3
						if choice < len(filterChoices[i]) && filterChoices[i][choice] != nil {
							filters = append(filters, filterChoices[i][choice])
						}
					}
					queries = append(queries, olap.Query{
						Fct: fct, Col: "cancelled", ColDescription: "average cancellation probability",
						GroupBy: gb, Filters: filters,
					})
				}
				// Advance the level counter, odometer style.
				i := 0
				for ; i < len(scoped); i++ {
					if levels[i] < scoped[i].Depth() {
						levels[i]++
						break
					}
					levels[i] = 1
				}
				if i == len(scoped) {
					break
				}
			}
		}
	}
	return queries
}

// TestKeyCanonicalEquality is the proof-style corpus test: every ordering
// of a query's scopes and filters produces the byte-identical key, and two
// queries with different canonical signatures never share a key.
func TestKeyCanonicalEquality(t *testing.T) {
	queries := corpus(t)
	if len(queries) < 1000 {
		t.Fatalf("corpus too small to prove anything: %d queries", len(queries))
	}
	keyBySig := make(map[string]string)
	sigByKey := make(map[string]string)
	for _, q := range queries {
		sig := signature(q)
		base := Key(q)
		// Equality direction: every permutation of GroupBy and Filters is
		// canonically equal and must produce the identical byte string.
		for _, perm := range permutations(len(q.GroupBy)) {
			for _, fperm := range permutations(len(q.Filters)) {
				pq := q
				pq.GroupBy = make([]olap.GroupBy, len(q.GroupBy))
				for i, j := range perm {
					pq.GroupBy[i] = q.GroupBy[j]
				}
				pq.Filters = make([]*dimension.Member, len(q.Filters))
				for i, j := range fperm {
					pq.Filters[i] = q.Filters[j]
				}
				if got := Key(pq); got != base {
					t.Fatalf("permuted key differs:\n  base %q\n  perm %q\n  sig  %s", base, got, sig)
				}
			}
		}
		// Collision direction: one key per signature, one signature per key.
		if prev, ok := keyBySig[sig]; ok && prev != base {
			t.Fatalf("signature %s mapped to two keys:\n  %q\n  %q", sig, prev, base)
		}
		keyBySig[sig] = base
		if prevSig, ok := sigByKey[base]; ok && prevSig != sig {
			t.Fatalf("key collision between distinct queries:\n  key %q\n  sig1 %s\n  sig2 %s", base, prevSig, sig)
		}
		sigByKey[base] = sig
	}
	t.Logf("corpus: %d queries, %d distinct canonical forms, zero collisions", len(queries), len(sigByKey))
}

// TestKeySynonymNormalization pins the shared-vocabulary property: a
// hierarchy named by a spoken alias ("carrier") keys identically to one
// named canonically ("airline"), because both go through nlq.CanonicalName.
func TestKeySynonymNormalization(t *testing.T) {
	build := func(name string) *dimension.Hierarchy {
		h := dimension.MustNewHierarchy(name, "al", "airlines", "all airlines", []string{name})
		h.MustAddPath("Oceanic")
		return h
	}
	carrier, airline := build("carrier"), build("airline")
	mk := func(h *dimension.Hierarchy) olap.Query {
		return olap.Query{
			Fct: olap.Avg, Col: "cancelled", ColDescription: "average cancellation probability",
			GroupBy: []olap.GroupBy{{Hierarchy: h, Level: 1}},
		}
	}
	if Key(mk(carrier)) != Key(mk(airline)) {
		t.Errorf("synonym hierarchies key differently:\n  %q\n  %q", Key(mk(carrier)), Key(mk(airline)))
	}
}

// TestNormalizeSortsWithoutMutating pins Normalize's contract: sorted by
// canonical hierarchy name, original untouched.
func TestNormalizeSortsWithoutMutating(t *testing.T) {
	airport, date, airline := testHierarchies()
	q := olap.Query{
		Fct: olap.Avg, Col: "c", ColDescription: "d",
		GroupBy: []olap.GroupBy{
			{Hierarchy: date, Level: 2},
			{Hierarchy: airport, Level: 1},
			{Hierarchy: airline, Level: 1},
		},
		Filters: []*dimension.Member{date.FindMember("Winter"), airport.FindMember("West")},
	}
	orig0 := q.GroupBy[0]
	n := Normalize(q)
	want := []string{"airline", "flight date", "start airport"}
	for i, g := range n.GroupBy {
		if g.Hierarchy.Name != want[i] {
			t.Errorf("GroupBy[%d] = %q, want %q", i, g.Hierarchy.Name, want[i])
		}
	}
	if n.Filters[0].Hierarchy() != date || n.Filters[1].Hierarchy() != airport {
		t.Errorf("filters not sorted by canonical hierarchy name")
	}
	if q.GroupBy[0] != orig0 {
		t.Error("Normalize mutated its input")
	}
	if Key(q) != Key(n) {
		t.Error("normalized query keys differently from the original")
	}
}
