// Package semcache makes repeated voice queries near-free: a canonical
// key equates semantically equivalent OLAP queries (scope order and
// spoken synonyms don't matter, structure does), a bounded two-tier LRU
// memoizes finished speeches (tier A) and warmed sample views (tier B)
// under singleflight, and prewarmed pools hand out cloned per-dataset
// session state so no request pays cold-start. This is the structural
// analogue of LLM-based semantic OLAP caching: internal/nlq already
// resolves synonyms and hierarchies, so canonicalization is a sort plus a
// synonym map instead of a model call.
//
// Soundness contract (see DESIGN.md): callers must vocalize the
// Normalize'd query, never the raw one. Then key equality implies an
// identical planner input, and with the deterministic planner
// configuration the web layer uses (fixed seed, simulated clock, one
// planner worker) an identical spoken answer — which is what lets tier A
// replay cached speech bit-for-bit.
package semcache

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/dimension"
	"repro/internal/nlq"
	"repro/internal/olap"
)

// Normalize returns q with group-by entries and filters sorted by their
// hierarchies' canonical names. The input is not mutated. Two queries that
// differ only in the order dimensions were mentioned normalize to the same
// value, so vocalizing the normalized query makes "by region and season"
// and "by season and region" produce the same speech.
func Normalize(q olap.Query) olap.Query {
	n := q
	n.GroupBy = append([]olap.GroupBy(nil), q.GroupBy...)
	sort.SliceStable(n.GroupBy, func(i, j int) bool {
		return canonicalHierarchy(n.GroupBy[i].Hierarchy) < canonicalHierarchy(n.GroupBy[j].Hierarchy)
	})
	n.Filters = append([]*dimension.Member(nil), q.Filters...)
	sort.SliceStable(n.Filters, func(i, j int) bool {
		return canonicalHierarchy(n.Filters[i].Hierarchy()) < canonicalHierarchy(n.Filters[j].Hierarchy())
	})
	return n
}

// Key renders q's canonical form as a deterministic byte string: two
// queries get equal keys iff they normalize to the same aggregate
// function, measure, sorted scope set, and sorted filter set. Field and
// path separators are control bytes no spoken name contains, so distinct
// structures cannot collide by concatenation.
func Key(q olap.Query) string {
	n := Normalize(q)
	var b strings.Builder
	b.WriteString("f=")
	b.WriteString(n.Fct.String())
	// The measure column only reaches the scan for non-count aggregates,
	// but its spoken description shapes the preamble for all of them.
	b.WriteString("\x1fc=")
	if n.Fct != olap.Count {
		b.WriteString(n.Col)
	}
	b.WriteString("\x1fd=")
	b.WriteString(n.ColDescription)
	// Time-windowed scopes answer over different rows than unwindowed ones,
	// so the window width is part of the key. It is only written when set:
	// keys for unwindowed queries are byte-identical to pre-streaming keys,
	// so existing cache entries stay addressable.
	if n.Window.Last > 0 {
		b.WriteString("\x1fw=")
		b.WriteString(n.Window.Last.String())
	}
	for _, g := range n.GroupBy {
		b.WriteString("\x1fg=")
		b.WriteString(canonicalHierarchy(g.Hierarchy))
		b.WriteString("\x1e")
		b.WriteString(strconv.Itoa(g.Level))
	}
	for _, f := range n.Filters {
		b.WriteString("\x1fm=")
		b.WriteString(canonicalHierarchy(f.Hierarchy()))
		writeMemberPath(&b, f)
	}
	return b.String()
}

// canonicalHierarchy names a hierarchy for key purposes, folding spoken
// synonyms through the same table the parser uses (nlq.CanonicalName), so
// parse-time and key-time vocabulary can never drift apart.
func canonicalHierarchy(h *dimension.Hierarchy) string {
	if h == nil {
		return ""
	}
	return nlq.CanonicalName(h.Name)
}

// writeMemberPath appends the member's full root-to-member name path:
// member names are only unique within a level's parent, so the path is the
// member's canonical identity.
func writeMemberPath(b *strings.Builder, m *dimension.Member) {
	if m == nil {
		return
	}
	for level := 1; level <= m.Level; level++ {
		b.WriteString("\x1e")
		b.WriteString(m.AncestorAt(level).Name)
	}
}
