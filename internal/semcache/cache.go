package semcache

import (
	"container/list"
	"context"
	"strings"
	"sync"
)

// Outcome classifies how a Do call was satisfied.
type Outcome int

const (
	// Miss means this call computed the value itself.
	Miss Outcome = iota
	// Hit means a stored entry was returned without computing.
	Hit
	// Coalesced means the call waited on another caller's in-flight
	// computation of the same key and shares its stored result.
	Coalesced
	// Aborted means the caller's context expired while waiting on another
	// caller's in-flight computation: the call neither computed nor was
	// served. Counting these separately keeps hit-rate math honest — an
	// aborted waiter is not a miss, it never got an answer at all.
	Aborted
)

// String names the outcome for logs and response fields.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	case Aborted:
		return "aborted"
	default:
		return "miss"
	}
}

// Stats snapshots a cache's counters.
type Stats struct {
	// Hits counts Get/Do calls answered from a stored entry; Misses calls
	// that computed; Coalesced calls that shared an in-flight computation.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	// Aborted counts waiters whose context expired before the in-flight
	// computation they were coalesced onto finished.
	Aborted int64 `json:"aborted"`
	// Stores counts accepted Put/Do stores; Rejected computations whose
	// result was not cacheable (degraded, fallback, reduced quality);
	// Evictions LRU drops; Purged epoch-invalidation drops.
	Stores    int64 `json:"stores"`
	Rejected  int64 `json:"rejected"`
	Evictions int64 `json:"evictions"`
	Purged    int64 `json:"purged"`
}

// entry is one cached value on the LRU list.
type entry[V any] struct {
	key string
	val V
	elt *list.Element
}

// flight is one in-progress computation other callers can wait on.
type flight[V any] struct {
	done   chan struct{}
	val    V
	stored bool
}

// Cache is a bounded LRU keyed by canonical strings, with singleflight
// semantics: concurrent Do calls for one key run the compute function
// once. It is safe for concurrent use. A thundering herd of equivalent
// queries therefore does the planner work once and shares the speech.
type Cache[V any] struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*entry[V]
	lru     *list.List // front = most recently used
	flights map[string]*flight[V]
	stats   Stats
}

// New returns a cache holding at most capacity entries (minimum 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[string]*entry[V]),
		lru:     list.New(),
		flights: make(map[string]*flight[V]),
	}
}

// Get returns the stored value for key, refreshing its recency.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elt)
		c.stats.Hits++
		return e.val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Contains reports whether key is stored, without counting a hit or miss
// and without refreshing recency — for background probes that must not
// skew the serving statistics.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Put stores val under key unconditionally, evicting the least recently
// used entry beyond capacity.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.store(key, val)
}

// store inserts or refreshes an entry. Caller holds c.mu.
func (c *Cache[V]) store(key string, val V) {
	if e, ok := c.entries[key]; ok {
		e.val = val
		c.lru.MoveToFront(e.elt)
		c.stats.Stores++
		return
	}
	for len(c.entries) >= c.cap {
		oldest := c.lru.Back()
		if oldest == nil {
			break
		}
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(string))
		c.stats.Evictions++
	}
	e := &entry[V]{key: key, val: val}
	e.elt = c.lru.PushFront(key)
	c.entries[key] = e
	c.stats.Stores++
}

// Do returns the value for key, computing it at most once across
// concurrent callers. compute reports (value, cacheable): a non-cacheable
// value (a degraded speech, a fallback answer) is returned to its caller
// but never stored, so no later hit can replay it. Callers waiting on
// another caller's flight whose result was not stored retry the loop and
// compute for themselves — an error or uncacheable result must not poison
// the herd. ctx bounds only the waiting, not the computation (compute
// carries its own context).
func (c *Cache[V]) Do(ctx context.Context, key string, compute func() (V, bool, error)) (V, Outcome, error) {
	var zero V
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.lru.MoveToFront(e.elt)
			c.stats.Hits++
			val := e.val
			c.mu.Unlock()
			return val, Hit, nil
		}
		if f, inflight := c.flights[key]; inflight {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				c.mu.Lock()
				c.stats.Aborted++
				c.mu.Unlock()
				return zero, Aborted, ctx.Err()
			}
			if f.stored {
				c.mu.Lock()
				c.stats.Coalesced++
				c.mu.Unlock()
				return f.val, Coalesced, nil
			}
			continue // leader's result wasn't cacheable: compute ourselves
		}
		f := &flight[V]{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		val, cacheable, err := compute()
		c.mu.Lock()
		if err == nil && cacheable {
			c.store(key, val)
			f.val, f.stored = val, true
		} else if err == nil {
			c.stats.Rejected++
		}
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
		return val, Miss, err
	}
}

// purgeChunk bounds how many deletions PurgePrefix performs per mutex
// hold, so concurrent Do hits never stall behind a full-map purge.
const purgeChunk = 256

// PurgePrefix drops every entry whose key starts with prefix and returns
// the count — epoch invalidation removes one dataset's whole keyspace.
//
// The mutex is never held across the full map: keys are snapshotted under
// one brief hold (string headers only, no prefix matching inside the
// lock), matched outside it, and deleted in bounded chunks that re-check
// each key still resides in the cache. Entries stored concurrently with
// the purge may survive it, exactly as entries stored just after a
// monolithic purge would — callers invalidating an epoch already make
// stale keys unreachable by construction (the epoch is part of the key).
func (c *Cache[V]) PurgePrefix(prefix string) int {
	c.mu.Lock()
	keys := make([]string, 0, len(c.entries))
	for key := range c.entries {
		keys = append(keys, key)
	}
	c.mu.Unlock()

	matched := keys[:0]
	for _, key := range keys {
		if strings.HasPrefix(key, prefix) {
			matched = append(matched, key)
		}
	}

	n := 0
	for len(matched) > 0 {
		chunk := matched
		if len(chunk) > purgeChunk {
			chunk = chunk[:purgeChunk]
		}
		matched = matched[len(chunk):]
		c.mu.Lock()
		deleted := 0
		for _, key := range chunk {
			if e, ok := c.entries[key]; ok {
				c.lru.Remove(e.elt)
				delete(c.entries, key)
				deleted++
			}
		}
		c.stats.Purged += int64(deleted)
		c.mu.Unlock()
		n += deleted
	}
	return n
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
