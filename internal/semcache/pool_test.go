package semcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolPrewarmAndRecycle(t *testing.T) {
	var builds atomic.Int64
	p, err := NewPool(3, func() (int, error) {
		return int(builds.Add(1)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 3 || p.Len() != 3 {
		t.Fatalf("prewarm built %d, free %d; want 3 and 3", builds.Load(), p.Len())
	}
	// Three warm checkouts drain the free list without touching the factory.
	for i := 0; i < 3; i++ {
		if _, err := p.Get(); err != nil {
			t.Fatal(err)
		}
	}
	if builds.Load() != 3 {
		t.Fatalf("warm checkouts built %d new values", builds.Load()-3)
	}
	// The fourth is a cold build.
	if _, err := p.Get(); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != 4 {
		t.Fatalf("cold checkout should build exactly one, built %d", builds.Load()-3)
	}
	// Restock beyond the bound discards.
	for i := 0; i < 5; i++ {
		p.Put(i)
	}
	if p.Len() != 3 {
		t.Fatalf("free = %d after overfill, want 3", p.Len())
	}
	st := p.Stats()
	if st.Warm != 3 || st.Cold != 1 || st.Restocked != 3 || st.Discarded != 2 || st.Free != 3 {
		t.Errorf("stats = %+v", st)
	}
}

// TestPoolConcurrent exercises Get/Put under contention for -race.
func TestPoolConcurrent(t *testing.T) {
	p, err := NewPool(4, func() (int, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				v, err := p.Get()
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				p.Put(v)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if st.Warm+st.Cold != 8*500 {
		t.Errorf("checkouts = %d, want %d", st.Warm+st.Cold, 8*500)
	}
}
