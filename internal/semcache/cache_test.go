package semcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetPutLRU(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" must evict it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry a was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestCacheDoSingleflight(t *testing.T) {
	c := New[string](8)
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	const workers = 16
	results := make([]string, workers)
	outcomes := make([]Outcome, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, oc, err := c.Do(context.Background(), "k", func() (string, bool, error) {
				close(started)
				<-release
				computes.Add(1)
				return "speech", true, nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i], outcomes[i] = v, oc
		}(i)
	}
	<-started
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want once (singleflight)", n)
	}
	misses, shared := 0, 0
	for i := range results {
		if results[i] != "speech" {
			t.Fatalf("worker %d got %q", i, results[i])
		}
		switch outcomes[i] {
		case Miss:
			misses++
		case Coalesced, Hit:
			shared++
		}
	}
	if misses != 1 || shared != workers-1 {
		t.Errorf("outcomes: %d misses, %d shared; want 1 and %d", misses, shared, workers-1)
	}
}

func TestCacheDoUncacheableNotStored(t *testing.T) {
	c := New[string](8)
	v, oc, err := c.Do(context.Background(), "k", func() (string, bool, error) {
		return "degraded speech", false, nil
	})
	if err != nil || v != "degraded speech" || oc != Miss {
		t.Fatalf("Do = %q, %v, %v", v, oc, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("uncacheable value was stored — a degraded answer must never be replayed")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Stores != 0 {
		t.Errorf("stats = %+v, want Rejected 1 / Stores 0", st)
	}
}

func TestCacheDoErrorDoesNotPoisonFollowers(t *testing.T) {
	c := New[string](8)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	var followerV string
	var followerErr error
	done := make(chan struct{})
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (string, bool, error) {
			close(leaderIn)
			<-leaderOut
			return "", true, errors.New("scan failed")
		})
	}()
	<-leaderIn
	go func() {
		defer close(done)
		followerV, _, followerErr = c.Do(context.Background(), "k", func() (string, bool, error) {
			return "retried", true, nil
		})
	}()
	close(leaderOut)
	<-done
	if followerErr != nil || followerV != "retried" {
		t.Fatalf("follower inherited the leader's failure: %q, %v", followerV, followerErr)
	}
	if v, ok := c.Get("k"); !ok || v != "retried" {
		t.Fatalf("follower's retry was not stored: %q, %v", v, ok)
	}
}

func TestCacheDoContextCancelWhileWaiting(t *testing.T) {
	c := New[string](8)
	leaderIn := make(chan struct{})
	leaderOut := make(chan struct{})
	defer close(leaderOut)
	go func() {
		_, _, _ = c.Do(context.Background(), "k", func() (string, bool, error) {
			close(leaderIn)
			<-leaderOut
			return "late", true, nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.Do(ctx, "k", nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiting Do = %v, want context.Canceled", err)
	}
}

func TestCachePurgePrefix(t *testing.T) {
	c := New[int](16)
	c.Put("flights\x001\x00a", 1)
	c.Put("flights\x001\x00b", 2)
	c.Put("salaries\x001\x00a", 3)
	if n := c.PurgePrefix("flights\x00"); n != 2 {
		t.Fatalf("purged %d, want 2", n)
	}
	if _, ok := c.Get("flights\x001\x00a"); ok {
		t.Error("purged entry survived")
	}
	if _, ok := c.Get("salaries\x001\x00a"); !ok {
		t.Error("unrelated entry was purged")
	}
}

// TestCacheConcurrentMixed hammers every operation from many goroutines;
// its value is running under -race.
func TestCacheConcurrentMixed(t *testing.T) {
	c := New[int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%40)
				switch i % 4 {
				case 0:
					c.Put(key, i)
				case 1:
					c.Get(key)
				case 2:
					_, _, _ = c.Do(context.Background(), key, func() (int, bool, error) {
						return i, i%3 != 0, nil
					})
				default:
					c.PurgePrefix(fmt.Sprintf("k%d", w))
				}
			}
		}(w)
	}
	wg.Wait()
	c.Stats() // must not race either
}
