package semcache

import "sync"

// PoolStats snapshots a pool's counters.
type PoolStats struct {
	// Warm counts checkouts served from the prewarmed free list; Cold
	// checkouts that had to build from the factory because the list was
	// momentarily empty.
	Warm int64 `json:"warm"`
	Cold int64 `json:"cold"`
	// Restocked counts values returned or refilled into the free list;
	// Discarded values dropped because the list was full.
	Restocked int64 `json:"restocked"`
	Discarded int64 `json:"discarded"`
	// Free is the current free-list length.
	Free int `json:"free"`
}

// Pool is a fixed-size free list of prewarmed values in the poolcache
// shape: Get pops a ready value (building from the factory only when the
// list is empty), Put restocks up to the size bound. The web layer keeps
// one pool of pristine cloned nlq sessions per dataset so a brand-new
// voice session skips construction cost, and restocks a fresh clone after
// every checkout.
type Pool[T any] struct {
	mu      sync.Mutex
	size    int
	free    []T
	factory func() (T, error)
	stats   PoolStats
}

// NewPool returns a pool bounded at size values (minimum 1), filled
// eagerly from factory. A factory error aborts the prewarm and is
// returned; the pool is still usable and will retry lazily on Get.
func NewPool[T any](size int, factory func() (T, error)) (*Pool[T], error) {
	if size < 1 {
		size = 1
	}
	p := &Pool[T]{size: size, factory: factory, free: make([]T, 0, size)}
	for i := 0; i < size; i++ {
		v, err := factory()
		if err != nil {
			return p, err
		}
		p.free = append(p.free, v)
	}
	return p, nil
}

// Get checks a value out: the newest free value when one is ready, a fresh
// factory build otherwise.
func (p *Pool[T]) Get() (T, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		var zero T
		p.free[n-1] = zero
		p.free = p.free[:n-1]
		p.stats.Warm++
		p.mu.Unlock()
		return v, nil
	}
	p.stats.Cold++
	p.mu.Unlock()
	return p.factory()
}

// Put returns a value to the free list, discarding it when full.
func (p *Pool[T]) Put(v T) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) >= p.size {
		p.stats.Discarded++
		return
	}
	p.free = append(p.free, v)
	p.stats.Restocked++
}

// Restock builds one fresh value from the factory and returns it to the
// free list if there is room — called off the request path after a
// checkout so the next Get stays warm. Factory errors are swallowed; the
// next Get simply goes cold.
func (p *Pool[T]) Restock() {
	p.mu.Lock()
	full := len(p.free) >= p.size
	p.mu.Unlock()
	if full {
		return
	}
	v, err := p.factory()
	if err != nil {
		return
	}
	p.Put(v)
}

// Len returns the current free-list length.
func (p *Pool[T]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats snapshots the counters.
func (p *Pool[T]) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	st := p.stats
	st.Free = len(p.free)
	return st
}
