package semcache

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/olap"
)

// TestDoAbortedWaiterCounted is the regression test for the waiter-
// cancellation accounting bug: a waiter whose context expires while
// coalesced onto another caller's flight used to return Outcome Miss with
// no counter bumped, silently skewing hit-rate math. It must now report
// Aborted and increment the Aborted stat.
func TestDoAbortedWaiterCounted(t *testing.T) {
	c := New[int](8)
	leaderIn := make(chan struct{})
	leaderGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, outcome, err := c.Do(context.Background(), "k", func() (int, bool, error) {
			close(leaderIn)
			<-leaderGo
			return 42, true, nil
		})
		if err != nil || outcome != Miss {
			t.Errorf("leader: outcome=%v err=%v", outcome, err)
		}
	}()
	<-leaderIn // the leader's flight is registered and computing

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, outcome, err := c.Do(ctx, "k", func() (int, bool, error) {
		t.Error("aborted waiter ran compute")
		return 0, false, nil
	})
	if outcome != Aborted {
		t.Fatalf("waiter outcome = %v, want Aborted", outcome)
	}
	if err != context.Canceled {
		t.Fatalf("waiter err = %v, want context.Canceled", err)
	}
	if outcome.String() != "aborted" {
		t.Fatalf("Aborted.String() = %q", outcome.String())
	}

	close(leaderGo)
	wg.Wait()
	st := c.Stats()
	if st.Aborted != 1 {
		t.Fatalf("stats.Aborted = %d, want 1", st.Aborted)
	}
	// The abort is not a miss: exactly one miss (the leader's compute).
	if st.Misses != 1 || st.Stores != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 1 store", st)
	}
}

func TestPurgePrefixChunked(t *testing.T) {
	c := New[int](4 * purgeChunk)
	keep := 0
	for i := 0; i < 2*purgeChunk+7; i++ {
		c.Put(fmt.Sprintf("gone\x00%d", i), i)
	}
	for i := 0; i < purgeChunk; i++ {
		c.Put(fmt.Sprintf("kept\x00%d", i), i)
		keep++
	}
	if n := c.PurgePrefix("gone\x00"); n != 2*purgeChunk+7 {
		t.Fatalf("purged %d, want %d", n, 2*purgeChunk+7)
	}
	if c.Len() != keep {
		t.Fatalf("%d entries survive, want %d", c.Len(), keep)
	}
	if got := c.Stats().Purged; got != int64(2*purgeChunk+7) {
		t.Fatalf("stats.Purged = %d", got)
	}
	if _, ok := c.Get("kept\x005"); !ok {
		t.Fatal("unrelated prefix was purged")
	}
}

func TestKeyWindowField(t *testing.T) {
	q := olap.Query{Fct: olap.Avg, Col: "cancelled", ColDescription: "d"}
	plain := Key(q)
	if strings.Contains(plain, "\x1fw=") {
		t.Fatalf("unwindowed key carries a window field: %q", plain)
	}
	q.Window.Last = time.Hour
	hour := Key(q)
	if hour == plain {
		t.Fatal("windowed and unwindowed queries share a key")
	}
	if !strings.Contains(hour, "\x1fw=1h0m0s") {
		t.Fatalf("windowed key = %q", hour)
	}
	q.Window.Last = 30 * time.Minute
	if Key(q) == hour {
		t.Fatal("distinct window widths share a key")
	}
}

// BenchmarkHitUnderPurge guards the hit-latency tail while a large purge
// churns: the purge snapshots keys and deletes in bounded chunks, so a
// concurrent hit must never wait behind a full-map scan.
func BenchmarkHitUnderPurge(b *testing.B) {
	c := New[int](1 << 16)
	c.Put("hot", 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			for j := 0; j < 8*purgeChunk; j++ {
				c.Put(fmt.Sprintf("purge\x00%d\x00%d", i, j), j)
			}
			c.PurgePrefix("purge\x00")
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("hot"); !ok {
			b.Fatal("hot key lost")
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}
