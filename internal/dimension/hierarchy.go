// Package dimension models OLAP dimension hierarchies: trees of members
// organized into named levels, bound to dictionary-encoded table columns for
// O(1) row-to-member classification, and equipped with the speech context
// templates ("flights starting from …") that the vocalization grammar embeds
// member names into.
package dimension

import (
	"fmt"
	"strings"

	"repro/internal/table"
)

// Member is a node in a dimension hierarchy. Level 0 is the root ("any
// airport"); deeper levels are finer granularities. The root member's scope
// is the entire dimension domain.
type Member struct {
	// Name is the display name used in speech output, e.g. "the North East".
	Name string
	// Level is the depth of this member: 0 for the root.
	Level int
	// Parent is nil for the root.
	Parent *Member
	// Children are the members one level below, in insertion order.
	Children []*Member

	hierarchy *Hierarchy
	id        int // index within levels[Level]
}

// Hierarchy returns the hierarchy this member belongs to.
func (m *Member) Hierarchy() *Hierarchy { return m.hierarchy }

// ID returns the member's index within its level.
func (m *Member) ID() int { return m.id }

// IsRoot reports whether m is the hierarchy root.
func (m *Member) IsRoot() bool { return m.Level == 0 }

// AncestorAt returns the ancestor of m at the given level (possibly m
// itself), or nil if level > m.Level.
func (m *Member) AncestorAt(level int) *Member {
	if level > m.Level {
		return nil
	}
	cur := m
	for cur.Level > level {
		cur = cur.Parent
	}
	return cur
}

// IsDescendantOf reports whether m lies in the subtree rooted at a
// (inclusive: a member is a descendant of itself).
func (m *Member) IsDescendantOf(a *Member) bool {
	return m.AncestorAt(a.Level) == a
}

// LeafCount returns the number of leaf members in m's subtree.
func (m *Member) LeafCount() int {
	if len(m.Children) == 0 {
		return 1
	}
	var n int
	for _, c := range m.Children {
		n += c.LeafCount()
	}
	return n
}

// DescendantsAt returns the members of m's subtree at the given level.
// If level <= m.Level, it returns a single-element slice holding the
// ancestor of m at that level.
func (m *Member) DescendantsAt(level int) []*Member {
	if level <= m.Level {
		return []*Member{m.AncestorAt(level)}
	}
	var out []*Member
	var walk func(x *Member)
	walk = func(x *Member) {
		if x.Level == level {
			out = append(out, x)
			return
		}
		for _, c := range x.Children {
			walk(c)
		}
	}
	walk(m)
	return out
}

// String implements fmt.Stringer.
func (m *Member) String() string {
	return fmt.Sprintf("%s[%d]:%s", m.hierarchy.Name, m.Level, m.Name)
}

// Hierarchy is a dimension with named levels and a member tree. The finest
// level corresponds one-to-one with the values of a source column in the
// base table.
type Hierarchy struct {
	// Name identifies the dimension ("start airport", "flight date", …).
	Name string
	// Column is the base-table column holding finest-level member names.
	Column string
	// Context is the phrase template used to embed member names in speech,
	// e.g. "flights starting from". The member name is appended.
	Context string
	// RootName is the display name for the root member, e.g. "any airport".
	RootName string
	// LevelNames names levels 1..Depth, e.g. ["region", "state", "city",
	// "airport"]. Level 0 (the root) is unnamed.
	LevelNames []string

	root        *Member
	levels      [][]*Member
	leafByValue map[string]*Member
}

// NewHierarchy creates an empty hierarchy. levelNames names the non-root
// levels from coarse to fine; there must be at least one.
func NewHierarchy(name, column, context, rootName string, levelNames []string) (*Hierarchy, error) {
	if len(levelNames) == 0 {
		return nil, fmt.Errorf("dimension %q: need at least one level", name)
	}
	h := &Hierarchy{
		Name:        name,
		Column:      column,
		Context:     context,
		RootName:    rootName,
		LevelNames:  levelNames,
		leafByValue: make(map[string]*Member),
	}
	h.root = &Member{Name: rootName, Level: 0, hierarchy: h}
	h.levels = make([][]*Member, len(levelNames)+1)
	h.levels[0] = []*Member{h.root}
	return h, nil
}

// MustNewHierarchy is NewHierarchy but panics on error; for static schemas.
func MustNewHierarchy(name, column, context, rootName string, levelNames []string) *Hierarchy {
	h, err := NewHierarchy(name, column, context, rootName, levelNames)
	if err != nil {
		panic(err)
	}
	return h
}

// Depth returns the number of non-root levels.
func (h *Hierarchy) Depth() int { return len(h.LevelNames) }

// Root returns the root member.
func (h *Hierarchy) Root() *Member { return h.root }

// MembersAt returns the members at the given level (0 = root). The returned
// slice must not be modified.
func (h *Hierarchy) MembersAt(level int) []*Member {
	if level < 0 || level >= len(h.levels) {
		return nil
	}
	return h.levels[level]
}

// LevelName returns the display name of a level; the root level is "all".
func (h *Hierarchy) LevelName(level int) string {
	if level == 0 {
		return "all"
	}
	if level-1 < len(h.LevelNames) {
		return h.LevelNames[level-1]
	}
	return fmt.Sprintf("level %d", level)
}

// LevelByName returns the level index with the given display name, or -1.
func (h *Hierarchy) LevelByName(name string) int {
	for i, n := range h.LevelNames {
		if strings.EqualFold(n, name) {
			return i + 1
		}
	}
	return -1
}

// AddPath inserts (or reuses) the chain of members named by path, one name
// per level from level 1 down to the finest level. The finest name is also
// registered as the source-column value for row classification. It returns
// the leaf member. Paths of the wrong length are an error.
func (h *Hierarchy) AddPath(path ...string) (*Member, error) {
	if len(path) != h.Depth() {
		return nil, fmt.Errorf("dimension %q: path %v has %d segments, want %d",
			h.Name, path, len(path), h.Depth())
	}
	cur := h.root
	for i, name := range path {
		level := i + 1
		var next *Member
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		if next == nil {
			next = &Member{
				Name:      name,
				Level:     level,
				Parent:    cur,
				hierarchy: h,
				id:        len(h.levels[level]),
			}
			cur.Children = append(cur.Children, next)
			h.levels[level] = append(h.levels[level], next)
		}
		cur = next
	}
	if prev, dup := h.leafByValue[cur.Name]; dup && prev != cur {
		return nil, fmt.Errorf("dimension %q: leaf value %q maps to two paths", h.Name, cur.Name)
	}
	h.leafByValue[cur.Name] = cur
	return cur, nil
}

// MustAddPath is AddPath but panics on error.
func (h *Hierarchy) MustAddPath(path ...string) *Member {
	m, err := h.AddPath(path...)
	if err != nil {
		panic(err)
	}
	return m
}

// Leaf returns the finest-level member whose name equals the source-column
// value, or nil if unknown.
func (h *Hierarchy) Leaf(value string) *Member { return h.leafByValue[value] }

// FindMember returns the first member at any level whose name matches
// (case-insensitively), or nil. Useful for keyword query parsing.
func (h *Hierarchy) FindMember(name string) *Member {
	for _, level := range h.levels {
		for _, m := range level {
			if strings.EqualFold(m.Name, name) {
				return m
			}
		}
	}
	return nil
}

// Phrase renders a member for speech output using the dimension context,
// e.g. Phrase(northEast) = "flights starting from the North East".
func (h *Hierarchy) Phrase(m *Member) string {
	if h.Context == "" {
		return m.Name
	}
	return h.Context + " " + m.Name
}

// Binding maps the dictionary codes of a bound string accessor to member
// IDs at every level, enabling O(1) per-row classification during scans.
// The accessor may be a stored column or a star-schema join view.
type Binding struct {
	hierarchy *Hierarchy
	column    table.StringAccessor
	// memberAt[level][code] is the member at that level for rows whose
	// column code is code, or nil for values absent from the hierarchy.
	memberAt [][]*Member
}

// Bind resolves the hierarchy against a table's source column or virtual
// accessor. Every value occurring in the column must be a registered leaf;
// unknown values are reported as an error listing the first offender.
func (h *Hierarchy) Bind(t *table.Table) (*Binding, error) {
	col, err := t.Accessor(h.Column)
	if err != nil {
		return nil, fmt.Errorf("dimension %q: %w", h.Name, err)
	}
	dict := col.Dict()
	b := &Binding{hierarchy: h, column: col, memberAt: make([][]*Member, h.Depth()+1)}
	for level := 0; level <= h.Depth(); level++ {
		b.memberAt[level] = make([]*Member, len(dict))
	}
	for code, value := range dict {
		leaf := h.Leaf(value)
		if leaf == nil {
			return nil, fmt.Errorf("dimension %q: column value %q is not a registered leaf", h.Name, value)
		}
		for level := 0; level <= h.Depth(); level++ {
			b.memberAt[level][code] = leaf.AncestorAt(level)
		}
	}
	return b, nil
}

// Hierarchy returns the bound hierarchy.
func (b *Binding) Hierarchy() *Hierarchy { return b.hierarchy }

// Accessor returns the bound column accessor.
func (b *Binding) Accessor() table.StringAccessor { return b.column }

// DictSize returns the number of distinct codes in the bound column.
func (b *Binding) DictSize() int { return len(b.memberAt[0]) }

// MemberOfCode returns the member at the given level for rows whose column
// holds dictionary code. Scan loops use it once per code at setup time to
// compile per-code lookup tables, then classify rows without touching
// members at all.
func (b *Binding) MemberOfCode(code int32, level int) *Member {
	return b.memberAt[level][code]
}

// MemberOfRow returns the member at the given level for table row i.
func (b *Binding) MemberOfRow(row, level int) *Member {
	return b.memberAt[level][b.column.Code(row)]
}

// RowMatches reports whether table row i falls in the subtree of m.
func (b *Binding) RowMatches(row int, m *Member) bool {
	return b.memberAt[m.Level][b.column.Code(row)] == m
}
