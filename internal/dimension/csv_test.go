package dimension

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const airportDefCSV = `region,state,city
the North East,New York,New York City
the North East,New York,Buffalo
the North East,Massachusetts,Boston
the Midwest,Illinois,Chicago
the West,California,Los Angeles
`

func TestFromCSV(t *testing.T) {
	h, err := FromCSV("start airport", "city", "flights starting from", "any airport",
		strings.NewReader(airportDefCSV))
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	if h.Depth() != 3 {
		t.Errorf("depth = %d, want 3", h.Depth())
	}
	if h.LevelName(1) != "region" || h.LevelName(3) != "city" {
		t.Errorf("level names = %v", h.LevelNames)
	}
	if got := len(h.MembersAt(1)); got != 3 {
		t.Errorf("regions = %d, want 3", got)
	}
	boston := h.Leaf("Boston")
	if boston == nil || boston.AncestorAt(1).Name != "the North East" {
		t.Error("Boston path broken")
	}
}

func TestFromCSVErrors(t *testing.T) {
	// Empty input: no header.
	if _, err := FromCSV("d", "c", "", "any", strings.NewReader("")); err == nil {
		t.Error("empty definition should fail")
	}
	// Header only: no members.
	if _, err := FromCSV("d", "c", "", "any", strings.NewReader("region,city\n")); err == nil {
		t.Error("member-less definition should fail")
	}
	// Ragged row.
	bad := "region,city\nNE\n"
	if _, err := FromCSV("d", "c", "", "any", strings.NewReader(bad)); err == nil {
		t.Error("ragged row should fail")
	}
	// Ambiguous leaf.
	dup := "region,city\nNE,Boston\nMW,Boston\n"
	if _, err := FromCSV("d", "c", "", "any", strings.NewReader(dup)); err == nil {
		t.Error("duplicate leaf under two paths should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	h, err := FromCSV("start airport", "city", "flights starting from", "any airport",
		strings.NewReader(airportDefCSV))
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	var buf bytes.Buffer
	if err := h.ToCSV(&buf); err != nil {
		t.Fatalf("ToCSV: %v", err)
	}
	back, err := FromCSV("start airport", "city", "flights starting from", "any airport", &buf)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.MembersAt(3)) != len(h.MembersAt(3)) {
		t.Errorf("leaves = %d, want %d", len(back.MembersAt(3)), len(h.MembersAt(3)))
	}
	for _, leaf := range h.MembersAt(3) {
		b := back.Leaf(leaf.Name)
		if b == nil {
			t.Errorf("leaf %q lost in round trip", leaf.Name)
			continue
		}
		if b.AncestorAt(1).Name != leaf.AncestorAt(1).Name {
			t.Errorf("leaf %q region changed", leaf.Name)
		}
	}
}

func TestFromCSVFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "airport.csv")
	h, err := FromCSV("start airport", "city", "", "any airport", strings.NewReader(airportDefCSV))
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	f, err := createFile(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if err := h.ToCSV(f); err != nil {
		t.Fatalf("ToCSV: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	back, err := FromCSVFile("start airport", "city", "", "any airport", path)
	if err != nil {
		t.Fatalf("FromCSVFile: %v", err)
	}
	if back.Depth() != 3 {
		t.Error("file round trip broken")
	}
	if _, err := FromCSVFile("x", "c", "", "any", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
}
