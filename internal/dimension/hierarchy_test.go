package dimension

import (
	"testing"

	"repro/internal/table"
)

// buildAirportHierarchy creates a small region > state > city hierarchy.
func buildAirportHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy("start airport", "city", "flights starting from", "any airport",
		[]string{"region", "state", "city"})
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	paths := [][]string{
		{"the North East", "New York", "New York City"},
		{"the North East", "New York", "Buffalo"},
		{"the North East", "Massachusetts", "Boston"},
		{"the Midwest", "Illinois", "Chicago"},
		{"the West", "California", "Los Angeles"},
		{"the West", "California", "San Francisco"},
	}
	for _, p := range paths {
		if _, err := h.AddPath(p...); err != nil {
			t.Fatalf("AddPath(%v): %v", p, err)
		}
	}
	return h
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy("x", "c", "", "any", nil); err == nil {
		t.Fatal("expected error for zero levels")
	}
}

func TestHierarchyStructure(t *testing.T) {
	h := buildAirportHierarchy(t)
	if h.Depth() != 3 {
		t.Errorf("depth = %d, want 3", h.Depth())
	}
	if got := len(h.MembersAt(1)); got != 3 {
		t.Errorf("regions = %d, want 3", got)
	}
	if got := len(h.MembersAt(2)); got != 4 {
		t.Errorf("states = %d, want 4", got)
	}
	if got := len(h.MembersAt(3)); got != 6 {
		t.Errorf("cities = %d, want 6", got)
	}
	if h.MembersAt(0)[0] != h.Root() {
		t.Error("level 0 should hold the root")
	}
	if h.MembersAt(-1) != nil || h.MembersAt(9) != nil {
		t.Error("out-of-range levels should return nil")
	}
}

func TestAddPathReusesPrefixes(t *testing.T) {
	h := buildAirportHierarchy(t)
	ny := h.FindMember("New York")
	if ny == nil {
		t.Fatal("New York not found")
	}
	if len(ny.Children) != 2 {
		t.Errorf("New York should have 2 cities, got %d", len(ny.Children))
	}
	// Re-adding an existing path returns the same leaf.
	leaf1 := h.Leaf("Boston")
	leaf2, err := h.AddPath("the North East", "Massachusetts", "Boston")
	if err != nil {
		t.Fatalf("AddPath: %v", err)
	}
	if leaf1 != leaf2 {
		t.Error("re-adding a path should reuse the leaf")
	}
}

func TestAddPathErrors(t *testing.T) {
	h := buildAirportHierarchy(t)
	if _, err := h.AddPath("too", "short"); err == nil {
		t.Error("expected arity error")
	}
	// Same leaf value under a different path is ambiguous.
	if _, err := h.AddPath("the West", "California", "Boston"); err == nil {
		t.Error("expected ambiguous leaf error")
	}
}

func TestAncestorsAndDescendants(t *testing.T) {
	h := buildAirportHierarchy(t)
	boston := h.Leaf("Boston")
	ne := h.FindMember("the North East")
	if boston.AncestorAt(1) != ne {
		t.Error("Boston's region should be the North East")
	}
	if boston.AncestorAt(3) != boston {
		t.Error("AncestorAt own level should be identity")
	}
	if boston.AncestorAt(4) != nil {
		t.Error("AncestorAt below own level should be nil")
	}
	if !boston.IsDescendantOf(ne) || !boston.IsDescendantOf(h.Root()) {
		t.Error("descendant checks failed")
	}
	mw := h.FindMember("the Midwest")
	if boston.IsDescendantOf(mw) {
		t.Error("Boston is not in the Midwest")
	}
	if got := ne.LeafCount(); got != 3 {
		t.Errorf("NE leaf count = %d, want 3", got)
	}
	if got := len(ne.DescendantsAt(3)); got != 3 {
		t.Errorf("NE cities = %d, want 3", got)
	}
	if got := ne.DescendantsAt(0); len(got) != 1 || got[0] != h.Root() {
		t.Error("DescendantsAt above own level should return the ancestor")
	}
	if got := len(h.Root().DescendantsAt(1)); got != 3 {
		t.Errorf("root regions = %d, want 3", got)
	}
}

func TestLevelNames(t *testing.T) {
	h := buildAirportHierarchy(t)
	if h.LevelName(0) != "all" {
		t.Errorf("level 0 name = %q", h.LevelName(0))
	}
	if h.LevelName(2) != "state" {
		t.Errorf("level 2 name = %q", h.LevelName(2))
	}
	if h.LevelByName("STATE") != 2 {
		t.Error("LevelByName should be case-insensitive")
	}
	if h.LevelByName("nope") != -1 {
		t.Error("unknown level should be -1")
	}
}

func TestFindMember(t *testing.T) {
	h := buildAirportHierarchy(t)
	if h.FindMember("chicago") == nil {
		t.Error("FindMember should be case-insensitive")
	}
	if h.FindMember("any airport") != h.Root() {
		t.Error("root should be findable by name")
	}
	if h.FindMember("Atlantis") != nil {
		t.Error("unknown member should be nil")
	}
}

func TestPhrase(t *testing.T) {
	h := buildAirportHierarchy(t)
	ne := h.FindMember("the North East")
	if got := h.Phrase(ne); got != "flights starting from the North East" {
		t.Errorf("Phrase = %q", got)
	}
	if got := h.Phrase(h.Root()); got != "flights starting from any airport" {
		t.Errorf("root phrase = %q", got)
	}
	bare := MustNewHierarchy("d", "c", "", "any", []string{"l"})
	m := bare.MustAddPath("x")
	if got := bare.Phrase(m); got != "x" {
		t.Errorf("contextless phrase = %q", got)
	}
}

func TestMemberString(t *testing.T) {
	h := buildAirportHierarchy(t)
	s := h.Leaf("Boston").String()
	if s == "" {
		t.Error("String should be non-empty")
	}
}

func buildCityTable(t *testing.T, values []string) *table.Table {
	t.Helper()
	c := table.NewStringColumn("city")
	v := table.NewFloat64Column("cancelled")
	for i, s := range values {
		c.Append(s)
		v.Append(float64(i % 2))
	}
	return table.MustNew("flights", c, v)
}

func TestBinding(t *testing.T) {
	h := buildAirportHierarchy(t)
	tab := buildCityTable(t, []string{"Boston", "Chicago", "Boston", "Los Angeles", "Buffalo"})
	b, err := h.Bind(tab)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	ne := h.FindMember("the North East")
	if got := b.MemberOfRow(0, 1); got != ne {
		t.Errorf("row 0 region = %v, want NE", got)
	}
	if got := b.MemberOfRow(1, 1).Name; got != "the Midwest" {
		t.Errorf("row 1 region = %q", got)
	}
	if !b.RowMatches(0, ne) || b.RowMatches(1, ne) {
		t.Error("RowMatches misbehaves")
	}
	if !b.RowMatches(3, h.Root()) {
		t.Error("every row matches the root")
	}
	if b.Hierarchy() != h {
		t.Error("Binding.Hierarchy mismatch")
	}
	// Leaf-level matching.
	boston := h.Leaf("Boston")
	if !b.RowMatches(2, boston) || b.RowMatches(1, boston) {
		t.Error("leaf-level RowMatches misbehaves")
	}
}

func TestBindingErrors(t *testing.T) {
	h := buildAirportHierarchy(t)
	// Unknown value in column.
	tab := buildCityTable(t, []string{"Boston", "Gotham"})
	if _, err := h.Bind(tab); err == nil {
		t.Error("expected error for unregistered value")
	}
	// Missing column.
	other := table.MustNew("t", table.NewFloat64Column("x"))
	if _, err := h.Bind(other); err == nil {
		t.Error("expected error for missing column")
	}
}
