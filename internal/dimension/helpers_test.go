package dimension

import "os"

// createFile wraps os.Create for test readability.
func createFile(path string) (*os.File, error) { return os.Create(path) }
