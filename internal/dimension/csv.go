package dimension

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
)

// FromCSV builds a hierarchy from a definition file: the header row names
// the levels (coarse to fine), and every data row is one leaf path. The
// finest-level value doubles as the source-column value, exactly as with
// programmatic construction:
//
//	region,state,city
//	the North East,New York,New York City
//	the North East,Massachusetts,Boston
//	...
func FromCSV(name, column, context, rootName string, r io.Reader) (*Hierarchy, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dimension %q: reading definition header: %w", name, err)
	}
	levels := make([]string, len(header))
	copy(levels, header)
	h, err := NewHierarchy(name, column, context, rootName, levels)
	if err != nil {
		return nil, err
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dimension %q: reading definition line %d: %w", name, line+1, err)
		}
		line++
		if _, err := h.AddPath(rec...); err != nil {
			return nil, fmt.Errorf("definition line %d: %w", line, err)
		}
	}
	if len(h.MembersAt(1)) == 0 {
		return nil, fmt.Errorf("dimension %q: definition has no member rows", name)
	}
	return h, nil
}

// FromCSVFile opens path and calls FromCSV.
func FromCSVFile(name, column, context, rootName, path string) (*Hierarchy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dimension %q: %w", name, err)
	}
	defer f.Close()
	return FromCSV(name, column, context, rootName, f)
}

// ToCSV writes the hierarchy's leaf paths as a definition file that
// FromCSV round-trips.
func (h *Hierarchy) ToCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(h.LevelNames); err != nil {
		return fmt.Errorf("dimension %q: writing header: %w", h.Name, err)
	}
	var walk func(m *Member, path []string) error
	walk = func(m *Member, path []string) error {
		if m.Level > 0 {
			path = append(path, m.Name)
		}
		if m.Level == h.Depth() {
			return cw.Write(path)
		}
		for _, c := range m.Children {
			if err := walk(c, path); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(h.root, nil); err != nil {
		return fmt.Errorf("dimension %q: writing paths: %w", h.Name, err)
	}
	cw.Flush()
	return cw.Error()
}
