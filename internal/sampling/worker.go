package sampling

import (
	"fmt"

	"repro/internal/olap"
	"repro/internal/table"
)

// WorkerAccumulator is the epoch-local half of the contention-free sampling
// path: each scan worker owns one and fills it with zero synchronization —
// batch classification and the measure gather run entirely on private
// state, which is where the CPU time of an insert goes. At an epoch
// boundary (a scan batch, or a sentence boundary in the planner) the
// accumulator is replayed into a shared Cache via Cache.MergeWorker and
// recycled with Reset.
//
// The accumulator journals its in-scope (aggregate, value) pairs in row
// order rather than keeping per-aggregate state. Replaying the journal
// performs the identical Cache mutations, in the identical order, that
// Cache.InsertBatch over the same rows would have performed — so the merge
// is bit-identical to the sequential reference, not merely statistically
// equivalent. TestMergeWorkerBitIdentical pins this contract.
type WorkerAccumulator struct {
	space       *olap.Space
	measureVals []float64 // nil for count queries
	// idxs/vals journal the in-scope inserts in row order.
	idxs []int32
	vals []float64
	// nrRead counts every row considered, in or out of scope.
	nrRead int64
	// scratch is the classification buffer reused across InsertBatch calls.
	scratch []int32
}

// NewWorkerAccumulator creates an empty epoch-local accumulator for the
// query of space. It resolves the same measure column a Cache for the same
// space would, so journaled values match Cache.InsertBatch's bit for bit.
func NewWorkerAccumulator(space *olap.Space) (*WorkerAccumulator, error) {
	w := &WorkerAccumulator{space: space}
	q := space.Query()
	if q.Fct != olap.Count {
		m, err := space.Dataset().Measure(q.Col)
		if err != nil {
			return nil, fmt.Errorf("sampling: %w", err)
		}
		w.measureVals = m.Values()
	}
	return w, nil
}

// InsertBatch classifies rows and journals the in-scope ones. No locks, no
// shared state: safe to call from the owning worker only.
func (w *WorkerAccumulator) InsertBatch(rows []int) {
	if len(rows) == 0 {
		return
	}
	if cap(w.scratch) < len(rows) {
		w.scratch = make([]int32, len(rows))
	}
	idxs := w.scratch[:len(rows)]
	w.space.ClassifyRows(rows, idxs)
	w.nrRead += int64(len(rows))
	for i, idx := range idxs {
		if idx < 0 {
			continue
		}
		v := 1.0
		if w.measureVals != nil {
			v = w.measureVals[rows[i]]
		}
		w.idxs = append(w.idxs, idx)
		w.vals = append(w.vals, v)
	}
}

// NrRead returns the rows considered since the last Reset.
func (w *WorkerAccumulator) NrRead() int64 { return w.nrRead }

// NrInScope returns the journaled in-scope rows since the last Reset.
func (w *WorkerAccumulator) NrInScope() int { return len(w.idxs) }

// Reset empties the journal, keeping the backing arrays for reuse so a
// steady-state scan worker allocates nothing per epoch.
func (w *WorkerAccumulator) Reset() {
	w.idxs = w.idxs[:0]
	w.vals = w.vals[:0]
	w.nrRead = 0
}

// Rebind points the accumulator at a newer snapshot of the same streaming
// table (the AbsorbAppend counterpart for epoch-local state). The journal
// must be empty: epochs straddling a snapshot switch would mix row spaces.
func (w *WorkerAccumulator) Rebind(next *olap.Space) error {
	if len(w.idxs) != 0 || w.nrRead != 0 {
		return fmt.Errorf("sampling: rebind of a non-empty worker accumulator")
	}
	q := next.Query()
	w.space = next
	w.measureVals = nil
	if q.Fct != olap.Count {
		m, err := next.Dataset().Measure(q.Col)
		if err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		w.measureVals = m.Values()
	}
	return nil
}

// MergeWorker replays a worker accumulator's journal into the cache. The
// replay performs the same per-row mutations as InsertBatch over the same
// rows in the same order, so a cache assembled from worker epochs is
// bit-identical to one that ran the sequential insert path on the epochs'
// rows in merge order — for any worker count and any merge order. The
// worker's journal is not consumed; callers Reset it for reuse.
//
// The accumulator must be classified against a space of the same size as
// the cache's (in the streaming case: any snapshot of the same table, since
// appends never re-classify existing rows).
func (c *Cache) MergeWorker(w *WorkerAccumulator) {
	if len(c.values) != w.space.Size() {
		panic(fmt.Sprintf("sampling: merge of a worker over %d aggregates into a cache over %d",
			w.space.Size(), len(c.values)))
	}
	c.nrRead += w.nrRead
	for i, idx := range w.idxs {
		v := w.vals[i]
		c.inScope++
		if len(c.values[idx]) == 0 {
			c.nonEmpty = append(c.nonEmpty, int(idx))
		}
		c.values[idx] = append(c.values[idx], v)
		c.accs[idx].Add(v)
		c.grand.Add(v)
	}
}

// fillFromScanner pulls up to batch rows from a scanner into rows and
// journals them; shared by the epoch sampler's workers and tests.
func (w *WorkerAccumulator) fillFromScanner(s table.Scanner, rows []int) int {
	n := table.FillBatch(s, rows)
	if n > 0 {
		w.InsertBatch(rows[:n])
	}
	return n
}
