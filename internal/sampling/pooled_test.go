package sampling

import (
	"math"
	"testing"

	"repro/internal/olap"
)

func TestPooledConfidenceIntervalAvg(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	if _, ok := c.PooledConfidenceInterval(all, 0.95); ok {
		t.Error("empty cache should have no pooled interval")
	}
	n := s.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		c.Insert(row)
	}
	iv, ok := c.PooledConfidenceInterval(all, 0.95)
	if !ok {
		t.Fatal("pooled interval unavailable with full cache")
	}
	exact, _ := olap.EvaluateSpace(s)
	if !iv.Contains(exact.GrandValue()) {
		t.Errorf("pooled interval %+v should contain grand value %v", iv, exact.GrandValue())
	}
	// Pooling a subset gives an interval around that subset's mean.
	subset := all[:3]
	sub, ok := c.PooledConfidenceInterval(subset, 0.95)
	if !ok {
		t.Fatal("subset interval unavailable")
	}
	if sub.Width() <= 0 {
		t.Error("subset interval should have positive width")
	}
	// A narrower scope has fewer samples, so its interval is wider.
	if sub.Width() < iv.Width() {
		t.Errorf("subset interval width %v should be at least the grand width %v",
			sub.Width(), iv.Width())
	}
}

func TestPooledConfidenceIntervalCountAndSum(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum} {
		s := flightsSpace(t, fct)
		c, _ := NewCache(s)
		all := make([]int, s.Size())
		for i := range all {
			all[i] = i
		}
		if _, ok := c.PooledConfidenceInterval(all, 0.95); ok {
			t.Errorf("%v: empty cache should have no interval", fct)
		}
		for row := 0; row < 10000; row++ {
			c.Insert(row)
		}
		iv, ok := c.PooledConfidenceInterval(all, 0.99)
		if !ok {
			t.Fatalf("%v: interval unavailable", fct)
		}
		exact, _ := olap.EvaluateSpace(s)
		if !iv.Contains(exact.GrandValue()) {
			t.Errorf("%v: interval %+v misses grand value %v", fct, iv, exact.GrandValue())
		}
	}
}

func TestPooledIntervalDegenerateZeroVariance(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	// Find rows with cancelled == 0 only, to build a zero-variance pool.
	measure, err := s.Dataset().Measure("cancelled")
	if err != nil {
		t.Fatal(err)
	}
	inserted := 0
	for row := 0; row < s.Dataset().Table().NumRows() && inserted < 5; row++ {
		if measure.Float(row) == 0 {
			c.Insert(row)
			inserted++
		}
	}
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	iv, ok := c.PooledConfidenceInterval(all, 0.95)
	if !ok {
		t.Fatal("interval unavailable")
	}
	if iv.Width() != 0 || iv.Center() != 0 {
		t.Errorf("zero-variance pool should give degenerate interval, got %+v", iv)
	}
	if math.IsNaN(iv.Lo) {
		t.Error("interval should not be NaN")
	}
}
