package sampling

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/olap"
	"repro/internal/table"
)

func newEpochSampler(t *testing.T, s *olap.Space, seed int64, workers, batch int) *EpochSampler {
	t.Helper()
	es, err := NewEpochSampler(s, rand.New(rand.NewSource(seed)), workers, batch)
	if err != nil {
		t.Fatalf("NewEpochSampler: %v", err)
	}
	return es
}

// TestEpochSamplerDrainsTable proves the partitions are disjoint and
// exhaustive: the workers together read every row exactly once, after
// which the merged estimates reproduce the exact result.
func TestEpochSamplerDrainsTable(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		s := flightsSpace(t, fct)
		n := int64(s.Dataset().Table().NumRows())
		es := newEpochSampler(t, s, 21, 4, 512)
		es.Start()
		waitForRows(t, es, n)
		es.Stop()
		if es.NrRead() != n {
			t.Fatalf("fct %v: read %d of %d rows", fct, es.NrRead(), n)
		}
		exact, err := olap.EvaluateSpace(s)
		if err != nil {
			t.Fatalf("EvaluateSpace: %v", err)
		}
		rng := rand.New(rand.NewSource(22))
		for a := 0; a < s.Size(); a++ {
			want := exact.Value(a)
			got, ok := es.Estimate(a, rng)
			if math.IsNaN(want) {
				if ok {
					t.Errorf("fct %v agg %d: estimate %v for empty average", fct, a, got)
				}
				continue
			}
			if !ok {
				t.Errorf("fct %v agg %d: estimate unavailable after full drain", fct, a)
				continue
			}
			if math.Abs(got-want) > math.Abs(want)*1e-9+1e-9 {
				t.Errorf("fct %v agg %d: estimate %v, exact %v", fct, a, got, want)
			}
		}
		grand, ok := es.GrandEstimate()
		if !ok {
			t.Fatalf("fct %v: grand estimate unavailable", fct)
		}
		want := exact.GrandValue()
		if math.Abs(grand-want) > math.Abs(want)*1e-9+1e-9 {
			t.Errorf("fct %v: grand %v, exact %v", fct, grand, want)
		}
	}
}

// TestEpochSamplerSingleWorkerBitIdentical pins the sequential-reference
// contract end to end: a one-worker epoch sampler drained to exhaustion
// leaves a master cache bit-identical to a plain Cache fed the identical
// scan walk through InsertBatch — the epoch machinery (journal, replay,
// snapshot publishing) adds zero numeric deviation.
func TestEpochSamplerSingleWorkerBitIdentical(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		s := flightsSpace(t, fct)
		n := s.Dataset().Table().NumRows()
		const seed, batch = 31, 512

		es := newEpochSampler(t, s, seed, 1, batch)
		es.Start()
		waitForRows(t, es, int64(n))
		es.Stop()

		// Replicate the worker's deterministic scan: construction draws one
		// Int63 per worker from the constructor rng.
		workerSeed := rand.New(rand.NewSource(seed)).Int63()
		sc := table.NewRandomRangeScanner(0, n, rand.New(rand.NewSource(workerSeed)))
		sequential, err := NewCache(s)
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]int, batch)
		for {
			k := table.FillBatch(sc, rows)
			if k == 0 {
				break
			}
			sequential.InsertBatch(rows[:k])
		}
		requireCachesBitIdentical(t, es.master, sequential, fct.String()+" single worker")
	}
}

// TestEpochSamplerConverges checks the merged estimator on a partial scan.
func TestEpochSamplerConverges(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	es := newEpochSampler(t, s, 23, 4, 128)
	es.Start()
	waitForRows(t, es, 5000)
	es.Stop()
	exact, err := olap.EvaluateSpace(s)
	if err != nil {
		t.Fatalf("EvaluateSpace: %v", err)
	}
	got, ok := es.GrandEstimate()
	if !ok {
		t.Fatal("grand estimate unavailable")
	}
	want := exact.GrandValue()
	if math.Abs(got-want) > 0.1*math.Abs(want)+0.01 {
		t.Errorf("grand estimate %v too far from exact %v after %d rows", got, want, es.NrRead())
	}
}

func TestEpochSamplerStopIsIdempotent(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	es := newEpochSampler(t, s, 24, 3, 64)
	es.Stop()
	es.Stop()
	es.Start()
	es.Stop()
	if !es.StopWithin(time.Second) {
		t.Error("StopWithin timed out after Stop")
	}
}

func TestEpochSamplerContextCancel(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	es := newEpochSampler(t, s, 25, 4, 64)
	ctx, cancel := context.WithCancel(context.Background())
	es.StartContext(ctx)
	waitForRows(t, es, 256)
	cancel()
	if !es.StopWithin(5 * time.Second) {
		t.Fatal("workers did not exit after context cancellation")
	}
}

// TestEpochSamplerHammer drives wait-free estimator reads from several
// goroutines while the scans run and other goroutines call Stop
// concurrently. Under -race it proves the publish discipline: workers
// mutate the master only under mergeMu and readers only ever touch
// immutable snapshots.
func TestEpochSamplerHammer(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	es := newEpochSampler(t, s, 26, 4, 64)
	es.Start()
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if agg, ok := es.PickAggregate(rng); ok {
					es.Estimate(agg, rng)
				}
				es.GrandEstimate()
				es.NrRead()
				es.NrInScope()
				es.PooledConfidenceInterval(all, 0.95)
			}
		}(int64(100 + g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			es.Stop()
			es.StopWithin(time.Second)
		}()
	}
	wg.Wait()
	es.Stop()
}

func TestEpochSamplerPooledInterval(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	es := newEpochSampler(t, s, 27, 4, 256)
	es.Start()
	waitForRows(t, es, 2000)
	es.Stop()
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	iv, ok := es.PooledConfidenceInterval(all, 0.95)
	if !ok {
		t.Fatal("pooled interval unavailable after 2000 rows")
	}
	if !(iv.Lo <= iv.Hi) {
		t.Errorf("malformed interval [%v, %v]", iv.Lo, iv.Hi)
	}
}

// TestEpochSamplerDoneSignalsDrain: Done closes once the table is
// exhausted, without any Stop call.
func TestEpochSamplerDoneSignalsDrain(t *testing.T) {
	s := flightsSpace(t, olap.Count)
	es := newEpochSampler(t, s, 28, 4, 1024)
	es.Start()
	select {
	case <-es.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("Done did not close after table exhaustion")
	}
	if es.NrRead() != int64(s.Dataset().Table().NumRows()) {
		t.Fatalf("drained %d of %d rows", es.NrRead(), s.Dataset().Table().NumRows())
	}
}
