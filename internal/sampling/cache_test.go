package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/olap"
)

func flightsSpace(t *testing.T, fct olap.AggFunc) *olap.Space {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 20000, Seed: 11})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: fct, Col: "cancelled",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	if fct == olap.Count {
		q.Col = ""
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestCacheInsertAndSize(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, err := NewCache(s)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	for row := 0; row < 100; row++ {
		c.Insert(row)
	}
	if c.NrRead() != 100 {
		t.Errorf("NrRead = %d, want 100", c.NrRead())
	}
	// Every flight row is in scope for an unfiltered query.
	if c.NrInScope() != 100 {
		t.Errorf("NrInScope = %d, want 100", c.NrInScope())
	}
	var total int
	for a := 0; a < s.Size(); a++ {
		total += c.Size(a)
	}
	if total != 100 {
		t.Errorf("sum of sizes = %d, want 100", total)
	}
	if c.NonEmpty() == 0 {
		t.Error("some aggregates should be non-empty")
	}
}

func TestCacheScopeFilter(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 2})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	airport := d.HierarchyByName("start airport")
	ne := airport.FindMember("the North East")
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: d.HierarchyByName("flight date"), Level: 1}},
	}
	q.Filters = append(q.Filters, ne)
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	c, err := NewCache(s)
	if err != nil {
		t.Fatalf("NewCache: %v", err)
	}
	for row := 0; row < 5000; row++ {
		c.Insert(row)
	}
	if c.NrRead() != 5000 {
		t.Errorf("NrRead = %d", c.NrRead())
	}
	if c.NrInScope() >= 5000 || c.NrInScope() == 0 {
		t.Errorf("in-scope = %d, expected strictly between 0 and 5000", c.NrInScope())
	}
}

func TestResampleFixedSize(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(1))
	for row := 0; row < 10000; row++ {
		c.Insert(row)
	}
	// Find an aggregate with plenty of entries.
	big := -1
	for a := 0; a < s.Size(); a++ {
		if c.Size(a) > DefaultResampleSize {
			big = a
			break
		}
	}
	if big < 0 {
		t.Fatal("expected a well-populated aggregate")
	}
	v := c.Resample(big, rng)
	if len(v) != DefaultResampleSize {
		t.Errorf("resample size = %d, want %d", len(v), DefaultResampleSize)
	}
	// Sparse aggregate: returns everything it has.
	c2, _ := NewCache(s)
	c2.Insert(0)
	idx, ok := c2.PickAggregate(rng)
	if !ok {
		t.Fatal("one cached row should make one aggregate eligible")
	}
	if got := c2.Resample(idx, rng); len(got) != 1 {
		t.Errorf("sparse resample size = %d, want 1", len(got))
	}
}

func TestPickAggregateAvgRequiresData(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(3))
	if _, ok := c.PickAggregate(rng); ok {
		t.Error("empty cache should have no eligible aggregate for avg")
	}
	c.Insert(0)
	a, ok := c.PickAggregate(rng)
	if !ok {
		t.Fatal("expected eligible aggregate")
	}
	if c.Size(a) == 0 {
		t.Error("picked aggregate should have cached rows")
	}
}

func TestPickAggregateCountAllEligible(t *testing.T) {
	s := flightsSpace(t, olap.Count)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(3))
	if _, ok := c.PickAggregate(rng); ok {
		t.Error("count query should need at least one read")
	}
	c.Insert(0)
	// With one row read, any aggregate (even empty ones) is eligible.
	sawEmpty := false
	for i := 0; i < 200; i++ {
		a, ok := c.PickAggregate(rng)
		if !ok {
			t.Fatal("expected eligibility after a read")
		}
		if c.Size(a) == 0 {
			sawEmpty = true
		}
	}
	if !sawEmpty {
		t.Error("count queries should sample empty aggregates too")
	}
}

func TestEstimateUnbiasedness(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	exact, err := olap.EvaluateSpace(s)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(9))
	// Insert every row: estimates should be close to exact values.
	n := s.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		c.Insert(row)
	}
	c.ResampleSize = 1 << 20 // use the full cache for this accuracy check
	for a := 0; a < s.Size(); a++ {
		want := exact.Value(a)
		if math.IsNaN(want) {
			continue
		}
		got, ok := c.Estimate(a, rng)
		if !ok {
			t.Fatalf("estimate unavailable for populated aggregate %d", a)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("aggregate %s: estimate %v, exact %v", s.AggregateName(a), got, want)
		}
	}
}

func TestEstimateCountScaling(t *testing.T) {
	s := flightsSpace(t, olap.Count)
	exact, _ := olap.EvaluateSpace(s)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(4))
	n := s.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		c.Insert(row)
	}
	for a := 0; a < s.Size(); a++ {
		got, ok := c.Estimate(a, rng)
		if !ok {
			t.Fatal("count estimate should always be available after reads")
		}
		if math.Abs(got-exact.Value(a)) > 1e-9 {
			t.Errorf("aggregate %d: count estimate %v, exact %v", a, got, exact.Value(a))
		}
	}
}

func TestEstimateSum(t *testing.T) {
	s := flightsSpace(t, olap.Sum)
	exact, _ := olap.EvaluateSpace(s)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(4))
	n := s.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		c.Insert(row)
	}
	c.ResampleSize = 1 << 20
	for a := 0; a < s.Size(); a++ {
		got, ok := c.Estimate(a, rng)
		if !ok {
			t.Fatal("sum estimate should be available")
		}
		if math.Abs(got-exact.Value(a)) > math.Abs(exact.Value(a))*1e-9+1e-9 {
			t.Errorf("aggregate %d: sum estimate %v, exact %v", a, got, exact.Value(a))
		}
	}
}

func TestEstimateUnavailableCases(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	rng := rand.New(rand.NewSource(5))
	if _, ok := c.Estimate(0, rng); ok {
		t.Error("no reads: estimate should be unavailable")
	}
	if _, ok := c.GrandEstimate(); ok {
		t.Error("no reads: grand estimate should be unavailable")
	}
}

func TestGrandEstimateMatchesExact(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Avg, olap.Count, olap.Sum} {
		s := flightsSpace(t, fct)
		exact, _ := olap.EvaluateSpace(s)
		c, _ := NewCache(s)
		n := s.Dataset().Table().NumRows()
		for row := 0; row < n; row++ {
			c.Insert(row)
		}
		got, ok := c.GrandEstimate()
		if !ok {
			t.Fatalf("%v: grand estimate unavailable", fct)
		}
		want := exact.GrandValue()
		if math.Abs(got-want) > math.Abs(want)*1e-9 {
			t.Errorf("%v: grand estimate %v, exact %v", fct, got, want)
		}
	}
}

func TestGrandEstimateConvergesFromSample(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	exact, _ := olap.EvaluateSpace(s)
	c, _ := NewCache(s)
	for row := 0; row < 4000; row++ {
		c.Insert(row)
	}
	got, ok := c.GrandEstimate()
	if !ok {
		t.Fatal("grand estimate unavailable")
	}
	want := exact.GrandValue()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("grand estimate %v too far from exact %v", got, want)
	}
}

func TestConfidenceIntervalAvg(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	c, _ := NewCache(s)
	if _, ok := c.ConfidenceInterval(0, 0.95); ok {
		t.Error("empty aggregate should have no interval")
	}
	n := s.Dataset().Table().NumRows()
	for row := 0; row < n; row++ {
		c.Insert(row)
	}
	exact, _ := olap.EvaluateSpace(s)
	covered := 0
	defined := 0
	for a := 0; a < s.Size(); a++ {
		want := exact.Value(a)
		if math.IsNaN(want) {
			continue
		}
		iv, ok := c.ConfidenceInterval(a, 0.95)
		if !ok {
			continue
		}
		defined++
		if iv.Contains(want) {
			covered++
		}
	}
	if defined == 0 {
		t.Fatal("no intervals computed")
	}
	// With full data the interval is centered on the exact mean.
	if covered != defined {
		t.Errorf("full-data intervals should cover exact values: %d/%d", covered, defined)
	}
}

func TestConfidenceIntervalCountAndSum(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum} {
		s := flightsSpace(t, fct)
		c, _ := NewCache(s)
		if _, ok := c.ConfidenceInterval(0, 0.95); ok {
			t.Errorf("%v: empty cache should have no interval", fct)
		}
		for row := 0; row < 8000; row++ {
			c.Insert(row)
		}
		exact, _ := olap.EvaluateSpace(s)
		hits, total := 0, 0
		for a := 0; a < s.Size(); a++ {
			iv, ok := c.ConfidenceInterval(a, 0.99)
			if !ok {
				continue
			}
			total++
			if iv.Contains(exact.Value(a)) {
				hits++
			}
		}
		if total == 0 {
			t.Fatalf("%v: no intervals", fct)
		}
		if float64(hits)/float64(total) < 0.7 {
			t.Errorf("%v: only %d/%d intervals cover the exact value", fct, hits, total)
		}
	}
}
