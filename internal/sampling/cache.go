// Package sampling implements the database-sampling side of the holistic
// algorithm: a cache of sampled rows indexed by query aggregate (Algorithm 3
// of the paper), unbiased count/sum/average estimators derived from the
// cache, the PickAggregate selection rule, and confidence bounds for the
// uncertainty extensions. The cache is filled from a pseudo-random row
// stream and is deliberately single-goroutine: the holistic planner
// interleaves cache fills, tree sampling, and voice output in one loop.
package sampling

import (
	"fmt"
	"math/rand"

	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/table"
)

// DefaultResampleSize is the fixed subsample size used to derive estimates
// from the cache. The paper uses 10: estimates stay cheap no matter how
// full the cache becomes.
const DefaultResampleSize = 10

// Cache stores sampled rows classified by aggregate for one query.
type Cache struct {
	space   *olap.Space
	measure *table.Float64Column // nil for count queries
	// measureVals is the measure's backing slice, letting batch inserts
	// gather values with direct array loads.
	measureVals []float64
	// values[a] holds the measure values of cached rows for aggregate a
	// (for count queries a placeholder 1 per row, kept for uniformity).
	values [][]float64
	// accs[a] maintains running moments of values[a], giving O(1)
	// full-cache estimates.
	accs []stats.Accumulator
	// grand maintains running moments over all in-scope rows, giving O(1)
	// grand estimates regardless of cache size.
	grand stats.Accumulator
	// scratch is the classification buffer reused across InsertBatch calls.
	scratch []int32
	// totalRows is the table row count the cache's estimates scale
	// against, captured when the cache is created (and advanced by
	// AbsorbAppend). Reading it live from the dataset would silently
	// rescale every estimate when the underlying table grows mid-plan —
	// the stale-scale bug the streaming path flushed out.
	totalRows int64
	// nonEmpty lists aggregates with at least one cached row, supporting
	// O(1) uniform random picks.
	nonEmpty []int
	nrRead   int64
	inScope  int64
	// ResampleSize is the fixed subsample size used when UseResample is
	// set.
	ResampleSize int
	// UseResample derives estimates from a fixed-size cache subsample as
	// in the paper's Algorithm 3. The default (false) uses the running
	// full-cache mean instead: it has the same O(1) per-estimate cost
	// (via the accumulators) but far lower variance, which matters for
	// 0/1 measures like cancellation flags where a 10-value subsample
	// quantizes estimates to multiples of 0.1. The resample mode remains
	// available for the ablation benchmarks.
	UseResample bool
}

// NewCache creates an empty cache for the query of space.
func NewCache(space *olap.Space) (*Cache, error) {
	c := &Cache{
		space:        space,
		values:       make([][]float64, space.Size()),
		accs:         make([]stats.Accumulator, space.Size()),
		totalRows:    int64(space.Dataset().Table().NumRows()),
		ResampleSize: DefaultResampleSize,
	}
	q := space.Query()
	if q.Fct != olap.Count {
		m, err := space.Dataset().Measure(q.Col)
		if err != nil {
			return nil, fmt.Errorf("sampling: %w", err)
		}
		c.measure = m
		c.measureVals = m.Values()
	}
	return c, nil
}

// Space returns the aggregate space the cache is classified against.
func (c *Cache) Space() *olap.Space { return c.space }

// TotalRows returns the table row count the cache's estimates scale
// against.
func (c *Cache) TotalRows() int64 { return c.totalRows }

// AbsorbAppend incrementally extends the cache to a newer snapshot of the
// same streaming table: next must be the same query's space over a
// snapshot that appended rows past the cache's current row bound. Only the
// delta rows [TotalRows, next.NumRows) are classified and accumulated —
// a new batch is a delta, not a rebuild — and they are read exhaustively,
// so when the base cache also read every row (background sample views,
// sequential full scans) the absorbed cache is bit-identical to one
// rebuilt from scratch over the new snapshot. When the base cache only
// sampled, absorbing introduces a disclosed bias toward the delta (every
// delta row is read, sampled base rows are not re-weighted); callers who
// need unbiased estimates under partial reads should rebuild instead.
func (c *Cache) AbsorbAppend(next *olap.Space) error {
	oldQ, newQ := c.space.Query(), next.Query()
	if oldQ.Fct != newQ.Fct || oldQ.Col != newQ.Col {
		return fmt.Errorf("sampling: absorb of a different query (%v %q vs %v %q)",
			newQ.Fct, newQ.Col, oldQ.Fct, oldQ.Col)
	}
	if next.Size() != c.space.Size() {
		return fmt.Errorf("sampling: absorb space has %d aggregates, cache has %d", next.Size(), c.space.Size())
	}
	if lo, _ := c.space.RowBounds(); lo != 0 {
		return fmt.Errorf("sampling: cannot absorb into a time-windowed cache")
	}
	if lo, _ := next.RowBounds(); lo != 0 {
		return fmt.Errorf("sampling: cannot absorb a time-windowed space")
	}
	newTotal := int64(next.Dataset().Table().NumRows())
	if newTotal < c.totalRows {
		return fmt.Errorf("sampling: absorb target has %d rows, cache was built over %d", newTotal, c.totalRows)
	}
	var measure *table.Float64Column
	var measureVals []float64
	if newQ.Fct != olap.Count {
		m, err := next.Dataset().Measure(newQ.Col)
		if err != nil {
			return fmt.Errorf("sampling: %w", err)
		}
		measure, measureVals = m, m.Values()
	}
	lo, hi := int(c.totalRows), int(newTotal)
	if n := hi - lo; n > 0 {
		if cap(c.scratch) < n {
			c.scratch = make([]int32, n)
		}
		idxs := c.scratch[:n]
		next.ClassifyRange(lo, hi, idxs)
		c.nrRead += int64(n)
		for i, idx := range idxs {
			if idx < 0 {
				continue
			}
			c.inScope++
			v := 1.0
			if measureVals != nil {
				v = measureVals[lo+i]
			}
			if len(c.values[idx]) == 0 {
				c.nonEmpty = append(c.nonEmpty, int(idx))
			}
			c.values[idx] = append(c.values[idx], v)
			c.accs[idx].Add(v)
			c.grand.Add(v)
		}
	}
	c.space = next
	c.measure = measure
	c.measureVals = measureVals
	c.totalRows = newTotal
	return nil
}

// Insert considers table row for caching. Rows outside the query scope are
// counted in NrRead but not stored; in-scope rows are appended to their
// aggregate's entry list.
func (c *Cache) Insert(row int) {
	c.nrRead++
	idx, ok := c.space.ClassifyRow(row)
	if !ok {
		return
	}
	c.inScope++
	if len(c.values[idx]) == 0 {
		c.nonEmpty = append(c.nonEmpty, idx)
	}
	v := 1.0
	if c.measure != nil {
		v = c.measure.Float(row)
	}
	c.values[idx] = append(c.values[idx], v)
	c.accs[idx].Add(v)
	c.grand.Add(v)
}

// InsertBatch considers a batch of rows for caching: one dense batch
// classification followed by a tight accumulate loop, amortizing the
// per-row call overhead of Insert. Semantically identical to calling
// Insert for each row in order.
func (c *Cache) InsertBatch(rows []int) {
	if len(rows) == 0 {
		return
	}
	if cap(c.scratch) < len(rows) {
		c.scratch = make([]int32, len(rows))
	}
	idxs := c.scratch[:len(rows)]
	c.space.ClassifyRows(rows, idxs)
	c.nrRead += int64(len(rows))
	for i, idx := range idxs {
		if idx < 0 {
			continue
		}
		c.inScope++
		v := 1.0
		if c.measureVals != nil {
			v = c.measureVals[rows[i]]
		}
		if len(c.values[idx]) == 0 {
			c.nonEmpty = append(c.nonEmpty, int(idx))
		}
		c.values[idx] = append(c.values[idx], v)
		c.accs[idx].Add(v)
		c.grand.Add(v)
	}
}

// Size returns the number of cached rows for aggregate a (CA.SIZE).
func (c *Cache) Size(a int) int { return len(c.values[a]) }

// NrRead returns the total number of rows considered (CA.NRREAD).
func (c *Cache) NrRead() int64 { return c.nrRead }

// NrInScope returns the number of cached (in-scope) rows.
func (c *Cache) NrInScope() int64 { return c.inScope }

// NonEmpty returns the number of aggregates with at least one cached row.
func (c *Cache) NonEmpty() int { return len(c.nonEmpty) }

// Resample returns a fixed-size subsample of the cached values for
// aggregate a (CA.RESAMPLE). If at most ResampleSize values are cached they
// are all returned; otherwise ResampleSize values are drawn uniformly with
// replacement, keeping per-estimate cost constant as the cache grows.
func (c *Cache) Resample(a int, rng *rand.Rand) []float64 {
	vs := c.values[a]
	k := c.ResampleSize
	if k <= 0 {
		k = DefaultResampleSize
	}
	if len(vs) <= k {
		out := make([]float64, len(vs))
		copy(out, vs)
		return out
	}
	out := make([]float64, k)
	for i := range out {
		out[i] = vs[rng.Intn(len(vs))]
	}
	return out
}

// PickAggregate selects a random aggregate for speech evaluation, following
// Algorithm 3: for count and sum queries every aggregate is eligible (an
// empty cache entry is itself information); for averages only aggregates
// with cached rows are eligible. It returns ok=false when no aggregate is
// eligible yet.
func (c *Cache) PickAggregate(rng *rand.Rand) (int, bool) {
	if c.space.Query().Fct == olap.Avg {
		if len(c.nonEmpty) == 0 {
			return 0, false
		}
		return c.nonEmpty[rng.Intn(len(c.nonEmpty))], true
	}
	if c.space.Size() == 0 || c.nrRead == 0 {
		return 0, false
	}
	return rng.Intn(c.space.Size()), true
}

// Estimate derives an unbiased estimate for aggregate a (CACHEESTIMATE):
// count is scaled up from the cache hit rate, sum multiplies the count
// estimate by the mean cached value, and average is the mean cached value.
// The mean comes from the O(1) running accumulator by default, or from a
// fixed-size subsample in UseResample mode (the paper's literal Algorithm
// 3). It returns ok=false when no estimate can be derived (average with an
// empty entry, or nothing read yet).
func (c *Cache) Estimate(a int, rng *rand.Rand) (float64, bool) {
	if c.nrRead == 0 {
		return 0, false
	}
	mean := func() float64 {
		if c.UseResample {
			return stats.Mean(c.Resample(a, rng))
		}
		return c.accs[a].Mean()
	}
	nrRows := float64(c.totalRows)
	countEst := nrRows * float64(len(c.values[a])) / float64(c.nrRead)
	switch c.space.Query().Fct {
	case olap.Count:
		return countEst, true
	case olap.Sum:
		if len(c.values[a]) == 0 {
			return 0, true
		}
		return countEst * mean(), true
	case olap.Avg:
		if len(c.values[a]) == 0 {
			return 0, false
		}
		return mean(), true
	default:
		panic(fmt.Sprintf("sampling: unknown aggregation function %v", c.space.Query().Fct))
	}
}

// GrandEstimate estimates the aggregate value over the whole query scope
// from all cached rows: the baseline statement is derived from it. It
// returns ok=false until at least one in-scope row is cached (for count
// and sum, until at least one row was read). The running grand accumulator
// makes this O(1) per call no matter how full the cache is.
func (c *Cache) GrandEstimate() (float64, bool) {
	if c.nrRead == 0 {
		return 0, false
	}
	nrRows := float64(c.totalRows)
	countEst := nrRows * float64(c.inScope) / float64(c.nrRead)
	switch c.space.Query().Fct {
	case olap.Count:
		return countEst, true
	case olap.Sum, olap.Avg:
		if c.inScope == 0 {
			return 0, false
		}
		if c.space.Query().Fct == olap.Sum {
			return countEst * c.grand.Mean(), true
		}
		return c.grand.Mean(), true
	default:
		panic(fmt.Sprintf("sampling: unknown aggregation function %v", c.space.Query().Fct))
	}
}

// GrandMoments returns the running moments over all cached in-scope rows.
// Sharded samplers merge these across shards without touching the raw
// value lists.
func (c *Cache) GrandMoments() stats.Accumulator { return c.grand }

// PooledConfidenceInterval returns a CLT confidence interval for the
// aggregate value over the union of the given aggregates, pooling their
// cached rows. It powers the Section 4.4 uncertainty extensions, which
// speak bounds for the scope of a sentence (all aggregates for the
// baseline, the refinement's scope otherwise). ok is false when no
// interval can be derived yet.
func (c *Cache) PooledConfidenceInterval(aggs []int, confidence float64) (stats.Interval, bool) {
	var acc stats.Accumulator
	for _, a := range aggs {
		for _, v := range c.values[a] {
			acc.Add(v)
		}
	}
	switch c.space.Query().Fct {
	case olap.Avg:
		if acc.Count() == 0 {
			return stats.Interval{}, false
		}
		return stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence), true
	case olap.Count:
		if c.nrRead == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(c.totalRows)
		p := stats.ProportionConfidenceInterval(acc.Count(), c.nrRead, confidence)
		return stats.Interval{Lo: p.Lo * nrRows, Hi: p.Hi * nrRows}, true
	case olap.Sum:
		if c.nrRead == 0 || acc.Count() == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(c.totalRows)
		mean := stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence)
		scale := nrRows * float64(acc.Count()) / float64(c.nrRead)
		return stats.Interval{Lo: mean.Lo * scale, Hi: mean.Hi * scale}, true
	default:
		panic(fmt.Sprintf("sampling: unknown aggregation function %v", c.space.Query().Fct))
	}
}

// ConfidenceInterval returns a CLT confidence interval for the value of
// aggregate a using all cached rows (not the fixed-size subsample: bounds
// are reported to users, so precision matters more than constant cost).
// The moments come straight from the per-aggregate running accumulator —
// no pass over the cached values. ok is false when no interval can be
// derived.
func (c *Cache) ConfidenceInterval(a int, confidence float64) (stats.Interval, bool) {
	acc := &c.accs[a]
	switch c.space.Query().Fct {
	case olap.Avg:
		if acc.Count() == 0 {
			return stats.Interval{}, false
		}
		return stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence), true
	case olap.Count:
		if c.nrRead == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(c.totalRows)
		p := stats.ProportionConfidenceInterval(acc.Count(), c.nrRead, confidence)
		return stats.Interval{Lo: p.Lo * nrRows, Hi: p.Hi * nrRows}, true
	case olap.Sum:
		if c.nrRead == 0 || acc.Count() == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(c.totalRows)
		mean := stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence)
		scale := nrRows * float64(acc.Count()) / float64(c.nrRead)
		return stats.Interval{Lo: mean.Lo * scale, Hi: mean.Hi * scale}, true
	default:
		panic(fmt.Sprintf("sampling: unknown aggregation function %v", c.space.Query().Fct))
	}
}
