package sampling

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/olap"
)

// requireCachesBitIdentical fails unless the two caches hold exactly the
// same state, bit for bit: counters, non-empty order, raw value lists, and
// the Welford moments of every accumulator (struct equality compares the
// float64 fields exactly).
func requireCachesBitIdentical(t *testing.T, got, want *Cache, label string) {
	t.Helper()
	if got.nrRead != want.nrRead || got.inScope != want.inScope || got.totalRows != want.totalRows {
		t.Fatalf("%s: counters diverge: read %d/%d inScope %d/%d total %d/%d", label,
			got.nrRead, want.nrRead, got.inScope, want.inScope, got.totalRows, want.totalRows)
	}
	if len(got.nonEmpty) != len(want.nonEmpty) {
		t.Fatalf("%s: nonEmpty %d vs %d", label, len(got.nonEmpty), len(want.nonEmpty))
	}
	for i := range got.nonEmpty {
		if got.nonEmpty[i] != want.nonEmpty[i] {
			t.Fatalf("%s: nonEmpty[%d] = %d, want %d", label, i, got.nonEmpty[i], want.nonEmpty[i])
		}
	}
	if got.grand != want.grand {
		t.Fatalf("%s: grand moments diverge: %+v vs %+v", label, got.grand, want.grand)
	}
	for a := range got.values {
		if got.accs[a] != want.accs[a] {
			t.Fatalf("%s: agg %d moments diverge: %+v vs %+v", label, a, got.accs[a], want.accs[a])
		}
		if len(got.values[a]) != len(want.values[a]) {
			t.Fatalf("%s: agg %d has %d values, want %d", label, a, len(got.values[a]), len(want.values[a]))
		}
		for i := range got.values[a] {
			if got.values[a][i] != want.values[a][i] {
				t.Fatalf("%s: agg %d value[%d] = %v, want %v", label, a, i, got.values[a][i], want.values[a][i])
			}
		}
	}
}

// randomEpochs draws random row batches (sampling with replacement, like
// the pseudo-random scan) split into epochs of random sizes.
func randomEpochs(rng *rand.Rand, numRows, epochs int) [][]int {
	out := make([][]int, epochs)
	for e := range out {
		size := 1 + rng.Intn(200)
		rows := make([]int, size)
		for i := range rows {
			rows[i] = rng.Intn(numRows)
		}
		out[e] = rows
	}
	return out
}

// TestMergeWorkerBitIdentical is the accumulator-merge pinning test: for
// any worker count and any merge order, a cache assembled by replaying
// per-worker epoch-local accumulators is bit-identical to a sequential
// cache that ran InsertBatch over the same epochs in the same merge order.
// The parallel machinery must add zero numeric deviation beyond the row
// order itself — which a pseudo-random sequential scan has anyway.
func TestMergeWorkerBitIdentical(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		s := flightsSpace(t, fct)
		numRows := s.Dataset().Table().NumRows()
		for trial := 0; trial < 8; trial++ {
			rng := rand.New(rand.NewSource(int64(1000*trial) + 7))
			workers := 1 + rng.Intn(8)
			epochs := randomEpochs(rng, numRows, workers*(1+rng.Intn(4)))
			mergeOrder := rng.Perm(len(epochs))

			// Worker accumulators are reused across epochs round-robin,
			// exercising the Reset recycling of the real scan loop.
			accs := make([]*WorkerAccumulator, workers)
			for i := range accs {
				w, err := NewWorkerAccumulator(s)
				if err != nil {
					t.Fatalf("NewWorkerAccumulator: %v", err)
				}
				accs[i] = w
			}
			merged, err := NewCache(s)
			if err != nil {
				t.Fatalf("NewCache: %v", err)
			}
			sequential, err := NewCache(s)
			if err != nil {
				t.Fatalf("NewCache: %v", err)
			}
			for i, e := range mergeOrder {
				w := accs[i%workers]
				w.InsertBatch(epochs[e])
				merged.MergeWorker(w)
				w.Reset()
				sequential.InsertBatch(epochs[e])
			}
			requireCachesBitIdentical(t, merged, sequential, fct.String())
		}
	}
}

// TestMergeWorkerPartialEpochs checks that an accumulator filled by
// several InsertBatch calls before one merge behaves like the same calls
// applied to the cache directly: epochs are journals, not single batches.
func TestMergeWorkerPartialEpochs(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(42))
	w, err := NewWorkerAccumulator(s)
	if err != nil {
		t.Fatal(err)
	}
	merged, _ := NewCache(s)
	sequential, _ := NewCache(s)
	batches := randomEpochs(rng, s.Dataset().Table().NumRows(), 5)
	for _, b := range batches {
		w.InsertBatch(b)
		sequential.InsertBatch(b)
	}
	merged.MergeWorker(w)
	requireCachesBitIdentical(t, merged, sequential, "partial epochs")
	if w.NrRead() == 0 || w.NrInScope() == 0 {
		t.Fatal("accumulator should report journaled rows before Reset")
	}
	w.Reset()
	if w.NrRead() != 0 || w.NrInScope() != 0 {
		t.Fatal("Reset left journaled rows behind")
	}
}

// TestMergeWorkerAbsorbAppendMidMerge pins the streaming interaction: a
// cache that merges worker epochs, absorbs an append delta, rebinds the
// workers, and merges more epochs over the new snapshot stays bit-identical
// to a sequential cache driven through the same InsertBatch/AbsorbAppend
// sequence.
func TestMergeWorkerAbsorbAppendMidMerge(t *testing.T) {
	base, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		live, err := base.Table().AppendableCopy(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		space0 := streamingFlightsSpace(t, live.Snapshot(), base, fct, 0)
		merged, err := NewCache(space0)
		if err != nil {
			t.Fatal(err)
		}
		sequential, err := NewCache(space0)
		if err != nil {
			t.Fatal(err)
		}
		workers := make([]*WorkerAccumulator, 3)
		for i := range workers {
			if workers[i], err = NewWorkerAccumulator(space0); err != nil {
				t.Fatal(err)
			}
		}
		mergeAll := func(epochs [][]int) {
			for i, e := range epochs {
				w := workers[i%len(workers)]
				w.InsertBatch(e)
				merged.MergeWorker(w)
				w.Reset()
				sequential.InsertBatch(e)
			}
		}
		mergeAll(randomEpochs(rng, 5000, 6))

		appendFlightRows(t, live, 700, time.Date(2026, 1, 1, 1, 0, 0, 0, time.UTC))
		space1 := streamingFlightsSpace(t, live.Snapshot(), base, fct, 0)
		if err := merged.AbsorbAppend(space1); err != nil {
			t.Fatalf("%v: AbsorbAppend(merged): %v", fct, err)
		}
		if err := sequential.AbsorbAppend(space1); err != nil {
			t.Fatalf("%v: AbsorbAppend(sequential): %v", fct, err)
		}
		for _, w := range workers {
			if err := w.Rebind(space1); err != nil {
				t.Fatalf("%v: Rebind: %v", fct, err)
			}
		}
		// Post-append epochs range over the grown table, including the
		// absorbed delta rows.
		mergeAll(randomEpochs(rng, 5700, 6))
		requireCachesBitIdentical(t, merged, sequential, fct.String()+" mid-merge absorb")
	}
}

// TestRebindRejectsDirtyAccumulator: rebinding with journaled rows would
// mix row spaces across snapshots.
func TestRebindRejectsDirtyAccumulator(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	w, err := NewWorkerAccumulator(s)
	if err != nil {
		t.Fatal(err)
	}
	w.InsertBatch([]int{1, 2, 3})
	if err := w.Rebind(s); err == nil {
		t.Fatal("Rebind of a non-empty accumulator should fail")
	}
	w.Reset()
	if err := w.Rebind(s); err != nil {
		t.Fatalf("Rebind after Reset: %v", err)
	}
}

// TestMergeWorkerSpaceMismatchPanics pins the guard against merging an
// accumulator classified over a differently-sized aggregate space.
func TestMergeWorkerSpaceMismatchPanics(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 1000, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: d.HierarchyByName("start airport"), Level: 1}},
	}
	other, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatal(err)
	}
	if other.Size() == s.Size() {
		t.Skip("spaces coincidentally equal-sized")
	}
	c, _ := NewCache(s)
	w, err := NewWorkerAccumulator(other)
	if err != nil {
		t.Fatal(err)
	}
	w.InsertBatch([]int{0, 1})
	defer func() {
		if recover() == nil {
			t.Fatal("MergeWorker across spaces should panic")
		}
	}()
	c.MergeWorker(w)
}
