package sampling

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/olap"
	"repro/internal/table"
)

func TestAsyncSamplerConcurrentStop(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	a, err := NewAsyncSampler(s, rand.New(rand.NewSource(21)), 64)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	a.Start()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a.Stop()
		}()
	}
	wg.Wait()
}

func TestAsyncSamplerStartContextCancelHaltsScan(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	a, err := NewAsyncSampler(s, rand.New(rand.NewSource(22)), 16)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	a.StartContext(ctx)
	deadline := time.Now().Add(5 * time.Second)
	for a.NrRead() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-a.done:
	case <-time.After(5 * time.Second):
		t.Fatal("scan loop did not exit after context cancellation")
	}
	read := a.NrRead()
	if read == 0 {
		t.Fatal("scan never started")
	}
	time.Sleep(10 * time.Millisecond)
	if got := a.NrRead(); got != read {
		t.Errorf("rows kept accumulating after cancel: %d -> %d", read, got)
	}
	// Stop after a cancelled run must not deadlock.
	a.Stop()
}

func TestAsyncSamplerStopWithinAbandonsStalledScan(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	stall := faults.NewStallingScanner(
		table.NewRandomScanner(s.Dataset().Table(), rand.New(rand.NewSource(23))), 32)
	a, err := NewAsyncSamplerWithScanner(s, stall, 16)
	if err != nil {
		t.Fatalf("NewAsyncSamplerWithScanner: %v", err)
	}
	a.Start()
	deadline := time.Now().Add(5 * time.Second)
	for a.NrRead() < 32 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if ok := a.StopWithin(50 * time.Millisecond); ok {
		t.Fatal("StopWithin reported a clean exit while the scanner was stalled")
	}
	// Unblocking the scanner lets the abandoned goroutine drain and exit.
	stall.Release()
	select {
	case <-a.done:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned scan goroutine never exited after Release")
	}
	if ok := a.StopWithin(time.Second); !ok {
		t.Error("second StopWithin should observe the finished goroutine")
	}
}

func TestReadRowsContextHonoursCancellation(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	smp, err := NewSampler(s, rand.New(rand.NewSource(24)))
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if got := smp.ReadRowsContext(context.Background(), 100); got != 100 {
		t.Fatalf("ReadRowsContext(background) read %d of 100 rows", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// The cancellation check runs before the first row of each 64-row
	// stride, so an already-cancelled context reads nothing.
	if got := smp.ReadRowsContext(ctx, 10000); got != 0 {
		t.Errorf("cancelled read consumed %d rows", got)
	}
}
