package sampling

import (
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/table"
)

// appendFlightRows appends n schema-valid rows to a live flights table,
// cycling through each column's existing dictionary.
func appendFlightRows(t *testing.T, live *table.Table, n int, at time.Time) {
	t.Helper()
	snap := live.Snapshot()
	dict := func(col string) []string {
		sc, err := snap.StringColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		return sc.Dict()
	}
	airports, months, airlines := dict("airport"), dict("month"), dict("airline")
	var ap, mo, al []string
	var cc []float64
	for i := 0; i < n; i++ {
		ap = append(ap, airports[i%len(airports)])
		mo = append(mo, months[i%len(months)])
		al = append(al, airlines[i%len(airlines)])
		cc = append(cc, float64(i%7)/6)
	}
	b := table.NewRowBatch().
		Strings("airport", ap...).
		Strings("month", mo...).
		Strings("airline", al...).
		Float64s("cancelled", cc...)
	if _, err := live.AppendBatch(b, at); err != nil {
		t.Fatal(err)
	}
}

func streamingFlightsSpace(t *testing.T, tab *table.Table, base *olap.Dataset, fct olap.AggFunc, window time.Duration) *olap.Space {
	t.Helper()
	d, err := olap.NewDataset(tab, base.Hierarchies()...)
	if err != nil {
		t.Fatal(err)
	}
	q := olap.Query{
		Fct: fct, Col: "cancelled",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
		Window: olap.Window{Last: window},
	}
	if fct == olap.Count {
		q.Col = ""
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fillAll reads every row of the cache's table front to back.
func fillAll(c *Cache) {
	sc := table.NewSequentialScanner(c.Space().Dataset().Table())
	buf := make([]int, 1024)
	for {
		n := sc.NextBatch(buf)
		if n == 0 {
			return
		}
		c.InsertBatch(buf[:n])
	}
}

// TestAbsorbAppendMatchesRebuild proves the incremental-maintenance claim:
// after a full read of the base snapshot, absorbing an append batch must
// leave the cache bit-identical — every per-aggregate estimate, the grand
// estimate, and every confidence interval — to a cache rebuilt from
// scratch over the new snapshot.
func TestAbsorbAppendMatchesRebuild(t *testing.T) {
	base, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	live, err := base.Table().AppendableCopy(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	for _, fct := range []olap.AggFunc{olap.Avg, olap.Count, olap.Sum} {
		snap0 := live.Snapshot()
		absorbed, err := NewCache(streamingFlightsSpace(t, snap0, base, fct, 0))
		if err != nil {
			t.Fatal(err)
		}
		fillAll(absorbed)

		appendFlightRows(t, live, 700, time.Date(2026, 1, 1, 1, 0, 0, 0, time.UTC))
		snap1 := live.Snapshot()
		next := streamingFlightsSpace(t, snap1, base, fct, 0)
		if err := absorbed.AbsorbAppend(next); err != nil {
			t.Fatalf("%v: AbsorbAppend: %v", fct, err)
		}

		rebuilt, err := NewCache(streamingFlightsSpace(t, snap1, base, fct, 0))
		if err != nil {
			t.Fatal(err)
		}
		fillAll(rebuilt)

		if absorbed.NrRead() != rebuilt.NrRead() || absorbed.NrInScope() != rebuilt.NrInScope() {
			t.Fatalf("%v: read/in-scope diverge: %d/%d vs %d/%d", fct,
				absorbed.NrRead(), absorbed.NrInScope(), rebuilt.NrRead(), rebuilt.NrInScope())
		}
		if absorbed.TotalRows() != rebuilt.TotalRows() {
			t.Fatalf("%v: totalRows %d vs %d", fct, absorbed.TotalRows(), rebuilt.TotalRows())
		}
		ga, oka := absorbed.GrandEstimate()
		gr, okr := rebuilt.GrandEstimate()
		if oka != okr || ga != gr {
			t.Fatalf("%v: grand estimate %v/%v vs %v/%v", fct, ga, oka, gr, okr)
		}
		for a := 0; a < next.Size(); a++ {
			ea, oka := absorbed.Estimate(a, nil)
			er, okr := rebuilt.Estimate(a, nil)
			if oka != okr || ea != er {
				t.Fatalf("%v: aggregate %d estimate %v/%v vs %v/%v", fct, a, ea, oka, er, okr)
			}
			ia, oka := absorbed.ConfidenceInterval(a, 0.95)
			ir, okr := rebuilt.ConfidenceInterval(a, 0.95)
			if oka != okr || ia != ir {
				t.Fatalf("%v: aggregate %d interval %v vs %v", fct, a, ia, ir)
			}
		}
	}
}

func TestAbsorbAppendRejections(t *testing.T) {
	base, err := datagen.Flights(datagen.FlightsConfig{Rows: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	live, err := base.Table().AppendableCopy(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		t.Fatal(err)
	}
	snap0 := live.Snapshot()
	c, err := NewCache(streamingFlightsSpace(t, snap0, base, olap.Avg, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Different aggregate function.
	if err := c.AbsorbAppend(streamingFlightsSpace(t, snap0, base, olap.Count, 0)); err == nil {
		t.Fatal("absorbed a different query")
	}
	// A time-windowed target space.
	appendFlightRows(t, live, 10, time.Date(2026, 1, 1, 1, 0, 0, 0, time.UTC))
	snap1 := live.Snapshot()
	if err := c.AbsorbAppend(streamingFlightsSpace(t, snap1, base, olap.Avg, time.Minute)); err == nil {
		t.Fatal("absorbed a windowed space")
	}
	// A shrunken table.
	bigger, err := NewCache(streamingFlightsSpace(t, snap1, base, olap.Avg, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := bigger.AbsorbAppend(streamingFlightsSpace(t, snap0, base, olap.Avg, 0)); err == nil {
		t.Fatal("absorbed a shrunken table")
	}
}
