package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/olap"
)

func TestBuildViewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BuildView(nil, 0, rng); err == nil {
		t.Error("nil space should fail")
	}
	s := flightsSpace(t, olap.Avg)
	if _, err := BuildView(s, 0, nil); err == nil {
		t.Error("nil rng should fail")
	}
	v, err := BuildView(s, 0, rng)
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	if v.ReservoirSize != DefaultReservoirSize {
		t.Errorf("reservoir size = %d", v.ReservoirSize)
	}
	if v.Space() != s {
		t.Error("Space accessor wrong")
	}
}

func TestViewExactCounts(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(2))
	v, err := BuildView(s, 16, rng)
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	// Counts are exact: compare against the exact evaluation.
	countQ := s.Query()
	countQ.Fct = olap.Count
	countQ.Col = ""
	countSpace, err := olap.NewSpace(s.Dataset(), countQ)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	exact, err := olap.EvaluateSpace(countSpace)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	for a := 0; a < s.Size(); a++ {
		if got, want := v.Count(a), int64(exact.Value(a)); got != want {
			t.Errorf("aggregate %d count = %d, want %d", a, got, want)
		}
	}
}

func TestViewReservoirBounds(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(3))
	const reservoir = 8
	v, err := BuildView(s, reservoir, rng)
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	for a := 0; a < s.Size(); a++ {
		size := v.SampleSize(a)
		if size > reservoir {
			t.Errorf("aggregate %d reservoir = %d > %d", a, size, reservoir)
		}
		if v.Count(a) > 0 && size == 0 {
			t.Errorf("aggregate %d has rows but empty reservoir", a)
		}
		if v.Count(a) < int64(reservoir) && int64(size) != v.Count(a) {
			t.Errorf("aggregate %d: small stratum should be fully sampled (%d of %d)",
				a, size, v.Count(a))
		}
	}
	if v.NonEmpty() == 0 {
		t.Error("view should have non-empty aggregates")
	}
}

func TestViewEstimatesApproachExact(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	exact, _ := olap.EvaluateSpace(s)
	rng := rand.New(rand.NewSource(4))
	v, err := BuildView(s, 512, rng)
	if err != nil {
		t.Fatalf("BuildView: %v", err)
	}
	for a := 0; a < s.Size(); a++ {
		want := exact.Value(a)
		if math.IsNaN(want) {
			if _, ok := v.Estimate(a, rng); ok {
				t.Errorf("empty aggregate %d should have no average estimate", a)
			}
			continue
		}
		got, ok := v.Estimate(a, rng)
		if !ok {
			t.Fatalf("estimate for aggregate %d unavailable", a)
		}
		// Reservoirs of several hundred 0/1 values: loose tolerance.
		if math.Abs(got-want) > 0.05 {
			t.Errorf("aggregate %s: view %v, exact %v", s.AggregateName(a), got, want)
		}
	}
	grand, ok := v.GrandEstimate()
	if !ok {
		t.Fatal("grand estimate unavailable")
	}
	if math.Abs(grand-exact.GrandValue()) > 0.01 {
		t.Errorf("grand view %v, exact %v", grand, exact.GrandValue())
	}
}

func TestViewCountAndSumModes(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum} {
		s := flightsSpace(t, fct)
		exact, _ := olap.EvaluateSpace(s)
		rng := rand.New(rand.NewSource(5))
		v, err := BuildView(s, 256, rng)
		if err != nil {
			t.Fatalf("%v: BuildView: %v", fct, err)
		}
		for a := 0; a < s.Size(); a++ {
			got, ok := v.Estimate(a, rng)
			if !ok {
				t.Fatalf("%v: estimate unavailable for %d", fct, a)
			}
			want := exact.Value(a)
			// Counts are exact. Sums of a rare 0/1 measure carry reservoir
			// noise of roughly count·sqrt(p/R) — a handful of cancellations
			// per cell — so the check is statistical.
			tol := math.Abs(want)*0.5 + 15
			if fct == olap.Count {
				tol = 0
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%v aggregate %d: view %v, exact %v", fct, a, got, want)
			}
		}
		g, ok := v.GrandEstimate()
		if !ok {
			t.Fatalf("%v: grand unavailable", fct)
		}
		want := exact.GrandValue()
		// 0/1 measures give reservoir means ~50% relative noise per cell;
		// the weighted grand sum is within ~2 sigma of exact at 20%.
		if math.Abs(g-want) > math.Abs(want)*0.2+1e-9 {
			t.Errorf("%v grand: view %v, exact %v", fct, g, want)
		}
	}
}

func TestViewPickAggregate(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(6))
	v, _ := BuildView(s, 8, rng)
	for i := 0; i < 100; i++ {
		a, ok := v.PickAggregate(rng)
		if !ok {
			t.Fatal("pick should succeed on a populated view")
		}
		if v.SampleSize(a) == 0 {
			t.Fatal("average pick must have reservoir data")
		}
	}
}
