package sampling

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/olap"
)

func newShardedSampler(t *testing.T, s *olap.Space, seed int64, shards, batch int) *ShardedSampler {
	t.Helper()
	sh, err := NewShardedSampler(s, rand.New(rand.NewSource(seed)), shards, batch)
	if err != nil {
		t.Fatalf("NewShardedSampler: %v", err)
	}
	return sh
}

func waitForRows(t *testing.T, src BackgroundSource, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for src.NrRead() < want && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if src.NrRead() < want {
		t.Fatalf("scan too slow: %d of %d rows", src.NrRead(), want)
	}
}

// TestShardedSamplerDrainsTable proves the partitions are disjoint and
// exhaustive: the shards together read every row exactly once, after which
// the stratified estimates reproduce the exact result bit for bit (every
// shard's scale factor collapses to one).
func TestShardedSamplerDrainsTable(t *testing.T) {
	for _, fct := range []olap.AggFunc{olap.Count, olap.Sum, olap.Avg} {
		s := flightsSpace(t, fct)
		n := int64(s.Dataset().Table().NumRows())
		sh := newShardedSampler(t, s, 21, 4, 512)
		sh.Start()
		waitForRows(t, sh, n)
		sh.Stop()
		if sh.NrRead() != n {
			t.Fatalf("fct %v: read %d of %d rows", fct, sh.NrRead(), n)
		}
		exact, err := olap.EvaluateSpace(s)
		if err != nil {
			t.Fatalf("EvaluateSpace: %v", err)
		}
		rng := rand.New(rand.NewSource(22))
		for a := 0; a < s.Size(); a++ {
			want := exact.Value(a)
			got, ok := sh.Estimate(a, rng)
			if math.IsNaN(want) {
				if ok {
					t.Errorf("fct %v agg %d: estimate %v for empty average", fct, a, got)
				}
				continue
			}
			if !ok {
				t.Errorf("fct %v agg %d: estimate unavailable after full drain", fct, a)
				continue
			}
			if math.Abs(got-want) > math.Abs(want)*1e-9+1e-9 {
				t.Errorf("fct %v agg %d: estimate %v, exact %v", fct, a, got, want)
			}
		}
		grand, ok := sh.GrandEstimate()
		if !ok {
			t.Fatalf("fct %v: grand estimate unavailable", fct)
		}
		want := exact.GrandValue()
		if math.Abs(grand-want) > math.Abs(want)*1e-9+1e-9 {
			t.Errorf("fct %v: grand %v, exact %v", fct, grand, want)
		}
	}
}

// TestShardedSamplerConverges checks the merged estimator on a partial
// scan: after a few thousand rows the grand estimate must sit near the
// exact value, which a biased merge (wrong per-shard scaling) would miss.
func TestShardedSamplerConverges(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	sh := newShardedSampler(t, s, 23, 4, 128)
	sh.Start()
	waitForRows(t, sh, 5000)
	sh.Stop()
	exact, err := olap.EvaluateSpace(s)
	if err != nil {
		t.Fatalf("EvaluateSpace: %v", err)
	}
	got, ok := sh.GrandEstimate()
	if !ok {
		t.Fatal("grand estimate unavailable")
	}
	want := exact.GrandValue()
	if math.Abs(got-want) > 0.1*math.Abs(want)+0.01 {
		t.Errorf("grand estimate %v too far from exact %v after %d rows", got, want, sh.NrRead())
	}
}

func TestShardedSamplerStopIsIdempotent(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	sh := newShardedSampler(t, s, 24, 3, 64)
	// Stop before start: no deadlock.
	sh.Stop()
	sh.Stop()
	// Start after stop scans nothing (stop channel already closed).
	sh.Start()
	sh.Stop()
	if !sh.StopWithin(time.Second) {
		t.Error("StopWithin timed out after Stop")
	}
}

func TestShardedSamplerContextCancel(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	sh := newShardedSampler(t, s, 25, 4, 64)
	ctx, cancel := context.WithCancel(context.Background())
	sh.StartContext(ctx)
	waitForRows(t, sh, 256)
	cancel()
	if !sh.StopWithin(5 * time.Second) {
		t.Fatal("shards did not exit after context cancellation")
	}
}

// TestShardedSamplerHammer drives estimator reads from several goroutines
// while the shard scans run and other goroutines call Stop and StopWithin
// concurrently. Run under -race it proves the lock discipline: per-shard
// mutexes for cache state, start/stop coordination via channels.
func TestShardedSamplerHammer(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	sh := newShardedSampler(t, s, 26, 4, 64)
	sh.Start()
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				if agg, ok := sh.PickAggregate(rng); ok {
					sh.Estimate(agg, rng)
				}
				sh.GrandEstimate()
				sh.NrRead()
				sh.NrInScope()
				sh.PooledConfidenceInterval(all, 0.95)
			}
		}(int64(100 + g))
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sh.Stop()
			sh.StopWithin(time.Second)
		}()
	}
	wg.Wait()
	sh.Stop()
}

func TestShardedSamplerPooledInterval(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	sh := newShardedSampler(t, s, 27, 4, 256)
	sh.Start()
	waitForRows(t, sh, 2000)
	sh.Stop()
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	iv, ok := sh.PooledConfidenceInterval(all, 0.95)
	if !ok {
		t.Fatal("pooled interval unavailable after 2000 rows")
	}
	if !(iv.Lo <= iv.Hi) {
		t.Errorf("malformed interval [%v, %v]", iv.Lo, iv.Hi)
	}
}
