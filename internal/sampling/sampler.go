package sampling

import (
	"context"
	"math/rand"

	"repro/internal/olap"
	"repro/internal/table"
)

// Sampler pulls rows from a pseudo-random scan of the base table into a
// cache. The holistic planner calls ReadRows in small batches between
// search-tree samples, overlapping data access with voice output.
type Sampler struct {
	scanner table.Scanner
	cache   *Cache
	buf     []int
}

// NewSampler creates a cache for the query of space and a pseudo-random
// row stream seeded from rng.
func NewSampler(space *olap.Space, rng *rand.Rand) (*Sampler, error) {
	return NewSamplerWithScanner(space, table.NewRandomScanner(space.Dataset().Table(), rng))
}

// NewSamplerWithScanner is NewSampler with an explicit row stream, the
// injection point for fault wrappers and alternative scan orders.
func NewSamplerWithScanner(space *olap.Space, scanner table.Scanner) (*Sampler, error) {
	cache, err := NewCache(space)
	if err != nil {
		return nil, err
	}
	return &Sampler{scanner: scanner, cache: cache}, nil
}

// Cache returns the cache the sampler fills.
func (s *Sampler) Cache() *Cache { return s.cache }

// ReadRows pulls up to n rows from the scan into the cache and returns how
// many rows were actually read (fewer once the table is exhausted). Rows
// move in batches through the dense classifier rather than one at a time.
func (s *Sampler) ReadRows(n int) int {
	read := 0
	for read < n {
		want := n - read
		got := table.FillBatch(s.scanner, s.batchBuf(want))
		if got == 0 {
			break
		}
		s.cache.InsertBatch(s.buf[:got])
		read += got
	}
	return read
}

// batchBuf returns a reusable row buffer of at most want entries, capped at
// the sampler's batch grain.
func (s *Sampler) batchBuf(want int) []int {
	const grain = 1024
	if want > grain {
		want = grain
	}
	if cap(s.buf) < want {
		s.buf = make([]int, want)
	}
	s.buf = s.buf[:want]
	return s.buf
}

// ReadRowsContext is ReadRows with a cancellation check every few rows: it
// stops early and returns the rows read so far once ctx is done, so a
// planning loop under a deadline never overshoots it by a whole batch.
func (s *Sampler) ReadRowsContext(ctx context.Context, n int) int {
	const checkEvery = 64
	read := 0
	for read < n {
		select {
		case <-ctx.Done():
			return read
		default:
		}
		want := n - read
		if want > checkEvery {
			want = checkEvery
		}
		got := table.FillBatch(s.scanner, s.batchBuf(want))
		if got == 0 {
			break
		}
		s.cache.InsertBatch(s.buf[:got])
		read += got
	}
	return read
}

// Exhausted reports whether the scan has consumed the whole table.
func (s *Sampler) Exhausted() bool {
	if rs, ok := s.scanner.(*table.RandomScanner); ok {
		return rs.Remaining() == 0
	}
	return false
}
