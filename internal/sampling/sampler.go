package sampling

import (
	"context"
	"math/rand"

	"repro/internal/olap"
	"repro/internal/table"
)

// Sampler pulls rows from a pseudo-random scan of the base table into a
// cache. The holistic planner calls ReadRows in small batches between
// search-tree samples, overlapping data access with voice output.
type Sampler struct {
	scanner table.Scanner
	cache   *Cache
}

// NewSampler creates a cache for the query of space and a pseudo-random
// row stream seeded from rng.
func NewSampler(space *olap.Space, rng *rand.Rand) (*Sampler, error) {
	return NewSamplerWithScanner(space, table.NewRandomScanner(space.Dataset().Table(), rng))
}

// NewSamplerWithScanner is NewSampler with an explicit row stream, the
// injection point for fault wrappers and alternative scan orders.
func NewSamplerWithScanner(space *olap.Space, scanner table.Scanner) (*Sampler, error) {
	cache, err := NewCache(space)
	if err != nil {
		return nil, err
	}
	return &Sampler{scanner: scanner, cache: cache}, nil
}

// Cache returns the cache the sampler fills.
func (s *Sampler) Cache() *Cache { return s.cache }

// ReadRows pulls up to n rows from the scan into the cache and returns how
// many rows were actually read (fewer once the table is exhausted).
func (s *Sampler) ReadRows(n int) int {
	read := 0
	for read < n {
		row, ok := s.scanner.Next()
		if !ok {
			break
		}
		s.cache.Insert(row)
		read++
	}
	return read
}

// ReadRowsContext is ReadRows with a cancellation check every few rows: it
// stops early and returns the rows read so far once ctx is done, so a
// planning loop under a deadline never overshoots it by a whole batch.
func (s *Sampler) ReadRowsContext(ctx context.Context, n int) int {
	const checkEvery = 64
	read := 0
	for read < n {
		if read%checkEvery == 0 {
			select {
			case <-ctx.Done():
				return read
			default:
			}
		}
		row, ok := s.scanner.Next()
		if !ok {
			break
		}
		s.cache.Insert(row)
		read++
	}
	return read
}

// Exhausted reports whether the scan has consumed the whole table.
func (s *Sampler) Exhausted() bool {
	if rs, ok := s.scanner.(*table.RandomScanner); ok {
		return rs.Remaining() == 0
	}
	return false
}
