package sampling

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/olap"
)

func TestSamplerReadRows(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(6))
	smp, err := NewSampler(s, rng)
	if err != nil {
		t.Fatalf("NewSampler: %v", err)
	}
	if got := smp.ReadRows(500); got != 500 {
		t.Errorf("read %d rows, want 500", got)
	}
	if smp.Cache().NrRead() != 500 {
		t.Errorf("cache NrRead = %d", smp.Cache().NrRead())
	}
	if smp.Exhausted() {
		t.Error("sampler should not be exhausted after 500 of 20000 rows")
	}
}

func TestSamplerExhaustion(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(6))
	smp, _ := NewSampler(s, rng)
	n := s.Dataset().Table().NumRows()
	read := smp.ReadRows(n + 1000)
	if read != n {
		t.Errorf("read %d rows, want %d", read, n)
	}
	if !smp.Exhausted() {
		t.Error("sampler should be exhausted")
	}
	if smp.ReadRows(10) != 0 {
		t.Error("exhausted sampler should read nothing")
	}
}

func TestSamplerEstimateConvergence(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	exact, _ := olap.EvaluateSpace(s)
	rng := rand.New(rand.NewSource(13))
	smp, _ := NewSampler(s, rng)
	smp.ReadRows(10000)
	c := smp.Cache()
	c.ResampleSize = 1 << 20
	// Cells with hundreds of samples should estimate within a few tenths
	// of a percentage point of cancellation probability.
	checked := 0
	for a := 0; a < s.Size(); a++ {
		if c.Size(a) < 200 {
			continue
		}
		got, ok := c.Estimate(a, rng)
		if !ok {
			t.Fatalf("estimate for populated aggregate %d unavailable", a)
		}
		want := exact.Value(a)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("aggregate %s: estimate %.4f, exact %.4f", s.AggregateName(a), got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Error("expected populated aggregates after 10000 reads")
	}
}
