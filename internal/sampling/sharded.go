package sampling

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/table"
)

// BackgroundSource is the contract the holistic planner needs from a
// background sample feed: estimator access plus lifecycle control. Both the
// single AsyncSampler and the ShardedSampler satisfy it, so the session
// layer can swap one for the other behind a config knob.
type BackgroundSource interface {
	Estimator
	// StartContext launches the background scan bound to ctx.
	StartContext(ctx context.Context)
	// Stop halts the scan and waits for it to finish.
	Stop()
	// StopWithin halts the scan, waiting at most grace for goroutine exit.
	StopWithin(grace time.Duration) bool
	// GrandEstimate estimates the aggregate value over the whole scope.
	GrandEstimate() (float64, bool)
	// NrRead returns the rows consumed so far.
	NrRead() int64
	// NrInScope returns the in-scope rows cached so far.
	NrInScope() int64
	// PooledConfidenceInterval bounds the value over a set of aggregates.
	PooledConfidenceInterval(aggs []int, confidence float64) (stats.Interval, bool)
}

// Compile-time checks.
var (
	_ BackgroundSource = (*AsyncSampler)(nil)
	_ BackgroundSource = (*ShardedSampler)(nil)
)

// samplerShard is one worker of a ShardedSampler: a private cache filled
// from an independent pseudo-random walk over a contiguous row partition.
// Each shard has its own lock, so scan workers never contend with each
// other — only (briefly) with estimator reads touching their shard.
type samplerShard struct {
	mu      sync.Mutex
	cache   *Cache
	scanner table.Scanner
	nRows   int64 // partition size
}

// ShardedSampler fills per-shard caches from concurrent background
// goroutines, one per disjoint row partition. Estimates merge the shards by
// stratified (Horvitz-Thompson) scaling: each shard's cache is a uniform
// sample of its own partition, so scaling shard s by nRows_s/nrRead_s and
// summing over shards keeps count and sum estimates unbiased; averages are
// the ratio of the two merged estimates.
type ShardedSampler struct {
	space  *olap.Space
	shards []*samplerShard
	batch  int

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
}

// NewShardedSampler creates shards caches over near-equal contiguous row
// partitions. Each shard's scan order is an independent full-cycle affine
// walk seeded deterministically from rng. batch is the number of rows
// inserted per shard lock acquisition (<= 0 selects 256); shards <= 0 is an
// error, and the shard count is capped at the table's row count.
func NewShardedSampler(space *olap.Space, rng *rand.Rand, shards, batch int) (*ShardedSampler, error) {
	if shards <= 0 {
		return nil, errors.New("sampling: shard count must be positive")
	}
	if batch <= 0 {
		batch = 256
	}
	n := space.Dataset().Table().NumRows()
	if n > 0 && shards > n {
		shards = n
	}
	s := &ShardedSampler{
		space: space,
		batch: batch,
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i := 0; i < shards; i++ {
		lo := i * n / shards
		hi := (i + 1) * n / shards
		cache, err := NewCache(space)
		if err != nil {
			return nil, err
		}
		// One seed draw per shard keeps the walks independent and the whole
		// construction a pure function of rng's state.
		shardRng := rand.New(rand.NewSource(rng.Int63()))
		s.shards = append(s.shards, &samplerShard{
			cache:   cache,
			scanner: table.NewRandomRangeScanner(lo, hi, shardRng),
			nRows:   int64(hi - lo),
		})
	}
	return s, nil
}

// NumShards returns the number of scan partitions.
func (s *ShardedSampler) NumShards() int { return len(s.shards) }

// Start launches the background scans. It may be called once.
func (s *ShardedSampler) Start() { s.StartContext(context.Background()) }

// StartContext launches one scan goroutine per shard, all bound to ctx:
// scanning halts when ctx is cancelled, when Stop is called, or when every
// partition is exhausted. It may be called once.
func (s *ShardedSampler) StartContext(ctx context.Context) {
	s.startMu.Lock()
	if s.started {
		s.startMu.Unlock()
		return
	}
	s.started = true
	s.startMu.Unlock()
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(sh *samplerShard) {
			defer wg.Done()
			s.loop(ctx, sh)
		}(sh)
	}
	go func() {
		wg.Wait()
		close(s.done)
	}()
}

// loop drives one shard until its partition is exhausted, ctx is cancelled,
// or Stop is called.
func (s *ShardedSampler) loop(ctx context.Context, sh *samplerShard) {
	rows := make([]int, s.batch)
	for {
		select {
		case <-s.stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		n := table.FillBatch(sh.scanner, rows)
		if n == 0 {
			return
		}
		sh.mu.Lock()
		sh.cache.InsertBatch(rows[:n])
		sh.mu.Unlock()
	}
}

// Stop halts all shard scans and waits for them to finish. Safe to call
// multiple times, concurrently, and before Start.
func (s *ShardedSampler) Stop() {
	s.startMu.Lock()
	started := s.started
	s.startMu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if started {
		<-s.done
	}
}

// StopWithin halts the scans like Stop but waits at most grace for the
// goroutines to exit, returning false when some shard is stuck inside its
// scanner (a hung storage backend) and had to be abandoned.
func (s *ShardedSampler) StopWithin(grace time.Duration) bool {
	s.startMu.Lock()
	started := s.started
	s.startMu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if !started {
		return true
	}
	select {
	case <-s.done:
		return true
	case <-time.After(grace):
		return false
	}
}

// shardMoments is the per-shard snapshot the merged estimators work from.
type shardMoments struct {
	nRows   int64
	nrRead  int64
	count   int64   // cached rows of the aggregate under consideration
	sum     float64 // measure sum of those rows
	inScope int64
}

// aggSnapshot collects, shard by shard under each shard's lock, the moments
// of aggregate a (a < 0 snapshots grand moments over the whole scope).
// Shards are sampled at slightly different instants; each shard's snapshot
// is internally consistent, which is all stratified merging needs.
func (s *ShardedSampler) aggSnapshot(a int) []shardMoments {
	out := make([]shardMoments, len(s.shards))
	for i, sh := range s.shards {
		sh.mu.Lock()
		m := shardMoments{nRows: sh.nRows, nrRead: sh.cache.NrRead(), inScope: sh.cache.NrInScope()}
		if a >= 0 {
			acc := &sh.cache.accs[a]
			m.count, m.sum = acc.Count(), acc.Sum()
		} else {
			m.count, m.sum = sh.cache.grand.Count(), sh.cache.grand.Sum()
		}
		sh.mu.Unlock()
		out[i] = m
	}
	return out
}

// merge folds per-shard moments into stratified count and sum estimates:
// countEst = sum_s nRows_s * count_s / nrRead_s, and likewise for sums.
// Shards with no rows read yet contribute nothing (they also have nothing
// cached, so this only matters in the first instants of a scan).
func mergeShardMoments(ms []shardMoments) (countEst, sumEst float64, read, cached int64) {
	for _, m := range ms {
		read += m.nrRead
		cached += m.count
		if m.nrRead == 0 {
			continue
		}
		scale := float64(m.nRows) / float64(m.nrRead)
		countEst += scale * float64(m.count)
		sumEst += scale * m.sum
	}
	return countEst, sumEst, read, cached
}

// PickAggregate implements Estimator over the union of the shards: for
// averages an aggregate is eligible once any shard cached a row for it; for
// counts and sums every aggregate is eligible once any row was read.
func (s *ShardedSampler) PickAggregate(rng *rand.Rand) (int, bool) {
	if s.space.Query().Fct == olap.Avg {
		seen := make(map[int]struct{})
		var union []int
		for _, sh := range s.shards {
			sh.mu.Lock()
			for _, a := range sh.cache.nonEmpty {
				if _, dup := seen[a]; !dup {
					seen[a] = struct{}{}
					union = append(union, a)
				}
			}
			sh.mu.Unlock()
		}
		if len(union) == 0 {
			return 0, false
		}
		return union[rng.Intn(len(union))], true
	}
	if s.space.Size() == 0 || s.NrRead() == 0 {
		return 0, false
	}
	return rng.Intn(s.space.Size()), true
}

// Estimate implements Estimator with the stratified merge. Semantics match
// Cache.Estimate: ok is false before any row was read, and for averages
// over aggregates with no cached rows.
func (s *ShardedSampler) Estimate(a int, rng *rand.Rand) (float64, bool) {
	countEst, sumEst, read, cached := mergeShardMoments(s.aggSnapshot(a))
	if read == 0 {
		return 0, false
	}
	switch s.space.Query().Fct {
	case olap.Count:
		return countEst, true
	case olap.Sum:
		return sumEst, true
	case olap.Avg:
		if cached == 0 || countEst == 0 {
			return 0, false
		}
		return sumEst / countEst, true
	default:
		return 0, false
	}
}

// GrandEstimate estimates the aggregate value over the whole query scope
// from the merged grand moments of all shards.
func (s *ShardedSampler) GrandEstimate() (float64, bool) {
	countEst, sumEst, read, cached := mergeShardMoments(s.aggSnapshot(-1))
	if read == 0 {
		return 0, false
	}
	switch s.space.Query().Fct {
	case olap.Count:
		return countEst, true
	case olap.Sum:
		if cached == 0 {
			return 0, false
		}
		return sumEst, true
	case olap.Avg:
		if cached == 0 || countEst == 0 {
			return 0, false
		}
		return sumEst / countEst, true
	default:
		return 0, false
	}
}

// NrRead returns the rows consumed across all shards.
func (s *ShardedSampler) NrRead() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.cache.NrRead()
		sh.mu.Unlock()
	}
	return total
}

// NrInScope returns the cached (in-scope) rows across all shards.
func (s *ShardedSampler) NrInScope() int64 {
	var total int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.cache.NrInScope()
		sh.mu.Unlock()
	}
	return total
}

// PooledConfidenceInterval bounds the value over the union of the given
// aggregates by merging the per-aggregate running moments across shards.
// With near-equal partitions read at near-equal rates — exactly what the
// sharded scan produces — pooling the strata matches the single-scan bound.
func (s *ShardedSampler) PooledConfidenceInterval(aggs []int, confidence float64) (stats.Interval, bool) {
	var acc stats.Accumulator
	var read int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, a := range aggs {
			shardAcc := sh.cache.accs[a]
			acc.Merge(&shardAcc)
		}
		read += sh.cache.NrRead()
		sh.mu.Unlock()
	}
	switch s.space.Query().Fct {
	case olap.Avg:
		if acc.Count() == 0 {
			return stats.Interval{}, false
		}
		return stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence), true
	case olap.Count:
		if read == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(s.space.Dataset().Table().NumRows())
		p := stats.ProportionConfidenceInterval(acc.Count(), read, confidence)
		return stats.Interval{Lo: p.Lo * nrRows, Hi: p.Hi * nrRows}, true
	case olap.Sum:
		if read == 0 || acc.Count() == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(s.space.Dataset().Table().NumRows())
		mean := stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence)
		scale := nrRows * float64(acc.Count()) / float64(read)
		return stats.Interval{Lo: mean.Lo * scale, Hi: mean.Hi * scale}, true
	default:
		return stats.Interval{}, false
	}
}
