package sampling

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/table"
)

// AsyncSampler fills a cache from a background goroutine, so on a real
// clock the database scan truly overlaps voice output and planning — the
// paper's "processing data in the background".
//
// Locking: mu guards only the cache. The background loop classifies each
// batch into a private WorkerAccumulator *outside* the lock — row
// classification and the measure gather are where an insert's time goes —
// and holds mu just for the journal replay (Cache.MergeWorker, bit-
// identical to inserting the batch directly). Estimate readers therefore
// serialize only behind the short merge, not behind full insert bursts.
// Readers do still take the mutex: unlike EpochSampler, this sampler backs
// the exact single-stream path whose PooledConfidenceInterval pools raw
// per-aggregate value lists, and those lists cannot be snapshotted in O(1).
// Callers who want wait-free reads use EpochSampler instead. Lifecycle
// state (started) lives under its own lock so Start/Stop never queue
// behind a merge.
type AsyncSampler struct {
	mu      sync.Mutex
	cache   *Cache
	scanner table.Scanner
	// staged is the loop-private accumulator; only the background
	// goroutine touches it.
	staged *WorkerAccumulator

	batch    int
	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
}

// Compile-time check: the async sampler is an Estimator.
var _ Estimator = (*AsyncSampler)(nil)

// NewAsyncSampler creates the cache and scan stream for space. batch is
// the number of rows inserted per lock acquisition (<= 0 selects 256).
func NewAsyncSampler(space *olap.Space, rng *rand.Rand, batch int) (*AsyncSampler, error) {
	return NewAsyncSamplerWithScanner(space, table.NewRandomScanner(space.Dataset().Table(), rng), batch)
}

// NewAsyncSamplerWithScanner is NewAsyncSampler with an explicit row
// stream, the injection point for fault wrappers and alternative scan
// orders.
func NewAsyncSamplerWithScanner(space *olap.Space, scanner table.Scanner, batch int) (*AsyncSampler, error) {
	cache, err := NewCache(space)
	if err != nil {
		return nil, err
	}
	staged, err := NewWorkerAccumulator(space)
	if err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = 256
	}
	return &AsyncSampler{
		cache:   cache,
		scanner: scanner,
		staged:  staged,
		batch:   batch,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}, nil
}

// Start launches the background scan. It may be called once.
func (a *AsyncSampler) Start() { a.StartContext(context.Background()) }

// StartContext launches the background scan bound to ctx: the scan halts
// when ctx is cancelled, when Stop is called, or when the table is
// exhausted, whichever comes first. It may be called once.
func (a *AsyncSampler) StartContext(ctx context.Context) {
	a.startMu.Lock()
	if a.started {
		a.startMu.Unlock()
		return
	}
	a.started = true
	a.startMu.Unlock()
	go a.loop(ctx)
}

// loop pulls batches until the table is exhausted, ctx is cancelled, or
// Stop is called.
func (a *AsyncSampler) loop(ctx context.Context) {
	defer close(a.done)
	rows := make([]int, a.batch)
	for {
		select {
		case <-a.stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		n := table.FillBatch(a.scanner, rows)
		if n == 0 {
			return
		}
		// Classify outside the lock; hold mu only for the replay.
		a.staged.InsertBatch(rows[:n])
		a.mu.Lock()
		a.cache.MergeWorker(a.staged)
		a.mu.Unlock()
		a.staged.Reset()
	}
}

// Stop halts the background scan and waits for it to finish. Safe to call
// multiple times, concurrently, and before Start.
func (a *AsyncSampler) Stop() {
	a.startMu.Lock()
	started := a.started
	a.startMu.Unlock()
	a.stopOnce.Do(func() { close(a.stop) })
	if started {
		<-a.done
	}
}

// StopWithin halts the scan like Stop but waits at most grace for the
// goroutine to exit. It returns false when the scan is stuck inside the
// scanner (a hung storage backend): the goroutine is then abandoned — the
// only safe option for a call that never returns — and exits on its own
// if the scanner ever unblocks.
func (a *AsyncSampler) StopWithin(grace time.Duration) bool {
	a.startMu.Lock()
	started := a.started
	a.startMu.Unlock()
	a.stopOnce.Do(func() { close(a.stop) })
	if !started {
		return true
	}
	select {
	case <-a.done:
		return true
	case <-time.After(grace):
		return false
	}
}

// PickAggregate implements Estimator under the sampler's lock.
func (a *AsyncSampler) PickAggregate(rng *rand.Rand) (int, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.PickAggregate(rng)
}

// Estimate implements Estimator under the sampler's lock.
func (a *AsyncSampler) Estimate(agg int, rng *rand.Rand) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.Estimate(agg, rng)
}

// GrandEstimate returns the whole-scope estimate under the lock.
func (a *AsyncSampler) GrandEstimate() (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.GrandEstimate()
}

// NrRead returns the rows consumed so far.
func (a *AsyncSampler) NrRead() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.NrRead()
}

// NrInScope returns the cached (in-scope) row count so far.
func (a *AsyncSampler) NrInScope() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.NrInScope()
}

// PooledConfidenceInterval proxies the cache's pooled bound under the lock.
func (a *AsyncSampler) PooledConfidenceInterval(aggs []int, confidence float64) (stats.Interval, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cache.PooledConfidenceInterval(aggs, confidence)
}
