package sampling

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/olap"
	"repro/internal/stats"
	"repro/internal/table"
)

// EpochSampler is the contention-free background sample source: one scan
// goroutine per disjoint row partition, each filling a private
// WorkerAccumulator with zero synchronization (classification and the
// measure gather — the expensive part of an insert — never touch shared
// state). At every batch boundary a worker briefly takes the single merge
// lock, replays its epoch into the master cache (Cache.MergeWorker, bit-
// identical to the sequential insert path over the same rows in merge
// order), publishes an immutable snapshot of the master's moments, and
// resets its accumulator for the next epoch.
//
// Estimator reads are wait-free: they load the latest published snapshot
// with a single atomic pointer read and never contend with scan workers or
// with each other. This is the structural fix for the ShardedSampler's read
// path, which locked every shard's mutex on every Estimate call — under a
// multi-worker planner, estimate reads serialized behind insert bursts.
//
// Exactness contract: the merged master cache is bit-identical to a
// sequential Cache fed the same epochs in the same merge order (pinned by
// TestEpochSamplerSingleWorkerBitIdentical and the merge property tests).
// Across runs the inter-worker merge order is scheduling-dependent, so
// multi-worker estimates are statistically equivalent — the same guarantee
// any sampling estimate carries — while all counting state (NrRead,
// NrInScope, per-aggregate counts) is exact.
type EpochSampler struct {
	space *olap.Space
	batch int

	workers []*epochWorker

	// mergeMu serializes epoch merges into master and snapshot publishes.
	// Scan workers take it once per batch; readers never take it.
	mergeMu sync.Mutex
	master  *Cache
	snap    atomic.Pointer[epochSnapshot]

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
	startMu  sync.Mutex
	started  bool
}

// epochWorker is one scan goroutine's private state.
type epochWorker struct {
	scanner table.Scanner
	acc     *WorkerAccumulator
}

// epochSnapshot is the immutable estimator state published after each
// merge. It carries the master cache's O(1) moments — not the raw value
// lists — so a publish is O(aggregates), independent of cache fill.
type epochSnapshot struct {
	fct       olap.AggFunc
	totalRows int64
	nrRead    int64
	inScope   int64
	grand     stats.Accumulator
	accs      []stats.Accumulator
	nonEmpty  []int
}

// Compile-time check: the epoch sampler is a full background source.
var _ BackgroundSource = (*EpochSampler)(nil)

// NewEpochSampler creates workers scan goroutines over near-equal disjoint
// contiguous row partitions, each an independent full-cycle pseudo-random
// walk seeded deterministically from rng. batch is the epoch size in rows
// (<= 0 selects 256); workers <= 0 is an error, and the worker count is
// capped at the table's row count.
func NewEpochSampler(space *olap.Space, rng *rand.Rand, workers, batch int) (*EpochSampler, error) {
	if workers <= 0 {
		return nil, errors.New("sampling: epoch sampler worker count must be positive")
	}
	if batch <= 0 {
		batch = 256
	}
	n := space.Dataset().Table().NumRows()
	if n > 0 && workers > n {
		workers = n
	}
	master, err := NewCache(space)
	if err != nil {
		return nil, err
	}
	s := &EpochSampler{
		space:  space,
		batch:  batch,
		master: master,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		lo := i * n / workers
		hi := (i + 1) * n / workers
		acc, err := NewWorkerAccumulator(space)
		if err != nil {
			return nil, err
		}
		// One seed draw per worker keeps the walks independent and the
		// whole construction a pure function of rng's state.
		workerRng := rand.New(rand.NewSource(rng.Int63()))
		s.workers = append(s.workers, &epochWorker{
			scanner: table.NewRandomRangeScanner(lo, hi, workerRng),
			acc:     acc,
		})
	}
	s.snap.Store(s.snapshotLocked())
	return s, nil
}

// NumWorkers returns the number of scan partitions.
func (s *EpochSampler) NumWorkers() int { return len(s.workers) }

// Start launches the background scans. It may be called once.
func (s *EpochSampler) Start() { s.StartContext(context.Background()) }

// StartContext launches one scan goroutine per worker, all bound to ctx:
// scanning halts when ctx is cancelled, when Stop is called, or when every
// partition is exhausted. It may be called once.
func (s *EpochSampler) StartContext(ctx context.Context) {
	s.startMu.Lock()
	if s.started {
		s.startMu.Unlock()
		return
	}
	s.started = true
	s.startMu.Unlock()
	var wg sync.WaitGroup
	for _, w := range s.workers {
		wg.Add(1)
		go func(w *epochWorker) {
			defer wg.Done()
			s.loop(ctx, w)
		}(w)
	}
	go func() {
		wg.Wait()
		close(s.done)
	}()
}

// loop drives one worker until its partition is exhausted, ctx is
// cancelled, or Stop is called. Every filled epoch is merged before the
// next batch starts, so exit leaves no journaled rows behind.
func (s *EpochSampler) loop(ctx context.Context, w *epochWorker) {
	rows := make([]int, s.batch)
	for {
		select {
		case <-s.stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		if w.acc.fillFromScanner(w.scanner, rows) == 0 {
			return
		}
		s.mergeEpoch(w.acc)
	}
}

// mergeEpoch folds one worker's epoch into the master cache and publishes a
// fresh snapshot. The critical section is the journal replay plus an
// O(aggregates) moment copy — classification happened outside.
func (s *EpochSampler) mergeEpoch(acc *WorkerAccumulator) {
	s.mergeMu.Lock()
	s.master.MergeWorker(acc)
	s.snap.Store(s.snapshotLocked())
	s.mergeMu.Unlock()
	acc.Reset()
}

// snapshotLocked copies the master's estimator moments. Callers hold
// mergeMu (or, at construction, exclusive access).
func (s *EpochSampler) snapshotLocked() *epochSnapshot {
	c := s.master
	sn := &epochSnapshot{
		fct:       s.space.Query().Fct,
		totalRows: c.totalRows,
		nrRead:    c.nrRead,
		inScope:   c.inScope,
		accs:      make([]stats.Accumulator, len(c.accs)),
		nonEmpty:  make([]int, len(c.nonEmpty)),
	}
	copy(sn.accs, c.accs)
	copy(sn.nonEmpty, c.nonEmpty)
	sn.grand = c.grand
	return sn
}

// Stop halts all scans and waits for them to finish. Safe to call multiple
// times, concurrently, and before Start.
func (s *EpochSampler) Stop() {
	s.startMu.Lock()
	started := s.started
	s.startMu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if started {
		<-s.done
	}
}

// StopWithin halts the scans like Stop but waits at most grace for the
// goroutines to exit, returning false when some worker is stuck inside its
// scanner (a hung storage backend) and had to be abandoned.
func (s *EpochSampler) StopWithin(grace time.Duration) bool {
	s.startMu.Lock()
	started := s.started
	s.startMu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	if !started {
		return true
	}
	select {
	case <-s.done:
		return true
	case <-time.After(grace):
		return false
	}
}

// Done returns a channel closed once every scan goroutine has exited
// (table exhausted, context cancelled, or stopped). Benchmarks use it to
// time a full-table drain without polling.
func (s *EpochSampler) Done() <-chan struct{} { return s.done }

// view returns the latest published snapshot: one atomic load, no locks.
func (s *EpochSampler) view() *epochSnapshot { return s.snap.Load() }

// PickAggregate implements Estimator from the snapshot: for averages an
// aggregate is eligible once a merged epoch cached a row for it; for
// counts and sums every aggregate is eligible once any row was read.
func (s *EpochSampler) PickAggregate(rng *rand.Rand) (int, bool) {
	sn := s.view()
	if sn.fct == olap.Avg {
		if len(sn.nonEmpty) == 0 {
			return 0, false
		}
		return sn.nonEmpty[rng.Intn(len(sn.nonEmpty))], true
	}
	if len(sn.accs) == 0 || sn.nrRead == 0 {
		return 0, false
	}
	return rng.Intn(len(sn.accs)), true
}

// Estimate implements Estimator with the same formulas as Cache.Estimate
// over the snapshot's moments: count scales the cache hit rate, sum
// multiplies the count estimate by the running mean, average is the mean.
func (s *EpochSampler) Estimate(a int, rng *rand.Rand) (float64, bool) {
	sn := s.view()
	if sn.nrRead == 0 {
		return 0, false
	}
	acc := &sn.accs[a]
	countEst := float64(sn.totalRows) * float64(acc.Count()) / float64(sn.nrRead)
	switch sn.fct {
	case olap.Count:
		return countEst, true
	case olap.Sum:
		if acc.Count() == 0 {
			return 0, true
		}
		return countEst * acc.Mean(), true
	case olap.Avg:
		if acc.Count() == 0 {
			return 0, false
		}
		return acc.Mean(), true
	default:
		return 0, false
	}
}

// GrandEstimate estimates the aggregate value over the whole query scope
// from the snapshot's grand moments, mirroring Cache.GrandEstimate.
func (s *EpochSampler) GrandEstimate() (float64, bool) {
	sn := s.view()
	if sn.nrRead == 0 {
		return 0, false
	}
	countEst := float64(sn.totalRows) * float64(sn.inScope) / float64(sn.nrRead)
	switch sn.fct {
	case olap.Count:
		return countEst, true
	case olap.Sum, olap.Avg:
		if sn.inScope == 0 {
			return 0, false
		}
		if sn.fct == olap.Sum {
			return countEst * sn.grand.Mean(), true
		}
		return sn.grand.Mean(), true
	default:
		return 0, false
	}
}

// NrRead returns the rows consumed by merged epochs so far.
func (s *EpochSampler) NrRead() int64 { return s.view().nrRead }

// NrInScope returns the cached (in-scope) rows of merged epochs so far.
func (s *EpochSampler) NrInScope() int64 { return s.view().inScope }

// PooledConfidenceInterval bounds the value over the union of the given
// aggregates by Welford-merging their per-aggregate running moments from
// the snapshot. Counts and sums are exact; the pooled variance is the
// parallel-merge combination — statistically equivalent to, not bit-
// identical with, Cache's raw-value pooling (documented in DESIGN.md).
func (s *EpochSampler) PooledConfidenceInterval(aggs []int, confidence float64) (stats.Interval, bool) {
	sn := s.view()
	var acc stats.Accumulator
	for _, a := range aggs {
		aggAcc := sn.accs[a]
		acc.Merge(&aggAcc)
	}
	switch sn.fct {
	case olap.Avg:
		if acc.Count() == 0 {
			return stats.Interval{}, false
		}
		return stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence), true
	case olap.Count:
		if sn.nrRead == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(sn.totalRows)
		p := stats.ProportionConfidenceInterval(acc.Count(), sn.nrRead, confidence)
		return stats.Interval{Lo: p.Lo * nrRows, Hi: p.Hi * nrRows}, true
	case olap.Sum:
		if sn.nrRead == 0 || acc.Count() == 0 {
			return stats.Interval{}, false
		}
		nrRows := float64(sn.totalRows)
		mean := stats.MeanConfidenceInterval(acc.Mean(), acc.StdDev(), acc.Count(), confidence)
		scale := nrRows * float64(acc.Count()) / float64(sn.nrRead)
		return stats.Interval{Lo: mean.Lo * scale, Hi: mean.Hi * scale}, true
	default:
		return stats.Interval{}, false
	}
}
