package sampling

import (
	"errors"
	"math/rand"

	"repro/internal/olap"
	"repro/internal/stats"
)

// Estimator is the interface the speech evaluator needs from a sample
// source: pick an aggregate with data and estimate its value. The on-line
// Cache implements it; View implements it from a materialized sample.
type Estimator interface {
	// PickAggregate selects a random eligible aggregate.
	PickAggregate(rng *rand.Rand) (int, bool)
	// Estimate derives a value estimate for aggregate a.
	Estimate(a int, rng *rand.Rand) (float64, bool)
}

// Compile-time checks.
var (
	_ Estimator = (*Cache)(nil)
	_ Estimator = (*View)(nil)
)

// View is a materialized sample view in the spirit of Joshi & Jermaine's
// sample views, which the paper cites as the extension for estimating
// particularly small data subsets (Section 4.3): one full scan at build
// time keeps an exact row count and a bounded uniform reservoir of measure
// values per aggregate. Afterwards every aggregate — however rare — has
// instant, scan-free estimates, at the cost of the up-front build and of
// staleness under updates.
type View struct {
	space      *olap.Space
	counts     []int64
	reservoirs [][]float64
	nonEmpty   []int
	nrRows     int64
	// ReservoirSize is the per-aggregate sample bound used at build time.
	ReservoirSize int
}

// DefaultReservoirSize bounds per-aggregate reservoirs.
const DefaultReservoirSize = 64

// BuildView scans the entire table once and materializes the view for the
// query of space. reservoir <= 0 selects DefaultReservoirSize.
func BuildView(space *olap.Space, reservoir int, rng *rand.Rand) (*View, error) {
	if space == nil || rng == nil {
		return nil, errors.New("sampling: space and rng are required")
	}
	if reservoir <= 0 {
		reservoir = DefaultReservoirSize
	}
	q := space.Query()
	var measure interface{ Float(int) float64 }
	if q.Fct != olap.Count {
		m, err := space.Dataset().Measure(q.Col)
		if err != nil {
			return nil, err
		}
		measure = m
	}
	v := &View{
		space:         space,
		counts:        make([]int64, space.Size()),
		reservoirs:    make([][]float64, space.Size()),
		ReservoirSize: reservoir,
	}
	n := space.Dataset().Table().NumRows()
	v.nrRows = int64(n)
	for row := 0; row < n; row++ {
		idx, ok := space.ClassifyRow(row)
		if !ok {
			continue
		}
		val := 1.0
		if measure != nil {
			val = measure.Float(row)
		}
		v.counts[idx]++
		// Standard reservoir sampling keeps a uniform sample per stratum.
		if len(v.reservoirs[idx]) < reservoir {
			if len(v.reservoirs[idx]) == 0 {
				v.nonEmpty = append(v.nonEmpty, idx)
			}
			v.reservoirs[idx] = append(v.reservoirs[idx], val)
		} else if j := rng.Int63n(v.counts[idx]); j < int64(reservoir) {
			v.reservoirs[idx][j] = val
		}
	}
	return v, nil
}

// Space returns the aggregate space the view was built for.
func (v *View) Space() *olap.Space { return v.space }

// Count returns the exact row count of aggregate a (a by-product of the
// build scan).
func (v *View) Count(a int) int64 { return v.counts[a] }

// SampleSize returns the reservoir fill of aggregate a.
func (v *View) SampleSize(a int) int { return len(v.reservoirs[a]) }

// NonEmpty returns the number of aggregates with data.
func (v *View) NonEmpty() int { return len(v.nonEmpty) }

// PickAggregate implements Estimator: averages need a non-empty reservoir;
// counts and sums can use any aggregate.
func (v *View) PickAggregate(rng *rand.Rand) (int, bool) {
	if v.space.Query().Fct == olap.Avg {
		if len(v.nonEmpty) == 0 {
			return 0, false
		}
		return v.nonEmpty[rng.Intn(len(v.nonEmpty))], true
	}
	if v.space.Size() == 0 {
		return 0, false
	}
	return rng.Intn(v.space.Size()), true
}

// Estimate implements Estimator. Counts are exact; averages use the
// reservoir mean; sums combine both.
func (v *View) Estimate(a int, rng *rand.Rand) (float64, bool) {
	switch v.space.Query().Fct {
	case olap.Count:
		return float64(v.counts[a]), true
	case olap.Sum:
		if len(v.reservoirs[a]) == 0 {
			return 0, true
		}
		return float64(v.counts[a]) * stats.Mean(v.reservoirs[a]), true
	case olap.Avg:
		if len(v.reservoirs[a]) == 0 {
			return 0, false
		}
		return stats.Mean(v.reservoirs[a]), true
	default:
		return 0, false
	}
}

// GrandEstimate estimates the whole-scope aggregate value from the view.
func (v *View) GrandEstimate() (float64, bool) {
	var count int64
	var weighted float64
	var sampled int64
	for a := range v.counts {
		count += v.counts[a]
		if len(v.reservoirs[a]) > 0 {
			weighted += float64(v.counts[a]) * stats.Mean(v.reservoirs[a])
			sampled += v.counts[a]
		}
	}
	switch v.space.Query().Fct {
	case olap.Count:
		return float64(count), true
	case olap.Sum:
		return weighted, true
	case olap.Avg:
		if sampled == 0 {
			return 0, false
		}
		return weighted / float64(sampled), true
	default:
		return 0, false
	}
}
