package sampling

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/datagen"
	"repro/internal/olap"
)

func benchSpace(b *testing.B, fct olap.AggFunc) *olap.Space {
	b.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 50000, Seed: 11})
	if err != nil {
		b.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: fct, Col: "cancelled",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	if fct == olap.Count {
		q.Col = ""
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		b.Fatalf("NewSpace: %v", err)
	}
	return s
}

// BenchmarkCacheInsertBatch is the sequential insert reference the merged
// path is measured against.
func BenchmarkCacheInsertBatch(b *testing.B) {
	s := benchSpace(b, olap.Avg)
	c, err := NewCache(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([]int, 256)
	n := s.Dataset().Table().NumRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j] = rng.Intn(n)
		}
		c.InsertBatch(rows)
	}
}

// BenchmarkWorkerAccumulatorFillMerge times one epoch through the
// contention-free path: private classification plus the journal replay.
func BenchmarkWorkerAccumulatorFillMerge(b *testing.B) {
	s := benchSpace(b, olap.Avg)
	c, err := NewCache(s)
	if err != nil {
		b.Fatal(err)
	}
	w, err := NewWorkerAccumulator(s)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := make([]int, 256)
	n := s.Dataset().Table().NumRows()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range rows {
			rows[j] = rng.Intn(n)
		}
		w.InsertBatch(rows)
		c.MergeWorker(w)
		w.Reset()
	}
}

// BenchmarkEpochSamplerEstimate hammers the wait-free read path from
// parallel goroutines (scaled by -cpu) against a partially filled sampler.
// Contention regressions here — a reintroduced read lock — show up as
// ns/op exploding with the -cpu value.
func BenchmarkEpochSamplerEstimate(b *testing.B) {
	s := benchSpace(b, olap.Avg)
	es, err := NewEpochSampler(s, rand.New(rand.NewSource(7)), 4, 512)
	if err != nil {
		b.Fatal(err)
	}
	es.Start()
	defer es.Stop()
	for es.NrRead() < 4096 {
		runtime.Gosched()
	}
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if agg, ok := es.PickAggregate(rng); ok {
				es.Estimate(agg, rng)
			}
		}
	})
}

// BenchmarkShardedSamplerEstimate is the locked-read predecessor, kept as
// the contention baseline for the epoch sampler's wait-free reads.
func BenchmarkShardedSamplerEstimate(b *testing.B) {
	s := benchSpace(b, olap.Avg)
	sh, err := NewShardedSampler(s, rand.New(rand.NewSource(7)), 4, 512)
	if err != nil {
		b.Fatal(err)
	}
	sh.Start()
	defer sh.Stop()
	for sh.NrRead() < 4096 {
		runtime.Gosched()
	}
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		for pb.Next() {
			if agg, ok := sh.PickAggregate(rng); ok {
				sh.Estimate(agg, rng)
			}
		}
	})
}

// BenchmarkEpochSamplerDrain measures full-table ingest throughput
// (rows/s) through the epoch path; workers match the -cpu value.
func BenchmarkEpochSamplerDrain(b *testing.B) {
	s := benchSpace(b, olap.Avg)
	n := s.Dataset().Table().NumRows()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		es, err := NewEpochSampler(s, rand.New(rand.NewSource(int64(i))), workers, 512)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		es.Start()
		<-es.Done()
		es.Stop()
	}
	b.SetBytes(int64(n) * 8)
}
