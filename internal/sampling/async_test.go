package sampling

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/olap"
)

func TestAsyncSamplerFillsInBackground(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(1))
	a, err := NewAsyncSampler(s, rng, 128)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	a.Start()
	defer a.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for a.NrRead() < 5000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.NrRead() < 5000 {
		t.Fatalf("background scan too slow: %d rows", a.NrRead())
	}
	// Estimates available while scanning.
	agg, ok := a.PickAggregate(rng)
	if !ok {
		t.Fatal("no eligible aggregate")
	}
	if _, ok := a.Estimate(agg, rng); !ok {
		t.Fatal("estimate unavailable")
	}
	if _, ok := a.GrandEstimate(); !ok {
		t.Fatal("grand estimate unavailable")
	}
}

func TestAsyncSamplerDrainsTable(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(2))
	a, err := NewAsyncSampler(s, rng, 4096)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	a.Start()
	n := int64(s.Dataset().Table().NumRows())
	deadline := time.Now().Add(10 * time.Second)
	for a.NrRead() < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.Stop()
	if a.NrRead() != n {
		t.Fatalf("read %d of %d rows", a.NrRead(), n)
	}
	// With the full table consumed, the grand estimate is exact.
	exact, _ := olap.EvaluateSpace(s)
	got, ok := a.GrandEstimate()
	if !ok {
		t.Fatal("grand estimate unavailable")
	}
	if math.Abs(got-exact.GrandValue()) > 1e-12 {
		t.Errorf("grand = %v, exact %v", got, exact.GrandValue())
	}
}

func TestAsyncSamplerStopIsIdempotent(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	rng := rand.New(rand.NewSource(3))
	a, err := NewAsyncSampler(s, rng, 64)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	// Stop before start: no deadlock.
	a.Stop()
	a.Stop()
	// Start after stop is a no-op scan (channel already closed).
	a.Start()
	a.Stop()
}

func TestAsyncSamplerConcurrentReads(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	a, err := NewAsyncSampler(s, rand.New(rand.NewSource(4)), 64)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	a.Start()
	defer a.Stop()
	done := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			if agg, ok := a.PickAggregate(rng); ok {
				a.Estimate(agg, rng)
			}
			a.GrandEstimate()
		}
		close(done)
	}()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		a.NrRead()
		if agg, ok := a.PickAggregate(rng); ok {
			a.Estimate(agg, rng)
		}
	}
	<-done
}

func TestAsyncSamplerPooledInterval(t *testing.T) {
	s := flightsSpace(t, olap.Avg)
	a, err := NewAsyncSampler(s, rand.New(rand.NewSource(7)), 1024)
	if err != nil {
		t.Fatalf("NewAsyncSampler: %v", err)
	}
	a.Start()
	defer a.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for a.NrRead() < 2000 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	all := make([]int, s.Size())
	for i := range all {
		all[i] = i
	}
	if _, ok := a.PooledConfidenceInterval(all, 0.95); !ok {
		t.Error("pooled interval unavailable after 2000 rows")
	}
}
