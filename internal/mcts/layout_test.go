package mcts

import (
	"math/rand"
	"testing"
	"unsafe"
)

func newTestRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TestNodeLayout pins the false-sharing contract of the Node struct: the
// two per-round hot words (Visits, Reward) occupy the head of their own
// 64-byte cache line, all cold fields start on the next line, and the
// struct size is a whole number of lines so slab-allocated siblings never
// overlap hot lines. If a toolchain change resizes a field (sync.Mutex,
// say), this fails loudly and the pads need re-tuning.
func TestNodeLayout(t *testing.T) {
	const line = 64
	var n Node
	if off := unsafe.Offsetof(n.Visits); off != 0 {
		t.Errorf("Visits at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(n.Reward); off != 8 {
		t.Errorf("Reward at offset %d, want 8", off)
	}
	if off := unsafe.Offsetof(n.Parent); off < line {
		t.Errorf("cold fields start at offset %d, want >= %d (hot line not isolated)", off, line)
	}
	if sz := unsafe.Sizeof(n); sz%line != 0 {
		t.Errorf("Node size %d is not a multiple of %d: slab siblings would share lines", sz, line)
	}
	if sz := unsafe.Sizeof(n); sz > 4*line {
		t.Errorf("Node size %d exceeds 4 cache lines: padding overshot", sz)
	}
}

// TestExpandSlabContiguity verifies expansion carves children out of one
// contiguous slab (the per-expansion arena): consecutive siblings sit
// exactly sizeof(Node) apart.
func TestExpandSlabContiguity(t *testing.T) {
	e := newEnv(t)
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), newTestRng(42))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	kids := tree.Root().Children
	if len(kids) < 2 {
		t.Skip("root has fewer than 2 children")
	}
	stride := unsafe.Sizeof(*kids[0])
	for i := 1; i < len(kids); i++ {
		prev := uintptr(unsafe.Pointer(kids[i-1]))
		cur := uintptr(unsafe.Pointer(kids[i]))
		if cur-prev != stride {
			t.Fatalf("children %d and %d are %d bytes apart, want %d (not slab-allocated)",
				i-1, i, cur-prev, stride)
		}
	}
}
