package mcts

import (
	"math/rand"
	"testing"

	"repro/internal/speech"
)

// TestVisitAccountingInvariant: after any number of samples, a parent's
// visit count equals the sum of its children's visits (every sample path
// traverses from root to a leaf), and accumulated rewards are consistent.
func TestVisitAccountingInvariant(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(21))
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	for i := 0; i < 500; i++ {
		tree.Sample()
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		var childVisits int64
		var childReward float64
		for _, c := range n.Children {
			childVisits += c.Visits
			childReward += c.Reward
		}
		if childVisits != n.Visits {
			t.Fatalf("node visits %d != sum of child visits %d", n.Visits, childVisits)
		}
		if diff := childReward - n.Reward; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("node reward %v != sum of child rewards %v", n.Reward, childReward)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
}

// TestRewardBoundsInvariant: with an evaluator bounded in [0,1], every
// mean reward stays in [0,1].
func TestRewardBoundsInvariant(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(22))
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	for i := 0; i < 300; i++ {
		tree.Sample()
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Visits > 0 {
			m := n.MeanReward()
			if m < 0 || m > 1 {
				t.Fatalf("mean reward %v out of [0,1]", m)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
}

// TestTreeCountMatchesEnumeration: the eagerly expanded tree's node count
// equals 1 (root) + the number of valid speeches reachable by extension —
// cross-validated against a direct recursive enumeration using the same
// generator.
func TestTreeCountMatchesEnumeration(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(23))
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	// Direct enumeration: baselines then refinement chains, seeded with
	// the same rounded scale the tree uses.
	count := 1 // root
	scale := speech.SpeechScale(e.result.GrandValue())
	base := e.gen.BaselineCandidates(scale)
	count += len(base)
	// For each baseline, count valid refinement chains of length 1 and 2.
	for _, b := range base {
		baseLen := len(b.Text())
		first := e.gen.Refinements(nil)
		for _, r1 := range first {
			l1 := baseLen + 1 + len(r1.Text())
			if overLimit(e, l1) {
				continue
			}
			count++
			for _, r2 := range e.gen.Refinements(nil) {
				if r2.SameScope(r1) {
					continue
				}
				l2 := l1 + 1 + len(r2.Text())
				if overLimit(e, l2) {
					continue
				}
				count++
			}
		}
	}
	if tree.NodeCount() != count {
		t.Errorf("tree nodes = %d, enumeration = %d", tree.NodeCount(), count)
	}
}

// overLimit applies the character constraint the tree applies.
func overLimit(e *env, mainLen int) bool {
	max := e.gen.Prefs.MaxCharsEffective()
	return max > 0 && mainLen > max
}
