package mcts

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/belief"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
)

type env struct {
	space  *olap.Space
	gen    *speech.Generator
	model  *belief.Model
	result *olap.Result
}

func newEnv(t testing.TB) *env {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 10000, Seed: 41})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	s, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	r, err := olap.EvaluateSpace(s)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	m, err := belief.NewModel(s, belief.SigmaFromScale(r.GrandValue()))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	// A reduced percent menu keeps test trees small (the full menu is
	// exercised in the core package's integration tests).
	gen := speech.NewGenerator(s, speech.DefaultPrefs(), speech.PercentFormat)
	gen.Percents = []int{50, 100}
	return &env{
		space:  s,
		gen:    gen,
		model:  m,
		result: r,
	}
}

// exactEval scores speeches with exact quality: deterministic ground truth
// for tree-behaviour tests.
func (e *env) exactEval() EvalFunc {
	return func(s *speech.Speech) (float64, bool) {
		return e.model.Quality(s, e.result), true
	}
}

func TestNewTreeValidation(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(1))
	if _, err := NewTree(nil, 1, e.exactEval(), rng); err == nil {
		t.Error("nil generator should fail")
	}
	if _, err := NewTree(e.gen, 1, nil, rng); err == nil {
		t.Error("nil evaluator should fail")
	}
	if _, err := NewTree(e.gen, 1, e.exactEval(), nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestTreeStructure(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(2))
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	root := tree.Root()
	if tree.Speech(root).Preamble == nil {
		t.Error("root should carry the preamble")
	}
	if len(root.Children) == 0 {
		t.Fatal("root should have baseline children")
	}
	for _, c := range root.Children {
		if tree.Speech(c).Baseline == nil {
			t.Error("first level should set baselines")
		}
		if c.Parent != root {
			t.Error("parent link broken")
		}
	}
	// Depth = 1 baseline + MaxFragments refinements.
	wantDepth := 1 + e.gen.Prefs.MaxFragments
	if got := tree.Depth(); got != wantDepth {
		t.Errorf("depth = %d, want %d", got, wantDepth)
	}
	if tree.NodeCount() <= len(root.Children) {
		t.Error("tree should be expanded beyond the first level")
	}
}

func TestTreeRespectsFragmentLimit(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(3))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	var walk func(n *Node)
	walk = func(n *Node) {
		sp := tree.Speech(n)
		if len(sp.Refinements) > e.gen.Prefs.MaxFragments {
			t.Fatalf("node exceeds fragment limit: %q", sp.MainText())
		}
		if !sp.Valid(e.gen.Prefs) && sp.Baseline != nil {
			t.Fatalf("invalid speech in tree: %q", sp.MainText())
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
}

func TestSampleUpdatesPathStatistics(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(4))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	if !tree.Sample() {
		t.Fatal("sample with always-ok evaluator should succeed")
	}
	if tree.Root().Visits != 1 {
		t.Errorf("root visits = %d, want 1", tree.Root().Visits)
	}
	visited := 0
	for _, c := range tree.Root().Children {
		visited += int(c.Visits)
	}
	if visited != 1 {
		t.Errorf("exactly one child should be visited, got %d", visited)
	}
	for i := 0; i < 50; i++ {
		tree.Sample()
	}
	if tree.Root().Visits != 51 {
		t.Errorf("root visits = %d, want 51", tree.Root().Visits)
	}
	if tree.Root().MeanReward() <= 0 {
		t.Error("mean reward should be positive with exact evaluator")
	}
}

func TestSampleSkippedWhenEvalUnavailable(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(5))
	never := func(*speech.Speech) (float64, bool) { return 0, false }
	tree, _ := NewTree(e.gen, e.result.GrandValue(), never, rng)
	if tree.Sample() {
		t.Error("sample should report failure")
	}
	if tree.Root().Visits != 0 {
		t.Error("failed sample must not update statistics")
	}
}

func TestUCTPrioritizesUnvisited(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(6))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	n := len(tree.Root().Children)
	// After exactly n samples every root child has been tried once.
	for i := 0; i < n; i++ {
		tree.Sample()
	}
	for _, c := range tree.Root().Children {
		if c.Visits != 1 {
			t.Fatalf("child visits = %d after %d samples, want 1 each", c.Visits, n)
		}
	}
}

func TestUCTConvergesToBestSpeech(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(7))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	for i := 0; i < 3000; i++ {
		tree.Sample()
	}
	best := tree.BestChild()
	if best == nil {
		t.Fatal("no best child")
	}
	// The best baseline should be near the true grand value.
	grand := e.result.GrandValue()
	got := tree.Speech(best).Baseline.Value
	if math.Abs(got-grand) > grand {
		t.Errorf("best baseline %v too far from grand value %v", got, grand)
	}
	// And its exact quality should be at least that of every sibling.
	bestQ := e.model.Quality(tree.Speech(best), e.result)
	for _, c := range tree.Root().Children {
		q := e.model.Quality(tree.Speech(c), e.result)
		// Allow near-ties: sampled mean rewards cannot separate speeches
		// whose exact qualities differ by under two percent.
		if q > bestQ*1.02 && c.Visits > 50 {
			t.Errorf("well-visited sibling %v (q=%v) beats chosen %v (q=%v)",
				tree.Speech(c).Baseline.Value, q, got, bestQ)
		}
	}
}

func TestAdvanceKeepsStatistics(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(8))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	for i := 0; i < 200; i++ {
		tree.Sample()
	}
	best := tree.BestChild()
	visits := best.Visits
	if visits == 0 {
		t.Fatal("best child should have visits")
	}
	tree.Advance(best)
	if tree.Root() != best {
		t.Error("root should be the advanced child")
	}
	if tree.Root().Visits != visits {
		t.Error("advance must keep statistics")
	}
	// Sampling continues below the new root.
	before := tree.Root().Visits
	tree.Sample()
	if tree.Root().Visits != before+1 {
		t.Error("sampling below the new root should work")
	}
}

func TestAdvancePanicsOnForeignNode(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(9))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.Advance(&Node{})
}

func TestBestChildOnLeafRoot(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(10))
	tree, _ := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rng)
	// Descend to a leaf.
	for tree.BestChild() != nil {
		tree.Sample()
		tree.Advance(tree.BestChild())
	}
	if !tree.Root().IsLeaf() {
		t.Error("descent should end at a leaf")
	}
	if tree.BestChild() != nil {
		t.Error("leaf root has no best child")
	}
}

func TestLazyExpansionUnderNodeCap(t *testing.T) {
	e := newEnv(t)
	rng := rand.New(rand.NewSource(11))
	gen := speech.NewGenerator(e.space, speech.DefaultPrefs(), speech.PercentFormat)
	tr, err := NewTree(gen, e.result.GrandValue(), e.exactEval(), rng)
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	full := tr.NodeCount()

	capped, err := NewTreeWithCap(gen, e.result.GrandValue(), e.exactEval(), rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	if capped.NodeCount() >= full {
		t.Errorf("capped tree (%d nodes) should be smaller than full tree (%d)",
			capped.NodeCount(), full)
	}
	// Sampling still works and grows the tree lazily.
	before := capped.NodeCount()
	for i := 0; i < 200; i++ {
		capped.Sample()
	}
	if capped.NodeCount() <= before {
		t.Error("lazy expansion should allocate nodes during sampling")
	}
	if capped.Root().Visits != 200 {
		t.Errorf("root visits = %d, want 200", capped.Root().Visits)
	}
}
