package mcts

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/speech"
)

// SeededEvalFunc is the parallel-safe variant of EvalFunc: the sampler
// passes each worker's private RNG, so implementations draw randomness
// from the argument instead of shared state.
type SeededEvalFunc func(s *speech.Speech, rng *rand.Rand) (reward float64, ok bool)

// SampleParallelBatch performs up to rounds sampling rounds spread over
// the given number of worker goroutines, using virtual loss: each worker
// increments Visits along its descent path *before* evaluating, so
// concurrent descents see in-flight rounds as already-taken losses and
// spread across the tree instead of piling onto one leaf. Rewards are
// backed up atomically; rounds whose evaluation produces no reward revert
// their visit increments, so after the batch the statistics are exactly
// those of the reward-producing rounds.
//
// workers <= 1 delegates to the sequential SampleBatch before consuming
// any RNG state, so a single-worker batch is byte-identical to the
// sequential planner. Worker RNGs are split deterministically from the
// tree's RNG: a fixed seed gives a reproducible set of worker streams
// (though the interleaving of rounds remains scheduling-dependent).
//
// It returns the number of reward-producing rounds and ctx.Err() when
// cancellation cut the batch short.
func (t *Tree) SampleParallelBatch(ctx context.Context, rounds, workers int) (int, error) {
	if workers <= 1 || rounds <= 1 {
		return t.SampleBatch(ctx, rounds)
	}
	if workers > rounds {
		workers = rounds
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = t.rng.Int63()
	}
	var remaining atomic.Int64
	remaining.Store(int64(rounds))
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var path []*Node
			for {
				select {
				case <-ctx.Done():
					return
				default:
				}
				if remaining.Add(-1) < 0 {
					return
				}
				var ok bool
				path, ok = t.sampleParallel(rng, path)
				if ok {
					done.Add(1)
				}
			}
		}(seeds[w])
	}
	wg.Wait()
	return int(done.Load()), ctx.Err()
}

// sampleParallel is one parallel MCTS round. path is the worker's pooled
// descent scratch (returned for reuse; nil allocates).
func (t *Tree) sampleParallel(rng *rand.Rand, path []*Node) ([]*Node, bool) {
	if t.DisablePathPooling {
		path = nil
	}
	n := t.root
	path = append(path[:0], n)
	atomic.AddInt64(&n.Visits, 1) // virtual loss
	for {
		if !n.expanded.Load() {
			t.expand(n)
		}
		if n.IsLeaf() {
			break
		}
		n = t.maxUCTChildAtomic(n, rng)
		atomic.AddInt64(&n.Visits, 1) // virtual loss
		path = append(path, n)
	}
	r, ok := t.evalParallel(t.Speech(n), rng)
	if !ok {
		// No reward: revert the virtual losses so failed rounds leave no
		// trace, matching the sequential sampler's "update nothing".
		for _, p := range path {
			atomic.AddInt64(&p.Visits, -1)
		}
		return path, false
	}
	for _, p := range path {
		atomicAddFloat64(&p.Reward, r)
	}
	return path, true
}

// evalParallel scores a leaf speech from a worker: the seeded evaluator
// when available, else the sequential evaluator behind a mutex.
func (t *Tree) evalParallel(sp *speech.Speech, rng *rand.Rand) (float64, bool) {
	if t.SeededEval != nil {
		return t.SeededEval(sp, rng)
	}
	t.evalMu.Lock()
	defer t.evalMu.Unlock()
	return t.eval(sp)
}

// maxUCTChildAtomic is maxUCTChild with atomic statistics reads and no
// per-call allocation: unvisited children are picked uniformly by
// reservoir sampling; a child whose visits drop to zero mid-scan (a
// concurrent failed round reverting its virtual loss) is taken
// immediately, the moral equivalent of its +Inf UCT score.
func (t *Tree) maxUCTChildAtomic(n *Node, rng *rand.Rand) *Node {
	if t.UniformPolicy {
		return n.Children[rng.Intn(len(n.Children))]
	}
	var pick *Node
	unvisited := 0
	for _, c := range n.Children {
		if atomic.LoadInt64(&c.Visits) == 0 {
			unvisited++
			if rng.Intn(unvisited) == 0 {
				pick = c
			}
		}
	}
	if pick != nil {
		return pick
	}
	logN := math.Log(float64(atomic.LoadInt64(&n.Visits)))
	var best *Node
	bestScore := math.Inf(-1)
	for _, c := range n.Children {
		v := atomic.LoadInt64(&c.Visits)
		if v == 0 {
			return c
		}
		score := atomicLoadFloat64(&c.Reward)/float64(v) + math.Sqrt(2*logN/float64(v))
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	return best
}

// atomicAddFloat64 accumulates delta into *addr with a CAS loop; Go's
// sync/atomic has no float64 add, and rewards back up from every worker.
func atomicAddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, next) {
			return
		}
	}
}

// atomicLoadFloat64 reads *addr atomically.
func atomicLoadFloat64(addr *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(addr))))
}
