package mcts

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/speech"
)

// SeededEvalFunc is the parallel-safe variant of EvalFunc: the sampler
// passes each worker's private RNG, so implementations draw randomness
// from the argument instead of shared state.
type SeededEvalFunc func(s *speech.Speech, rng *rand.Rand) (reward float64, ok bool)

// roundChunk is the number of rounds a worker claims from the shared
// counter at a time. Per-round claims made the remaining-counter cache
// line the single hottest word in a batch (every worker XADDs it every
// round); chunked claims cut that traffic by the chunk factor while
// keeping the tail short enough that workers finish a batch together.
const roundChunk = 16

// rootDelta batches a worker's root statistics. Every descent passes
// through the root, so per-round atomic updates of root.Visits/Reward
// made its cache line a global contention point — unlike deeper nodes,
// whose traffic spreads across the tree. Root visits are only read as the
// logN numerator for its children's UCT scores, which tolerates
// chunk-bounded staleness; deltas flush at every chunk boundary and at
// worker exit, so batch-final statistics are exact.
type rootDelta struct {
	visits int64
	reward float64
}

// SampleParallelBatch performs up to rounds sampling rounds spread over
// the given number of worker goroutines, using virtual loss: each worker
// increments Visits along its descent path *before* evaluating, so
// concurrent descents see in-flight rounds as already-taken losses and
// spread across the tree instead of piling onto one leaf. Rewards are
// backed up atomically; rounds whose evaluation produces no reward revert
// their visit increments, so after the batch the statistics are exactly
// those of the reward-producing rounds.
//
// workers <= 1 delegates to the sequential SampleBatch before consuming
// any RNG state, so a single-worker batch is byte-identical to the
// sequential planner. Worker RNGs are split deterministically from the
// tree's RNG: a fixed seed gives a reproducible set of worker streams
// (though the interleaving of rounds remains scheduling-dependent).
//
// It returns the number of reward-producing rounds and ctx.Err() when
// cancellation cut the batch short.
func (t *Tree) SampleParallelBatch(ctx context.Context, rounds, workers int) (int, error) {
	if workers <= 1 || rounds <= 1 {
		return t.SampleBatch(ctx, rounds)
	}
	if workers > rounds {
		workers = rounds
	}
	seeds := make([]int64, workers)
	for i := range seeds {
		seeds[i] = t.rng.Int63()
	}
	var remaining atomic.Int64
	remaining.Store(int64(rounds))
	// Per-worker done counts land in a results slot after wg.Wait()'s
	// happens-before edge — no shared counter on the round hot path.
	done := make([]int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64, out *int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			eval := t.SeededEval
			if t.SeededEvalFactory != nil {
				eval = t.SeededEvalFactory()
			}
			var path []*Node
			var root rootDelta
			defer t.flushRoot(&root)
			var ok bool
			for {
				take := claimRounds(&remaining)
				if take == 0 {
					return
				}
				for i := 0; i < take; i++ {
					select {
					case <-ctx.Done():
						return
					default:
					}
					path, ok = t.sampleParallel(rng, eval, path, &root)
					if ok {
						*out++
					}
				}
				t.flushRoot(&root)
			}
		}(seeds[w], &done[w])
	}
	wg.Wait()
	var total int64
	for _, d := range done {
		total += d
	}
	return int(total), ctx.Err()
}

// claimRounds takes up to roundChunk rounds from the shared counter,
// returning 0 once the batch is exhausted. Overdrafts from racing workers
// push the counter negative; the partial-tail math hands out exactly the
// requested total across all claims.
func claimRounds(remaining *atomic.Int64) int {
	r := remaining.Add(-roundChunk)
	if r <= -roundChunk {
		return 0
	}
	if r < 0 {
		return roundChunk + int(r)
	}
	return roundChunk
}

// flushRoot publishes a worker's batched root statistics.
func (t *Tree) flushRoot(d *rootDelta) {
	if d.visits != 0 {
		atomic.AddInt64(&t.root.Visits, d.visits)
		d.visits = 0
	}
	if d.reward != 0 {
		atomicAddFloat64(&t.root.Reward, d.reward)
		d.reward = 0
	}
}

// sampleParallel is one parallel MCTS round. path is the worker's pooled
// descent scratch (returned for reuse; nil allocates); root batches the
// worker's root-statistics updates.
func (t *Tree) sampleParallel(rng *rand.Rand, eval SeededEvalFunc, path []*Node, root *rootDelta) ([]*Node, bool) {
	if t.DisablePathPooling {
		path = nil
	}
	n := t.root
	path = append(path[:0], n)
	// The root's virtual loss stays worker-local (root.visits): the root is
	// on every path, so a shared increment here would serialize all workers
	// on one cache line, and the root's own visit count steers nothing —
	// descent *from* the root only reads it as its children's logN.
	for {
		if !n.expanded.Load() {
			t.expand(n)
		}
		if n.IsLeaf() {
			break
		}
		var rootExtra int64
		if n == t.root {
			rootExtra = root.visits
		}
		n = t.maxUCTChildAtomic(n, rng, rootExtra)
		atomic.AddInt64(&n.Visits, 1) // virtual loss
		path = append(path, n)
	}
	r, ok := t.evalParallel(eval, t.Speech(n), rng)
	if !ok {
		// No reward: revert the virtual losses so failed rounds leave no
		// trace, matching the sequential sampler's "update nothing". The
		// root contributed no shared increment, so path[0] is skipped.
		for _, p := range path[1:] {
			atomic.AddInt64(&p.Visits, -1)
		}
		return path, false
	}
	root.visits++
	root.reward += r
	for _, p := range path[1:] {
		atomicAddFloat64(&p.Reward, r)
	}
	return path, true
}

// evalParallel scores a leaf speech from a worker: the worker's seeded
// evaluator when available, else the sequential evaluator behind a mutex.
func (t *Tree) evalParallel(eval SeededEvalFunc, sp *speech.Speech, rng *rand.Rand) (float64, bool) {
	if eval != nil {
		return eval(sp, rng)
	}
	t.evalMu.Lock()
	defer t.evalMu.Unlock()
	return t.eval(sp)
}

// maxUCTChildAtomic is maxUCTChild with atomic statistics reads and no
// per-call allocation: unvisited children are picked uniformly by
// reservoir sampling; a child whose visits drop to zero mid-scan (a
// concurrent failed round reverting its virtual loss) is taken
// immediately, the moral equivalent of its +Inf UCT score. rootExtra adds
// the calling worker's unflushed root-visit delta when n is the root, and
// the total is clamped to >= 1 so a stale shared count never feeds a
// non-positive value to the logarithm.
func (t *Tree) maxUCTChildAtomic(n *Node, rng *rand.Rand, rootExtra int64) *Node {
	if t.UniformPolicy {
		return n.Children[rng.Intn(len(n.Children))]
	}
	var pick *Node
	unvisited := 0
	for _, c := range n.Children {
		if atomic.LoadInt64(&c.Visits) == 0 {
			unvisited++
			if rng.Intn(unvisited) == 0 {
				pick = c
			}
		}
	}
	if pick != nil {
		return pick
	}
	visits := atomic.LoadInt64(&n.Visits) + rootExtra
	if visits < 1 {
		visits = 1
	}
	logN := math.Log(float64(visits))
	var best *Node
	bestScore := math.Inf(-1)
	for _, c := range n.Children {
		v := atomic.LoadInt64(&c.Visits)
		if v == 0 {
			return c
		}
		score := atomicLoadFloat64(&c.Reward)/float64(v) + math.Sqrt(2*logN/float64(v))
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	return best
}

// atomicAddFloat64 accumulates delta into *addr with a CAS loop; Go's
// sync/atomic has no float64 add, and rewards back up from every worker.
func atomicAddFloat64(addr *float64, delta float64) {
	bits := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(bits)
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if atomic.CompareAndSwapUint64(bits, old, next) {
			return
		}
	}
}

// atomicLoadFloat64 reads *addr atomically.
func atomicLoadFloat64(addr *float64) float64 {
	return math.Float64frombits(atomic.LoadUint64((*uint64)(unsafe.Pointer(addr))))
}
