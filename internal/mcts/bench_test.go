package mcts

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/speech"
)

// seededExactEval wraps the deterministic exact-quality evaluator in the
// parallel-safe seeded signature; Model.Quality only reads immutable state
// after generator prewarm, so workers share it without locks.
func (e *env) seededExactEval() SeededEvalFunc {
	return func(s *speech.Speech, _ *rand.Rand) (float64, bool) {
		return e.model.Quality(s, e.result), true
	}
}

// BenchmarkSampleSequential is the single-thread UCT baseline.
func BenchmarkSampleSequential(b *testing.B) {
	e := newEnv(b)
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := tree.SampleBatch(context.Background(), b.N); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSampleParallelBatch runs the virtual-loss parallel sampler with
// as many workers as the -cpu value grants; ns/op falling with -cpu is the
// scaling evidence, ns/op rising is a contention regression.
func BenchmarkSampleParallelBatch(b *testing.B) {
	e := newEnv(b)
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	tree.SeededEval = e.seededExactEval()
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := tree.SampleParallelBatch(context.Background(), b.N, workers); err != nil {
		b.Fatal(err)
	}
}
