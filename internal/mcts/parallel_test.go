package mcts

import (
	"context"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/speech"
)

// TestParallelOneWorkerGolden is the fixed-seed golden proof that one
// parallel worker reproduces the sequential planner byte for byte: same
// visit counts and bit-identical rewards on every node.
func TestParallelOneWorkerGolden(t *testing.T) {
	const rounds = 400
	e1, e2 := newEnv(t), newEnv(t)
	seq, err := NewTree(e1.gen, e1.result.GrandValue(), e1.exactEval(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	par, err := NewTree(e2.gen, e2.result.GrandValue(), e2.exactEval(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	ctx := context.Background()
	doneSeq, err1 := seq.SampleBatch(ctx, rounds)
	donePar, err2 := par.SampleParallelBatch(ctx, rounds, 1)
	if err1 != nil || err2 != nil {
		t.Fatalf("batch errors: %v, %v", err1, err2)
	}
	if doneSeq != donePar {
		t.Fatalf("done rounds: sequential %d, one-worker parallel %d", doneSeq, donePar)
	}
	var walk func(a, b *Node, path string)
	walk = func(a, b *Node, path string) {
		if a.Visits != b.Visits {
			t.Fatalf("%s: visits %d != %d", path, a.Visits, b.Visits)
		}
		if math.Float64bits(a.Reward) != math.Float64bits(b.Reward) {
			t.Fatalf("%s: reward %v not bit-identical to %v", path, a.Reward, b.Reward)
		}
		if len(a.Children) != len(b.Children) {
			t.Fatalf("%s: child count %d != %d", path, len(a.Children), len(b.Children))
		}
		for i := range a.Children {
			walk(a.Children[i], b.Children[i], path+"/"+string(rune('0'+i%10)))
		}
	}
	walk(seq.Root(), par.Root(), "root")
}

// checkTreeInvariants walks the tree after a parallel batch: the root's
// visits equal the reward-producing rounds, every expanded non-leaf
// node's visits equal the sum of its children's visits (each visit
// descends), and each node's reward is the sum of its children's rewards
// plus rewards of rounds terminating at the node itself (zero for
// non-leaf nodes, so rewards must telescope within FP reassociation
// tolerance).
func checkTreeInvariants(t *testing.T, tree *Tree, done int) {
	t.Helper()
	if got := tree.Root().Visits; got != int64(done) {
		t.Errorf("root visits = %d, want done rounds %d", got, done)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.IsLeaf() {
			return
		}
		var visits int64
		var reward float64
		for _, c := range n.Children {
			visits += c.Visits
			reward += c.Reward
			if c.Visits < 0 {
				t.Errorf("negative visits %d", c.Visits)
			}
			if c.Visits == 0 && c.Reward != 0 {
				t.Errorf("unvisited child has reward %v", c.Reward)
			}
		}
		if visits != n.Visits {
			t.Errorf("node visits %d != children sum %d", n.Visits, visits)
		}
		if math.Abs(reward-n.Reward) > 1e-6*(1+math.Abs(n.Reward)) {
			t.Errorf("node reward %v != children sum %v", n.Reward, reward)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
}

// TestParallelInvariants runs a 4-worker batch (exercised under -race and
// -cpu 1,4 in CI) and checks visit/reward accounting.
func TestParallelInvariants(t *testing.T) {
	e := newEnv(t)
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	const rounds = 600
	done, err := tree.SampleParallelBatch(context.Background(), rounds, 4)
	if err != nil {
		t.Fatalf("SampleParallelBatch: %v", err)
	}
	if done != rounds {
		t.Fatalf("done = %d, want %d (always-ok evaluator)", done, rounds)
	}
	checkTreeInvariants(t, tree, done)
	if tree.Root().MeanReward() <= 0 {
		t.Error("mean reward should be positive with exact evaluator")
	}
}

// TestParallelSeededEval verifies the seeded evaluator is preferred and
// receives per-worker RNGs.
func TestParallelSeededEval(t *testing.T) {
	e := newEnv(t)
	var seededCalls, plainCalls atomic.Int64
	plain := func(s *speech.Speech) (float64, bool) {
		plainCalls.Add(1)
		return e.model.Quality(s, e.result), true
	}
	tree, err := NewTree(e.gen, e.result.GrandValue(), plain, rand.New(rand.NewSource(14)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	tree.SeededEval = func(s *speech.Speech, rng *rand.Rand) (float64, bool) {
		if rng == nil {
			t.Error("seeded eval should receive a worker RNG")
		}
		seededCalls.Add(1)
		return e.model.Quality(s, e.result), true
	}
	const rounds = 200
	done, err := tree.SampleParallelBatch(context.Background(), rounds, 3)
	if err != nil {
		t.Fatalf("SampleParallelBatch: %v", err)
	}
	if done != rounds || seededCalls.Load() != rounds {
		t.Errorf("done %d, seeded calls %d, want %d", done, seededCalls.Load(), rounds)
	}
	if plainCalls.Load() != 0 {
		t.Errorf("sequential evaluator called %d times despite SeededEval", plainCalls.Load())
	}
	checkTreeInvariants(t, tree, done)
}

// TestParallelEvalFailureLeavesNoTrace checks the virtual-loss revert: a
// batch whose evaluations never produce rewards must leave every node's
// statistics at zero, exactly like the sequential sampler.
func TestParallelEvalFailureLeavesNoTrace(t *testing.T) {
	e := newEnv(t)
	never := func(*speech.Speech) (float64, bool) { return 0, false }
	tree, err := NewTree(e.gen, e.result.GrandValue(), never, rand.New(rand.NewSource(15)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	done, err := tree.SampleParallelBatch(context.Background(), 300, 4)
	if err != nil {
		t.Fatalf("SampleParallelBatch: %v", err)
	}
	if done != 0 {
		t.Errorf("done = %d, want 0", done)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Visits != 0 || n.Reward != 0 {
			t.Fatalf("node retains statistics after failed rounds: visits %d reward %v",
				n.Visits, n.Reward)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree.Root())
}

// TestParallelCancellation checks that a cancelled context stops the
// batch early and is reported.
func TestParallelCancellation(t *testing.T) {
	e := newEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	tree, err := NewTree(e.gen, e.result.GrandValue(), e.exactEval(), rand.New(rand.NewSource(16)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	tree.SeededEval = func(s *speech.Speech, rng *rand.Rand) (float64, bool) {
		if calls.Add(1) == 20 {
			cancel()
		}
		return e.model.Quality(s, e.result), true
	}
	const rounds = 1 << 20 // would take far too long without cancellation
	done, err := tree.SampleParallelBatch(ctx, rounds, 4)
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if done >= rounds {
		t.Errorf("done = %d, cancellation should cut the batch short", done)
	}
	checkTreeInvariants(t, tree, done)
}

// TestParallelLazyExpansionRace drives many workers through a tightly
// node-capped tree so lazy expansion happens *during* the parallel batch;
// run under -race this is the expansion-guard test.
func TestParallelLazyExpansionRace(t *testing.T) {
	e := newEnv(t)
	tree, err := NewTreeWithCap(e.gen, e.result.GrandValue(), e.exactEval(), rand.New(rand.NewSource(17)), 30)
	if err != nil {
		t.Fatalf("NewTreeWithCap: %v", err)
	}
	before := tree.NodeCount()
	const rounds = 500
	done, err := tree.SampleParallelBatch(context.Background(), rounds, 8)
	if err != nil {
		t.Fatalf("SampleParallelBatch: %v", err)
	}
	if done != rounds {
		t.Errorf("done = %d, want %d", done, rounds)
	}
	if tree.NodeCount() <= before {
		t.Error("lazy expansion should allocate nodes during the parallel batch")
	}
	checkTreeInvariants(t, tree, done)
}

// TestParallelPathPoolingAblation checks the DisablePathPooling knob
// changes allocations only, not behavior.
func TestParallelPathPoolingAblation(t *testing.T) {
	const rounds = 300
	e1, e2 := newEnv(t), newEnv(t)
	pooled, err := NewTree(e1.gen, e1.result.GrandValue(), e1.exactEval(), rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	plain, err := NewTree(e2.gen, e2.result.GrandValue(), e2.exactEval(), rand.New(rand.NewSource(18)))
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	plain.DisablePathPooling = true
	d1, _ := pooled.SampleBatch(context.Background(), rounds)
	d2, _ := plain.SampleBatch(context.Background(), rounds)
	if d1 != d2 {
		t.Fatalf("done rounds differ: %d vs %d", d1, d2)
	}
	if pooled.Root().Visits != plain.Root().Visits ||
		math.Float64bits(pooled.Root().Reward) != math.Float64bits(plain.Root().Reward) {
		t.Error("path pooling must not change sampling behavior")
	}
}
