// Package mcts implements the UCT search tree over speech candidates
// (Algorithm 2 of the paper). Nodes represent partial speeches; sampling
// descends from the root via the UCT formula, evaluates the reached leaf
// speech against a database sample, and backs the reward up the path. In
// line with the paper's unusual design choice, the tree is generated in a
// pre-processing step (the fragment limit bounds its height), with a node
// cap as a safety valve that switches to lazy expansion on first visit.
//
// Nodes store only the fragment they add — a baseline or one refinement —
// and materialize their full speech on demand by walking to the root.
// Cloning speeches per node would dominate tree-construction cost.
package mcts

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/speech"
)

// EvalFunc scores a complete candidate speech against one database sample
// (SpeechDBeval). ok is false when no sample-based evaluation is possible
// yet (e.g. no aggregate has cached rows); such rounds update nothing.
type EvalFunc func(s *speech.Speech) (reward float64, ok bool)

// Node is a search tree node adding one fragment to its parent's speech.
//
// Field order is a deliberate cache layout, verified by TestNodeLayout.
// Visits and Reward are the only words parallel workers write on every
// round (virtual-loss increments during descent, reward CAS on backup);
// they lead the struct followed by padding so the hot 16 bytes own their
// cache line, and a tail pad rounds the struct to a whole number of lines.
// Without the padding, siblings allocated from one expansion slab would
// false-share: worker A bumping child 3's visits would evict the line
// holding child 4's counters from worker B's cache, and the read-mostly
// cold fields (Parent, Children — read on every descent by every worker)
// would ride the same invalidated lines.
type Node struct {
	// Visits counts tree samples traversing this node.
	Visits int64
	// Reward accumulates sampled rewards over those visits.
	Reward float64
	_      [48]byte // rest of the hot cache line; see TestNodeLayout

	// Parent is nil for the root.
	Parent *Node
	// Children are the valid one-fragment extensions.
	Children []*Node
	// baseline is set on first-level nodes.
	baseline *speech.Baseline
	// ref is set on refinement nodes.
	ref *speech.Refinement
	// depth counts refinements on the path (0 for root and baselines).
	depth int
	// mainLen is the running MainText length for O(1) validity checks.
	mainLen int

	// expanded flips to true only after Children is fully built, so a
	// lock-free load that observes true also observes the children
	// (release/acquire via the atomic). mu serializes the build itself
	// when parallel workers race to lazily expand the same node.
	expanded atomic.Bool
	mu       sync.Mutex
	// speechMemo memoizes the materialized speech once requested; atomic
	// so parallel workers can share it. A lost race rebuilds an identical
	// speech — benign.
	speechMemo atomic.Pointer[speech.Speech]
	_          [40]byte // round the struct up to a multiple of 64 bytes
}

// IsLeaf reports whether the node has no children. Before expansion a node
// is treated as a leaf only if it is terminal (no valid extensions).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// MeanReward returns the node's average sampled reward (0 when unvisited).
func (n *Node) MeanReward() float64 {
	if n.Visits == 0 {
		return 0
	}
	return n.Reward / float64(n.Visits)
}

// Refinement returns the refinement fragment this node adds (nil for the
// root and baseline nodes).
func (n *Node) Refinement() *speech.Refinement { return n.ref }

// Tree is the speech search tree with its generator and evaluator.
type Tree struct {
	root     *Node
	preamble *speech.Preamble
	gen      *speech.Generator
	eval     EvalFunc
	rng      *rand.Rand
	scale    float64
	// MaxNodes caps eager pre-expansion; deeper nodes expand lazily on
	// first visit.
	MaxNodes int
	// UniformPolicy replaces the UCT child selection with uniform random
	// picks. It exists for the ablation benchmarks quantifying what the
	// exploration/exploitation balance buys.
	UniformPolicy bool
	// SeededEval, when set, is used by SampleParallelBatch instead of the
	// sequential evaluator: each worker passes its own RNG, so evaluation
	// needs no shared mutable state. When nil, parallel workers serialize
	// calls to the sequential evaluator behind evalMu.
	SeededEval SeededEvalFunc
	// SeededEvalFactory, when set, takes precedence over SeededEval in
	// SampleParallelBatch: each worker calls it once at batch start and
	// evaluates through its private instance for the whole batch. It lets
	// evaluators keep per-worker mutable scratch (e.g. a belief reward
	// kernel with hoisted constants) without any cross-worker sharing.
	SeededEvalFactory func() SeededEvalFunc
	// DisablePathPooling turns off reuse of the per-round descent path
	// slice (and per-worker scratch in the parallel sampler). It exists
	// for the allocs/round ablation in the planner benchmark.
	DisablePathPooling bool

	nodeCount atomic.Int64
	// pathScratch is the pooled descent path of the sequential Sample.
	pathScratch []*Node
	evalMu      sync.Mutex
}

// DefaultMaxNodes bounds eager tree construction. The paper's queries stay
// far below it; the cap protects against pathological member counts.
const DefaultMaxNodes = 200000

// NewTree builds the search tree for the generator's query. scale is the
// value scale that seeds baseline candidates (an early grand estimate, or
// the exact grand value for the optimal baseline). The tree is expanded
// eagerly up to DefaultMaxNodes; use NewTreeWithCap to bound it tighter.
func NewTree(gen *speech.Generator, scale float64, eval EvalFunc, rng *rand.Rand) (*Tree, error) {
	return NewTreeWithCap(gen, scale, eval, rng, DefaultMaxNodes)
}

// NewTreeWithCap is NewTree with an explicit eager-expansion node cap
// (maxNodes <= 0 selects DefaultMaxNodes). Nodes beyond the cap expand
// lazily when sampling first reaches them.
func NewTreeWithCap(gen *speech.Generator, scale float64, eval EvalFunc, rng *rand.Rand, maxNodes int) (*Tree, error) {
	if gen == nil || eval == nil || rng == nil {
		return nil, errors.New("mcts: generator, evaluator and rng are required")
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	t := &Tree{
		root:     &Node{},
		preamble: gen.NewPreamble(),
		gen:      gen,
		eval:     eval,
		rng:      rng,
		scale:    scale,
		MaxNodes: maxNodes,
	}
	t.nodeCount.Store(1)
	// Prewarm the generator menu and the per-refinement text memos now:
	// candidate refinements are shared across the whole tree, and lazy
	// expansion during a parallel batch must never be the first caller of
	// an unsynchronized memoization.
	for _, r := range gen.Refinements(nil) {
		r.Text()
	}
	t.preamble.Text()
	t.expand(t.root)
	return t, nil
}

// Root returns the current root node.
func (t *Tree) Root() *Node { return t.root }

// NodeCount returns the number of allocated nodes.
func (t *Tree) NodeCount() int { return int(t.nodeCount.Load()) }

// Speech materializes the speech represented by node n (which must belong
// to this tree): the preamble, the path's baseline, and its refinements in
// order. The result is memoized on the node.
func (t *Tree) Speech(n *Node) *speech.Speech {
	if sp := n.speechMemo.Load(); sp != nil {
		return sp
	}
	sp := &speech.Speech{Preamble: t.preamble}
	if n.depth > 0 {
		sp.Refinements = make([]*speech.Refinement, n.depth)
	}
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.ref != nil {
			sp.Refinements[cur.depth-1] = cur.ref
		}
		if cur.baseline != nil {
			sp.Baseline = cur.baseline
		}
	}
	n.speechMemo.Store(sp)
	return sp
}

// pathRefinements collects the refinements on the path to n (ordered).
func (n *Node) pathRefinements() []*speech.Refinement {
	if n.depth == 0 {
		return nil
	}
	out := make([]*speech.Refinement, n.depth)
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.ref != nil {
			out[cur.depth-1] = cur.ref
		}
	}
	return out
}

// hasScopeOnPath reports whether any ancestor refinement shares r's scope.
func (n *Node) hasScopeOnPath(r *speech.Refinement) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur.ref != nil && cur.ref.SameScope(r) {
			return true
		}
	}
	return false
}

// expand generates the children of n (ST.EXPAND) and recurses while the
// node budget lasts; past the budget, descendants expand lazily. Validity
// (character and fragment limits, duplicate scopes) is checked with O(k)
// incremental state instead of materializing candidate speeches.
//
// Expansion is safe under concurrent sampling: the per-node mutex
// serializes rival builders (double-checked against the expanded flag),
// children become visible before the flag flips, and nodes past the flag
// are never rebuilt.
func (t *Tree) expand(n *Node) {
	if n.expanded.Load() {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.expanded.Load() {
		return
	}
	prefs := t.gen.Prefs
	maxChars := prefs.MaxCharsEffective()
	// Children are allocated from one contiguous slab per expansion — a
	// per-expansion arena. One allocation instead of one per child, and a
	// UCT scan over the siblings walks memory linearly. The slab may grow
	// (and copy) while it is built; pointers are taken only once it is
	// final, and nothing is published before the expanded flag flips.
	var slab []Node
	if n.baseline == nil && n.Parent == nil {
		cands := t.gen.BaselineCandidates(speech.SpeechScale(t.scale))
		slab = make([]Node, 0, len(cands))
		for _, b := range cands {
			ln := len(b.Text())
			if maxChars > 0 && ln > maxChars {
				continue
			}
			slab = append(slab, Node{Parent: n, baseline: b, mainLen: ln})
		}
	} else if prefs.MaxFragments <= 0 || n.depth < prefs.MaxFragments {
		cands := t.gen.Refinements(n.pathRefinements())
		slab = make([]Node, 0, len(cands))
		for _, r := range cands {
			ln := n.mainLen + 1 + len(r.Text())
			if maxChars > 0 && ln > maxChars {
				continue
			}
			if n.hasScopeOnPath(r) {
				continue
			}
			slab = append(slab, Node{Parent: n, ref: r, depth: n.depth + 1, mainLen: ln})
		}
	}
	var children []*Node
	if len(slab) > 0 {
		children = make([]*Node, len(slab))
		for i := range slab {
			children[i] = &slab[i]
		}
		t.nodeCount.Add(int64(len(slab)))
	}
	n.Children = children
	n.expanded.Store(true)
	if t.nodeCount.Load() >= int64(t.MaxNodes) {
		return
	}
	for _, c := range n.Children {
		t.expand(c)
		if t.nodeCount.Load() >= int64(t.MaxNodes) {
			return
		}
	}
}

// maxUCTChild returns the child to descend into (ST.MAXUCTCHILD):
// unvisited children first (random pick), otherwise the maximizer of the
// UCT upper confidence bound.
func (t *Tree) maxUCTChild(n *Node) *Node {
	if t.UniformPolicy {
		return n.Children[t.rng.Intn(len(n.Children))]
	}
	// Unvisited children are counted and the pick re-scanned by ordinal
	// rather than collected into a slice: one Intn draw either way (the
	// RNG stream is pinned by golden tests), zero allocations per level.
	unvisited := 0
	for _, c := range n.Children {
		if c.Visits == 0 {
			unvisited++
		}
	}
	if unvisited > 0 {
		k := t.rng.Intn(unvisited)
		for _, c := range n.Children {
			if c.Visits == 0 {
				if k == 0 {
					return c
				}
				k--
			}
		}
	}
	logN := math.Log(float64(n.Visits))
	var best *Node
	bestScore := math.Inf(-1)
	for _, c := range n.Children {
		score := c.MeanReward() + math.Sqrt(2*logN/float64(c.Visits))
		if score > bestScore {
			bestScore = score
			best = c
		}
	}
	return best
}

// Sample performs one MCTS round (Algorithm 2's SAMPLE): descend from the
// current root to a leaf via UCT, evaluate the leaf's complete speech
// against a database sample, and update statistics along the path. It
// returns false when the evaluator could not produce a reward (nothing is
// updated then).
func (t *Tree) Sample() bool {
	n := t.root
	// The descent path is pooled across rounds: its length is bounded by
	// the fragment limit, and one slice per round was the planner loop's
	// dominant allocation.
	path := t.pathScratch[:0]
	if t.DisablePathPooling {
		path = nil
	}
	path = append(path, n)
	for {
		if !n.expanded.Load() {
			t.expand(n)
		}
		if n.IsLeaf() {
			break
		}
		n = t.maxUCTChild(n)
		path = append(path, n)
	}
	if !t.DisablePathPooling {
		t.pathScratch = path
	}
	r, ok := t.eval(t.Speech(n))
	if !ok {
		return false
	}
	for _, p := range path {
		p.Visits++
		p.Reward += r
	}
	return true
}

// SampleBatch performs up to n sampling rounds, checking ctx between
// rounds so a planner under a deadline stops mid-batch instead of
// finishing it. It returns the number of rounds that produced a reward and
// ctx.Err() when cancellation cut the batch short (nil otherwise).
func (t *Tree) SampleBatch(ctx context.Context, n int) (int, error) {
	done := 0
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return done, ctx.Err()
		default:
		}
		if t.Sample() {
			done++
		}
	}
	return done, nil
}

// BestChild returns the child of the current root with the highest mean
// reward (Algorithm 1's exploitation-only selection for committing to the
// next sentence), or nil when the root is a leaf. Unvisited children rank
// below any visited child; among equally unvisited children the first is
// returned.
func (t *Tree) BestChild() *Node {
	var best *Node
	bestScore := math.Inf(-1)
	for _, c := range t.root.Children {
		score := math.Inf(-1)
		if c.Visits > 0 {
			score = c.MeanReward()
		}
		if best == nil || score > bestScore {
			best = c
			bestScore = score
		}
	}
	return best
}

// Advance makes child the new root, retaining its subtree statistics so
// planning never restarts from scratch (the paper's root-reuse).
// It panics if child is not a child of the current root.
func (t *Tree) Advance(child *Node) {
	for _, c := range t.root.Children {
		if c == child {
			t.root = child
			return
		}
	}
	panic("mcts: Advance target is not a child of the root")
}

// Depth returns the height of the tree below the current root (leaf speech
// length in fragments relative to the root).
func (t *Tree) Depth() int {
	var walk func(n *Node) int
	walk = func(n *Node) int {
		max := 0
		for _, c := range n.Children {
			if d := walk(c) + 1; d > max {
				max = d
			}
		}
		return max
	}
	return walk(t.root)
}
