package encode

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

func testDataset(t *testing.T) *olap.Dataset {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 10000, Seed: 131})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	return d
}

func testQuery(t *testing.T, d *olap.Dataset) olap.Query {
	t.Helper()
	airport := d.HierarchyByName("start airport")
	return olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		Filters:        []*dimension.Member{airport.FindMember("the North East")},
		GroupBy: []olap.GroupBy{
			{Hierarchy: airport, Level: 2},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
}

func TestQueryRoundTrip(t *testing.T) {
	d := testDataset(t)
	q := testQuery(t, d)
	j := EncodeQuery(q)
	// Through actual JSON bytes.
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Query
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	q2, err := DecodeQuery(d, back)
	if err != nil {
		t.Fatalf("DecodeQuery: %v", err)
	}
	if q2.Fct != q.Fct || q2.Col != q.Col || q2.ColDescription != q.ColDescription {
		t.Error("scalar fields lost")
	}
	if len(q2.Filters) != 1 || q2.Filters[0] != q.Filters[0] {
		t.Error("filter member not re-resolved to the identical member")
	}
	if len(q2.GroupBy) != 2 || q2.GroupBy[0].Hierarchy != q.GroupBy[0].Hierarchy || q2.GroupBy[0].Level != 2 {
		t.Error("group-by lost")
	}
}

func TestDecodeQueryErrors(t *testing.T) {
	d := testDataset(t)
	base := EncodeQuery(testQuery(t, d))

	bad := base
	bad.Fct = "median"
	if _, err := DecodeQuery(d, bad); err == nil {
		t.Error("unknown function should fail")
	}

	bad = base
	bad.Filters = []MemberRef{{Dimension: "nope", Level: 1, Name: "x"}}
	if _, err := DecodeQuery(d, bad); err == nil {
		t.Error("unknown dimension should fail")
	}

	bad = base
	bad.Filters = []MemberRef{{Dimension: "start airport", Level: 1, Name: "Atlantis"}}
	if _, err := DecodeQuery(d, bad); err == nil {
		t.Error("unknown member should fail")
	}

	bad = base
	bad.GroupBy = []GroupByRef{{Dimension: "nope", Level: 1}}
	if _, err := DecodeQuery(d, bad); err == nil {
		t.Error("unknown group-by dimension should fail")
	}

	bad = base
	bad.GroupBy = []GroupByRef{{Dimension: "start airport", Level: 99}}
	if _, err := DecodeQuery(d, bad); err == nil {
		t.Error("invalid level should fail dataset validation")
	}
}

func TestSpeechRoundTripPreservesSemantics(t *testing.T) {
	d := testDataset(t)
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	cfg := core.Config{
		Percents:             []int{50, 100},
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 800,
	}
	out, err := core.NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		t.Fatalf("holistic: %v", err)
	}
	j := EncodeSpeech(out.Speech)
	raw, err := json.Marshal(j)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var backJSON Speech
	if err := json.Unmarshal(raw, &backJSON); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	back, err := DecodeSpeech(d, backJSON)
	if err != nil {
		t.Fatalf("DecodeSpeech: %v", err)
	}
	if back.Text() != out.Speech.Text() {
		t.Errorf("text changed:\n%s\nvs\n%s", back.Text(), out.Speech.Text())
	}
	// Belief semantics survive: the decoded speech scores identically.
	space, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	model, err := belief.NewModel(space, belief.SigmaFromScale(result.GrandValue()))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	origQ := model.Quality(out.Speech, result)
	backQ := model.Quality(back, result)
	if math.Abs(origQ-backQ) > 1e-12 {
		t.Errorf("quality changed: %v vs %v", origQ, backQ)
	}
}

func TestDecodeSpeechErrors(t *testing.T) {
	d := testDataset(t)
	if _, err := DecodeSpeech(d, Speech{Baseline: &Baseline{Format: "hex"}}); err == nil {
		t.Error("unknown format should fail")
	}
	if _, err := DecodeSpeech(d, Speech{Refinements: []Refinement{{Direction: "wobble"}}}); err == nil {
		t.Error("unknown direction should fail")
	}
	if _, err := DecodeSpeech(d, Speech{Refinements: []Refinement{{
		Direction: "increase",
		Preds:     []MemberRef{{Dimension: "start airport", Level: 1, Name: "Atlantis"}},
	}}}); err == nil {
		t.Error("unknown member should fail")
	}
}

func TestEncodeSpeechEmpty(t *testing.T) {
	j := EncodeSpeech(&speech.Speech{})
	if j.Preamble != nil || j.Baseline != nil || len(j.Refinements) != 0 {
		t.Error("empty speech should encode empty")
	}
	d := testDataset(t)
	back, err := DecodeSpeech(d, j)
	if err != nil {
		t.Fatalf("DecodeSpeech: %v", err)
	}
	if back.Text() != "" {
		t.Error("empty round trip should stay empty")
	}
}
