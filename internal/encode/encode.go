// Package encode provides JSON-stable representations of queries and
// speeches. Members are referenced by (dimension, level, name) triples and
// re-resolved against a dataset on decode, so payloads survive process
// boundaries: the web API can return structured speeches, and query logs
// can be replayed.
package encode

import (
	"fmt"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/speech"
)

// MemberRef references a dimension member by position.
type MemberRef struct {
	Dimension string `json:"dimension"`
	Level     int    `json:"level"`
	Name      string `json:"name"`
}

// GroupByRef references a breakdown dimension and level.
type GroupByRef struct {
	Dimension string `json:"dimension"`
	Level     int    `json:"level"`
}

// Query is the JSON form of olap.Query.
type Query struct {
	Fct            string       `json:"fct"`
	Col            string       `json:"col,omitempty"`
	ColDescription string       `json:"colDescription,omitempty"`
	Filters        []MemberRef  `json:"filters,omitempty"`
	GroupBy        []GroupByRef `json:"groupBy"`
}

// memberRef encodes a member.
func memberRef(m *dimension.Member) MemberRef {
	return MemberRef{Dimension: m.Hierarchy().Name, Level: m.Level, Name: m.Name}
}

// resolveMember decodes a member reference against a dataset.
func resolveMember(d *olap.Dataset, ref MemberRef) (*dimension.Member, error) {
	h := d.HierarchyByName(ref.Dimension)
	if h == nil {
		return nil, fmt.Errorf("encode: unknown dimension %q", ref.Dimension)
	}
	for _, m := range h.MembersAt(ref.Level) {
		if m.Name == ref.Name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("encode: no member %q at level %d of %q", ref.Name, ref.Level, ref.Dimension)
}

// EncodeQuery converts a query to its JSON form.
func EncodeQuery(q olap.Query) Query {
	out := Query{
		Fct:            q.Fct.String(),
		Col:            q.Col,
		ColDescription: q.ColDescription,
	}
	for _, f := range q.Filters {
		out.Filters = append(out.Filters, memberRef(f))
	}
	for _, g := range q.GroupBy {
		out.GroupBy = append(out.GroupBy, GroupByRef{Dimension: g.Hierarchy.Name, Level: g.Level})
	}
	return out
}

// DecodeQuery resolves a JSON query against a dataset.
func DecodeQuery(d *olap.Dataset, j Query) (olap.Query, error) {
	q := olap.Query{Col: j.Col, ColDescription: j.ColDescription}
	switch j.Fct {
	case "count":
		q.Fct = olap.Count
	case "sum":
		q.Fct = olap.Sum
	case "average", "avg", "":
		q.Fct = olap.Avg
	default:
		return q, fmt.Errorf("encode: unknown aggregation function %q", j.Fct)
	}
	for _, ref := range j.Filters {
		m, err := resolveMember(d, ref)
		if err != nil {
			return q, err
		}
		q.Filters = append(q.Filters, m)
	}
	for _, g := range j.GroupBy {
		h := d.HierarchyByName(g.Dimension)
		if h == nil {
			return q, fmt.Errorf("encode: unknown dimension %q", g.Dimension)
		}
		q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: h, Level: g.Level})
	}
	if err := d.ValidateQuery(q); err != nil {
		return q, fmt.Errorf("encode: %w", err)
	}
	return q, nil
}

// Refinement is the JSON form of speech.Refinement.
type Refinement struct {
	Direction string      `json:"direction"`
	Percent   int         `json:"percent"`
	Preds     []MemberRef `json:"preds"`
}

// Baseline is the JSON form of speech.Baseline.
type Baseline struct {
	Value   float64 `json:"value"`
	AggName string  `json:"aggName"`
	Format  string  `json:"format"`
}

// Preamble is the JSON form of speech.Preamble.
type Preamble struct {
	ScopePhrases []string `json:"scopePhrases"`
	LevelNames   []string `json:"levelNames,omitempty"`
}

// Speech is the JSON form of speech.Speech.
type Speech struct {
	Preamble    *Preamble    `json:"preamble,omitempty"`
	Baseline    *Baseline    `json:"baseline,omitempty"`
	Refinements []Refinement `json:"refinements,omitempty"`
	Text        string       `json:"text"`
}

// formatName maps a value format to its wire name.
func formatName(f speech.ValueFormat) string { return f.String() }

// parseFormat maps a wire name back to a value format.
func parseFormat(name string) (speech.ValueFormat, error) {
	switch name {
	case "percent":
		return speech.PercentFormat, nil
	case "thousands":
		return speech.ThousandsFormat, nil
	case "plain", "":
		return speech.PlainFormat, nil
	case "count":
		return speech.CountFormat, nil
	default:
		return 0, fmt.Errorf("encode: unknown value format %q", name)
	}
}

// EncodeSpeech converts a speech to its JSON form (text included for
// convenience; structure is authoritative).
func EncodeSpeech(s *speech.Speech) Speech {
	out := Speech{Text: s.Text()}
	if s.Preamble != nil {
		out.Preamble = &Preamble{
			ScopePhrases: s.Preamble.ScopePhrases,
			LevelNames:   s.Preamble.LevelNames,
		}
	}
	if s.Baseline != nil {
		out.Baseline = &Baseline{
			Value:   s.Baseline.Value,
			AggName: s.Baseline.AggName,
			Format:  formatName(s.Baseline.Format),
		}
	}
	for _, r := range s.Refinements {
		jr := Refinement{Direction: r.Dir.String(), Percent: r.Percent}
		for _, p := range r.Preds {
			jr.Preds = append(jr.Preds, memberRef(p))
		}
		out.Refinements = append(out.Refinements, jr)
	}
	return out
}

// DecodeSpeech resolves a JSON speech against a dataset. Refinement scope
// sizes are left zero; the belief model recomputes them on demand.
func DecodeSpeech(d *olap.Dataset, j Speech) (*speech.Speech, error) {
	out := &speech.Speech{}
	if j.Preamble != nil {
		out.Preamble = &speech.Preamble{
			ScopePhrases: j.Preamble.ScopePhrases,
			LevelNames:   j.Preamble.LevelNames,
		}
	}
	if j.Baseline != nil {
		format, err := parseFormat(j.Baseline.Format)
		if err != nil {
			return nil, err
		}
		out.Baseline = &speech.Baseline{
			Value:   j.Baseline.Value,
			AggName: j.Baseline.AggName,
			Format:  format,
		}
	}
	for _, jr := range j.Refinements {
		r := &speech.Refinement{Percent: jr.Percent}
		switch jr.Direction {
		case "increase", "":
			r.Dir = speech.Increase
		case "decrease":
			r.Dir = speech.Decrease
		default:
			return nil, fmt.Errorf("encode: unknown direction %q", jr.Direction)
		}
		for _, ref := range jr.Preds {
			m, err := resolveMember(d, ref)
			if err != nil {
				return nil, err
			}
			r.Preds = append(r.Preds, m)
		}
		out.Refinements = append(out.Refinements, r)
	}
	return out, nil
}
