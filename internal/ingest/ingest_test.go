package ingest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/table"
)

func TestParseSchema(t *testing.T) {
	s, err := ParseSchema("city:string, month:str, cancelled:float, year:int")
	if err != nil {
		t.Fatalf("ParseSchema: %v", err)
	}
	if len(s.Names) != 4 {
		t.Fatalf("fields = %d", len(s.Names))
	}
	want := []table.ColumnType{table.StringType, table.StringType, table.Float64Type, table.Int64Type}
	for i, w := range want {
		if s.Types[i] != w {
			t.Errorf("field %d type = %v, want %v", i, s.Types[i], w)
		}
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, spec := range []string{"", "city", "city:blob", ":string"} {
		if _, err := ParseSchema(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestParseDimSpec(t *testing.T) {
	d, err := ParseDimSpec("name=start airport;column=city;context=flights starting from;root=any airport;def=airport.csv")
	if err != nil {
		t.Fatalf("ParseDimSpec: %v", err)
	}
	if d.Name != "start airport" || d.Column != "city" || d.DefPath != "airport.csv" {
		t.Errorf("parsed = %+v", d)
	}
	if d.Context != "flights starting from" || d.Root != "any airport" {
		t.Errorf("parsed = %+v", d)
	}
	// Defaulted root.
	d, err = ParseDimSpec("name=date;col=month;def=date.csv")
	if err != nil {
		t.Fatalf("ParseDimSpec: %v", err)
	}
	if d.Root != "any date" {
		t.Errorf("default root = %q", d.Root)
	}
}

func TestParseDimSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "name=x", "name=x;column=c", "column=c;def=f.csv",
		"name=x;column=c;def=f.csv;bogus=1", "name=x;column;def=f.csv",
	} {
		if _, err := ParseDimSpec(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
}

func TestLoadEndToEnd(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	defPath := filepath.Join(dir, "region.csv")
	writeFile(t, dataPath, `city,sales
Boston,10
Chicago,20
Boston,30
`)
	writeFile(t, defPath, `region,city
East,Boston
Midwest,Chicago
`)
	schema, err := ParseSchema("city:string,sales:float")
	if err != nil {
		t.Fatalf("schema: %v", err)
	}
	dim, err := ParseDimSpec("name=location;column=city;context=stores in;def=" + defPath)
	if err != nil {
		t.Fatalf("dim: %v", err)
	}
	ds, err := Load("sales", dataPath, schema, []DimSpec{dim})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ds.Table().NumRows() != 3 {
		t.Errorf("rows = %d", ds.Table().NumRows())
	}
	h := ds.HierarchyByName("location")
	if h == nil || h.Depth() != 2 {
		t.Fatal("hierarchy missing or wrong depth")
	}
	if _, err := ds.Measure("sales"); err != nil {
		t.Errorf("measure: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	schema, _ := ParseSchema("city:string,sales:float")
	dataPath := filepath.Join(dir, "data.csv")
	writeFile(t, dataPath, "city,sales\nBoston,1\n")
	// No dimensions.
	if _, err := Load("t", dataPath, schema, nil); err == nil {
		t.Error("no dimensions should fail")
	}
	// Missing data file.
	dim := DimSpec{Name: "loc", Column: "city", DefPath: filepath.Join(dir, "def.csv")}
	writeFile(t, dim.DefPath, "region,city\nEast,Boston\n")
	if _, err := Load("t", filepath.Join(dir, "nope.csv"), schema, []DimSpec{dim}); err == nil {
		t.Error("missing data file should fail")
	}
	// Missing definition file.
	badDim := DimSpec{Name: "loc", Column: "city", DefPath: filepath.Join(dir, "nope.csv")}
	if _, err := Load("t", dataPath, schema, []DimSpec{badDim}); err == nil {
		t.Error("missing definition should fail")
	}
	// Data value absent from the hierarchy.
	writeFile(t, dataPath, "city,sales\nGotham,1\n")
	if _, err := Load("t", dataPath, schema, []DimSpec{dim}); err == nil {
		t.Error("unknown value should fail binding")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}
