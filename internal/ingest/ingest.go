// Package ingest assembles OLAP datasets from user-provided CSV files: a
// data table with a declared schema plus one hierarchy-definition file per
// dimension. It backs cmd/voicequery's custom-data mode, turning the
// reproduction into a tool usable on arbitrary tabular data.
package ingest

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/dimension"
	"repro/internal/olap"
	"repro/internal/table"
)

// ParseSchema parses a compact schema declaration of the form
// "city:string,month:string,cancelled:float" into a table schema.
// Supported types: string, float, int.
func ParseSchema(spec string) (table.Schema, error) {
	var schema table.Schema
	if strings.TrimSpace(spec) == "" {
		return schema, errors.New("ingest: empty schema")
	}
	for _, field := range strings.Split(spec, ",") {
		parts := strings.SplitN(strings.TrimSpace(field), ":", 2)
		if len(parts) != 2 || parts[0] == "" {
			return schema, fmt.Errorf("ingest: malformed schema field %q (want name:type)", field)
		}
		var t table.ColumnType
		switch strings.ToLower(parts[1]) {
		case "string", "str":
			t = table.StringType
		case "float", "float64", "number":
			t = table.Float64Type
		case "int", "int64":
			t = table.Int64Type
		default:
			return schema, fmt.Errorf("ingest: unknown column type %q", parts[1])
		}
		schema.Names = append(schema.Names, parts[0])
		schema.Types = append(schema.Types, t)
	}
	return schema, nil
}

// DimSpec declares one dimension: where its definition file lives and how
// it binds and speaks.
type DimSpec struct {
	// Name is the dimension name ("start airport").
	Name string
	// Column is the data column holding finest-level values.
	Column string
	// Context is the phrase template ("flights starting from").
	Context string
	// Root is the root member's display name ("any airport").
	Root string
	// DefPath is the hierarchy definition CSV path.
	DefPath string
}

// ParseDimSpec parses "name=start airport;column=city;context=flights
// starting from;root=any airport;def=airport.csv". Name, column, and def
// are required; context defaults to empty and root to "any <name>".
func ParseDimSpec(spec string) (DimSpec, error) {
	var d DimSpec
	for _, kv := range strings.Split(spec, ";") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		parts := strings.SplitN(kv, "=", 2)
		if len(parts) != 2 {
			return d, fmt.Errorf("ingest: malformed dimension field %q (want key=value)", kv)
		}
		val := strings.TrimSpace(parts[1])
		switch strings.ToLower(strings.TrimSpace(parts[0])) {
		case "name":
			d.Name = val
		case "column", "col":
			d.Column = val
		case "context", "ctx":
			d.Context = val
		case "root":
			d.Root = val
		case "def", "file", "path":
			d.DefPath = val
		default:
			return d, fmt.Errorf("ingest: unknown dimension key %q", parts[0])
		}
	}
	if d.Name == "" || d.Column == "" || d.DefPath == "" {
		return d, errors.New("ingest: dimension spec needs name=, column= and def=")
	}
	if d.Root == "" {
		d.Root = "any " + d.Name
	}
	return d, nil
}

// Load reads the data CSV and the dimension definitions and binds them
// into a dataset ready for vocalization.
func Load(tableName, dataPath string, schema table.Schema, dims []DimSpec) (*olap.Dataset, error) {
	if len(dims) == 0 {
		return nil, errors.New("ingest: at least one dimension required")
	}
	tab, err := table.ReadCSVFile(tableName, dataPath, schema)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	var hierarchies []*dimension.Hierarchy
	for _, d := range dims {
		h, err := dimension.FromCSVFile(d.Name, d.Column, d.Context, d.Root, d.DefPath)
		if err != nil {
			return nil, fmt.Errorf("ingest: %w", err)
		}
		hierarchies = append(hierarchies, h)
	}
	ds, err := olap.NewDataset(tab, hierarchies...)
	if err != nil {
		return nil, fmt.Errorf("ingest: %w", err)
	}
	return ds, nil
}
