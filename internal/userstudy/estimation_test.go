package userstudy

import (
	"testing"
	"time"

	"repro/internal/belief"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

type estEnv struct {
	dataset *olap.Dataset
	query   olap.Query
	model   *belief.Model
	result  *olap.Result
}

func newEstEnv(t *testing.T) *estEnv {
	t.Helper()
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 30000, Seed: 101})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	q := olap.Query{
		Fct: olap.Avg, Col: "cancelled",
		ColDescription: "average cancellation probability",
		GroupBy: []olap.GroupBy{
			{Hierarchy: d.HierarchyByName("start airport"), Level: 1},
			{Hierarchy: d.HierarchyByName("flight date"), Level: 1},
		},
	}
	space, err := olap.NewSpace(d, q)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	result, err := olap.EvaluateSpace(space)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	model, err := belief.NewModel(space, belief.SigmaFromScale(result.GrandValue()))
	if err != nil {
		t.Fatalf("NewModel: %v", err)
	}
	return &estEnv{dataset: d, query: q, model: model, result: result}
}

func (e *estEnv) vocalize(t *testing.T, v core.Vocalizer) *speech.Speech {
	t.Helper()
	out, err := v.Vocalize()
	if err != nil {
		t.Fatalf("%s: %v", v.Name(), err)
	}
	return out.Speech
}

func estCfg(seed int64) core.Config {
	return core.Config{
		Percents:             []int{50, 100},
		Seed:                 seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 1500,
	}
}

func TestRunEstimationBasics(t *testing.T) {
	e := newEstEnv(t)
	sp := e.vocalize(t, core.NewOptimal(e.dataset, e.query, estCfg(1)))
	res := RunEstimation(e.model, e.result, "optimal", sp, EstimationConfig{Seed: 5})
	if len(res.Users) != 8 {
		t.Fatalf("users = %d, want 8", len(res.Users))
	}
	for _, u := range res.Users {
		if u.AbsError < 0 {
			t.Error("negative absolute error")
		}
		if u.TendencyAccuracy < 0 || u.TendencyAccuracy > 1 {
			t.Errorf("tendency accuracy %v out of range", u.TendencyAccuracy)
		}
	}
	if res.MedianAbsError() <= 0 {
		t.Error("median error should be positive with noise")
	}
}

// TestEstimationRanksApproaches reproduces the Table 6 ordering: optimal
// and holistic speeches yield far smaller user errors than a deliberately
// wrong speech (standing in for the starved unmerged baseline).
func TestEstimationRanksApproaches(t *testing.T) {
	e := newEstEnv(t)
	cfg := EstimationConfig{Seed: 6}

	optSpeech := e.vocalize(t, core.NewOptimal(e.dataset, e.query, estCfg(2)))
	holSpeech := e.vocalize(t, core.NewHolistic(e.dataset, e.query, estCfg(2)))
	opt := RunEstimation(e.model, e.result, "optimal", optSpeech, cfg)
	hol := RunEstimation(e.model, e.result, "holistic", holSpeech, cfg)

	// A wrong baseline mimics the unmerged failure mode in Table 5
	// ("Over ten percent" for a two-percent average).
	wrong := optSpeech.Clone()
	wb := *optSpeech.Baseline
	wb.Value *= 8
	wrong.Baseline = &wb
	unm := RunEstimation(e.model, e.result, "unmerged", wrong, cfg)

	if opt.MedianAbsError() >= unm.MedianAbsError() {
		t.Errorf("optimal error %v should beat wrong-speech error %v",
			opt.MedianAbsError(), unm.MedianAbsError())
	}
	if hol.MedianAbsError() >= unm.MedianAbsError() {
		t.Errorf("holistic error %v should beat wrong-speech error %v",
			hol.MedianAbsError(), unm.MedianAbsError())
	}
	if unm.MeanTendencyAccuracy() > opt.MeanTendencyAccuracy() {
		t.Errorf("wrong speech tendency %v should not beat optimal %v",
			unm.MeanTendencyAccuracy(), opt.MeanTendencyAccuracy())
	}
}

// TestMisreadUsersAreOutliers reproduces the users 1 and 8 phenomenon:
// respondents who hear "increase TO 100 percent" have errors an order of
// magnitude above the rest.
func TestMisreadUsersAreOutliers(t *testing.T) {
	e := newEstEnv(t)
	sp := e.vocalize(t, core.NewOptimal(e.dataset, e.query, estCfg(3)))
	if len(sp.Refinements) == 0 {
		t.Skip("optimal speech has no refinements to misread")
	}
	res := RunEstimation(e.model, e.result, "optimal", sp, EstimationConfig{
		Users: 8, MisreadUsers: 2, Seed: 7,
	})
	var misreadMax, readMax float64
	for _, u := range res.Users {
		if u.Misread && u.AbsError > misreadMax {
			misreadMax = u.AbsError
		}
		if !u.Misread && u.AbsError > readMax {
			readMax = u.AbsError
		}
	}
	if misreadMax <= readMax*3 {
		t.Errorf("misread error %v should dwarf normal error %v", misreadMax, readMax)
	}
	// Median is robust to the two outliers.
	if res.MedianAbsError() > readMax*2 {
		t.Error("median should be robust to misread outliers")
	}
}

func TestEstimationDeterministic(t *testing.T) {
	e := newEstEnv(t)
	sp := e.vocalize(t, core.NewOptimal(e.dataset, e.query, estCfg(4)))
	cfg := EstimationConfig{Seed: 9}
	a := RunEstimation(e.model, e.result, "x", sp, cfg)
	b := RunEstimation(e.model, e.result, "x", sp, cfg)
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("same seed should reproduce user scores")
		}
	}
}

func TestTendencyAccuracy(t *testing.T) {
	if got := tendencyAccuracy([]float64{1, 2, 3}, []float64{10, 20, 30}); got != 1 {
		t.Errorf("perfectly ordered = %v, want 1", got)
	}
	if got := tendencyAccuracy([]float64{3, 2, 1}, []float64{10, 20, 30}); got != 0 {
		t.Errorf("perfectly inverted = %v, want 0", got)
	}
	if got := tendencyAccuracy([]float64{5}, []float64{1}); got != 1 {
		t.Errorf("single field = %v, want 1", got)
	}
}

func TestFormatPercent(t *testing.T) {
	if FormatPercent(0.012) != "1.2" {
		t.Errorf("FormatPercent(0.012) = %q", FormatPercent(0.012))
	}
}
