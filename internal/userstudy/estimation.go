package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/belief"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/stats"
)

// EstimationConfig parameterizes the simulated estimation study (the AMT
// study behind Tables 6 and 14: users listen to a speech and estimate
// every result field).
type EstimationConfig struct {
	// Users is the number of simulated respondents (paper: 8 after
	// removing a duplicate submission).
	Users int
	// MisreadUsers is how many respondents misunderstand relative changes
	// as absolute ("values increase BY 100 percent" heard as "increase TO
	// 100 percent") — the paper attributes users 1 and 8's outliers to
	// exactly this.
	MisreadUsers int
	// NoiseFrac scales per-estimate recall noise relative to the belief
	// model's σ.
	NoiseFrac float64
	// Seed drives the simulation.
	Seed int64
}

// normalize fills defaults matching the paper's study.
func (c EstimationConfig) normalize() EstimationConfig {
	if c.Users <= 0 {
		c.Users = 8
	}
	if c.MisreadUsers < 0 || c.MisreadUsers > c.Users {
		c.MisreadUsers = 0
	}
	if c.NoiseFrac <= 0 {
		c.NoiseFrac = 0.15
	}
	return c
}

// UserScore reports one simulated user's performance for one speech.
type UserScore struct {
	// AbsError is the mean absolute estimation error over all result
	// fields, in the measure's units (multiplied by 100 for probability
	// measures this matches Table 6's percent columns).
	AbsError float64
	// TendencyAccuracy is the fraction of result-field pairs whose
	// relative order the user's estimates preserve (Table 14).
	TendencyAccuracy float64
	// Misread marks users applying the increase-TO misreading.
	Misread bool
}

// EstimationResult reports the study for one speech (one approach).
type EstimationResult struct {
	Approach string
	Users    []UserScore
}

// MedianAbsError returns the median per-user absolute error.
func (r EstimationResult) MedianAbsError() float64 {
	xs := make([]float64, len(r.Users))
	for i, u := range r.Users {
		xs[i] = u.AbsError
	}
	return stats.Median(xs)
}

// MeanTendencyAccuracy averages tendency accuracy over users.
func (r EstimationResult) MeanTendencyAccuracy() float64 {
	var sum float64
	for _, u := range r.Users {
		sum += u.TendencyAccuracy
	}
	if len(r.Users) == 0 {
		return 0
	}
	return sum / float64(len(r.Users))
}

// RunEstimation simulates users estimating every result field after
// hearing sp, scored against the exact result. Respondents form estimates
// from the belief model's means (the pilot study showed users do apply
// those semantics), perturbed by recall noise; misreading users replace
// every refinement's relative change with the absolute value they thought
// they heard.
func RunEstimation(model *belief.Model, result *olap.Result, approach string, sp *speech.Speech, cfg EstimationConfig) EstimationResult {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	space := model.Space()

	actual := make([]float64, 0, space.Size())
	aggs := make([]int, 0, space.Size())
	for a := 0; a < space.Size(); a++ {
		v := result.Value(a)
		if math.IsNaN(v) {
			continue
		}
		actual = append(actual, v)
		aggs = append(aggs, a)
	}

	res := EstimationResult{Approach: approach}
	for u := 0; u < cfg.Users; u++ {
		misread := u < cfg.MisreadUsers
		var absSum float64
		est := make([]float64, len(aggs))
		for i, a := range aggs {
			var mean float64
			if misread {
				mean = misreadMean(model, sp, a)
			} else {
				mean = model.Mean(sp, a)
			}
			noisy := mean + rng.NormFloat64()*cfg.NoiseFrac*model.Sigma()
			if noisy < 0 {
				noisy = 0
			}
			est[i] = noisy
			absSum += math.Abs(noisy - actual[i])
		}
		score := UserScore{
			AbsError:         absSum / float64(len(aggs)),
			TendencyAccuracy: tendencyAccuracy(est, actual),
			Misread:          misread,
		}
		res.Users = append(res.Users, score)
	}
	// The paper's tables list users in submission order; sorting by error
	// keeps the output stable for reporting without changing statistics.
	sort.SliceStable(res.Users, func(i, j int) bool {
		return res.Users[i].Misread && !res.Users[j].Misread
	})
	return res
}

// misreadMean applies the "increase TO x percent" misunderstanding: an
// in-scope aggregate is believed to sit at the absolute percentage rather
// than shifted by it; out-of-scope aggregates keep the baseline.
func misreadMean(model *belief.Model, sp *speech.Speech, agg int) float64 {
	if sp.Baseline == nil {
		return 0
	}
	mean := sp.Baseline.Value
	for _, r := range sp.Refinements {
		if model.Space().InScope(agg, r.Preds) {
			mean = float64(r.Percent) / 100
		}
	}
	return mean
}

// tendencyAccuracy counts correctly ordered pairs following the paper's
// definition: a pair is correct when (e1 < e2 and v1 < v2) or (e1 >= e2
// and v1 >= v2).
func tendencyAccuracy(est, actual []float64) float64 {
	if len(est) < 2 {
		return 1
	}
	correct, total := 0, 0
	for i := 0; i < len(est); i++ {
		for j := i + 1; j < len(est); j++ {
			total++
			if (est[i] < est[j]) == (actual[i] < actual[j]) {
				correct++
			}
		}
	}
	return float64(correct) / float64(total)
}

// FormatPercent renders a probability error as Table 6's percent value.
func FormatPercent(v float64) string {
	return fmt.Sprintf("%.2g", v*100)
}
