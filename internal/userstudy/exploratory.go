package userstudy

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// ExploratoryConfig parameterizes the simulated exploratory-analysis study
// behind Tables 8 and 9: participants analyze a dataset through the web
// interface, switching freely between the two vocalization methods.
type ExploratoryConfig struct {
	// Sessions is the number of simulated participants (paper: 20 per
	// dataset).
	Sessions int
	// MeanQueries is the average number of queries per session (paper
	// logs: 26 on average, up to 125).
	MeanQueries int
	// Seed drives the simulation.
	Seed int64
	// MaxTreeNodes caps the holistic search tree per query to bound
	// session runtime on fine-grained queries.
	MaxTreeNodes int
}

// normalize fills defaults.
func (c ExploratoryConfig) normalize() ExploratoryConfig {
	if c.Sessions <= 0 {
		c.Sessions = 20
	}
	if c.MeanQueries <= 0 {
		c.MeanQueries = 26
	}
	if c.MaxTreeNodes <= 0 {
		c.MaxTreeNodes = 20000
	}
	return c
}

// LengthStats is one row pair of Table 9: average and maximum speech
// length in characters for this approach and the prior baseline.
type LengthStats struct {
	ThisAvg, ThisMax   int
	PriorAvg, PriorMax int
}

// Preference buckets of Table 8, from strong prior preference to strong
// preference for this approach.
const (
	PrefPriorStrong = iota
	PrefPriorSlight
	PrefNeutral
	PrefThisSlight
	PrefThisStrong
	numPrefBuckets
)

// PreferenceCounts counts sessions per preference bucket.
type PreferenceCounts [numPrefBuckets]int

// ExploratoryResult reports one dataset's simulated study.
type ExploratoryResult struct {
	Lengths LengthStats
	Prefs   PreferenceCounts
	Queries int
}

// Preference model: each query contributes a saturating log length ratio
// (a 10x-longer prior readout is painful, a 100x one not 10x more so); the
// session score is the mean contribution plus a per-user taste draw. Users
// citing "a higher degree of detail" as a reason to prefer the baseline
// appear as negative taste.
const (
	prefTasteSigma  = 0.7
	perQueryClamp   = 1.5
	thPriorStrong   = -0.6
	thPriorSlight   = -0.15
	thNeutral       = 0.45
	thThisSlight    = 1.1
	queryFilterProb = 0.3
	deepLevelProb   = 0.35
	extraDimProb    = 0.55
)

// RunExploratory simulates participants issuing random exploration queries
// against the dataset, vocalizing each with both methods, and expressing a
// preference driven by the observed length difference plus personal taste.
func RunExploratory(d *olap.Dataset, col, colDesc string, format speech.ValueFormat, cfg ExploratoryConfig) (ExploratoryResult, error) {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var res ExploratoryResult
	var thisSum, priorSum int

	for sess := 0; sess < cfg.Sessions; sess++ {
		n := 5 + rng.Intn(2*cfg.MeanQueries-5)
		var ratios []float64
		for qi := 0; qi < n; qi++ {
			q := randomQuery(d, col, colDesc, rng)
			thisLen, priorLen, err := vocalizeBoth(d, q, format, rng.Int63(), cfg.MaxTreeNodes)
			if err != nil {
				return res, err
			}
			res.Queries++
			thisSum += thisLen
			priorSum += priorLen
			if thisLen > res.Lengths.ThisMax {
				res.Lengths.ThisMax = thisLen
			}
			if priorLen > res.Lengths.PriorMax {
				res.Lengths.PriorMax = priorLen
			}
			if thisLen > 0 {
				ratios = append(ratios, float64(priorLen)/float64(thisLen))
			}
		}
		var sum float64
		for _, r := range ratios {
			contrib := math.Log(r)
			if contrib > perQueryClamp {
				contrib = perQueryClamp
			} else if contrib < -perQueryClamp {
				contrib = -perQueryClamp
			}
			sum += contrib
		}
		score := rng.NormFloat64() * prefTasteSigma
		if len(ratios) > 0 {
			score += sum / float64(len(ratios))
		}
		res.Prefs[prefBucket(score)]++
	}
	if res.Queries > 0 {
		res.Lengths.ThisAvg = thisSum / res.Queries
		res.Lengths.PriorAvg = priorSum / res.Queries
	}
	return res, nil
}

// prefBucket maps a preference score to a Table 8 bucket.
func prefBucket(score float64) int {
	switch {
	case score < thPriorStrong:
		return PrefPriorStrong
	case score < thPriorSlight:
		return PrefPriorSlight
	case score < thNeutral:
		return PrefNeutral
	case score < thThisSlight:
		return PrefThisSlight
	default:
		return PrefThisStrong
	}
}

// randomQuery samples an exploration query: one to three group-by
// dimensions at mostly coarse levels, occasionally a filter.
func randomQuery(d *olap.Dataset, col, colDesc string, rng *rand.Rand) olap.Query {
	hs := d.Hierarchies()
	q := olap.Query{Fct: olap.Avg, Col: col, ColDescription: colDesc}
	perm := rng.Perm(len(hs))
	nDims := 1
	for nDims < len(hs) && nDims < 3 && rng.Float64() < extraDimProb {
		nDims++
	}
	for i := 0; i < nDims; i++ {
		h := hs[perm[i]]
		level := 1
		for level < h.Depth() && rng.Float64() < deepLevelProb {
			level++
		}
		q.GroupBy = append(q.GroupBy, olap.GroupBy{Hierarchy: h, Level: level})
	}
	if rng.Float64() < queryFilterProb {
		g := q.GroupBy[rng.Intn(len(q.GroupBy))]
		if g.Level > 1 {
			candidates := g.Hierarchy.MembersAt(1)
			q.Filters = append(q.Filters, candidates[rng.Intn(len(candidates))])
		}
	}
	return q
}

// vocalizeBoth runs the holistic vocalizer and the prior baseline on the
// same query and returns both text lengths.
func vocalizeBoth(d *olap.Dataset, q olap.Query, format speech.ValueFormat, seed int64, maxNodes int) (thisLen, priorLen int, err error) {
	cfg := core.Config{
		Format:               format,
		Seed:                 seed,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 300,
		Percents:             []int{20, 50, 100, 200},
		MaxTreeNodes:         maxNodes,
	}
	hOut, err := core.NewHolistic(d, q, cfg).Vocalize()
	if err != nil {
		return 0, 0, fmt.Errorf("userstudy: holistic: %w", err)
	}
	pOut, err := baseline.NewPrior(d, q, baseline.Config{
		Format:      format,
		MergeValues: true,
		Clock:       voice.NewSimClock(),
	}).Vocalize()
	if err != nil {
		return 0, 0, fmt.Errorf("userstudy: prior: %w", err)
	}
	// Lengths follow the paper's measure: the main speech, without the
	// preamble (the prior grammar has none either).
	return len(hOut.Speech.MainText()), len(pOut.Text), nil
}

// medianFloat returns the median of xs (1 for empty input, keeping the
// preference score neutral).
func medianFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	cp := append([]float64{}, xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	if len(cp)%2 == 1 {
		return cp[len(cp)/2]
	}
	return (cp[len(cp)/2-1] + cp[len(cp)/2]) / 2
}

// Fact is an extracted insight in the style of Table 7.
type Fact struct {
	// Dimensions lists the dimensions the fact refers to.
	Dimensions string
	// Text is the fact itself.
	Text string
}

// ExtractFacts derives Table 7-style insights from exact evaluation of the
// flights dataset: the seasonal pattern, an airline-airport outlier, and a
// regional ranking.
func ExtractFacts(d *olap.Dataset) ([]Fact, error) {
	date := d.HierarchyByName("flight date")
	airport := d.HierarchyByName("start airport")
	airline := d.HierarchyByName("airline")
	if date == nil || airport == nil || airline == nil {
		return nil, fmt.Errorf("userstudy: facts need the flight hierarchies")
	}
	var facts []Fact

	// Fact 1: season with the highest cancellation probability.
	seasonQ := olap.Query{Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: date, Level: 1}}}
	seasonRes, err := olap.Evaluate(d, seasonQ)
	if err != nil {
		return nil, err
	}
	bestSeason, _ := argmax(seasonRes)
	grand := seasonRes.GrandValue()
	facts = append(facts, Fact{
		Dimensions: "Flight date",
		Text: fmt.Sprintf("The main cancellation probability is in %s; around %s is the average cancellation probability.",
			seasonRes.Space().AggregateName(bestSeason), speech.FormatValue(grand, speech.PercentFormat)),
	})

	// Fact 2: airline-city combination with the highest lift over the
	// overall average.
	comboQ := olap.Query{Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{
			{Hierarchy: airline, Level: 1},
			{Hierarchy: airport, Level: 3},
		}}
	comboRes, err := olap.Evaluate(d, comboQ)
	if err != nil {
		return nil, err
	}
	bestCombo, bestVal := argmax(comboRes)
	coords := comboRes.Space().Coordinates(bestCombo)
	lift := int(math.Round((bestVal/grand - 1) * 100))
	facts = append(facts, Fact{
		Dimensions: "Airline, Start airport",
		Text: fmt.Sprintf("A %s flight is %d%% more likely than normal to have a cancellation from %s.",
			coords[0].Name, lift, coords[1].Name),
	})

	// Fact 3: regional ranking.
	regionQ := olap.Query{Fct: olap.Avg, Col: "cancelled",
		GroupBy: []olap.GroupBy{{Hierarchy: airport, Level: 1}}}
	regionRes, err := olap.Evaluate(d, regionQ)
	if err != nil {
		return nil, err
	}
	bestRegion, _ := argmax(regionRes)
	facts = append(facts, Fact{
		Dimensions: "Start airport",
		Text: fmt.Sprintf("The greatest cancellations are in %s.",
			regionRes.Space().AggregateName(bestRegion)),
	})
	return facts, nil
}

// argmax returns the index and value of the largest defined aggregate.
func argmax(r *olap.Result) (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for i := 0; i < r.Space().Size(); i++ {
		v := r.Value(i)
		if !math.IsNaN(v) && v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}
