// Package userstudy simulates the paper's three crowd studies. The paper
// validated its user model with AMT workers; this reproduction replaces
// them with synthetic respondents drawn from the same behavioral
// hypotheses plus empirically shaped noise (including the documented
// "increase TO x percent" misreading), so the published tables' shapes —
// consistency counts, estimation errors, tendency accuracy, preference
// distributions, and speech-length statistics — regenerate without human
// subjects. DESIGN.md records this substitution.
package userstudy

import (
	"math/rand"
)

// PilotQuestion is one question of the implicit-assumptions pilot study
// (Table 10), with the empirical answer distribution observed on AMT and
// the options consistent with the tested hypothesis.
type PilotQuestion struct {
	// Aspect is the model aspect the question tests.
	Aspect string
	// Question is the text shown to workers.
	Question string
	// Answers are the three options.
	Answers [3]string
	// Consistent marks options consistent with the hypothesis.
	Consistent [3]bool
	// PaperReplies is the observed reply distribution (out of 20).
	PaperReplies [3]int
}

// PilotQuestions reproduces Table 10 verbatim: the questions, options,
// consistency marking, and the observed reply counts that calibrate the
// simulated respondents.
var PilotQuestions = []PilotQuestion{
	{
		Aspect:   "Symmetry",
		Question: "Assume the typical salary is $10. Which of the following options seems most likely to you?",
		Answers: [3]string{
			"Most people get more than $10 salary",
			"About half the people get less and half the people get more than $10 salary",
			"Most people get less than $10 salary",
		},
		Consistent:   [3]bool{false, true, false},
		PaperReplies: [3]int{3, 15, 2},
	},
	{
		Aspect:   "Concentration",
		Question: "Assume the typical salary is $10. Which of the following options seems most likely to you?",
		Answers: [3]string{
			"A salary between $10 to $15 is more likely than one between $15 and $20",
			"A salary between $10 to $15 is equally likely as one between $15 and $20",
			"A salary between $15 and $20 is more likely than one between $10 and $15",
		},
		Consistent:   [3]bool{true, false, false},
		PaperReplies: [3]int{15, 4, 1},
	},
	{
		Aspect:   "Concentration",
		Question: "Again, assume the typical salary is $10. Which of the following options seems most likely to you?",
		Answers: [3]string{
			"A salary between $5 to $10 is more likely than a salary between $1 to $5",
			"A salary between $1 to $5 is equally likely as a salary between $5 and $10",
			"A salary between $1 to $5 is more likely than a salary between $5 to $10",
		},
		Consistent:   [3]bool{true, false, false},
		PaperReplies: [3]int{13, 5, 2},
	},
	{
		Aspect:   "Variance",
		Question: "Assuming the typical salary is $10. Which percentage of people are paid more than $15?",
		Answers: [3]string{
			"Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%",
		},
		Consistent:   [3]bool{true, true, false},
		PaperReplies: [3]int{11, 8, 1},
	},
	{
		Aspect:   "Variance",
		Question: "Assuming the typical salary is $10. Which percentage of people are paid less than $5?",
		Answers: [3]string{
			"Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%",
		},
		Consistent:   [3]bool{true, true, false},
		PaperReplies: [3]int{17, 3, 0},
	},
	{
		Aspect:   "Variance",
		Question: "Assume the typical salary is $100. Which percentage of people are paid more than $150?",
		Answers: [3]string{
			"Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%",
		},
		Consistent:   [3]bool{true, true, false},
		PaperReplies: [3]int{11, 7, 2},
	},
	{
		Aspect:   "Variance",
		Question: "Again, assume the typical salary is $100. Which percentage of people are paid less than $50?",
		Answers: [3]string{
			"Between 0% and 20%", "Between 20% and 40%", "Between 40% and 60%",
		},
		Consistent:   [3]bool{true, true, false},
		PaperReplies: [3]int{10, 7, 3},
	},
	{
		Aspect:   "Uniformity",
		Question: "Assume the average salary over cities A and B is $10. Without further information, what do you assume about the salary distribution?",
		Answers: [3]string{
			"The salary in city A is higher",
			"The salary in city A is about the same as in city B",
			"The salary in city B is higher",
		},
		Consistent:   [3]bool{false, true, false},
		PaperReplies: [3]int{4, 15, 1},
	},
	{
		Aspect:   "Composition",
		Question: "Salary doubles for profession A compared to the average. It also doubles when living in city B. What is your salary estimate for a person with profession A living in city B?",
		Answers: [3]string{
			"The same as average", "Two times higher than average", "Four times higher than average",
		},
		// Composing two doublings multiplicatively yields four times.
		Consistent:   [3]bool{false, false, true},
		PaperReplies: [3]int{4, 9, 7},
	},
	{
		Aspect:   "Composition",
		Question: "Salary halves for profession A compared to the average. It doubles when living in city B. What is your salary estimate for a person with profession A living in city B?",
		Answers: [3]string{
			"The same as average", "Two times higher than average", "Four times higher than average",
		},
		// Halving then doubling composes back to the average.
		Consistent:   [3]bool{true, false, false},
		PaperReplies: [3]int{14, 3, 3},
	},
}

// PilotConfig parameterizes the simulated pilot study.
type PilotConfig struct {
	// Workers is the number of simulated crowd workers (paper: 20).
	Workers int
	// Seed drives the respondent simulation.
	Seed int64
}

// AspectCount aggregates consistent and inconsistent replies per aspect.
type AspectCount struct {
	Consistent   int
	Inconsistent int
}

// PilotResult reports the simulated study.
type PilotResult struct {
	// Replies holds the per-question reply counts.
	Replies [][3]int
	// PerAspect aggregates Table 2: consistent/inconsistent per aspect.
	PerAspect map[string]AspectCount
}

// AspectOrder is the presentation order of Table 2. The paper groups the
// four variance questions as the normal-distribution row.
var AspectOrder = []string{"Symmetry", "Concentration", "Composition", "Uniformity", "Variance"}

// PaperTable2 holds the published aggregate counts for comparison.
var PaperTable2 = map[string]AspectCount{
	"Symmetry":      {15, 5},
	"Concentration": {28, 12},
	"Composition":   {21, 19},
	"Uniformity":    {15, 5},
	"Variance":      {74, 6},
}

// RunPilot simulates crowd workers answering the pilot questions. Each
// worker draws each answer from the question's empirical reply
// distribution — the respondents embody the same mixture of model-
// consistent and deviating behavior the paper observed.
func RunPilot(cfg PilotConfig) PilotResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := PilotResult{
		Replies:   make([][3]int, len(PilotQuestions)),
		PerAspect: make(map[string]AspectCount),
	}
	for qi, q := range PilotQuestions {
		total := q.PaperReplies[0] + q.PaperReplies[1] + q.PaperReplies[2]
		for w := 0; w < cfg.Workers; w++ {
			r := rng.Intn(total)
			var pick int
			switch {
			case r < q.PaperReplies[0]:
				pick = 0
			case r < q.PaperReplies[0]+q.PaperReplies[1]:
				pick = 1
			default:
				pick = 2
			}
			res.Replies[qi][pick]++
			cnt := res.PerAspect[q.Aspect]
			if q.Consistent[pick] {
				cnt.Consistent++
			} else {
				cnt.Inconsistent++
			}
			res.PerAspect[q.Aspect] = cnt
		}
	}
	return res
}
