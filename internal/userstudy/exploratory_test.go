package userstudy

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/speech"
)

func TestRunExploratoryFlights(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 20000, Seed: 111})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	res, err := RunExploratory(d, "cancelled", "average cancellation probability",
		speech.PercentFormat, ExploratoryConfig{Sessions: 4, MeanQueries: 5, Seed: 1})
	if err != nil {
		t.Fatalf("RunExploratory: %v", err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries issued")
	}
	total := 0
	for _, c := range res.Prefs {
		total += c
	}
	if total != 4 {
		t.Errorf("preference votes = %d, want 4 sessions", total)
	}
	// Table 9's core finding: prior output is longer on average and its
	// maximum dwarfs ours.
	if res.Lengths.PriorAvg <= res.Lengths.ThisAvg {
		t.Errorf("prior avg %d should exceed this avg %d",
			res.Lengths.PriorAvg, res.Lengths.ThisAvg)
	}
	if res.Lengths.PriorMax <= res.Lengths.ThisMax {
		t.Errorf("prior max %d should exceed this max %d",
			res.Lengths.PriorMax, res.Lengths.ThisMax)
	}
}

func TestRunExploratorySalary(t *testing.T) {
	d, err := datagen.Salaries(datagen.SalariesConfig{Seed: 112})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	res, err := RunExploratory(d, "midCareerSalary", "average mid-career salary",
		speech.ThousandsFormat, ExploratoryConfig{Sessions: 3, MeanQueries: 5, Seed: 2})
	if err != nil {
		t.Fatalf("RunExploratory: %v", err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries issued")
	}
	if res.Lengths.ThisAvg <= 0 || res.Lengths.PriorAvg <= 0 {
		t.Error("lengths should be positive")
	}
}

func TestRunExploratoryDeterministic(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 10000, Seed: 113})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	cfg := ExploratoryConfig{Sessions: 2, MeanQueries: 4, Seed: 3}
	a, err := RunExploratory(d, "cancelled", "x", speech.PercentFormat, cfg)
	if err != nil {
		t.Fatalf("RunExploratory: %v", err)
	}
	b, err := RunExploratory(d, "cancelled", "x", speech.PercentFormat, cfg)
	if err != nil {
		t.Fatalf("RunExploratory: %v", err)
	}
	if a.Lengths != b.Lengths || a.Prefs != b.Prefs {
		t.Error("same seed should reproduce the study")
	}
}

func TestPrefBucketThresholds(t *testing.T) {
	cases := []struct {
		score float64
		want  int
	}{
		{-2, PrefPriorStrong},
		{-0.3, PrefPriorSlight},
		{0, PrefNeutral},
		{0.8, PrefThisSlight},
		{2, PrefThisStrong},
	}
	for _, c := range cases {
		if got := prefBucket(c.score); got != c.want {
			t.Errorf("prefBucket(%v) = %d, want %d", c.score, got, c.want)
		}
	}
}

func TestExtractFacts(t *testing.T) {
	d, err := datagen.Flights(datagen.FlightsConfig{Rows: 50000, Seed: 114})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	facts, err := ExtractFacts(d)
	if err != nil {
		t.Fatalf("ExtractFacts: %v", err)
	}
	if len(facts) != 3 {
		t.Fatalf("facts = %d, want 3", len(facts))
	}
	// Fact 1: the dominant season is Winter (planted in Table 12).
	if !strings.Contains(facts[0].Text, "Winter") {
		t.Errorf("seasonal fact should name Winter: %q", facts[0].Text)
	}
	// Fact 2: an airline/city lift statement.
	if !strings.Contains(facts[1].Text, "more likely than normal") {
		t.Errorf("combo fact malformed: %q", facts[1].Text)
	}
	// Fact 3: the leading region is the North East (planted).
	if !strings.Contains(facts[2].Text, "the North East") {
		t.Errorf("regional fact should name the North East: %q", facts[2].Text)
	}
}

func TestExtractFactsWrongDataset(t *testing.T) {
	d, err := datagen.Salaries(datagen.SalariesConfig{Seed: 1})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	if _, err := ExtractFacts(d); err == nil {
		t.Error("facts require the flight hierarchies")
	}
}

func TestMedianFloat(t *testing.T) {
	if medianFloat(nil) != 1 {
		t.Error("empty median should be neutral 1")
	}
	if medianFloat([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if medianFloat([]float64{1, 3}) != 2 {
		t.Error("even median wrong")
	}
}
