package userstudy

import (
	"testing"
)

func TestPilotQuestionsMatchTable10(t *testing.T) {
	if len(PilotQuestions) != 10 {
		t.Fatalf("questions = %d, want 10", len(PilotQuestions))
	}
	for i, q := range PilotQuestions {
		total := q.PaperReplies[0] + q.PaperReplies[1] + q.PaperReplies[2]
		if total != 20 {
			t.Errorf("question %d: paper replies sum to %d, want 20", i, total)
		}
		anyConsistent := false
		for _, c := range q.Consistent {
			anyConsistent = anyConsistent || c
		}
		if !anyConsistent {
			t.Errorf("question %d has no consistent option", i)
		}
		if q.Question == "" || q.Answers[0] == "" {
			t.Errorf("question %d incomplete", i)
		}
	}
}

// TestPaperAggregationMatchesTable2 verifies that aggregating the Table 10
// reply counts by aspect reproduces the Table 2 totals exactly — i.e. our
// transcription and consistency marking are faithful.
func TestPaperAggregationMatchesTable2(t *testing.T) {
	agg := make(map[string]AspectCount)
	for _, q := range PilotQuestions {
		cnt := agg[q.Aspect]
		for opt := 0; opt < 3; opt++ {
			if q.Consistent[opt] {
				cnt.Consistent += q.PaperReplies[opt]
			} else {
				cnt.Inconsistent += q.PaperReplies[opt]
			}
		}
		agg[q.Aspect] = cnt
	}
	for aspect, want := range PaperTable2 {
		if got := agg[aspect]; got != want {
			t.Errorf("%s: derived %+v, paper %+v", aspect, got, want)
		}
	}
}

func TestRunPilotDefaults(t *testing.T) {
	res := RunPilot(PilotConfig{Seed: 1})
	if len(res.Replies) != 10 {
		t.Fatalf("replies for %d questions", len(res.Replies))
	}
	for i, r := range res.Replies {
		if r[0]+r[1]+r[2] != 20 {
			t.Errorf("question %d: replies sum to %d, want 20", i, r[0]+r[1]+r[2])
		}
	}
	// Every aspect must appear.
	for _, aspect := range AspectOrder {
		if _, ok := res.PerAspect[aspect]; !ok {
			t.Errorf("aspect %q missing", aspect)
		}
	}
}

// TestRunPilotReproducesShape: in the simulation, as in the paper, a
// majority of replies supports each hypothesis.
func TestRunPilotReproducesShape(t *testing.T) {
	res := RunPilot(PilotConfig{Workers: 200, Seed: 2})
	for _, aspect := range AspectOrder {
		cnt := res.PerAspect[aspect]
		if aspect == "Composition" {
			// The weakest hypothesis in the paper too (21 vs 19).
			continue
		}
		if cnt.Consistent <= cnt.Inconsistent {
			t.Errorf("%s: consistent %d should exceed inconsistent %d",
				aspect, cnt.Consistent, cnt.Inconsistent)
		}
	}
	// Variance (the normal-distribution row) is the strongest.
	v := res.PerAspect["Variance"]
	if float64(v.Consistent)/float64(v.Consistent+v.Inconsistent) < 0.8 {
		t.Error("variance consistency should be above 80%")
	}
}

func TestRunPilotDeterministic(t *testing.T) {
	a := RunPilot(PilotConfig{Seed: 3})
	b := RunPilot(PilotConfig{Seed: 3})
	for i := range a.Replies {
		if a.Replies[i] != b.Replies[i] {
			t.Fatal("same seed should reproduce replies")
		}
	}
}
