// Package voice simulates the asynchronous text-to-speech device the
// holistic algorithm pipelines against. The paper's implementation used a
// browser TTS API; the algorithm only ever observes two operations —
// VO.Start(text), which returns immediately, and VO.IsPlaying — so playback
// is modeled as text length divided by a speaking rate on an injectable
// clock. A manual clock makes pipelining deterministic in tests and
// benchmarks; the real clock drives interactive sessions.
package voice

import (
	"sync"
	"time"
)

// Clock abstracts time for the speaker.
type Clock interface {
	Now() time.Time
}

// RealClock reads the system time.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// SimClock is a manually advanced clock for deterministic tests.
type SimClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewSimClock returns a clock starting at an arbitrary fixed epoch.
func NewSimClock() *SimClock {
	return &SimClock{t: time.Date(2019, 6, 30, 9, 0, 0, 0, time.UTC)}
}

// Now implements Clock.
func (c *SimClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *SimClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// DefaultCharsPerSecond approximates conversational TTS speed: about 180
// words per minute at 5 characters per word.
const DefaultCharsPerSecond = 15.0

// Utterance records one spoken text with its playback interval.
type Utterance struct {
	Text  string
	Start time.Time
	End   time.Time
}

// Duration returns the playback length of the utterance.
func (u Utterance) Duration() time.Duration { return u.End.Sub(u.Start) }

// Speaker is the simulated voice output device.
type Speaker struct {
	clock Clock
	rate  float64

	mu         sync.Mutex
	busyUntil  time.Time
	transcript []Utterance
}

// NewSpeaker returns a speaker on the given clock. A non-positive rate
// falls back to DefaultCharsPerSecond.
func NewSpeaker(clock Clock, charsPerSecond float64) *Speaker {
	if charsPerSecond <= 0 {
		charsPerSecond = DefaultCharsPerSecond
	}
	return &Speaker{clock: clock, rate: charsPerSecond}
}

// SpeakingTime returns how long the given text takes to play.
func (s *Speaker) SpeakingTime(text string) time.Duration {
	return time.Duration(float64(len(text)) / s.rate * float64(time.Second))
}

// Start begins playing text and returns immediately (VO.START). If output
// is already playing, the new text is queued to start when it ends —
// matching a TTS engine's utterance queue.
func (s *Speaker) Start(text string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	start := now
	if s.busyUntil.After(now) {
		start = s.busyUntil
	}
	end := start.Add(s.SpeakingTime(text))
	s.busyUntil = end
	s.transcript = append(s.transcript, Utterance{Text: text, Start: start, End: end})
}

// IsPlaying reports whether output is still playing (VO.ISPLAYING).
func (s *Speaker) IsPlaying() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busyUntil.After(s.clock.Now())
}

// RemainingTime returns how much playback time is left (zero when idle).
func (s *Speaker) RemainingTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	if !s.busyUntil.After(now) {
		return 0
	}
	return s.busyUntil.Sub(now)
}

// Transcript returns the utterances spoken so far, in order.
func (s *Speaker) Transcript() []Utterance {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Utterance, len(s.transcript))
	copy(out, s.transcript)
	return out
}

// TotalSpeakingTime sums the playback durations of the whole transcript.
func (s *Speaker) TotalSpeakingTime() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total time.Duration
	for _, u := range s.transcript {
		total += u.Duration()
	}
	return total
}
