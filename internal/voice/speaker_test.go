package voice

import (
	"testing"
	"time"
)

func TestSpeakingTime(t *testing.T) {
	s := NewSpeaker(NewSimClock(), 15)
	if got := s.SpeakingTime("123456789012345"); got != time.Second {
		t.Errorf("15 chars at 15 cps = %v, want 1s", got)
	}
	if got := s.SpeakingTime(""); got != 0 {
		t.Errorf("empty text = %v, want 0", got)
	}
}

func TestDefaultRate(t *testing.T) {
	s := NewSpeaker(NewSimClock(), 0)
	if s.SpeakingTime("xxx") == 0 {
		t.Error("default rate should produce nonzero duration")
	}
	neg := NewSpeaker(NewSimClock(), -3)
	if neg.SpeakingTime("xxx") <= 0 {
		t.Error("negative rate should fall back to default")
	}
}

func TestStartAndIsPlaying(t *testing.T) {
	clock := NewSimClock()
	s := NewSpeaker(clock, 10)
	if s.IsPlaying() {
		t.Error("fresh speaker should be idle")
	}
	s.Start("1234567890") // 1 second at 10 cps
	if !s.IsPlaying() {
		t.Error("should be playing right after Start")
	}
	clock.Advance(500 * time.Millisecond)
	if !s.IsPlaying() {
		t.Error("should still be playing at 0.5s")
	}
	if got := s.RemainingTime(); got != 500*time.Millisecond {
		t.Errorf("remaining = %v, want 500ms", got)
	}
	clock.Advance(500 * time.Millisecond)
	if s.IsPlaying() {
		t.Error("should be idle at exactly 1s")
	}
	if got := s.RemainingTime(); got != 0 {
		t.Errorf("remaining = %v, want 0", got)
	}
}

func TestStartQueuesWhileBusy(t *testing.T) {
	clock := NewSimClock()
	s := NewSpeaker(clock, 10)
	s.Start("1234567890") // plays [0, 1s)
	s.Start("12345")      // queued [1s, 1.5s)
	clock.Advance(1200 * time.Millisecond)
	if !s.IsPlaying() {
		t.Error("queued utterance should still be playing at 1.2s")
	}
	clock.Advance(300 * time.Millisecond)
	if s.IsPlaying() {
		t.Error("queue should drain at 1.5s")
	}
	tr := s.Transcript()
	if len(tr) != 2 {
		t.Fatalf("transcript length = %d, want 2", len(tr))
	}
	if !tr[1].Start.Equal(tr[0].End) {
		t.Error("second utterance should start when the first ends")
	}
}

func TestTranscriptAndTotals(t *testing.T) {
	clock := NewSimClock()
	s := NewSpeaker(clock, 10)
	s.Start("aaaaaaaaaa")      // 1s
	clock.Advance(time.Second) // drain
	s.Start("bbbbb")           // 0.5s
	clock.Advance(time.Second)
	tr := s.Transcript()
	if len(tr) != 2 || tr[0].Text != "aaaaaaaaaa" || tr[1].Text != "bbbbb" {
		t.Fatalf("transcript = %+v", tr)
	}
	if got := s.TotalSpeakingTime(); got != 1500*time.Millisecond {
		t.Errorf("total speaking time = %v, want 1.5s", got)
	}
	if tr[0].Duration() != time.Second {
		t.Errorf("utterance duration = %v", tr[0].Duration())
	}
	// Transcript is a copy: mutations must not leak.
	tr[0].Text = "mutated"
	if s.Transcript()[0].Text != "aaaaaaaaaa" {
		t.Error("Transcript should return a copy")
	}
}

func TestRealClock(t *testing.T) {
	before := time.Now()
	got := RealClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Error("RealClock should report current time")
	}
}

func TestSimClockAdvance(t *testing.T) {
	c := NewSimClock()
	t0 := c.Now()
	c.Advance(3 * time.Second)
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Errorf("advance = %v, want 3s", got)
	}
}

func TestSpeakerConcurrentAccess(t *testing.T) {
	clock := NewSimClock()
	s := NewSpeaker(clock, 100)
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			s.Start("x")
			s.IsPlaying()
		}
		close(done)
	}()
	for i := 0; i < 1000; i++ {
		clock.Advance(time.Millisecond)
		s.TotalSpeakingTime()
	}
	<-done
	if len(s.Transcript()) != 1000 {
		t.Errorf("transcript = %d utterances, want 1000", len(s.Transcript()))
	}
}
