// Streaming ingest: POST /api/ingest appends rows to a registered dataset
// while queries keep running. The first batch lazily converts the dataset
// to a live appendable table (copy-on-first-ingest, so the originally
// registered dataset object is never mutated); every accepted batch bumps
// the dataset's cache epoch, which makes all earlier semantic-cache
// answers structurally unreachable before the new rows become visible —
// the same invalidation discipline ReloadDataset uses, at append-batch
// granularity.

package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/olap"
	"repro/internal/table"
)

// ingestRequest is the /api/ingest payload. Every row must provide a
// value for every physical column; string values must already be members
// of the column's dictionary (streaming appends cannot invent dimension
// members — that is what keeps live sessions and compiled query scopes
// valid across batches).
type ingestRequest struct {
	Dataset string           `json:"dataset"`
	Rows    []map[string]any `json:"rows"`
}

// ingestResponse acknowledges one accepted batch. A client that has seen
// Epoch acknowledged knows any later answer with DataEpoch >= Epoch
// includes these rows.
type ingestResponse struct {
	Appended  int   `json:"appended"`
	Epoch     int64 `json:"epoch"`
	TotalRows int   `json:"totalRows"`
}

// handleIngest appends one batch of rows to a dataset.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("rows required"))
		return
	}

	// Copy-on-first-ingest: materialize the appendable table under s.mu so
	// concurrent first batches agree on one copy.
	s.mu.Lock()
	st, ok := s.datasets[req.Dataset]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	if st.live == nil {
		live, err := st.info.Dataset.Table().AppendableCopy(s.now())
		if err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Errorf("dataset %q is not streamable: %w", req.Dataset, err))
			return
		}
		st.live = live
	}
	live := st.live
	s.mu.Unlock()

	batch, err := buildRowBatch(live, req.Rows)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if _, err := live.AppendBatch(batch, s.now()); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	// Publish: snapshot and dataset swap happen under s.mu, so concurrent
	// ingests can only install monotonically growing snapshots, and the
	// epoch bump is ordered before any query can observe the new data.
	s.mu.Lock()
	if s.datasets[req.Dataset] != st || st.live != live {
		// The dataset was reloaded while we appended; the copy we wrote to
		// was discarded with it, so the batch is gone by design.
		s.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Errorf("dataset %q was reloaded during ingest, batch dropped", req.Dataset))
		return
	}
	snap := live.Snapshot()
	ds, err := olap.NewDataset(snap, st.info.Dataset.Hierarchies()...)
	if err != nil {
		s.mu.Unlock()
		s.opts.Logf("web: ingest rebind: %v", err)
		writeError(w, http.StatusInternalServerError, errInternal)
		return
	}
	info := st.info
	info.Dataset = ds
	st.info = info
	st.epoch++
	epoch := st.epoch
	total := snap.NumRows()
	s.mu.Unlock()

	// Old-epoch entries are already unreachable (the epoch is in every
	// key); purging reclaims their memory promptly.
	if s.answers != nil {
		s.answers.PurgePrefix(req.Dataset + "\x00")
	}
	if s.views != nil {
		s.views.PurgePrefix(req.Dataset + "\x00")
	}
	s.ingestBatches.Add(1)
	s.ingestRows.Add(int64(len(req.Rows)))
	writeJSON(w, http.StatusOK, ingestResponse{
		Appended:  len(req.Rows),
		Epoch:     epoch,
		TotalRows: total,
	})
}

// buildRowBatch converts JSON rows into a columnar RowBatch following the
// live table's schema, rejecting unknown and missing columns up front so
// AppendBatch sees only shape-valid input.
func buildRowBatch(live *table.Table, rows []map[string]any) (*table.RowBatch, error) {
	cols := live.Columns()
	names := make(map[string]bool, len(cols))
	for _, c := range cols {
		names[c.Name()] = true
	}
	for i, row := range rows {
		for name := range row {
			if !names[name] {
				return nil, fmt.Errorf("row %d: unknown column %q", i, name)
			}
		}
	}
	b := table.NewRowBatch()
	for _, c := range cols {
		name := c.Name()
		switch c.(type) {
		case *table.Float64Column:
			vals := make([]float64, len(rows))
			for i, row := range rows {
				v, ok := row[name].(float64)
				if !ok {
					return nil, fmt.Errorf("row %d: column %q needs a number", i, name)
				}
				vals[i] = v
			}
			b.Float64s(name, vals...)
		case *table.Int64Column:
			vals := make([]int64, len(rows))
			for i, row := range rows {
				v, ok := row[name].(float64)
				if !ok || v != float64(int64(v)) {
					return nil, fmt.Errorf("row %d: column %q needs an integer", i, name)
				}
				vals[i] = int64(v)
			}
			b.Int64s(name, vals...)
		case *table.StringColumn:
			vals := make([]string, len(rows))
			for i, row := range rows {
				v, ok := row[name].(string)
				if !ok {
					return nil, fmt.Errorf("row %d: column %q needs a string", i, name)
				}
				vals[i] = v
			}
			b.Strings(name, vals...)
		default:
			return nil, fmt.Errorf("column %q: unsupported type for ingest", name)
		}
	}
	return b, nil
}
