package web

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/speech"
)

// newCacheServer builds a server with a fully deterministic vocalizer
// config (per-request sim clock, fixed seed, one planner worker) so cold
// answers for equal canonical queries are bit-identical across sessions
// and servers — the property the semantic cache's soundness rests on.
func newCacheServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 131})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	cfg := core.Config{
		Seed:                 7,
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 100,
		Percents:             []int{50, 100},
	}
	srv, err := NewServerWith(cfg, opts,
		DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
	)
	if err != nil {
		t.Fatalf("NewServerWith: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// equivalentPhrasings are distinct voice inputs that parse to the same
// canonical query: scope order is swapped and "carrier" is a synonym of
// the "airline" hierarchy.
var equivalentPhrasings = []string{
	"how does cancellation depend on region and carrier",
	"how does cancellation depend on airline and region",
	"how does cancellation depend on region and airline",
}

// TestCacheHitBitIdenticalToCold is the golden soundness test: every
// cache hit for a canonically equal query must replay exactly the speech
// the cold path would produce — same text, same structured grammar.
func TestCacheHitBitIdenticalToCold(t *testing.T) {
	// Control server: caching fully disabled, pure cold path.
	_, cold := newCacheServer(t, Options{SemCacheEntries: -1, SemCacheViews: -1, PoolSize: -1})
	// Tier B off so every phrasing is either cold or an exact tier-A
	// replay; the warm path is covered by its own test.
	srv, ts := newCacheServer(t, Options{SemCacheViews: -1})

	coldOut, code := postQuery(t, cold, map[string]string{
		"session": "c1", "dataset": "flights",
		"input": equivalentPhrasings[0], "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("cold query status = %d: %v", code, coldOut)
	}
	wantSpeech, _ := coldOut["speech"].(string)
	if wantSpeech == "" {
		t.Fatal("cold query produced no speech")
	}
	wantStructured, _ := json.Marshal(coldOut["structured"])

	// First phrasing on the caching server: a miss that computes the
	// same cold answer and stores it.
	first, code := postQuery(t, ts, map[string]string{
		"session": "h0", "dataset": "flights",
		"input": equivalentPhrasings[0], "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("first query status = %d: %v", code, first)
	}
	if first["cache"] != nil {
		t.Fatalf("first query should be cold, got cache=%v", first["cache"])
	}
	if got, _ := first["speech"].(string); got != wantSpeech {
		t.Fatalf("cold answers diverge between identically configured servers:\n  %q\n  %q", got, wantSpeech)
	}

	// Every equivalent phrasing, each in a fresh session, replays the
	// stored answer bit for bit.
	for i, phrasing := range equivalentPhrasings {
		out, code := postQuery(t, ts, map[string]string{
			"session": "h" + string(rune('1'+i)), "dataset": "flights",
			"input": phrasing, "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("phrasing %d status = %d: %v", i, code, out)
		}
		if out["servedBy"] != "cache" || out["cache"] != "hit" || out["origin"] != "this" {
			t.Fatalf("phrasing %d servedBy=%v cache=%v origin=%v, want cache/hit/this",
				i, out["servedBy"], out["cache"], out["origin"])
		}
		if got, _ := out["speech"].(string); got != wantSpeech {
			t.Errorf("phrasing %d replayed speech differs from cold path:\n  %q\n  %q", i, got, wantSpeech)
		}
		if got, _ := json.Marshal(out["structured"]); string(got) != string(wantStructured) {
			t.Errorf("phrasing %d structured answer differs from cold path", i)
		}
		if out["degraded"] == true {
			t.Errorf("phrasing %d hit marked degraded", i)
		}
	}

	// A session that assembles the same scope set in the opposite order —
	// airline first, then region — must hit the same entry: GroupBy order
	// is canonicalized away, in the key and in the vocalized query alike.
	for _, in := range []string{"remove start airport", "break down by carrier"} {
		if out, code := postQuery(t, ts, map[string]string{
			"session": "h9", "dataset": "flights", "input": in, "method": "this",
		}); code != http.StatusOK {
			t.Fatalf("setup %q status = %d: %v", in, code, out)
		}
	}
	out, code := postQuery(t, ts, map[string]string{
		"session": "h9", "dataset": "flights",
		"input": "break down by region", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("reordered query status = %d: %v", code, out)
	}
	if out["servedBy"] != "cache" {
		t.Fatalf("reordered scope set missed the cache: %v", out)
	}
	if got, _ := out["speech"].(string); got != wantSpeech {
		t.Errorf("reordered replay differs from cold path:\n  %q\n  %q", got, wantSpeech)
	}

	st := srv.servingStats()
	if st.SemCache == nil || st.SemCache.HitsServed != int64(len(equivalentPhrasings))+1 {
		t.Errorf("semcache stats = %+v, want %d hits served", st.SemCache, len(equivalentPhrasings)+1)
	}
}

// TestPriorAnswersCachedSeparately: the prior vocalizer's speeches are
// keyed apart from holistic ones, and replay identically too.
func TestPriorAnswersCachedSeparately(t *testing.T) {
	_, ts := newCacheServer(t, Options{SemCacheViews: -1})
	first, code := postQuery(t, ts, map[string]string{
		"session": "p1", "dataset": "flights",
		"input": equivalentPhrasings[0], "method": "prior",
	})
	if code != http.StatusOK {
		t.Fatalf("prior query status = %d: %v", code, first)
	}
	if first["cache"] != nil {
		t.Fatalf("first prior query should be cold, got %v", first["cache"])
	}
	// A holistic request for the same query must not replay the prior
	// speech.
	out, _ := postQuery(t, ts, map[string]string{
		"session": "p2", "dataset": "flights",
		"input": equivalentPhrasings[1], "method": "this",
	})
	if out["servedBy"] == "cache" {
		t.Fatal("holistic request replayed a prior-method answer")
	}
	// But an equivalent prior request replays it bit for bit.
	hit, _ := postQuery(t, ts, map[string]string{
		"session": "p3", "dataset": "flights",
		"input": equivalentPhrasings[2], "method": "prior",
	})
	if hit["servedBy"] != "cache" || hit["origin"] != "prior" {
		t.Fatalf("prior rephrase servedBy=%v origin=%v, want cache/prior", hit["servedBy"], hit["origin"])
	}
	if hit["speech"] != first["speech"] {
		t.Errorf("prior replay differs:\n  %v\n  %v", hit["speech"], first["speech"])
	}
}

// TestEpochInvalidationNeverServesStale: reloading a dataset bumps its
// epoch, so answers computed against the old data are never replayed —
// the repeated query recomputes against the new rows.
func TestEpochInvalidationNeverServesStale(t *testing.T) {
	srv, ts := newCacheServer(t, Options{SemCacheViews: -1})
	ask := func(session string) map[string]any {
		out, code := postQuery(t, ts, map[string]string{
			"session": session, "dataset": "flights",
			"input": equivalentPhrasings[0], "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("query status = %d: %v", code, out)
		}
		return out
	}
	before := ask("e1")
	if hit := ask("e2"); hit["servedBy"] != "cache" {
		t.Fatalf("pre-reload rephrase not served from cache: %v", hit["servedBy"])
	}

	// Reload with different data: different seed, different rows.
	reloaded, err := datagen.Flights(datagen.FlightsConfig{Rows: 4000, Seed: 999})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	if err := srv.ReloadDataset("flights", reloaded); err != nil {
		t.Fatalf("ReloadDataset: %v", err)
	}

	after := ask("e3")
	if after["servedBy"] == "cache" || after["cache"] != nil {
		t.Fatalf("post-reload query served from cache: servedBy=%v cache=%v",
			after["servedBy"], after["cache"])
	}
	if after["speech"] == before["speech"] {
		t.Error("post-reload speech identical to pre-reload speech; stale answer suspected")
	}
	st := srv.servingStats()
	if st.SemCache == nil || st.SemCache.Answers.Purged == 0 {
		t.Error("reload purged nothing from the answer cache")
	}
	if err := srv.ReloadDataset("nope", reloaded); err == nil {
		t.Error("reloading an unknown dataset should fail")
	}
	if err := srv.ReloadDataset("flights", nil); err == nil {
		t.Error("reloading with a nil dataset should fail")
	}
}

// TestDegradedNeverCached: answers cut short by the request deadline are
// served once and never stored, so no later query can replay a degraded
// speech.
func TestDegradedNeverCached(t *testing.T) {
	srv, ts := newCacheServer(t, Options{RequestTimeout: time.Nanosecond, SemCacheViews: -1})
	for i := 0; i < 3; i++ {
		out, code := postQuery(t, ts, map[string]string{
			"session": "d1", "dataset": "flights",
			"input": "break down by season", "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("query %d status = %d: %v", i, code, out)
		}
		if out["degraded"] != true {
			t.Fatalf("query %d not degraded under a nanosecond deadline: %v", i, out)
		}
		if out["servedBy"] == "cache" || out["cache"] != nil {
			t.Fatalf("query %d replayed a degraded answer: servedBy=%v cache=%v",
				i, out["servedBy"], out["cache"])
		}
	}
	st := srv.answers.Stats()
	if st.Stores != 0 {
		t.Errorf("degraded answers were stored: %+v", st)
	}
	if st.Rejected == 0 {
		t.Error("degraded answers should be counted as rejected stores")
	}
}

// TestSingleflightHerd: concurrent equivalent queries run the planner
// once; the rest share the stored result (as a coalesced wait or an
// immediate hit).
func TestSingleflightHerd(t *testing.T) {
	srv, ts := newCacheServer(t, Options{MaxConcurrent: 8, SemCacheViews: -1})
	hold := make(chan struct{})
	srv.holdVocalize = hold

	const workers = 4
	outs := make([]map[string]any, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _ = postQuery(t, ts, map[string]string{
				"session": "herd" + string(rune('a'+i)), "dataset": "flights",
				"input": equivalentPhrasings[i%len(equivalentPhrasings)], "method": "this",
			})
		}(i)
	}
	// Wait until every worker is past the fast path and holding a slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(hold)
	wg.Wait()

	cold, shared := 0, 0
	var speechText string
	for i, out := range outs {
		sp, _ := out["speech"].(string)
		if sp == "" {
			t.Fatalf("worker %d got no speech: %v", i, out)
		}
		if speechText == "" {
			speechText = sp
		} else if sp != speechText {
			t.Errorf("worker %d speech differs from the herd's", i)
		}
		if out["servedBy"] == "cache" {
			shared++
		} else {
			cold++
		}
	}
	if cold != 1 || shared != workers-1 {
		t.Errorf("herd outcomes: %d cold, %d shared; want 1 and %d", cold, shared, workers-1)
	}
}

// TestWarmPathAfterEviction: when a tier-A answer is evicted but its
// tier-B view survives, the repeat query is planned over the view (no
// scan) and stays grammar-valid — and warm answers are never stored in
// tier A.
func TestWarmPathAfterEviction(t *testing.T) {
	srv, ts := newCacheServer(t, Options{SemCacheEntries: 1, SemCacheViews: 8})
	ask := func(session, input string) map[string]any {
		out, code := postQuery(t, ts, map[string]string{
			"session": session, "dataset": "flights", "input": input, "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("query status = %d: %v", code, out)
		}
		return out
	}
	ask("w1", "break down by season") // cold; schedules a view build
	deadline := time.Now().Add(10 * time.Second)
	for srv.views.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.views.Len() == 0 {
		t.Fatal("background view build never completed")
	}
	ask("w2", "break down by airline") // cold; evicts the season answer (cap 1)

	for i := 0; i < 2; i++ {
		out := ask("w3", "break down by season")
		if out["cache"] != "warm" || out["servedBy"] != "this" {
			t.Fatalf("repeat %d cache=%v servedBy=%v, want warm/this", i, out["cache"], out["servedBy"])
		}
		sp, _ := out["speech"].(string)
		if !(speech.Parser{}).Conforms(sp) {
			t.Errorf("warm answer not grammar-valid: %q", sp)
		}
	}
	st := srv.servingStats()
	if st.SemCache == nil || st.SemCache.WarmServed != 2 {
		t.Errorf("warm served = %+v, want 2", st.SemCache)
	}
}

// TestMetricsEndpoint: /metrics speaks the Prometheus text format and
// carries the serving and semcache counters.
func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newCacheServer(t, Options{SemCacheViews: -1})
	postQuery(t, ts, map[string]string{
		"session": "m1", "dataset": "flights",
		"input": equivalentPhrasings[0], "method": "this",
	})
	postQuery(t, ts, map[string]string{
		"session": "m2", "dataset": "flights",
		"input": equivalentPhrasings[1], "method": "this",
	})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 text exposition format", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE voiceolap_inflight gauge",
		"voiceolap_ladder_served_total{step=\"full\"} 1",
		"voiceolap_semcache_served_total{path=\"hit\"} 1",
		"voiceolap_semcache_entries 1",
		"voiceolap_tenant_served_total{tenant=\"m1\"} 1",
		"voiceolap_vocalize_latency_seconds{quantile=\"0.5\"}",
		"voiceolap_session_pool_checkouts_total{dataset=\"flights\",kind=\"warm\"}",
		"voiceolap_breaker_open{dataset=\"flights\"} 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// Session pools served both sessions warm.
	st := srv.servingStats()
	if st.SemCache == nil || st.SemCache.Pools["flights"].Warm < 2 {
		t.Errorf("pool stats = %+v, want >= 2 warm checkouts", st.SemCache)
	}
}
