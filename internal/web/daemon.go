package web

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// ServeGraceful runs srv on ln until a listed signal arrives (default
// SIGINT/SIGTERM) or ctx is cancelled, then shuts the server down
// gracefully: the listener closes immediately, in-flight requests get up
// to grace to finish (their per-request contexts make the vocalizers
// degrade rather than overrun), and only then are stragglers cut off.
// It returns nil on a clean drained shutdown.
func ServeGraceful(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration, sigs ...os.Signal) error {
	if len(sigs) == 0 {
		sigs = []os.Signal{os.Interrupt, syscall.SIGTERM}
	}
	if grace <= 0 {
		grace = 10 * time.Second
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, sigs...)
	defer signal.Stop(stop)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		// Serve failed before any shutdown request.
		return err
	case <-stop:
	case <-ctx.Done():
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	// Serve has returned (or will momentarily) with ErrServerClosed.
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	if err != nil {
		// Drain window expired with requests still in flight; cut them.
		srv.Close()
		return err
	}
	return nil
}
