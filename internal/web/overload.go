package web

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/semcache"
)

// statusClientClosedRequest is nginx's 499: the client went away before
// the answer was ready. It keeps disconnects out of the 5xx error budget.
const statusClientClosedRequest = 499

// maxTenantCounters bounds the per-tenant stats map; traffic from tenants
// beyond it is folded into one overflow bucket so an open endpoint cannot
// grow server memory without bound.
const maxTenantCounters = 1024

// overflowTenant collects counters once maxTenantCounters is reached.
const overflowTenant = "(other)"

// tenantOf identifies the billing tenant for a request: the X-Tenant
// header when present (a fronting proxy's authenticated principal), else
// the session ID.
func tenantOf(r *http.Request, session string) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return session
}

// writeShed refuses a query with a load-derived Retry-After hint: the
// larger of the configured floor, the admission queue's predicted wait,
// and the dataset breaker's remaining cooldown.
func (s *Server) writeShed(w http.ResponseWriter, dataset string, status int, err error) {
	ra := s.adm.RetryAfter()
	if o := s.opts.RetryAfter; o > ra {
		ra = o
	}
	if br := s.breakers[dataset]; br != nil {
		if rem := br.CooldownRemaining(); rem > ra {
			ra = rem
		}
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", int(ra.Seconds()+0.5)))
	writeError(w, status, err)
}

// StartDrain stops admitting queries: every queued admission waiter is
// shed immediately and new queries are refused with 503, while in-flight
// vocalizations keep their slots and finish. Wire it through
// http.Server.RegisterOnShutdown so graceful shutdown does not wait on a
// full queue.
func (s *Server) StartDrain() { s.adm.Drain() }

// tenantCounters holds one tenant's admission outcomes.
type tenantCounters struct {
	served     int64
	cached     int64
	queued     int64
	brownedOut int64
	fallbacks  int64
	clientGone int64
	shed       map[string]int64
}

// servingCounters aggregates admission outcomes per tenant plus the
// ladder-step service counts and the semantic-cache serving paths.
type servingCounters struct {
	mu           sync.Mutex
	tenants      map[string]*tenantCounters
	ladderServed [admission.NumSteps]int64
	// cacheHits / cacheCoalesced count requests answered from the tier-A
	// answer cache; cacheWarm requests planned over a tier-B view.
	cacheHits      int64
	cacheCoalesced int64
	cacheWarm      int64
}

// tenant returns name's counters, folding new tenants into the overflow
// bucket at capacity. Caller holds c.mu.
func (c *servingCounters) tenant(name string) *tenantCounters {
	if c.tenants == nil {
		c.tenants = make(map[string]*tenantCounters)
	}
	t, ok := c.tenants[name]
	if !ok {
		if len(c.tenants) >= maxTenantCounters {
			name = overflowTenant
			if t = c.tenants[name]; t != nil {
				return t
			}
		}
		t = &tenantCounters{shed: make(map[string]int64)}
		c.tenants[name] = t
	}
	return t
}

// served records a successfully answered query.
func (c *servingCounters) served(tenant string, waited bool, step admission.Step, fallback string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.tenant(tenant)
	t.served++
	if waited {
		t.queued++
	}
	if step > admission.StepFull || fallback != "" {
		t.brownedOut++
	}
	if fallback != "" {
		t.fallbacks++
	}
	c.ladderServed[step]++
}

// cached records a query answered from the semantic answer cache.
func (c *servingCounters) cached(tenant string, oc semcache.Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenant(tenant).cached++
	if oc == semcache.Coalesced {
		c.cacheCoalesced++
	} else {
		c.cacheHits++
	}
}

// warmServed records a query planned over a tier-B warmed view.
func (c *servingCounters) warmServed() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cacheWarm++
}

// shed records a refused query by reason.
func (c *servingCounters) shed(tenant, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenant(tenant).shed[reason]++
}

// clientGone records a request whose client disconnected first.
func (c *servingCounters) clientGone(tenant string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenant(tenant).clientGone++
}

// TenantServingStats reports one tenant's admission outcomes.
type TenantServingStats struct {
	Tenant string `json:"tenant"`
	// Served counts answered queries; Queued of those waited in the
	// admission queue first.
	Served int64 `json:"served"`
	// Cached counts queries answered from the semantic answer cache
	// (not included in Served: no vocalizer ran).
	Cached int64 `json:"cached,omitempty"`
	Queued int64 `json:"queued,omitempty"`
	// Shed counts refusals by reason ("rate", "queue-full", "deadline",
	// "draining", "brownout").
	Shed map[string]int64 `json:"shed,omitempty"`
	// BrownedOut counts answers served below full quality; Fallbacks of
	// those were rerouted to the prior vocalizer.
	BrownedOut int64 `json:"brownedOut,omitempty"`
	Fallbacks  int64 `json:"fallbacks,omitempty"`
	// ClientGone counts requests whose client disconnected first.
	ClientGone int64 `json:"clientGone,omitempty"`
}

// ServingStats reports the overload-resilience state: live admission
// gauges, the brownout ladder, breaker states, and per-tenant outcomes.
type ServingStats struct {
	InFlight int `json:"inFlight"`
	QueueLen int `json:"queueLen"`
	// Brownout is the ladder snapshot (current step, sliding p99,
	// transition counts).
	Brownout admission.BrownoutSnapshot `json:"brownout"`
	// LadderServed counts answered queries by the ladder step that
	// shaped them.
	LadderServed map[string]int64 `json:"ladderServed,omitempty"`
	// Breakers maps dataset to breaker state ("closed", "open",
	// "half-open").
	Breakers map[string]string `json:"breakers"`
	// Tenants lists per-tenant outcomes sorted by tenant name.
	Tenants []TenantServingStats `json:"tenants,omitempty"`
	// SemCache reports the semantic answer cache, warmed-view cache, and
	// session-pool counters; nil when caching is disabled.
	SemCache *SemCacheStats `json:"semcache,omitempty"`
	// VocalizeLatencyMS reports sliding-window wall-latency quantiles for
	// real vocalizer runs ("p50", "p99"); absent before the first run.
	VocalizeLatencyMS map[string]float64 `json:"vocalizeLatencyMs,omitempty"`
	// Planner reports the parallel-planning configuration in effect.
	Planner PlannerServingStats `json:"planner"`
}

// PlannerServingStats reports the parallel-planning configuration: the
// configured worker counts against the machine's capacity, and whether the
// brownout ladder is currently forcing queries back to one worker.
type PlannerServingStats struct {
	// Workers is the configured tree-sampling worker count per planning
	// round (1 = sequential planner).
	Workers int `json:"workers"`
	// SamplerShards is the configured background-scan worker count.
	SamplerShards int `json:"samplerShards,omitempty"`
	NumCPU        int `json:"numCpu"`
	Gomaxprocs    int `json:"gomaxprocs"`
	// BrownoutCapped reports that the current ladder step runs every
	// query with a single sampling worker despite Workers > 1.
	BrownoutCapped bool `json:"brownoutCapped,omitempty"`
}

// servingStats snapshots the overload-resilience state.
func (s *Server) servingStats() ServingStats {
	out := ServingStats{
		InFlight: s.adm.InFlight(),
		QueueLen: s.adm.QueueLen(),
		Brownout: s.brown.Snapshot(),
		Breakers: make(map[string]string, len(s.breakers)),
		SemCache: s.semCacheStats(),
	}
	workers := s.cfg.PlannerWorkers
	if workers < 1 {
		workers = 1
	}
	out.Planner = PlannerServingStats{
		Workers:        workers,
		SamplerShards:  s.cfg.SamplerShards,
		NumCPU:         runtime.NumCPU(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		BrownoutCapped: workers > 1 && out.Brownout.Step >= admission.StepReduced,
	}
	if p50, p99, _, ok := s.latw.quantiles(); ok {
		out.VocalizeLatencyMS = map[string]float64{
			"p50": float64(p50) / float64(time.Millisecond),
			"p99": float64(p99) / float64(time.Millisecond),
		}
	}
	for name, br := range s.breakers {
		out.Breakers[name] = br.State().String()
	}
	c := &s.serving
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, n := range c.ladderServed {
		if n > 0 {
			if out.LadderServed == nil {
				out.LadderServed = make(map[string]int64, admission.NumSteps)
			}
			out.LadderServed[admission.Step(i).String()] = n
		}
	}
	for name, t := range c.tenants {
		ts := TenantServingStats{
			Tenant:     name,
			Served:     t.served,
			Cached:     t.cached,
			Queued:     t.queued,
			BrownedOut: t.brownedOut,
			Fallbacks:  t.fallbacks,
			ClientGone: t.clientGone,
		}
		if len(t.shed) > 0 {
			ts.Shed = make(map[string]int64, len(t.shed))
			for reason, n := range t.shed {
				ts.Shed[reason] = n
			}
		}
		out.Tenants = append(out.Tenants, ts)
	}
	sort.Slice(out.Tenants, func(i, j int) bool {
		return out.Tenants[i].Tenant < out.Tenants[j].Tenant
	})
	return out
}

// RetryAfterHint exposes the load-derived Retry-After for operational
// probes (loadgen validates hints grow with queue depth).
func (s *Server) RetryAfterHint() time.Duration {
	ra := s.adm.RetryAfter()
	if o := s.opts.RetryAfter; o > ra {
		ra = o
	}
	return ra
}
