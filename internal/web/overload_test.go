package web

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/speech"
)

// waitInFlight blocks until srv holds at least one admission slot.
func waitInFlight(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.InFlight() == 0 {
		t.Fatal("no request ever acquired an admission slot")
	}
}

// TestShedLeavesSessionUntouched is the retry-safety guarantee: a 503
// must not have applied the command, or the client's retry would
// double-apply it ("drill down" twice deep).
func TestShedLeavesSessionUntouched(t *testing.T) {
	// Semantic caching off: repeated queries must reach admission here
	// (cache hits are served pre-admission by design).
	srv, ts := newHardenedServer(t, Options{MaxConcurrent: 1, SemCacheEntries: -1, SemCacheViews: -1})
	// Establish a session with one applied breakdown.
	out, code := postQuery(t, ts, map[string]string{
		"session": "shed", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	if code != http.StatusOK {
		t.Fatalf("setup query status = %d: %v", code, out)
	}

	hold := make(chan struct{})
	srv.holdVocalize = hold
	blockerDone := make(chan int, 1)
	go func() {
		_, code := postQuery(t, ts, map[string]string{
			"session": "blocker", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		blockerDone <- code
	}()
	waitInFlight(t, srv)

	// The saturated server sheds this mutating command with 503.
	out, code = postQuery(t, ts, map[string]string{
		"session": "shed", "dataset": "flights",
		"input": "drill down", "method": "prior",
	})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated drill down status = %d: %v", code, out)
	}

	close(hold)
	if code := <-blockerDone; code != http.StatusOK {
		t.Fatalf("blocker finished with %d", code)
	}

	// The shed must not have drilled: the session still stands at the
	// season breakdown, so "back" undoes exactly that one step and a
	// second "back" finds nothing left — had the shed drill applied,
	// both would succeed.
	out, code = postQuery(t, ts, map[string]string{
		"session": "shed", "dataset": "flights", "input": "back",
	})
	if code != http.StatusOK {
		t.Fatalf("back status = %d: %v", code, out)
	}
	out, code = postQuery(t, ts, map[string]string{
		"session": "shed", "dataset": "flights", "input": "back",
	})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("second back status = %d: %v; a shed drill down must not have mutated the session",
			code, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(strings.ToLower(msg), "nothing") {
		t.Errorf("second back error = %q, want \"nothing to go back to\"", msg)
	}
}

// TestClientDisconnectIs499 maps a canceled request to 499, not 500.
func TestClientDisconnectIs499(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{MaxConcurrent: 1, QueueDepth: 4})
	hold := make(chan struct{})
	srv.holdVocalize = hold
	blockerDone := make(chan int, 1)
	go func() {
		_, code := postQuery(t, ts, map[string]string{
			"session": "blocker", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		blockerDone <- code
	}()
	waitInFlight(t, srv)

	// A second request queues behind the blocker, then its client hangs
	// up. The handler is invoked directly so the recorder survives the
	// cancellation (a real conn would just be torn down).
	ctx, cancel := context.WithCancel(context.Background())
	body, _ := json.Marshal(map[string]string{
		"session": "gone", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	req := httptest.NewRequest("POST", "/api/query", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	handlerDone := make(chan struct{})
	go func() {
		srv.Handler().ServeHTTP(rec, req)
		close(handlerDone)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.QueueLen() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.QueueLen() == 0 {
		t.Fatal("second request never queued")
	}
	cancel()
	<-handlerDone
	if rec.Code != statusClientClosedRequest {
		t.Errorf("canceled-while-queued status = %d, want 499", rec.Code)
	}

	close(hold)
	if code := <-blockerDone; code != http.StatusOK {
		t.Errorf("blocker finished with %d", code)
	}

	// The disconnect is bookkept as clientGone, not as a shed or error.
	st := srv.servingStats()
	var gone int64
	for _, ten := range st.Tenants {
		gone += ten.ClientGone
	}
	if gone != 1 {
		t.Errorf("clientGone = %d, want 1; tenants: %+v", gone, st.Tenants)
	}
}

// TestRetryAfterReflectsBreakerCooldown folds an open breaker's remaining
// cooldown into the shed hint instead of the static floor.
func TestRetryAfterReflectsBreakerCooldown(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{
		BreakerThreshold: 1, BreakerCooldown: 30 * time.Second,
	})
	srv.breakers["flights"].Record(true) // trip
	if st := srv.breakers["flights"].State(); st != admission.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	rec := httptest.NewRecorder()
	srv.writeShed(rec, "flights", http.StatusServiceUnavailable, errInternal)
	ra := rec.Header().Get("Retry-After")
	if ra == "" || ra == "1" {
		t.Fatalf("Retry-After = %q, want the ~30s breaker cooldown", ra)
	}
}

// TestBrownoutLadderEngagesUnderSlowTraffic drives the ladder with a
// latency target no real request can meet and watches it climb from full
// service through reduced budgets and the prior fallback to shedding.
func TestBrownoutLadderEngagesUnderSlowTraffic(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{
		BrownoutTarget: time.Nanosecond,
		BrownoutWindow: 8,
		BrownoutHold:   time.Millisecond,
		// Caching off: the ladder only observes real vocalizer runs, so a
		// repeated query must not short-circuit to a cache hit here.
		SemCacheEntries: -1,
		SemCacheViews:   -1,
	})
	sawPriorFallback := false
	deadline := time.Now().Add(30 * time.Second)
	for srv.brown.Step() != admission.StepShed {
		if time.Now().After(deadline) {
			t.Fatalf("ladder never topped out; stuck at %v", srv.brown.Step())
		}
		out, code := postQuery(t, ts, map[string]string{
			"session": "brown", "dataset": "flights",
			"input": "break down by season", "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("query status = %d: %v", code, out)
		}
		if out["servedBy"] == "prior" && out["fallback"] == "brownout" {
			sawPriorFallback = true
			// The prior grammar: capitalized sentences ending in a period.
			sp, _ := out["speech"].(string)
			if sp == "" || !strings.HasSuffix(strings.TrimSpace(sp), ".") {
				t.Errorf("prior fallback speech looks wrong: %q", sp)
			}
		}
		time.Sleep(2 * time.Millisecond) // let the hold timer expire
	}
	if !sawPriorFallback {
		t.Error("ladder reached shed without ever serving the prior fallback rung")
	}

	// At the top rung queries shed before admission, with Retry-After.
	b, _ := json.Marshal(map[string]string{
		"session": "brown", "dataset": "flights",
		"input": "break down by season", "method": "this",
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("browned-out status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("browned-out shed missing Retry-After")
	}

	// Stats surface the ladder: transitions recorded, shed counted.
	st := srv.servingStats()
	if st.Brownout.StepName != "shed" {
		t.Errorf("stats step = %q, want shed", st.Brownout.StepName)
	}
	if st.Brownout.Transitions["reduced"] == 0 || st.Brownout.Transitions["prior"] == 0 {
		t.Errorf("ladder transitions missing intermediate rungs: %v", st.Brownout.Transitions)
	}
	var shed int64
	for _, ten := range st.Tenants {
		shed += ten.Shed["brownout"]
	}
	if shed == 0 {
		t.Error("brownout shed not counted in tenant stats")
	}
}

// TestBreakerTripsToPriorFallback: consecutive deadline blowouts on the
// holistic path trip the dataset breaker; subsequent "this" requests are
// served by the prior baseline until the cooldown's half-open probe.
func TestBreakerTripsToPriorFallback(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{
		RequestTimeout:   time.Nanosecond,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
	})
	// Each holistic query blows its nanosecond deadline (degraded answer)
	// and feeds the breaker one blowout.
	for i := 0; i < 2; i++ {
		out, code := postQuery(t, ts, map[string]string{
			"session": "trip", "dataset": "flights",
			"input": "break down by season", "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("blowout query %d status = %d: %v", i, code, out)
		}
		if out["degraded"] != true {
			t.Fatalf("blowout query %d not degraded: %v", i, out)
		}
	}
	if st := srv.breakers["flights"].State(); st != admission.BreakerOpen {
		t.Fatalf("breaker state after 2 blowouts = %v, want open", st)
	}
	out, code := postQuery(t, ts, map[string]string{
		"session": "trip", "dataset": "flights",
		"input": "break down by season", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("post-trip query status = %d: %v", code, out)
	}
	if out["servedBy"] != "prior" || out["fallback"] != "breaker" {
		t.Errorf("post-trip query servedBy=%v fallback=%v, want prior/breaker",
			out["servedBy"], out["fallback"])
	}
	// An explicit "prior" request is untouched by the breaker.
	out, _ = postQuery(t, ts, map[string]string{
		"session": "trip", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	if out["fallback"] != nil {
		t.Errorf("explicit prior request reported fallback %v", out["fallback"])
	}
	// Stats expose the open breaker and the fallback count.
	st := srv.servingStats()
	if st.Breakers["flights"] != "open" {
		t.Errorf("stats breaker state = %q, want open", st.Breakers["flights"])
	}
	var fb int64
	for _, ten := range st.Tenants {
		fb += ten.Fallbacks
	}
	if fb == 0 {
		t.Error("breaker fallback not counted in tenant stats")
	}
}

// TestTenantRateLimit429 sheds over-rate tenants with 429 while other
// tenants keep flowing.
func TestTenantRateLimit429(t *testing.T) {
	// Caching off: a cache hit is served before the rate limiter (replays
	// are nearly free), which would turn the expected 429s into 200s.
	_, ts := newHardenedServer(t, Options{TenantRate: 0.0001, TenantBurst: 1, SemCacheEntries: -1, SemCacheViews: -1})
	out, code := postQuery(t, ts, map[string]string{
		"session": "ratey", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	if code != http.StatusOK {
		t.Fatalf("burst query status = %d: %v", code, out)
	}
	b, _ := json.Marshal(map[string]string{
		"session": "ratey", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-rate status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	// A different session is a different tenant with a fresh bucket.
	_, code = postQuery(t, ts, map[string]string{
		"session": "other", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	if code != http.StatusOK {
		t.Errorf("other tenant status = %d, want 200", code)
	}
	// The X-Tenant header overrides the session as the tenant identity.
	req, _ := http.NewRequest("POST", ts.URL+"/api/query", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", "ratey")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST with X-Tenant: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("X-Tenant over-rate status = %d, want 429", resp.StatusCode)
	}
}

// TestDrainUnderOverload is satellite 4's web half: StartDrain with a
// full admission queue lets the in-flight request finish with a
// grammar-valid answer while every queued request sheds cleanly.
func TestDrainUnderOverload(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{MaxConcurrent: 1, QueueDepth: 4})
	hold := make(chan struct{})
	srv.holdVocalize = hold

	type result struct {
		out  map[string]any
		code int
	}
	first := make(chan result, 1)
	go func() {
		out, code := postQuery(t, ts, map[string]string{
			"session": "inflight", "dataset": "flights",
			"input": "break down by season", "method": "this",
		})
		first <- result{out, code}
	}()
	waitInFlight(t, srv)

	queued := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func(i int) {
			_, code := postQuery(t, ts, map[string]string{
				"session": "queued", "dataset": "flights",
				"input": "break down by season", "method": "prior",
			})
			queued <- code
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.QueueLen() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.QueueLen() < 3 {
		t.Fatalf("queue depth = %d, want 3", srv.adm.QueueLen())
	}

	srv.StartDrain()
	for i := 0; i < 3; i++ {
		if code := <-queued; code != http.StatusServiceUnavailable {
			t.Errorf("queued request %d status = %d, want 503", i, code)
		}
	}
	// The in-flight request keeps its slot across the drain and still
	// answers in-grammar.
	close(hold)
	r := <-first
	if r.code != http.StatusOK {
		t.Fatalf("in-flight request status = %d: %v", r.code, r.out)
	}
	sp, _ := r.out["speech"].(string)
	if !(speech.Parser{}).Conforms(sp) {
		t.Errorf("in-flight answer not grammar-valid after drain: %q", sp)
	}
	// New work is refused while draining.
	b, _ := json.Marshal(map[string]string{
		"session": "late", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain status = %d, want 503", resp.StatusCode)
	}
}
