package web

import (
	"context"
	"net/http"
	"runtime/debug"
	"time"
)

// withRecovery converts handler panics into 500 responses with a logged
// stack trace, so one bad query cannot take the whole daemon down.
// http.ErrAbortHandler passes through untouched (the standard way to abort
// a response).
func withRecovery(next http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			if logf != nil {
				logf("web: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
			}
			// Best effort: if the handler already wrote a response this
			// header is dropped by the server, which is all we can do.
			writeError(w, http.StatusInternalServerError, errInternal)
		}()
		next.ServeHTTP(w, r)
	})
}

// withTimeout bounds every request by d via its context. Handlers observe
// the deadline through r.Context() — the vocalizers degrade rather than
// error — so unlike http.TimeoutHandler the response still carries the
// partial answer.
func withTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
