// Package web exposes the voice-OLAP system over HTTP, mirroring the
// paper's crowd-study interface: clients submit keyword commands per
// session, choose between the holistic vocalizer and the prior baseline
// for every single query, and receive the speech text (a browser would
// hand it to a TTS API). Queries are logged server-side as in the study.
//
// The server is hardened for sustained multi-tenant traffic: every
// request runs under a deadline (vocalizers degrade rather than hang),
// panics become 500s, the query log is a fixed-capacity ring, and idle
// sessions are evicted by TTL and LRU. Overload is governed by the
// internal/admission layer: per-tenant token buckets and a weighted-fair
// bounded queue in front of the vocalizers (429/503 + load-derived
// Retry-After beyond them), a brownout ladder that trades answer quality
// for latency headroom, and per-dataset circuit breakers that trip the
// holistic planner to the prior baseline after consecutive deadline
// blowouts.
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/semcache"
	"repro/internal/speech"
	"repro/internal/voice"
)

// DatasetInfo registers one dataset with its spoken measure.
type DatasetInfo struct {
	// Name is the public dataset identifier ("flights", "salaries").
	Name string
	// Dataset is the bound data.
	Dataset *olap.Dataset
	// MeasureCol is the measure column vocalized by default.
	MeasureCol string
	// MeasureDesc is its spoken description.
	MeasureDesc string
	// Format renders measure values.
	Format speech.ValueFormat
}

// QueryLogEntry records one vocalized query, as the paper's server did.
type QueryLogEntry struct {
	Time      time.Time `json:"time"`
	Session   string    `json:"session"`
	Dataset   string    `json:"dataset"`
	Input     string    `json:"input"`
	Method    string    `json:"method"`
	Speech    string    `json:"speech"`
	LatencyMS float64   `json:"latencyMs"`
	// Degraded marks answers cut short by the request deadline.
	Degraded bool `json:"degraded,omitempty"`
	// ServedBy is the vocalizer that actually answered; it differs from
	// Method when the brownout ladder or a circuit breaker forced the
	// prior fallback, and is "cache" for replayed answers.
	ServedBy string `json:"servedBy,omitempty"`
	// Origin names the vocalizer that originally produced a cache-served
	// speech.
	Origin string `json:"origin,omitempty"`
	// Cache classifies the semantic-cache path ("hit", "coalesced",
	// "warm"); empty for cold answers.
	Cache string `json:"cache,omitempty"`
	// DataEpoch is the dataset epoch the answer was computed against.
	DataEpoch int64 `json:"dataEpoch"`
	// Stale marks answers whose epoch advanced before the reply was
	// written (rows were ingested mid-answer).
	Stale bool `json:"stale,omitempty"`
}

// Options tunes the server's robustness knobs. The zero value selects the
// defaults noted per field.
type Options struct {
	// RequestTimeout bounds each request via its context (default 30s;
	// negative disables). Vocalizers degrade at the deadline, so the
	// response still carries a partial answer.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the /api/query request body (default 64 KiB).
	MaxBodyBytes int64
	// MaxConcurrent bounds concurrent vocalizations; requests beyond it
	// (and beyond QueueDepth) receive 503 with a Retry-After hint
	// (default 32).
	MaxConcurrent int
	// RetryAfter is the floor of the Retry-After hint attached to shed
	// responses; the hint grows with the admission queue's predicted wait
	// and any open breaker's cooldown (default 1s).
	RetryAfter time.Duration
	// QueueDepth bounds requests waiting in the weighted-fair admission
	// queue once every vocalization slot is busy. 0 (the default) sheds
	// immediately at saturation, matching the pre-admission behavior.
	QueueDepth int
	// TenantRate is the per-tenant token-bucket refill rate in requests
	// per second; 0 disables per-tenant rate limiting (the default).
	// Over-rate requests receive 429.
	TenantRate float64
	// TenantBurst is the per-tenant bucket capacity (default: one second
	// of TenantRate, at least 1).
	TenantBurst int
	// TenantWeights gives named tenants a larger fair share of admission
	// grants under contention (default weight 1).
	TenantWeights map[string]int
	// BrownoutTarget is the p99 vocalize-latency goal for the brownout
	// ladder; when the sliding p99 overshoots it the server steps down
	// through reduced planner budgets, the prior baseline, and finally
	// sheds. 0 disables the ladder (the default).
	BrownoutTarget time.Duration
	// BrownoutWindow is the sliding sample count the p99 is computed
	// over (default 64).
	BrownoutWindow int
	// BrownoutHold is the minimum dwell time between ladder steps
	// (default 2s).
	BrownoutHold time.Duration
	// BreakerThreshold trips a dataset's circuit breaker — holistic
	// requests fall back to the prior baseline — after this many
	// consecutive deadline blowouts. 0 disables breakers (the default).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before a
	// half-open probe (default 10s).
	BreakerCooldown time.Duration
	// LogCap is the query-log ring capacity; the oldest entries are
	// dropped beyond it (default 10000).
	LogCap int
	// MaxSessions caps live sessions; the least recently used is evicted
	// beyond it (default 1024).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (default 1h).
	SessionTTL time.Duration
	// SemCacheEntries caps the tier-A semantic answer cache: finished
	// full-quality speeches memoized by (dataset epoch, canonical query)
	// and replayed bit-identically for equivalent queries (default 1024;
	// negative disables the semantic cache entirely).
	SemCacheEntries int
	// SemCacheViews caps the tier-B cache of warmed sample views, which
	// let equivalent queries skip scan/sample cost even after their
	// tier-A entry is evicted (default 64; negative disables tier B).
	SemCacheViews int
	// PoolSize is the per-dataset warm session pool: pristine cloned nlq
	// sessions checked out on first use so no new voice session pays
	// cold-start (default 4; negative disables pooling).
	PoolSize int
	// Logf receives operational messages such as panic stacks (default
	// log.Printf).
	Logf func(format string, args ...any)
}

// normalize fills unset options with their defaults.
func (o Options) normalize() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 10
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 32
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.LogCap <= 0 {
		o.LogCap = 10000
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = time.Hour
	}
	if o.SemCacheEntries == 0 {
		o.SemCacheEntries = 1024
	}
	if o.SemCacheViews == 0 {
		o.SemCacheViews = 64
	}
	if o.PoolSize == 0 {
		o.PoolSize = 4
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// errInternal hides internal error details from clients; the real error
// goes to the operational log.
var errInternal = errors.New("internal server error")

// queryLog is a fixed-capacity ring holding the newest entries; the study
// server must survive unbounded query streams with bounded memory.
type queryLog struct {
	cap     int
	entries []QueryLogEntry
	next    int
	dropped int64
}

// add appends e, overwriting the oldest entry once the ring is full.
func (l *queryLog) add(e QueryLogEntry) {
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
	l.dropped++
}

// snapshot copies the entries in chronological order.
func (l *queryLog) snapshot() []QueryLogEntry {
	out := make([]QueryLogEntry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// sessionEntry tracks a session's last use for TTL/LRU eviction.
type sessionEntry struct {
	sess     *nlq.Session
	lastUsed time.Time
}

// Server serves the voice-OLAP API.
type Server struct {
	mu       sync.Mutex
	datasets map[string]*datasetState
	order    []string
	sessions map[string]*sessionEntry
	log      queryLog
	cfg      core.Config
	opts     Options
	// adm bounds and fair-queues concurrent vocalizations.
	adm *admission.Controller
	// brown walks the degradation ladder from vocalize latencies.
	brown *admission.Brownout
	// breakers guards the holistic path per dataset; the map is fixed at
	// construction and read without s.mu.
	breakers map[string]*admission.Breaker
	// serving counts per-tenant admission outcomes for /api/stats.
	serving servingCounters
	// answers is the tier-A semantic cache: finished full-quality
	// speeches keyed by (dataset epoch, vocalizer, canonical query).
	// nil disables semantic caching.
	answers *semcache.Cache[cachedAnswer]
	// views is the tier-B cache of warmed sample views; nil disables
	// warm starts.
	views *semcache.Cache[*sampling.View]
	// viewJobs feeds the background view builder; quit stops it.
	viewJobs  chan viewJob
	quit      chan struct{}
	closeOnce sync.Once
	// ingestBatches / ingestRows count accepted append batches and rows;
	// staleAnswers counts replies flagged stale (epoch moved mid-answer).
	ingestBatches atomic.Int64
	ingestRows    atomic.Int64
	staleAnswers  atomic.Int64
	// latw tracks vocalize wall latencies for /metrics quantiles.
	latw *latencyWindow
	// now is the server-side bookkeeping clock, stubbed in tests.
	now func() time.Time
	// holdVocalize, when non-nil, blocks vocalizations until closed —
	// a test hook for exercising admission control deterministically.
	holdVocalize chan struct{}
	// vocalizeParked, when non-nil, is closed once a request reaches the
	// holdVocalize gate (its command is committed, its epoch captured) —
	// the companion hook that lets a test order events around the hold.
	vocalizeParked chan struct{}
}

// NewServer registers the datasets and returns a server with default
// Options. cfg configures the holistic vocalizer (a simulated clock makes
// responses immediate — the browser performs actual playback).
func NewServer(cfg core.Config, infos ...DatasetInfo) (*Server, error) {
	return NewServerWith(cfg, Options{}, infos...)
}

// NewServerWith is NewServer with explicit robustness Options.
func NewServerWith(cfg core.Config, opts Options, infos ...DatasetInfo) (*Server, error) {
	if len(infos) == 0 {
		return nil, errors.New("web: at least one dataset required")
	}
	opts = opts.normalize()
	s := &Server{
		datasets: make(map[string]*datasetState, len(infos)),
		sessions: make(map[string]*sessionEntry),
		log:      queryLog{cap: opts.LogCap},
		cfg:      cfg,
		opts:     opts,
		breakers: make(map[string]*admission.Breaker, len(infos)),
		latw:     newLatencyWindow(512),
		now:      time.Now,
	}
	if opts.SemCacheEntries > 0 {
		s.answers = semcache.New[cachedAnswer](opts.SemCacheEntries)
	}
	if opts.SemCacheViews > 0 {
		s.views = semcache.New[*sampling.View](opts.SemCacheViews)
		s.viewJobs = make(chan viewJob, 16)
		s.quit = make(chan struct{})
		go s.viewBuilder()
	}
	s.adm = admission.NewController(admission.Config{
		Slots:      opts.MaxConcurrent,
		QueueDepth: opts.QueueDepth,
		Rate:       opts.TenantRate,
		Burst:      float64(opts.TenantBurst),
		Weights:    opts.TenantWeights,
	})
	s.brown = admission.NewBrownout(admission.BrownoutConfig{
		Target: opts.BrownoutTarget,
		Window: opts.BrownoutWindow,
		Hold:   opts.BrownoutHold,
	})
	for _, info := range infos {
		if info.Dataset == nil || info.Name == "" {
			return nil, errors.New("web: dataset info incomplete")
		}
		if _, dup := s.datasets[info.Name]; dup {
			return nil, fmt.Errorf("web: duplicate dataset %q", info.Name)
		}
		st, err := newDatasetState(info, opts.PoolSize)
		if err != nil {
			return nil, err
		}
		s.datasets[info.Name] = st
		s.order = append(s.order, info.Name)
		s.breakers[info.Name] = admission.NewBreaker(admission.BreakerConfig{
			Threshold: opts.BreakerThreshold,
			Cooldown:  opts.BreakerCooldown,
		})
	}
	return s, nil
}

// Handler returns the HTTP handler with the recovery and per-request
// timeout middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("POST /api/ingest", s.handleIngest)
	mux.HandleFunc("GET /api/log", s.handleLog)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	var h http.Handler = mux
	h = withTimeout(h, s.opts.RequestTimeout)
	h = withRecovery(h, s.opts.Logf)
	return h
}

// handleIndex serves the minimal study page.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// handleDatasets lists the registered datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type dataset struct {
		Name    string `json:"name"`
		Rows    int    `json:"rows"`
		Measure string `json:"measure"`
		// Epoch counts data changes (reloads and ingest batches); Live
		// marks datasets that have accepted streaming appends.
		Epoch int64 `json:"epoch"`
		Live  bool  `json:"live,omitempty"`
	}
	s.mu.Lock()
	out := make([]dataset, 0, len(s.order))
	for _, name := range s.order {
		st := s.datasets[name]
		out = append(out, dataset{
			Name:    name,
			Rows:    st.info.Dataset.Table().NumRows(),
			Measure: st.info.MeasureDesc,
			Epoch:   st.epoch,
			Live:    st.live != nil,
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /api/query payload.
type queryRequest struct {
	// Session identifies the exploration session (the study asked for the
	// crowd worker ID).
	Session string `json:"session"`
	// Dataset selects the registered dataset.
	Dataset string `json:"dataset"`
	// Input is the voice or keyboard command.
	Input string `json:"input"`
	// Method selects the vocalizer: "this" (holistic) or "prior".
	Method string `json:"method"`
}

// queryResponse is the /api/query reply.
type queryResponse struct {
	Action    string  `json:"action"`
	Message   string  `json:"message,omitempty"`
	Speech    string  `json:"speech,omitempty"`
	LatencyMS float64 `json:"latencyMs"`
	// Degraded marks an answer cut short by the request deadline: the
	// speech is still grammar-valid but shorter than planned.
	Degraded bool `json:"degraded,omitempty"`
	// Structured carries the grammar decomposition for holistic answers,
	// so clients can render or re-score speeches without re-parsing text.
	Structured *encode.Speech `json:"structured,omitempty"`
	// SSML carries speech markup for TTS engines that accept it.
	SSML string `json:"ssml,omitempty"`
	// ServedBy names the vocalizer that answered ("this" or "prior");
	// it differs from the requested method when the brownout ladder or a
	// breaker forced the prior fallback, and is "cache" when the speech
	// was replayed from the semantic answer cache. Clients validating
	// grammar must check this field (and Origin for cache-served
	// answers), not the method they asked for.
	ServedBy string `json:"servedBy,omitempty"`
	// Origin names the vocalizer that originally produced a cache-served
	// speech ("this" or "prior"); grammar conformance follows Origin when
	// ServedBy is "cache".
	Origin string `json:"origin,omitempty"`
	// Cache classifies the semantic-cache path: "hit" for a replayed
	// answer, "coalesced" when this request shared another request's
	// in-flight computation of the same canonical query, "warm" when the
	// planner started from a prebuilt tier-B sample view. Empty for cold
	// answers.
	Cache string `json:"cache,omitempty"`
	// Fallback explains a ServedBy/method mismatch: "brownout" or
	// "breaker".
	Fallback string `json:"fallback,omitempty"`
	// DataEpoch is the dataset epoch the answer's data snapshot belonged
	// to. Streaming clients compare it with ingest acknowledgements: any
	// answer with DataEpoch at or above the client's last acked epoch
	// provably includes those appends.
	DataEpoch int64 `json:"dataEpoch"`
	// TableRows is the committed row count of that snapshot.
	TableRows int64 `json:"tableRows,omitempty"`
	// Stale flags an answer computed against an epoch that was already
	// superseded by an ingest when the reply was written. The speech
	// itself is unchanged and grammar-valid (degrade, don't error);
	// StaleNote carries the spoken caveat.
	Stale bool `json:"stale,omitempty"`
	// StaleNote is the spoken freshness caveat (speech.StaleNote) set
	// exactly when Stale is true.
	StaleNote string `json:"staleNote,omitempty"`
}

// methodName normalizes the requested vocalization method; ok is false
// for methods outside the study's menu (rejected with 400 so client typos
// cannot skew the study logs).
func methodName(m string) (string, bool) {
	switch m {
	case "", "this":
		return "this", true
	case "prior":
		return "prior", true
	default:
		return "", false
	}
}

// session returns the live session for key, creating it on first use (from
// the dataset's warm pool) and evicting expired and least-recently-used
// sessions. Caller holds s.mu.
func (s *Server) session(key string, st *datasetState) (*nlq.Session, error) {
	now := s.now()
	// TTL sweep: drop sessions idle past the deadline.
	for k, e := range s.sessions {
		if now.Sub(e.lastUsed) > s.opts.SessionTTL {
			delete(s.sessions, k)
		}
	}
	if e, ok := s.sessions[key]; ok {
		e.lastUsed = now
		return e.sess, nil
	}
	sess, err := st.newSession()
	if err != nil {
		return nil, err
	}
	// LRU eviction: make room before inserting.
	for len(s.sessions) >= s.opts.MaxSessions {
		oldestKey := ""
		var oldest time.Time
		for k, e := range s.sessions {
			if oldestKey == "" || e.lastUsed.Before(oldest) {
				oldestKey, oldest = k, e.lastUsed
			}
		}
		delete(s.sessions, oldestKey)
	}
	s.sessions[key] = &sessionEntry{sess: sess, lastUsed: now}
	return sess, nil
}

// handleQuery parses the command in the caller's session and vocalizes
// the resulting query with the chosen method.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, errors.New("session required"))
		return
	}
	method, ok := methodName(req.Method)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown method %q (want \"this\" or \"prior\")", req.Method))
		return
	}
	s.mu.Lock()
	st, ok := s.datasets[req.Dataset]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	key := req.Session + "\x00" + req.Dataset
	sess, err := s.session(key, st)
	if err != nil {
		s.mu.Unlock()
		s.opts.Logf("web: session init: %v", err)
		writeError(w, http.StatusInternalServerError, errInternal)
		return
	}
	// Stage the parse on a clone: admission may still shed this request,
	// and a shed must be side-effect free so a client retry does not
	// double-apply the command ("drill down" twice deep, "back" twice up).
	staged := sess.Clone()
	s.mu.Unlock()
	resp, err := staged.Parse(req.Input)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}

	if !resp.IsQuery {
		// Non-query commands (help, summaries, navigation feedback) never
		// vocalize, so they bypass admission; commit on the live session.
		s.mu.Lock()
		live, err := sess.Parse(req.Input)
		s.mu.Unlock()
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Action: live.Action, Message: live.Message})
		return
	}

	tenant := tenantOf(r, req.Session)
	// Semantic fast path: an equivalent query already answered this epoch
	// replays its speech before admission — even while shedding.
	if s.tryServeCached(w, req, sess, st, method, tenant) {
		return
	}
	// The ladder's last rung refuses queries before they touch the queue.
	if s.brown.Step() == admission.StepShed {
		s.serving.shed(tenant, "brownout")
		s.writeShed(w, req.Dataset, http.StatusServiceUnavailable,
			errors.New("server browned out, retry shortly"))
		return
	}
	res := s.adm.Acquire(r.Context(), tenant)
	if res.Ticket == nil {
		switch res.Shed {
		case admission.ShedCanceled:
			if r.Context().Err() == context.DeadlineExceeded {
				writeError(w, http.StatusRequestTimeout, errors.New("request deadline exceeded while queued"))
				break
			}
			// The client hung up while queued; nobody reads this reply,
			// but the status keeps the log honest (499, not 5xx).
			s.serving.clientGone(tenant)
			writeError(w, statusClientClosedRequest, errors.New("client closed request"))
		case admission.ShedRate:
			s.serving.shed(tenant, res.Shed.String())
			s.writeShed(w, req.Dataset, http.StatusTooManyRequests,
				errors.New("tenant rate limit exceeded, retry shortly"))
		default:
			s.serving.shed(tenant, res.Shed.String())
			s.writeShed(w, req.Dataset, http.StatusServiceUnavailable,
				errors.New("server saturated, retry shortly"))
		}
		return
	}
	defer res.Ticket.Release()

	// Admitted: commit the staged command on the live session. The parse
	// re-runs under the lock so concurrent commits serialize; a racing
	// command may have changed the session since the dry run, so the
	// committed response is authoritative. The dataset info is captured
	// under the same lock hold as the epoch: reload and ingest swap
	// st.info while holding s.mu, so reading it later (inside the compute
	// closure) would race and could pair an old epoch with new data.
	s.mu.Lock()
	resp, err = sess.Parse(req.Input)
	var q olap.Query
	if err == nil {
		q = sess.Query()
	}
	epoch := st.epoch
	info := st.info
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if !resp.IsQuery {
		writeJSON(w, http.StatusOK, queryResponse{Action: resp.Action, Message: resp.Message})
		return
	}

	if s.holdVocalize != nil {
		if s.vocalizeParked != nil {
			close(s.vocalizeParked)
			s.vocalizeParked = nil
		}
		<-s.holdVocalize
	}
	step := s.brown.Step()
	if step == admission.StepShed {
		// The ladder topped out while we queued; we already hold a slot,
		// so serve the cheap fallback instead of wasting the wait.
		step = admission.StepPrior
	}
	servedBy, fallback := method, ""
	if method == "this" {
		if step >= admission.StepPrior {
			servedBy, fallback = "prior", "brownout"
		} else if !s.breakers[req.Dataset].Allow() {
			servedBy, fallback = "prior", "breaker"
		}
	}
	// Every vocalizer runs on the canonical query: key equality then
	// implies identical planner input, which is what makes replaying a
	// cached speech sound.
	nq := semcache.Normalize(q)
	wallStart := time.Now()
	ans, outcome, err := s.answerQuery(r.Context(), info, req.Dataset, epoch, nq, method, servedBy, step, fallback)
	if err != nil {
		if errors.Is(err, context.Canceled) || r.Context().Err() == context.Canceled {
			s.serving.clientGone(tenant)
			writeError(w, statusClientClosedRequest, errors.New("client closed request"))
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			writeError(w, http.StatusRequestTimeout, errors.New("request deadline exceeded"))
			return
		}
		s.opts.Logf("web: vocalize: %v", err)
		writeError(w, http.StatusInternalServerError, errInternal)
		return
	}
	servedAs, origin, cacheTag := servedBy, "", ""
	latencyMS := float64(ans.voc.latency) / float64(time.Millisecond)
	switch outcome {
	case semcache.Hit, semcache.Coalesced:
		// The stored answer is always clean and full-quality, whatever
		// ladder step this request happened to arrive at.
		servedAs, origin, cacheTag = "cache", ans.origin, outcome.String()
		fallback = ""
		latencyMS = float64(time.Since(wallStart)) / float64(time.Millisecond)
		s.serving.cached(tenant, outcome)
	default:
		s.serving.served(tenant, res.Waited > 0, step, fallback)
		if ans.warm {
			cacheTag = "warm"
			s.serving.warmServed()
		}
	}
	s.respondSpeech(w, req, method, resp, ans.voc, servedAs, origin, cacheTag, fallback, latencyMS, st, epoch)
}

// respondSpeech writes the speech response and appends the query-log
// entry — shared by the cold path and the cache fast path. dataEpoch is
// the dataset epoch the answer was computed against; if the dataset has
// moved past it by the time the reply is written, the answer is flagged
// stale (degrade, don't error) with the spoken caveat attached.
func (s *Server) respondSpeech(w http.ResponseWriter, req queryRequest, method string, resp nlq.Response, voc vocOut, servedBy, origin, cacheTag, fallback string, latencyMS float64, st *datasetState, dataEpoch int64) {
	out := queryResponse{
		Action:    resp.Action,
		Message:   resp.Message,
		Speech:    voc.text,
		LatencyMS: latencyMS,
		Degraded:  voc.degraded,
		ServedBy:  servedBy,
		Origin:    origin,
		Cache:     cacheTag,
		Fallback:  fallback,
		DataEpoch: dataEpoch,
		TableRows: voc.tableRows,
	}
	if voc.structured != nil {
		enc := encode.EncodeSpeech(voc.structured)
		out.Structured = &enc
		out.SSML = voc.structured.SSML(speech.DefaultSSMLOptions())
	}
	s.mu.Lock()
	if st.epoch != dataEpoch {
		out.Stale = true
		out.StaleNote = speech.StaleNote
	}
	s.log.add(QueryLogEntry{
		Time:      s.now(),
		Session:   req.Session,
		Dataset:   req.Dataset,
		Input:     req.Input,
		Method:    method,
		Speech:    out.Speech,
		LatencyMS: latencyMS,
		Degraded:  voc.degraded,
		ServedBy:  servedBy,
		Origin:    origin,
		Cache:     cacheTag,
		DataEpoch: dataEpoch,
		Stale:     out.Stale,
	})
	s.mu.Unlock()
	if out.Stale {
		s.staleAnswers.Add(1)
	}
	writeJSON(w, http.StatusOK, out)
}

// vocOut is one vocalizer run's result.
type vocOut struct {
	text string
	// structured is non-nil for the holistic grammar only.
	structured *speech.Speech
	latency    time.Duration
	degraded   bool
	// reason explains a degraded answer (the context error text).
	reason string
	// tableRows is the committed row count of the data snapshot the
	// answer was computed over.
	tableRows int64
}

// vocalize runs the chosen vocalizer on the query under ctx. At
// StepReduced the holistic planner runs with quartered budgets: cheaper
// and rougher answers, same grammar. A non-nil view warm-starts the
// holistic planner from the materialized sample instead of scanning.
func (s *Server) vocalize(ctx context.Context, info DatasetInfo, q olap.Query, method string, step admission.Step, view *sampling.View) (vocOut, error) {
	if method == "prior" {
		out, err := baseline.NewPrior(info.Dataset, q, baseline.Config{
			Format:      info.Format,
			MergeValues: true,
		}).VocalizeContext(ctx)
		if err != nil {
			return vocOut{}, err
		}
		return vocOut{
			text:      out.Text,
			latency:   out.Latency,
			degraded:  out.Truncated,
			tableRows: int64(info.Dataset.Table().NumRows()),
		}, nil
	}
	cfg := s.cfg
	cfg.Format = info.Format
	if cfg.Clock == nil {
		cfg.Clock = voice.NewSimClock()
	}
	if cfg.MaxRoundsPerSentence == 0 {
		cfg.MaxRoundsPerSentence = 500
	}
	if cfg.MaxTreeNodes == 0 {
		cfg.MaxTreeNodes = 50000
	}
	if step == admission.StepReduced {
		cfg.MaxRoundsPerSentence = reducedBudget(cfg.MaxRoundsPerSentence, 32)
		cfg.MaxTreeNodes = reducedBudget(cfg.MaxTreeNodes, 1024)
		// Parallel planning multiplies per-query CPU demand exactly when
		// the ladder says the machine is saturated: browned-out queries
		// keep a single sampling worker.
		cfg.PlannerWorkers = 1
	}
	if view != nil {
		out, err := core.NewWarm(info.Dataset, view, cfg).VocalizeContext(ctx)
		if err == nil {
			return vocOut{
				text:       out.Text(),
				structured: out.Speech,
				latency:    out.Latency,
				degraded:   out.Degraded,
				reason:     out.DegradeReason,
				tableRows:  out.TableRows,
			}, nil
		}
		// A view the warm vocalizer rejects (uncertainty mode turned on
		// since the build, foreign dataset) falls back to the cold path.
	}
	out, err := core.NewHolistic(info.Dataset, q, cfg).VocalizeContext(ctx)
	if err != nil {
		return vocOut{}, err
	}
	return vocOut{
		text:       out.Text(),
		structured: out.Speech,
		latency:    out.Latency,
		degraded:   out.Degraded,
		reason:     out.DegradeReason,
		tableRows:  out.TableRows,
	}, nil
}

// reducedBudget quarters a planner budget with a floor.
func reducedBudget(v, floor int) int {
	if v /= 4; v < floor {
		v = floor
	}
	return v
}

// handleLog returns the query log (newest LogCap entries).
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := s.log.snapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing sensible left to do.
		return
	}
}

// writeError writes a JSON error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// indexHTML is the minimal single-page study interface. Speech synthesis
// uses the browser's speechSynthesis API, standing in for the paper's
// ResponsiveVoiceJS integration.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>Voice-Based OLAP</title></head>
<body>
<h1>Voice-Based OLAP</h1>
<p>Type a command (say "help" for keywords). Results are spoken aloud.</p>
<select id="dataset"></select>
<select id="method">
  <option value="this">This approach (holistic)</option>
  <option value="prior">Prior vocalization</option>
</select>
<input id="input" size="60" placeholder="how does cancellation depend on region and season">
<button onclick="ask()">Ask</button>
<pre id="out"></pre>
<script>
const session = "web-" + Math.random().toString(36).slice(2);
fetch("/api/datasets").then(r => r.json()).then(ds => {
  const sel = document.getElementById("dataset");
  ds.forEach(d => { const o = document.createElement("option"); o.value = d.name; o.textContent = d.name + " (" + d.measure + ")"; sel.appendChild(o); });
});
async function ask() {
  const body = {
    session: session,
    dataset: document.getElementById("dataset").value,
    input: document.getElementById("input").value,
    method: document.getElementById("method").value,
  };
  const r = await fetch("/api/query", {method: "POST", headers: {"Content-Type": "application/json"}, body: JSON.stringify(body)});
  const j = await r.json();
  const text = j.error || j.speech || j.message || "";
  document.getElementById("out").textContent = text + (j.speech ? "\n\n[latency " + j.latencyMs.toFixed(1) + " ms]" : "");
  if (text && window.speechSynthesis) {
    window.speechSynthesis.speak(new SpeechSynthesisUtterance(text));
  }
}
</script>
</body>
</html>
`
