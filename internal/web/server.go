// Package web exposes the voice-OLAP system over HTTP, mirroring the
// paper's crowd-study interface: clients submit keyword commands per
// session, choose between the holistic vocalizer and the prior baseline
// for every single query, and receive the speech text (a browser would
// hand it to a TTS API). Queries are logged server-side as in the study.
//
// The server is hardened for sustained traffic: every request runs under
// a deadline (vocalizers degrade rather than hang), panics become 500s, a
// semaphore bounds concurrent vocalizations (503 + Retry-After beyond
// it), the query log is a fixed-capacity ring, and idle sessions are
// evicted by TTL and LRU.
package web

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// DatasetInfo registers one dataset with its spoken measure.
type DatasetInfo struct {
	// Name is the public dataset identifier ("flights", "salaries").
	Name string
	// Dataset is the bound data.
	Dataset *olap.Dataset
	// MeasureCol is the measure column vocalized by default.
	MeasureCol string
	// MeasureDesc is its spoken description.
	MeasureDesc string
	// Format renders measure values.
	Format speech.ValueFormat
}

// QueryLogEntry records one vocalized query, as the paper's server did.
type QueryLogEntry struct {
	Time      time.Time `json:"time"`
	Session   string    `json:"session"`
	Dataset   string    `json:"dataset"`
	Input     string    `json:"input"`
	Method    string    `json:"method"`
	Speech    string    `json:"speech"`
	LatencyMS float64   `json:"latencyMs"`
	// Degraded marks answers cut short by the request deadline.
	Degraded bool `json:"degraded,omitempty"`
}

// Options tunes the server's robustness knobs. The zero value selects the
// defaults noted per field.
type Options struct {
	// RequestTimeout bounds each request via its context (default 30s;
	// negative disables). Vocalizers degrade at the deadline, so the
	// response still carries a partial answer.
	RequestTimeout time.Duration
	// MaxBodyBytes caps the /api/query request body (default 64 KiB).
	MaxBodyBytes int64
	// MaxConcurrent bounds concurrent vocalizations; requests beyond it
	// receive 503 with a Retry-After hint (default 32).
	MaxConcurrent int
	// RetryAfter is the hint attached to 503 responses (default 1s).
	RetryAfter time.Duration
	// LogCap is the query-log ring capacity; the oldest entries are
	// dropped beyond it (default 10000).
	LogCap int
	// MaxSessions caps live sessions; the least recently used is evicted
	// beyond it (default 1024).
	MaxSessions int
	// SessionTTL evicts sessions idle longer than this (default 1h).
	SessionTTL time.Duration
	// Logf receives operational messages such as panic stacks (default
	// log.Printf).
	Logf func(format string, args ...any)
}

// normalize fills unset options with their defaults.
func (o Options) normalize() Options {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 64 << 10
	}
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 32
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.LogCap <= 0 {
		o.LogCap = 10000
	}
	if o.MaxSessions <= 0 {
		o.MaxSessions = 1024
	}
	if o.SessionTTL <= 0 {
		o.SessionTTL = time.Hour
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// errInternal hides internal error details from clients; the real error
// goes to the operational log.
var errInternal = errors.New("internal server error")

// queryLog is a fixed-capacity ring holding the newest entries; the study
// server must survive unbounded query streams with bounded memory.
type queryLog struct {
	cap     int
	entries []QueryLogEntry
	next    int
	dropped int64
}

// add appends e, overwriting the oldest entry once the ring is full.
func (l *queryLog) add(e QueryLogEntry) {
	if len(l.entries) < l.cap {
		l.entries = append(l.entries, e)
		return
	}
	l.entries[l.next] = e
	l.next = (l.next + 1) % l.cap
	l.dropped++
}

// snapshot copies the entries in chronological order.
func (l *queryLog) snapshot() []QueryLogEntry {
	out := make([]QueryLogEntry, 0, len(l.entries))
	out = append(out, l.entries[l.next:]...)
	out = append(out, l.entries[:l.next]...)
	return out
}

// sessionEntry tracks a session's last use for TTL/LRU eviction.
type sessionEntry struct {
	sess     *nlq.Session
	lastUsed time.Time
}

// Server serves the voice-OLAP API.
type Server struct {
	mu       sync.Mutex
	datasets map[string]DatasetInfo
	order    []string
	sessions map[string]*sessionEntry
	log      queryLog
	cfg      core.Config
	opts     Options
	// sem bounds concurrent vocalizations (admission control).
	sem chan struct{}
	// now is the server-side bookkeeping clock, stubbed in tests.
	now func() time.Time
	// holdVocalize, when non-nil, blocks vocalizations until closed —
	// a test hook for exercising admission control deterministically.
	holdVocalize chan struct{}
}

// NewServer registers the datasets and returns a server with default
// Options. cfg configures the holistic vocalizer (a simulated clock makes
// responses immediate — the browser performs actual playback).
func NewServer(cfg core.Config, infos ...DatasetInfo) (*Server, error) {
	return NewServerWith(cfg, Options{}, infos...)
}

// NewServerWith is NewServer with explicit robustness Options.
func NewServerWith(cfg core.Config, opts Options, infos ...DatasetInfo) (*Server, error) {
	if len(infos) == 0 {
		return nil, errors.New("web: at least one dataset required")
	}
	opts = opts.normalize()
	s := &Server{
		datasets: make(map[string]DatasetInfo, len(infos)),
		sessions: make(map[string]*sessionEntry),
		log:      queryLog{cap: opts.LogCap},
		cfg:      cfg,
		opts:     opts,
		sem:      make(chan struct{}, opts.MaxConcurrent),
		now:      time.Now,
	}
	for _, info := range infos {
		if info.Dataset == nil || info.Name == "" {
			return nil, errors.New("web: dataset info incomplete")
		}
		if _, dup := s.datasets[info.Name]; dup {
			return nil, fmt.Errorf("web: duplicate dataset %q", info.Name)
		}
		s.datasets[info.Name] = info
		s.order = append(s.order, info.Name)
	}
	return s, nil
}

// Handler returns the HTTP handler with the recovery and per-request
// timeout middleware applied.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/log", s.handleLog)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	var h http.Handler = mux
	h = withTimeout(h, s.opts.RequestTimeout)
	h = withRecovery(h, s.opts.Logf)
	return h
}

// handleIndex serves the minimal study page.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// handleDatasets lists the registered datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type dataset struct {
		Name    string `json:"name"`
		Rows    int    `json:"rows"`
		Measure string `json:"measure"`
	}
	s.mu.Lock()
	out := make([]dataset, 0, len(s.order))
	for _, name := range s.order {
		info := s.datasets[name]
		out = append(out, dataset{
			Name:    name,
			Rows:    info.Dataset.Table().NumRows(),
			Measure: info.MeasureDesc,
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /api/query payload.
type queryRequest struct {
	// Session identifies the exploration session (the study asked for the
	// crowd worker ID).
	Session string `json:"session"`
	// Dataset selects the registered dataset.
	Dataset string `json:"dataset"`
	// Input is the voice or keyboard command.
	Input string `json:"input"`
	// Method selects the vocalizer: "this" (holistic) or "prior".
	Method string `json:"method"`
}

// queryResponse is the /api/query reply.
type queryResponse struct {
	Action    string  `json:"action"`
	Message   string  `json:"message,omitempty"`
	Speech    string  `json:"speech,omitempty"`
	LatencyMS float64 `json:"latencyMs"`
	// Degraded marks an answer cut short by the request deadline: the
	// speech is still grammar-valid but shorter than planned.
	Degraded bool `json:"degraded,omitempty"`
	// Structured carries the grammar decomposition for holistic answers,
	// so clients can render or re-score speeches without re-parsing text.
	Structured *encode.Speech `json:"structured,omitempty"`
	// SSML carries speech markup for TTS engines that accept it.
	SSML string `json:"ssml,omitempty"`
}

// methodName normalizes the requested vocalization method; ok is false
// for methods outside the study's menu (rejected with 400 so client typos
// cannot skew the study logs).
func methodName(m string) (string, bool) {
	switch m {
	case "", "this":
		return "this", true
	case "prior":
		return "prior", true
	default:
		return "", false
	}
}

// session returns the live session for key, creating it on first use and
// evicting expired and least-recently-used sessions. Caller holds s.mu.
func (s *Server) session(key string, info DatasetInfo) (*nlq.Session, error) {
	now := s.now()
	// TTL sweep: drop sessions idle past the deadline.
	for k, e := range s.sessions {
		if now.Sub(e.lastUsed) > s.opts.SessionTTL {
			delete(s.sessions, k)
		}
	}
	if e, ok := s.sessions[key]; ok {
		e.lastUsed = now
		return e.sess, nil
	}
	sess, err := nlq.NewSession(info.Dataset, olap.Avg, info.MeasureCol, info.MeasureDesc)
	if err != nil {
		return nil, err
	}
	// LRU eviction: make room before inserting.
	for len(s.sessions) >= s.opts.MaxSessions {
		oldestKey := ""
		var oldest time.Time
		for k, e := range s.sessions {
			if oldestKey == "" || e.lastUsed.Before(oldest) {
				oldestKey, oldest = k, e.lastUsed
			}
		}
		delete(s.sessions, oldestKey)
	}
	s.sessions[key] = &sessionEntry{sess: sess, lastUsed: now}
	return sess, nil
}

// handleQuery parses the command in the caller's session and vocalizes
// the resulting query with the chosen method.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, errors.New("session required"))
		return
	}
	method, ok := methodName(req.Method)
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown method %q (want \"this\" or \"prior\")", req.Method))
		return
	}
	s.mu.Lock()
	info, ok := s.datasets[req.Dataset]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	key := req.Session + "\x00" + req.Dataset
	sess, err := s.session(key, info)
	if err != nil {
		s.mu.Unlock()
		s.opts.Logf("web: session init: %v", err)
		writeError(w, http.StatusInternalServerError, errInternal)
		return
	}
	resp, err := sess.Parse(req.Input)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := sess.Query()
	s.mu.Unlock()

	out := queryResponse{Action: resp.Action, Message: resp.Message}
	if resp.IsQuery {
		// Admission control: beyond MaxConcurrent in-flight
		// vocalizations, shed load instead of queueing unboundedly.
		select {
		case s.sem <- struct{}{}:
			defer func() { <-s.sem }()
		default:
			w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.opts.RetryAfter.Seconds()+0.5)))
			writeError(w, http.StatusServiceUnavailable, errors.New("server saturated, retry shortly"))
			return
		}
		if s.holdVocalize != nil {
			<-s.holdVocalize
		}
		speechText, structured, latency, degraded, err := s.vocalize(r.Context(), info, q, method)
		if err != nil {
			s.opts.Logf("web: vocalize: %v", err)
			writeError(w, http.StatusInternalServerError, errInternal)
			return
		}
		out.Speech = speechText
		out.LatencyMS = float64(latency) / float64(time.Millisecond)
		out.Degraded = degraded
		if structured != nil {
			enc := encode.EncodeSpeech(structured)
			out.Structured = &enc
			out.SSML = structured.SSML(speech.DefaultSSMLOptions())
		}
		s.mu.Lock()
		s.log.add(QueryLogEntry{
			Time:      s.now(),
			Session:   req.Session,
			Dataset:   req.Dataset,
			Input:     req.Input,
			Method:    method,
			Speech:    out.Speech,
			LatencyMS: out.LatencyMS,
			Degraded:  degraded,
		})
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

// vocalize runs the chosen vocalizer on the query under ctx. The
// structured speech is non-nil for the holistic method only (the prior
// grammar has none). degraded reports a deadline-shortened answer.
func (s *Server) vocalize(ctx context.Context, info DatasetInfo, q olap.Query, method string) (string, *speech.Speech, time.Duration, bool, error) {
	if method == "prior" {
		out, err := baseline.NewPrior(info.Dataset, q, baseline.Config{
			Format:      info.Format,
			MergeValues: true,
		}).VocalizeContext(ctx)
		if err != nil {
			return "", nil, 0, false, err
		}
		return out.Text, nil, out.Latency, out.Truncated, nil
	}
	cfg := s.cfg
	cfg.Format = info.Format
	if cfg.Clock == nil {
		cfg.Clock = voice.NewSimClock()
	}
	if cfg.MaxRoundsPerSentence == 0 {
		cfg.MaxRoundsPerSentence = 500
	}
	if cfg.MaxTreeNodes == 0 {
		cfg.MaxTreeNodes = 50000
	}
	out, err := core.NewHolistic(info.Dataset, q, cfg).VocalizeContext(ctx)
	if err != nil {
		return "", nil, 0, false, err
	}
	return out.Text(), out.Speech, out.Latency, out.Degraded, nil
}

// handleLog returns the query log (newest LogCap entries).
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := s.log.snapshot()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing sensible left to do.
		return
	}
}

// writeError writes a JSON error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// indexHTML is the minimal single-page study interface. Speech synthesis
// uses the browser's speechSynthesis API, standing in for the paper's
// ResponsiveVoiceJS integration.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>Voice-Based OLAP</title></head>
<body>
<h1>Voice-Based OLAP</h1>
<p>Type a command (say "help" for keywords). Results are spoken aloud.</p>
<select id="dataset"></select>
<select id="method">
  <option value="this">This approach (holistic)</option>
  <option value="prior">Prior vocalization</option>
</select>
<input id="input" size="60" placeholder="how does cancellation depend on region and season">
<button onclick="ask()">Ask</button>
<pre id="out"></pre>
<script>
const session = "web-" + Math.random().toString(36).slice(2);
fetch("/api/datasets").then(r => r.json()).then(ds => {
  const sel = document.getElementById("dataset");
  ds.forEach(d => { const o = document.createElement("option"); o.value = d.name; o.textContent = d.name + " (" + d.measure + ")"; sel.appendChild(o); });
});
async function ask() {
  const body = {
    session: session,
    dataset: document.getElementById("dataset").value,
    input: document.getElementById("input").value,
    method: document.getElementById("method").value,
  };
  const r = await fetch("/api/query", {method: "POST", headers: {"Content-Type": "application/json"}, body: JSON.stringify(body)});
  const j = await r.json();
  const text = j.error || j.speech || j.message || "";
  document.getElementById("out").textContent = text + (j.speech ? "\n\n[latency " + j.latencyMs.toFixed(1) + " ms]" : "");
  if (text && window.speechSynthesis) {
    window.speechSynthesis.speak(new SpeechSynthesisUtterance(text));
  }
}
</script>
</body>
</html>
`
