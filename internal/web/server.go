// Package web exposes the voice-OLAP system over HTTP, mirroring the
// paper's crowd-study interface: clients submit keyword commands per
// session, choose between the holistic vocalizer and the prior baseline
// for every single query, and receive the speech text (a browser would
// hand it to a TTS API). Queries are logged server-side as in the study.
package web

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/encode"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/speech"
	"repro/internal/voice"
)

// DatasetInfo registers one dataset with its spoken measure.
type DatasetInfo struct {
	// Name is the public dataset identifier ("flights", "salaries").
	Name string
	// Dataset is the bound data.
	Dataset *olap.Dataset
	// MeasureCol is the measure column vocalized by default.
	MeasureCol string
	// MeasureDesc is its spoken description.
	MeasureDesc string
	// Format renders measure values.
	Format speech.ValueFormat
}

// QueryLogEntry records one vocalized query, as the paper's server did.
type QueryLogEntry struct {
	Time      time.Time `json:"time"`
	Session   string    `json:"session"`
	Dataset   string    `json:"dataset"`
	Input     string    `json:"input"`
	Method    string    `json:"method"`
	Speech    string    `json:"speech"`
	LatencyMS float64   `json:"latencyMs"`
}

// Server serves the voice-OLAP API.
type Server struct {
	mu       sync.Mutex
	datasets map[string]DatasetInfo
	order    []string
	sessions map[string]*nlq.Session
	log      []QueryLogEntry
	cfg      core.Config
}

// NewServer registers the datasets and returns a server. cfg configures
// the holistic vocalizer (a simulated clock makes responses immediate —
// the browser performs actual playback).
func NewServer(cfg core.Config, infos ...DatasetInfo) (*Server, error) {
	if len(infos) == 0 {
		return nil, errors.New("web: at least one dataset required")
	}
	s := &Server{
		datasets: make(map[string]DatasetInfo, len(infos)),
		sessions: make(map[string]*nlq.Session),
		cfg:      cfg,
	}
	for _, info := range infos {
		if info.Dataset == nil || info.Name == "" {
			return nil, errors.New("web: dataset info incomplete")
		}
		if _, dup := s.datasets[info.Name]; dup {
			return nil, fmt.Errorf("web: duplicate dataset %q", info.Name)
		}
		s.datasets[info.Name] = info
		s.order = append(s.order, info.Name)
	}
	return s, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/datasets", s.handleDatasets)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("GET /api/log", s.handleLog)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	return mux
}

// handleIndex serves the minimal study page.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// handleDatasets lists the registered datasets.
func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	type dataset struct {
		Name    string `json:"name"`
		Rows    int    `json:"rows"`
		Measure string `json:"measure"`
	}
	s.mu.Lock()
	out := make([]dataset, 0, len(s.order))
	for _, name := range s.order {
		info := s.datasets[name]
		out = append(out, dataset{
			Name:    name,
			Rows:    info.Dataset.Table().NumRows(),
			Measure: info.MeasureDesc,
		})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// queryRequest is the /api/query payload.
type queryRequest struct {
	// Session identifies the exploration session (the study asked for the
	// crowd worker ID).
	Session string `json:"session"`
	// Dataset selects the registered dataset.
	Dataset string `json:"dataset"`
	// Input is the voice or keyboard command.
	Input string `json:"input"`
	// Method selects the vocalizer: "this" (holistic) or "prior".
	Method string `json:"method"`
}

// queryResponse is the /api/query reply.
type queryResponse struct {
	Action    string  `json:"action"`
	Message   string  `json:"message,omitempty"`
	Speech    string  `json:"speech,omitempty"`
	LatencyMS float64 `json:"latencyMs"`
	// Structured carries the grammar decomposition for holistic answers,
	// so clients can render or re-score speeches without re-parsing text.
	Structured *encode.Speech `json:"structured,omitempty"`
	// SSML carries speech markup for TTS engines that accept it.
	SSML string `json:"ssml,omitempty"`
}

// handleQuery parses the command in the caller's session and vocalizes
// the resulting query with the chosen method.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON: %w", err))
		return
	}
	if req.Session == "" {
		writeError(w, http.StatusBadRequest, errors.New("session required"))
		return
	}
	s.mu.Lock()
	info, ok := s.datasets[req.Dataset]
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown dataset %q", req.Dataset))
		return
	}
	key := req.Session + "\x00" + req.Dataset
	sess := s.sessions[key]
	if sess == nil {
		var err error
		sess, err = nlq.NewSession(info.Dataset, olap.Avg, info.MeasureCol, info.MeasureDesc)
		if err != nil {
			s.mu.Unlock()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		s.sessions[key] = sess
	}
	resp, err := sess.Parse(req.Input)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	q := sess.Query()
	s.mu.Unlock()

	out := queryResponse{Action: resp.Action, Message: resp.Message}
	if resp.IsQuery {
		speechText, structured, latency, err := s.vocalize(info, q, req.Method)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		out.Speech = speechText
		out.LatencyMS = float64(latency) / float64(time.Millisecond)
		if structured != nil {
			enc := encode.EncodeSpeech(structured)
			out.Structured = &enc
			out.SSML = structured.SSML(speech.DefaultSSMLOptions())
		}
		s.mu.Lock()
		s.log = append(s.log, QueryLogEntry{
			Time:    time.Now(),
			Session: req.Session,
			Dataset: req.Dataset,
			Input:   req.Input,
			Method:  methodName(req.Method),
			Speech:  out.Speech,

			LatencyMS: out.LatencyMS,
		})
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

// methodName normalizes the requested vocalization method.
func methodName(m string) string {
	if m == "prior" {
		return "prior"
	}
	return "this"
}

// vocalize runs the chosen vocalizer on the query. The structured speech
// is non-nil for the holistic method only (the prior grammar has none).
func (s *Server) vocalize(info DatasetInfo, q olap.Query, method string) (string, *speech.Speech, time.Duration, error) {
	if methodName(method) == "prior" {
		out, err := baseline.NewPrior(info.Dataset, q, baseline.Config{
			Format:      info.Format,
			MergeValues: true,
		}).Vocalize()
		if err != nil {
			return "", nil, 0, err
		}
		return out.Text, nil, out.Latency, nil
	}
	cfg := s.cfg
	cfg.Format = info.Format
	if cfg.Clock == nil {
		cfg.Clock = voice.NewSimClock()
	}
	if cfg.MaxRoundsPerSentence == 0 {
		cfg.MaxRoundsPerSentence = 500
	}
	if cfg.MaxTreeNodes == 0 {
		cfg.MaxTreeNodes = 50000
	}
	out, err := core.NewHolistic(info.Dataset, q, cfg).Vocalize()
	if err != nil {
		return "", nil, 0, err
	}
	return out.Text(), out.Speech, out.Latency, nil
}

// handleLog returns the query log.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]QueryLogEntry, len(s.log))
	copy(out, s.log)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The header is already out; nothing sensible left to do.
		return
	}
}

// writeError writes a JSON error payload.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// indexHTML is the minimal single-page study interface. Speech synthesis
// uses the browser's speechSynthesis API, standing in for the paper's
// ResponsiveVoiceJS integration.
const indexHTML = `<!DOCTYPE html>
<html>
<head><meta charset="utf-8"><title>Voice-Based OLAP</title></head>
<body>
<h1>Voice-Based OLAP</h1>
<p>Type a command (say "help" for keywords). Results are spoken aloud.</p>
<select id="dataset"></select>
<select id="method">
  <option value="this">This approach (holistic)</option>
  <option value="prior">Prior vocalization</option>
</select>
<input id="input" size="60" placeholder="how does cancellation depend on region and season">
<button onclick="ask()">Ask</button>
<pre id="out"></pre>
<script>
const session = "web-" + Math.random().toString(36).slice(2);
fetch("/api/datasets").then(r => r.json()).then(ds => {
  const sel = document.getElementById("dataset");
  ds.forEach(d => { const o = document.createElement("option"); o.value = d.name; o.textContent = d.name + " (" + d.measure + ")"; sel.appendChild(o); });
});
async function ask() {
  const body = {
    session: session,
    dataset: document.getElementById("dataset").value,
    input: document.getElementById("input").value,
    method: document.getElementById("method").value,
  };
  const r = await fetch("/api/query", {method: "POST", headers: {"Content-Type": "application/json"}, body: JSON.stringify(body)});
  const j = await r.json();
  const text = j.error || j.speech || j.message || "";
  document.getElementById("out").textContent = text + (j.speech ? "\n\n[latency " + j.latencyMs.toFixed(1) + " ms]" : "");
  if (text && window.speechSynthesis) {
    window.speechSynthesis.speak(new SpeechSynthesisUtterance(text));
  }
}
</script>
</body>
</html>
`
