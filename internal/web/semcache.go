// Semantic answer caching for the web layer: repeated voice queries are
// the common case in an exploration session (the crowd study's workers
// re-asked equivalent questions with different phrasings), so the server
// memoizes finished answers by canonical query and replays them for free.
//
// Soundness rests on two invariants. First, every vocalizer runs on the
// semcache-normalized query, so canonical-key equality implies identical
// planner input and therefore identical speech under the server's
// deterministic configuration. Second, cache keys embed the dataset
// epoch, which both ReloadDataset and every ingest batch bump before the
// new data is visible — a stale answer can never be served, even to
// requests already in flight.
package web

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/nlq"
	"repro/internal/olap"
	"repro/internal/sampling"
	"repro/internal/semcache"
	"repro/internal/table"
)

// warmViewReservoir is the per-aggregate sample bound for tier-B views;
// generous so warm-start estimates track the cold path's accuracy.
const warmViewReservoir = 256

// datasetState binds a registered dataset to its cache epoch and warm
// session pool. The epoch is part of every cache key, so bumping it on
// reload makes all earlier answers and views unreachable atomically.
type datasetState struct {
	info DatasetInfo
	// epoch counts data changes — whole-dataset reloads and streaming
	// ingest batches; guarded by Server.mu.
	epoch int64
	// live is the appendable copy of the base table, created lazily on
	// the first ingest (copy-on-first-ingest keeps the registered dataset
	// object immutable for whoever else holds it). The pointer is guarded
	// by Server.mu; the table itself synchronizes appends internally.
	live *table.Table
	// pool holds pristine pre-cloned sessions; nil when pooling is off.
	pool *semcache.Pool[*nlq.Session]
}

// newDatasetState builds the state for one dataset, prewarming its
// session pool.
func newDatasetState(info DatasetInfo, poolSize int) (*datasetState, error) {
	st := &datasetState{info: info}
	if poolSize > 0 {
		proto, err := nlq.NewSession(info.Dataset, olap.Avg, info.MeasureCol, info.MeasureDesc)
		if err != nil {
			return nil, err
		}
		pool, err := semcache.NewPool(poolSize, func() (*nlq.Session, error) {
			return proto.Clone(), nil
		})
		if err != nil {
			return nil, err
		}
		st.pool = pool
	}
	return st, nil
}

// newSession checks a session out of the warm pool — restocking a fresh
// clone off the request path — or builds one directly when pooling is
// disabled.
func (st *datasetState) newSession() (*nlq.Session, error) {
	if st.pool == nil {
		return nlq.NewSession(st.info.Dataset, olap.Avg, st.info.MeasureCol, st.info.MeasureDesc)
	}
	sess, err := st.pool.Get()
	if err != nil {
		return nil, err
	}
	go st.pool.Restock()
	return sess, nil
}

// cachedAnswer is a tier-A entry: one finished answer plus the vocalizer
// that produced it.
type cachedAnswer struct {
	voc    vocOut
	origin string
	// warm marks answers planned over a tier-B view. They are served but
	// never stored in tier A: only cold-path answers are replayed, which
	// keeps every cache hit bit-identical to the cold path.
	warm bool
}

// epochPrefix scopes cache keys to (dataset, epoch). ReloadDataset purges
// by the dataset prefix and bumps the epoch, so entries from old data are
// both removed and unreachable.
func epochPrefix(dataset string, epoch int64) string {
	return dataset + "\x00" + strconv.FormatInt(epoch, 10) + "\x00"
}

// answerKey is the tier-A key: (dataset, epoch, vocalizer, canonical
// query). Keying by vocalizer keeps prior and holistic speeches apart.
func answerKey(dataset string, epoch int64, method string, q olap.Query) string {
	return epochPrefix(dataset, epoch) + method + "\x00" + semcache.Key(q)
}

// viewKey is the tier-B key: views depend only on the data subset, not on
// the vocalizer.
func viewKey(dataset string, epoch int64, q olap.Query) string {
	return epochPrefix(dataset, epoch) + "view\x00" + semcache.Key(q)
}

// tryServeCached is the pre-admission fast path: if an equivalent query
// (same canonical key, same dataset epoch) already has a memoized answer,
// commit the command and replay the speech without touching the brownout
// ladder, the admission queue, or the planner. A hit costs microseconds,
// so it stays available even while the server sheds load. The probe parse
// and the commit run under one hold of s.mu, so the committed query is
// exactly the one the key was computed from.
func (s *Server) tryServeCached(w http.ResponseWriter, req queryRequest, sess *nlq.Session, st *datasetState, method, tenant string) bool {
	if s.answers == nil {
		return false
	}
	start := time.Now()
	s.mu.Lock()
	probe := sess.Clone()
	presp, perr := probe.Parse(req.Input)
	if perr != nil || !presp.IsQuery {
		s.mu.Unlock()
		return false
	}
	epoch := st.epoch
	key := answerKey(req.Dataset, epoch, method, probe.Query())
	ans, ok := s.answers.Get(key)
	if !ok {
		s.mu.Unlock()
		return false
	}
	resp, err := sess.Parse(req.Input)
	s.mu.Unlock()
	if err != nil {
		// Unreachable in practice: the probe parsed the same input on an
		// identical clone under the same lock hold. Answer rather than
		// fall through, because the command is already committed.
		writeError(w, http.StatusUnprocessableEntity, err)
		return true
	}
	if !resp.IsQuery {
		writeJSON(w, http.StatusOK, queryResponse{Action: resp.Action, Message: resp.Message})
		return true
	}
	s.serving.cached(tenant, semcache.Hit)
	latencyMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.respondSpeech(w, req, method, resp, ans.voc, "cache", ans.origin, semcache.Hit.String(), "", latencyMS, st, epoch)
	return true
}

// answerQuery produces the answer for the committed query, consulting the
// semantic caches: tier A replays stored speeches and coalesces identical
// in-flight work (singleflight), tier B warm-starts the planner from a
// prebuilt sample view so even a tier-A miss skips scan cost. Brownout
// and breaker observations happen inside the compute closure, so only
// real vocalizer runs feed the control loops.
func (s *Server) answerQuery(ctx context.Context, info DatasetInfo, dataset string, epoch int64, nq olap.Query, method, servedBy string, step admission.Step, fallback string) (cachedAnswer, semcache.Outcome, error) {
	compute := func() (cachedAnswer, bool, error) {
		var view *sampling.View
		if servedBy == "this" && s.views != nil && s.cfg.Uncertainty == core.UncertaintyOff {
			if v, ok := s.views.Get(viewKey(dataset, epoch, nq)); ok {
				view = v
			}
		}
		wallStart := time.Now()
		voc, err := s.vocalize(ctx, info, nq, servedBy, step, view)
		wall := time.Since(wallStart)
		s.brown.Observe(wall)
		s.latw.observe(wall)
		if method == "this" && servedBy == "this" && err == nil {
			// A deadline-degraded answer is the breaker's blowout signal;
			// a client cancellation is not the dataset's fault.
			s.breakers[dataset].Record(voc.degraded && voc.reason == context.DeadlineExceeded.Error())
		}
		if err != nil {
			return cachedAnswer{}, false, err
		}
		warm := view != nil
		if servedBy == "this" && !warm && !voc.degraded && fallback == "" && step == admission.StepFull {
			// A clean cold run anticipates repeats: materialize its sample
			// view in the background for the next equivalent query.
			s.scheduleViewBuild(dataset, epoch, nq)
		}
		ans := cachedAnswer{voc: voc, origin: servedBy, warm: warm}
		// Only clean full-quality answers are memoized. Degraded, reduced-
		// budget, fallback, and warm-start answers are served once and
		// recomputed — no later hit may replay anything below the cold
		// path's quality.
		cacheable := !voc.degraded && fallback == "" && !warm &&
			(servedBy == "prior" || step == admission.StepFull)
		return ans, cacheable, nil
	}
	if s.answers == nil {
		ans, _, err := compute()
		return ans, semcache.Miss, err
	}
	return s.answers.Do(ctx, answerKey(dataset, epoch, servedBy, nq), compute)
}

// viewJob asks the background builder to materialize one sample view.
type viewJob struct {
	dataset string
	epoch   int64
	q       olap.Query
}

// scheduleViewBuild enqueues a tier-B view build, dropping the request if
// the builder is saturated (the next miss reschedules it).
func (s *Server) scheduleViewBuild(dataset string, epoch int64, q olap.Query) {
	if s.views == nil || s.viewJobs == nil {
		return
	}
	if s.views.Contains(viewKey(dataset, epoch, q)) {
		return
	}
	select {
	case s.viewJobs <- viewJob{dataset: dataset, epoch: epoch, q: q}:
	default:
	}
}

// viewBuilder materializes sample views off the request path. A single
// worker: view builds are full scans and must never compete with live
// queries for more than one core.
func (s *Server) viewBuilder() {
	for {
		select {
		case <-s.quit:
			return
		case job := <-s.viewJobs:
			s.buildView(job)
		}
	}
}

// buildView performs one full-scan view build, skipping jobs whose epoch
// is stale by the time the worker reaches them.
func (s *Server) buildView(job viewJob) {
	s.mu.Lock()
	st, ok := s.datasets[job.dataset]
	if !ok || st.epoch != job.epoch {
		s.mu.Unlock()
		return
	}
	d := st.info.Dataset
	s.mu.Unlock()
	key := viewKey(job.dataset, job.epoch, job.q)
	if s.views.Contains(key) {
		return
	}
	space, err := olap.NewSpace(d, job.q)
	if err != nil {
		return
	}
	view, err := sampling.BuildView(space, warmViewReservoir, rand.New(rand.NewSource(s.cfg.Seed+job.epoch)))
	if err != nil {
		return
	}
	s.views.Put(key, view)
}

// ReloadDataset swaps name's bound data in place and bumps its cache
// epoch: answers and views computed against the old data become
// unreachable immediately (and are purged), the warm session pool is
// rebuilt against the new data, and live sessions bound to the old
// dataset are evicted so their next command starts fresh.
func (s *Server) ReloadDataset(name string, d *olap.Dataset) error {
	if d == nil {
		return errors.New("web: reload needs a dataset")
	}
	s.mu.Lock()
	st, ok := s.datasets[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("web: unknown dataset %q", name)
	}
	info := st.info
	info.Dataset = d
	fresh, err := newDatasetState(info, s.opts.PoolSize)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	st.info = fresh.info
	st.pool = fresh.pool
	st.live = nil
	st.epoch++
	for key := range s.sessions {
		if strings.HasSuffix(key, "\x00"+name) {
			delete(s.sessions, key)
		}
	}
	s.mu.Unlock()
	if s.answers != nil {
		s.answers.PurgePrefix(name + "\x00")
	}
	if s.views != nil {
		s.views.PurgePrefix(name + "\x00")
	}
	return nil
}

// Close stops the background view builder. The HTTP handler keeps
// working after Close; cache misses simply stop warming views. Safe to
// call more than once.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.quit != nil {
			close(s.quit)
		}
	})
}

// SemCacheStats reports the semantic cache and warm-pool counters.
type SemCacheStats struct {
	// Answers is the tier-A (speech memoization) cache; Views tier B
	// (warmed sample views).
	Answers       semcache.Stats `json:"answers"`
	AnswerEntries int            `json:"answerEntries"`
	Views         semcache.Stats `json:"views"`
	ViewEntries   int            `json:"viewEntries"`
	// HitsServed / CoalescedServed count requests answered from tier A;
	// WarmServed requests planned over a tier-B view.
	HitsServed      int64 `json:"hitsServed"`
	CoalescedServed int64 `json:"coalescedServed"`
	WarmServed      int64 `json:"warmServed"`
	// Pools maps dataset name to its warm session pool counters.
	Pools map[string]semcache.PoolStats `json:"pools,omitempty"`
}

// semCacheStats snapshots the semantic-cache state; nil when the cache is
// disabled entirely.
func (s *Server) semCacheStats() *SemCacheStats {
	if s.answers == nil && s.views == nil {
		return nil
	}
	out := &SemCacheStats{}
	if s.answers != nil {
		out.Answers = s.answers.Stats()
		out.AnswerEntries = s.answers.Len()
	}
	if s.views != nil {
		out.Views = s.views.Stats()
		out.ViewEntries = s.views.Len()
	}
	c := &s.serving
	c.mu.Lock()
	out.HitsServed = c.cacheHits
	out.CoalescedServed = c.cacheCoalesced
	out.WarmServed = c.cacheWarm
	c.mu.Unlock()
	s.mu.Lock()
	for name, st := range s.datasets {
		if st.pool == nil {
			continue
		}
		if out.Pools == nil {
			out.Pools = make(map[string]semcache.PoolStats)
		}
		out.Pools[name] = st.pool.Stats()
	}
	s.mu.Unlock()
	return out
}
