package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/speech"
	"repro/internal/voice"
)

// newHardenedServer builds a server with explicit Options and returns both
// the Server (for internal inspection) and a running test listener.
func newHardenedServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 131})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	cfg := core.Config{
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 100,
		Percents:             []int{50, 100},
	}
	srv, err := NewServerWith(cfg, opts,
		DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
	)
	if err != nil {
		t.Fatalf("NewServerWith: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestUnknownMethodRejected(t *testing.T) {
	_, ts := newHardenedServer(t, Options{})
	out, code := postQuery(t, ts, map[string]string{
		"session": "m1", "dataset": "flights",
		"input": "break down by season", "method": "fancy",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown method status = %d: %v", code, out)
	}
	msg, _ := out["error"].(string)
	if !strings.Contains(msg, "fancy") {
		t.Errorf("error should name the rejected method: %q", msg)
	}
	// The empty method still defaults to the holistic vocalizer.
	_, code = postQuery(t, ts, map[string]string{
		"session": "m1", "dataset": "flights", "input": "help",
	})
	if code != http.StatusOK {
		t.Errorf("empty method status = %d", code)
	}
}

func TestOversizedBodyRejected(t *testing.T) {
	_, ts := newHardenedServer(t, Options{MaxBodyBytes: 128})
	body := fmt.Sprintf(`{"session":"big","dataset":"flights","input":%q}`,
		strings.Repeat("x", 4096))
	resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status = %d, want 413", resp.StatusCode)
	}
}

func TestSaturatedServerReturns503(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{MaxConcurrent: 1, RetryAfter: 2 * time.Second})
	hold := make(chan struct{})
	srv.holdVocalize = hold

	firstDone := make(chan int, 1)
	go func() {
		_, code := postQuery(t, ts, map[string]string{
			"session": "sat", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		firstDone <- code
	}()
	// Wait until the first request holds the admission slot.
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.InFlight() == 0 {
		t.Fatal("first request never acquired the admission slot")
	}

	b, _ := json.Marshal(map[string]string{
		"session": "sat2", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", got)
	}

	close(hold)
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("held request finished with %d, want 200", code)
	}
}

func TestQueryLogRingKeepsNewest(t *testing.T) {
	_, ts := newHardenedServer(t, Options{LogCap: 3})
	for i := 0; i < 5; i++ {
		_, code := postQuery(t, ts, map[string]string{
			"session": fmt.Sprintf("ring-%d", i), "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		if code != http.StatusOK {
			t.Fatalf("query %d status = %d", i, code)
		}
	}
	resp, err := http.Get(ts.URL + "/api/log")
	if err != nil {
		t.Fatalf("GET log: %v", err)
	}
	defer resp.Body.Close()
	var entries []QueryLogEntry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("log entries = %d, want 3", len(entries))
	}
	for i, want := range []string{"ring-2", "ring-3", "ring-4"} {
		if entries[i].Session != want {
			t.Errorf("entry %d session = %q, want %q (oldest must be dropped first)",
				i, entries[i].Session, want)
		}
	}
}

func TestSessionTTLEviction(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{SessionTTL: time.Minute})
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	srv.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	postQuery(t, ts, map[string]string{"session": "old", "dataset": "flights", "input": "help"})
	mu.Lock()
	now = now.Add(2 * time.Minute)
	mu.Unlock()
	postQuery(t, ts, map[string]string{"session": "new", "dataset": "flights", "input": "help"})

	srv.mu.Lock()
	_, oldAlive := srv.sessions["old\x00flights"]
	_, newAlive := srv.sessions["new\x00flights"]
	srv.mu.Unlock()
	if oldAlive {
		t.Error("session idle past the TTL should be evicted")
	}
	if !newAlive {
		t.Error("fresh session should survive the sweep")
	}
}

func TestSessionLRUEviction(t *testing.T) {
	srv, ts := newHardenedServer(t, Options{MaxSessions: 2})
	var mu sync.Mutex
	now := time.Unix(1_000_000, 0)
	srv.now = func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	for _, name := range []string{"a", "b", "c"} {
		postQuery(t, ts, map[string]string{"session": name, "dataset": "flights", "input": "help"})
		mu.Lock()
		now = now.Add(time.Second)
		mu.Unlock()
	}
	srv.mu.Lock()
	defer srv.mu.Unlock()
	if len(srv.sessions) != 2 {
		t.Fatalf("live sessions = %d, want 2", len(srv.sessions))
	}
	if _, ok := srv.sessions["a\x00flights"]; ok {
		t.Error("least recently used session should be evicted")
	}
	for _, name := range []string{"b", "c"} {
		if _, ok := srv.sessions[name+"\x00flights"]; !ok {
			t.Errorf("session %q should survive LRU eviction", name)
		}
	}
}

func TestRecoveryMiddlewareTurnsPanicsInto500(t *testing.T) {
	var logged string
	h := withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	}), func(format string, args ...any) { logged = fmt.Sprintf(format, args...) })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(logged, "boom") {
		t.Errorf("panic value missing from log: %q", logged)
	}
	if strings.Contains(rec.Body.String(), "boom") {
		t.Error("panic detail must not leak to the client")
	}
}

func TestRecoveryMiddlewarePassesAbortHandler(t *testing.T) {
	h := withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}), func(format string, args ...any) {})
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler must propagate to net/http")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	t.Error("expected re-panic")
}

func TestRequestTimeoutDegradesAnswer(t *testing.T) {
	_, ts := newHardenedServer(t, Options{RequestTimeout: time.Nanosecond})
	out, code := postQuery(t, ts, map[string]string{
		"session": "slow", "dataset": "flights",
		"input": "break down by season", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v (deadline must degrade, not fail)", code, out)
	}
	if out["degraded"] != true {
		t.Error("nanosecond deadline should mark the answer degraded")
	}
	sp, _ := out["speech"].(string)
	if !strings.Contains(sp, "Considering") {
		t.Errorf("degraded answer should keep the preamble: %q", sp)
	}
}

func TestConcurrentQueriesAndLogReads(t *testing.T) {
	_, ts := newHardenedServer(t, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, code := postQuery(t, ts, map[string]string{
				"session": "shared", "dataset": "flights",
				"input": "break down by season", "method": "prior",
			})
			if code != http.StatusOK {
				t.Errorf("query %d status = %d", i, code)
			}
		}(i)
	}
	// Log and stats reads race the writers; -race verifies locking.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, path := range []string{"/api/log", "/api/stats"} {
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s status = %d", path, resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
}
