package web

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/speech"
)

// postIngest ships rows to /api/ingest and decodes the reply.
func postIngest(t *testing.T, ts *httptest.Server, dataset string, rows []datagen.FlightRow) (map[string]any, int) {
	t.Helper()
	b, _ := json.Marshal(map[string]any{"dataset": dataset, "rows": rows})
	resp, err := http.Post(ts.URL+"/api/ingest", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /api/ingest: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out, resp.StatusCode
}

// getDatasets fetches /api/datasets and returns the entry for name.
func getDatasets(t *testing.T, ts *httptest.Server, name string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/datasets")
	if err != nil {
		t.Fatalf("GET /api/datasets: %v", err)
	}
	defer resp.Body.Close()
	var out []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for _, d := range out {
		if d["name"] == name {
			return d
		}
	}
	t.Fatalf("dataset %q not listed", name)
	return nil
}

// TestIngestVisibilityAndInvalidation is the end-to-end freshness test:
// rows appended via /api/ingest must be visible to the very next query
// (one epoch bump), and the append must make every cached answer from the
// old epoch unreachable — the next equivalent query recomputes.
func TestIngestVisibilityAndInvalidation(t *testing.T) {
	_, ts := newCacheServer(t, Options{SemCacheViews: -1})
	const input = "how does cancellation depend on region and season"

	ask := func(session string) map[string]any {
		out, code := postQuery(t, ts, map[string]string{
			"session": session, "dataset": "flights", "input": input, "method": "this",
		})
		if code != http.StatusOK {
			t.Fatalf("query status = %d: %v", code, out)
		}
		return out
	}

	cold := ask("s0")
	if cold["cache"] != nil {
		t.Fatalf("first query should be cold, got cache=%v", cold["cache"])
	}
	if e := cold["dataEpoch"].(float64); e != 0 {
		t.Fatalf("cold dataEpoch = %v", e)
	}
	if r := cold["tableRows"].(float64); r != 5000 {
		t.Fatalf("cold tableRows = %v", r)
	}
	hit := ask("s1")
	if hit["cache"] != "hit" {
		t.Fatalf("second query should hit, got cache=%v", hit["cache"])
	}

	ack, code := postIngest(t, ts, "flights", datagen.FlightRows(99, 120))
	if code != http.StatusOK {
		t.Fatalf("ingest status = %d: %v", code, ack)
	}
	if ack["appended"].(float64) != 120 || ack["epoch"].(float64) != 1 || ack["totalRows"].(float64) != 5120 {
		t.Fatalf("ingest ack = %v", ack)
	}
	ds := getDatasets(t, ts, "flights")
	if ds["rows"].(float64) != 5120 || ds["epoch"].(float64) != 1 || ds["live"] != true {
		t.Fatalf("dataset listing = %v", ds)
	}

	// The next equivalent query must NOT replay the epoch-0 answer.
	fresh := ask("s2")
	if fresh["cache"] != nil {
		t.Fatalf("post-ingest query replayed a stale answer: cache=%v", fresh["cache"])
	}
	if e := fresh["dataEpoch"].(float64); e != 1 {
		t.Fatalf("post-ingest dataEpoch = %v", e)
	}
	if r := fresh["tableRows"].(float64); r != 5120 {
		t.Fatalf("post-ingest answer computed over %v rows, want 5120", r)
	}
	if fresh["stale"] != nil {
		t.Fatalf("fresh answer flagged stale: %v", fresh)
	}
	// And the recomputed answer is cached at the new epoch.
	rehit := ask("s3")
	if rehit["cache"] != "hit" || rehit["dataEpoch"].(float64) != 1 {
		t.Fatalf("epoch-1 answer not cached: %v", rehit)
	}

	// A windowed phrasing runs against the live marks without error and
	// caches under its own key (distinct from the unwindowed one).
	win, code := postQuery(t, ts, map[string]string{
		"session": "s4", "dataset": "flights",
		"input": input + " in the last hour", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("windowed query status = %d: %v", code, win)
	}
	if win["cache"] != nil {
		t.Fatalf("windowed query must not share the unwindowed key: %v", win["cache"])
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newCacheServer(t, Options{SemCacheViews: -1})
	rows := datagen.FlightRows(5, 3)

	if _, code := postIngest(t, ts, "nope", rows); code != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d", code)
	}
	if _, code := postIngest(t, ts, "flights", nil); code != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", code)
	}
	bad := rows
	bad[1].Airline = "Air Nowhere"
	if out, code := postIngest(t, ts, "flights", bad); code != http.StatusUnprocessableEntity {
		t.Fatalf("new dict member status = %d: %v", code, out)
	}
	// A rejected batch must not bump the epoch or leak partial rows.
	ds := getDatasets(t, ts, "flights")
	if ds["rows"].(float64) != 5000 || ds["epoch"].(float64) != 0 {
		t.Fatalf("rejected batch mutated the dataset: %v", ds)
	}
}

// TestStaleFlagOnMidAnswerIngest pins the degrade-not-error staleness
// contract: an answer whose dataset accepts a batch between query commit
// and reply is served anyway, flagged stale, with the spoken caveat.
func TestStaleFlagOnMidAnswerIngest(t *testing.T) {
	srv, ts := newCacheServer(t, Options{SemCacheViews: -1})
	hold := make(chan struct{})
	parked := make(chan struct{})
	srv.holdVocalize = hold
	srv.vocalizeParked = parked

	type reply struct {
		out  map[string]any
		code int
	}
	done := make(chan reply, 1)
	go func() {
		out, code := postQuery(t, ts, map[string]string{
			"session": "q", "dataset": "flights",
			"input": "how does cancellation depend on region", "method": "this",
		})
		done <- reply{out, code}
	}()

	// Wait until the query is parked past its commit (epoch 0 captured),
	// land a batch, then let it proceed.
	<-parked
	ack, code := postIngest(t, ts, "flights", datagen.FlightRows(17, 25))
	if code != http.StatusOK {
		t.Fatalf("ingest status = %d: %v", code, ack)
	}
	close(hold)
	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("query status = %d: %v", r.code, r.out)
	}
	if r.out["stale"] != true {
		t.Fatalf("mid-answer ingest not flagged: %v", r.out)
	}
	if r.out["staleNote"] != speech.StaleNote {
		t.Fatalf("staleNote = %v", r.out["staleNote"])
	}
	if r.out["dataEpoch"].(float64) != 0 {
		t.Fatalf("dataEpoch = %v, want the epoch the answer was computed at", r.out["dataEpoch"])
	}
	if sp, _ := r.out["speech"].(string); sp == "" {
		t.Fatal("stale answer must still carry the speech (degrade, don't error)")
	}
}

// TestConcurrentIngestQueryReload races streaming appends, queries (plain
// and windowed), and whole-dataset reloads; run under -race. Queries must
// always answer 200 and ingests either land or report the reload conflict.
func TestConcurrentIngestQueryReload(t *testing.T) {
	srv, ts := newCacheServer(t, Options{SemCacheViews: -1, MaxConcurrent: 64})

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				out, code := postIngest(t, ts, "flights", datagen.FlightRows(int64(g*100+i), 20))
				if code != http.StatusOK && code != http.StatusConflict {
					t.Errorf("ingest status = %d: %v", code, out)
				}
			}
		}(g)
	}
	inputs := []string{
		"how does cancellation depend on region",
		"how does cancellation depend on region and season",
		"how does cancellation depend on region in the last hour",
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				out, code := postQuery(t, ts, map[string]string{
					"session": fmt.Sprintf("q%d", g), "dataset": "flights",
					"input": inputs[(g+i)%len(inputs)], "method": "this",
				})
				if code != http.StatusOK {
					t.Errorf("query status = %d: %v", code, out)
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 3000, Seed: int64(500 + i)})
			if err != nil {
				t.Errorf("Flights: %v", err)
				return
			}
			if err := srv.ReloadDataset("flights", flights); err != nil {
				t.Errorf("ReloadDataset: %v", err)
			}
		}
	}()
	wg.Wait()
}
