package web

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/speech"
	"repro/internal/voice"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 10000, Seed: 121})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	salaries, err := datagen.Salaries(datagen.SalariesConfig{Seed: 122})
	if err != nil {
		t.Fatalf("Salaries: %v", err)
	}
	cfg := core.Config{
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 200,
		Percents:             []int{50, 100},
	}
	srv, err := NewServer(cfg,
		DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
			MeasureDesc: "average cancellation probability", Format: speech.PercentFormat},
		DatasetInfo{Name: "salaries", Dataset: salaries, MeasureCol: "midCareerSalary",
			MeasureDesc: "average mid-career salary", Format: speech.ThousandsFormat},
	)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, body map[string]string) (map[string]any, int) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return out, resp.StatusCode
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer(core.Config{}); err == nil {
		t.Error("empty server should fail")
	}
	if _, err := NewServer(core.Config{}, DatasetInfo{Name: "x"}); err == nil {
		t.Error("nil dataset should fail")
	}
	flights, _ := datagen.Flights(datagen.FlightsConfig{Rows: 100, Seed: 1})
	info := DatasetInfo{Name: "a", Dataset: flights, MeasureCol: "cancelled"}
	if _, err := NewServer(core.Config{}, info, info); err == nil {
		t.Error("duplicate name should fail")
	}
}

func TestDatasetsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/api/datasets")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var ds []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&ds); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(ds) != 2 {
		t.Fatalf("datasets = %d, want 2", len(ds))
	}
	if ds[0]["name"] != "flights" || ds[1]["name"] != "salaries" {
		t.Errorf("dataset names = %v", ds)
	}
}

func TestQueryFlow(t *testing.T) {
	ts := newTestServer(t)
	out, code := postQuery(t, ts, map[string]string{
		"session": "w1", "dataset": "flights",
		"input": "break down by region and season", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	sp, _ := out["speech"].(string)
	if !strings.Contains(sp, "Considering") {
		t.Errorf("speech = %q", sp)
	}
	if out["latencyMs"] == nil {
		t.Error("latency missing")
	}
	// Holistic answers carry the structured decomposition and SSML.
	structured, _ := out["structured"].(map[string]any)
	if structured == nil || structured["baseline"] == nil {
		t.Errorf("structured speech missing: %v", out["structured"])
	}
	ssml, _ := out["ssml"].(string)
	if !strings.HasPrefix(ssml, "<speak>") {
		t.Errorf("ssml missing: %q", ssml)
	}

	// Session state persists: drill down refers to the prior command.
	out, code = postQuery(t, ts, map[string]string{
		"session": "w1", "dataset": "flights", "input": "drill down", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("drill status = %d: %v", code, out)
	}
	if out["action"] != "drill down" {
		t.Errorf("action = %v", out["action"])
	}
}

func TestQueryPriorMethod(t *testing.T) {
	ts := newTestServer(t)
	out, code := postQuery(t, ts, map[string]string{
		"session": "w2", "dataset": "flights",
		"input": "break down by season", "method": "prior",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	sp, _ := out["speech"].(string)
	if !strings.Contains(sp, "Winter") {
		t.Errorf("prior speech should enumerate seasons: %q", sp)
	}
}

func TestQueryHelp(t *testing.T) {
	ts := newTestServer(t)
	out, code := postQuery(t, ts, map[string]string{
		"session": "w3", "dataset": "salaries", "input": "help", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if out["speech"] != nil && out["speech"] != "" {
		t.Error("help should not vocalize a query")
	}
	msg, _ := out["message"].(string)
	if !strings.Contains(msg, "drill down") {
		t.Errorf("help message = %q", msg)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := newTestServer(t)
	// Missing session.
	_, code := postQuery(t, ts, map[string]string{"dataset": "flights", "input": "help"})
	if code != http.StatusBadRequest {
		t.Errorf("missing session status = %d", code)
	}
	// Unknown dataset.
	_, code = postQuery(t, ts, map[string]string{"session": "x", "dataset": "nope", "input": "help"})
	if code != http.StatusNotFound {
		t.Errorf("unknown dataset status = %d", code)
	}
	// Not understood input.
	_, code = postQuery(t, ts, map[string]string{"session": "x", "dataset": "flights", "input": "zzz qqq"})
	if code != http.StatusUnprocessableEntity {
		t.Errorf("gibberish status = %d", code)
	}
	// Invalid JSON.
	resp, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON status = %d", resp.StatusCode)
	}
}

func TestQueryLog(t *testing.T) {
	ts := newTestServer(t)
	postQuery(t, ts, map[string]string{
		"session": "logger", "dataset": "flights",
		"input": "break down by season", "method": "this",
	})
	resp, err := http.Get(ts.URL + "/api/log")
	if err != nil {
		t.Fatalf("GET log: %v", err)
	}
	defer resp.Body.Close()
	var log []QueryLogEntry
	if err := json.NewDecoder(resp.Body).Decode(&log); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(log) != 1 {
		t.Fatalf("log entries = %d, want 1", len(log))
	}
	if log[0].Session != "logger" || log[0].Method != "this" || log[0].Speech == "" {
		t.Errorf("log entry = %+v", log[0])
	}
}

func TestIndexPage(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.Contains(buf.String(), "Voice-Based OLAP") {
		t.Error("index page missing title")
	}
	// Unknown paths 404.
	resp2, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp2.StatusCode)
	}
}

func TestSessionsAreIsolated(t *testing.T) {
	ts := newTestServer(t)
	postQuery(t, ts, map[string]string{
		"session": "a", "dataset": "flights", "input": "break down by region and season", "method": "this",
	})
	// Session b still has the initial single-dimension state; drilling
	// down affects only its own dimension.
	out, code := postQuery(t, ts, map[string]string{
		"session": "b", "dataset": "flights", "input": "drill down", "method": "this",
	})
	if code != http.StatusOK {
		t.Fatalf("status = %d: %v", code, out)
	}
	msg, _ := out["message"].(string)
	if strings.Contains(msg, "season") {
		t.Errorf("session b should not see session a's state: %q", msg)
	}
}
