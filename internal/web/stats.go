package web

import (
	"net/http"
	"time"
)

// MethodStats aggregates the query log per vocalization method — the
// server-side analysis behind Table 9 ("We analyzed the logs to see
// whether those claims are based on actual tendencies").
type MethodStats struct {
	Method       string  `json:"method"`
	Queries      int     `json:"queries"`
	AvgChars     int     `json:"avgChars"`
	MaxChars     int     `json:"maxChars"`
	AvgLatencyMS float64 `json:"avgLatencyMs"`
	MaxLatencyMS float64 `json:"maxLatencyMs"`
}

// SessionStats summarizes one exploration session.
type SessionStats struct {
	Session string    `json:"session"`
	Queries int       `json:"queries"`
	First   time.Time `json:"first"`
	Last    time.Time `json:"last"`
}

// LogAnalysis is the /api/stats payload.
type LogAnalysis struct {
	Methods  []MethodStats  `json:"methods"`
	Sessions []SessionStats `json:"sessions"`
	// Serving reports the overload-resilience state (admission gauges,
	// brownout ladder, breakers, per-tenant outcomes); nil when the
	// analysis was built from raw log entries outside a live server.
	Serving *ServingStats `json:"serving,omitempty"`
}

// AnalyzeLog aggregates query-log entries by method and session.
func AnalyzeLog(entries []QueryLogEntry) LogAnalysis {
	type acc struct {
		queries  int
		chars    int
		maxChars int
		latency  float64
		maxLat   float64
	}
	methods := map[string]*acc{}
	order := []string{}
	sessions := map[string]*SessionStats{}
	sessionOrder := []string{}
	for _, e := range entries {
		a := methods[e.Method]
		if a == nil {
			a = &acc{}
			methods[e.Method] = a
			order = append(order, e.Method)
		}
		a.queries++
		a.chars += len(e.Speech)
		if len(e.Speech) > a.maxChars {
			a.maxChars = len(e.Speech)
		}
		a.latency += e.LatencyMS
		if e.LatencyMS > a.maxLat {
			a.maxLat = e.LatencyMS
		}

		s := sessions[e.Session]
		if s == nil {
			s = &SessionStats{Session: e.Session, First: e.Time, Last: e.Time}
			sessions[e.Session] = s
			sessionOrder = append(sessionOrder, e.Session)
		}
		s.Queries++
		if e.Time.Before(s.First) {
			s.First = e.Time
		}
		if e.Time.After(s.Last) {
			s.Last = e.Time
		}
	}
	out := LogAnalysis{}
	for _, m := range order {
		a := methods[m]
		out.Methods = append(out.Methods, MethodStats{
			Method:       m,
			Queries:      a.queries,
			AvgChars:     a.chars / a.queries,
			MaxChars:     a.maxChars,
			AvgLatencyMS: a.latency / float64(a.queries),
			MaxLatencyMS: a.maxLat,
		})
	}
	for _, s := range sessionOrder {
		out.Sessions = append(out.Sessions, *sessions[s])
	}
	return out
}

// handleStats serves the aggregated log analysis.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	entries := s.log.snapshot()
	s.mu.Unlock()
	out := AnalyzeLog(entries)
	serving := s.servingStats()
	out.Serving = &serving
	writeJSON(w, http.StatusOK, out)
}
