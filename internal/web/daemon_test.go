package web

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faults"
	"repro/internal/speech"
	"repro/internal/voice"
)

// TestServeGracefulDrainsInFlightOnSIGTERM proves the daemon contract: a
// SIGTERM received while a query is being vocalized closes the listener
// but lets the in-flight request finish with a full 200 answer before
// ServeGraceful returns nil.
func TestServeGracefulDrainsInFlightOnSIGTERM(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	hold := make(chan struct{})
	srv.holdVocalize = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(context.Background(), httpSrv, ln, 5*time.Second, syscall.SIGUSR1)
	}()
	base := "http://" + ln.Addr().String()

	// A completed request proves the server is up and the signal handler
	// is registered before we raise the signal.
	resp, err := http.Get(base + "/api/datasets")
	if err != nil {
		t.Fatalf("GET datasets: %v", err)
	}
	resp.Body.Close()

	// Start a query that blocks inside vocalization.
	inFlight := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(map[string]string{
			"session": "drain", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(b))
		if err != nil {
			inFlight <- -1
			return
		}
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.InFlight() == 0 {
		t.Fatal("query never reached vocalization")
	}

	// Shut down mid-query. SIGUSR1 stands in for SIGTERM so a failure
	// cannot kill the whole test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// The listener closes promptly; new connections are refused while the
	// in-flight query drains.
	refusedBy := time.Now().Add(5 * time.Second)
	for time.Now().Before(refusedBy) {
		if _, err := http.Get(base + "/api/datasets"); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Release the held vocalization: the drained request must succeed.
	close(hold)
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServeGraceful = %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}
}

// TestServeGracefulContextCancel shuts down via the caller's context
// instead of a signal.
func TestServeGracefulContextCancel(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(ctx, httpSrv, ln, time.Second, syscall.SIGUSR2)
	}()
	resp, err := http.Get("http://" + ln.Addr().String() + "/api/datasets")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServeGraceful = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}
}

// TestServeGracefulExpiredGraceCutsStragglers verifies the hard cutoff: a
// request still running past the grace window is aborted and
// ServeGraceful reports the deadline error.
func TestServeGracefulExpiredGraceCutsStragglers(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	hold := make(chan struct{})
	defer close(hold)
	srv.holdVocalize = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(ctx, httpSrv, ln, 50*time.Millisecond, syscall.SIGUSR2)
	}()
	base := "http://" + ln.Addr().String()
	go func() {
		b, _ := json.Marshal(map[string]string{
			"session": "stuck", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.InFlight() == 0 {
		t.Fatal("query never reached vocalization")
	}
	cancel()
	select {
	case err := <-served:
		if err == nil {
			t.Error("expired grace should surface the shutdown deadline error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned after the grace window")
	}
}

// TestSIGTERMShedsQueueAndDrainsDegraded is the drain-under-overload
// contract: SIGTERM with a full admission queue and injected storage
// faults sheds every queued request cleanly (503, not a hang or 500)
// while the in-flight request finishes with a degraded but grammar-valid
// answer.
func TestSIGTERMShedsQueueAndDrainsDegraded(t *testing.T) {
	flights, err := datagen.Flights(datagen.FlightsConfig{Rows: 5000, Seed: 131})
	if err != nil {
		t.Fatalf("Flights: %v", err)
	}
	// Storage chaos on every scan: slow rows plus periodic truncation.
	injector := faults.NewInjector(faults.InjectorOptions{
		SlowEvery: 2, SlowDelay: 50 * time.Microsecond, FailEvery: 3,
	})
	cfg := core.Config{
		Seed:                 1,
		Clock:                voice.NewSimClock(),
		SimRoundCost:         time.Millisecond,
		MaxRoundsPerSentence: 100,
		Percents:             []int{50, 100},
		Scanner:              injector.Scanner,
	}
	srv, err := NewServerWith(cfg, Options{
		MaxConcurrent:  1,
		QueueDepth:     4,
		RequestTimeout: time.Second,
	}, DatasetInfo{Name: "flights", Dataset: flights, MeasureCol: "cancelled",
		MeasureDesc: "average cancellation probability", Format: speech.PercentFormat})
	if err != nil {
		t.Fatalf("NewServerWith: %v", err)
	}
	hold := make(chan struct{})
	srv.holdVocalize = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	httpSrv.RegisterOnShutdown(srv.StartDrain)
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(context.Background(), httpSrv, ln, 10*time.Second, syscall.SIGUSR1)
	}()
	base := "http://" + ln.Addr().String()
	resp, err := http.Get(base + "/api/datasets")
	if err != nil {
		t.Fatalf("GET datasets: %v", err)
	}
	resp.Body.Close()

	post := func(session string, out chan<- int) {
		b, _ := json.Marshal(map[string]string{
			"session": session, "dataset": "flights",
			"input": "break down by season", "method": "this",
		})
		resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(b))
		if err != nil {
			out <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out <- resp.StatusCode
	}

	inFlight := make(chan int, 1)
	go post("inflight", inFlight)
	deadline := time.Now().Add(5 * time.Second)
	for srv.adm.InFlight() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.InFlight() == 0 {
		t.Fatal("query never reached vocalization")
	}
	queued := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go post(fmt.Sprintf("queued-%d", i), queued)
	}
	for srv.adm.QueueLen() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if srv.adm.QueueLen() < 3 {
		t.Fatalf("queue depth = %d, want 3", srv.adm.QueueLen())
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// The shutdown hook drains the queue: every queued request is shed
	// promptly even though the slot-holder is still mid-vocalize.
	for i := 0; i < 3; i++ {
		select {
		case code := <-queued:
			if code != http.StatusServiceUnavailable {
				t.Errorf("queued request %d finished with %d, want 503", i, code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("queued request never shed during drain")
		}
	}

	// Hold the in-flight request past its own deadline so its answer is
	// forced through the degradation path, then let it finish.
	time.Sleep(1100 * time.Millisecond)
	close(hold)
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServeGraceful = %v, want nil (clean drain)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}

	// The drained answer is degraded but still inside the speech grammar.
	srv.mu.Lock()
	entries := srv.log.snapshot()
	srv.mu.Unlock()
	if len(entries) != 1 {
		t.Fatalf("query log has %d entries, want only the drained one", len(entries))
	}
	e := entries[0]
	if !e.Degraded {
		t.Error("in-flight answer held past its deadline should be degraded")
	}
	if !(speech.Parser{}).Conforms(e.Speech) {
		t.Errorf("drained answer not grammar-valid: %q", e.Speech)
	}
	if st := injector.Stats(); st.Scans == 0 {
		t.Error("fault injector never saw a scan; chaos path untested")
	}
}
