package web

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestServeGracefulDrainsInFlightOnSIGTERM proves the daemon contract: a
// SIGTERM received while a query is being vocalized closes the listener
// but lets the in-flight request finish with a full 200 answer before
// ServeGraceful returns nil.
func TestServeGracefulDrainsInFlightOnSIGTERM(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	hold := make(chan struct{})
	srv.holdVocalize = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(context.Background(), httpSrv, ln, 5*time.Second, syscall.SIGUSR1)
	}()
	base := "http://" + ln.Addr().String()

	// A completed request proves the server is up and the signal handler
	// is registered before we raise the signal.
	resp, err := http.Get(base + "/api/datasets")
	if err != nil {
		t.Fatalf("GET datasets: %v", err)
	}
	resp.Body.Close()

	// Start a query that blocks inside vocalization.
	inFlight := make(chan int, 1)
	go func() {
		b, _ := json.Marshal(map[string]string{
			"session": "drain", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(b))
		if err != nil {
			inFlight <- -1
			return
		}
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.sem) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(srv.sem) == 0 {
		t.Fatal("query never reached vocalization")
	}

	// Shut down mid-query. SIGUSR1 stands in for SIGTERM so a failure
	// cannot kill the whole test binary.
	if err := syscall.Kill(os.Getpid(), syscall.SIGUSR1); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// The listener closes promptly; new connections are refused while the
	// in-flight query drains.
	refusedBy := time.Now().Add(5 * time.Second)
	for time.Now().Before(refusedBy) {
		if _, err := http.Get(base + "/api/datasets"); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Release the held vocalization: the drained request must succeed.
	close(hold)
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Errorf("in-flight request finished with %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never finished")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServeGraceful = %v, want nil (clean drain)", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}
}

// TestServeGracefulContextCancel shuts down via the caller's context
// instead of a signal.
func TestServeGracefulContextCancel(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(ctx, httpSrv, ln, time.Second, syscall.SIGUSR2)
	}()
	resp, err := http.Get("http://" + ln.Addr().String() + "/api/datasets")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Errorf("ServeGraceful = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned")
	}
}

// TestServeGracefulExpiredGraceCutsStragglers verifies the hard cutoff: a
// request still running past the grace window is aborted and
// ServeGraceful reports the deadline error.
func TestServeGracefulExpiredGraceCutsStragglers(t *testing.T) {
	srv, _ := newHardenedServer(t, Options{})
	hold := make(chan struct{})
	defer close(hold)
	srv.holdVocalize = hold

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() {
		served <- ServeGraceful(ctx, httpSrv, ln, 50*time.Millisecond, syscall.SIGUSR2)
	}()
	base := "http://" + ln.Addr().String()
	go func() {
		b, _ := json.Marshal(map[string]string{
			"session": "stuck", "dataset": "flights",
			"input": "break down by season", "method": "prior",
		})
		resp, err := http.Post(base+"/api/query", "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for len(srv.sem) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(srv.sem) == 0 {
		t.Fatal("query never reached vocalization")
	}
	cancel()
	select {
	case err := <-served:
		if err == nil {
			t.Error("expired grace should surface the shutdown deadline error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeGraceful never returned after the grace window")
	}
}
