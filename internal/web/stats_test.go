package web

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

func TestAnalyzeLog(t *testing.T) {
	t0 := time.Date(2019, 6, 30, 21, 33, 0, 0, time.UTC)
	entries := []QueryLogEntry{
		{Time: t0, Session: "a", Method: "this", Speech: "short answer", LatencyMS: 2},
		{Time: t0.Add(time.Minute), Session: "a", Method: "prior", Speech: string(make([]byte, 5000)), LatencyMS: 90},
		{Time: t0.Add(2 * time.Minute), Session: "b", Method: "this", Speech: "another short answer!", LatencyMS: 4},
	}
	a := AnalyzeLog(entries)
	if len(a.Methods) != 2 {
		t.Fatalf("methods = %d", len(a.Methods))
	}
	byMethod := map[string]MethodStats{}
	for _, m := range a.Methods {
		byMethod[m.Method] = m
	}
	this := byMethod["this"]
	if this.Queries != 2 {
		t.Errorf("this queries = %d", this.Queries)
	}
	if this.AvgChars != (len("short answer")+len("another short answer!"))/2 {
		t.Errorf("this avg chars = %d", this.AvgChars)
	}
	if this.MaxLatencyMS != 4 {
		t.Errorf("this max latency = %v", this.MaxLatencyMS)
	}
	prior := byMethod["prior"]
	if prior.MaxChars != 5000 || prior.AvgChars != 5000 {
		t.Errorf("prior chars = %d/%d", prior.AvgChars, prior.MaxChars)
	}
	// Sessions.
	if len(a.Sessions) != 2 {
		t.Fatalf("sessions = %d", len(a.Sessions))
	}
	if a.Sessions[0].Session != "a" || a.Sessions[0].Queries != 2 {
		t.Errorf("session a = %+v", a.Sessions[0])
	}
	if !a.Sessions[0].Last.After(a.Sessions[0].First) {
		t.Error("session time range wrong")
	}
}

func TestAnalyzeLogEmpty(t *testing.T) {
	a := AnalyzeLog(nil)
	if len(a.Methods) != 0 || len(a.Sessions) != 0 {
		t.Error("empty log should aggregate to nothing")
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	postQuery(t, ts, map[string]string{
		"session": "s1", "dataset": "flights",
		"input": "break down by season", "method": "this",
	})
	postQuery(t, ts, map[string]string{
		"session": "s1", "dataset": "flights",
		"input": "break down by region", "method": "prior",
	})
	resp, err := http.Get(ts.URL + "/api/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var a LogAnalysis
	if err := json.NewDecoder(resp.Body).Decode(&a); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(a.Methods) != 2 {
		t.Fatalf("methods = %d", len(a.Methods))
	}
	byMethod := map[string]MethodStats{}
	for _, m := range a.Methods {
		byMethod[m.Method] = m
	}
	// The prior enumeration is longer than our capped speech.
	if byMethod["prior"].AvgChars <= byMethod["this"].AvgChars {
		t.Errorf("prior avg %d should exceed this avg %d",
			byMethod["prior"].AvgChars, byMethod["this"].AvgChars)
	}
	if len(a.Sessions) != 1 || a.Sessions[0].Queries != 2 {
		t.Errorf("sessions = %+v", a.Sessions)
	}
}
