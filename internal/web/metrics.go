package web

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/admission"
)

// latencyWindow keeps a sliding window of vocalize wall latencies so
// /metrics can expose p50/p99 (the brownout ladder only publishes its own
// p99 over its configured window).
type latencyWindow struct {
	mu    sync.Mutex
	buf   []time.Duration
	next  int
	count int64
}

// newLatencyWindow returns a window over the last size samples.
func newLatencyWindow(size int) *latencyWindow {
	if size < 1 {
		size = 1
	}
	return &latencyWindow{buf: make([]time.Duration, 0, size)}
}

// observe records one vocalize latency.
func (w *latencyWindow) observe(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.count++
	if len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, d)
		return
	}
	w.buf[w.next] = d
	w.next = (w.next + 1) % cap(w.buf)
}

// quantiles returns the p50 and p99 over the window plus the total sample
// count; ok is false while the window is empty.
func (w *latencyWindow) quantiles() (p50, p99 time.Duration, count int64, ok bool) {
	w.mu.Lock()
	sorted := append([]time.Duration(nil), w.buf...)
	count = w.count
	w.mu.Unlock()
	if len(sorted) == 0 {
		return 0, 0, count, false
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.99), count, true
}

// handleMetrics serves the serving counters in the Prometheus text
// exposition format (version 0.0.4): everything /api/stats.serving
// reports, flattened into scrapeable gauges and counters, plus the
// semantic-cache and warm-pool counters.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	stats := s.servingStats()

	writeMetricHeader(w, "voiceolap_inflight", "gauge", "Vocalizations currently holding an admission slot.")
	fmt.Fprintf(w, "voiceolap_inflight %d\n", stats.InFlight)
	writeMetricHeader(w, "voiceolap_queue_len", "gauge", "Requests waiting in the weighted-fair admission queue.")
	fmt.Fprintf(w, "voiceolap_queue_len %d\n", stats.QueueLen)

	writeMetricHeader(w, "voiceolap_brownout_step", "gauge", "Current brownout ladder step (0=full).")
	fmt.Fprintf(w, "voiceolap_brownout_step %d\n", int(stats.Brownout.Step))
	writeMetricHeader(w, "voiceolap_brownout_p99_seconds", "gauge", "Sliding p99 vocalize latency as seen by the brownout ladder.")
	fmt.Fprintf(w, "voiceolap_brownout_p99_seconds %g\n", stats.Brownout.P99MS/1e3)

	writeMetricHeader(w, "voiceolap_ladder_served_total", "counter", "Answers served, by the brownout step that shaped them.")
	for i := 0; i < admission.NumSteps; i++ {
		if n := stats.LadderServed[admission.Step(i).String()]; n > 0 {
			fmt.Fprintf(w, "voiceolap_ladder_served_total{step=%q} %d\n", admission.Step(i).String(), n)
		}
	}

	writeMetricHeader(w, "voiceolap_breaker_open", "gauge", "Per-dataset circuit breaker state (0=closed, 1=open, 0.5=half-open).")
	for _, name := range sortedKeys(stats.Breakers) {
		v := 0.0
		switch stats.Breakers[name] {
		case "open":
			v = 1
		case "half-open":
			v = 0.5
		}
		fmt.Fprintf(w, "voiceolap_breaker_open{dataset=%q} %g\n", name, v)
	}

	writeMetricHeader(w, "voiceolap_tenant_served_total", "counter", "Answered queries per tenant.")
	for _, t := range stats.Tenants {
		fmt.Fprintf(w, "voiceolap_tenant_served_total{tenant=%q} %d\n", t.Tenant, t.Served)
	}
	writeMetricHeader(w, "voiceolap_tenant_shed_total", "counter", "Refused queries per tenant and reason.")
	for _, t := range stats.Tenants {
		for _, reason := range sortedKeys(t.Shed) {
			fmt.Fprintf(w, "voiceolap_tenant_shed_total{tenant=%q,reason=%q} %d\n", t.Tenant, reason, t.Shed[reason])
		}
	}
	writeMetricHeader(w, "voiceolap_tenant_browned_out_total", "counter", "Answers served below full quality per tenant.")
	for _, t := range stats.Tenants {
		if t.BrownedOut > 0 {
			fmt.Fprintf(w, "voiceolap_tenant_browned_out_total{tenant=%q} %d\n", t.Tenant, t.BrownedOut)
		}
	}
	writeMetricHeader(w, "voiceolap_tenant_fallbacks_total", "counter", "Answers rerouted to the prior vocalizer per tenant.")
	for _, t := range stats.Tenants {
		if t.Fallbacks > 0 {
			fmt.Fprintf(w, "voiceolap_tenant_fallbacks_total{tenant=%q} %d\n", t.Tenant, t.Fallbacks)
		}
	}
	writeMetricHeader(w, "voiceolap_tenant_client_gone_total", "counter", "Requests whose client disconnected first, per tenant.")
	for _, t := range stats.Tenants {
		if t.ClientGone > 0 {
			fmt.Fprintf(w, "voiceolap_tenant_client_gone_total{tenant=%q} %d\n", t.Tenant, t.ClientGone)
		}
	}

	writeMetricHeader(w, "voiceolap_ingest_batches_total", "counter", "Accepted streaming ingest batches.")
	fmt.Fprintf(w, "voiceolap_ingest_batches_total %d\n", s.ingestBatches.Load())
	writeMetricHeader(w, "voiceolap_ingest_rows_total", "counter", "Rows appended via streaming ingest.")
	fmt.Fprintf(w, "voiceolap_ingest_rows_total %d\n", s.ingestRows.Load())
	writeMetricHeader(w, "voiceolap_stale_answers_total", "counter", "Answers flagged stale because the dataset epoch advanced mid-answer.")
	fmt.Fprintf(w, "voiceolap_stale_answers_total %d\n", s.staleAnswers.Load())

	if p50, p99, count, ok := s.latw.quantiles(); ok {
		writeMetricHeader(w, "voiceolap_vocalize_latency_seconds", "summary", "Wall-clock vocalize latency over a sliding window.")
		fmt.Fprintf(w, "voiceolap_vocalize_latency_seconds{quantile=\"0.5\"} %g\n", p50.Seconds())
		fmt.Fprintf(w, "voiceolap_vocalize_latency_seconds{quantile=\"0.99\"} %g\n", p99.Seconds())
		fmt.Fprintf(w, "voiceolap_vocalize_latency_seconds_count %d\n", count)
	}

	if sc := s.semCacheStats(); sc != nil {
		writeMetricHeader(w, "voiceolap_semcache_answers_total", "counter", "Tier-A semantic answer cache outcomes.")
		fmt.Fprintf(w, "voiceolap_semcache_answers_total{outcome=\"hit\"} %d\n", sc.Answers.Hits)
		fmt.Fprintf(w, "voiceolap_semcache_answers_total{outcome=\"miss\"} %d\n", sc.Answers.Misses)
		fmt.Fprintf(w, "voiceolap_semcache_answers_total{outcome=\"coalesced\"} %d\n", sc.Answers.Coalesced)
		fmt.Fprintf(w, "voiceolap_semcache_answers_total{outcome=\"aborted\"} %d\n", sc.Answers.Aborted)
		writeMetricHeader(w, "voiceolap_semcache_stores_total", "counter", "Tier-A stores, rejections (uncacheable answers), evictions, and purges.")
		fmt.Fprintf(w, "voiceolap_semcache_stores_total{event=\"stored\"} %d\n", sc.Answers.Stores)
		fmt.Fprintf(w, "voiceolap_semcache_stores_total{event=\"rejected\"} %d\n", sc.Answers.Rejected)
		fmt.Fprintf(w, "voiceolap_semcache_stores_total{event=\"evicted\"} %d\n", sc.Answers.Evictions)
		fmt.Fprintf(w, "voiceolap_semcache_stores_total{event=\"purged\"} %d\n", sc.Answers.Purged)
		writeMetricHeader(w, "voiceolap_semcache_entries", "gauge", "Stored tier-A answers.")
		fmt.Fprintf(w, "voiceolap_semcache_entries %d\n", sc.AnswerEntries)
		writeMetricHeader(w, "voiceolap_semcache_views_total", "counter", "Tier-B warmed-view cache outcomes.")
		fmt.Fprintf(w, "voiceolap_semcache_views_total{outcome=\"hit\"} %d\n", sc.Views.Hits)
		fmt.Fprintf(w, "voiceolap_semcache_views_total{outcome=\"miss\"} %d\n", sc.Views.Misses)
		fmt.Fprintf(w, "voiceolap_semcache_views_total{event=\"stored\"} %d\n", sc.Views.Stores)
		writeMetricHeader(w, "voiceolap_semcache_view_entries", "gauge", "Stored tier-B views.")
		fmt.Fprintf(w, "voiceolap_semcache_view_entries %d\n", sc.ViewEntries)
		writeMetricHeader(w, "voiceolap_semcache_served_total", "counter", "Requests answered via the semantic caches, by path.")
		fmt.Fprintf(w, "voiceolap_semcache_served_total{path=\"hit\"} %d\n", sc.HitsServed)
		fmt.Fprintf(w, "voiceolap_semcache_served_total{path=\"coalesced\"} %d\n", sc.CoalescedServed)
		fmt.Fprintf(w, "voiceolap_semcache_served_total{path=\"warm\"} %d\n", sc.WarmServed)
		writeMetricHeader(w, "voiceolap_session_pool_checkouts_total", "counter", "Warm session pool checkouts per dataset.")
		for _, name := range sortedKeys(sc.Pools) {
			p := sc.Pools[name]
			fmt.Fprintf(w, "voiceolap_session_pool_checkouts_total{dataset=%q,kind=\"warm\"} %d\n", name, p.Warm)
			fmt.Fprintf(w, "voiceolap_session_pool_checkouts_total{dataset=%q,kind=\"cold\"} %d\n", name, p.Cold)
		}
		writeMetricHeader(w, "voiceolap_session_pool_free", "gauge", "Warm sessions ready per dataset.")
		for _, name := range sortedKeys(sc.Pools) {
			fmt.Fprintf(w, "voiceolap_session_pool_free{dataset=%q} %d\n", name, sc.Pools[name].Free)
		}
	}
}

// writeMetricHeader emits the HELP/TYPE preamble for one metric family.
func writeMetricHeader(w http.ResponseWriter, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sortedKeys returns m's keys in order, for deterministic scrape output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
